package minraid_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Absolute numbers are
// hardware-bound (the paper ran VAX/SUN-era machines with a measured 9 ms
// per inter-process message; these benches default to zero injected
// latency) — the ratios are what reproduce the paper:
//
//	E1-T1  BenchmarkTxnFailLocksOn vs BenchmarkTxnFailLocksOff
//	       (paper: 186 vs 176 ms coordinator — a small overhead)
//	E1-T2  BenchmarkControlType1 / BenchmarkControlType2
//	       (paper: 190 ms recovering / 50 ms operational / 68 ms type 2)
//	E1-T3  BenchmarkTxnWithCopier vs BenchmarkTxnFailLocksOn
//	       (paper: 270 vs 186 ms, +45%)
//	F1     BenchmarkFigure1Cycle (full failure/recovery cycle)
//	F2/F3  BenchmarkScenario1 / BenchmarkScenario2
//
// Ablations: policy comparison, WAL-backed storage, two-step recovery,
// read-fraction sensitivity.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"minraid"
)

// benchAckTimeout is deliberately generous: across tens of thousands of
// iterations a tight timeout turns one GC pause or scheduler hiccup into a
// spurious failure detection and a poisoned run. Failure-detection costs
// are timeout-dominated by construction (the paper's too); benches that
// include a detection window say so in their comments.
const benchAckTimeout = 250 * time.Millisecond

// benchCluster builds a cluster sized like experiment 1 (§2.2).
func benchCluster(b *testing.B, cfg minraid.ClusterConfig) *minraid.Cluster {
	b.Helper()
	if cfg.Sites == 0 {
		cfg.Sites = 4
	}
	if cfg.Items == 0 {
		cfg.Items = 50
	}
	if cfg.AckTimeout == 0 {
		cfg.AckTimeout = benchAckTimeout
	}
	c, err := minraid.NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	return c
}

// runTxns drives n transactions of the paper's workload round-robin over
// the sites, failing the bench on abort.
func runTxns(b *testing.B, c *minraid.Cluster, gen minraid.Generator, n, sites int) {
	b.Helper()
	for i := 0; i < n; i++ {
		id := c.NextTxnID()
		res, err := c.ExecTxn(minraid.SiteID(i%sites), id, gen.Next(id))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Committed {
			b.Fatalf("abort: %s", res.AbortReason)
		}
	}
}

// E1-T1: coordinator+participant transaction cost with fail-lock
// maintenance included (the "with fail-locks code" column).
func BenchmarkTxnFailLocksOn(b *testing.B) {
	c := benchCluster(b, minraid.ClusterConfig{})
	gen := minraid.NewUniformWorkload(50, 10, 1)
	b.ResetTimer()
	runTxns(b, c, gen, b.N, 4)
}

// E1-T1: the "without fail-locks code" column.
func BenchmarkTxnFailLocksOff(b *testing.B) {
	c := benchCluster(b, minraid.ClusterConfig{DisableFailLockMaintenance: true})
	gen := minraid.NewUniformWorkload(50, 10, 1)
	b.ResetTimer()
	runTxns(b, c, gen, b.N, 4)
}

// E1-T2: one failure/recovery cycle per iteration; the type-1 control
// transaction dominates (announcement to every operational site plus
// vector+fail-lock installation).
func BenchmarkControlType1(b *testing.B) {
	c := benchCluster(b, minraid.ClusterConfig{})
	gen := minraid.NewUniformWorkload(50, 10, 2)
	// Converge vectors once so each iteration is identical.
	runTxns(b, c, gen, 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// No detection cycle: type 1 does not require the others to have
		// noticed the failure, and skipping it keeps the off-timer cost
		// per iteration negligible.
		if err := c.Fail(0); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := c.Recover(0); err != nil {
			b.Fatal(err)
		}
	}
}

// E1-T2: the type-2 (failure announcement) path, measured as the
// detection transaction that times out, aborts, and announces.
func BenchmarkControlType2(b *testing.B) {
	c := benchCluster(b, minraid.ClusterConfig{})
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := c.Fail(0); err != nil {
			b.Fatal(err)
		}
		id := c.NextTxnID()
		b.StartTimer()
		// The transaction's cost = ack timeout + abort + type 2.
		res, err := c.ExecTxn(1, id, []minraid.Op{minraid.Write(0, []byte("detect"))})
		if err != nil {
			b.Fatal(err)
		}
		if res.Committed {
			b.Fatal("detection txn committed")
		}
		b.StopTimer()
		if _, err := c.Recover(0); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// E1-T3: a database transaction that triggers one copier transaction
// (read of a fail-locked copy on a recovering site). Compare against
// BenchmarkTxnFailLocksOn for the paper's +45%.
func BenchmarkTxnWithCopier(b *testing.B) {
	c := benchCluster(b, minraid.ClusterConfig{})
	gen := minraid.NewUniformWorkload(50, 10, 3)
	runTxns(b, c, gen, 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Make site 0's copy of the item fail-locked directly (a real
		// failure-detection cycle per iteration would cost an ack
		// timeout of off-timer wall clock each); the measured
		// transaction then runs the full copier path: copy request to
		// the donor, install, clear, and the clear-fail-locks special
		// transaction to every other site.
		item := minraid.ItemID(i % 50)
		c.Site(0).InjectFailLock(item, 0)
		id := c.NextTxnID()
		b.StartTimer()
		res, err := c.ExecTxn(0, id, []minraid.Op{minraid.Read(item), minraid.Write(item, []byte("w"))})
		if err != nil || !res.Committed {
			b.Fatalf("copier txn: %v %v", res, err)
		}
		if res.Copiers != 1 {
			b.Fatalf("copiers = %d", res.Copiers)
		}
	}
}

// F1: a complete Figure-1 cycle — 100 transactions with site 0 down,
// recovery, then transactions until every fail-lock clears.
func BenchmarkFigure1Cycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := minraid.RunSchedule(
			minraid.ExperimentConfig{Sites: 2, Items: 50, MaxOps: 5, Seed: int64(i + 1), AckTimeout: benchAckTimeout},
			minraid.Figure1Schedule(0), 2000)
		if err != nil {
			b.Fatal(err)
		}
		if res.FullyRecoveredAt == 0 {
			b.Fatal("never recovered")
		}
		b.ReportMetric(float64(res.FullyRecoveredAt-100), "recovery-txns")
		b.ReportMetric(float64(res.Copiers), "copiers")
	}
}

// F2: scenario 1 (alternating failures on two sites, 120 transactions).
func BenchmarkScenario1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := minraid.RunSchedule(
			minraid.ExperimentConfig{Sites: 2, Items: 50, MaxOps: 5, Seed: int64(i + 1), AckTimeout: benchAckTimeout},
			minraid.Scenario1Schedule(), 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.DataAborts), "data-aborts")
	}
}

// F3: scenario 2 (rolling failures over four sites, 160 transactions).
func BenchmarkScenario2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := minraid.RunSchedule(
			minraid.ExperimentConfig{Sites: 4, Items: 50, MaxOps: 5, Seed: int64(i + 1), AckTimeout: benchAckTimeout},
			minraid.Scenario2Schedule(), 0)
		if err != nil {
			b.Fatal(err)
		}
		if res.DataAborts != 0 {
			b.Fatalf("scenario 2 had %d data aborts", res.DataAborts)
		}
	}
}

// Ablation: transaction cost under each replication policy (healthy
// system). ROWAA ≈ ROWA here; quorum pays a read round trip.
func BenchmarkPolicy(b *testing.B) {
	for _, p := range []minraid.Policy{minraid.ROWAA(), minraid.ROWA(), minraid.Quorum()} {
		b.Run(p.Name(), func(b *testing.B) {
			c := benchCluster(b, minraid.ClusterConfig{Policy: p})
			gen := minraid.NewUniformWorkload(50, 10, 4)
			b.ResetTimer()
			runTxns(b, c, gen, b.N, 4)
		})
	}
}

// Ablation: the data-I/O path the paper factored out — WAL-backed stores
// vs in-memory stores.
func BenchmarkStorage(b *testing.B) {
	b.Run("mem", func(b *testing.B) {
		c := benchCluster(b, minraid.ClusterConfig{})
		gen := minraid.NewUniformWorkload(50, 10, 5)
		b.ResetTimer()
		runTxns(b, c, gen, b.N, 4)
	})
	b.Run("wal", func(b *testing.B) {
		dir := b.TempDir()
		c := benchCluster(b, minraid.ClusterConfig{
			StoreFactory: func(id minraid.SiteID) (minraid.Store, error) {
				return minraid.OpenWALStore(fmt.Sprintf("%s/site%d", dir, id), 50)
			},
		})
		gen := minraid.NewUniformWorkload(50, 10, 5)
		b.ResetTimer()
		runTxns(b, c, gen, b.N, 4)
	})
}

// Ablation: two-step recovery (§3.2) vs demand-driven recovery — compare
// the recovery-txns metric with BenchmarkFigure1Cycle's.
func BenchmarkTwoStepRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := minraid.RunSchedule(
			minraid.ExperimentConfig{
				Sites: 2, Items: 50, MaxOps: 5, Seed: int64(i + 1),
				AckTimeout:           benchAckTimeout,
				BatchCopierThreshold: 0.5,
			},
			minraid.Figure1Schedule(0), 2000)
		if err != nil {
			b.Fatal(err)
		}
		if res.FullyRecoveredAt == 0 {
			b.Fatal("never recovered")
		}
		b.ReportMetric(float64(res.FullyRecoveredAt-100), "recovery-txns")
	}
}

// Ablation: workload generators over a healthy 4-site system.
func BenchmarkWorkloads(b *testing.B) {
	gens := map[string]func() minraid.Generator{
		"uniform":   func() minraid.Generator { return minraid.NewUniformWorkload(500, 10, 6) },
		"et1":       func() minraid.Generator { return minraid.NewET1Workload(500, 6) },
		"wisconsin": func() minraid.Generator { return minraid.NewWisconsinWorkload(500, 6) },
		"hotcold":   func() minraid.Generator { return minraid.NewHotColdWorkload(500, 50, 10, 6) },
	}
	for name, mk := range gens {
		b.Run(name, func(b *testing.B) {
			c := benchCluster(b, minraid.ClusterConfig{Items: 500})
			gen := mk()
			b.ResetTimer()
			runTxns(b, c, gen, b.N, 4)
		})
	}
}

// Ablation: replication degree — fewer copies mean cheaper writes but
// remote reads; see also the availability sweep in raid-experiments.
func BenchmarkReplicationDegree(b *testing.B) {
	for _, degree := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("r%d", degree), func(b *testing.B) {
			c := benchCluster(b, minraid.ClusterConfig{ReplicationDegree: degree})
			gen := minraid.NewUniformWorkload(50, 10, 7)
			b.ResetTimer()
			runTxns(b, c, gen, b.N, 4)
		})
	}
}

// Extension: interleaved execution under distributed strict 2PL (the
// paper's deferred concurrency-control future work). Parallel clients on
// disjoint working sets show the throughput headroom serial processing
// leaves on the table.
func BenchmarkConcurrency(b *testing.B) {
	for _, degree := range []int{1, 4} {
		b.Run(fmt.Sprintf("txns%d", degree), func(b *testing.B) {
			// A realistic per-hop latency is injected: with free messages
			// the lock bookkeeping dominates and serial wins; with real
			// message costs (the paper's world, 9 ms per hop) interleaving
			// overlaps the waits.
			c := benchCluster(b, minraid.ClusterConfig{
				Items: 256, ConcurrentTxns: degree,
				Delay: 500 * time.Microsecond,
			})
			// All clients target ONE coordinator: the paper's serial
			// processing admits a single in-flight transaction per site,
			// so queueing at the gate is what concurrency removes.
			b.ResetTimer()
			b.SetParallelism(2)
			var worker int32
			b.RunParallel(func(pb *testing.PB) {
				// Each parallel client works a disjoint item range so
				// contention does not mask the pipelining gain.
				base := minraid.ItemID((atomicAdd(&worker) % 8) * 32)
				i := 0
				for pb.Next() {
					id := c.NextTxnID()
					item := base + minraid.ItemID(i%32)
					res, err := c.ExecTxn(0, id, []minraid.Op{
						minraid.Read(item),
						minraid.Write(item, []byte("bench")),
					})
					if err != nil {
						b.Fatal(err)
					}
					if !res.Committed {
						b.Fatalf("abort: %s", res.AbortReason)
					}
					i++
				}
			})
		})
	}
}

func atomicAdd(p *int32) int32 { return atomic.AddInt32(p, 1) }
