// Netcluster: the same ROWAA protocol over real TCP sockets — three sites
// listening on loopback ports, exchanging CRC-framed messages, plus a
// managing endpoint driving transactions, a failure and a recovery. This
// is the single-binary version of the cmd/raidsrv + cmd/raidctl
// deployment.
//
//	go run ./examples/netcluster
package main

import (
	"fmt"
	"log"
	"time"

	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/msg"
	"minraid/internal/site"
	"minraid/internal/transport"
)

const (
	sites = 3
	items = 30
)

func main() {
	// Bind each site's listener on an ephemeral loopback port.
	nets := make([]*transport.TCP, sites)
	addrs := make(map[core.SiteID]string)
	for i := 0; i < sites; i++ {
		id := core.SiteID(i)
		n, err := transport.NewTCP(transport.TCPConfig{
			Self:  id,
			Addrs: map[core.SiteID]string{id: "127.0.0.1:0"},
		})
		must(err)
		nets[i] = n
		addrs[id] = n.Addr()
	}
	mgrNet, err := transport.NewTCP(transport.TCPConfig{
		Self:  core.ManagingSite,
		Addrs: map[core.SiteID]string{core.ManagingSite: "127.0.0.1:0"},
	})
	must(err)
	addrs[core.ManagingSite] = mgrNet.Addr()

	// Distribute the full address map and start the sites.
	for i := 0; i < sites; i++ {
		for id, a := range addrs {
			nets[i].SetAddr(id, a)
		}
	}
	for id, a := range addrs {
		mgrNet.SetAddr(id, a)
	}
	var running []*site.Site
	for i := 0; i < sites; i++ {
		s, err := site.New(site.Config{ID: core.SiteID(i), Sites: sites, Items: items}, nets[i])
		must(err)
		s.Start()
		running = append(running, s)
		fmt.Printf("site %d listening on %s\n", i, addrs[core.SiteID(i)])
	}
	defer func() {
		for _, s := range running {
			s.Stop()
		}
		for _, n := range nets {
			n.Close()
		}
		mgrNet.Close()
	}()

	ep, err := mgrNet.Endpoint(core.ManagingSite)
	must(err)
	caller := transport.NewCaller(ep, 5*time.Second)
	go func() {
		for {
			env, ok := ep.Recv()
			if !ok {
				return
			}
			caller.Deliver(env)
		}
	}()

	exec := func(coord core.SiteID, id core.TxnID, ops []core.Op) *msg.TxnResult {
		reply, err := caller.Call(coord, &msg.ClientTxn{Txn: id, Ops: ops})
		must(err)
		return reply.Body.(*msg.TxnResult)
	}

	// Replicate a write over real sockets, read it back elsewhere.
	res := exec(0, 1, []core.Op{core.Write(5, []byte("over tcp"))})
	fmt.Printf("txn 1: committed=%v in %.2fms\n", res.Committed, float64(res.ElapsedNanos)/1e6)
	res = exec(2, 2, []core.Op{core.Read(5)})
	fmt.Printf("txn 2 read via site 2: %q\n", res.Reads[0].Value)

	// Fail site 1, detect, keep going, recover.
	_, err = caller.Call(1, &msg.FailSim{})
	must(err)
	res = exec(0, 3, []core.Op{core.Write(6, []byte("detect"))})
	fmt.Printf("txn 3 (detection): committed=%v reason=%q\n", res.Committed, res.AbortReason)
	res = exec(0, 4, []core.Op{core.Write(6, []byte("while down"))})
	fmt.Printf("txn 4: committed=%v with site 1 down\n", res.Committed)

	reply, err := caller.Call(1, &msg.RecoverSim{})
	must(err)
	st := reply.Body.(*msg.StatusResp)
	fmt.Printf("site 1 recovered: state=%s session=%d\n", st.State, st.Session)

	res = exec(1, 5, []core.Op{core.Read(6)})
	fmt.Printf("txn 5 read on recovered site: %q (%d copier)\n", res.Reads[0].Value, res.Copiers)

	// Audit over the sockets.
	report, err := cluster.Audit(&prober{caller: caller})
	must(err)
	fmt.Println(report)
}

// prober adapts the TCP caller to the shared audit.
type prober struct{ caller *transport.Caller }

func (p *prober) Sites() int { return sites }
func (p *prober) Items() int { return items }

func (p *prober) Replicas() *core.ReplicaMap { return core.FullReplication(items, sites) }

func (p *prober) Status(id core.SiteID, incl bool) (*msg.StatusResp, error) {
	reply, err := p.caller.Call(id, &msg.StatusReq{IncludeFailLocks: incl})
	if err != nil {
		return nil, err
	}
	return reply.Body.(*msg.StatusResp), nil
}

func (p *prober) Dump(id core.SiteID) ([]core.ItemVersion, error) {
	reply, err := p.caller.Call(id, &msg.DumpReq{First: 0, Last: items - 1})
	if err != nil {
		return nil, err
	}
	return reply.Body.(*msg.DumpResp).Items, nil
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
