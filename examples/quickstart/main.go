// Quickstart: build a two-site replicated database, write and read through
// it, fail a site, keep processing (ROWAA availability), recover the site,
// and verify consistency with the audit.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"minraid"
)

func main() {
	// The paper's mini-RAID: sites are in-process, messages are real and
	// ordered, every copy lives in site memory.
	c, err := minraid.NewCluster(minraid.ClusterConfig{Sites: 2, Items: 50})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// A transaction is a list of read/write operations sent to a
	// coordinator site; the coordinator replicates writes with a
	// two-phase commit to every available site.
	res, err := c.Exec(0, []minraid.Op{minraid.Write(7, []byte("hello, 1987"))})
	must(err)
	fmt.Printf("txn %d committed: item 7 written via site 0\n", res.Txn)

	res, err = c.Exec(1, []minraid.Op{minraid.Read(7)})
	must(err)
	fmt.Printf("txn %d read through site 1: %q\n", res.Txn, res.Reads[0].Value)

	// Fail site 1. The first write detects the failure by ack timeout,
	// aborts, and announces it with a type-2 control transaction.
	must(c.Fail(1))
	res, err = c.Exec(0, []minraid.Op{minraid.Write(8, []byte("while-down"))})
	must(err)
	fmt.Printf("detection txn aborted as expected: %s\n", res.AbortReason)

	// From now on ROWAA skips the down site: full availability on the
	// surviving copy. Each commit sets a fail-lock recording that site
	// 1's copy missed the update.
	for i := 0; i < 3; i++ {
		res, err = c.Exec(0, []minraid.Op{minraid.Write(minraid.ItemID(8+i), []byte("while-down"))})
		must(err)
		if !res.Committed {
			log.Fatalf("write aborted: %s", res.AbortReason)
		}
	}
	n, err := c.FailLockCount(0, 1)
	must(err)
	fmt.Printf("site 1 is down; %d items fail-locked for it\n", n)

	// Recovery: site 1 announces a new session (control transaction type
	// 1), installs the session vector and fail-locks from site 0, and is
	// immediately available — up-to-date items serve reads at once;
	// stale items are refreshed on demand by copier transactions.
	st, err := c.Recover(1)
	must(err)
	fmt.Printf("site 1 recovered into session %d\n", st.Session)

	res, err = c.Exec(1, []minraid.Op{minraid.Read(8)})
	must(err)
	fmt.Printf("read of a stale copy on the recovering site: %q (refreshed by %d copier txn)\n",
		res.Reads[0].Value, res.Copiers)

	report, err := c.Audit()
	must(err)
	fmt.Println(report)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
