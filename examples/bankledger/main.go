// Bankledger: an ET1/DebitCredit-style bank running on the replicated
// store — the benchmark the paper planned to adopt ("the well-known
// benchmarks ET1 from Tandem Corporation", §1.2) — with a mid-run site
// failure and recovery.
//
// Each transaction moves a random amount through one account, one teller
// and one branch (read-modify-write of three items). The example checks
// the bank's books at the end: on every site, the sum of branch balances
// must equal the sum of teller balances and the sum of account balances,
// and all sites must agree — even though one site missed a third of the
// run and was repaired by fail-locks and copier transactions.
//
//	go run ./examples/bankledger
package main

import (
	"fmt"
	"log"

	"minraid"
)

const (
	sites = 3
	items = 200 // 2 branches, 20 tellers, 178 accounts
	txns  = 300
)

func main() {
	c, err := minraid.NewCluster(minraid.ClusterConfig{Sites: sites, Items: items})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	et1 := minraid.NewET1Workload(items, 42)
	fmt.Printf("bankledger: %s on %d sites\n", et1.Name(), sites)

	run := func(from, to int, coords []minraid.SiteID, allowAbort bool) {
		for i := from; i < to; i++ {
			id := c.NextTxnID()
			ops := buildTransfer(c, et1, id)
			res, err := c.ExecTxn(coords[i%len(coords)], id, ops)
			if err != nil {
				log.Fatal(err)
			}
			if !res.Committed && !allowAbort {
				log.Fatalf("txn %d aborted: %s", id, res.AbortReason)
			}
		}
	}
	all := []minraid.SiteID{0, 1, 2}

	// First third: healthy.
	run(0, txns/3, all, false)

	// Second third: site 2 is down. The first transaction that touches
	// it aborts (failure detection); everything after commits on the
	// surviving majority of copies.
	must(c.Fail(2))
	run(txns/3, 2*txns/3, []minraid.SiteID{0, 1}, true)
	n, _ := c.FailLockCount(0, 2)
	fmt.Printf("site 2 failed mid-run: %d items fail-locked for it\n", n)

	// Final third: site 2 recovers and serves transactions immediately;
	// stale balances it coordinates reads for are refreshed by copier
	// transactions.
	if _, err := c.Recover(2); err != nil {
		log.Fatal(err)
	}
	run(2*txns/3, txns, all, false)

	// Close the books: drain remaining fail-locks by reading every item
	// through the recovered site (each read of a stale copy triggers a
	// copier transaction).
	for i := 0; i < items; i++ {
		if _, err := c.Exec(2, []minraid.Op{minraid.Read(minraid.ItemID(i))}); err != nil {
			log.Fatal(err)
		}
	}

	report, err := c.Audit()
	must(err)
	fmt.Println(report)
	if !report.OK() {
		log.Fatal("books diverged")
	}

	checkBooks(c)
}

// buildTransfer turns the generator's read-modify-write skeleton into an
// actual transfer: read the three balances, write them back with the same
// delta applied. Reads observe pre-transaction state, so the new balance
// is computed from a fresh read transaction first.
func buildTransfer(c *minraid.Cluster, et1 interface {
	Next(minraid.TxnID) []minraid.Op
}, id minraid.TxnID) []minraid.Op {
	skeleton := et1.Next(id)
	ops := make([]minraid.Op, 0, len(skeleton))
	for i := 0; i < len(skeleton); i += 2 {
		item := skeleton[i].Item
		delta := decode(skeleton[i+1].Value)
		// Read the current balance through any up site.
		res, err := c.Exec(0, []minraid.Op{minraid.Read(item)})
		if err != nil || !res.Committed {
			log.Fatalf("balance read failed: %v %v", res, err)
		}
		bal := decode(res.Reads[0].Value)
		ops = append(ops, minraid.Write(item, encode(bal+delta)))
	}
	return ops
}

// checkBooks verifies the accounting identity on every site's own copy.
func checkBooks(c *minraid.Cluster) {
	const branches, tellers = 2, 20
	for s := 0; s < sites; s++ {
		dump, err := c.Dump(minraid.SiteID(s))
		must(err)
		var branchSum, tellerSum, accountSum int64
		for i, iv := range dump {
			v := decode(iv.Value)
			switch {
			case i < branches:
				branchSum += v
			case i < branches+tellers:
				tellerSum += v
			default:
				accountSum += v
			}
		}
		fmt.Printf("site %d books: branches=%d tellers=%d accounts=%d\n",
			s, branchSum, tellerSum, accountSum)
		if branchSum != tellerSum || tellerSum != accountSum {
			log.Fatalf("site %d books do not balance", s)
		}
	}
	fmt.Println("books balance on every site")
}

func decode(b []byte) int64 {
	if len(b) < 8 {
		return 0
	}
	var v int64
	for i := 7; i >= 0; i-- {
		v = v<<8 | int64(b[i])
	}
	return v
}

func encode(v int64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v)
		v >>= 8
	}
	return b
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
