// Partialreplication: the §3.2 setting — each item has copies on only
// some sites (degree 2 of 4 here). Reads of non-hosted items fetch a
// fresh copy from a hosting site; writes reach the hosting sites; the
// availability of an item tracks its own hosts, not the whole system.
//
//	go run ./examples/partialreplication
package main

import (
	"fmt"
	"log"

	"minraid"
)

const (
	sites  = 4
	items  = 12
	degree = 2 // item i lives on sites i%4 and (i+1)%4
)

func main() {
	c, err := minraid.NewCluster(minraid.ClusterConfig{
		Sites: sites, Items: items, ReplicationDegree: degree,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("partial replication: %d items x %d copies over %d sites\n", items, degree, sites)

	// Seed every item through arbitrary coordinators; each write lands
	// only on its two hosting sites.
	for i := 0; i < items; i++ {
		res, err := c.Exec(minraid.SiteID((i+2)%sites), []minraid.Op{
			minraid.Write(minraid.ItemID(i), []byte(fmt.Sprintf("val-%d", i))),
		})
		must(err)
		if !res.Committed {
			log.Fatalf("seed write %d aborted: %s", i, res.AbortReason)
		}
	}
	for s := 0; s < sites; s++ {
		dump, err := c.Dump(minraid.SiteID(s))
		must(err)
		hosted := 0
		for _, iv := range dump {
			if iv.Version != 0 {
				hosted++
			}
		}
		fmt.Printf("site %d stores %d of %d items\n", s, hosted, items)
	}

	// A coordinator that hosts no copy still serves reads: item 0 lives
	// on sites 0 and 1; read it through site 2 (remote fresh-copy read).
	res, err := c.Exec(2, []minraid.Op{minraid.Read(0)})
	must(err)
	fmt.Printf("item 0 read via non-host site 2: %q\n", res.Reads[0].Value)

	// Fail site 1. Items hosted by {0,1} still have the copy on site 0;
	// items hosted by {1,2} still have site 2. Every item stays
	// available — degree 2 tolerates any single failure.
	must(c.Fail(1))
	c.Exec(0, []minraid.Op{minraid.Write(0, []byte("detect"))}) // failure detection
	available := 0
	for i := 0; i < items; i++ {
		res, err := c.Exec(0, []minraid.Op{minraid.Read(minraid.ItemID(i))})
		must(err)
		if res.Committed {
			available++
		}
	}
	fmt.Printf("with site 1 down: %d/%d items still readable\n", available, items)
	if available != items {
		log.Fatal("degree 2 should tolerate one failure")
	}

	// Recover and verify: fail-locks healed, books consistent.
	_, err = c.Recover(1)
	must(err)
	for i := 0; i < items; i++ { // drain stale copies via reads
		if _, err := c.Exec(1, []minraid.Op{minraid.Read(minraid.ItemID(i))}); err != nil {
			log.Fatal(err)
		}
	}
	report, err := c.Audit()
	must(err)
	fmt.Println(report)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
