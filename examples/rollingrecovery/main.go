// Rollingrecovery: a scenario-2-style rolling maintenance window — four
// sites taken down one at a time, as an operator would drain machines for
// upgrades — while transactions keep flowing. With ROWAA plus fail-locks,
// service never stops and no transaction aborts for lack of data ("an
// up-to-date copy of a data item was always available on some site", §4.2.2).
//
// Two-step recovery (the paper's §3.2 proposal) is enabled, so each
// returning site batch-refreshes its stale copies instead of waiting for
// reads to demand them.
//
//	go run ./examples/rollingrecovery
package main

import (
	"fmt"
	"log"
	"time"

	"minraid"
)

const (
	sites       = 4
	items       = 60
	txnsPerStep = 40
)

func main() {
	c, err := minraid.NewCluster(minraid.ClusterConfig{
		Sites: sites, Items: items,
		// Step two of recovery kicks in as soon as the stale fraction
		// drops to 80% — effectively immediately, draining fail-locks
		// in batch.
		BatchCopierThreshold: 0.8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	gen := minraid.NewUniformWorkload(items, 6, 7)

	fmt.Printf("rolling maintenance over %d sites, %d txns per window\n", sites, txnsPerStep)
	dataAborts, detectionAborts := 0, 0

	for victim := 0; victim < sites; victim++ {
		must(c.Fail(minraid.SiteID(victim)))
		fmt.Printf("\n-- maintenance window: site %d down --\n", victim)

		for i := 0; i < txnsPerStep; i++ {
			coord := minraid.SiteID((victim + 1 + i%(sites-1)) % sites)
			id := c.NextTxnID()
			res, err := c.ExecTxn(coord, id, gen.Next(id))
			if err != nil {
				log.Fatal(err)
			}
			if !res.Committed {
				if res.AbortReason == "participating site failed" {
					detectionAborts++ // expected once per window
				} else {
					dataAborts++
				}
			}
		}
		locked, _ := c.FailLockCount(minraid.SiteID((victim+1)%sites), minraid.SiteID(victim))
		fmt.Printf("site %d missed updates on %d items\n", victim, locked)

		st, err := c.Recover(minraid.SiteID(victim))
		must(err)
		fmt.Printf("site %d back up in session %d; batch refresh draining fail-locks...\n",
			victim, st.Session)
		waitClean(c, minraid.SiteID(victim))
	}

	fmt.Printf("\nrolling maintenance done: %d detection aborts (1 per window is expected), %d data aborts\n",
		detectionAborts, dataAborts)
	if dataAborts != 0 {
		log.Fatal("data became unavailable during rolling maintenance")
	}
	report, err := c.Audit()
	must(err)
	fmt.Println(report)
}

// waitClean polls until no fail-locks remain for the given site (the batch
// refresh runs asynchronously).
func waitClean(c *minraid.Cluster, id minraid.SiteID) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		n, err := c.FailLockCount(id, id)
		must(err)
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("site %d still has %d fail-locks", id, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
