package minraid_test

import (
	"bytes"
	"fmt"
	"testing"

	"minraid"
)

// The facade tests exercise the library exactly as an importer would.

func TestPublicQuickstartFlow(t *testing.T) {
	c, err := minraid.NewCluster(minraid.ClusterConfig{Sites: 2, Items: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Exec(0, []minraid.Op{minraid.Write(7, []byte("hello"))})
	if err != nil || !res.Committed {
		t.Fatalf("write: %v %v", res, err)
	}
	res, err = c.Exec(1, []minraid.Op{minraid.Read(7)})
	if err != nil || !res.Committed {
		t.Fatalf("read: %v %v", res, err)
	}
	if !bytes.Equal(res.Reads[0].Value, []byte("hello")) {
		t.Errorf("read = %q", res.Reads[0].Value)
	}

	if err := c.Fail(1); err != nil {
		t.Fatal(err)
	}
	// Detection abort, then processing continues on site 0 alone.
	c.Exec(0, []minraid.Op{minraid.Write(8, []byte("x"))})
	res, err = c.Exec(0, []minraid.Op{minraid.Write(8, []byte("solo"))})
	if err != nil || !res.Committed {
		t.Fatalf("single-site write: %v %v", res, err)
	}

	if _, err := c.Recover(1); err != nil {
		t.Fatal(err)
	}
	report, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Error(report)
	}
}

func TestPublicPolicies(t *testing.T) {
	for _, p := range []minraid.Policy{minraid.ROWAA(), minraid.ROWA(), minraid.Quorum()} {
		c, err := minraid.NewCluster(minraid.ClusterConfig{Sites: 3, Items: 10, Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Exec(0, []minraid.Op{minraid.Write(1, []byte(p.Name()))})
		if err != nil || !res.Committed {
			t.Errorf("%s: %v %v", p.Name(), res, err)
		}
		c.Close()
	}
}

func TestPublicWorkloadsDrive(t *testing.T) {
	c, err := minraid.NewCluster(minraid.ClusterConfig{Sites: 2, Items: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	gens := []minraid.Generator{
		minraid.NewUniformWorkload(100, 5, 1),
		minraid.NewET1Workload(100, 1),
		minraid.NewWisconsinWorkload(100, 1),
		minraid.NewHotColdWorkload(100, 10, 5, 1),
	}
	for _, g := range gens {
		for i := 0; i < 5; i++ {
			id := c.NextTxnID()
			res, err := c.ExecTxn(minraid.SiteID(i%2), id, g.Next(id))
			if err != nil || !res.Committed {
				t.Fatalf("%s txn %d: %v %v", g.Name(), id, res, err)
			}
		}
	}
	report, _ := c.Audit()
	if !report.OK() {
		t.Error(report)
	}
}

func TestPublicWALStoreFactory(t *testing.T) {
	dir := t.TempDir()
	c, err := minraid.NewCluster(minraid.ClusterConfig{
		Sites: 2, Items: 10,
		StoreFactory: func(id minraid.SiteID) (minraid.Store, error) {
			return minraid.OpenWALStore(dir+"/"+id.String(), 10)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Exec(0, []minraid.Op{minraid.Write(3, []byte("durable"))})
	if err != nil || !res.Committed {
		t.Fatalf("WAL-backed write: %v %v", res, err)
	}
}

func TestPublicSchedules(t *testing.T) {
	if minraid.Scenario1Schedule().Txns != 120 {
		t.Error("scenario 1 length")
	}
	if minraid.Scenario2Schedule().Txns != 160 {
		t.Error("scenario 2 length")
	}
	res, err := minraid.RunSchedule(minraid.ExperimentConfig{Seed: 3}, minraid.Scenario1Schedule(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Txns != 120 || !res.AuditOK {
		t.Errorf("schedule run: %+v", res)
	}
}

func TestPublicPartialReplication(t *testing.T) {
	c, err := minraid.NewCluster(minraid.ClusterConfig{Sites: 4, Items: 8, ReplicationDegree: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Item 0 hosted by sites 0 and 1; write through a non-host works.
	res, err := c.Exec(3, []minraid.Op{minraid.Write(0, []byte("partial"))})
	if err != nil || !res.Committed {
		t.Fatalf("write: %v %v", res, err)
	}
	res, err = c.Exec(2, []minraid.Op{minraid.Read(0)})
	if err != nil || !res.Committed {
		t.Fatalf("read: %v %v", res, err)
	}
	if !bytes.Equal(res.Reads[0].Value, []byte("partial")) {
		t.Errorf("read = %q", res.Reads[0].Value)
	}
	report, err := c.Audit()
	if err != nil || !report.OK() {
		t.Errorf("audit: %v %v", report, err)
	}
}

func TestPublicConcurrentMode(t *testing.T) {
	c, err := minraid.NewCluster(minraid.ClusterConfig{Sites: 2, Items: 10, ConcurrentTxns: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 10; i++ {
				id := c.NextTxnID()
				item := minraid.ItemID(w) // disjoint items: all must commit
				res, err := c.ExecTxn(minraid.SiteID(w%2), id, []minraid.Op{
					minraid.Write(item, []byte{byte(w), byte(i)}),
				})
				if err != nil {
					done <- err
					return
				}
				if !res.Committed {
					done <- fmt.Errorf("abort: %s", res.AbortReason)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	report, err := c.Audit()
	if err != nil || !report.OK() {
		t.Errorf("audit: %v %v", report, err)
	}
}
