package policy

import (
	"testing"

	"minraid/internal/core"
)

func vecWithDown(n int, down ...core.SiteID) core.SessionVector {
	v := core.NewSessionVector(n)
	for _, d := range down {
		v.MarkDown(d)
	}
	return v
}

func TestMajority(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 7: 4}
	for n, want := range cases {
		if got := Majority(n); got != want {
			t.Errorf("Majority(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"rowaa", "rowa", "quorum"} {
		p, ok := ByName(name)
		if !ok || p.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, ok)
		}
	}
	if _, ok := ByName("paxos"); ok {
		t.Error("unknown policy resolved")
	}
}

func TestROWAAWriteTargetsSkipDown(t *testing.T) {
	vec := vecWithDown(4, 2)
	got := ROWAA{}.WriteTargets(vec, 0)
	want := []core.SiteID{1, 3}
	if len(got) != len(want) {
		t.Fatalf("targets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("targets = %v, want %v", got, want)
		}
	}
}

func TestROWAAAcks(t *testing.T) {
	p := ROWAA{}
	if !p.UsesFailLocks() || !p.LocalRead() || !p.AbortOnMissingAck() {
		t.Error("ROWAA flags wrong")
	}
	if p.ReadQuorum(5) != 1 {
		t.Error("ROWAA reads one copy")
	}
	if p.RequiredAcks(4, 2) != 2 {
		t.Error("ROWAA requires all contacted acks")
	}
}

func TestROWAContactsDownSites(t *testing.T) {
	vec := vecWithDown(4, 2)
	got := ROWA{}.WriteTargets(vec, 1)
	want := []core.SiteID{0, 2, 3} // includes the down site 2
	if len(got) != len(want) {
		t.Fatalf("targets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("targets = %v, want %v", got, want)
		}
	}
	p := ROWA{}
	if p.UsesFailLocks() {
		t.Error("ROWA must not use fail-locks")
	}
	if p.RequiredAcks(4, 3) != 3 || !p.AbortOnMissingAck() {
		t.Error("ROWA must require every ack")
	}
}

func TestQuorumSemantics(t *testing.T) {
	p := Quorum{}
	if p.UsesFailLocks() || p.LocalRead() || p.AbortOnMissingAck() {
		t.Error("quorum flags wrong")
	}
	if p.ReadQuorum(4) != 3 {
		t.Errorf("ReadQuorum(4) = %d", p.ReadQuorum(4))
	}
	// Majority of 4 is 3; coordinator counts, so 2 acks from others.
	if p.RequiredAcks(4, 3) != 2 {
		t.Errorf("RequiredAcks(4,3) = %d", p.RequiredAcks(4, 3))
	}
	vec := vecWithDown(3, 0)
	if got := p.WriteTargets(vec, 1); len(got) != 2 {
		t.Errorf("quorum targets = %v, want both other sites", got)
	}
}

// Quorum sizes must be computed over an item's copy count, not the
// cluster size: in a 5-site system an item replicated on 3 sites has a
// majority of 2, and sizing from the cluster (majority 3) would demand
// more copies than the item possesses — permanently unwritable.
func TestQuorumSizesFromDegree(t *testing.T) {
	p := Quorum{}
	const sites, degree = 5, 3
	if need := p.ReadQuorum(degree); need != 2 {
		t.Errorf("ReadQuorum(degree %d) = %d, want 2", degree, need)
	}
	if cluster, item := p.ReadQuorum(sites), p.ReadQuorum(degree); cluster <= item {
		t.Fatalf("test premise broken: cluster-sized read quorum %d should exceed the item's %d", cluster, item)
	}
	// Write quorum for a degree-3 item: 2 copies total, so 1 ack beyond
	// the coordinator's own hosted copy.
	if acks := p.RequiredAcks(degree, 2); acks != 1 {
		t.Errorf("RequiredAcks(degree %d) = %d, want 1", degree, acks)
	}
	// Degree 1 degenerates to the single copy itself.
	if p.ReadQuorum(1) != 1 || p.RequiredAcks(1, 0) != 0 {
		t.Errorf("degree-1 quorums: read %d acks %d", p.ReadQuorum(1), p.RequiredAcks(1, 0))
	}
}

// The availability contrast that motivates the paper: with one site down in
// a 4-site system, ROWAA still contacts everyone it believes is up and can
// commit; ROWA's required-acks can never be met because the down site never
// answers; quorum needs only a majority.
func TestAvailabilityContrast(t *testing.T) {
	vec := vecWithDown(4, 3)
	self := core.SiteID(0)

	rowaa := ROWAA{}
	targets := rowaa.WriteTargets(vec, self)
	if len(targets) != 2 || rowaa.RequiredAcks(4, len(targets)) != 2 {
		t.Error("ROWAA should proceed with the two live peers")
	}

	rowa := ROWA{}
	targets = rowa.WriteTargets(vec, self)
	// Three targets contacted, three acks required, but site 3 is down:
	// at most two acks can ever arrive.
	if rowa.RequiredAcks(4, len(targets)) != 3 {
		t.Error("ROWA must demand the unreachable ack")
	}

	q := Quorum{}
	targets = q.WriteTargets(vec, self)
	if q.RequiredAcks(4, len(targets)) != 2 {
		t.Error("quorum should need 2 of 3 contacted")
	}
}
