// Package policy abstracts the replicated-copy-control strategy a site
// executes, so the transaction engine can run the paper's protocol and the
// baselines it is compared against through one code path:
//
//   - ROWAA — read-one/write-all-available with session vectors and
//     fail-locks, the paper's protocol. "A protocol using the ROWAA
//     strategy allows transaction processing as long as a single copy is
//     available" (§1.1).
//   - ROWA — classic read-one/write-ALL: every write must reach every
//     site, so a single site failure blocks all writes. This is the
//     baseline whose poor availability motivates ROWAA.
//   - Quorum — majority read/write voting with version numbers (the
//     [ElAb85]/[Bern84] family the paper cites): available while a
//     majority is up, but every read costs a round of messages.
package policy

import "minraid/internal/core"

// Policy is the replication strategy consulted by the transaction engine
// at its decision points.
type Policy interface {
	// Name returns the policy's short name ("rowaa", "rowa", "quorum").
	Name() string

	// UsesFailLocks reports whether the protocol maintains fail-locks at
	// commit time and runs copier transactions during recovery. Only
	// ROWAA does.
	UsesFailLocks() bool

	// LocalRead reports whether a read is served from the coordinator's
	// own copy (read-one). When false the coordinator must collect
	// ReadQuorum versioned copies and take the highest version.
	LocalRead() bool

	// ReadQuorum returns the number of copies (including the
	// coordinator's own, when it hosts one) a read of an item with n
	// copies must observe. Under full replication n is the site count;
	// under partial replication callers must pass the item's hosting
	// degree — a majority of the cluster can exceed an item's copy
	// count, which would make the item permanently unreadable.
	ReadQuorum(n int) int

	// WriteTargets returns the sites (excluding self) that must receive
	// the phase-one copy update, given the coordinator's nominal session
	// vector.
	WriteTargets(vec core.SessionVector, self core.SiteID) []core.SiteID

	// RequiredAcks returns the number of positive phase-one acks, out of
	// the contacted targets, needed to commit a write to an item with n
	// copies. The coordinator's own copy, when it hosts one, is written
	// locally and is not counted. As with ReadQuorum, n is the site
	// count only under full replication; partial-map callers size the
	// quorum per item from its hosting degree.
	RequiredAcks(n, contacted int) int

	// AbortOnMissingAck reports whether a missing or negative ack from a
	// contacted target aborts the transaction even when RequiredAcks is
	// already met. ROWAA and ROWA abort (a perceived-up site failed
	// mid-transaction — Appendix A); quorum tolerates stragglers.
	AbortOnMissingAck() bool
}

// Majority returns the majority quorum size for n sites.
func Majority(n int) int { return n/2 + 1 }

// ROWAA is the paper's read-one/write-all-available protocol. "If a
// transaction on an operational site knows that a particular site k is
// down, the transaction does not attempt to read a copy from site k or to
// send an update to site k" (§1.1) — hence write targets come from the
// nominal session vector.
type ROWAA struct{}

// Name implements Policy.
func (ROWAA) Name() string { return "rowaa" }

// UsesFailLocks implements Policy.
func (ROWAA) UsesFailLocks() bool { return true }

// LocalRead implements Policy.
func (ROWAA) LocalRead() bool { return true }

// ReadQuorum implements Policy.
func (ROWAA) ReadQuorum(int) int { return 1 }

// WriteTargets implements Policy: all operational sites except self.
func (ROWAA) WriteTargets(vec core.SessionVector, self core.SiteID) []core.SiteID {
	return vec.Operational(self)
}

// RequiredAcks implements Policy: write-all-available means every
// contacted (perceived-up) site must ack.
func (ROWAA) RequiredAcks(_, contacted int) int { return contacted }

// AbortOnMissingAck implements Policy: "if ack received from all
// participating sites [commit] else abort database transaction; run control
// type 2 transaction" (Appendix A.1).
func (ROWAA) AbortOnMissingAck() bool { return true }

// ROWA is the strict read-one/write-all baseline: it ignores the session
// vector and insists every copy in the system receives every write. Any
// down site therefore blocks all write transactions — the availability gap
// ROWAA exists to close.
type ROWA struct{}

// Name implements Policy.
func (ROWA) Name() string { return "rowa" }

// UsesFailLocks implements Policy: with write-all semantics no committed
// write can ever be missed by a site, so there is nothing to fail-lock.
func (ROWA) UsesFailLocks() bool { return false }

// LocalRead implements Policy.
func (ROWA) LocalRead() bool { return true }

// ReadQuorum implements Policy.
func (ROWA) ReadQuorum(int) int { return 1 }

// WriteTargets implements Policy: every site except self, up or not.
func (ROWA) WriteTargets(vec core.SessionVector, self core.SiteID) []core.SiteID {
	out := make([]core.SiteID, 0, vec.Len()-1)
	for i := 0; i < vec.Len(); i++ {
		if id := core.SiteID(i); id != self {
			out = append(out, id)
		}
	}
	return out
}

// RequiredAcks implements Policy.
func (ROWA) RequiredAcks(_, contacted int) int { return contacted }

// AbortOnMissingAck implements Policy.
func (ROWA) AbortOnMissingAck() bool { return true }

// Quorum is majority read/write voting with version numbers. Reads collect
// a majority of versioned copies and take the highest version; writes
// commit once a majority of copies (including the coordinator's) is
// updated. Stragglers and down sites are tolerated as long as a majority
// answers.
type Quorum struct{}

// Name implements Policy.
func (Quorum) Name() string { return "quorum" }

// UsesFailLocks implements Policy: version voting subsumes staleness
// tracking — an out-of-date copy simply loses the vote.
func (Quorum) UsesFailLocks() bool { return false }

// LocalRead implements Policy.
func (Quorum) LocalRead() bool { return false }

// ReadQuorum implements Policy.
func (Quorum) ReadQuorum(n int) int { return Majority(n) }

// WriteTargets implements Policy: try everyone; the ack count decides.
func (Quorum) WriteTargets(vec core.SessionVector, self core.SiteID) []core.SiteID {
	return ROWA{}.WriteTargets(vec, self)
}

// RequiredAcks implements Policy: a majority including the coordinator's
// own copy, so Majority(n)-1 acks from others.
func (Quorum) RequiredAcks(n, _ int) int { return Majority(n) - 1 }

// AbortOnMissingAck implements Policy.
func (Quorum) AbortOnMissingAck() bool { return false }

// ByName returns the policy with the given Name.
func ByName(name string) (Policy, bool) {
	switch name {
	case "rowaa":
		return ROWAA{}, true
	case "rowa":
		return ROWA{}, true
	case "quorum":
		return Quorum{}, true
	default:
		return nil, false
	}
}

var (
	_ Policy = ROWAA{}
	_ Policy = ROWA{}
	_ Policy = Quorum{}
)
