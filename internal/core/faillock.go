package core

import "fmt"

// FailLockTable records fail-locks for every data item. Per the paper
// (§1.2), "we implemented fail-locks with a bit map for each data item";
// bit n set for item i means a fail-lock is set for site n on item i — site
// n's copy of item i missed an update while site n was down and is
// therefore out of date.
//
// The table is sized at construction to the database size and to at most
// MaxSites sites. All operations are O(1) bit manipulation so that, as in
// the paper, "the fail-lock operations [can] be performed very quickly".
// The table is not internally synchronized; the owning site's event loop
// serializes access.
type FailLockTable struct {
	bits  []uint64 // one bitmap per item, bit k = fail-lock for site k
	sites int
}

// NewFailLockTable returns an all-clear table for items items and sites
// sites.
func NewFailLockTable(items, sites int) *FailLockTable {
	if sites <= 0 || sites > MaxSites {
		panic(fmt.Sprintf("core: site count %d out of range 1..%d", sites, MaxSites))
	}
	if items < 0 {
		panic("core: negative item count")
	}
	return &FailLockTable{bits: make([]uint64, items), sites: sites}
}

// Items returns the number of data items the table covers.
func (t *FailLockTable) Items() int { return len(t.bits) }

// Sites returns the number of sites the table covers.
func (t *FailLockTable) Sites() int { return t.sites }

// Set sets the fail-lock for site on item: site's copy of item has missed
// an update. Fail-lock bits are set by an operational site on behalf of a
// failed site which has missed an update (paper §1.1).
func (t *FailLockTable) Set(item ItemID, site SiteID) {
	t.check(item, site)
	t.bits[item] |= 1 << site
}

// Clear clears the fail-lock for site on item: site's copy of item has been
// refreshed by a write or a copier transaction.
func (t *FailLockTable) Clear(item ItemID, site SiteID) {
	t.check(item, site)
	t.bits[item] &^= 1 << site
}

// IsSet reports whether a fail-lock is set for site on item, i.e. whether
// site's copy of item is known to be out of date.
func (t *FailLockTable) IsSet(item ItemID, site SiteID) bool {
	t.check(item, site)
	return t.bits[item]&(1<<site) != 0
}

// Mask returns the raw bitmap for item.
func (t *FailLockTable) Mask(item ItemID) uint64 {
	if int(item) >= len(t.bits) {
		panic(fmt.Sprintf("core: item %d out of range for %d-item table", item, len(t.bits)))
	}
	return t.bits[item]
}

// AnySet reports whether any site holds a fail-lock on item.
func (t *FailLockTable) AnySet(item ItemID) bool { return t.Mask(item) != 0 }

// CountForSite returns the number of items fail-locked for site — the
// measure of inconsistency the paper's figures plot ("since each set
// fail-lock represents an inconsistent copy, the number of fail-locks set
// is a measure of inconsistency", §4).
func (t *FailLockTable) CountForSite(site SiteID) int {
	t.checkSite(site)
	n := 0
	mask := uint64(1) << site
	for _, b := range t.bits {
		if b&mask != 0 {
			n++
		}
	}
	return n
}

// TotalSet returns the total number of fail-lock bits set across all items
// and sites.
func (t *FailLockTable) TotalSet() int {
	n := 0
	for _, b := range t.bits {
		n += popcount(b)
	}
	return n
}

// ItemsLockedFor returns, in ascending order, every item fail-locked for
// site. A recovering site uses this to distinguish out-of-date items from
// up-to-date items so the up-to-date items can be made available for
// transaction processing immediately.
func (t *FailLockTable) ItemsLockedFor(site SiteID) []ItemID {
	t.checkSite(site)
	mask := uint64(1) << site
	var out []ItemID
	for i, b := range t.bits {
		if b&mask != 0 {
			out = append(out, ItemID(i))
		}
	}
	return out
}

// UpToDateSites returns the sites whose copy of item carries no fail-lock,
// excluding except. These are the candidate donors for a copier
// transaction: a copier "causes a read from a good data item on another
// operational site" (paper §1.1).
func (t *FailLockTable) UpToDateSites(item ItemID, except SiteID) []SiteID {
	b := t.Mask(item)
	out := make([]SiteID, 0, t.sites)
	for s := 0; s < t.sites; s++ {
		id := SiteID(s)
		if id == except {
			continue
		}
		if b&(1<<id) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Snapshot returns a copy of the raw bitmaps, suitable for shipping to a
// recovering site inside a control transaction of type 1.
func (t *FailLockTable) Snapshot() []uint64 {
	out := make([]uint64, len(t.bits))
	copy(out, t.bits)
	return out
}

// Install replaces the table contents with a snapshot taken from another
// site. The snapshot must cover the same database size.
func (t *FailLockTable) Install(snapshot []uint64) error {
	if len(snapshot) != len(t.bits) {
		return fmt.Errorf("core: fail-lock snapshot covers %d items, table holds %d", len(snapshot), len(t.bits))
	}
	copy(t.bits, snapshot)
	return nil
}

// MergeAhead merges another site's per-item lock words into the table,
// adopting their word wholesale for every item where their copy version
// is strictly ahead of ours. Commit-time maintenance rewrites an item's
// whole lock word alongside the copy (Maintain), so the word travels with
// the version: whoever holds the newer copy of an item holds the newer
// lock word for it. Items where the other side is not ahead keep the
// local word — a recovering site's surviving table may carry bits that
// were legitimately cleared while it was down, and adopting those would
// re-lock fresh copies.
func (t *FailLockTable) MergeAhead(words, theirVers, ownVers []uint64) error {
	if len(words) != len(t.bits) || len(theirVers) != len(t.bits) || len(ownVers) != len(t.bits) {
		return fmt.Errorf("core: fail-lock merge covers %d/%d items, table holds %d", len(words), len(theirVers), len(t.bits))
	}
	for i, w := range words {
		if theirVers[i] > ownVers[i] {
			t.bits[i] = w
		}
	}
	return nil
}

// Maintain performs the commit-time fail-lock maintenance of §1.2 for one
// written item: "the nominal session vector was examined and the fail-lock
// bits [were set] for each failed site [and cleared for each up site]. Note
// that this resulted in some fail-lock bits being re-cleared for an
// operational site. However, for our system this implementation was more
// efficient than conditionally performing fail-lock maintenance."
//
// Sites in StatusRecovering are treated like down sites: they have not yet
// begun receiving copy updates, so a write committed now is an update they
// miss.
//
// Maintain returns the number of bits it newly set and newly cleared, so a
// site can account fail-lock churn (re-clears of already-clear bits are not
// counted).
func (t *FailLockTable) Maintain(item ItemID, vec SessionVector) (set, cleared int) {
	return t.MaintainMasked(item, vec, ^uint64(0))
}

// MaintainMasked is Maintain restricted to the sites in hostMask: under
// partial replication only hosting sites can miss an update on item, so
// only their bits are maintained. Maintain is MaintainMasked with an
// all-ones mask.
func (t *FailLockTable) MaintainMasked(item ItemID, vec SessionVector, hostMask uint64) (set, cleared int) {
	if int(item) >= len(t.bits) {
		panic(fmt.Sprintf("core: item %d out of range for %d-item table", item, len(t.bits)))
	}
	var up, known uint64
	for s := 0; s < vec.Len() && s < t.sites; s++ {
		known |= 1 << s
		if vec.Status(SiteID(s)) == StatusUp {
			up |= 1 << s
		}
	}
	up &= hostMask
	known &= hostMask
	// Set the bit of every known non-operational hosting site, clear the
	// bit of every operational hosting site; bits outside the vector or
	// the host mask are left untouched.
	before := t.bits[item]
	after := (before &^ up) | (known &^ up)
	t.bits[item] = after
	return popcount(after &^ before), popcount(before &^ after)
}

// Reset clears every fail-lock. Used only by tests and experiment setup.
func (t *FailLockTable) Reset() {
	for i := range t.bits {
		t.bits[i] = 0
	}
}

func (t *FailLockTable) check(item ItemID, site SiteID) {
	if int(item) >= len(t.bits) {
		panic(fmt.Sprintf("core: item %d out of range for %d-item table", item, len(t.bits)))
	}
	t.checkSite(site)
}

func (t *FailLockTable) checkSite(site SiteID) {
	if int(site) >= t.sites {
		panic(fmt.Sprintf("core: site %d out of range for %d-site table", site, t.sites))
	}
}

// popcount returns the number of set bits in b. Implemented locally to keep
// the package dependency-free beyond fmt (math/bits would also do; this is
// the classic SWAR popcount).
func popcount(b uint64) int {
	b -= (b >> 1) & 0x5555555555555555
	b = (b & 0x3333333333333333) + ((b >> 2) & 0x3333333333333333)
	b = (b + (b >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((b * 0x0101010101010101) >> 56)
}
