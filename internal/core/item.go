package core

import "fmt"

// OpKind distinguishes the two operation types of the paper's workload
// model: "an operation was defined to be a read or write of a database data
// item" (§1.2).
type OpKind uint8

const (
	// OpRead reads one data item.
	OpRead OpKind = iota
	// OpWrite overwrites one data item with a new value.
	OpWrite
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is a single operation of a database transaction.
type Op struct {
	Kind  OpKind
	Item  ItemID
	Value []byte // write payload; nil for reads
}

// Read returns a read operation on item.
func Read(item ItemID) Op { return Op{Kind: OpRead, Item: item} }

// Write returns a write operation setting item to value.
func Write(item ItemID, value []byte) Op { return Op{Kind: OpWrite, Item: item, Value: value} }

// String implements fmt.Stringer.
func (o Op) String() string {
	if o.Kind == OpRead {
		return fmt.Sprintf("r(%d)", o.Item)
	}
	return fmt.Sprintf("w(%d,%dB)", o.Item, len(o.Value))
}

// WriteSet returns the distinct items written by ops, in first-written
// order.
func WriteSet(ops []Op) []ItemID {
	seen := make(map[ItemID]bool, len(ops))
	var out []ItemID
	for _, op := range ops {
		if op.Kind == OpWrite && !seen[op.Item] {
			seen[op.Item] = true
			out = append(out, op.Item)
		}
	}
	return out
}

// ReadSet returns the distinct items read by ops, in first-read order.
func ReadSet(ops []Op) []ItemID {
	seen := make(map[ItemID]bool, len(ops))
	var out []ItemID
	for _, op := range ops {
		if op.Kind == OpRead && !seen[op.Item] {
			seen[op.Item] = true
			out = append(out, op.Item)
		}
	}
	return out
}

// ItemVersion is a versioned copy of a data item as shipped between sites:
// in phase-one copy updates, in copier-transaction responses, and in dump
// replies used by the consistency audit. Version is the TxnID of the
// transaction that wrote the value; under the system's serial processing it
// totally orders writes, so two copies of an item are consistent exactly
// when their versions are equal.
type ItemVersion struct {
	Item    ItemID
	Version TxnID
	Value   []byte
}

// String implements fmt.Stringer.
func (iv ItemVersion) String() string {
	return fmt.Sprintf("item %d v%d (%dB)", iv.Item, iv.Version, len(iv.Value))
}
