package core

import "testing"

func TestFullReplication(t *testing.T) {
	m := FullReplication(5, 3)
	if !m.IsFull() || m.Items() != 5 || m.Sites() != 3 {
		t.Fatalf("dims/full: %v %d %d", m.IsFull(), m.Items(), m.Sites())
	}
	for i := 0; i < 5; i++ {
		item := ItemID(i)
		if m.Degree(item) != 3 {
			t.Errorf("item %d degree = %d", i, m.Degree(item))
		}
		for s := 0; s < 3; s++ {
			if !m.IsHost(item, SiteID(s)) {
				t.Errorf("site %d not host of %d", s, i)
			}
		}
	}
}

func TestRoundRobinReplication(t *testing.T) {
	m := RoundRobinReplication(8, 4, 2)
	if m.IsFull() {
		t.Error("degree 2 of 4 reported full")
	}
	for i := 0; i < 8; i++ {
		item := ItemID(i)
		if m.Degree(item) != 2 {
			t.Fatalf("item %d degree = %d", i, m.Degree(item))
		}
		// item i hosted by i mod 4 and (i+1) mod 4.
		want1, want2 := SiteID(i%4), SiteID((i+1)%4)
		if !m.IsHost(item, want1) || !m.IsHost(item, want2) {
			t.Errorf("item %d hosts = %v, want %v %v", i, m.Hosts(item), want1, want2)
		}
	}
	// Degree == sites collapses to full replication.
	if !RoundRobinReplication(8, 4, 4).IsFull() {
		t.Error("degree==sites not full")
	}
	// Placement is balanced: each site hosts items*degree/sites items.
	counts := make([]int, 4)
	for i := 0; i < 8; i++ {
		for _, h := range m.Hosts(ItemID(i)) {
			counts[h]++
		}
	}
	for s, n := range counts {
		if n != 4 {
			t.Errorf("site %d hosts %d items, want 4", s, n)
		}
	}
}

func TestReplicaMapBounds(t *testing.T) {
	for name, f := range map[string]func(){
		"zero degree":    func() { RoundRobinReplication(4, 2, 0) },
		"degree > sites": func() { RoundRobinReplication(4, 2, 3) },
		"zero items":     func() { FullReplication(0, 2) },
		"zero sites":     func() { FullReplication(4, 0) },
		"too many sites": func() { FullReplication(4, MaxSites+1) },
		"rr too many sites": func() {
			RoundRobinReplication(4, MaxSites+1, MaxSites+1)
		},
		"item range": func() {
			m := FullReplication(4, 2)
			m.HostMask(9)
		},
		"hosts item range": func() {
			m := FullReplication(4, 2)
			m.Hosts(4)
		},
		"degree item range": func() {
			m := FullReplication(4, 2)
			m.Degree(100)
		},
		"rehost item range": func() {
			m := RoundRobinReplication(4, 3, 2)
			m.Rehost(7, 0, 2)
		},
		"rehost site range": func() {
			m := RoundRobinReplication(4, 3, 2)
			m.Rehost(0, 0, 3)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestReplicaMapMaxSites(t *testing.T) {
	// At the 64-site ceiling allMask must not overflow: every site of a
	// full map hosts every item and the mask has all 64 bits set.
	m := FullReplication(3, MaxSites)
	if !m.IsFull() || m.Sites() != MaxSites {
		t.Fatalf("dims: full=%v sites=%d", m.IsFull(), m.Sites())
	}
	if got := m.HostMask(0); got != ^uint64(0) {
		t.Errorf("HostMask = %#x, want all ones", got)
	}
	if d := m.Degree(2); d != MaxSites {
		t.Errorf("degree = %d, want %d", d, MaxSites)
	}
	if !m.IsHost(1, SiteID(MaxSites-1)) {
		t.Error("highest site not a host")
	}
	// A partial map at MaxSites keeps per-item degree exact.
	p := RoundRobinReplication(130, MaxSites, 3)
	for i := 0; i < 130; i++ {
		if d := p.Degree(ItemID(i)); d != 3 {
			t.Fatalf("item %d degree = %d", i, d)
		}
	}
}

func TestReplicaMapCloneRehost(t *testing.T) {
	m := RoundRobinReplication(6, 4, 2) // item 0 on sites 0,1
	c := m.Clone()
	c.Rehost(0, 1, 3)
	if !c.IsHost(0, 3) || c.IsHost(0, 1) || c.Degree(0) != 2 {
		t.Errorf("rehosted clone: hosts=%v", c.Hosts(0))
	}
	// The original is untouched — copy-on-write is the whole point.
	if !m.IsHost(0, 1) || m.IsHost(0, 3) {
		t.Errorf("original mutated: hosts=%v", m.Hosts(0))
	}
	// Rehosting every item of a full map off one site drops fullness.
	f := FullReplication(2, 3)
	fc := f.Clone()
	if !fc.IsFull() {
		t.Fatal("clone lost fullness")
	}
	fc.Rehost(0, 2, 1)
	if fc.IsFull() {
		t.Error("map with a missing copy still reports full")
	}
	if fc.Degree(0) != 2 {
		t.Errorf("degree after rehost off full = %d", fc.Degree(0))
	}
}

func TestHostedCount(t *testing.T) {
	m := RoundRobinReplication(8, 4, 2)
	for s := 0; s < 4; s++ {
		if n := m.HostedCount(SiteID(s)); n != 4 {
			t.Errorf("site %d hosts %d, want 4", s, n)
		}
	}
	c := m.Clone()
	c.Rehost(0, 0, 2) // item 0: sites 0,1 -> 1,2
	if c.HostedCount(0) != 3 || c.HostedCount(2) != 5 {
		t.Errorf("counts after rehost: %d %d", c.HostedCount(0), c.HostedCount(2))
	}
}

func TestMaintainMasked(t *testing.T) {
	fl := NewFailLockTable(2, 4)
	vec := NewSessionVector(4)
	vec.MarkDown(1)
	vec.MarkDown(3)
	// Hosts of item 0 are sites 0 and 1 only.
	set, cleared := fl.MaintainMasked(0, vec, 0b0011)
	if set != 1 || cleared != 0 {
		t.Errorf("set=%d cleared=%d", set, cleared)
	}
	if !fl.IsSet(0, 1) {
		t.Error("down hosting site not locked")
	}
	if fl.IsSet(0, 3) {
		t.Error("down NON-hosting site locked")
	}
	// A pre-set stray bit outside the mask is left untouched.
	fl.Set(1, 3)
	fl.MaintainMasked(1, vec, 0b0011)
	if !fl.IsSet(1, 3) {
		t.Error("mask did not protect out-of-mask bit")
	}
}
