package core

import "testing"

func TestFullReplication(t *testing.T) {
	m := FullReplication(5, 3)
	if !m.IsFull() || m.Items() != 5 || m.Sites() != 3 {
		t.Fatalf("dims/full: %v %d %d", m.IsFull(), m.Items(), m.Sites())
	}
	for i := 0; i < 5; i++ {
		item := ItemID(i)
		if m.Degree(item) != 3 {
			t.Errorf("item %d degree = %d", i, m.Degree(item))
		}
		for s := 0; s < 3; s++ {
			if !m.IsHost(item, SiteID(s)) {
				t.Errorf("site %d not host of %d", s, i)
			}
		}
	}
}

func TestRoundRobinReplication(t *testing.T) {
	m := RoundRobinReplication(8, 4, 2)
	if m.IsFull() {
		t.Error("degree 2 of 4 reported full")
	}
	for i := 0; i < 8; i++ {
		item := ItemID(i)
		if m.Degree(item) != 2 {
			t.Fatalf("item %d degree = %d", i, m.Degree(item))
		}
		// item i hosted by i mod 4 and (i+1) mod 4.
		want1, want2 := SiteID(i%4), SiteID((i+1)%4)
		if !m.IsHost(item, want1) || !m.IsHost(item, want2) {
			t.Errorf("item %d hosts = %v, want %v %v", i, m.Hosts(item), want1, want2)
		}
	}
	// Degree == sites collapses to full replication.
	if !RoundRobinReplication(8, 4, 4).IsFull() {
		t.Error("degree==sites not full")
	}
	// Placement is balanced: each site hosts items*degree/sites items.
	counts := make([]int, 4)
	for i := 0; i < 8; i++ {
		for _, h := range m.Hosts(ItemID(i)) {
			counts[h]++
		}
	}
	for s, n := range counts {
		if n != 4 {
			t.Errorf("site %d hosts %d items, want 4", s, n)
		}
	}
}

func TestReplicaMapBounds(t *testing.T) {
	for name, f := range map[string]func(){
		"zero degree":    func() { RoundRobinReplication(4, 2, 0) },
		"degree > sites": func() { RoundRobinReplication(4, 2, 3) },
		"zero items":     func() { FullReplication(0, 2) },
		"zero sites":     func() { FullReplication(4, 0) },
		"item range": func() {
			m := FullReplication(4, 2)
			m.HostMask(9)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMaintainMasked(t *testing.T) {
	fl := NewFailLockTable(2, 4)
	vec := NewSessionVector(4)
	vec.MarkDown(1)
	vec.MarkDown(3)
	// Hosts of item 0 are sites 0 and 1 only.
	set, cleared := fl.MaintainMasked(0, vec, 0b0011)
	if set != 1 || cleared != 0 {
		t.Errorf("set=%d cleared=%d", set, cleared)
	}
	if !fl.IsSet(0, 1) {
		t.Error("down hosting site not locked")
	}
	if fl.IsSet(0, 3) {
		t.Error("down NON-hosting site locked")
	}
	// A pre-set stray bit outside the mask is left untouched.
	fl.Set(1, 3)
	fl.MaintainMasked(1, vec, 0b0011)
	if !fl.IsSet(1, 3) {
		t.Error("mask did not protect out-of-mask bit")
	}
}
