package core

import "testing"

// The paper chose bitmaps so "the fail-lock operations [could] be
// performed very quickly" (§1.2); these benches quantify that choice.

func BenchmarkFailLockSetClear(b *testing.B) {
	fl := NewFailLockTable(1000, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		item := ItemID(i % 1000)
		fl.Set(item, SiteID(i%8))
		fl.Clear(item, SiteID(i%8))
	}
}

func BenchmarkFailLockMaintain(b *testing.B) {
	fl := NewFailLockTable(1000, 8)
	vec := NewSessionVector(8)
	vec.MarkDown(3)
	vec.MarkDown(6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl.Maintain(ItemID(i%1000), vec)
	}
}

func BenchmarkFailLockCountForSite(b *testing.B) {
	fl := NewFailLockTable(1000, 8)
	for i := 0; i < 1000; i += 3 {
		fl.Set(ItemID(i), 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fl.CountForSite(2) == 0 {
			b.Fatal("lost locks")
		}
	}
}

func BenchmarkFailLockSnapshot(b *testing.B) {
	fl := NewFailLockTable(1000, 8)
	for i := 0; i < 1000; i += 2 {
		fl.Set(ItemID(i), SiteID(i%8))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fl.Snapshot()
	}
}

func BenchmarkSessionVectorOperational(b *testing.B) {
	vec := NewSessionVector(8)
	vec.MarkDown(1)
	vec.MarkDown(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vec.Operational(0)
	}
}

func BenchmarkSessionVectorMerge(b *testing.B) {
	a := NewSessionVector(8)
	c := NewSessionVector(8)
	c.MarkUp(3, 9)
	c.MarkDown(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Merge(c)
	}
}
