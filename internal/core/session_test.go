package core

import (
	"testing"
	"testing/quick"
)

func TestSiteIDString(t *testing.T) {
	if got := SiteID(3).String(); got != "site 3" {
		t.Errorf("SiteID(3).String() = %q, want %q", got, "site 3")
	}
	if got := ManagingSite.String(); got != "managing site" {
		t.Errorf("ManagingSite.String() = %q, want %q", got, "managing site")
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		StatusDown:        "down",
		StatusUp:          "up",
		StatusRecovering:  "recovering",
		StatusTerminating: "terminating",
		Status(9):         "Status(9)",
	}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", uint8(st), got, want)
		}
	}
}

func TestNewSessionVectorAllUp(t *testing.T) {
	v := NewSessionVector(4)
	if v.Len() != 4 {
		t.Fatalf("Len = %d, want 4", v.Len())
	}
	for i := 0; i < 4; i++ {
		id := SiteID(i)
		if !v.IsUp(id) {
			t.Errorf("site %d not up in fresh vector", i)
		}
		if v.Session(id) != 1 {
			t.Errorf("site %d session = %d, want 1", i, v.Session(id))
		}
	}
	if got := v.CountUp(); got != 4 {
		t.Errorf("CountUp = %d, want 4", got)
	}
}

func TestNewSessionVectorBounds(t *testing.T) {
	for _, n := range []int{0, -1, MaxSites + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSessionVector(%d) did not panic", n)
				}
			}()
			NewSessionVector(n)
		}()
	}
	NewSessionVector(MaxSites) // must not panic
}

func TestMarkDownAndUp(t *testing.T) {
	v := NewSessionVector(3)
	v.MarkDown(1)
	if v.IsUp(1) {
		t.Fatal("site 1 still up after MarkDown")
	}
	if v.Session(1) != 1 {
		t.Errorf("MarkDown changed session to %d", v.Session(1))
	}
	v.MarkUp(1, 2)
	if !v.IsUp(1) || v.Session(1) != 2 {
		t.Errorf("after MarkUp: %+v", v.Info(1))
	}
	ops := v.Operational()
	if len(ops) != 3 {
		t.Errorf("Operational = %v, want all three", ops)
	}
}

func TestOperationalExcludes(t *testing.T) {
	v := NewSessionVector(4)
	v.MarkDown(2)
	ops := v.Operational(0)
	want := []SiteID{1, 3}
	if len(ops) != len(want) {
		t.Fatalf("Operational(except 0) = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("Operational(except 0) = %v, want %v", ops, want)
		}
	}
}

func TestMarkRecovering(t *testing.T) {
	v := NewSessionVector(2)
	v.MarkRecovering(0, 5)
	if v.Status(0) != StatusRecovering {
		t.Errorf("status = %v, want recovering", v.Status(0))
	}
	if v.IsUp(0) {
		t.Error("recovering site reported up")
	}
	if v.Session(0) != 5 {
		t.Errorf("session = %d, want 5", v.Session(0))
	}
}

func TestCloneIsIndependent(t *testing.T) {
	v := NewSessionVector(2)
	c := v.Clone()
	c.MarkDown(0)
	if !v.IsUp(0) {
		t.Error("mutating clone affected original")
	}
}

func TestMergeTakesNewerSessions(t *testing.T) {
	a := NewSessionVector(3)
	b := NewSessionVector(3)
	b.MarkUp(0, 7) // newer session for site 0
	a.MarkUp(1, 9) // a already has newer info for site 1
	b.MarkDown(1)  // stale down report for site 1 (session 1 < 9)
	a.Merge(b)
	if a.Session(0) != 7 || !a.IsUp(0) {
		t.Errorf("site 0 after merge: %+v, want up/7", a.Info(0))
	}
	if a.Session(1) != 9 || !a.IsUp(1) {
		t.Errorf("site 1 after merge: %+v, want up/9 (stale down must lose)", a.Info(1))
	}
}

func TestMergeSameSessionDownWins(t *testing.T) {
	a := NewSessionVector(2)
	b := a.Clone()
	b.MarkDown(1) // failure within the same session is newer information
	a.Merge(b)
	if a.IsUp(1) {
		t.Error("same-session down report did not win over up")
	}
}

func TestMergeLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging vectors of different length did not panic")
		}
	}()
	a := NewSessionVector(2)
	b := NewSessionVector(3)
	a.Merge(b)
}

func TestRecordsRoundTrip(t *testing.T) {
	v := NewSessionVector(3)
	v.MarkDown(1)
	v.MarkUp(2, 4)
	got := VectorFromRecords(v.Records())
	for i := 0; i < 3; i++ {
		if got.Info(SiteID(i)) != v.Info(SiteID(i)) {
			t.Errorf("site %d: got %+v want %+v", i, got.Info(SiteID(i)), v.Info(SiteID(i)))
		}
	}
}

func TestVectorString(t *testing.T) {
	v := NewSessionVector(2)
	v.MarkDown(1)
	if got, want := v.String(), "[0:up/1 1:down/1]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := NewSessionVector(2)
	defer func() {
		if recover() == nil {
			t.Error("Info on out-of-range site did not panic")
		}
	}()
	v.Info(2)
}

// Property: merging is idempotent and commutative on the session component
// (the maximum of two monotone counters).
func TestMergeProperties(t *testing.T) {
	mk := func(sess [4]uint8, down [4]bool) SessionVector {
		v := NewSessionVector(4)
		for i := range sess {
			s := SessionNum(sess[i]%8) + 1
			if down[i] {
				v.Set(SiteID(i), SiteInfo{Session: s, Status: StatusDown})
			} else {
				v.Set(SiteID(i), SiteInfo{Session: s, Status: StatusUp})
			}
		}
		return v
	}
	prop := func(s1, s2 [4]uint8, d1, d2 [4]bool) bool {
		a, b := mk(s1, d1), mk(s2, d2)
		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		for i := 0; i < 4; i++ {
			id := SiteID(i)
			if ab.Session(id) != ba.Session(id) {
				return false // sessions must merge commutatively
			}
			if ab.Status(id) != ba.Status(id) {
				return false // same-session down dominance is symmetric
			}
		}
		// Idempotence.
		again := ab.Clone()
		again.Merge(b)
		for i := 0; i < 4; i++ {
			if again.Info(SiteID(i)) != ab.Info(SiteID(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
