package core

import "fmt"

// ReplicaMap records which sites host a copy of each item. The paper's
// mini-RAID assumes full replication (§1.2, assumption 4) but motivates
// the partially replicated case in §3.2 ("assume a back-up site exists or
// we have a partially replicated database"); this type is the static
// replica-placement substrate for that mode.
//
// A ReplicaMap is treated as immutable once shared: readers access it
// without locking, so placement changes (permanent-loss rebalancing)
// must Clone the map, apply Rehost edits to the copy, and swap the new
// map in atomically. In-place mutation of a shared map is a data race.
type ReplicaMap struct {
	mask  []uint64 // bit k of mask[i] set = site k hosts item i
	sites int
	full  bool
}

// FullReplication returns the paper's configuration: every site hosts
// every item.
func FullReplication(items, sites int) *ReplicaMap {
	if sites <= 0 || sites > MaxSites {
		panic(fmt.Sprintf("core: site count %d out of range", sites))
	}
	if items <= 0 {
		panic(fmt.Sprintf("core: item count %d out of range", items))
	}
	m := &ReplicaMap{mask: make([]uint64, items), sites: sites, full: true}
	all := allMask(sites)
	for i := range m.mask {
		m.mask[i] = all
	}
	return m
}

// RoundRobinReplication hosts item i on the `degree` sites i, i+1, ...
// (mod sites) — the classic chained-declustering placement, giving every
// site an equal share of primaries and every item `degree` copies.
func RoundRobinReplication(items, sites, degree int) *ReplicaMap {
	if degree <= 0 || degree > sites {
		panic(fmt.Sprintf("core: replication degree %d out of range 1..%d", degree, sites))
	}
	if degree == sites {
		return FullReplication(items, sites)
	}
	if sites <= 0 || sites > MaxSites {
		panic(fmt.Sprintf("core: site count %d out of range", sites))
	}
	if items <= 0 {
		panic(fmt.Sprintf("core: item count %d out of range", items))
	}
	m := &ReplicaMap{mask: make([]uint64, items), sites: sites}
	for i := range m.mask {
		var bits uint64
		for j := 0; j < degree; j++ {
			bits |= 1 << ((i + j) % sites)
		}
		m.mask[i] = bits
	}
	return m
}

// Items returns the number of items mapped.
func (m *ReplicaMap) Items() int { return len(m.mask) }

// Sites returns the number of sites mapped.
func (m *ReplicaMap) Sites() int { return m.sites }

// IsFull reports whether the map is full replication (the paper's case).
func (m *ReplicaMap) IsFull() bool { return m.full }

// IsHost reports whether site hosts a copy of item.
func (m *ReplicaMap) IsHost(item ItemID, site SiteID) bool {
	return m.HostMask(item)&(1<<site) != 0
}

// HostMask returns the bitmap of hosting sites for item.
func (m *ReplicaMap) HostMask(item ItemID) uint64 {
	if int(item) >= len(m.mask) {
		panic(fmt.Sprintf("core: item %d out of range for %d-item map", item, len(m.mask)))
	}
	return m.mask[item]
}

// Hosts returns the hosting sites for item, ascending.
func (m *ReplicaMap) Hosts(item ItemID) []SiteID {
	bits := m.HostMask(item)
	out := make([]SiteID, 0, m.sites)
	for s := 0; s < m.sites; s++ {
		if bits&(1<<s) != 0 {
			out = append(out, SiteID(s))
		}
	}
	return out
}

// Degree returns the number of copies of item.
func (m *ReplicaMap) Degree(item ItemID) int { return popcount(m.HostMask(item)) }

// Clone returns a deep copy of the map. Placement changes follow
// copy-on-write: Clone, edit the copy with Rehost, swap the new map in.
func (m *ReplicaMap) Clone() *ReplicaMap {
	out := &ReplicaMap{mask: make([]uint64, len(m.mask)), sites: m.sites, full: m.full}
	copy(out.mask, m.mask)
	return out
}

// Rehost moves item's copy from one site to another: from's host bit is
// cleared and to's set, so an item whose from-copy is being replaced
// keeps its degree. Used by permanent-loss rebalancing to re-home a lost
// site's copies. Panics when item or either site is out of range.
func (m *ReplicaMap) Rehost(item ItemID, from, to SiteID) {
	if int(from) >= m.sites || int(to) >= m.sites {
		panic(fmt.Sprintf("core: rehost sites %d->%d out of range for %d-site map", from, to, m.sites))
	}
	bits := m.HostMask(item) // panics when item is out of range
	bits &^= 1 << from
	bits |= 1 << to
	m.mask[item] = bits
	if bits != allMask(m.sites) {
		m.full = false
	}
}

// HostedCount returns the number of items site hosts — the expected
// length of a hosted-only dump from that site.
func (m *ReplicaMap) HostedCount(site SiteID) int {
	n := 0
	bit := uint64(1) << site
	for _, b := range m.mask {
		if b&bit != 0 {
			n++
		}
	}
	return n
}

// allMask returns a bitmap with the low n bits set.
func allMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << n) - 1
}
