// Package core implements the replicated-copy-control primitives of the
// mini-RAID system described in Bhargava, Noll and Sabo, "An Experimental
// Analysis of Replicated Copy Control During Site Failure and Recovery"
// (Purdue CSD-TR-692, 1987 / ICDE 1988): session numbers, nominal session
// vectors and fail-locks.
//
// The package is a leaf: it depends on nothing but the standard library and
// carries the identifier types shared by every other package in the module.
package core

import "fmt"

// SiteID identifies a database site. Sites are numbered densely from 0, as
// in the paper ("site 0", "site 1", ...). The managing site is not a
// database site and has the reserved ID ManagingSite.
type SiteID uint8

// MaxSites is the largest number of database sites supported. Fail-locks
// are a bitmap with one bit per site (paper §1.2), held here in a uint64.
const MaxSites = 64

// ManagingSite is the reserved SiteID of the managing site, which provides
// interactive control of system actions (paper §1.2) but stores no data.
const ManagingSite SiteID = 0xFF

// String renders a SiteID the way the paper does ("site 3").
func (s SiteID) String() string {
	if s == ManagingSite {
		return "managing site"
	}
	return fmt.Sprintf("site %d", uint8(s))
}

// SessionNum identifies a time period in which a site is up (paper §1.1).
// A site increments its session number each time it recovers, so two
// operational periods of the same site are distinguishable.
type SessionNum uint32

// ItemID identifies a logical data item. The database is fully replicated:
// every site holds a copy of every item. Items are numbered densely from 0
// up to the configured database size.
type ItemID uint32

// TxnID identifies a database, copier, control or special transaction.
// The managing site assigns TxnIDs from a single monotone counter, so under
// the paper's serial-processing assumption TxnIDs double as a system-wide
// commit order and as item version numbers.
type TxnID uint64

// NoTxn is the zero TxnID; no real transaction ever carries it.
const NoTxn TxnID = 0
