package core

import (
	"fmt"
	"strings"
)

// Status is the state a nominal session vector records for a site.
// The paper (§1.2) lists exactly these four: "site is up, site is down,
// site is waiting to recover, and site is terminating".
type Status uint8

const (
	// StatusDown marks a site that has failed and is no longer processing
	// transactions.
	StatusDown Status = iota
	// StatusUp marks an operational site. Only operational sites
	// participate in a protocol based on the ROWAA strategy.
	StatusUp
	// StatusRecovering marks a site that has announced (control
	// transaction type 1) that it is preparing to become operational.
	StatusRecovering
	// StatusTerminating marks a site that is shutting down for good.
	StatusTerminating
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusDown:
		return "down"
	case StatusUp:
		return "up"
	case StatusRecovering:
		return "recovering"
	case StatusTerminating:
		return "terminating"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// SiteInfo is one record of a nominal session vector: the perceived session
// number of a site and its perceived state (paper §1.2: "The information
// maintained for a site included its perceived session number and its
// state").
type SiteInfo struct {
	Session SessionNum
	Status  Status
}

// SessionVector is a nominal session vector: a site's own session number
// plus the perceived session numbers and states of every other site in the
// system (paper §1.1). A site uses its nominal session vector to determine
// which sites are operational.
//
// SessionVector is a value type with copy-on-write-free semantics: Clone
// before sharing across goroutines. The site event loop owns its vector.
type SessionVector struct {
	info []SiteInfo
}

// NewSessionVector returns a vector for a system of n sites, all initially
// up in session 1 (the paper's experiments start with "both sites up with
// consistent and up-to-date copies").
func NewSessionVector(n int) SessionVector {
	if n <= 0 || n > MaxSites {
		panic(fmt.Sprintf("core: site count %d out of range 1..%d", n, MaxSites))
	}
	info := make([]SiteInfo, n)
	for i := range info {
		info[i] = SiteInfo{Session: 1, Status: StatusUp}
	}
	return SessionVector{info: info}
}

// Len returns the number of sites the vector describes.
func (v SessionVector) Len() int { return len(v.info) }

// Info returns the perceived record for site id.
func (v SessionVector) Info(id SiteID) SiteInfo {
	v.check(id)
	return v.info[id]
}

// Session returns the perceived session number of site id.
func (v SessionVector) Session(id SiteID) SessionNum { return v.Info(id).Session }

// Status returns the perceived state of site id.
func (v SessionVector) Status(id SiteID) Status { return v.Info(id).Status }

// IsUp reports whether site id is perceived operational.
func (v SessionVector) IsUp(id SiteID) bool { return v.Status(id) == StatusUp }

// MarkUp records that site id has entered session s and is operational.
// It is applied when a control transaction of type 1 announces recovery.
func (v *SessionVector) MarkUp(id SiteID, s SessionNum) {
	v.check(id)
	v.info[id] = SiteInfo{Session: s, Status: StatusUp}
}

// MarkDown records that site id has failed. It is applied when a control
// transaction of type 2 announces the failure of one or more sites.
func (v *SessionVector) MarkDown(id SiteID) {
	v.check(id)
	v.info[id].Status = StatusDown
}

// MarkRecovering records that site id announced recovery with session s but
// is not yet processing transactions.
func (v *SessionVector) MarkRecovering(id SiteID, s SessionNum) {
	v.check(id)
	v.info[id] = SiteInfo{Session: s, Status: StatusRecovering}
}

// Set installs an explicit record for site id.
func (v *SessionVector) Set(id SiteID, rec SiteInfo) {
	v.check(id)
	v.info[id] = rec
}

// Operational returns the IDs of all sites perceived up, excluding the
// sites listed in except. Only operational sites can participate in a
// protocol based on the ROWAA strategy (paper §1.1).
func (v SessionVector) Operational(except ...SiteID) []SiteID {
	out := make([]SiteID, 0, len(v.info))
	for i, rec := range v.info {
		if rec.Status != StatusUp {
			continue
		}
		id := SiteID(i)
		skip := false
		for _, e := range except {
			if e == id {
				skip = true
				break
			}
		}
		if !skip {
			out = append(out, id)
		}
	}
	return out
}

// CountUp returns the number of sites perceived operational.
func (v SessionVector) CountUp() int {
	n := 0
	for _, rec := range v.info {
		if rec.Status == StatusUp {
			n++
		}
	}
	return n
}

// Clone returns an independent copy of the vector.
func (v SessionVector) Clone() SessionVector {
	info := make([]SiteInfo, len(v.info))
	copy(info, v.info)
	return SessionVector{info: info}
}

// Merge folds another vector into this one, keeping for every site the
// record with the larger session number; on equal sessions, a Down report
// wins over Up (a failure within the same session is newer information,
// while a recovery always opens a new session). Merge is how a recovering
// site installs the vector shipped to it by an operational site without
// losing anything it already learned.
func (v *SessionVector) Merge(other SessionVector) {
	if len(other.info) != len(v.info) {
		panic("core: merging session vectors of different lengths")
	}
	for i, rec := range other.info {
		cur := v.info[i]
		switch {
		case rec.Session > cur.Session:
			v.info[i] = rec
		case rec.Session == cur.Session && rec.Status == StatusDown && cur.Status == StatusUp:
			v.info[i].Status = StatusDown
		}
	}
}

// Records returns a copy of the underlying records, for encoding.
func (v SessionVector) Records() []SiteInfo {
	out := make([]SiteInfo, len(v.info))
	copy(out, v.info)
	return out
}

// VectorFromRecords rebuilds a vector from encoded records.
func VectorFromRecords(recs []SiteInfo) SessionVector {
	info := make([]SiteInfo, len(recs))
	copy(info, recs)
	return SessionVector{info: info}
}

// String renders the vector compactly, e.g. "[0:up/2 1:down/1]".
func (v SessionVector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, rec := range v.info {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%s/%d", i, rec.Status, rec.Session)
	}
	b.WriteByte(']')
	return b.String()
}

func (v SessionVector) check(id SiteID) {
	if int(id) >= len(v.info) {
		panic(fmt.Sprintf("core: site %d out of range for %d-site vector", id, len(v.info)))
	}
}
