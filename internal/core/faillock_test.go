package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFailLockSetClearIsSet(t *testing.T) {
	fl := NewFailLockTable(10, 4)
	if fl.Items() != 10 || fl.Sites() != 4 {
		t.Fatalf("dims = %d items x %d sites", fl.Items(), fl.Sites())
	}
	fl.Set(3, 2)
	if !fl.IsSet(3, 2) {
		t.Error("bit not set")
	}
	if fl.IsSet(3, 1) || fl.IsSet(4, 2) {
		t.Error("unrelated bits set")
	}
	fl.Clear(3, 2)
	if fl.IsSet(3, 2) {
		t.Error("bit not cleared")
	}
	fl.Clear(3, 2) // clearing a clear bit is a no-op
	if fl.AnySet(3) {
		t.Error("AnySet true on empty item")
	}
}

func TestFailLockCounts(t *testing.T) {
	fl := NewFailLockTable(50, 2)
	for i := 0; i < 20; i++ {
		fl.Set(ItemID(i), 0)
	}
	fl.Set(5, 1)
	if got := fl.CountForSite(0); got != 20 {
		t.Errorf("CountForSite(0) = %d, want 20", got)
	}
	if got := fl.CountForSite(1); got != 1 {
		t.Errorf("CountForSite(1) = %d, want 1", got)
	}
	if got := fl.TotalSet(); got != 21 {
		t.Errorf("TotalSet = %d, want 21", got)
	}
}

func TestItemsLockedFor(t *testing.T) {
	fl := NewFailLockTable(10, 3)
	fl.Set(7, 1)
	fl.Set(2, 1)
	fl.Set(4, 0)
	got := fl.ItemsLockedFor(1)
	want := []ItemID{2, 7}
	if len(got) != len(want) {
		t.Fatalf("ItemsLockedFor(1) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ItemsLockedFor(1) = %v, want %v", got, want)
		}
	}
	if fl.ItemsLockedFor(2) != nil {
		t.Error("expected nil for unlocked site")
	}
}

func TestUpToDateSites(t *testing.T) {
	fl := NewFailLockTable(5, 4)
	fl.Set(1, 0) // site 0's copy of item 1 is stale
	fl.Set(1, 2)
	got := fl.UpToDateSites(1, 3) // exclude site 3 (the asker)
	want := []SiteID{1}
	if len(got) != 1 || got[0] != want[0] {
		t.Errorf("UpToDateSites = %v, want %v", got, want)
	}
	// On a clean item everyone but the asker is a donor.
	if got := fl.UpToDateSites(0, 0); len(got) != 3 {
		t.Errorf("UpToDateSites clean item = %v, want 3 donors", got)
	}
}

func TestSnapshotInstall(t *testing.T) {
	a := NewFailLockTable(8, 2)
	a.Set(0, 1)
	a.Set(7, 0)
	b := NewFailLockTable(8, 2)
	if err := b.Install(a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !b.IsSet(0, 1) || !b.IsSet(7, 0) || b.TotalSet() != 2 {
		t.Error("install did not reproduce snapshot")
	}
	// Snapshot must be a copy, not an alias.
	snap := a.Snapshot()
	snap[0] = 0
	if !a.IsSet(0, 1) {
		t.Error("mutating snapshot affected table")
	}
	if err := b.Install(make([]uint64, 3)); err == nil {
		t.Error("size-mismatched install did not error")
	}
}

func TestMergeAhead(t *testing.T) {
	tbl := NewFailLockTable(4, 3)
	tbl.Set(0, 1) // item 0: our copy newer, word must survive
	tbl.Set(1, 2) // item 1: their copy newer, word must be replaced
	tbl.Set(2, 0) // item 2: versions tie, word must survive
	words := []uint64{0b100, 0b001, 0b111, 0b010}
	theirVers := []uint64{1, 9, 4, 5}
	ownVers := []uint64{3, 2, 4, 5}
	if err := tbl.MergeAhead(words, theirVers, ownVers); err != nil {
		t.Fatal(err)
	}
	if !tbl.IsSet(0, 1) || tbl.IsSet(0, 2) {
		t.Error("merge touched an item where our copy is newer")
	}
	if !tbl.IsSet(1, 0) || tbl.IsSet(1, 2) {
		t.Error("merge did not adopt the word for their newer copy")
	}
	if !tbl.IsSet(2, 0) || tbl.IsSet(2, 1) {
		t.Error("merge rewrote a tied item")
	}
	if tbl.IsSet(3, 1) {
		t.Error("merge adopted a word for a tied item")
	}
	if err := tbl.MergeAhead(words[:2], theirVers, ownVers); err == nil {
		t.Error("size-mismatched merge did not error")
	}
}

func TestMaintainSetsDownClearsUp(t *testing.T) {
	fl := NewFailLockTable(4, 3)
	vec := NewSessionVector(3)
	vec.MarkDown(2)
	// Pre-set a stale lock for the (up) site 1 to verify re-clearing, the
	// behaviour §1.2 calls out explicitly.
	fl.Set(0, 1)
	set, cleared := fl.Maintain(0, vec)
	if set != 1 || cleared != 1 {
		t.Errorf("Maintain counts = %d set, %d cleared; want 1, 1", set, cleared)
	}
	if fl.IsSet(0, 1) {
		t.Error("maintain did not re-clear bit of operational site")
	}
	if !fl.IsSet(0, 2) {
		t.Error("maintain did not set bit of down site")
	}
	if fl.IsSet(0, 0) {
		t.Error("maintain set bit of operational site")
	}
}

func TestMaintainTreatsRecoveringAsMissing(t *testing.T) {
	fl := NewFailLockTable(1, 2)
	vec := NewSessionVector(2)
	vec.MarkRecovering(1, 2)
	fl.Maintain(0, vec)
	if !fl.IsSet(0, 1) {
		t.Error("recovering site did not get a fail-lock for a missed write")
	}
}

func TestMaintainLeavesOtherItemsAlone(t *testing.T) {
	fl := NewFailLockTable(3, 2)
	vec := NewSessionVector(2)
	vec.MarkDown(1)
	fl.Set(2, 1)
	fl.Maintain(0, vec)
	if !fl.IsSet(2, 1) {
		t.Error("maintain touched an unwritten item")
	}
}

func TestResetClearsEverything(t *testing.T) {
	fl := NewFailLockTable(4, 4)
	for i := 0; i < 4; i++ {
		fl.Set(ItemID(i), SiteID(i))
	}
	fl.Reset()
	if fl.TotalSet() != 0 {
		t.Error("reset left bits set")
	}
}

func TestFailLockBoundsPanics(t *testing.T) {
	fl := NewFailLockTable(2, 2)
	for name, f := range map[string]func(){
		"item":     func() { fl.Set(2, 0) },
		"site":     func() { fl.Set(0, 2) },
		"mask":     func() { fl.Mask(9) },
		"count":    func() { fl.CountForSite(5) },
		"maintain": func() { fl.Maintain(2, NewSessionVector(2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNewFailLockTableBounds(t *testing.T) {
	for _, c := range []struct{ items, sites int }{{1, 0}, {1, MaxSites + 1}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFailLockTable(%d,%d) did not panic", c.items, c.sites)
				}
			}()
			NewFailLockTable(c.items, c.sites)
		}()
	}
}

// Property: TotalSet equals the sum over sites of CountForSite, and
// snapshot/install is an exact round trip, under random operations.
func TestFailLockProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const items, sites = 17, 5
		fl := NewFailLockTable(items, sites)
		ref := make(map[[2]int]bool)
		for op := 0; op < 200; op++ {
			it, st := rng.Intn(items), rng.Intn(sites)
			if rng.Intn(2) == 0 {
				fl.Set(ItemID(it), SiteID(st))
				ref[[2]int{it, st}] = true
			} else {
				fl.Clear(ItemID(it), SiteID(st))
				delete(ref, [2]int{it, st})
			}
		}
		// Cross-check against the reference model.
		for it := 0; it < items; it++ {
			for st := 0; st < sites; st++ {
				if fl.IsSet(ItemID(it), SiteID(st)) != ref[[2]int{it, st}] {
					return false
				}
			}
		}
		sum := 0
		for st := 0; st < sites; st++ {
			sum += fl.CountForSite(SiteID(st))
		}
		if sum != fl.TotalSet() || len(ref) != fl.TotalSet() {
			return false
		}
		clone := NewFailLockTable(items, sites)
		if err := clone.Install(fl.Snapshot()); err != nil {
			return false
		}
		return clone.TotalSet() == fl.TotalSet()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Maintain is equivalent to per-site Set/Clear according to the
// vector, for the written item only.
func TestMaintainEquivalence(t *testing.T) {
	prop := func(seed int64, downMask uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const items, sites = 9, 6
		vec := NewSessionVector(sites)
		for s := 0; s < sites; s++ {
			if downMask&(1<<s) != 0 {
				vec.MarkDown(SiteID(s))
			}
		}
		a := NewFailLockTable(items, sites)
		b := NewFailLockTable(items, sites)
		for i := 0; i < 40; i++ {
			it, st := ItemID(rng.Intn(items)), SiteID(rng.Intn(sites))
			a.Set(it, st)
			b.Set(it, st)
		}
		item := ItemID(rng.Intn(items))
		a.Maintain(item, vec)
		for s := 0; s < sites; s++ {
			if vec.IsUp(SiteID(s)) {
				b.Clear(item, SiteID(s))
			} else {
				b.Set(item, SiteID(s))
			}
		}
		for it := 0; it < items; it++ {
			if a.Mask(ItemID(it)) != b.Mask(ItemID(it)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPopcount(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 0xFF: 8, 1 << 63: 1, ^uint64(0): 64, 0xA5A5: 8}
	for in, want := range cases {
		if got := popcount(in); got != want {
			t.Errorf("popcount(%#x) = %d, want %d", in, got, want)
		}
	}
}

func TestModelStrings(t *testing.T) {
	if got := OpRead.String(); got != "read" {
		t.Errorf("OpRead = %q", got)
	}
	if got := OpWrite.String(); got != "write" {
		t.Errorf("OpWrite = %q", got)
	}
	if got := OpKind(9).String(); got != "OpKind(9)" {
		t.Errorf("bad kind = %q", got)
	}
	if got := Read(3).String(); got != "r(3)" {
		t.Errorf("read op = %q", got)
	}
	if got := Write(4, []byte("ab")).String(); got != "w(4,2B)" {
		t.Errorf("write op = %q", got)
	}
	iv := ItemVersion{Item: 2, Version: 7, Value: []byte("xyz")}
	if got := iv.String(); got != "item 2 v7 (3B)" {
		t.Errorf("item version = %q", got)
	}
}
