package txn

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"minraid/internal/core"
)

func TestValidate(t *testing.T) {
	ok := Txn{ID: 1, Ops: []core.Op{core.Read(0), core.Write(4, []byte("x"))}}
	if err := ok.Validate(5); err != nil {
		t.Errorf("valid txn rejected: %v", err)
	}
	cases := map[string]Txn{
		"zero id":     {ID: 0, Ops: []core.Op{core.Read(0)}},
		"no ops":      {ID: 1},
		"item range":  {ID: 1, Ops: []core.Op{core.Read(5)}},
		"bad op kind": {ID: 1, Ops: []core.Op{{Kind: 9, Item: 0}}},
	}
	for name, tx := range cases {
		if err := tx.Validate(5); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestWriteVersionsLastWriteWins(t *testing.T) {
	tx := Txn{ID: 7, Ops: []core.Op{
		core.Write(1, []byte("first")),
		core.Read(2),
		core.Write(3, []byte("b")),
		core.Write(1, []byte("second")),
	}}
	wv := tx.WriteVersions()
	if len(wv) != 2 {
		t.Fatalf("WriteVersions = %v", wv)
	}
	if wv[0].Item != 1 || !bytes.Equal(wv[0].Value, []byte("second")) {
		t.Errorf("item 1: %v (last write must win)", wv[0])
	}
	if wv[1].Item != 3 || wv[1].Version != 7 {
		t.Errorf("item 3: %v", wv[1])
	}
}

func TestWriteVersionsReadOnly(t *testing.T) {
	tx := Txn{ID: 1, Ops: []core.Op{core.Read(0), core.Read(1)}}
	if got := tx.WriteVersions(); len(got) != 0 {
		t.Errorf("read-only txn produced writes: %v", got)
	}
	if !tx.IsReadOnly() {
		t.Error("IsReadOnly = false")
	}
	tx.Ops = append(tx.Ops, core.Write(0, nil))
	if tx.IsReadOnly() {
		t.Error("IsReadOnly = true with a write")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Txn: 3, Committed: true, Reads: make([]core.ItemVersion, 2)}
	if !strings.Contains(r.String(), "committed") {
		t.Errorf("String = %q", r.String())
	}
	r = Result{Txn: 4, AbortReason: AbortNoDonor}
	if !strings.Contains(r.String(), AbortNoDonor) {
		t.Errorf("String = %q", r.String())
	}
}

// Property: WriteVersions emits exactly the distinct written items, each
// versioned with the transaction ID, carrying the value of the final write.
func TestWriteVersionsProperty(t *testing.T) {
	prop := func(id uint16, items []uint8, writeFlags []bool) bool {
		tx := Txn{ID: core.TxnID(id) + 1}
		lastVal := map[core.ItemID][]byte{}
		for i, raw := range items {
			item := core.ItemID(raw % 16)
			if i < len(writeFlags) && writeFlags[i] {
				val := []byte{byte(i)}
				tx.Ops = append(tx.Ops, core.Write(item, val))
				lastVal[item] = val
			} else {
				tx.Ops = append(tx.Ops, core.Read(item))
			}
		}
		wv := tx.WriteVersions()
		if len(wv) != len(lastVal) {
			return false
		}
		for _, iv := range wv {
			if iv.Version != tx.ID {
				return false
			}
			if !bytes.Equal(iv.Value, lastVal[iv.Item]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWriteSetReadSetHelpers(t *testing.T) {
	ops := []core.Op{core.Read(2), core.Write(1, nil), core.Read(2), core.Write(1, nil), core.Write(3, nil)}
	ws := core.WriteSet(ops)
	if len(ws) != 2 || ws[0] != 1 || ws[1] != 3 {
		t.Errorf("WriteSet = %v", ws)
	}
	rs := core.ReadSet(ops)
	if len(rs) != 1 || rs[0] != 2 {
		t.Errorf("ReadSet = %v", rs)
	}
}
