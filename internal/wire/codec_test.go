package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.Uint8(0xAB)
	e.Bool(true)
	e.Bool(false)
	e.Uint16(0xBEEF)
	e.Uint32(0xDEADBEEF)
	e.Uint64(math.MaxUint64)
	e.Uvarint(300)
	e.Varint(-42)
	e.Float64(3.14159)
	e.String("mini-RAID")
	e.PutBytes([]byte{1, 2, 3})
	e.PutBytes(nil)

	d := NewDecoder(e.Bytes())
	if got := d.Uint8(); got != 0xAB {
		t.Errorf("Uint8 = %#x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := d.Uint16(); got != 0xBEEF {
		t.Errorf("Uint16 = %#x", got)
	}
	if got := d.Uint32(); got != 0xDEADBEEF {
		t.Errorf("Uint32 = %#x", got)
	}
	if got := d.Uint64(); got != math.MaxUint64 {
		t.Errorf("Uint64 = %#x", got)
	}
	if got := d.Uvarint(); got != 300 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := d.Varint(); got != -42 {
		t.Errorf("Varint = %d", got)
	}
	if got := d.Float64(); got != 3.14159 {
		t.Errorf("Float64 = %v", got)
	}
	if got := d.String(); got != "mini-RAID" {
		t.Errorf("String = %q", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := d.Bytes(); got != nil {
		t.Errorf("empty Bytes = %v, want nil", got)
	}
	if err := d.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
}

func TestSliceRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	u64 := []uint64{0, 1, math.MaxUint64, 12345}
	u32 := []uint32{7, 0, math.MaxUint32}
	e.Uint64s(u64)
	e.Uint32s(u32)
	e.Uint64s(nil)
	d := NewDecoder(e.Bytes())
	got64 := d.Uint64s()
	got32 := d.Uint32s()
	gotNil := d.Uint64s()
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if len(got64) != len(u64) {
		t.Fatalf("Uint64s = %v", got64)
	}
	for i := range u64 {
		if got64[i] != u64[i] {
			t.Errorf("Uint64s[%d] = %d, want %d", i, got64[i], u64[i])
		}
	}
	for i := range u32 {
		if got32[i] != u32[i] {
			t.Errorf("Uint32s[%d] = %d, want %d", i, got32[i], u32[i])
		}
	}
	if gotNil != nil {
		t.Errorf("nil slice decoded as %v", gotNil)
	}
}

func TestDecoderErrorSticky(t *testing.T) {
	d := NewDecoder([]byte{1})
	_ = d.Uint64() // short
	if d.Err() == nil {
		t.Fatal("short read did not set error")
	}
	// Every later read is a zero-value no-op.
	if d.Uint8() != 0 || d.String() != "" || d.Uvarint() != 0 {
		t.Error("reads after error returned non-zero values")
	}
	if d.Finish() == nil {
		t.Error("Finish nil after error")
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	e := NewEncoder(0)
	e.Uint8(1)
	e.Uint8(2)
	d := NewDecoder(e.Bytes())
	d.Uint8()
	if err := d.Finish(); err == nil {
		t.Error("Finish accepted trailing bytes")
	}
}

func TestBoolRejectsGarbage(t *testing.T) {
	d := NewDecoder([]byte{7})
	d.Bool()
	if d.Err() == nil {
		t.Error("Bool accepted byte 7")
	}
}

func TestOversizedStringRejected(t *testing.T) {
	e := NewEncoder(0)
	e.Uvarint(MaxBytesLen + 1)
	d := NewDecoder(e.Bytes())
	_ = d.String()
	if d.Err() == nil {
		t.Error("oversized string length accepted")
	}
	d2 := NewDecoder(e.Bytes())
	_ = d2.Bytes()
	if d2.Err() == nil {
		t.Error("oversized byte length accepted")
	}
}

func TestOversizedSliceRejected(t *testing.T) {
	e := NewEncoder(0)
	e.Uvarint(MaxSliceLen + 1)
	d := NewDecoder(e.Bytes())
	d.Uint64s()
	if d.Err() == nil {
		t.Error("oversized slice length accepted")
	}
}

func TestUint32OverflowRejected(t *testing.T) {
	e := NewEncoder(0)
	e.Uvarint(1)
	e.Uvarint(uint64(math.MaxUint32) + 1)
	d := NewDecoder(e.Bytes())
	d.Uint32s()
	if d.Err() == nil {
		t.Error("uint32 overflow accepted")
	}
}

func TestBytesIsCopy(t *testing.T) {
	e := NewEncoder(0)
	e.PutBytes([]byte{9, 9})
	buf := e.Bytes()
	d := NewDecoder(buf)
	got := d.Bytes()
	buf[len(buf)-1] = 0
	if got[1] != 9 {
		t.Error("decoded bytes alias the input buffer")
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(8)
	e.Uint64(1)
	e.Reset()
	if e.Len() != 0 {
		t.Error("Reset did not clear")
	}
	e.Uint8(5)
	if e.Len() != 1 || e.Bytes()[0] != 5 {
		t.Error("encoder unusable after Reset")
	}
}

// Property: arbitrary values survive an encode/decode round trip.
func TestQuickRoundTrip(t *testing.T) {
	prop := func(a uint64, b int64, s string, bs []byte, u64 []uint64) bool {
		e := NewEncoder(0)
		e.Uvarint(a)
		e.Varint(b)
		e.String(s)
		e.PutBytes(bs)
		e.Uint64s(u64)
		d := NewDecoder(e.Bytes())
		if d.Uvarint() != a || d.Varint() != b || d.String() != s {
			return false
		}
		gb := d.Bytes()
		if !bytes.Equal(gb, bs) && !(len(gb) == 0 && len(bs) == 0) {
			return false
		}
		g64 := d.Uint64s()
		if len(g64) != len(u64) && !(len(g64) == 0 && len(u64) == 0) {
			return false
		}
		for i := range g64 {
			if g64[i] != u64[i] {
				return false
			}
		}
		return d.Finish() == nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: random byte soup never panics the decoder; it either decodes or
// errors.
func TestQuickNoPanic(t *testing.T) {
	prop := func(buf []byte) bool {
		d := NewDecoder(buf)
		_ = d.Uvarint()
		_ = d.String()
		_ = d.Uint64s()
		_ = d.Bool()
		_ = d.Uint32s()
		_ = d.Finish()
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
