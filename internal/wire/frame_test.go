package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("replicated copy control")
	if err := WriteFrame(&buf, 7, payload); err != nil {
		t.Fatal(err)
	}
	kind, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != 7 || !bytes.Equal(got, payload) {
		t.Errorf("kind=%d payload=%q", kind, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 0, nil); err != nil {
		t.Fatal(err)
	}
	kind, got, err := ReadFrame(&buf)
	if err != nil || kind != 0 || len(got) != 0 {
		t.Errorf("kind=%d payload=%v err=%v", kind, got, err)
	}
}

func TestFrameSequence(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := WriteFrame(&buf, byte(i), []byte{byte(i), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		kind, payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if kind != byte(i) || payload[0] != byte(i) {
			t.Errorf("frame %d: kind=%d payload=%v", i, kind, payload)
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("after last frame: err = %v, want EOF", err)
	}
}

func TestFrameBadMagic(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, 1, []byte("x"))
	b := buf.Bytes()
	b[0] = 'X'
	if _, _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestFrameBadVersion(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, 1, []byte("x"))
	b := buf.Bytes()
	b[4] = 99
	if _, _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestFrameReservedBytes(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, 1, []byte("x"))
	b := buf.Bytes()
	b[6] = 1
	if _, _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want reserved-byte error", err)
	}
}

func TestFrameChecksumMismatch(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, 1, []byte("hello"))
	b := buf.Bytes()
	b[len(b)-1] ^= 0xFF // corrupt payload
	if _, _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrChecksum) {
		t.Errorf("err = %v, want ErrChecksum", err)
	}
}

func TestFrameTruncatedHeader(t *testing.T) {
	if _, _, err := ReadFrame(bytes.NewReader([]byte("MRD"))); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, 1, []byte("hello"))
	b := buf.Bytes()[:headerSize+2]
	if _, _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("err = %v, want unexpected EOF", err)
	}
}

func TestFrameTooLargeWrite(t *testing.T) {
	err := WriteFrame(io.Discard, 1, make([]byte, MaxFrameSize+1))
	if !errors.Is(err, ErrFrameSize) {
		t.Errorf("err = %v, want ErrFrameSize", err)
	}
}

func TestFrameTooLargeRead(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, 1, []byte("x"))
	b := buf.Bytes()
	// Forge an enormous declared length.
	b[8], b[9], b[10], b[11] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrFrameSize) {
		t.Errorf("err = %v, want ErrFrameSize", err)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("boom")
	}
	w.n--
	return len(p), nil
}

func TestFrameWriteErrors(t *testing.T) {
	if err := WriteFrame(&failWriter{n: 0}, 1, []byte("x")); err == nil {
		t.Error("header write error swallowed")
	}
	if err := WriteFrame(&failWriter{n: 1}, 1, []byte("x")); err == nil {
		t.Error("payload write error swallowed")
	}
}
