package wire

import (
	"bytes"
	"testing"
)

// FuzzReadFrame feeds arbitrary byte streams to the frame reader: it must
// never panic and never return a frame whose checksum did not verify.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	WriteFrame(&good, 1, []byte("seed payload"))
	f.Add(good.Bytes())
	f.Add([]byte("MRD1garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			kind, payload, err := ReadFrame(r)
			if err != nil {
				return
			}
			// An accepted frame must round-trip bit-exactly.
			var out bytes.Buffer
			if err := WriteFrame(&out, kind, payload); err != nil {
				t.Fatalf("re-encode of accepted frame failed: %v", err)
			}
			k2, p2, err := ReadFrame(&out)
			if err != nil || k2 != kind || !bytes.Equal(p2, payload) {
				t.Fatalf("frame not stable: %v", err)
			}
		}
	})
}

// FuzzDecoder drives the scalar decoder over arbitrary input.
func FuzzDecoder(f *testing.F) {
	e := NewEncoder(0)
	e.Uvarint(300)
	e.String("seed")
	e.Uint64s([]uint64{1, 2, 3})
	f.Add(e.Bytes())
	f.Add([]byte{0x80, 0x80, 0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		_ = d.Uvarint()
		_ = d.String()
		_ = d.Uint64s()
		_ = d.Bool()
		_ = d.Bytes()
		_ = d.Finish()

	})
}
