// Package wire implements the binary encoding used on every link of the
// system: a small, dependency-free codec (little-endian fixed integers,
// unsigned varints, length-prefixed byte strings) plus a self-describing
// frame format with CRC-32 integrity checking.
//
// The paper's mini-RAID assumed "a reliable message passing facility: no
// messages were lost; messages arrived and were processed in the order that
// they were sent; and no errors in transmission altered the messages"
// (§1.2, assumption 1). The in-memory transport gives that for free; the
// TCP transport relies on TCP ordering and uses the frame checksum to turn
// any residual corruption into a detected connection error rather than a
// silently altered message.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Codec limits. Oversized fields indicate corruption or abuse and are
// rejected before any allocation is attempted.
const (
	// MaxBytesLen bounds a single length-prefixed byte string.
	MaxBytesLen = 16 << 20
	// MaxSliceLen bounds the element count of encoded slices.
	MaxSliceLen = 1 << 24
)

// Errors returned by the decoder. All decoding errors wrap ErrCorrupt so
// callers can treat any malformed input uniformly.
var (
	ErrCorrupt = errors.New("wire: corrupt data")
	// ErrShort indicates truncated input.
	ErrShort = fmt.Errorf("%w: short buffer", ErrCorrupt)
)

// Encoder appends binary data to a buffer. The zero value is ready to use.
// Encoders are not safe for concurrent use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with capacity pre-allocated for sizeHint
// bytes.
func NewEncoder(sizeHint int) *Encoder {
	return &Encoder{buf: make([]byte, 0, sizeHint)}
}

// Bytes returns the encoded buffer. The buffer is owned by the encoder
// until Reset is called; callers that retain it must copy.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the buffer contents, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uint8 appends a single byte.
func (e *Encoder) Uint8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint8(1)
	} else {
		e.Uint8(0)
	}
}

// Uint16 appends a fixed-width little-endian uint16.
func (e *Encoder) Uint16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// Uint32 appends a fixed-width little-endian uint32.
func (e *Encoder) Uint32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// Uint64 appends a fixed-width little-endian uint64.
func (e *Encoder) Uint64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a signed (zig-zag) varint.
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Float64 appends an IEEE-754 double.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Bytes appends a length-prefixed byte string. nil and empty encode
// identically (length 0).
func (e *Encoder) PutBytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Uint64s appends a length-prefixed slice of uint64 (varint elements).
func (e *Encoder) Uint64s(v []uint64) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.Uvarint(x)
	}
}

// Uint32s appends a length-prefixed slice of uint32 (varint elements).
func (e *Encoder) Uint32s(v []uint32) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.Uvarint(uint64(x))
	}
}

// Decoder consumes binary data produced by Encoder. It is error-sticky:
// after the first failure every subsequent read returns the zero value and
// Err reports the original error, so decode paths can run straight-line and
// check once at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over buf. The decoder does not copy buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first error encountered, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns an error if decoding failed or if unread bytes remain —
// trailing garbage means the sender and receiver disagree about the schema.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.Remaining() < n {
		d.fail(ErrShort)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint8 reads one byte.
func (d *Decoder) Uint8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean; any byte other than 0 or 1 is corruption.
func (d *Decoder) Bool() bool {
	switch d.Uint8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("%w: invalid bool", ErrCorrupt))
		return false
	}
}

// Uint16 reads a fixed-width little-endian uint16.
func (d *Decoder) Uint16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// Uint32 reads a fixed-width little-endian uint32.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Uint64 reads a fixed-width little-endian uint64.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(fmt.Errorf("%w: bad uvarint", ErrCorrupt))
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail(fmt.Errorf("%w: bad varint", ErrCorrupt))
		return 0
	}
	d.off += n
	return v
}

// Float64 reads an IEEE-754 double.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Bytes reads a length-prefixed byte string. The result is a copy and safe
// to retain. A zero length decodes as nil.
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > MaxBytesLen {
		d.fail(fmt.Errorf("%w: byte string of %d exceeds limit", ErrCorrupt, n))
		return nil
	}
	if n == 0 {
		return nil
	}
	src := d.take(int(n))
	if src == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, src)
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > MaxBytesLen {
		d.fail(fmt.Errorf("%w: string of %d exceeds limit", ErrCorrupt, n))
		return ""
	}
	src := d.take(int(n))
	if src == nil {
		return ""
	}
	return string(src)
}

// sliceLen validates a decoded element count.
func (d *Decoder) sliceLen() int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if n > MaxSliceLen {
		d.fail(fmt.Errorf("%w: slice of %d exceeds limit", ErrCorrupt, n))
		return 0
	}
	return int(n)
}

// Uint64s reads a length-prefixed slice of uint64.
func (d *Decoder) Uint64s() []uint64 {
	n := d.sliceLen()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.Uvarint()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Uint32s reads a length-prefixed slice of uint32.
func (d *Decoder) Uint32s() []uint32 {
	n := d.sliceLen()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		v := d.Uvarint()
		if v > math.MaxUint32 {
			d.fail(fmt.Errorf("%w: uint32 overflow", ErrCorrupt))
			return nil
		}
		out[i] = uint32(v)
	}
	if d.err != nil {
		return nil
	}
	return out
}

// SliceLen exposes validated slice-length decoding for callers encoding
// structured slices element by element.
func (d *Decoder) SliceLen() int { return d.sliceLen() }
