package wire

import (
	"bytes"
	"testing"
)

func BenchmarkEncodeScalars(b *testing.B) {
	e := NewEncoder(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.Uvarint(uint64(i))
		e.Uint64(uint64(i))
		e.Varint(int64(-i))
		e.Bool(i&1 == 0)
	}
}

func BenchmarkDecodeScalars(b *testing.B) {
	e := NewEncoder(64)
	e.Uvarint(12345)
	e.Uint64(67890)
	e.Varint(-42)
	e.Bool(true)
	buf := e.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(buf)
		_ = d.Uvarint()
		_ = d.Uint64()
		_ = d.Varint()
		_ = d.Bool()
	}
}

func BenchmarkEncodeBytes(b *testing.B) {
	payload := bytes.Repeat([]byte{0xAB}, 256)
	e := NewEncoder(512)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.PutBytes(payload)
	}
}

func BenchmarkFrameRoundTrip(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5A}, 512)
	var buf bytes.Buffer
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteFrame(&buf, 1, payload); err != nil {
			b.Fatal(err)
		}
		if _, _, err := ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
