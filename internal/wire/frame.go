package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame format, used by the TCP transport (the in-memory transport passes
// decoded messages directly):
//
//	offset  size  field
//	0       4     magic "MRD1"
//	4       1     protocol version (currently 1)
//	5       1     frame kind (opaque to this package)
//	6       2     reserved, must be zero
//	8       4     payload length, little endian
//	12      4     CRC-32 (IEEE) of the payload
//	16      n     payload
//
// A reader that observes a bad magic, version, length or checksum must
// treat the connection as corrupt and drop it: framing cannot be resynced.
const (
	frameMagic   = "MRD1"
	frameVersion = 1
	headerSize   = 16
)

// MaxFrameSize bounds a single frame payload. Fail-lock snapshots for the
// largest supported database fit comfortably.
const MaxFrameSize = 32 << 20

// Frame errors.
var (
	ErrBadMagic   = errors.New("wire: bad frame magic")
	ErrBadVersion = errors.New("wire: unsupported frame version")
	ErrChecksum   = errors.New("wire: frame checksum mismatch")
	ErrFrameSize  = errors.New("wire: frame exceeds size limit")
)

// WriteFrame writes one frame with the given kind byte and payload to w.
func WriteFrame(w io.Writer, kind byte, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameSize, len(payload))
	}
	var hdr [headerSize]byte
	copy(hdr[0:4], frameMagic)
	hdr[4] = frameVersion
	hdr[5] = kind
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one frame from r, returning its kind byte and payload.
// It validates magic, version, size and checksum; any violation is a
// permanent connection error.
func ReadFrame(r io.Reader) (kind byte, payload []byte, err error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err // io.EOF propagates cleanly for orderly close
	}
	if string(hdr[0:4]) != frameMagic {
		return 0, nil, ErrBadMagic
	}
	if hdr[4] != frameVersion {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadVersion, hdr[4])
	}
	if hdr[6] != 0 || hdr[7] != 0 {
		return 0, nil, fmt.Errorf("%w: reserved bytes set", ErrBadMagic)
	}
	n := binary.LittleEndian.Uint32(hdr[8:12])
	if n > MaxFrameSize {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameSize, n)
	}
	want := binary.LittleEndian.Uint32(hdr[12:16])
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return 0, nil, fmt.Errorf("%w: got %#x want %#x", ErrChecksum, got, want)
	}
	return hdr[5], payload, nil
}
