package msg

import (
	"fmt"

	"minraid/internal/core"
	"minraid/internal/wire"
)

// Envelope wraps a message body with routing and correlation metadata.
//
// Seq is unique per sending site; a reply carries the request's Seq in
// ReplyTo so the sender can match it to its pending call, exactly like an
// RPC transaction ID. Requests have ReplyTo == 0.
//
// Trace carries the trace ID of the activity this message belongs to
// (the transaction ID for transaction traffic, an admin ID for control
// operations), propagated unchanged through every message a traced
// activity causes. Zero means untraced.
type Envelope struct {
	From    core.SiteID
	To      core.SiteID
	Seq     uint64
	ReplyTo uint64
	Trace   uint64
	Body    Body
}

// String implements fmt.Stringer.
func (e *Envelope) String() string {
	if e.Trace != 0 {
		return fmt.Sprintf("%s->%s #%d re#%d tr#%d %s", e.From, e.To, e.Seq, e.ReplyTo, e.Trace, e.Body.Kind())
	}
	return fmt.Sprintf("%s->%s #%d re#%d %s", e.From, e.To, e.Seq, e.ReplyTo, e.Body.Kind())
}

// Body is a protocol message payload.
type Body interface {
	// Kind identifies the body type on the wire.
	Kind() Kind
	// encode appends the body to enc.
	encode(enc *wire.Encoder)
	// decode reads the body from dec; errors surface via dec.Err.
	decode(dec *wire.Decoder)
}

// EnvelopeVersion is the wire-format version byte leading every
// marshalled envelope. Version 1 (implicit: no version byte, header
// started with the From site) predates the Trace field; version 2 adds
// the leading version byte and a Trace uvarint after ReplyTo. Decoding
// rejects any other version with a clean error rather than guessing.
const EnvelopeVersion = 2

// Marshal encodes an envelope to bytes.
func Marshal(env *Envelope) []byte {
	enc := wire.NewEncoder(64)
	enc.Uint8(EnvelopeVersion)
	enc.Uint8(uint8(env.From))
	enc.Uint8(uint8(env.To))
	enc.Uvarint(env.Seq)
	enc.Uvarint(env.ReplyTo)
	enc.Uvarint(env.Trace)
	enc.Uint8(uint8(env.Body.Kind()))
	env.Body.encode(enc)
	return enc.Bytes()
}

// Unmarshal decodes an envelope from bytes.
func Unmarshal(buf []byte) (*Envelope, error) {
	dec := wire.NewDecoder(buf)
	if v := dec.Uint8(); dec.Err() == nil && v != EnvelopeVersion {
		return nil, fmt.Errorf("msg: %w: envelope version %d, want %d", wire.ErrCorrupt, v, EnvelopeVersion)
	}
	env := &Envelope{
		From:    core.SiteID(dec.Uint8()),
		To:      core.SiteID(dec.Uint8()),
		Seq:     dec.Uvarint(),
		ReplyTo: dec.Uvarint(),
		Trace:   dec.Uvarint(),
	}
	kind := Kind(dec.Uint8())
	if dec.Err() != nil {
		return nil, fmt.Errorf("msg: decoding envelope header: %w", dec.Err())
	}
	body := newBody(kind)
	if body == nil {
		return nil, fmt.Errorf("msg: %w: unknown kind %d", wire.ErrCorrupt, kind)
	}
	body.decode(dec)
	if err := dec.Finish(); err != nil {
		return nil, fmt.Errorf("msg: decoding %s body: %w", kind, err)
	}
	env.Body = body
	return env, nil
}

// newBody returns a zero body for kind, or nil for an unknown kind.
func newBody(kind Kind) Body {
	switch kind {
	case KindClientTxn:
		return &ClientTxn{}
	case KindTxnResult:
		return &TxnResult{}
	case KindPrepare:
		return &Prepare{}
	case KindPrepareAck:
		return &PrepareAck{}
	case KindCommit:
		return &Commit{}
	case KindCommitAck:
		return &CommitAck{}
	case KindAbort:
		return &Abort{}
	case KindCopyRequest:
		return &CopyRequest{}
	case KindCopyResponse:
		return &CopyResponse{}
	case KindClearFailLocks:
		return &ClearFailLocks{}
	case KindClearFailLocksAck:
		return &ClearFailLocksAck{}
	case KindCtrlRecover:
		return &CtrlRecover{}
	case KindCtrlRecoverAck:
		return &CtrlRecoverAck{}
	case KindCtrlFail:
		return &CtrlFail{}
	case KindCtrlFailAck:
		return &CtrlFailAck{}
	case KindCtrlReplicate:
		return &CtrlReplicate{}
	case KindCtrlReplicateAck:
		return &CtrlReplicateAck{}
	case KindCtrlLockSync:
		return &CtrlLockSync{}
	case KindCtrlLockSyncAck:
		return &CtrlLockSyncAck{}
	case KindCtrlRehost:
		return &CtrlRehost{}
	case KindCtrlRehostAck:
		return &CtrlRehostAck{}
	case KindCommitBatch:
		return &CommitBatch{}
	case KindCommitBatchAck:
		return &CommitBatchAck{}
	case KindReadReq:
		return &ReadReq{}
	case KindReadResp:
		return &ReadResp{}
	case KindFailSim:
		return &FailSim{}
	case KindRecoverSim:
		return &RecoverSim{}
	case KindStatusReq:
		return &StatusReq{}
	case KindStatusResp:
		return &StatusResp{}
	case KindDumpReq:
		return &DumpReq{}
	case KindDumpResp:
		return &DumpResp{}
	case KindShutdown:
		return &Shutdown{}
	default:
		return nil
	}
}

// Shared field encodings.

func encodeOps(enc *wire.Encoder, ops []core.Op) {
	enc.Uvarint(uint64(len(ops)))
	for _, op := range ops {
		enc.Uint8(uint8(op.Kind))
		enc.Uvarint(uint64(op.Item))
		if op.Kind == core.OpWrite {
			enc.PutBytes(op.Value)
		}
	}
}

func decodeOps(dec *wire.Decoder) []core.Op {
	n := dec.SliceLen()
	if dec.Err() != nil || n == 0 {
		return nil
	}
	ops := make([]core.Op, 0, n)
	for i := 0; i < n; i++ {
		op := core.Op{Kind: core.OpKind(dec.Uint8()), Item: core.ItemID(dec.Uvarint())}
		if op.Kind == core.OpWrite {
			op.Value = dec.Bytes()
		}
		if dec.Err() != nil {
			return nil
		}
		ops = append(ops, op)
	}
	return ops
}

func encodeItemVersions(enc *wire.Encoder, ivs []core.ItemVersion) {
	enc.Uvarint(uint64(len(ivs)))
	for _, iv := range ivs {
		enc.Uvarint(uint64(iv.Item))
		enc.Uvarint(uint64(iv.Version))
		enc.PutBytes(iv.Value)
	}
}

func decodeItemVersions(dec *wire.Decoder) []core.ItemVersion {
	n := dec.SliceLen()
	if dec.Err() != nil || n == 0 {
		return nil
	}
	ivs := make([]core.ItemVersion, 0, n)
	for i := 0; i < n; i++ {
		iv := core.ItemVersion{
			Item:    core.ItemID(dec.Uvarint()),
			Version: core.TxnID(dec.Uvarint()),
			Value:   dec.Bytes(),
		}
		if dec.Err() != nil {
			return nil
		}
		ivs = append(ivs, iv)
	}
	return ivs
}

func encodeVector(enc *wire.Encoder, recs []core.SiteInfo) {
	enc.Uvarint(uint64(len(recs)))
	for _, r := range recs {
		enc.Uvarint(uint64(r.Session))
		enc.Uint8(uint8(r.Status))
	}
}

func decodeVector(dec *wire.Decoder) []core.SiteInfo {
	n := dec.SliceLen()
	if dec.Err() != nil || n == 0 {
		return nil
	}
	recs := make([]core.SiteInfo, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, core.SiteInfo{
			Session: core.SessionNum(dec.Uvarint()),
			Status:  core.Status(dec.Uint8()),
		})
	}
	if dec.Err() != nil {
		return nil
	}
	return recs
}

func encodeItems(enc *wire.Encoder, items []core.ItemID) {
	enc.Uvarint(uint64(len(items)))
	for _, it := range items {
		enc.Uvarint(uint64(it))
	}
}

func decodeItems(dec *wire.Decoder) []core.ItemID {
	n := dec.SliceLen()
	if dec.Err() != nil || n == 0 {
		return nil
	}
	items := make([]core.ItemID, 0, n)
	for i := 0; i < n; i++ {
		items = append(items, core.ItemID(dec.Uvarint()))
	}
	if dec.Err() != nil {
		return nil
	}
	return items
}
