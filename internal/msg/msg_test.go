package msg

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"minraid/internal/core"
)

// roundTrip marshals an envelope, unmarshals it, and compares deep
// equality.
func roundTrip(t *testing.T, env *Envelope) *Envelope {
	t.Helper()
	buf := Marshal(env)
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal(%s): %v", env.Body.Kind(), err)
	}
	if !reflect.DeepEqual(env, got) {
		t.Fatalf("%s round trip:\n sent %#v\n got  %#v", env.Body.Kind(), env, got)
	}
	return got
}

func TestRoundTripAllKinds(t *testing.T) {
	vec := core.NewSessionVector(3)
	vec.MarkDown(1)
	bodies := []Body{
		&ClientTxn{Txn: 42, Ops: []core.Op{core.Read(1), core.Write(2, []byte("v"))}},
		&TxnResult{Txn: 42, Committed: true, Reads: []core.ItemVersion{{Item: 1, Version: 9, Value: []byte("x")}}, Copiers: 2, ElapsedNanos: 12345},
		&TxnResult{Txn: 43, Committed: false, AbortReason: "participant failed"},
		&Prepare{Txn: 7, Vector: vec.Records(), Writes: []core.ItemVersion{{Item: 3, Version: 7, Value: []byte("w")}}},
		&Prepare{Txn: 8, Vector: vec.Records(), MaintOnly: []core.ItemID{1, 4}},
		&PrepareAck{Txn: 7, OK: true},
		&PrepareAck{Txn: 7, OK: false, Reason: "stale session"},
		&Commit{Txn: 7},
		&CommitAck{Txn: 7},
		&Abort{Txn: 7},
		&CopyRequest{Txn: 8, Items: []core.ItemID{1, 2, 3}},
		&CopyResponse{Txn: 8, OK: true, Items: []core.ItemVersion{{Item: 1, Version: 5, Value: []byte("y")}}},
		&CopyResponse{Txn: 8, OK: false, Reason: "donor fail-locked"},
		&ClearFailLocks{Txn: 9, Site: 2, Items: []core.ItemID{4, 5}},
		&ClearFailLocksAck{Txn: 9},
		&CtrlRecover{Site: 1, Session: 3},
		&CtrlRecoverAck{OK: true, Vector: vec.Records(), FailLocks: []uint64{0, 3, 0, 8}, Versions: []uint64{2, 9, 0, 4}},
		&CtrlRecoverAck{OK: false, Reason: "not operational"},
		&CtrlFail{Failed: []SiteFail{{Site: 0, Session: 2}, {Site: 3, Session: 1}}},
		&CtrlFailAck{},
		&CtrlReplicate{Items: []core.ItemVersion{{Item: 1, Version: 2, Value: []byte("z")}}},
		&CtrlReplicateAck{OK: true},
		&CtrlLockSync{Site: 2, FailLocks: []uint64{0, 5, 0, 2}, Versions: []uint64{1, 7, 0, 3}},
		&CtrlLockSyncAck{},
		&ReadReq{Txn: 10, Items: []core.ItemID{0}},
		&ReadReq{Txn: 11, Items: []core.ItemID{2, 3}, RequireFresh: true},
		&ReadResp{Txn: 10, OK: true, Items: []core.ItemVersion{{Item: 0, Version: 1, Value: []byte("a")}}},
		&FailSim{},
		&RecoverSim{},
		&StatusReq{IncludeFailLocks: true},
		&StatusResp{
			Site: 2, State: core.StatusUp, Session: 4,
			Vector:         vec.Records(),
			FailLockCounts: []uint32{0, 12, 0},
			FailLocks:      []uint64{1, 2, 4},
			Stats:          SiteStats{Committed: 10, Aborted: 1, FailLocksSet: 99, MsgsIn: 7, MsgsOut: 8},
		},
		&DumpReq{First: 0, Last: 49},
		&DumpReq{First: 0, Last: 49, HostedOnly: true},
		&DumpResp{Items: []core.ItemVersion{{Item: 0, Version: 0}}},
		&CtrlRehost{Lost: 1, Items: []core.ItemID{3, 9}, NewHosts: []core.SiteID{2, 0}},
		&CtrlRehostAck{OK: true},
		&CtrlRehostAck{OK: false, Reason: "not operational"},
		&Shutdown{},
	}
	for i, b := range bodies {
		env := &Envelope{From: 1, To: 2, Seq: uint64(i + 1), ReplyTo: uint64(i), Trace: uint64(i) * 1000003, Body: b}
		roundTrip(t, env)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindInvalid; k < numKinds; k++ {
		s := k.String()
		if s == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if Kind(200).String() != "Kind(200)" {
		t.Errorf("unknown kind String = %q", Kind(200).String())
	}
}

func TestEveryKindHasBody(t *testing.T) {
	for k := KindInvalid + 1; k < numKinds; k++ {
		b := newBody(k)
		if b == nil {
			t.Errorf("kind %s has no body constructor", k)
			continue
		}
		if b.Kind() != k {
			t.Errorf("body for %s reports kind %s", k, b.Kind())
		}
	}
	if newBody(KindInvalid) != nil {
		t.Error("invalid kind produced a body")
	}
	if newBody(numKinds) != nil {
		t.Error("out-of-range kind produced a body")
	}
}

func TestIsReplyPartition(t *testing.T) {
	replies := map[Kind]bool{
		KindTxnResult: true, KindPrepareAck: true, KindCommitAck: true,
		KindCopyResponse: true, KindClearFailLocksAck: true,
		KindCtrlRecoverAck: true, KindCtrlFailAck: true,
		KindCtrlReplicateAck: true, KindCtrlLockSyncAck: true,
		KindCtrlRehostAck: true, KindCommitBatchAck: true,
		KindReadResp: true, KindStatusResp: true, KindDumpResp: true,
	}
	for k := KindInvalid + 1; k < numKinds; k++ {
		if got := k.IsReply(); got != replies[k] {
			t.Errorf("%s.IsReply() = %v, want %v", k, got, replies[k])
		}
	}
}

func TestUnmarshalRejectsUnknownKind(t *testing.T) {
	env := &Envelope{From: 0, To: 1, Seq: 1, Body: &Commit{Txn: 1}}
	buf := Marshal(env)
	// Kind byte follows Version(1)+From(1)+To(1)+Seq(1)+ReplyTo(1)+Trace(1)
	// for small varints.
	buf[6] = 250
	if _, err := Unmarshal(buf); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestUnmarshalRejectsOldFormat builds a pre-version-byte (v1) envelope —
// From, To, Seq, ReplyTo, kind, body, with no version byte and no trace —
// and checks the decoder rejects it with a clean version error instead of
// misparsing it.
func TestUnmarshalRejectsOldFormat(t *testing.T) {
	v1 := []byte{
		0,                // From = site 0 (read as version byte by v2)
		1,                // To = site 1
		1,                // Seq = 1
		0,                // ReplyTo = 0
		byte(KindCommit), // kind
		9,                // Commit.Txn = 9
	}
	_, err := Unmarshal(v1)
	if err == nil {
		t.Fatal("v1 envelope accepted by v2 decoder")
	}
	if !strings.Contains(err.Error(), "envelope version 0") {
		t.Errorf("error does not identify the version mismatch: %v", err)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	for _, tr := range []uint64{0, 1, 42, 1 << 32, 1<<64 - 1} {
		env := &Envelope{From: 0, To: 1, Seq: 9, Trace: tr, Body: &Commit{Txn: 3}}
		got := roundTrip(t, env)
		if got.Trace != tr {
			t.Errorf("Trace %d round-tripped as %d", tr, got.Trace)
		}
	}
}

func TestUnmarshalRejectsTruncation(t *testing.T) {
	env := &Envelope{From: 0, To: 1, Seq: 7, Body: &ClientTxn{Txn: 3, Ops: []core.Op{core.Write(1, []byte("abc"))}}}
	buf := Marshal(env)
	for n := 0; n < len(buf); n++ {
		if _, err := Unmarshal(buf[:n]); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

func TestUnmarshalRejectsTrailingGarbage(t *testing.T) {
	buf := Marshal(&Envelope{From: 0, To: 1, Seq: 1, Body: &Shutdown{}})
	buf = append(buf, 0xEE)
	if _, err := Unmarshal(buf); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestEnvelopeString(t *testing.T) {
	env := &Envelope{From: 0, To: 1, Seq: 5, ReplyTo: 0, Body: &Commit{Txn: 9}}
	want := "site 0->site 1 #5 re#0 commit"
	if got := env.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	env.Trace = 9
	want = "site 0->site 1 #5 re#0 tr#9 commit"
	if got := env.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: ClientTxn envelopes with arbitrary op lists survive the round
// trip, and random buffers never panic Unmarshal.
func TestQuickClientTxn(t *testing.T) {
	prop := func(txn uint64, seq uint64, trace uint64, items []uint16, writes []bool, vals [][]byte) bool {
		var ops []core.Op
		for i, it := range items {
			w := i < len(writes) && writes[i]
			if w {
				var v []byte
				if i < len(vals) {
					v = vals[i]
				}
				if len(v) == 0 {
					v = nil
				}
				ops = append(ops, core.Write(core.ItemID(it), v))
			} else {
				ops = append(ops, core.Read(core.ItemID(it)))
			}
		}
		env := &Envelope{From: 3, To: 4, Seq: seq, Trace: trace, Body: &ClientTxn{Txn: core.TxnID(txn), Ops: ops}}
		got, err := Unmarshal(Marshal(env))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(env, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnmarshalNoPanic(t *testing.T) {
	prop := func(buf []byte) bool {
		_, _ = Unmarshal(buf)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
