// Package msg defines every message exchanged between mini-RAID sites and
// the managing site, together with their binary encoding on top of
// internal/wire.
//
// The message set covers the full protocol of the paper:
//
//   - database transactions and their two-phase commit (ClientTxn, Prepare,
//     PrepareAck, Commit, CommitAck, Abort, TxnResult — Appendix A);
//   - copier transactions (CopyRequest, CopyResponse) and the special
//     transaction that clears fail-locks at other sites after a copier
//     (ClearFailLocks, ClearFailLocksAck — §1.2);
//   - control transactions of type 1 (CtrlRecover/CtrlRecoverAck), type 2
//     (CtrlFail/CtrlFailAck) and the paper's proposed type 3
//     (CtrlReplicate/CtrlReplicateAck — §3.2);
//   - quorum-policy version-voting reads (ReadReq/ReadResp), used only by
//     the baseline quorum protocol, never by ROWAA;
//   - managing-site control (FailSim, RecoverSim, StatusReq/StatusResp,
//     DumpReq/DumpResp, Shutdown — §1.2 "managing site").
package msg

import "fmt"

// Kind identifies a message body type on the wire.
type Kind uint8

// Message kinds. The explicit values are part of the wire format; append
// only.
const (
	KindInvalid Kind = iota

	// Database transaction processing (Appendix A).
	KindClientTxn  // managing site -> coordinator: run this transaction
	KindTxnResult  // coordinator -> managing site: outcome
	KindPrepare    // coordinator -> participants: phase-one copy update
	KindPrepareAck // participant -> coordinator: vote
	KindCommit     // coordinator -> participants: phase-two commit
	KindCommitAck  // participant -> coordinator
	KindAbort      // coordinator -> participants: discard copy updates

	// Copier transactions and the fail-lock-clearing special transaction.
	KindCopyRequest       // recovering coordinator -> donor site
	KindCopyResponse      // donor site -> recovering coordinator
	KindClearFailLocks    // coordinator -> other sites: special transaction
	KindClearFailLocksAck // other site -> coordinator

	// Control transactions.
	KindCtrlRecover      // type 1: recovering site -> operational sites
	KindCtrlRecoverAck   // carries session vector + fail-locks back
	KindCtrlFail         // type 2: failure announcement
	KindCtrlFailAck      //
	KindCtrlReplicate    // type 3: back up a last up-to-date copy
	KindCtrlReplicateAck //

	// Quorum baseline only.
	KindReadReq  // coordinator -> quorum members: versioned read
	KindReadResp // quorum member -> coordinator

	// Managing-site control plane.
	KindFailSim    // order a site to simulate failure
	KindRecoverSim // order a failed site to begin recovery
	KindStatusReq  // query a site's vector, fail-locks and counters
	KindStatusResp //
	KindDumpReq    // dump versioned copies for the consistency audit
	KindDumpResp   //
	KindShutdown   // order a site to terminate

	// Type-1 epilogue (appended: explicit kind values are wire format).
	KindCtrlLockSync    // recovered site -> operational sites: adopt-if-ahead lock words
	KindCtrlLockSyncAck //

	// Permanent-loss rebalancing (appended).
	KindCtrlRehost    // managing site -> sites: re-home a lost site's copies
	KindCtrlRehostAck //

	// Epoch-batched commit (appended): one phase-two fan-out per commit
	// epoch instead of per transaction.
	KindCommitBatch    // coordinator -> participant: commit these staged txns
	KindCommitBatchAck // participant -> coordinator

	numKinds // sentinel, keep last
)

var kindNames = [...]string{
	KindInvalid:           "invalid",
	KindClientTxn:         "client-txn",
	KindTxnResult:         "txn-result",
	KindPrepare:           "prepare",
	KindPrepareAck:        "prepare-ack",
	KindCommit:            "commit",
	KindCommitAck:         "commit-ack",
	KindAbort:             "abort",
	KindCopyRequest:       "copy-request",
	KindCopyResponse:      "copy-response",
	KindClearFailLocks:    "clear-fail-locks",
	KindClearFailLocksAck: "clear-fail-locks-ack",
	KindCtrlRecover:       "ctrl-recover",
	KindCtrlRecoverAck:    "ctrl-recover-ack",
	KindCtrlFail:          "ctrl-fail",
	KindCtrlFailAck:       "ctrl-fail-ack",
	KindCtrlReplicate:     "ctrl-replicate",
	KindCtrlReplicateAck:  "ctrl-replicate-ack",
	KindReadReq:           "read-req",
	KindReadResp:          "read-resp",
	KindFailSim:           "fail-sim",
	KindRecoverSim:        "recover-sim",
	KindStatusReq:         "status-req",
	KindStatusResp:        "status-resp",
	KindDumpReq:           "dump-req",
	KindDumpResp:          "dump-resp",
	KindShutdown:          "shutdown",
	KindCtrlLockSync:      "ctrl-lock-sync",
	KindCtrlLockSyncAck:   "ctrl-lock-sync-ack",
	KindCtrlRehost:        "ctrl-rehost",
	KindCtrlRehostAck:     "ctrl-rehost-ack",
	KindCommitBatch:       "commit-batch",
	KindCommitBatchAck:    "commit-batch-ack",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsReply reports whether a message kind is a response correlated to a
// pending request via Envelope.ReplyTo. Replies are routed to the waiting
// caller instead of the site's request handler.
func (k Kind) IsReply() bool {
	switch k {
	case KindTxnResult, KindPrepareAck, KindCommitAck, KindCommitBatchAck,
		KindCopyResponse, KindClearFailLocksAck, KindCtrlRecoverAck,
		KindCtrlFailAck, KindCtrlReplicateAck, KindCtrlLockSyncAck,
		KindCtrlRehostAck, KindReadResp, KindStatusResp, KindDumpResp:
		return true
	}
	return false
}
