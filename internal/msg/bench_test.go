package msg

import (
	"testing"

	"minraid/internal/core"
)

func benchPrepare() *Envelope {
	vec := core.NewSessionVector(4)
	writes := make([]core.ItemVersion, 5)
	for i := range writes {
		writes[i] = core.ItemVersion{
			Item:    core.ItemID(i),
			Version: core.TxnID(i + 1),
			Value:   []byte("payload-12345678"),
		}
	}
	return &Envelope{
		From: 0, To: 1, Seq: 42,
		Body: &Prepare{Txn: 7, Vector: vec.Records(), Writes: writes},
	}
}

func BenchmarkMarshalPrepare(b *testing.B) {
	env := benchPrepare()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Marshal(env)
	}
}

func BenchmarkUnmarshalPrepare(b *testing.B) {
	buf := Marshal(benchPrepare())
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalCommit(b *testing.B) {
	env := &Envelope{From: 0, To: 1, Seq: 1, Body: &Commit{Txn: 9}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Marshal(env)
	}
}

func BenchmarkRecoverAckWithFailLocks(b *testing.B) {
	// A type-1 ack for a 1000-item database: the heaviest control
	// message in the protocol ("dependent on the size of the database",
	// §2.2.2).
	locks := make([]uint64, 1000)
	for i := range locks {
		locks[i] = uint64(i) * 0x9E3779B9
	}
	vec := core.NewSessionVector(8)
	env := &Envelope{From: 1, To: 0, Seq: 5, ReplyTo: 4,
		Body: &CtrlRecoverAck{OK: true, Vector: vec.Records(), FailLocks: locks}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := Marshal(env)
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
