package msg

import (
	"testing"

	"minraid/internal/core"
)

// FuzzUnmarshal feeds arbitrary bytes to the envelope decoder: it must
// never panic, and anything it accepts must re-marshal to a decodable
// envelope (decode-encode-decode stability).
func FuzzUnmarshal(f *testing.F) {
	vec := core.NewSessionVector(3)
	seeds := []*Envelope{
		{From: 0, To: 1, Seq: 1, Trace: 1, Body: &ClientTxn{Txn: 1, Ops: []core.Op{core.Read(1), core.Write(2, []byte("v"))}}},
		{From: 1, To: 0, Seq: 2, ReplyTo: 1, Trace: 1, Body: &TxnResult{Txn: 1, Committed: true}},
		{From: 0, To: 1, Seq: 3, Trace: 7, Body: &Prepare{Txn: 2, Vector: vec.Records(), Writes: []core.ItemVersion{{Item: 1, Version: 2, Value: []byte("w")}}, MaintOnly: []core.ItemID{3}}},
		{From: 2, To: 0, Seq: 4, Trace: 1 << 32, Body: &CtrlRecoverAck{OK: true, Vector: vec.Records(), FailLocks: []uint64{1, 2, 3}}},
		{From: 0, To: 2, Seq: 5, Body: &ReadReq{Txn: 9, Items: []core.ItemID{0, 1}, RequireFresh: true}},
	}
	for _, env := range seeds {
		f.Add(Marshal(env))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	// An old-format (v1, no version byte / no trace) commit envelope:
	// must be rejected, never misparsed.
	f.Add([]byte{0, 1, 1, 0, byte(KindCommit), 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Unmarshal(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		re, err := Unmarshal(Marshal(env))
		if err != nil {
			t.Fatalf("accepted envelope failed re-decode: %v", err)
		}
		if re.Body.Kind() != env.Body.Kind() || re.Seq != env.Seq || re.From != env.From || re.Trace != env.Trace {
			t.Fatalf("re-decode changed identity: %v vs %v", env, re)
		}
	})
}
