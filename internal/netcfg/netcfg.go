// Package netcfg parses the address-map syntax shared by the TCP
// deployment commands (cmd/raidsrv, cmd/raidctl) and the process fabric
// (internal/deploy):
//
//	0=host:port,1=host:port,...,m=host:port
//
// Numeric keys are database sites; "m" is the managing site. A site range
// with a matching port range expands to one entry per site:
//
//	0-4=host:7000-7004,m=host:7009
//
// is five sites on consecutive ports of one host.
package netcfg

import (
	"fmt"
	"strconv"
	"strings"

	"minraid/internal/core"
)

// ParseAddrs parses an address map. It requires at least one database site
// and contiguous site numbering from 0, so the site count is unambiguous.
func ParseAddrs(spec string) (map[core.SiteID]string, int, error) {
	addrs := make(map[core.SiteID]string)
	maxSite := -1
	addSite := func(n int, addr string) error {
		if n < 0 || n >= core.MaxSites {
			return fmt.Errorf("netcfg: site id %d out of range", n)
		}
		id := core.SiteID(n)
		if _, dup := addrs[id]; dup {
			return fmt.Errorf("netcfg: duplicate site %d", n)
		}
		addrs[id] = addr
		if n > maxSite {
			maxSite = n
		}
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 1 {
			return nil, 0, fmt.Errorf("netcfg: bad entry %q (want id=host:port)", part)
		}
		key, addr := part[:eq], part[eq+1:]
		if addr == "" {
			return nil, 0, fmt.Errorf("netcfg: empty address in %q", part)
		}
		if key == "m" {
			addrs[core.ManagingSite] = addr
			continue
		}
		if lo, hi, ok := parseRange(key); ok {
			// A site range pairs with a port range of the same width:
			// 0-4=host:7000-7004 expands to sites 0..4 on ports 7000..7004.
			host, plo, phi, err := splitPortRange(addr)
			if err != nil {
				return nil, 0, fmt.Errorf("netcfg: range entry %q: %v", part, err)
			}
			if hi-lo != phi-plo {
				return nil, 0, fmt.Errorf("netcfg: range entry %q spans %d sites but %d ports", part, hi-lo+1, phi-plo+1)
			}
			for i := 0; lo+i <= hi; i++ {
				if err := addSite(lo+i, fmt.Sprintf("%s:%d", host, plo+i)); err != nil {
					return nil, 0, err
				}
			}
			continue
		}
		n, err := strconv.Atoi(key)
		if err != nil || n < 0 || n >= core.MaxSites {
			return nil, 0, fmt.Errorf("netcfg: bad site id %q", key)
		}
		if err := addSite(n, addr); err != nil {
			return nil, 0, err
		}
	}
	if maxSite < 0 {
		return nil, 0, fmt.Errorf("netcfg: no database sites in %q", spec)
	}
	sites := maxSite + 1
	for i := 0; i < sites; i++ {
		if _, ok := addrs[core.SiteID(i)]; !ok {
			return nil, 0, fmt.Errorf("netcfg: missing address for site %d (sites must be numbered 0..%d)", i, maxSite)
		}
	}
	return addrs, sites, nil
}

// parseRange recognizes "lo-hi" site-range keys (both bounds inclusive).
func parseRange(key string) (lo, hi int, ok bool) {
	dash := strings.IndexByte(key, '-')
	if dash < 1 || dash == len(key)-1 {
		return 0, 0, false
	}
	lo, errLo := strconv.Atoi(key[:dash])
	hi, errHi := strconv.Atoi(key[dash+1:])
	if errLo != nil || errHi != nil || lo < 0 || hi < lo {
		return 0, 0, false
	}
	return lo, hi, true
}

// splitPortRange splits "host:P1-P2" into the host and the inclusive port
// bounds. The port range is whatever follows the last colon, so bracketed
// IPv6 hosts work unchanged.
func splitPortRange(addr string) (host string, lo, hi int, err error) {
	colon := strings.LastIndexByte(addr, ':')
	if colon < 1 {
		return "", 0, 0, fmt.Errorf("no port range in %q (want host:P1-P2)", addr)
	}
	host, ports := addr[:colon], addr[colon+1:]
	dash := strings.IndexByte(ports, '-')
	if dash < 1 || dash == len(ports)-1 {
		return "", 0, 0, fmt.Errorf("bad port range %q (want P1-P2)", ports)
	}
	lo, errLo := strconv.Atoi(ports[:dash])
	hi, errHi := strconv.Atoi(ports[dash+1:])
	if errLo != nil || errHi != nil || lo <= 0 || hi < lo || hi > 65535 {
		return "", 0, 0, fmt.Errorf("bad port range %q", ports)
	}
	return host, lo, hi, nil
}

// Format renders an address map back to the flag syntax, with sites in
// order and the managing entry last.
func Format(addrs map[core.SiteID]string, sites int) string {
	var parts []string
	for i := 0; i < sites; i++ {
		parts = append(parts, fmt.Sprintf("%d=%s", i, addrs[core.SiteID(i)]))
	}
	if m, ok := addrs[core.ManagingSite]; ok {
		parts = append(parts, "m="+m)
	}
	return strings.Join(parts, ",")
}
