// Package netcfg parses the address-map syntax shared by the TCP
// deployment commands (cmd/raidsrv, cmd/raidctl):
//
//	0=host:port,1=host:port,...,m=host:port
//
// Numeric keys are database sites; "m" is the managing site.
package netcfg

import (
	"fmt"
	"strconv"
	"strings"

	"minraid/internal/core"
)

// ParseAddrs parses an address map. It requires at least one database site
// and contiguous site numbering from 0, so the site count is unambiguous.
func ParseAddrs(spec string) (map[core.SiteID]string, int, error) {
	addrs := make(map[core.SiteID]string)
	maxSite := -1
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 1 {
			return nil, 0, fmt.Errorf("netcfg: bad entry %q (want id=host:port)", part)
		}
		key, addr := part[:eq], part[eq+1:]
		if addr == "" {
			return nil, 0, fmt.Errorf("netcfg: empty address in %q", part)
		}
		if key == "m" {
			addrs[core.ManagingSite] = addr
			continue
		}
		n, err := strconv.Atoi(key)
		if err != nil || n < 0 || n >= core.MaxSites {
			return nil, 0, fmt.Errorf("netcfg: bad site id %q", key)
		}
		id := core.SiteID(n)
		if _, dup := addrs[id]; dup {
			return nil, 0, fmt.Errorf("netcfg: duplicate site %d", n)
		}
		addrs[id] = addr
		if n > maxSite {
			maxSite = n
		}
	}
	if maxSite < 0 {
		return nil, 0, fmt.Errorf("netcfg: no database sites in %q", spec)
	}
	sites := maxSite + 1
	for i := 0; i < sites; i++ {
		if _, ok := addrs[core.SiteID(i)]; !ok {
			return nil, 0, fmt.Errorf("netcfg: missing address for site %d (sites must be numbered 0..%d)", i, maxSite)
		}
	}
	return addrs, sites, nil
}

// Format renders an address map back to the flag syntax, with sites in
// order and the managing entry last.
func Format(addrs map[core.SiteID]string, sites int) string {
	var parts []string
	for i := 0; i < sites; i++ {
		parts = append(parts, fmt.Sprintf("%d=%s", i, addrs[core.SiteID(i)]))
	}
	if m, ok := addrs[core.ManagingSite]; ok {
		parts = append(parts, "m="+m)
	}
	return strings.Join(parts, ",")
}
