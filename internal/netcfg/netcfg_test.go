package netcfg

import (
	"testing"

	"minraid/internal/core"
)

func TestParseAddrs(t *testing.T) {
	addrs, sites, err := ParseAddrs("0=h:1,1=h:2,m=h:9")
	if err != nil {
		t.Fatal(err)
	}
	if sites != 2 {
		t.Errorf("sites = %d", sites)
	}
	if addrs[0] != "h:1" || addrs[1] != "h:2" || addrs[core.ManagingSite] != "h:9" {
		t.Errorf("addrs = %v", addrs)
	}
}

func TestParseAddrsWhitespaceAndNoManager(t *testing.T) {
	addrs, sites, err := ParseAddrs(" 0=h:1 , 1=h:2 ")
	if err != nil || sites != 2 {
		t.Fatalf("err=%v sites=%d", err, sites)
	}
	if _, ok := addrs[core.ManagingSite]; ok {
		t.Error("phantom manager entry")
	}
}

func TestParseAddrsErrors(t *testing.T) {
	bad := []string{
		"",              // empty
		"m=h:9",         // no database sites
		"0=h:1,2=h:3",   // gap
		"0=h:1,0=h:2",   // duplicate
		"x=h:1",         // bad key
		"0h:1",          // no '='
		"0=",            // empty addr
		"0=h:1,999=h:2", // out of range
		"=h:1,0=h:2",    // empty key
	}
	for _, spec := range bad {
		if _, _, err := ParseAddrs(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	spec := "0=a:1,1=b:2,m=c:3"
	addrs, sites, err := ParseAddrs(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := Format(addrs, sites); got != spec {
		t.Errorf("Format = %q, want %q", got, spec)
	}
}
