package netcfg

import (
	"testing"

	"minraid/internal/core"
)

func TestParseAddrs(t *testing.T) {
	addrs, sites, err := ParseAddrs("0=h:1,1=h:2,m=h:9")
	if err != nil {
		t.Fatal(err)
	}
	if sites != 2 {
		t.Errorf("sites = %d", sites)
	}
	if addrs[0] != "h:1" || addrs[1] != "h:2" || addrs[core.ManagingSite] != "h:9" {
		t.Errorf("addrs = %v", addrs)
	}
}

func TestParseAddrsWhitespaceAndNoManager(t *testing.T) {
	addrs, sites, err := ParseAddrs(" 0=h:1 , 1=h:2 ")
	if err != nil || sites != 2 {
		t.Fatalf("err=%v sites=%d", err, sites)
	}
	if _, ok := addrs[core.ManagingSite]; ok {
		t.Error("phantom manager entry")
	}
}

func TestParseAddrsErrors(t *testing.T) {
	bad := []string{
		"",              // empty
		"m=h:9",         // no database sites
		"0=h:1,2=h:3",   // gap
		"0=h:1,0=h:2",   // duplicate
		"x=h:1",         // bad key
		"0h:1",          // no '='
		"0=",            // empty addr
		"0=h:1,999=h:2", // out of range
		"=h:1,0=h:2",    // empty key
	}
	for _, spec := range bad {
		if _, _, err := ParseAddrs(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	spec := "0=a:1,1=b:2,m=c:3"
	addrs, sites, err := ParseAddrs(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := Format(addrs, sites); got != spec {
		t.Errorf("Format = %q, want %q", got, spec)
	}
}

func TestParseAddrsRange(t *testing.T) {
	addrs, sites, err := ParseAddrs("0-4=host:7000-7004,m=host:7009")
	if err != nil {
		t.Fatal(err)
	}
	if sites != 5 {
		t.Errorf("sites = %d, want 5", sites)
	}
	for i := 0; i < 5; i++ {
		want := "host:700" + string(rune('0'+i))
		if addrs[core.SiteID(i)] != want {
			t.Errorf("site %d = %q, want %q", i, addrs[core.SiteID(i)], want)
		}
	}
	if addrs[core.ManagingSite] != "host:7009" {
		t.Errorf("manager = %q", addrs[core.ManagingSite])
	}
}

func TestParseAddrsRangeMixed(t *testing.T) {
	// Ranges compose with explicit entries; the whole set must still be
	// contiguous from 0.
	addrs, sites, err := ParseAddrs("0=a:1,1-2=b:10-11,m=c:9")
	if err != nil {
		t.Fatal(err)
	}
	if sites != 3 || addrs[1] != "b:10" || addrs[2] != "b:11" {
		t.Errorf("sites=%d addrs=%v", sites, addrs)
	}
}

func TestParseAddrsRangeRoundTrip(t *testing.T) {
	// A range entry expands to the same map the explicit form parses to,
	// and Format of the expansion re-parses to the identical map.
	addrs, sites, err := ParseAddrs("0-2=h:7000-7002,m=h:7009")
	if err != nil {
		t.Fatal(err)
	}
	reparsed, sites2, err := ParseAddrs(Format(addrs, sites))
	if err != nil {
		t.Fatal(err)
	}
	if sites2 != sites {
		t.Fatalf("sites %d != %d", sites2, sites)
	}
	for id, addr := range addrs {
		if reparsed[id] != addr {
			t.Errorf("site %s: %q != %q", id, reparsed[id], addr)
		}
	}
}

func TestParseAddrsRangeErrors(t *testing.T) {
	bad := []string{
		"0-2=h:7000-7003,m=h:9", // width mismatch: 3 sites, 4 ports
		"0-2=h:7000,m=h:9",      // no port range
		"2-0=h:7000-7002",       // descending site range
		"0-1=h:7001-7000",       // descending port range
		"0-1=h:0-1",             // port 0
		"0-1=h:65535-65536",     // port overflow
		"0-1=h:7000-7001,1=x:1", // duplicate via range overlap
	}
	for _, spec := range bad {
		if _, _, err := ParseAddrs(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
