package lockmgr

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"minraid/internal/core"
)

func TestSharedLocksCoexist(t *testing.T) {
	m := New(time.Second)
	defer m.Close()
	if err := m.Acquire(1, 5, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, 5, Shared); err != nil {
		t.Fatal(err)
	}
	if mode, ok := m.Holds(1, 5); !ok || mode != Shared {
		t.Errorf("txn 1 holds %v %v", mode, ok)
	}
	if mode, ok := m.Holds(2, 5); !ok || mode != Shared {
		t.Errorf("txn 2 holds %v %v", mode, ok)
	}
}

func TestExclusiveBlocksOthers(t *testing.T) {
	m := New(50 * time.Millisecond)
	defer m.Close()
	if err := m.Acquire(1, 3, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, 3, Shared); !errors.Is(err, ErrTimeout) {
		t.Errorf("shared under exclusive: %v", err)
	}
	if err := m.Acquire(3, 3, Exclusive); !errors.Is(err, ErrTimeout) {
		t.Errorf("exclusive under exclusive: %v", err)
	}
}

func TestReleaseWakesWaiter(t *testing.T) {
	m := New(5 * time.Second)
	defer m.Close()
	m.Acquire(1, 7, Exclusive)
	got := make(chan error, 1)
	go func() { got <- m.Acquire(2, 7, Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	m.Release(1)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke")
	}
	if _, ok := m.Holds(1, 7); ok {
		t.Error("released lock still held")
	}
	if mode, ok := m.Holds(2, 7); !ok || mode != Exclusive {
		t.Error("waiter did not get the lock")
	}
}

func TestReacquireIsNoop(t *testing.T) {
	m := New(time.Second)
	defer m.Close()
	m.Acquire(1, 1, Exclusive)
	if err := m.Acquire(1, 1, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, 1, Shared); err != nil {
		t.Fatal(err)
	}
	// Still exclusive after the weaker re-acquire.
	if mode, _ := m.Holds(1, 1); mode != Exclusive {
		t.Error("downgraded")
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	m := New(time.Second)
	defer m.Close()
	m.Acquire(1, 2, Shared)
	if err := m.Acquire(1, 2, Exclusive); err != nil {
		t.Fatal(err)
	}
	if mode, _ := m.Holds(1, 2); mode != Exclusive {
		t.Error("upgrade did not take")
	}
}

func TestUpgradeWaitsForReaders(t *testing.T) {
	m := New(5 * time.Second)
	defer m.Close()
	m.Acquire(1, 2, Shared)
	m.Acquire(2, 2, Shared)
	got := make(chan error, 1)
	go func() { got <- m.Acquire(1, 2, Exclusive) }()
	select {
	case <-got:
		t.Fatal("upgrade granted with another reader present")
	case <-time.After(30 * time.Millisecond):
	}
	m.Release(2)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("upgrade never granted")
	}
}

func TestFIFOFairnessNoReaderOvertaking(t *testing.T) {
	m := New(5 * time.Second)
	defer m.Close()
	m.Acquire(1, 4, Shared)
	// Writer queues behind the reader.
	writerDone := make(chan error, 1)
	go func() { writerDone <- m.Acquire(2, 4, Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	// A new reader must NOT overtake the queued writer.
	readerDone := make(chan error, 1)
	go func() { readerDone <- m.Acquire(3, 4, Shared) }()
	select {
	case <-readerDone:
		t.Fatal("late reader overtook queued writer (writer starvation)")
	case <-time.After(30 * time.Millisecond):
	}
	m.Release(1)
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
	m.Release(2)
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := New(10 * time.Second)
	defer m.Close()
	m.Acquire(1, 10, Exclusive)
	m.Acquire(2, 20, Exclusive)
	r1 := make(chan error, 1)
	go func() { r1 <- m.Acquire(1, 20, Exclusive) }() // 1 waits on 2
	time.Sleep(20 * time.Millisecond)
	r2 := make(chan error, 1)
	go func() { r2 <- m.Acquire(2, 10, Exclusive) }() // 2 waits on 1: cycle

	// The youngest (txn 2) must die; txn 1 proceeds after 2 releases.
	select {
	case err := <-r2:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("victim error = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("deadlock not detected")
	}
	m.Release(2)
	select {
	case err := <-r1:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("survivor never granted")
	}
}

func TestThreeWayDeadlock(t *testing.T) {
	m := New(10 * time.Second)
	defer m.Close()
	m.Acquire(1, 1, Exclusive)
	m.Acquire(2, 2, Exclusive)
	m.Acquire(3, 3, Exclusive)
	errs := make(chan error, 3)
	go func() { errs <- m.Acquire(1, 2, Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	go func() { errs <- m.Acquire(2, 3, Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	go func() { errs <- m.Acquire(3, 1, Exclusive) }()

	select {
	case err := <-errs:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("first completion = %v, want deadlock victim", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("three-way deadlock not detected")
	}
}

func TestAcquireAllOrdersItems(t *testing.T) {
	m := New(time.Second)
	defer m.Close()
	if err := m.AcquireAll(1, []core.ItemID{9, 3}, []core.ItemID{5, 3}); err != nil {
		t.Fatal(err)
	}
	// Item 3 appears in both sets: exclusive wins.
	if mode, _ := m.Holds(1, 3); mode != Exclusive {
		t.Error("write-set item not exclusive")
	}
	if mode, _ := m.Holds(1, 9); mode != Shared {
		t.Error("read-set item not shared")
	}
	if mode, _ := m.Holds(1, 5); mode != Exclusive {
		t.Error("exclusive item wrong")
	}
}

func TestCloseFailsWaiters(t *testing.T) {
	m := New(10 * time.Second)
	m.Acquire(1, 1, Exclusive)
	got := make(chan error, 1)
	go func() { got <- m.Acquire(2, 1, Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	m.Close()
	select {
	case err := <-got:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("close did not wake waiter")
	}
	if err := m.Acquire(3, 2, Shared); !errors.Is(err, ErrClosed) {
		t.Errorf("acquire after close: %v", err)
	}
	m.Close() // idempotent
}

func TestReleaseWithoutLocksIsNoop(t *testing.T) {
	m := New(time.Second)
	defer m.Close()
	m.Release(42)
	locked, waiters := m.Stats()
	if locked != 0 || waiters != 0 {
		t.Errorf("stats = %d %d", locked, waiters)
	}
}

func TestStats(t *testing.T) {
	m := New(5 * time.Second)
	defer m.Close()
	m.Acquire(1, 1, Exclusive)
	m.Acquire(1, 2, Shared)
	go m.Acquire(2, 1, Shared)
	time.Sleep(20 * time.Millisecond)
	locked, waiters := m.Stats()
	if locked != 2 || waiters != 1 {
		t.Errorf("stats = %d locked, %d waiting", locked, waiters)
	}
	m.Release(1)
	m.Release(2)
	locked, waiters = m.Stats()
	if locked != 0 || waiters != 0 {
		t.Errorf("after release: %d %d (lock table must shrink)", locked, waiters)
	}
}

// Stress: random transactions over a small item space with 2PL discipline
// never corrupt a guarded counter array, and the manager survives
// deadlock storms.
func TestStressSerializability(t *testing.T) {
	const (
		workers = 8
		items   = 6
		rounds  = 150
	)
	m := New(2 * time.Second)
	defer m.Close()
	var data [items]int64 // guarded by item locks
	var txnSeq atomic.Uint64
	var wg sync.WaitGroup
	var deadlocks atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				txn := core.TxnID(txnSeq.Add(1))
				a := core.ItemID(rng.Intn(items))
				b := core.ItemID(rng.Intn(items))
				if a == b {
					continue // a self-transfer would double-assign data[a]
				}
				err := m.AcquireAll(txn, nil, []core.ItemID{a, b})
				if err != nil {
					m.Release(txn)
					if errors.Is(err, ErrDeadlock) || errors.Is(err, ErrTimeout) {
						deadlocks.Add(1)
						continue
					}
					t.Error(err)
					return
				}
				// Critical section: transfer between a and b. Any lock
				// bug shows up as a torn read-modify-write under -race.
				va, vb := data[a], data[b]
				data[a], data[b] = va-1, vb+1
				m.Release(txn)
			}
		}(int64(w + 1))
	}
	wg.Wait()
	var sum int64
	for _, v := range data {
		sum += v
	}
	if sum != 0 {
		t.Errorf("conservation violated: sum = %d", sum)
	}
	locked, waiters := m.Stats()
	if locked != 0 || waiters != 0 {
		t.Errorf("leaked locks: %d items, %d waiters", locked, waiters)
	}
}
