package lockmgr

import (
	"testing"
	"time"

	"minraid/internal/core"
)

func BenchmarkUncontendedAcquireRelease(b *testing.B) {
	m := New(time.Second)
	defer m.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		txn := core.TxnID(i + 1)
		if err := m.Acquire(txn, core.ItemID(i%64), Exclusive); err != nil {
			b.Fatal(err)
		}
		m.Release(txn)
	}
}

func BenchmarkAcquireAll(b *testing.B) {
	m := New(time.Second)
	defer m.Close()
	shared := []core.ItemID{1, 3, 5}
	exclusive := []core.ItemID{2, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := core.TxnID(i + 1)
		if err := m.AcquireAll(txn, shared, exclusive); err != nil {
			b.Fatal(err)
		}
		m.Release(txn)
	}
}

func BenchmarkContendedHandoff(b *testing.B) {
	m := New(10 * time.Second)
	defer m.Close()
	const item = core.ItemID(7)
	b.ResetTimer()
	prev := core.TxnID(1)
	if err := m.Acquire(prev, item, Exclusive); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		next := core.TxnID(i + 2)
		done := make(chan error, 1)
		go func() { done <- m.Acquire(next, item, Exclusive) }()
		m.Release(prev)
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		prev = next
	}
	m.Release(prev)
}
