// Package lockmgr implements a strict two-phase-locking lock manager with
// shared/exclusive item locks, lock upgrades, FIFO fairness, waits-for
// deadlock detection and acquisition timeouts.
//
// The paper's mini-RAID deliberately factored concurrency control out
// ("our system did not include concurrency control and transactions were
// processed serially", §1.2, assumption 2) and names re-running the
// protocol "taking into account ... concurrency control" as future work
// (§5). This package is that substrate: the complete-RAID integration
// point for interleaved transaction execution. Its concept of a lock also
// anchors the paper's fail-lock analogy ("this idea is adopted from the
// concept of a lock in concurrency control algorithms", §1.1).
//
// The lock table is sharded into stripes keyed by item hash, so
// transactions touching disjoint items take disjoint mutexes and the
// manager scales with the concurrency degree instead of serializing every
// grant behind one lock. Grants, releases and timeouts touch only the
// item's stripe; deadlock detection is the one cross-stripe operation: it
// locks all stripes in index order (a fixed order, so two concurrent
// detections cannot deadlock on the stripe mutexes themselves) and builds
// the global waits-for graph. Detection runs only when a transaction is
// forced to wait — the contended path, where its cost is already dwarfed
// by the wait itself.
package lockmgr

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"minraid/internal/core"
)

// Mode is a lock mode.
type Mode uint8

const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits one writer.
	Exclusive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// Errors returned by Acquire.
var (
	// ErrDeadlock is returned to the transaction chosen as deadlock
	// victim. The victim should release its locks and retry.
	ErrDeadlock = errors.New("lockmgr: deadlock victim")
	// ErrTimeout is returned when the lock was not granted in time.
	ErrTimeout = errors.New("lockmgr: acquisition timed out")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("lockmgr: closed")
)

// defaultStripes is the lock-table shard count. Power of two so stripe
// selection is a mask; 16 comfortably exceeds plausible ConcurrentTxns
// degrees while keeping the all-stripes deadlock sweep cheap.
const defaultStripes = 16

// maxStripes caps the shard count so a transaction's touched-stripe set
// fits in one uint64 bitmask.
const maxStripes = 64

// txnShards shards the touched-stripe index by transaction ID, so
// recording a touch doesn't reintroduce a global mutex.
const txnShards = 16

// request is one waiting acquisition.
type request struct {
	txn   core.TxnID
	item  core.ItemID // the item whose queue holds this request
	mode  Mode
	ready chan error // buffered(1); nil error = granted
}

// lockState is the per-item lock table entry.
type lockState struct {
	holders map[core.TxnID]Mode
	queue   []*request
}

// stripe is one shard of the lock table. Its mutex guards every field;
// cross-stripe operations lock stripes in index order.
type stripe struct {
	mu    sync.Mutex
	items map[core.ItemID]*lockState
	held  map[core.TxnID]map[core.ItemID]Mode // reverse index, this stripe's items only
	waits map[core.TxnID]*request             // at most one wait per txn globally
}

// txnShard is one shard of the touched-stripe index: for each live
// transaction, a bitmask of the stripes it has acquired (or queued) on,
// so Release visits only those stripes instead of all of them.
type txnShard struct {
	mu      sync.Mutex
	touched map[core.TxnID]uint64
}

// Manager is a strict-2PL lock manager. All methods are safe for
// concurrent use. Locks are held until Release(txn) — strictness — so
// cascading aborts cannot occur.
type Manager struct {
	stripes []*stripe
	txns    [txnShards]txnShard
	timeout time.Duration
	closed  atomic.Bool
}

// New returns a manager with the given acquisition timeout (0 means wait
// forever, relying on deadlock detection alone) and the default stripe
// count.
func New(timeout time.Duration) *Manager {
	return NewSharded(timeout, defaultStripes)
}

// NewSharded returns a manager with an explicit stripe count, rounded up
// to a power of two, at least 1 and at most 64 (the touched-stripe
// bitmask width). A single stripe reproduces the original
// fully-serialized table (useful for comparison benchmarks).
func NewSharded(timeout time.Duration, stripes int) *Manager {
	n := 1
	for n < stripes && n < maxStripes {
		n <<= 1
	}
	m := &Manager{stripes: make([]*stripe, n), timeout: timeout}
	for i := range m.stripes {
		m.stripes[i] = &stripe{
			items: make(map[core.ItemID]*lockState),
			held:  make(map[core.TxnID]map[core.ItemID]Mode),
			waits: make(map[core.TxnID]*request),
		}
	}
	for i := range m.txns {
		m.txns[i].touched = make(map[core.TxnID]uint64)
	}
	return m
}

// stripeIdx hashes an item to its stripe index. The multiplier is the
// splitmix64 increment (odd, well-distributed), so adjacent item IDs land
// on different stripes.
func (m *Manager) stripeIdx(item core.ItemID) int {
	h := uint64(item) * 0x9E3779B97F4A7C15
	return int((h >> 32) & uint64(len(m.stripes)-1))
}

// stripeFor returns the stripe holding item's lock state.
func (m *Manager) stripeFor(item core.ItemID) *stripe {
	return m.stripes[m.stripeIdx(item)]
}

// markTouched records that txn has acquired or queued on stripe idx.
func (m *Manager) markTouched(txn core.TxnID, idx int) {
	sh := &m.txns[uint64(txn)%txnShards]
	sh.mu.Lock()
	sh.touched[txn] |= 1 << idx
	sh.mu.Unlock()
}

// takeTouched returns and clears txn's touched-stripe bitmask.
func (m *Manager) takeTouched(txn core.TxnID) uint64 {
	sh := &m.txns[uint64(txn)%txnShards]
	sh.mu.Lock()
	mask := sh.touched[txn]
	delete(sh.touched, txn)
	sh.mu.Unlock()
	return mask
}

// lockAll locks every stripe in index order (the canonical order that
// makes cross-stripe operations mutually deadlock-free).
func (m *Manager) lockAll() {
	for _, s := range m.stripes {
		s.mu.Lock()
	}
}

// unlockAll releases every stripe.
func (m *Manager) unlockAll() {
	for _, s := range m.stripes {
		s.mu.Unlock()
	}
}

// Acquire obtains item in mode for txn, blocking until granted, deadlock,
// timeout or Close. Re-acquiring a held lock is a no-op; acquiring
// Exclusive over a held Shared upgrades (waiting for other readers to
// drain).
func (m *Manager) Acquire(txn core.TxnID, item core.ItemID, mode Mode) error {
	idx := m.stripeIdx(item)
	st := m.stripes[idx]
	// Recorded before grant/queue so Release always sees the stripe even
	// if it races a timed-out acquisition.
	m.markTouched(txn, idx)
	st.mu.Lock()
	if m.closed.Load() {
		st.mu.Unlock()
		return ErrClosed
	}
	ls := st.lockState(item)

	if cur, ok := ls.holders[txn]; ok {
		if cur == Exclusive || mode == Shared {
			st.mu.Unlock()
			return nil // already strong enough
		}
		// Upgrade request: proceed to queue with upgrade semantics.
	}

	if st.grantable(ls, txn, mode) {
		st.grant(ls, txn, item, mode)
		st.mu.Unlock()
		return nil
	}

	// Queue and wait.
	req := &request{txn: txn, item: item, mode: mode, ready: make(chan error, 1)}
	ls.queue = append(ls.queue, req)
	st.waits[txn] = req
	st.mu.Unlock()

	// A new waiter may close a cycle; detection needs the global graph,
	// so it runs outside the single-stripe critical section.
	m.detectDeadlock()

	var timeoutCh <-chan time.Time
	if m.timeout > 0 {
		t := time.NewTimer(m.timeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case err := <-req.ready:
		return err
	case <-timeoutCh:
		st.mu.Lock()
		// Re-check: the grant may have raced the timer.
		select {
		case err := <-req.ready:
			st.mu.Unlock()
			return err
		default:
		}
		st.dropWaiter(req)
		st.mu.Unlock()
		return fmt.Errorf("%w: txn %d on item %d (%s)", ErrTimeout, txn, item, mode)
	}
}

// AcquireAll takes locks for a whole read/write set in ascending item
// order (a canonical order removes one class of deadlocks). On any error,
// locks already held by txn are NOT released; call Release.
func (m *Manager) AcquireAll(txn core.TxnID, shared, exclusive []core.ItemID) error {
	type want struct {
		item core.ItemID
		mode Mode
	}
	var wants []want
	ex := make(map[core.ItemID]bool, len(exclusive))
	for _, it := range exclusive {
		if !ex[it] {
			ex[it] = true
			wants = append(wants, want{it, Exclusive})
		}
	}
	for _, it := range shared {
		if !ex[it] {
			wants = append(wants, want{it, Shared})
		}
	}
	for i := 1; i < len(wants); i++ {
		for j := i; j > 0 && wants[j].item < wants[j-1].item; j-- {
			wants[j], wants[j-1] = wants[j-1], wants[j]
		}
	}
	for _, w := range wants {
		if err := m.Acquire(txn, w.item, w.mode); err != nil {
			return err
		}
	}
	return nil
}

// Release drops every lock txn holds and cancels any wait, waking queued
// transactions that become grantable. Strict 2PL: call exactly once, at
// commit or abort.
func (m *Manager) Release(txn core.TxnID) {
	mask := m.takeTouched(txn)
	for i, st := range m.stripes {
		if mask&(1<<i) == 0 {
			continue
		}
		st.mu.Lock()
		if req, ok := st.waits[txn]; ok {
			st.dropWaiter(req)
		}
		items := st.held[txn]
		delete(st.held, txn)
		for item := range items {
			ls := st.items[item]
			delete(ls.holders, txn)
			st.promote(ls, item)
			if len(ls.holders) == 0 && len(ls.queue) == 0 {
				delete(st.items, item)
			}
		}
		st.mu.Unlock()
	}
}

// Holds reports the mode txn holds on item, if any.
func (m *Manager) Holds(txn core.TxnID, item core.ItemID) (Mode, bool) {
	st := m.stripeFor(item)
	st.mu.Lock()
	defer st.mu.Unlock()
	mode, ok := st.held[txn][item]
	return mode, ok
}

// Stats returns the number of locked items and waiting transactions.
func (m *Manager) Stats() (lockedItems, waiters int) {
	m.lockAll()
	defer m.unlockAll()
	for _, st := range m.stripes {
		lockedItems += len(st.items)
		waiters += len(st.waits)
	}
	return lockedItems, waiters
}

// Close fails every waiter with ErrClosed and rejects future acquisitions.
func (m *Manager) Close() {
	if m.closed.Swap(true) {
		return
	}
	m.lockAll()
	defer m.unlockAll()
	for _, st := range m.stripes {
		for _, req := range st.waits {
			req.ready <- ErrClosed
		}
		st.waits = make(map[core.TxnID]*request)
		for _, ls := range st.items {
			ls.queue = nil
		}
	}
}

// lockState returns (creating if needed) the entry for item; callers hold
// the stripe mutex.
func (st *stripe) lockState(item core.ItemID) *lockState {
	ls, ok := st.items[item]
	if !ok {
		ls = &lockState{holders: make(map[core.TxnID]Mode)}
		st.items[item] = ls
	}
	return ls
}

// grantable reports whether txn could hold item in mode right now,
// ignoring the queue (queue fairness is handled by promote). Callers hold
// the stripe mutex.
func (st *stripe) grantable(ls *lockState, txn core.TxnID, mode Mode) bool {
	// Fairness: a new shared request must not overtake a queued upgrade
	// or exclusive request (starvation).
	if len(ls.queue) > 0 {
		// Exception: an upgrade by the sole holder bypasses the queue
		// check below via the holders loop.
		if _, holder := ls.holders[txn]; !holder {
			return false
		}
	}
	for other, otherMode := range ls.holders {
		if other == txn {
			continue
		}
		if mode == Exclusive || otherMode == Exclusive {
			return false
		}
	}
	return true
}

// grant records txn holding item in mode. Callers hold the stripe mutex.
func (st *stripe) grant(ls *lockState, txn core.TxnID, item core.ItemID, mode Mode) {
	if cur, ok := ls.holders[txn]; !ok || mode == Exclusive || cur == Exclusive {
		if cur, ok := ls.holders[txn]; ok && cur == Exclusive {
			mode = Exclusive // never downgrade
		}
		ls.holders[txn] = mode
	}
	held := st.held[txn]
	if held == nil {
		held = make(map[core.ItemID]Mode)
		st.held[txn] = held
	}
	if cur, ok := held[item]; !ok || cur != Exclusive {
		held[item] = ls.holders[txn]
	}
}

// promote grants queued requests that have become compatible, in FIFO
// order, stopping at the first that still conflicts (head-of-line
// blocking preserves fairness). Upgrades are considered regardless of
// position, since they block on other holders, not on the queue. Callers
// hold the stripe mutex.
func (st *stripe) promote(ls *lockState, item core.ItemID) {
	for {
		advanced := false
		// First: any waiting upgrade whose only blockers are gone.
		for i, req := range ls.queue {
			if _, holder := ls.holders[req.txn]; holder && compatibleIgnoringSelf(ls, req) {
				st.grant(ls, req.txn, item, req.mode)
				ls.queue = append(ls.queue[:i:i], ls.queue[i+1:]...)
				delete(st.waits, req.txn)
				req.ready <- nil
				advanced = true
				break
			}
		}
		if advanced {
			continue
		}
		// Then: FIFO head.
		if len(ls.queue) == 0 {
			return
		}
		head := ls.queue[0]
		if !compatibleIgnoringSelf(ls, head) {
			return
		}
		st.grant(ls, head.txn, item, head.mode)
		ls.queue = ls.queue[1:]
		delete(st.waits, head.txn)
		head.ready <- nil
	}
}

// compatibleIgnoringSelf reports whether req conflicts with any holder
// other than its own transaction. Callers hold the stripe mutex.
func compatibleIgnoringSelf(ls *lockState, req *request) bool {
	for other, otherMode := range ls.holders {
		if other == req.txn {
			continue
		}
		if req.mode == Exclusive || otherMode == Exclusive {
			return false
		}
	}
	return true
}

// detectDeadlock locks all stripes, builds the global waits-for graph,
// and aborts the victim of any cycle found. Runs after a transaction
// queues (the only event that can close a cycle).
func (m *Manager) detectDeadlock() {
	m.lockAll()
	defer m.unlockAll()
	victim := m.findDeadlockVictimLocked()
	if victim == core.NoTxn {
		return
	}
	for _, st := range m.stripes {
		if req, ok := st.waits[victim]; ok {
			st.dropWaiter(req)
			req.ready <- fmt.Errorf("%w: txn %d", ErrDeadlock, victim)
			return
		}
	}
}

// findDeadlockVictimLocked builds the waits-for graph across all stripes
// and returns a transaction on a cycle (the youngest, i.e. highest
// TxnID), or NoTxn. Callers hold every stripe mutex.
func (m *Manager) findDeadlockVictimLocked() core.TxnID {
	// waits-for: waiting txn -> each conflicting holder.
	var edges map[core.TxnID][]core.TxnID
	waiting := make(map[core.TxnID]bool)
	for _, st := range m.stripes {
		for txn := range st.waits {
			waiting[txn] = true
		}
		for _, ls := range st.items {
			for _, req := range ls.queue {
				for holder, holderMode := range ls.holders {
					if holder == req.txn {
						continue
					}
					if req.mode == Exclusive || holderMode == Exclusive {
						if edges == nil {
							edges = make(map[core.TxnID][]core.TxnID)
						}
						edges[req.txn] = append(edges[req.txn], holder)
					}
				}
			}
		}
	}
	// DFS cycle detection.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[core.TxnID]int)
	var cycle []core.TxnID
	var dfs func(t core.TxnID, stack []core.TxnID) bool
	dfs = func(t core.TxnID, stack []core.TxnID) bool {
		color[t] = grey
		stack = append(stack, t)
		for _, next := range edges[t] {
			switch color[next] {
			case grey:
				// Found a cycle: slice the stack from next.
				for i, s := range stack {
					if s == next {
						cycle = append([]core.TxnID(nil), stack[i:]...)
						return true
					}
				}
			case white:
				if dfs(next, stack) {
					return true
				}
			}
		}
		color[t] = black
		return false
	}
	for t := range edges {
		if color[t] == white && dfs(t, nil) {
			break
		}
	}
	if len(cycle) == 0 {
		return core.NoTxn
	}
	victim := cycle[0]
	for _, t := range cycle[1:] {
		if t > victim {
			victim = t // youngest transaction dies
		}
	}
	// Only a waiter can be woken with an error; if the chosen victim is
	// not waiting, pick the youngest waiting member of the cycle.
	if !waiting[victim] {
		victim = core.NoTxn
		for _, t := range cycle {
			if waiting[t] && t > victim {
				victim = t
			}
		}
	}
	return victim
}

// dropWaiter removes a request from its item's queue and the wait index.
// Callers hold the stripe mutex of the request's item.
func (st *stripe) dropWaiter(req *request) {
	delete(st.waits, req.txn)
	ls, ok := st.items[req.item]
	if !ok {
		return
	}
	for i, q := range ls.queue {
		if q == req {
			ls.queue = append(ls.queue[:i:i], ls.queue[i+1:]...)
			// Removing a waiter can unblock the queue behind it.
			st.promote(ls, req.item)
			return
		}
	}
}
