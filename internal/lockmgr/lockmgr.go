// Package lockmgr implements a strict two-phase-locking lock manager with
// shared/exclusive item locks, lock upgrades, FIFO fairness, waits-for
// deadlock detection and acquisition timeouts.
//
// The paper's mini-RAID deliberately factored concurrency control out
// ("our system did not include concurrency control and transactions were
// processed serially", §1.2, assumption 2) and names re-running the
// protocol "taking into account ... concurrency control" as future work
// (§5). This package is that substrate: the complete-RAID integration
// point for interleaved transaction execution. Its concept of a lock also
// anchors the paper's fail-lock analogy ("this idea is adopted from the
// concept of a lock in concurrency control algorithms", §1.1).
package lockmgr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"minraid/internal/core"
)

// Mode is a lock mode.
type Mode uint8

const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits one writer.
	Exclusive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// Errors returned by Acquire.
var (
	// ErrDeadlock is returned to the transaction chosen as deadlock
	// victim. The victim should release its locks and retry.
	ErrDeadlock = errors.New("lockmgr: deadlock victim")
	// ErrTimeout is returned when the lock was not granted in time.
	ErrTimeout = errors.New("lockmgr: acquisition timed out")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("lockmgr: closed")
)

// request is one waiting acquisition.
type request struct {
	txn   core.TxnID
	mode  Mode
	ready chan error // buffered(1); nil error = granted
}

// lockState is the per-item lock table entry.
type lockState struct {
	holders map[core.TxnID]Mode
	queue   []*request
}

// Manager is a strict-2PL lock manager. All methods are safe for
// concurrent use. Locks are held until Release(txn) — strictness — so
// cascading aborts cannot occur.
type Manager struct {
	mu      sync.Mutex
	items   map[core.ItemID]*lockState
	held    map[core.TxnID]map[core.ItemID]Mode // reverse index
	waits   map[core.TxnID]*request             // at most one wait per txn
	timeout time.Duration
	closed  bool
}

// New returns a manager with the given acquisition timeout (0 means wait
// forever, relying on deadlock detection alone).
func New(timeout time.Duration) *Manager {
	return &Manager{
		items:   make(map[core.ItemID]*lockState),
		held:    make(map[core.TxnID]map[core.ItemID]Mode),
		waits:   make(map[core.TxnID]*request),
		timeout: timeout,
	}
}

// Acquire obtains item in mode for txn, blocking until granted, deadlock,
// timeout or Close. Re-acquiring a held lock is a no-op; acquiring
// Exclusive over a held Shared upgrades (waiting for other readers to
// drain).
func (m *Manager) Acquire(txn core.TxnID, item core.ItemID, mode Mode) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	ls := m.lockState(item)

	if cur, ok := ls.holders[txn]; ok {
		if cur == Exclusive || mode == Shared {
			m.mu.Unlock()
			return nil // already strong enough
		}
		// Upgrade request: proceed to queue with upgrade semantics.
	}

	if m.grantable(ls, txn, mode) {
		m.grant(ls, txn, item, mode)
		m.mu.Unlock()
		return nil
	}

	// Queue and wait.
	req := &request{txn: txn, mode: mode, ready: make(chan error, 1)}
	ls.queue = append(ls.queue, req)
	m.waits[txn] = req
	// A new waiter may close a cycle.
	if victim := m.findDeadlockVictim(); victim != core.NoTxn {
		m.abortWaiter(victim)
	}
	m.mu.Unlock()

	var timeoutCh <-chan time.Time
	if m.timeout > 0 {
		t := time.NewTimer(m.timeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case err := <-req.ready:
		return err
	case <-timeoutCh:
		m.mu.Lock()
		// Re-check: the grant may have raced the timer.
		select {
		case err := <-req.ready:
			m.mu.Unlock()
			return err
		default:
		}
		m.dropWaiter(req)
		m.mu.Unlock()
		return fmt.Errorf("%w: txn %d on item %d (%s)", ErrTimeout, txn, item, mode)
	}
}

// AcquireAll takes locks for a whole read/write set in ascending item
// order (a canonical order removes one class of deadlocks). On any error,
// locks already held by txn are NOT released; call Release.
func (m *Manager) AcquireAll(txn core.TxnID, shared, exclusive []core.ItemID) error {
	type want struct {
		item core.ItemID
		mode Mode
	}
	var wants []want
	ex := make(map[core.ItemID]bool, len(exclusive))
	for _, it := range exclusive {
		if !ex[it] {
			ex[it] = true
			wants = append(wants, want{it, Exclusive})
		}
	}
	for _, it := range shared {
		if !ex[it] {
			wants = append(wants, want{it, Shared})
		}
	}
	for i := 1; i < len(wants); i++ {
		for j := i; j > 0 && wants[j].item < wants[j-1].item; j-- {
			wants[j], wants[j-1] = wants[j-1], wants[j]
		}
	}
	for _, w := range wants {
		if err := m.Acquire(txn, w.item, w.mode); err != nil {
			return err
		}
	}
	return nil
}

// Release drops every lock txn holds and cancels any wait, waking queued
// transactions that become grantable. Strict 2PL: call exactly once, at
// commit or abort.
func (m *Manager) Release(txn core.TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if req, ok := m.waits[txn]; ok {
		m.dropWaiter(req)
	}
	items := m.held[txn]
	delete(m.held, txn)
	for item := range items {
		ls := m.items[item]
		delete(ls.holders, txn)
		m.promote(ls, item)
		if len(ls.holders) == 0 && len(ls.queue) == 0 {
			delete(m.items, item)
		}
	}
}

// Holds reports the mode txn holds on item, if any.
func (m *Manager) Holds(txn core.TxnID, item core.ItemID) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mode, ok := m.held[txn][item]
	return mode, ok
}

// Stats returns the number of locked items and waiting transactions.
func (m *Manager) Stats() (lockedItems, waiters int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items), len(m.waits)
}

// Close fails every waiter with ErrClosed and rejects future acquisitions.
func (m *Manager) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	for _, req := range m.waits {
		req.ready <- ErrClosed
	}
	m.waits = make(map[core.TxnID]*request)
	for _, ls := range m.items {
		ls.queue = nil
	}
}

// lockState returns (creating if needed) the entry for item; callers hold
// mu.
func (m *Manager) lockState(item core.ItemID) *lockState {
	ls, ok := m.items[item]
	if !ok {
		ls = &lockState{holders: make(map[core.TxnID]Mode)}
		m.items[item] = ls
	}
	return ls
}

// grantable reports whether txn could hold item in mode right now,
// ignoring the queue (queue fairness is handled by promote). Callers hold
// mu.
func (m *Manager) grantable(ls *lockState, txn core.TxnID, mode Mode) bool {
	// Fairness: a new shared request must not overtake a queued upgrade
	// or exclusive request (starvation).
	if len(ls.queue) > 0 {
		// Exception: an upgrade by the sole holder bypasses the queue
		// check below via the holders loop.
		if _, holder := ls.holders[txn]; !holder {
			return false
		}
	}
	for other, otherMode := range ls.holders {
		if other == txn {
			continue
		}
		if mode == Exclusive || otherMode == Exclusive {
			return false
		}
	}
	return true
}

// grant records txn holding item in mode. Callers hold mu.
func (m *Manager) grant(ls *lockState, txn core.TxnID, item core.ItemID, mode Mode) {
	if cur, ok := ls.holders[txn]; !ok || mode == Exclusive || cur == Exclusive {
		if cur, ok := ls.holders[txn]; ok && cur == Exclusive {
			mode = Exclusive // never downgrade
		}
		ls.holders[txn] = mode
	}
	held := m.held[txn]
	if held == nil {
		held = make(map[core.ItemID]Mode)
		m.held[txn] = held
	}
	if cur, ok := held[item]; !ok || cur != Exclusive {
		held[item] = ls.holders[txn]
	}
}

// promote grants queued requests that have become compatible, in FIFO
// order, stopping at the first that still conflicts (head-of-line
// blocking preserves fairness). Upgrades are considered regardless of
// position, since they block on other holders, not on the queue. Callers
// hold mu.
func (m *Manager) promote(ls *lockState, item core.ItemID) {
	for {
		advanced := false
		// First: any waiting upgrade whose only blockers are gone.
		for i, req := range ls.queue {
			if _, holder := ls.holders[req.txn]; holder && m.compatibleIgnoringSelf(ls, req) {
				m.grant(ls, req.txn, item, req.mode)
				ls.queue = append(ls.queue[:i:i], ls.queue[i+1:]...)
				delete(m.waits, req.txn)
				req.ready <- nil
				advanced = true
				break
			}
		}
		if advanced {
			continue
		}
		// Then: FIFO head.
		if len(ls.queue) == 0 {
			return
		}
		head := ls.queue[0]
		if !m.compatibleIgnoringSelf(ls, head) {
			return
		}
		m.grant(ls, head.txn, item, head.mode)
		ls.queue = ls.queue[1:]
		delete(m.waits, head.txn)
		head.ready <- nil
	}
}

// compatibleIgnoringSelf reports whether req conflicts with any holder
// other than its own transaction. Callers hold mu.
func (m *Manager) compatibleIgnoringSelf(ls *lockState, req *request) bool {
	for other, otherMode := range ls.holders {
		if other == req.txn {
			continue
		}
		if req.mode == Exclusive || otherMode == Exclusive {
			return false
		}
	}
	return true
}

// findDeadlockVictim builds the waits-for graph and returns a transaction
// on a cycle (the youngest, i.e. highest TxnID), or NoTxn. Callers hold
// mu.
func (m *Manager) findDeadlockVictim() core.TxnID {
	// waits-for: waiting txn -> each conflicting holder.
	edges := make(map[core.TxnID][]core.TxnID, len(m.waits))
	for item, ls := range m.items {
		_ = item
		for _, req := range ls.queue {
			for holder, holderMode := range ls.holders {
				if holder == req.txn {
					continue
				}
				if req.mode == Exclusive || holderMode == Exclusive {
					edges[req.txn] = append(edges[req.txn], holder)
				}
			}
		}
	}
	// DFS cycle detection.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[core.TxnID]int)
	var cycle []core.TxnID
	var dfs func(t core.TxnID, stack []core.TxnID) bool
	dfs = func(t core.TxnID, stack []core.TxnID) bool {
		color[t] = grey
		stack = append(stack, t)
		for _, next := range edges[t] {
			switch color[next] {
			case grey:
				// Found a cycle: slice the stack from next.
				for i, s := range stack {
					if s == next {
						cycle = append([]core.TxnID(nil), stack[i:]...)
						return true
					}
				}
			case white:
				if dfs(next, stack) {
					return true
				}
			}
		}
		color[t] = black
		return false
	}
	for t := range edges {
		if color[t] == white && dfs(t, nil) {
			break
		}
	}
	if len(cycle) == 0 {
		return core.NoTxn
	}
	victim := cycle[0]
	for _, t := range cycle[1:] {
		if t > victim {
			victim = t // youngest transaction dies
		}
	}
	// Only a waiter can be woken with an error; if the chosen victim is
	// not waiting (it is a holder in the cycle... every cycle member
	// waits by construction of the edges, except holders reached at the
	// end) pick the youngest waiting member.
	if _, ok := m.waits[victim]; !ok {
		victim = core.NoTxn
		for _, t := range cycle {
			if _, ok := m.waits[t]; ok && t > victim {
				victim = t
			}
		}
	}
	return victim
}

// abortWaiter fails a waiting transaction with ErrDeadlock. Callers hold
// mu.
func (m *Manager) abortWaiter(txn core.TxnID) {
	req, ok := m.waits[txn]
	if !ok {
		return
	}
	m.dropWaiter(req)
	req.ready <- fmt.Errorf("%w: txn %d", ErrDeadlock, txn)
}

// dropWaiter removes a request from its queue and the wait index. Callers
// hold mu.
func (m *Manager) dropWaiter(req *request) {
	delete(m.waits, req.txn)
	for item, ls := range m.items {
		for i, q := range ls.queue {
			if q == req {
				ls.queue = append(ls.queue[:i:i], ls.queue[i+1:]...)
				// Removing a waiter can unblock the queue behind it.
				m.promote(ls, item)
				return
			}
		}
	}
}
