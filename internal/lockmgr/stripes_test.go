package lockmgr

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"minraid/internal/core"
)

// TestStripeCountRounding checks NewSharded's power-of-two rounding and
// the single-stripe degenerate case.
func TestStripeCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32},
	} {
		m := NewSharded(0, tc.in)
		if len(m.stripes) != tc.want {
			t.Errorf("NewSharded(%d) has %d stripes, want %d", tc.in, len(m.stripes), tc.want)
		}
	}
}

// TestCrossStripeDeadlock builds a cycle whose two items live on
// different stripes, so detection only succeeds if the waits-for graph is
// assembled across the whole table, not per stripe.
func TestCrossStripeDeadlock(t *testing.T) {
	m := NewSharded(0, 8) // no timeout: only detection can break the cycle
	defer m.Close()

	// Find two items on different stripes.
	a := core.ItemID(0)
	b := a + 1
	for m.stripeFor(a) == m.stripeFor(b) {
		b++
	}

	if err := m.Acquire(1, a, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, b, Exclusive); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- m.Acquire(1, b, Exclusive) }()
	time.Sleep(20 * time.Millisecond) // let txn 1 queue first
	go func() { errs <- m.Acquire(2, a, Exclusive) }()

	select {
	case err := <-errs:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("got %v, want ErrDeadlock", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cross-stripe deadlock never detected")
	}
	// The survivor completes once the victim releases.
	m.Release(2) // victim was the youngest (txn 2)
	select {
	case err := <-errs:
		if err != nil {
			t.Fatalf("survivor got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("survivor never granted")
	}
}

// TestStripedStress hammers the striped table from many goroutines over
// many items, checking mutual exclusion of exclusive locks. Run with
// -race this also proves stripe handoff is race-clean.
func TestStripedStress(t *testing.T) {
	m := New(200 * time.Millisecond)
	defer m.Close()
	const (
		workers = 16
		rounds  = 200
		items   = 40
	)
	owner := make([]int64, items) // owner[i] = txn holding i exclusively
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				txn := core.TxnID(w*rounds + r + 1)
				i1 := core.ItemID((w*7 + r) % items)
				i2 := core.ItemID((w*13 + r*3) % items)
				if err := m.AcquireAll(txn, []core.ItemID{i1}, []core.ItemID{i2}); err != nil {
					m.Release(txn)
					continue
				}
				mu.Lock()
				if owner[i2] != 0 {
					t.Errorf("item %d exclusively held by txn %d and txn %d", i2, owner[i2], txn)
				}
				owner[i2] = int64(txn)
				mu.Unlock()
				mu.Lock()
				owner[i2] = 0
				mu.Unlock()
				m.Release(txn)
			}
		}(w)
	}
	wg.Wait()
	locked, waiters := m.Stats()
	if locked != 0 || waiters != 0 {
		t.Errorf("table not empty after stress: %d locked, %d waiters", locked, waiters)
	}
}

// BenchmarkStripedParallelDisjoint measures uncontended acquire/release
// throughput with all CPUs hitting disjoint items — the case striping
// exists for. Compare -stripes variants:
//
//	go test -bench 'StripedParallel' -cpu 4 ./internal/lockmgr/
func BenchmarkStripedParallelDisjoint(b *testing.B) {
	for _, stripes := range []int{1, 16} {
		b.Run(map[int]string{1: "stripes=1", 16: "stripes=16"}[stripes], func(b *testing.B) {
			m := NewSharded(time.Second, stripes)
			defer m.Close()
			var txnSeq atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				// Each worker owns a private item range: pure stripe
				// scaling, no lock conflicts.
				base := core.ItemID(txnSeq.Add(1000000))
				txn := core.TxnID(base)
				i := 0
				for pb.Next() {
					txn++
					item := base + core.ItemID(i%128)
					i++
					if err := m.Acquire(txn, item, Exclusive); err != nil {
						b.Fatal(err)
					}
					m.Release(txn)
				}
			})
		})
	}
}
