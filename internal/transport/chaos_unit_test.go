package transport

import (
	"reflect"
	"testing"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
)

// chaosRun pushes a fixed message pattern through a fresh chaotic network
// and returns the per-link decision counters after a full drain.
func chaosRun(t *testing.T, cfg ChaosConfig, msgs int) map[LinkID]LinkStats {
	t.Helper()
	inner := NewMemory(MemoryConfig{Sites: 3})
	ch := NewChaos(inner, cfg)
	ep0, err := ch.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := ch.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= msgs; i++ {
		if err := ep0.Send(commitEnv(1, core.TxnID(i), uint64(i))); err != nil {
			t.Fatal(err)
		}
		if err := ep1.Send(commitEnv(2, core.TxnID(i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Close drains every link pipeline before shutting the inner network,
	// so by the time it returns all decisions are recorded.
	if err := ch.Close(); err != nil {
		t.Fatal(err)
	}
	return ch.Stats()
}

// TestChaosDeterministic: same (seed, config) must reproduce the exact
// same drop/dup/jitter decisions, independent of wall-clock timing.
func TestChaosDeterministic(t *testing.T) {
	cfg := ChaosConfig{Seed: 7, Drop: 0.3, Dup: 0.25, MaxJitter: time.Millisecond}
	a := chaosRun(t, cfg, 300)
	b := chaosRun(t, cfg, 300)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	total := LinkStats{}
	for _, s := range a {
		total.Add(s)
	}
	if total.Sent != 600 {
		t.Fatalf("sent = %d, want 600", total.Sent)
	}
	if total.Dropped == 0 || total.Duplicated == 0 || total.JitterTotal == 0 {
		t.Fatalf("faults never fired: %+v", total)
	}

	cfg.Seed = 8
	c := chaosRun(t, cfg, 300)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical decisions")
	}
}

// TestChaosLinksIndependent: the two directed links of the run draw from
// independent streams — their decisions differ even for the same pattern.
func TestChaosLinksIndependent(t *testing.T) {
	stats := chaosRun(t, ChaosConfig{Seed: 3, Drop: 0.4, MaxJitter: time.Millisecond}, 400)
	l01, l12 := stats[LinkID{From: 0, To: 1}], stats[LinkID{From: 1, To: 2}]
	if l01.Sent != 400 || l12.Sent != 400 {
		t.Fatalf("per-link sent: %+v %+v", l01, l12)
	}
	if l01.Dropped == l12.Dropped && l01.JitterTotal == l12.JitterTotal {
		t.Fatalf("links drew identical decision streams: %+v", l01)
	}
}

// TestChaosZeroConfigPassThrough: with every fault probability zero the
// decorator must be a pure pass-through — no fault pipelines at all, every
// message delivered unchanged and in order.
func TestChaosZeroConfigPassThrough(t *testing.T) {
	inner := NewMemory(MemoryConfig{Sites: 2})
	ch := NewChaos(inner, ChaosConfig{Seed: 1})
	defer ch.Close()
	a, _ := ch.Endpoint(0)
	b, _ := ch.Endpoint(1)

	const n = 50
	for i := 1; i <= n; i++ {
		if err := a.Send(commitEnv(1, core.TxnID(i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= n; i++ {
		env, ok := b.Recv()
		if !ok {
			t.Fatalf("recv %d: closed", i)
		}
		if env.Seq != uint64(i) || env.From != 0 || env.To != 1 {
			t.Fatalf("recv %d: %v", i, env)
		}
		body, ok := env.Body.(*msg.Commit)
		if !ok || body.Txn != core.TxnID(i) {
			t.Fatalf("recv %d: body %v", i, env.Body)
		}
	}
	if stats := ch.Stats(); len(stats) != 0 {
		t.Fatalf("pass-through created fault pipelines: %v", stats)
	}
	if got := inner.MessagesSent(); got != n {
		t.Fatalf("inner sent %d, want %d", got, n)
	}
}

// TestChaosDropAll: Drop=1 delivers nothing and counts everything dropped.
func TestChaosDropAll(t *testing.T) {
	stats := chaosRun(t, ChaosConfig{Seed: 1, Drop: 1}, 20)
	total := LinkStats{}
	for _, s := range stats {
		total.Add(s)
	}
	if total.Sent != 40 || total.Dropped != 40 || total.Duplicated != 0 {
		t.Fatalf("stats: %+v", total)
	}
}

// TestChaosDupAll: Dup=1 delivers every message exactly twice, in order.
func TestChaosDupAll(t *testing.T) {
	inner := NewMemory(MemoryConfig{Sites: 2})
	ch := NewChaos(inner, ChaosConfig{Seed: 1, Dup: 1})
	defer ch.Close()
	a, _ := ch.Endpoint(0)
	b, _ := ch.Endpoint(1)

	const n = 10
	for i := 1; i <= n; i++ {
		if err := a.Send(commitEnv(1, core.TxnID(i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= n; i++ {
		for copyNum := 0; copyNum < 2; copyNum++ {
			env, ok := b.Recv()
			if !ok || env.Seq != uint64(i) {
				t.Fatalf("recv %d/%d: %v %v", i, copyNum, env, ok)
			}
		}
	}
	if got := ch.Stats()[LinkID{From: 0, To: 1}].Duplicated; got != n {
		t.Fatalf("duplicated = %d, want %d", got, n)
	}
}

// TestChaosPreservesFIFO: jitter delays messages but never reorders a
// link's stream.
func TestChaosPreservesFIFO(t *testing.T) {
	inner := NewMemory(MemoryConfig{Sites: 2})
	ch := NewChaos(inner, ChaosConfig{Seed: 9, MaxJitter: 2 * time.Millisecond})
	defer ch.Close()
	a, _ := ch.Endpoint(0)
	b, _ := ch.Endpoint(1)

	const n = 60
	for i := 1; i <= n; i++ {
		if err := a.Send(commitEnv(1, core.TxnID(i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= n; i++ {
		env, ok := b.Recv()
		if !ok || env.Seq != uint64(i) {
			t.Fatalf("recv %d: got seq %d (ok=%v) — reordered", i, env.Seq, ok)
		}
	}
}

// TestChaosExemptManager: with ExemptManager set, links touching the
// managing site bypass fault injection entirely even when every other
// message is dropped.
func TestChaosExemptManager(t *testing.T) {
	inner := NewMemory(MemoryConfig{Sites: 2})
	ch := NewChaos(inner, ChaosConfig{Seed: 1, Drop: 1, ExemptManager: true})
	defer ch.Close()
	s0, _ := ch.Endpoint(0)
	mgr, _ := ch.Endpoint(core.ManagingSite)

	if err := mgr.Send(commitEnv(0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if env, ok := s0.Recv(); !ok || env.From != core.ManagingSite {
		t.Fatalf("manager->site dropped: %v %v", env, ok)
	}
	if err := s0.Send(&msg.Envelope{To: core.ManagingSite, Seq: 2, Body: &msg.CommitAck{Txn: 1}}); err != nil {
		t.Fatal(err)
	}
	if env, ok := mgr.Recv(); !ok || env.From != 0 {
		t.Fatalf("site->manager dropped: %v %v", env, ok)
	}
	if stats := ch.Stats(); len(stats) != 0 {
		t.Fatalf("manager links entered fault pipelines: %v", stats)
	}
}

// TestMemoryDelayPipelines: Delay models per-message latency, not
// bandwidth — k messages queued to one destination all arrive after about
// one Delay, not k of them (the delivery deadline is sendTime+Delay).
func TestMemoryDelayPipelines(t *testing.T) {
	const (
		k     = 8
		delay = 40 * time.Millisecond
	)
	m := NewMemory(MemoryConfig{Sites: 2, Delay: delay})
	defer m.Close()
	a, _ := m.Endpoint(0)
	b, _ := m.Endpoint(1)

	start := time.Now()
	for i := 1; i <= k; i++ {
		if err := a.Send(commitEnv(1, core.TxnID(i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= k; i++ {
		if env, ok := b.Recv(); !ok || env.Seq != uint64(i) {
			t.Fatalf("recv %d: %v %v", i, env, ok)
		}
	}
	elapsed := time.Since(start)
	if elapsed < delay {
		t.Fatalf("messages arrived after %v, before the %v delay", elapsed, delay)
	}
	// Pipelined deliveries finish in ~1 Delay; the serial model would need
	// k*Delay = 320ms. Allow generous scheduling slack.
	if limit := 2 * delay; elapsed > limit {
		t.Fatalf("draining %d messages took %v, want < %v (pipelined), serial would be %v",
			k, elapsed, limit, k*delay)
	}
}
