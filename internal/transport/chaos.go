package transport

import (
	"math/rand"
	"sync"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
)

// ChaosConfig parameterizes a Chaos network decorator. The zero value of
// every fault field is "off": a config with Drop, Dup and MaxJitter all
// zero is a byte-for-byte pass-through of the inner network.
type ChaosConfig struct {
	// Seed determines every fault decision. Each directed link derives its
	// own rand.Source from (Seed, from, to), so the decision taken for the
	// k-th message on a link is a pure function of (Seed, config, from, to,
	// k): a run is exactly reproducible from its seed, and faults on one
	// link do not perturb the decision stream of another.
	Seed int64
	// Drop is the per-message probability a message silently disappears.
	Drop float64
	// Dup is the per-message probability a delivered message is delivered
	// twice (back to back, in order — the at-least-once behavior a
	// retransmitting transport exhibits).
	Dup float64
	// MaxJitter bounds the extra latency injected per delivered message:
	// each message is held for a uniform duration in [0, MaxJitter].
	// Per-link FIFO order is preserved — jitter delays messages, it never
	// reorders them.
	MaxJitter time.Duration
	// BaseDelay is a deterministic per-message latency floor: every
	// delivered message is held for BaseDelay plus its jitter draw, so
	// delivery latency is Base + [0, MaxJitter] rather than [0, MaxJitter]
	// (which lets a nominally slow link deliver in 0ns). BaseDelay burns
	// no rng draw and is not counted in JitterTotal — the jitter
	// fingerprint stays an exact record of the rng stream, cut links
	// included.
	BaseDelay time.Duration
	// Links overrides the fault parameters per directed link. A link with
	// an entry uses exactly that entry; a link without one uses the global
	// Drop/Dup/BaseDelay/MaxJitter fields. This is how WAN profiles give
	// every region pair its own latency and bandwidth while the rng
	// seeding stays per-link as before.
	Links map[LinkID]LinkChaos
	// ExemptManager leaves links to and from the managing site untouched.
	// The managing site is the experimenter's out-of-band console (§1.2);
	// soak runs keep its control and measurement channel reliable while
	// the inter-site protocol links misbehave.
	ExemptManager bool
}

// LinkChaos is one directed link's fault parameters, used as a per-link
// override of the global ChaosConfig fields.
type LinkChaos struct {
	// Drop and Dup are per-message probabilities, as in ChaosConfig.
	Drop float64
	Dup  float64
	// BaseDelay is the deterministic propagation floor; MaxJitter bounds
	// the seeded extra hold on top of it.
	BaseDelay time.Duration
	MaxJitter time.Duration
	// PerMsgCost is the wire occupancy per message — a serialization
	// (bandwidth) cost. The link transmits at most one message per
	// PerMsgCost: unlike BaseDelay, which pipelines (messages in flight
	// overlap), serialization time is paid back to back, so fan-out
	// bursts on a thin link queue behind each other. Deterministic, no
	// rng draw, not counted in JitterTotal.
	PerMsgCost time.Duration
}

// active reports whether the link config injects any fault at all.
func (lc LinkChaos) active() bool {
	return lc.Drop > 0 || lc.Dup > 0 || lc.MaxJitter > 0 || lc.BaseDelay > 0 || lc.PerMsgCost > 0
}

// Active reports whether the config injects any probabilistic fault at
// all (administrative cuts via SetLinkDown work regardless).
func (c ChaosConfig) Active() bool {
	if c.Drop > 0 || c.Dup > 0 || c.MaxJitter > 0 || c.BaseDelay > 0 {
		return true
	}
	for _, lc := range c.Links {
		if lc.active() {
			return true
		}
	}
	return false
}

// linkChaos resolves the effective fault parameters for one directed
// link: its Links override when present, the global fields otherwise.
func (c ChaosConfig) linkChaos(from, to core.SiteID) LinkChaos {
	if lc, ok := c.Links[LinkID{From: from, To: to}]; ok {
		return lc
	}
	return LinkChaos{Drop: c.Drop, Dup: c.Dup, BaseDelay: c.BaseDelay, MaxJitter: c.MaxJitter}
}

// LinkID names one directed link of the network.
type LinkID struct {
	From, To core.SiteID
}

// LinkStats counts one link's chaos decisions. Two runs with the same
// (seed, config) and the same per-link message sequence produce identical
// stats — the reproducibility check soak runs rely on.
type LinkStats struct {
	// Sent counts messages offered to the link.
	Sent uint64
	// Dropped counts messages the link silently discarded.
	Dropped uint64
	// Duplicated counts messages delivered twice.
	Duplicated uint64
	// JitterTotal is the summed injected latency, an exact fingerprint of
	// the link's jitter draws.
	JitterTotal time.Duration
	// Cut counts messages discarded because the link was administratively
	// down (SetLinkDown) — the partition scheduler's cuts, distinct from
	// probabilistic Dropped. Cut messages never reach the link's rng, so
	// the probabilistic decision stream stays a pure function of the
	// messages that survive the cut.
	Cut uint64
}

// Add folds other into s.
func (s *LinkStats) Add(other LinkStats) {
	s.Sent += other.Sent
	s.Dropped += other.Dropped
	s.Duplicated += other.Duplicated
	s.JitterTotal += other.JitterTotal
	s.Cut += other.Cut
}

// Chaos is a fault-injection decorator over any Network: per-directed-link
// probabilistic message drop, duplication and bounded latency jitter,
// deterministically driven by one seeded rand.Source per link.
//
// It deliberately breaks the paper's reliability assumption (§1.2,
// assumption 1: no loss, no duplication) while preserving per-link FIFO
// order, so experiments can measure how the ack-timeout/announce machinery
// behaves when messages actually misbehave. Exempt links (and every link
// when no fault is configured) bypass the decorator entirely.
type Chaos struct {
	inner Network
	cfg   ChaosConfig

	mu       sync.Mutex
	eps      map[core.SiteID]*chaosEndpoint
	links    map[LinkID]*chaosLink
	downs    map[LinkID]bool
	cutStats map[LinkID]LinkStats
	closed   bool
	wg       sync.WaitGroup
}

// NewChaos wraps inner with seeded fault injection. Closing the returned
// network closes inner too.
func NewChaos(inner Network, cfg ChaosConfig) *Chaos {
	return &Chaos{
		inner:    inner,
		cfg:      cfg,
		eps:      make(map[core.SiteID]*chaosEndpoint),
		links:    make(map[LinkID]*chaosLink),
		downs:    make(map[LinkID]bool),
		cutStats: make(map[LinkID]LinkStats),
	}
}

// SetLinkDown administratively cuts (or restores) the directed link
// from->to. While down, messages offered to the link are discarded at
// Send time — before the chaotic pipeline, so cut traffic burns no rng
// draws and the probabilistic decision stream of the surviving messages
// is unchanged. This is the hook the netsched partition scheduler
// drives; it works even when no probabilistic fault is configured.
func (c *Chaos) SetLinkDown(from, to core.SiteID, down bool) {
	key := LinkID{From: from, To: to}
	c.mu.Lock()
	defer c.mu.Unlock()
	if down {
		c.downs[key] = true
	} else {
		delete(c.downs, key)
	}
}

// cutDrop reports whether from->to is administratively down, counting
// the discarded message when it is.
func (c *Chaos) cutDrop(from, to core.SiteID) bool {
	key := LinkID{From: from, To: to}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.downs[key] {
		return false
	}
	s := c.cutStats[key]
	s.Sent++
	s.Cut++
	c.cutStats[key] = s
	return true
}

// Endpoint implements Network.
func (c *Chaos) Endpoint(id core.SiteID) (Endpoint, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if ep, ok := c.eps[id]; ok {
		return ep, nil
	}
	inner, err := c.inner.Endpoint(id)
	if err != nil {
		return nil, err
	}
	ep := &chaosEndpoint{net: c, inner: inner}
	c.eps[id] = ep
	return ep, nil
}

// Close implements Network: drain the fault pipelines, then close the
// inner network.
func (c *Chaos) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for _, l := range c.links {
		l.q.close()
	}
	c.mu.Unlock()
	c.wg.Wait()
	return c.inner.Close()
}

// Stats snapshots every link's decision counters, folding in messages
// discarded by administrative cuts.
func (c *Chaos) Stats() map[LinkID]LinkStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[LinkID]LinkStats, len(c.links)+len(c.cutStats))
	for id, l := range c.links {
		l.mu.Lock()
		out[id] = l.stats
		l.mu.Unlock()
	}
	for id, s := range c.cutStats {
		merged := out[id]
		merged.Add(s)
		out[id] = merged
	}
	return out
}

// TotalStats folds every link's counters into one.
func (c *Chaos) TotalStats() LinkStats {
	var total LinkStats
	for _, s := range c.Stats() {
		total.Add(s)
	}
	return total
}

// exempt reports whether the directed link from->to bypasses fault
// injection: manager links under ExemptManager, and any link whose
// effective (per-link or global) config injects nothing — so a Links
// map that touches some links leaves the others byte-for-byte
// pass-throughs, exactly like a fully inactive config does.
func (c *Chaos) exempt(from, to core.SiteID) bool {
	if c.cfg.ExemptManager && (from == core.ManagingSite || to == core.ManagingSite) {
		return true
	}
	return !c.cfg.linkChaos(from, to).active()
}

// linkFor returns the fault pipeline for from->to, creating it (and its
// forwarder goroutine) on first use.
func (c *Chaos) linkFor(from, to core.SiteID, inner Endpoint) (*chaosLink, error) {
	key := LinkID{From: from, To: to}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	l, ok := c.links[key]
	if !ok {
		l = &chaosLink{
			cfg:   c.cfg.linkChaos(from, to),
			rng:   rand.New(rand.NewSource(linkSeed(c.cfg.Seed, from, to))),
			inner: inner,
			q:     newQueue[chaosItem](),
		}
		c.links[key] = l
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			l.run()
		}()
	}
	return l, nil
}

// linkSeed derives a link's rand seed from the network seed and the link's
// endpoints, via a splitmix64-style mix so neighboring links get unrelated
// streams.
func linkSeed(seed int64, from, to core.SiteID) int64 {
	z := uint64(seed) ^ (uint64(from)+1)*0x9E3779B97F4A7C15 ^ (uint64(to)+1)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// chaosItem is one message in a link's fault pipeline.
type chaosItem struct {
	env *msg.Envelope
	at  time.Time // enqueue time; jitter holds relative to this
}

// chaosLink serializes one directed link's messages through its seeded
// decision stream: a single forwarder goroutine pops in FIFO order, draws
// drop/jitter/dup decisions in a fixed order from the link's private rng,
// and forwards survivors to the inner endpoint. Decisions therefore depend
// only on the message's position in the link's send order, never on
// wall-clock timing or cross-link interleaving.
type chaosLink struct {
	cfg   LinkChaos
	rng   *rand.Rand
	inner Endpoint
	q     *queue[chaosItem]

	mu    sync.Mutex
	stats LinkStats
}

func (l *chaosLink) run() {
	for {
		it, ok := l.q.pop()
		if !ok {
			return
		}
		// Fixed decision order: drop, then jitter, then dup. A draw is
		// burned only when its fault is configured, so the stream is a
		// pure function of (seed, config, position).
		var delta LinkStats
		delta.Sent = 1
		dropped := l.cfg.Drop > 0 && l.rng.Float64() < l.cfg.Drop
		var jitter time.Duration
		var dup bool
		if !dropped {
			if l.cfg.MaxJitter > 0 {
				jitter = time.Duration(l.rng.Int63n(int64(l.cfg.MaxJitter) + 1))
				delta.JitterTotal = jitter
			}
			if l.cfg.Dup > 0 && l.rng.Float64() < l.cfg.Dup {
				dup = true
				delta.Duplicated = 1
			}
		} else {
			delta.Dropped = 1
		}
		l.mu.Lock()
		l.stats.Add(delta)
		l.mu.Unlock()
		if dropped {
			continue
		}
		if l.cfg.PerMsgCost > 0 {
			// Serialization: the wire carries one message at a time, so
			// this cost is paid per pop, back to back — a burst of k
			// messages occupies the link for k*PerMsgCost even though
			// propagation below pipelines.
			time.Sleep(l.cfg.PerMsgCost)
		}
		if d := l.cfg.BaseDelay + jitter - time.Since(it.at); d > 0 {
			// Hold until enqueueTime+base+jitter, not base+jitter after the
			// previous delivery: propagation pipelines, FIFO order is kept
			// by the single forwarder.
			time.Sleep(d)
		}
		// Send errors (shutdown races, partitioned inner links) are the
		// inner network's delivery policy; a chaotic link is lossy by
		// construction and has nobody to report them to.
		_ = l.inner.Send(it.env)
		if dup {
			_ = l.inner.Send(it.env)
		}
	}
}

// chaosEndpoint decorates one site's attachment.
type chaosEndpoint struct {
	net   *Chaos
	inner Endpoint
}

// ID implements Endpoint.
func (ep *chaosEndpoint) ID() core.SiteID { return ep.inner.ID() }

// Send implements Endpoint. On an exempt link it is the inner Send,
// byte-for-byte; on a chaotic link the message enters the link's fault
// pipeline and Send reports acceptance, with delivery best-effort from
// there on — exactly the contract a lossy wire offers.
func (ep *chaosEndpoint) Send(env *msg.Envelope) error {
	from := ep.inner.ID()
	// Administrative cuts apply before exemption: a scheduler-cut link
	// drops everything even when no probabilistic fault is configured.
	// Send still reports acceptance — a cut wire is silence, not an
	// error the sender can observe.
	if ep.net.cutDrop(from, env.To) {
		return nil
	}
	if ep.net.exempt(from, env.To) {
		return ep.inner.Send(env)
	}
	l, err := ep.net.linkFor(from, env.To, ep.inner)
	if err != nil {
		return err
	}
	if !l.q.push(chaosItem{env: env, at: time.Now()}) {
		return ErrClosed
	}
	return nil
}

// Recv implements Endpoint.
func (ep *chaosEndpoint) Recv() (*msg.Envelope, bool) { return ep.inner.Recv() }

// Close implements Endpoint.
func (ep *chaosEndpoint) Close() error { return ep.inner.Close() }

var _ Network = (*Chaos)(nil)
