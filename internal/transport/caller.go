package transport

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
)

// Caller errors.
var (
	// ErrTimeout is returned when no reply arrives within the ack
	// timeout. The protocol treats it as evidence the callee failed.
	ErrTimeout = errors.New("transport: call timed out")
	// ErrCancelled is returned to callers when CancelAll runs — the local
	// site failed (or shut down) with the call in flight.
	ErrCancelled = errors.New("transport: call cancelled")
)

// Caller layers request/response correlation over an Endpoint: it assigns
// sequence numbers, matches replies to pending calls, and enforces the ack
// timeout that the replicated-copy-control protocol uses to detect site
// failures.
//
// The owner's receive loop must offer every inbound reply to Deliver; other
// messages are handled by the owner directly.
type Caller struct {
	ep      Endpoint
	timeout time.Duration
	seq     atomic.Uint64
	sent    atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan delivered
}

// delivered carries a reply together with the moment Deliver accepted it,
// so a multicast can report per-target round-trip times even though its
// slots are drained serially after the fan-out.
type delivered struct {
	env *msg.Envelope
	at  time.Time
}

// NewCaller wraps ep with the given call timeout.
//
// Sequence numbers are seeded from the wall clock: the TCP transport
// suppresses reconnect duplicates by requiring strictly increasing
// sequence numbers per sender, and a restarted process (a new raidctl
// invocation, a rebooted raidsrv) must not reuse the numbers its
// predecessor burned.
func NewCaller(ep Endpoint, timeout time.Duration) *Caller {
	c := &Caller{ep: ep, timeout: timeout, pending: make(map[uint64]chan delivered)}
	c.seq.Store(uint64(time.Now().UnixNano()))
	return c
}

// Sent returns the number of messages sent through this caller.
func (c *Caller) Sent() uint64 { return c.sent.Load() }

// Timeout returns the configured call timeout.
func (c *Caller) Timeout() time.Duration { return c.timeout }

// Send transmits a fire-and-forget message.
func (c *Caller) Send(to core.SiteID, body msg.Body) error {
	return c.SendT(0, to, body)
}

// SendT is Send with a trace ID stamped on the envelope.
func (c *Caller) SendT(trace uint64, to core.SiteID, body msg.Body) error {
	c.sent.Add(1)
	return c.ep.Send(&msg.Envelope{To: to, Seq: c.seq.Add(1), Trace: trace, Body: body})
}

// Reply transmits a response correlated to req. The request's trace ID
// is carried back on the reply so both directions of an exchange belong
// to the same span.
func (c *Caller) Reply(req *msg.Envelope, body msg.Body) error {
	c.sent.Add(1)
	return c.ep.Send(&msg.Envelope{To: req.From, Seq: c.seq.Add(1), ReplyTo: req.Seq, Trace: req.Trace, Body: body})
}

// Call sends body to to and waits for the correlated reply.
func (c *Caller) Call(to core.SiteID, body msg.Body) (*msg.Envelope, error) {
	return c.CallT(0, to, body)
}

// CallT is Call with a trace ID stamped on the request envelope.
func (c *Caller) CallT(trace uint64, to core.SiteID, body msg.Body) (*msg.Envelope, error) {
	return c.CallTimeoutT(trace, to, body, c.timeout)
}

// CallTimeoutT is CallT with an explicit reply deadline overriding the
// caller's configured timeout for this one call. Background work (the
// scrubber's repair batches) uses it so a call racing a site failure
// costs a bounded wait instead of the full configured timeout.
func (c *Caller) CallTimeoutT(trace uint64, to core.SiteID, body msg.Body, timeout time.Duration) (*msg.Envelope, error) {
	seq, ch := c.register()
	defer c.unregister(seq)
	c.sent.Add(1)
	if err := c.ep.Send(&msg.Envelope{To: to, Seq: seq, Trace: trace, Body: body}); err != nil {
		return nil, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	d, err := c.await(ch, timer)
	return d.env, err
}

// Outcall is one request of an error-reporting multicast: a destination
// and the body to send it.
type Outcall struct {
	To   core.SiteID
	Body msg.Body
}

// Outcalls builds a uniform Outcall slice: one request per target, with
// bodies produced by mk.
func Outcalls(targets []core.SiteID, mk func(core.SiteID) msg.Body) []Outcall {
	calls := make([]Outcall, len(targets))
	for i, id := range targets {
		calls[i] = Outcall{To: id, Body: mk(id)}
	}
	return calls
}

// CallResult is one slot's outcome in a MulticastT fan-out.
type CallResult struct {
	// To is the slot's destination, copied from the Outcall.
	To core.SiteID
	// Reply is the correlated reply; nil exactly when Err is non-nil.
	Reply *msg.Envelope
	// Err is nil on success; otherwise the send error (the request never
	// left this site), ErrTimeout (the target stayed silent past the
	// shared deadline — the protocol's evidence of its failure), or
	// ErrCancelled (the local site failed with the fan-out in flight).
	Err error
	// RTT is the fan-out-start-to-reply-delivery latency, set on success.
	RTT time.Duration
}

// Multicall sends mk(target) to every target concurrently and collects
// replies under one shared deadline. The result maps each target to its
// reply; a missing entry means that target did not answer in time (or the
// call was cancelled).
func (c *Caller) Multicall(targets []core.SiteID, mk func(core.SiteID) msg.Body) map[core.SiteID]*msg.Envelope {
	return c.MulticallT(0, targets, mk)
}

// MulticallT is Multicall with a trace ID stamped on every request.
func (c *Caller) MulticallT(trace uint64, targets []core.SiteID, mk func(core.SiteID) msg.Body) map[core.SiteID]*msg.Envelope {
	out := make(map[core.SiteID]*msg.Envelope, len(targets))
	for _, r := range c.MulticastT(trace, Outcalls(targets, mk)) {
		if r.Err == nil {
			out[r.To] = r.Reply
		}
	}
	return out
}

// MulticastT sends every call concurrently and reports a per-slot outcome
// — the reply, or an error distinguishing send failure from timeout from
// cancellation — under one shared deadline: with k unresponsive targets
// the whole fan-out costs ~1 ack timeout, not k. Results align with calls,
// so duplicate destinations are well-defined (each slot gets its own
// correlated reply).
func (c *Caller) MulticastT(trace uint64, calls []Outcall) []CallResult {
	out := make([]CallResult, len(calls))
	seqs := make([]uint64, len(calls))
	chans := make([]chan delivered, len(calls))
	start := time.Now()
	for i, call := range calls {
		out[i].To = call.To
		seq, ch := c.register()
		c.sent.Add(1)
		if err := c.ep.Send(&msg.Envelope{To: call.To, Seq: seq, Trace: trace, Body: call.Body}); err != nil {
			// The request never left, so no reply can ever arrive: fail
			// the slot now instead of burning the shared deadline on it.
			c.unregister(seq)
			out[i].Err = err
			continue
		}
		seqs[i], chans[i] = seq, ch
	}
	timer := time.NewTimer(c.timeout)
	defer timer.Stop()
	for i := range calls {
		if chans[i] == nil {
			continue
		}
		d, err := c.await(chans[i], timer)
		c.unregister(seqs[i])
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Reply = d.env
		out[i].RTT = d.at.Sub(start)
	}
	return out
}

// MulticastAsyncT sends every call like MulticastT but returns as soon as
// the requests are on the wire; the returned join function collects the
// per-slot outcomes under the shared deadline, which starts at send time.
// The epoch-commit flush uses it to release transaction results the
// moment the commit batch is sent, collecting commit acks (and detecting
// lost participants) off the critical path. join must be called exactly
// once; the registered slots leak otherwise.
func (c *Caller) MulticastAsyncT(trace uint64, calls []Outcall) func() []CallResult {
	out := make([]CallResult, len(calls))
	seqs := make([]uint64, len(calls))
	chans := make([]chan delivered, len(calls))
	start := time.Now()
	for i, call := range calls {
		out[i].To = call.To
		seq, ch := c.register()
		c.sent.Add(1)
		if err := c.ep.Send(&msg.Envelope{To: call.To, Seq: seq, Trace: trace, Body: call.Body}); err != nil {
			c.unregister(seq)
			out[i].Err = err
			continue
		}
		seqs[i], chans[i] = seq, ch
	}
	timer := time.NewTimer(c.timeout)
	return func() []CallResult {
		defer timer.Stop()
		for i := range calls {
			if chans[i] == nil {
				continue
			}
			d, err := c.await(chans[i], timer)
			c.unregister(seqs[i])
			if err != nil {
				out[i].Err = err
				continue
			}
			out[i].Reply = d.env
			out[i].RTT = d.at.Sub(start)
		}
		return out
	}
}

// await waits for one reply on ch or for the (shared) timer to fire.
// The timer is not reset between calls, implementing a single deadline
// across a multicast: a reply that beat the deadline sits buffered in its
// slot's channel and is still collected after an earlier slot timed out.
func (c *Caller) await(ch chan delivered, timer *time.Timer) (delivered, error) {
	select {
	case d, ok := <-ch:
		if !ok || d.env == nil {
			return delivered{}, ErrCancelled
		}
		return d, nil
	case <-timer.C:
		// Keep the timer expired for subsequent awaits on the same timer.
		timer.Reset(0)
		return delivered{}, ErrTimeout
	}
}

// Deliver routes an inbound reply to its pending call. It returns true if
// the envelope was consumed; a false return means no call is waiting (late
// reply after timeout) and the owner may drop it.
func (c *Caller) Deliver(env *msg.Envelope) bool {
	if env.ReplyTo == 0 {
		return false
	}
	c.mu.Lock()
	ch, ok := c.pending[env.ReplyTo]
	if ok {
		delete(c.pending, env.ReplyTo)
	}
	c.mu.Unlock()
	if !ok {
		return false
	}
	ch <- delivered{env: env, at: time.Now()} // buffered: never blocks
	return true
}

// CancelAll fails every pending call with ErrCancelled. Used when the
// local site simulates failure: in-flight coordination must stop silently.
func (c *Caller) CancelAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for seq, ch := range c.pending {
		close(ch)
		delete(c.pending, seq)
	}
}

func (c *Caller) register() (uint64, chan delivered) {
	seq := c.seq.Add(1)
	ch := make(chan delivered, 1)
	c.mu.Lock()
	c.pending[seq] = ch
	c.mu.Unlock()
	return seq, ch
}

func (c *Caller) unregister(seq uint64) {
	c.mu.Lock()
	delete(c.pending, seq)
	c.mu.Unlock()
}
