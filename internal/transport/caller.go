package transport

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
)

// Caller errors.
var (
	// ErrTimeout is returned when no reply arrives within the ack
	// timeout. The protocol treats it as evidence the callee failed.
	ErrTimeout = errors.New("transport: call timed out")
	// ErrCancelled is returned to callers when CancelAll runs — the local
	// site failed (or shut down) with the call in flight.
	ErrCancelled = errors.New("transport: call cancelled")
)

// Caller layers request/response correlation over an Endpoint: it assigns
// sequence numbers, matches replies to pending calls, and enforces the ack
// timeout that the replicated-copy-control protocol uses to detect site
// failures.
//
// The owner's receive loop must offer every inbound reply to Deliver; other
// messages are handled by the owner directly.
type Caller struct {
	ep      Endpoint
	timeout time.Duration
	seq     atomic.Uint64
	sent    atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan *msg.Envelope
}

// NewCaller wraps ep with the given call timeout.
//
// Sequence numbers are seeded from the wall clock: the TCP transport
// suppresses reconnect duplicates by requiring strictly increasing
// sequence numbers per sender, and a restarted process (a new raidctl
// invocation, a rebooted raidsrv) must not reuse the numbers its
// predecessor burned.
func NewCaller(ep Endpoint, timeout time.Duration) *Caller {
	c := &Caller{ep: ep, timeout: timeout, pending: make(map[uint64]chan *msg.Envelope)}
	c.seq.Store(uint64(time.Now().UnixNano()))
	return c
}

// Sent returns the number of messages sent through this caller.
func (c *Caller) Sent() uint64 { return c.sent.Load() }

// Timeout returns the configured call timeout.
func (c *Caller) Timeout() time.Duration { return c.timeout }

// Send transmits a fire-and-forget message.
func (c *Caller) Send(to core.SiteID, body msg.Body) error {
	return c.SendT(0, to, body)
}

// SendT is Send with a trace ID stamped on the envelope.
func (c *Caller) SendT(trace uint64, to core.SiteID, body msg.Body) error {
	c.sent.Add(1)
	return c.ep.Send(&msg.Envelope{To: to, Seq: c.seq.Add(1), Trace: trace, Body: body})
}

// Reply transmits a response correlated to req. The request's trace ID
// is carried back on the reply so both directions of an exchange belong
// to the same span.
func (c *Caller) Reply(req *msg.Envelope, body msg.Body) error {
	c.sent.Add(1)
	return c.ep.Send(&msg.Envelope{To: req.From, Seq: c.seq.Add(1), ReplyTo: req.Seq, Trace: req.Trace, Body: body})
}

// Call sends body to to and waits for the correlated reply.
func (c *Caller) Call(to core.SiteID, body msg.Body) (*msg.Envelope, error) {
	return c.CallT(0, to, body)
}

// CallT is Call with a trace ID stamped on the request envelope.
func (c *Caller) CallT(trace uint64, to core.SiteID, body msg.Body) (*msg.Envelope, error) {
	seq, ch := c.register()
	defer c.unregister(seq)
	c.sent.Add(1)
	if err := c.ep.Send(&msg.Envelope{To: to, Seq: seq, Trace: trace, Body: body}); err != nil {
		return nil, err
	}
	return c.await(ch, time.NewTimer(c.timeout))
}

// Multicall sends mk(target) to every target concurrently and collects
// replies under one shared deadline. The result maps each target to its
// reply; a missing entry means that target did not answer in time (or the
// call was cancelled).
func (c *Caller) Multicall(targets []core.SiteID, mk func(core.SiteID) msg.Body) map[core.SiteID]*msg.Envelope {
	return c.MulticallT(0, targets, mk)
}

// MulticallT is Multicall with a trace ID stamped on every request.
func (c *Caller) MulticallT(trace uint64, targets []core.SiteID, mk func(core.SiteID) msg.Body) map[core.SiteID]*msg.Envelope {
	type slot struct {
		id  core.SiteID
		seq uint64
		ch  chan *msg.Envelope
	}
	slots := make([]slot, 0, len(targets))
	for _, id := range targets {
		seq, ch := c.register()
		slots = append(slots, slot{id: id, seq: seq, ch: ch})
		c.sent.Add(1)
		// A send error (unknown site) just leaves the slot unanswered.
		_ = c.ep.Send(&msg.Envelope{To: id, Seq: seq, Trace: trace, Body: mk(id)})
	}
	out := make(map[core.SiteID]*msg.Envelope, len(targets))
	timer := time.NewTimer(c.timeout)
	defer timer.Stop()
	for _, sl := range slots {
		env, err := c.await(sl.ch, timer)
		c.unregister(sl.seq)
		if err == nil {
			out[sl.id] = env
		}
	}
	return out
}

// await waits for one reply on ch or for the (shared) timer to fire.
// The timer is not reset between calls, implementing a single deadline
// across a Multicall.
func (c *Caller) await(ch chan *msg.Envelope, timer *time.Timer) (*msg.Envelope, error) {
	select {
	case env, ok := <-ch:
		if !ok || env == nil {
			return nil, ErrCancelled
		}
		return env, nil
	case <-timer.C:
		// Keep the timer expired for subsequent awaits on the same timer.
		timer.Reset(0)
		return nil, ErrTimeout
	}
}

// Deliver routes an inbound reply to its pending call. It returns true if
// the envelope was consumed; a false return means no call is waiting (late
// reply after timeout) and the owner may drop it.
func (c *Caller) Deliver(env *msg.Envelope) bool {
	if env.ReplyTo == 0 {
		return false
	}
	c.mu.Lock()
	ch, ok := c.pending[env.ReplyTo]
	if ok {
		delete(c.pending, env.ReplyTo)
	}
	c.mu.Unlock()
	if !ok {
		return false
	}
	ch <- env // buffered: never blocks
	return true
}

// CancelAll fails every pending call with ErrCancelled. Used when the
// local site simulates failure: in-flight coordination must stop silently.
func (c *Caller) CancelAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for seq, ch := range c.pending {
		close(ch)
		delete(c.pending, seq)
	}
}

func (c *Caller) register() (uint64, chan *msg.Envelope) {
	seq := c.seq.Add(1)
	ch := make(chan *msg.Envelope, 1)
	c.mu.Lock()
	c.pending[seq] = ch
	c.mu.Unlock()
	return seq, ch
}

func (c *Caller) unregister(seq uint64) {
	c.mu.Lock()
	delete(c.pending, seq)
	c.mu.Unlock()
}
