// Package transport moves protocol messages between sites.
//
// Two implementations are provided:
//
//   - Memory: all sites in one process, per-link FIFO delivery with an
//     optional fixed per-hop latency. This reproduces the paper's setup,
//     where "database sites were implemented as Unix processes (on one
//     processor with one process per site)" and inter-site communication
//     reduced to interprocess communication with a measured cost of nine
//     milliseconds (§2.1). Setting Delay to 9 ms reproduces the paper's
//     absolute time scale; setting it to zero measures pure protocol cost.
//
//   - TCP: each site in its own OS process, real sockets, CRC-framed
//     messages, ordered per-connection delivery with reconnection. This is
//     the "complete RAID" deployment the paper defers to future work.
//
// Both satisfy the paper's reliability assumption (§1.2, assumption 1):
// no loss, per-link FIFO order, no undetected corruption.
package transport

import (
	"errors"

	"minraid/internal/core"
	"minraid/internal/msg"
)

// Errors common to all transports.
var (
	// ErrClosed is returned by operations on a closed network or endpoint.
	ErrClosed = errors.New("transport: closed")
	// ErrUnknownSite is returned when sending to a site the network does
	// not know.
	ErrUnknownSite = errors.New("transport: unknown site")
)

// Endpoint is one site's attachment to the network.
//
// Send enqueues an envelope for delivery and never blocks on the receiver;
// delivery order is FIFO per (sender, receiver) pair. Recv blocks until a
// message arrives, returning ok=false once the endpoint is closed and
// drained.
type Endpoint interface {
	// ID returns the site this endpoint belongs to.
	ID() core.SiteID
	// Send enqueues env for delivery to env.To.
	Send(env *msg.Envelope) error
	// Recv pops the next inbound message in delivery order.
	Recv() (env *msg.Envelope, ok bool)
	// Close detaches the endpoint; pending Recv calls drain then return
	// ok=false.
	Close() error
}

// Network connects a fixed set of sites.
type Network interface {
	// Endpoint returns the attachment for site id. Each site's endpoint
	// may be requested once; implementations return the same instance on
	// repeated calls.
	Endpoint(id core.SiteID) (Endpoint, error)
	// Close shuts the whole network down.
	Close() error
}
