package transport

import (
	"testing"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
)

func BenchmarkMemoryRoundTrip(b *testing.B) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	a, _ := net.Endpoint(0)
	dst, _ := net.Endpoint(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(&msg.Envelope{To: 1, Seq: uint64(i + 1), Body: &msg.Commit{Txn: 1}}); err != nil {
			b.Fatal(err)
		}
		if _, ok := dst.Recv(); !ok {
			b.Fatal("recv failed")
		}
	}
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	t0, err := NewTCP(TCPConfig{Self: 0, Addrs: map[core.SiteID]string{0: "127.0.0.1:0"}})
	if err != nil {
		b.Fatal(err)
	}
	defer t0.Close()
	t1, err := NewTCP(TCPConfig{Self: 1, Addrs: map[core.SiteID]string{1: "127.0.0.1:0"}})
	if err != nil {
		b.Fatal(err)
	}
	defer t1.Close()
	t0.SetAddr(1, t1.Addr())
	t1.SetAddr(0, t0.Addr())
	a, _ := t0.Endpoint(0)
	dst, _ := t1.Endpoint(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(&msg.Envelope{To: 1, Seq: uint64(i + 1), Body: &msg.Commit{Txn: 1}}); err != nil {
			b.Fatal(err)
		}
		if _, ok := dst.Recv(); !ok {
			b.Fatal("recv failed")
		}
	}
}

func BenchmarkCallerCall(b *testing.B) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	// Echo responder on site 1.
	ep1, _ := net.Endpoint(1)
	c1 := NewCaller(ep1, time.Second)
	go func() {
		for {
			env, ok := ep1.Recv()
			if !ok {
				return
			}
			if cm, isCommit := env.Body.(*msg.Commit); isCommit {
				c1.Reply(env, &msg.CommitAck{Txn: cm.Txn})
			}
		}
	}()
	ep0, _ := net.Endpoint(0)
	c0 := NewCaller(ep0, time.Second)
	go func() {
		for {
			env, ok := ep0.Recv()
			if !ok {
				return
			}
			c0.Deliver(env)
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c0.Call(1, &msg.Commit{Txn: core.TxnID(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
