package transport

import (
	"fmt"
	"testing"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
)

func BenchmarkMemoryRoundTrip(b *testing.B) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	a, _ := net.Endpoint(0)
	dst, _ := net.Endpoint(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(&msg.Envelope{To: 1, Seq: uint64(i + 1), Body: &msg.Commit{Txn: 1}}); err != nil {
			b.Fatal(err)
		}
		if _, ok := dst.Recv(); !ok {
			b.Fatal("recv failed")
		}
	}
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	t0, err := NewTCP(TCPConfig{Self: 0, Addrs: map[core.SiteID]string{0: "127.0.0.1:0"}})
	if err != nil {
		b.Fatal(err)
	}
	defer t0.Close()
	t1, err := NewTCP(TCPConfig{Self: 1, Addrs: map[core.SiteID]string{1: "127.0.0.1:0"}})
	if err != nil {
		b.Fatal(err)
	}
	defer t1.Close()
	t0.SetAddr(1, t1.Addr())
	t1.SetAddr(0, t0.Addr())
	a, _ := t0.Endpoint(0)
	dst, _ := t1.Endpoint(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(&msg.Envelope{To: 1, Seq: uint64(i + 1), Body: &msg.Commit{Txn: 1}}); err != nil {
			b.Fatal(err)
		}
		if _, ok := dst.Recv(); !ok {
			b.Fatal("recv failed")
		}
	}
}

// BenchmarkFanout measures a 5-target fan-out with k of the targets dead
// (endpoint exists, nobody answers). The serial CallT loop pays ~k ack
// timeouts; MulticastT pays ~1 regardless of k — the bound the replicated
// copy control paths (type-2 announce, clear-fail-locks, copier fetch)
// now inherit.
func BenchmarkFanout(b *testing.B) {
	const (
		targetsN = 5
		timeout  = 20 * time.Millisecond
	)
	setup := func(b *testing.B, dead int) (*Caller, []core.SiteID) {
		net := NewMemory(MemoryConfig{Sites: targetsN + 1})
		b.Cleanup(func() { net.Close() })
		targets := make([]core.SiteID, targetsN)
		for i := 1; i <= targetsN; i++ {
			targets[i-1] = core.SiteID(i)
			ep, _ := net.Endpoint(core.SiteID(i))
			if i > targetsN-dead {
				continue // dead: endpoint open, never answers
			}
			c := NewCaller(ep, timeout)
			go func() {
				for {
					env, ok := ep.Recv()
					if !ok {
						return
					}
					if cm, isCommit := env.Body.(*msg.Commit); isCommit {
						c.Reply(env, &msg.CommitAck{Txn: cm.Txn})
					}
				}
			}()
		}
		ep0, _ := net.Endpoint(0)
		c0 := NewCaller(ep0, timeout)
		go func() {
			for {
				env, ok := ep0.Recv()
				if !ok {
					return
				}
				c0.Deliver(env)
			}
		}()
		return c0, targets
	}
	for _, dead := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("serial/dead=%d", dead), func(b *testing.B) {
			c, targets := setup(b, dead)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, id := range targets {
					c.Call(id, &msg.Commit{Txn: core.TxnID(i)}) //nolint:errcheck // dead targets time out by design
				}
			}
		})
		b.Run(fmt.Sprintf("multicast/dead=%d", dead), func(b *testing.B) {
			c, targets := setup(b, dead)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.MulticastT(0, Outcalls(targets, func(core.SiteID) msg.Body {
					return &msg.Commit{Txn: core.TxnID(i)}
				}))
			}
		})
	}
}

func BenchmarkCallerCall(b *testing.B) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	// Echo responder on site 1.
	ep1, _ := net.Endpoint(1)
	c1 := NewCaller(ep1, time.Second)
	go func() {
		for {
			env, ok := ep1.Recv()
			if !ok {
				return
			}
			if cm, isCommit := env.Body.(*msg.Commit); isCommit {
				c1.Reply(env, &msg.CommitAck{Txn: cm.Txn})
			}
		}
	}()
	ep0, _ := net.Endpoint(0)
	c0 := NewCaller(ep0, time.Second)
	go func() {
		for {
			env, ok := ep0.Recv()
			if !ok {
				return
			}
			c0.Deliver(env)
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c0.Call(1, &msg.Commit{Txn: core.TxnID(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
