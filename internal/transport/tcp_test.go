package transport

import (
	"testing"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
)

// newTCPPair starts n TCP networks on loopback with ephemeral ports and
// returns them fully meshed.
func newTCPMesh(t *testing.T, n int) []*TCP {
	t.Helper()
	// First pass: bind every listener on an ephemeral port.
	nets := make([]*TCP, n)
	addrs := make(map[core.SiteID]string, n)
	for i := 0; i < n; i++ {
		id := core.SiteID(i)
		tn, err := NewTCP(TCPConfig{
			Self:          id,
			Addrs:         map[core.SiteID]string{id: "127.0.0.1:0"},
			RetryInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		nets[i] = tn
		addrs[id] = tn.Addr()
	}
	// Second pass: install the full address map.
	for i := 0; i < n; i++ {
		for id, a := range addrs {
			nets[i].cfg.Addrs[id] = a
		}
	}
	t.Cleanup(func() {
		for _, tn := range nets {
			tn.Close()
		}
	})
	return nets
}

func TestTCPSendRecv(t *testing.T) {
	nets := newTCPMesh(t, 2)
	a, _ := nets[0].Endpoint(0)
	b, _ := nets[1].Endpoint(1)
	if err := a.Send(commitEnv(1, 42, 1)); err != nil {
		t.Fatal(err)
	}
	env, ok := b.Recv()
	if !ok {
		t.Fatal("recv failed")
	}
	if env.From != 0 || env.Body.(*msg.Commit).Txn != 42 {
		t.Errorf("got %v", env)
	}
}

func TestTCPOrderingUnderLoad(t *testing.T) {
	nets := newTCPMesh(t, 2)
	a, _ := nets[0].Endpoint(0)
	b, _ := nets[1].Endpoint(1)
	const n = 300
	for i := 0; i < n; i++ {
		if err := a.Send(commitEnv(1, core.TxnID(i), uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		env, ok := b.Recv()
		if !ok {
			t.Fatal("recv failed")
		}
		if got := env.Body.(*msg.Commit).Txn; got != core.TxnID(i) {
			t.Fatalf("message %d arrived as %d", i, got)
		}
	}
}

func TestTCPBidirectional(t *testing.T) {
	nets := newTCPMesh(t, 3)
	eps := make([]Endpoint, 3)
	for i := range nets {
		eps[i], _ = nets[i].Endpoint(core.SiteID(i))
	}
	// Every site sends to every other site.
	for from := 0; from < 3; from++ {
		seq := uint64(1)
		for to := 0; to < 3; to++ {
			if to == from {
				continue
			}
			if err := eps[from].Send(commitEnv(core.SiteID(to), core.TxnID(from*10+to), seq)); err != nil {
				t.Fatal(err)
			}
			seq++
		}
	}
	for to := 0; to < 3; to++ {
		seen := map[core.TxnID]bool{}
		for i := 0; i < 2; i++ {
			env, ok := eps[to].Recv()
			if !ok {
				t.Fatal("recv failed")
			}
			seen[env.Body.(*msg.Commit).Txn] = true
		}
		for from := 0; from < 3; from++ {
			if from == to {
				continue
			}
			if !seen[core.TxnID(from*10+to)] {
				t.Errorf("site %d missing message from %d", to, from)
			}
		}
	}
}

func TestTCPLoopback(t *testing.T) {
	nets := newTCPMesh(t, 1)
	a, _ := nets[0].Endpoint(0)
	if err := a.Send(commitEnv(0, 5, 1)); err != nil {
		t.Fatal(err)
	}
	env, ok := a.Recv()
	if !ok || env.Body.(*msg.Commit).Txn != 5 {
		t.Errorf("loopback failed: %v %v", env, ok)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	nets := newTCPMesh(t, 1)
	a, _ := nets[0].Endpoint(0)
	if err := a.Send(commitEnv(7, 1, 1)); err == nil {
		t.Error("send to unknown peer accepted")
	}
	if _, err := nets[0].Endpoint(3); err == nil {
		t.Error("non-local endpoint granted")
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	nets := newTCPMesh(t, 1)
	a, _ := nets[0].Endpoint(0)
	done := make(chan bool, 1)
	go func() {
		_, ok := a.Recv()
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	nets[0].Close()
	select {
	case ok := <-done:
		if ok {
			t.Error("Recv ok after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv never unblocked")
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("restart test sleeps through retry intervals")
	}
	nets := newTCPMesh(t, 2)
	a, _ := nets[0].Endpoint(0)
	addr1 := nets[1].Addr()

	// Establish the connection.
	b, _ := nets[1].Endpoint(1)
	a.Send(commitEnv(1, 1, 1))
	if _, ok := b.Recv(); !ok {
		t.Fatal("initial delivery failed")
	}

	// Restart peer 1 on the same address.
	nets[1].Close()
	time.Sleep(50 * time.Millisecond)
	re, err := NewTCP(TCPConfig{
		Self:          1,
		Addrs:         map[core.SiteID]string{0: nets[0].Addr(), 1: addr1},
		RetryInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr1, err)
	}
	defer re.Close()
	b2, _ := re.Endpoint(1)

	// The writer must notice the dead conn and redial.
	if err := a.Send(commitEnv(1, 2, 2)); err != nil {
		t.Fatal(err)
	}
	got := make(chan core.TxnID, 1)
	go func() {
		if env, ok := b2.Recv(); ok {
			got <- env.Body.(*msg.Commit).Txn
		}
	}()
	select {
	case txn := <-got:
		if txn != 2 {
			t.Errorf("got txn %d after reconnect", txn)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never delivered after peer restart")
	}
}

func TestTCPRetryConfigSemantics(t *testing.T) {
	cases := []struct {
		name string
		cfg  TCPConfig
		want int
	}{
		{"zero means default", TCPConfig{}, 10},
		{"negative means default", TCPConfig{MaxRetries: -5}, 10},
		{"explicit value kept", TCPConfig{MaxRetries: 3}, 3},
		{"disable overrides default", TCPConfig{DisableRetry: true}, 1},
		{"disable overrides explicit", TCPConfig{MaxRetries: 7, DisableRetry: true}, 1},
	}
	for _, tc := range cases {
		tc.cfg.fillDefaults()
		if tc.cfg.MaxRetries != tc.want {
			t.Errorf("%s: MaxRetries = %d, want %d", tc.name, tc.cfg.MaxRetries, tc.want)
		}
	}
}

// TestTCPNegativeMaxRetriesStillDelivers is the regression test for the
// old behaviour where a negative MaxRetries made the writer drop every
// message without a single attempt.
func TestTCPNegativeMaxRetriesStillDelivers(t *testing.T) {
	nets := make([]*TCP, 2)
	addrs := map[core.SiteID]string{}
	for i := 0; i < 2; i++ {
		id := core.SiteID(i)
		tn, err := NewTCP(TCPConfig{
			Self:          id,
			Addrs:         map[core.SiteID]string{id: "127.0.0.1:0"},
			RetryInterval: 20 * time.Millisecond,
			MaxRetries:    -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer tn.Close()
		nets[i] = tn
		addrs[id] = tn.Addr()
	}
	for i := 0; i < 2; i++ {
		for id, a := range addrs {
			nets[i].SetAddr(id, a)
		}
	}
	a, _ := nets[0].Endpoint(0)
	b, _ := nets[1].Endpoint(1)
	if err := a.Send(commitEnv(1, 77, 1)); err != nil {
		t.Fatal(err)
	}
	done := make(chan *msg.Envelope, 1)
	go func() {
		if env, ok := b.Recv(); ok {
			done <- env
		}
	}()
	select {
	case env := <-done:
		if env.Body.(*msg.Commit).Txn != 77 {
			t.Errorf("got %v", env)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message with MaxRetries=-1 never delivered")
	}
}

// TestTCPDisableRetryDelivers checks single-attempt mode still delivers
// when the peer is reachable, and drops (rather than blocks) when it is
// not.
func TestTCPDisableRetryDelivers(t *testing.T) {
	id0, id1 := core.SiteID(0), core.SiteID(1)
	tn1, err := NewTCP(TCPConfig{Self: id1, Addrs: map[core.SiteID]string{id1: "127.0.0.1:0"}})
	if err != nil {
		t.Fatal(err)
	}
	defer tn1.Close()
	tn0, err := NewTCP(TCPConfig{
		Self: id0,
		Addrs: map[core.SiteID]string{
			id0: "127.0.0.1:0",
			id1: tn1.Addr(),
			2:   "127.0.0.1:1", // port 1: nothing listens there
		},
		DialTimeout:   200 * time.Millisecond,
		RetryInterval: 10 * time.Millisecond,
		DisableRetry:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tn0.Close()
	tn1.SetAddr(id0, tn0.Addr())

	a, _ := tn0.Endpoint(id0)
	b, _ := tn1.Endpoint(id1)

	// An unreachable peer: the single attempt fails and the writer moves
	// on without stalling the queue for later messages to other peers.
	if err := a.Send(commitEnv(2, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(commitEnv(1, 99, 2)); err != nil {
		t.Fatal(err)
	}
	done := make(chan core.TxnID, 1)
	go func() {
		if env, ok := b.Recv(); ok {
			done <- env.Body.(*msg.Commit).Txn
		}
	}()
	select {
	case txn := <-done:
		if txn != 99 {
			t.Errorf("got txn %d", txn)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reachable peer not reached in single-attempt mode")
	}
}

func TestTCPListenFailure(t *testing.T) {
	if _, err := NewTCP(TCPConfig{Self: 0, Addrs: map[core.SiteID]string{0: "256.0.0.1:bad"}}); err == nil {
		t.Error("bad listen address accepted")
	}
	if _, err := NewTCP(TCPConfig{Self: 0, Addrs: map[core.SiteID]string{}}); err == nil {
		t.Error("missing local address accepted")
	}
}

func TestTCPManyFrames(t *testing.T) {
	nets := newTCPMesh(t, 2)
	a, _ := nets[0].Endpoint(0)
	b, _ := nets[1].Endpoint(1)
	// Large payloads exercise framing across buffer boundaries.
	big := make([]byte, 70000)
	for i := range big {
		big[i] = byte(i)
	}
	for i := 0; i < 10; i++ {
		env := &msg.Envelope{To: 1, Seq: uint64(i + 1), Body: &msg.CtrlReplicate{
			Items: []core.ItemVersion{{Item: core.ItemID(i), Version: 1, Value: big}},
		}}
		if err := a.Send(env); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		env, ok := b.Recv()
		if !ok {
			t.Fatal("recv failed")
		}
		items := env.Body.(*msg.CtrlReplicate).Items
		if len(items) != 1 || len(items[0].Value) != len(big) {
			t.Fatalf("frame %d mangled", i)
		}
		for j, v := range items[0].Value {
			if v != byte(j) {
				t.Fatalf("frame %d byte %d = %d", i, j, v)
			}
		}
	}
}
