package transport

import (
	"reflect"
	"testing"
	"time"

	"minraid/internal/core"
)

// TestChaosBaseDelayFloor: a per-link BaseDelay is a deterministic
// propagation floor — every delivery waits at least BaseDelay, the floor
// never enters JitterTotal, and queued messages pipeline (k messages
// cost ~1 BaseDelay, not k).
func TestChaosBaseDelayFloor(t *testing.T) {
	const (
		k    = 8
		base = 40 * time.Millisecond
	)
	inner := NewMemory(MemoryConfig{Sites: 2})
	ch := NewChaos(inner, ChaosConfig{
		Seed: 1,
		Links: map[LinkID]LinkChaos{
			{From: 0, To: 1}: {BaseDelay: base},
		},
	})
	defer ch.Close()
	a, _ := ch.Endpoint(0)
	b, _ := ch.Endpoint(1)

	start := time.Now()
	for i := 1; i <= k; i++ {
		if err := a.Send(commitEnv(1, core.TxnID(i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= k; i++ {
		if env, ok := b.Recv(); !ok || env.Seq != uint64(i) {
			t.Fatalf("recv %d: %v %v", i, env, ok)
		}
	}
	elapsed := time.Since(start)
	if elapsed < base {
		t.Fatalf("messages arrived after %v, under the %v base delay", elapsed, base)
	}
	if limit := 2 * base; elapsed > limit {
		t.Fatalf("draining %d messages took %v, want < %v (pipelined), serial would be %v",
			k, elapsed, limit, k*base)
	}
	st := ch.Stats()[LinkID{From: 0, To: 1}]
	if st.Sent != k || st.Dropped != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.JitterTotal != 0 {
		t.Fatalf("base delay leaked into JitterTotal: %v", st.JitterTotal)
	}
}

// TestChaosPerMsgCostSerializes: PerMsgCost models wire occupancy — k
// messages on one link take at least k*cost, the opposite of the
// pipelined BaseDelay.
func TestChaosPerMsgCostSerializes(t *testing.T) {
	const (
		k    = 10
		cost = 5 * time.Millisecond
	)
	inner := NewMemory(MemoryConfig{Sites: 2})
	ch := NewChaos(inner, ChaosConfig{
		Seed: 1,
		Links: map[LinkID]LinkChaos{
			{From: 0, To: 1}: {PerMsgCost: cost},
		},
	})
	defer ch.Close()
	a, _ := ch.Endpoint(0)
	b, _ := ch.Endpoint(1)

	start := time.Now()
	for i := 1; i <= k; i++ {
		if err := a.Send(commitEnv(1, core.TxnID(i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= k; i++ {
		if env, ok := b.Recv(); !ok || env.Seq != uint64(i) {
			t.Fatalf("recv %d: %v %v", i, env, ok)
		}
	}
	if elapsed := time.Since(start); elapsed < k*cost {
		t.Fatalf("draining %d messages took %v, want >= %v (serialized wire)", k, elapsed, k*cost)
	}
}

// TestChaosLinkOverridesAreScoped: a per-link override applies to that
// directed link only; every other link keeps the global config.
func TestChaosLinkOverridesAreScoped(t *testing.T) {
	inner := NewMemory(MemoryConfig{Sites: 2})
	ch := NewChaos(inner, ChaosConfig{
		Seed: 3,
		Links: map[LinkID]LinkChaos{
			{From: 0, To: 1}: {Drop: 1},
		},
	})
	defer ch.Close()
	a, _ := ch.Endpoint(0)
	b, _ := ch.Endpoint(1)

	const n = 10
	for i := 1; i <= n; i++ {
		if err := a.Send(commitEnv(1, core.TxnID(i), uint64(i))); err != nil {
			t.Fatal(err)
		}
		if err := b.Send(commitEnv(0, core.TxnID(i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// The overridden direction drops everything; the reverse direction has
	// no active config at all and passes straight through.
	for i := 1; i <= n; i++ {
		if env, ok := a.Recv(); !ok || env.Seq != uint64(i) {
			t.Fatalf("reverse recv %d: %v %v", i, env, ok)
		}
	}
	if err := ch.Close(); err != nil {
		t.Fatal(err)
	}
	st := ch.Stats()
	if got := st[LinkID{From: 0, To: 1}]; got.Sent != n || got.Dropped != n {
		t.Fatalf("overridden link stats: %+v", got)
	}
	if _, ok := st[LinkID{From: 1, To: 0}]; ok {
		t.Fatalf("inactive reverse link entered a fault pipeline: %+v", st)
	}
}

// TestChaosBaseDelayDeterministicFingerprint: adding a base-delay floor
// changes wall-clock timing but not the decision streams — two runs with
// the same seed still produce identical counters, including JitterTotal.
func TestChaosBaseDelayDeterministicFingerprint(t *testing.T) {
	cfg := ChaosConfig{
		Seed: 7, Drop: 0.2, Dup: 0.2, MaxJitter: time.Millisecond,
		Links: map[LinkID]LinkChaos{
			{From: 0, To: 1}: {Drop: 0.2, Dup: 0.2, MaxJitter: time.Millisecond, BaseDelay: 2 * time.Millisecond},
		},
	}
	a := chaosRun(t, cfg, 200)
	b := chaosRun(t, cfg, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged with a base-delay link:\n%v\n%v", a, b)
	}
	if a[LinkID{From: 0, To: 1}].JitterTotal == 0 {
		t.Fatal("jitter never fired on the overridden link")
	}
}
