package transport

import (
	"sync"
	"testing"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
)

func commitEnv(to core.SiteID, txn core.TxnID, seq uint64) *msg.Envelope {
	return &msg.Envelope{To: to, Seq: seq, Body: &msg.Commit{Txn: txn}}
}

func TestQueueFIFO(t *testing.T) {
	q := newQueue[int]()
	for i := 0; i < 100; i++ {
		if !q.push(i) {
			t.Fatal("push failed on open queue")
		}
	}
	if q.len() != 100 {
		t.Fatalf("len = %d", q.len())
	}
	for i := 0; i < 100; i++ {
		v, ok := q.pop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d,%v", i, v, ok)
		}
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := newQueue[int]()
	q.push(1)
	q.push(2)
	q.close()
	if q.push(3) {
		t.Error("push on closed queue succeeded")
	}
	if v, ok := q.pop(); !ok || v != 1 {
		t.Errorf("pop = %d,%v", v, ok)
	}
	if v, ok := q.pop(); !ok || v != 2 {
		t.Errorf("pop = %d,%v", v, ok)
	}
	if _, ok := q.pop(); ok {
		t.Error("pop after drain returned ok")
	}
}

func TestQueueBlockingPop(t *testing.T) {
	q := newQueue[int]()
	done := make(chan int, 1)
	go func() {
		v, _ := q.pop()
		done <- v
	}()
	time.Sleep(10 * time.Millisecond)
	q.push(7)
	select {
	case v := <-done:
		if v != 7 {
			t.Errorf("popped %d", v)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked pop never woke")
	}
}

func TestMemorySendRecv(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	a, err := net.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(commitEnv(1, 9, 1)); err != nil {
		t.Fatal(err)
	}
	env, ok := b.Recv()
	if !ok {
		t.Fatal("recv failed")
	}
	if env.From != 0 || env.To != 1 || env.Body.(*msg.Commit).Txn != 9 {
		t.Errorf("got %v", env)
	}
	if net.MessagesSent() != 1 {
		t.Errorf("MessagesSent = %d", net.MessagesSent())
	}
}

func TestMemoryPerLinkFIFO(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	a, _ := net.Endpoint(0)
	b, _ := net.Endpoint(1)
	const n = 500
	for i := 0; i < n; i++ {
		if err := a.Send(commitEnv(1, core.TxnID(i), uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		env, ok := b.Recv()
		if !ok {
			t.Fatal("recv failed")
		}
		if got := env.Body.(*msg.Commit).Txn; got != core.TxnID(i) {
			t.Fatalf("message %d arrived as txn %d: order violated", i, got)
		}
	}
}

func TestMemoryIsolation(t *testing.T) {
	// Messages are serialized; mutating the sent body must not affect the
	// received copy.
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	a, _ := net.Endpoint(0)
	b, _ := net.Endpoint(1)
	body := &msg.ClientTxn{Txn: 1, Ops: []core.Op{core.Write(0, []byte{1})}}
	if err := a.Send(&msg.Envelope{To: 1, Seq: 1, Body: body}); err != nil {
		t.Fatal(err)
	}
	body.Ops[0].Value[0] = 99
	env, _ := b.Recv()
	if got := env.Body.(*msg.ClientTxn).Ops[0].Value[0]; got != 1 {
		t.Errorf("receiver saw mutated value %d", got)
	}
}

func TestMemoryManagingSiteEndpoint(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 1})
	defer net.Close()
	mgr, err := net.Endpoint(core.ManagingSite)
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := net.Endpoint(0)
	if err := mgr.Send(&msg.Envelope{To: 0, Seq: 1, Body: &msg.FailSim{}}); err != nil {
		t.Fatal(err)
	}
	env, _ := s0.Recv()
	if env.From != core.ManagingSite {
		t.Errorf("From = %v", env.From)
	}
	if err := s0.Send(&msg.Envelope{To: core.ManagingSite, Seq: 1, Body: &msg.CtrlFailAck{}}); err != nil {
		t.Fatal(err)
	}
	if env, ok := mgr.Recv(); !ok || env.From != 0 {
		t.Errorf("managing recv = %v %v", env, ok)
	}
}

func TestMemoryUnknownSite(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	if _, err := net.Endpoint(5); err == nil {
		t.Error("endpoint for unknown site granted")
	}
	a, _ := net.Endpoint(0)
	if err := a.Send(commitEnv(9, 1, 1)); err == nil {
		t.Error("send to unknown site accepted")
	}
}

func TestMemoryEndpointIdempotent(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 1})
	defer net.Close()
	a1, _ := net.Endpoint(0)
	a2, _ := net.Endpoint(0)
	if a1 != a2 {
		t.Error("Endpoint returned distinct instances")
	}
}

func TestMemoryCloseUnblocksRecv(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 1})
	a, _ := net.Endpoint(0)
	done := make(chan bool, 1)
	go func() {
		_, ok := a.Recv()
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	net.Close()
	select {
	case ok := <-done:
		if ok {
			t.Error("Recv returned ok after close")
		}
	case <-time.After(time.Second):
		t.Fatal("Recv never unblocked")
	}
	if err := a.Send(commitEnv(0, 1, 1)); err != ErrClosed {
		t.Errorf("send after close: %v", err)
	}
	if _, err := net.Endpoint(0); err != ErrClosed {
		t.Errorf("endpoint after close: %v", err)
	}
	if err := net.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestMemoryDelay(t *testing.T) {
	const d = 20 * time.Millisecond
	net := NewMemory(MemoryConfig{Sites: 2, Delay: d})
	defer net.Close()
	a, _ := net.Endpoint(0)
	b, _ := net.Endpoint(1)
	start := time.Now()
	a.Send(commitEnv(1, 1, 1))
	if _, ok := b.Recv(); !ok {
		t.Fatal("recv failed")
	}
	if got := time.Since(start); got < d {
		t.Errorf("delivery took %v, want >= %v", got, d)
	}
}

func TestMemoryLinkDown(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	a, _ := net.Endpoint(0)
	b, _ := net.Endpoint(1)
	net.SetLinkDown(0, 1, true)
	if err := a.Send(commitEnv(1, 1, 1)); err != nil {
		t.Fatalf("send on down link errored: %v", err)
	}
	// Reverse direction still works.
	if err := b.Send(commitEnv(0, 2, 1)); err != nil {
		t.Fatal(err)
	}
	env, _ := a.Recv()
	if env.Body.(*msg.Commit).Txn != 2 {
		t.Error("reverse link broken")
	}
	net.SetLinkDown(0, 1, false)
	a.Send(commitEnv(1, 3, 2))
	env, _ = b.Recv()
	if env.Body.(*msg.Commit).Txn != 3 {
		t.Errorf("restored link delivered txn %d (the dropped message leaked?)", env.Body.(*msg.Commit).Txn)
	}
}

func TestMemoryConcurrentSenders(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 4})
	defer net.Close()
	dst, _ := net.Endpoint(3)
	const perSender = 200
	var wg sync.WaitGroup
	for s := 0; s < 3; s++ {
		ep, _ := net.Endpoint(core.SiteID(s))
		wg.Add(1)
		go func(ep Endpoint) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				ep.Send(commitEnv(3, core.TxnID(i), uint64(i+1)))
			}
		}(ep)
	}
	wg.Wait()
	// All messages arrive; per-sender order is preserved.
	next := map[core.SiteID]core.TxnID{}
	for i := 0; i < 3*perSender; i++ {
		env, ok := dst.Recv()
		if !ok {
			t.Fatal("recv failed")
		}
		want := next[env.From]
		if got := env.Body.(*msg.Commit).Txn; got != want {
			t.Fatalf("sender %v: got txn %d, want %d", env.From, got, want)
		}
		next[env.From]++
	}
}

func TestMemoryBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-site config accepted")
		}
	}()
	NewMemory(MemoryConfig{Sites: 0})
}
