package transport

import (
	"errors"
	"testing"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
)

// echoSite runs a trivial responder: every Commit request is answered with
// a CommitAck; StatusReq is ignored (to exercise timeouts).
func echoSite(t *testing.T, net *Memory, id core.SiteID) {
	t.Helper()
	ep, err := net.Endpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	caller := NewCaller(ep, time.Second)
	go func() {
		for {
			env, ok := ep.Recv()
			if !ok {
				return
			}
			if c, isCommit := env.Body.(*msg.Commit); isCommit {
				caller.Reply(env, &msg.CommitAck{Txn: c.Txn})
			}
		}
	}()
}

func TestCallerCall(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	echoSite(t, net, 1)
	ep, _ := net.Endpoint(0)
	c := NewCaller(ep, time.Second)
	go func() {
		for {
			env, ok := ep.Recv()
			if !ok {
				return
			}
			c.Deliver(env)
		}
	}()
	reply, err := c.Call(1, &msg.Commit{Txn: 5})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Body.(*msg.CommitAck).Txn != 5 {
		t.Errorf("reply = %v", reply)
	}
	if c.Sent() != 1 {
		t.Errorf("Sent = %d", c.Sent())
	}
}

func TestCallerTimeout(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	// Site 1 exists but never answers StatusReq.
	echoSite(t, net, 1)
	ep, _ := net.Endpoint(0)
	c := NewCaller(ep, 30*time.Millisecond)
	go func() {
		for {
			env, ok := ep.Recv()
			if !ok {
				return
			}
			c.Deliver(env)
		}
	}()
	start := time.Now()
	_, err := c.Call(1, &msg.StatusReq{})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Error("timeout took far too long")
	}
}

func TestCallerMulticall(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 4})
	defer net.Close()
	echoSite(t, net, 1)
	echoSite(t, net, 2)
	// Site 3 has an endpoint but no responder: it will time out.
	if _, err := net.Endpoint(3); err != nil {
		t.Fatal(err)
	}
	ep, _ := net.Endpoint(0)
	c := NewCaller(ep, 50*time.Millisecond)
	go func() {
		for {
			env, ok := ep.Recv()
			if !ok {
				return
			}
			c.Deliver(env)
		}
	}()
	replies := c.Multicall([]core.SiteID{1, 2, 3}, func(core.SiteID) msg.Body {
		return &msg.Commit{Txn: 9}
	})
	if len(replies) != 2 || replies[1] == nil || replies[2] == nil {
		t.Errorf("replies = %v", replies)
	}
	if _, ok := replies[3]; ok {
		t.Error("dead site produced a reply")
	}
}

func TestCallerCancelAll(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	if _, err := net.Endpoint(1); err != nil { // silent peer
		t.Fatal(err)
	}
	ep, _ := net.Endpoint(0)
	c := NewCaller(ep, 5*time.Second)
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Call(1, &msg.StatusReq{})
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.CancelAll()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrCancelled) {
			t.Errorf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancel did not unblock call")
	}
}

// callerAt builds a caller on the given endpoint with its receive loop
// routing replies into the pending table.
func callerAt(t *testing.T, net *Memory, id core.SiteID, timeout time.Duration) *Caller {
	t.Helper()
	ep, err := net.Endpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCaller(ep, timeout)
	go func() {
		for {
			env, ok := ep.Recv()
			if !ok {
				return
			}
			c.Deliver(env)
		}
	}()
	return c
}

func TestMulticastSendFailureFailsFast(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	echoSite(t, net, 1)
	c := callerAt(t, net, 0, 2*time.Second)
	// Site 7 does not exist: its Send fails. The slot must fail with the
	// send error immediately instead of burning the shared deadline.
	start := time.Now()
	res := c.MulticastT(0, []Outcall{
		{To: 7, Body: &msg.Commit{Txn: 1}},
		{To: 1, Body: &msg.Commit{Txn: 2}},
	})
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("send-failure slot burned the timeout: %v", elapsed)
	}
	if res[0].Err == nil || errors.Is(res[0].Err, ErrTimeout) || errors.Is(res[0].Err, ErrCancelled) {
		t.Errorf("slot 0 err = %v, want a send error", res[0].Err)
	}
	if res[1].Err != nil || res[1].Reply.Body.(*msg.CommitAck).Txn != 2 {
		t.Errorf("slot 1 = %+v, want reply", res[1])
	}
}

func TestMulticallSendFailureDoesNotBurnTimeout(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	echoSite(t, net, 1)
	c := callerAt(t, net, 0, 2*time.Second)
	start := time.Now()
	replies := c.Multicall([]core.SiteID{7, 1}, func(core.SiteID) msg.Body {
		return &msg.Commit{Txn: 3}
	})
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("multicall burned the timeout on a failed send: %v", elapsed)
	}
	if len(replies) != 1 || replies[1] == nil {
		t.Errorf("replies = %v", replies)
	}
}

func TestMulticastDistinguishesTimeoutFromCancel(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 3})
	defer net.Close()
	echoSite(t, net, 1)
	if _, err := net.Endpoint(2); err != nil { // silent peer
		t.Fatal(err)
	}
	c := callerAt(t, net, 0, 50*time.Millisecond)
	res := c.MulticastT(0, []Outcall{
		{To: 1, Body: &msg.Commit{Txn: 4}},
		{To: 2, Body: &msg.Commit{Txn: 5}},
	})
	if res[0].Err != nil {
		t.Errorf("live slot err = %v", res[0].Err)
	}
	if res[0].RTT <= 0 || res[0].RTT > time.Second {
		t.Errorf("live slot RTT = %v", res[0].RTT)
	}
	if !errors.Is(res[1].Err, ErrTimeout) {
		t.Errorf("silent slot err = %v, want ErrTimeout", res[1].Err)
	}

	// Cancellation mid-flight must surface as ErrCancelled, not ErrTimeout.
	c2 := callerAt(t, net, 1, 5*time.Second)
	done := make(chan []CallResult, 1)
	go func() {
		done <- c2.MulticastT(0, []Outcall{{To: 2, Body: &msg.Commit{Txn: 6}}})
	}()
	time.Sleep(20 * time.Millisecond)
	c2.CancelAll()
	select {
	case res := <-done:
		if !errors.Is(res[0].Err, ErrCancelled) {
			t.Errorf("cancelled slot err = %v, want ErrCancelled", res[0].Err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancel did not unblock multicast")
	}
}

func TestMulticastSharedDeadlineCollectsBufferedReplies(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 3})
	defer net.Close()
	echoSite(t, net, 1)
	if _, err := net.Endpoint(2); err != nil { // silent peer
		t.Fatal(err)
	}
	const timeout = 150 * time.Millisecond
	c := callerAt(t, net, 0, timeout)
	// The dead slot is drained first: it expires the shared timer, and the
	// live reply — long since buffered — must still be collected, with the
	// whole fan-out bounded by ~one timeout, not one per slot.
	start := time.Now()
	res := c.MulticastT(0, []Outcall{
		{To: 2, Body: &msg.Commit{Txn: 7}},
		{To: 1, Body: &msg.Commit{Txn: 8}},
	})
	elapsed := time.Since(start)
	if !errors.Is(res[0].Err, ErrTimeout) {
		t.Errorf("dead slot err = %v", res[0].Err)
	}
	if res[1].Err != nil || res[1].Reply.Body.(*msg.CommitAck).Txn != 8 {
		t.Errorf("buffered reply lost: %+v", res[1])
	}
	if elapsed >= 2*timeout {
		t.Errorf("fan-out took %v, want < 2x the %v shared deadline", elapsed, timeout)
	}
}

func TestMulticastDuplicateTargets(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	echoSite(t, net, 1)
	c := callerAt(t, net, 0, time.Second)
	res := c.MulticastT(0, []Outcall{
		{To: 1, Body: &msg.Commit{Txn: 10}},
		{To: 1, Body: &msg.Commit{Txn: 11}},
	})
	for i, want := range []core.TxnID{10, 11} {
		if res[i].Err != nil {
			t.Fatalf("slot %d err = %v", i, res[i].Err)
		}
		if got := res[i].Reply.Body.(*msg.CommitAck).Txn; got != want {
			t.Errorf("slot %d correlated to txn %d, want %d", i, got, want)
		}
	}
}

func TestCallerLateReplyDropped(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	ep, _ := net.Endpoint(0)
	c := NewCaller(ep, time.Second)
	// A reply correlated to nothing must not be consumed.
	late := &msg.Envelope{From: 1, To: 0, Seq: 99, ReplyTo: 12345, Body: &msg.CommitAck{Txn: 1}}
	if c.Deliver(late) {
		t.Error("uncorrelated reply consumed")
	}
	// A request (ReplyTo 0) is never consumed by the caller.
	req := &msg.Envelope{From: 1, To: 0, Seq: 100, Body: &msg.Commit{Txn: 1}}
	if c.Deliver(req) {
		t.Error("request consumed as reply")
	}
}

func TestCallerReply(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	a, _ := net.Endpoint(0)
	b, _ := net.Endpoint(1)
	ca := NewCaller(a, time.Second)
	req := &msg.Envelope{From: 1, To: 0, Seq: 77, Body: &msg.Commit{Txn: 2}}
	if err := ca.Reply(req, &msg.CommitAck{Txn: 2}); err != nil {
		t.Fatal(err)
	}
	env, ok := b.Recv()
	if !ok || env.ReplyTo != 77 || env.To != 1 {
		t.Errorf("reply env = %v", env)
	}
}
