package transport

import (
	"errors"
	"testing"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
)

// echoSite runs a trivial responder: every Commit request is answered with
// a CommitAck; StatusReq is ignored (to exercise timeouts).
func echoSite(t *testing.T, net *Memory, id core.SiteID) {
	t.Helper()
	ep, err := net.Endpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	caller := NewCaller(ep, time.Second)
	go func() {
		for {
			env, ok := ep.Recv()
			if !ok {
				return
			}
			if c, isCommit := env.Body.(*msg.Commit); isCommit {
				caller.Reply(env, &msg.CommitAck{Txn: c.Txn})
			}
		}
	}()
}

func TestCallerCall(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	echoSite(t, net, 1)
	ep, _ := net.Endpoint(0)
	c := NewCaller(ep, time.Second)
	go func() {
		for {
			env, ok := ep.Recv()
			if !ok {
				return
			}
			c.Deliver(env)
		}
	}()
	reply, err := c.Call(1, &msg.Commit{Txn: 5})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Body.(*msg.CommitAck).Txn != 5 {
		t.Errorf("reply = %v", reply)
	}
	if c.Sent() != 1 {
		t.Errorf("Sent = %d", c.Sent())
	}
}

func TestCallerTimeout(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	// Site 1 exists but never answers StatusReq.
	echoSite(t, net, 1)
	ep, _ := net.Endpoint(0)
	c := NewCaller(ep, 30*time.Millisecond)
	go func() {
		for {
			env, ok := ep.Recv()
			if !ok {
				return
			}
			c.Deliver(env)
		}
	}()
	start := time.Now()
	_, err := c.Call(1, &msg.StatusReq{})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Error("timeout took far too long")
	}
}

func TestCallerMulticall(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 4})
	defer net.Close()
	echoSite(t, net, 1)
	echoSite(t, net, 2)
	// Site 3 has an endpoint but no responder: it will time out.
	if _, err := net.Endpoint(3); err != nil {
		t.Fatal(err)
	}
	ep, _ := net.Endpoint(0)
	c := NewCaller(ep, 50*time.Millisecond)
	go func() {
		for {
			env, ok := ep.Recv()
			if !ok {
				return
			}
			c.Deliver(env)
		}
	}()
	replies := c.Multicall([]core.SiteID{1, 2, 3}, func(core.SiteID) msg.Body {
		return &msg.Commit{Txn: 9}
	})
	if len(replies) != 2 || replies[1] == nil || replies[2] == nil {
		t.Errorf("replies = %v", replies)
	}
	if _, ok := replies[3]; ok {
		t.Error("dead site produced a reply")
	}
}

func TestCallerCancelAll(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	if _, err := net.Endpoint(1); err != nil { // silent peer
		t.Fatal(err)
	}
	ep, _ := net.Endpoint(0)
	c := NewCaller(ep, 5*time.Second)
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Call(1, &msg.StatusReq{})
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.CancelAll()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrCancelled) {
			t.Errorf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancel did not unblock call")
	}
}

func TestCallerLateReplyDropped(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	ep, _ := net.Endpoint(0)
	c := NewCaller(ep, time.Second)
	// A reply correlated to nothing must not be consumed.
	late := &msg.Envelope{From: 1, To: 0, Seq: 99, ReplyTo: 12345, Body: &msg.CommitAck{Txn: 1}}
	if c.Deliver(late) {
		t.Error("uncorrelated reply consumed")
	}
	// A request (ReplyTo 0) is never consumed by the caller.
	req := &msg.Envelope{From: 1, To: 0, Seq: 100, Body: &msg.Commit{Txn: 1}}
	if c.Deliver(req) {
		t.Error("request consumed as reply")
	}
}

func TestCallerReply(t *testing.T) {
	net := NewMemory(MemoryConfig{Sites: 2})
	defer net.Close()
	a, _ := net.Endpoint(0)
	b, _ := net.Endpoint(1)
	ca := NewCaller(a, time.Second)
	req := &msg.Envelope{From: 1, To: 0, Seq: 77, Body: &msg.Commit{Txn: 2}}
	if err := ca.Reply(req, &msg.CommitAck{Txn: 2}); err != nil {
		t.Fatal(err)
	}
	env, ok := b.Recv()
	if !ok || env.ReplyTo != 77 || env.To != 1 {
		t.Errorf("reply env = %v", env)
	}
}
