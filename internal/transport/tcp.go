package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
	"minraid/internal/trace"
	"minraid/internal/wire"
)

// frameEnvelope is the frame kind byte used for protocol envelopes.
const frameEnvelope byte = 0

// TCPConfig configures one site's attachment to a TCP network, for the
// multi-process deployment (cmd/raidsrv): one OS process per site, as in
// the original RAID system before it was stripped down.
type TCPConfig struct {
	// Self is the local site.
	Self core.SiteID
	// Addrs maps every site (including the managing site) to its TCP
	// address. The local entry is the listen address.
	Addrs map[core.SiteID]string
	// DialTimeout bounds one connection attempt. Default 2s.
	DialTimeout time.Duration
	// RetryInterval is the pause between reconnection attempts. Default
	// 200ms.
	RetryInterval time.Duration
	// MaxRetries bounds delivery attempts per message before it is
	// dropped (the destination is down; the protocol's timeouts handle
	// the rest). Values <= 0 select the default of 10; to disable
	// retries set DisableRetry.
	MaxRetries int
	// DisableRetry makes every message get exactly one delivery attempt,
	// overriding MaxRetries. (MaxRetries cannot express this: its zero
	// value means "default".)
	DisableRetry bool
	// Tracer, when non-nil, counts outbound messages per wire kind.
	Tracer *trace.Recorder
}

func (c *TCPConfig) fillDefaults() {
	if c.DialTimeout == 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RetryInterval == 0 {
		c.RetryInterval = 200 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 10
	}
	if c.DisableRetry {
		c.MaxRetries = 1
	}
}

// TCP is a Network hosting exactly one endpoint (the local site) and
// reaching every other site over TCP. Messages are CRC-framed (see
// internal/wire); per-peer ordering comes from a single writer goroutine
// per destination and TCP's own ordering; duplicate suppression on
// reconnect comes from per-sender sequence numbers.
type TCP struct {
	cfg      TCPConfig
	listener net.Listener
	ep       *tcpEndpoint

	mu      sync.Mutex
	writers map[core.SiteID]*tcpWriter
	conns   map[net.Conn]bool
	lastSeq map[core.SiteID]uint64
	closed  bool
	wg      sync.WaitGroup
}

// NewTCP starts the local listener and returns the network attachment.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	cfg.fillDefaults()
	addr, ok := cfg.Addrs[cfg.Self]
	if !ok {
		return nil, fmt.Errorf("transport: no address for local %s", cfg.Self)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCP{
		cfg:      cfg,
		listener: ln,
		writers:  make(map[core.SiteID]*tcpWriter),
		conns:    make(map[net.Conn]bool),
		lastSeq:  make(map[core.SiteID]uint64),
	}
	t.ep = &tcpEndpoint{id: cfg.Self, net: t, inbox: newQueue[*msg.Envelope]()}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the actual listen address (useful with ":0" test configs).
func (t *TCP) Addr() string { return t.listener.Addr().String() }

// SetAddr installs or updates a peer's address. Useful when listeners bind
// ephemeral ports first and the full map is distributed afterwards. It has
// no effect on a peer whose outbound writer has already been created.
func (t *TCP) SetAddr(id core.SiteID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.Addrs[id] = addr
}

// Endpoint implements Network. Only the local site's endpoint exists.
func (t *TCP) Endpoint(id core.SiteID) (Endpoint, error) {
	if id != t.cfg.Self {
		return nil, fmt.Errorf("%w: %s is not local", ErrUnknownSite, id)
	}
	return t.ep, nil
}

// Close implements Network.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, w := range t.writers {
		w.q.close()
	}
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	t.listener.Close()
	t.wg.Wait()
	t.ep.inbox.close()
	return nil
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop consumes frames from one inbound connection until it errors.
func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	for {
		kind, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return // includes EOF on orderly close and checksum errors
		}
		if kind != frameEnvelope {
			return // unknown frame kind: protocol violation, drop conn
		}
		env, err := msg.Unmarshal(payload)
		if err != nil {
			return
		}
		if t.dedup(env) {
			continue
		}
		t.ep.inbox.push(env)
	}
}

// dedup reports whether env is a duplicate of a message already delivered
// from env.From. Sequence numbers are strictly increasing per sender, and a
// sender retransmits only in order, so a non-increasing sequence number is
// always a reconnect duplicate.
func (t *TCP) dedup(env *msg.Envelope) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if env.Seq <= t.lastSeq[env.From] {
		return true
	}
	t.lastSeq[env.From] = env.Seq
	return false
}

// writerFor returns the single outbound writer for peer, creating it on
// first use.
func (t *TCP) writerFor(peer core.SiteID) (*tcpWriter, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if w, ok := t.writers[peer]; ok {
		return w, nil
	}
	addr, ok := t.cfg.Addrs[peer]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSite, peer)
	}
	w := &tcpWriter{net: t, addr: addr, q: newQueue[[]byte]()}
	t.writers[peer] = w
	t.wg.Add(1)
	go w.run()
	return w, nil
}

// tcpWriter owns the outbound connection to one peer and writes queued
// messages in order, reconnecting on failure.
type tcpWriter struct {
	net  *TCP
	addr string
	q    *queue[[]byte]
	conn net.Conn
}

func (w *tcpWriter) run() {
	defer w.net.wg.Done()
	defer func() {
		if w.conn != nil {
			w.conn.Close()
		}
	}()
	for {
		buf, ok := w.q.pop()
		if !ok {
			return
		}
		w.writeWithRetry(buf)
	}
}

// writeWithRetry attempts to deliver one message, redialing between
// attempts. After MaxRetries failures the message is dropped: the peer is
// down, and the replicated-copy-control protocol detects that by ack
// timeout and runs a type-2 control transaction.
func (w *tcpWriter) writeWithRetry(buf []byte) {
	for attempt := 0; attempt < w.net.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(w.net.cfg.RetryInterval)
		}
		if w.conn == nil {
			conn, err := net.DialTimeout("tcp", w.addr, w.net.cfg.DialTimeout)
			if err != nil {
				continue
			}
			w.conn = conn
		}
		if err := wire.WriteFrame(w.conn, frameEnvelope, buf); err != nil {
			w.conn.Close()
			w.conn = nil
			continue
		}
		return
	}
}

type tcpEndpoint struct {
	id    core.SiteID
	net   *TCP
	inbox *queue[*msg.Envelope]
}

// ID implements Endpoint.
func (ep *tcpEndpoint) ID() core.SiteID { return ep.id }

// Send implements Endpoint.
func (ep *tcpEndpoint) Send(env *msg.Envelope) error {
	env.From = ep.id
	ep.net.cfg.Tracer.CountMessage(env.Body.Kind().String())
	if env.To == ep.id {
		// Loopback without touching the socket layer, but still through
		// the codec for isolation.
		buf := msg.Marshal(env)
		decoded, err := msg.Unmarshal(buf)
		if err != nil {
			return err
		}
		if !ep.net.dedup(decoded) {
			ep.inbox.push(decoded)
		}
		return nil
	}
	w, err := ep.net.writerFor(env.To)
	if err != nil {
		return err
	}
	if !w.q.push(msg.Marshal(env)) {
		return ErrClosed
	}
	return nil
}

// Recv implements Endpoint.
func (ep *tcpEndpoint) Recv() (*msg.Envelope, bool) { return ep.inbox.pop() }

// Close implements Endpoint.
func (ep *tcpEndpoint) Close() error { return ep.net.Close() }

// ensure interface satisfaction.
var (
	_ Network  = (*Memory)(nil)
	_ Network  = (*TCP)(nil)
	_ Endpoint = (*memEndpoint)(nil)
	_ Endpoint = (*tcpEndpoint)(nil)
)
