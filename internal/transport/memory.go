package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
	"minraid/internal/trace"
)

// MemoryConfig configures an in-process network.
type MemoryConfig struct {
	// Sites is the number of database sites (0..Sites-1). An endpoint for
	// the managing site exists in addition.
	Sites int
	// Delay is the fixed per-message inter-site communication cost. The
	// paper measured nine milliseconds per communication on its hardware
	// (§2.1); zero measures pure protocol cost.
	Delay time.Duration
}

// Memory is an in-process Network. Messages are serialized through the
// wire codec on send and deserialized on delivery, so sites share no
// mutable state — the same isolation real processes would have — and every
// experiment exercises the real encoding path ("real transaction
// processing on real sites with real message passing").
//
// Delivery is FIFO per (sender, receiver) link, satisfying the paper's
// ordered-reliable-messaging assumption. Independent links proceed in
// parallel, as Ethernet or the Unix IPC of the original system would.
type Memory struct {
	cfg MemoryConfig

	mu        sync.Mutex
	endpoints map[core.SiteID]*memEndpoint
	links     map[linkKey]*memLink
	down      map[linkKey]bool
	credits   map[linkKey]int // remaining deliveries before the link drops
	closed    bool

	sent   atomic.Uint64
	tracer atomic.Pointer[trace.Recorder]
	wg     sync.WaitGroup
}

type linkKey struct{ from, to core.SiteID }

type memLink struct {
	q *queue[memItem]
}

// memItem is one in-flight message on a link: the encoded bytes plus the
// moment it was sent, from which the delivery deadline is derived.
type memItem struct {
	buf []byte
	at  time.Time
}

// NewMemory returns an in-process network for cfg.
func NewMemory(cfg MemoryConfig) *Memory {
	if cfg.Sites <= 0 || cfg.Sites > core.MaxSites {
		panic(fmt.Sprintf("transport: site count %d out of range", cfg.Sites))
	}
	return &Memory{
		cfg:       cfg,
		endpoints: make(map[core.SiteID]*memEndpoint),
		links:     make(map[linkKey]*memLink),
		down:      make(map[linkKey]bool),
		credits:   make(map[linkKey]int),
	}
}

// Endpoint implements Network.
func (m *Memory) Endpoint(id core.SiteID) (Endpoint, error) {
	if !m.valid(id) {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSite, id)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if ep, ok := m.endpoints[id]; ok {
		return ep, nil
	}
	ep := &memEndpoint{id: id, net: m, inbox: newQueue[*msg.Envelope]()}
	m.endpoints[id] = ep
	return ep, nil
}

// Close implements Network.
func (m *Memory) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	for _, l := range m.links {
		l.q.close()
	}
	eps := make([]*memEndpoint, 0, len(m.endpoints))
	for _, ep := range m.endpoints {
		eps = append(eps, ep)
	}
	m.mu.Unlock()
	m.wg.Wait()
	for _, ep := range eps {
		ep.inbox.close()
	}
	return nil
}

// MessagesSent returns the total number of messages accepted for delivery
// since the network was created. Experiments use it to report message
// complexity alongside elapsed time.
func (m *Memory) MessagesSent() uint64 { return m.sent.Load() }

// SetTracer installs a recorder that counts outbound messages per wire
// kind. A nil recorder disables counting.
func (m *Memory) SetTracer(r *trace.Recorder) { m.tracer.Store(r) }

// SetLinkDown makes the directed link from->to silently drop messages
// (true) or deliver normally (false). Used by tests and partition studies;
// the paper's experiments fail whole sites instead.
func (m *Memory) SetLinkDown(from, to core.SiteID, isDown bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if isDown {
		m.down[linkKey{from, to}] = true
	} else {
		delete(m.down, linkKey{from, to})
	}
}

// SetLinkDropAfter lets the directed link from->to deliver n more messages
// and then silently drop everything after — fault injection for mid-
// protocol failures (e.g. a participant that acks phase one and vanishes
// before phase two). A negative n removes the limit.
func (m *Memory) SetLinkDropAfter(from, to core.SiteID, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n < 0 {
		delete(m.credits, linkKey{from, to})
		return
	}
	m.credits[linkKey{from, to}] = n
}

func (m *Memory) valid(id core.SiteID) bool {
	return id == core.ManagingSite || int(id) < m.cfg.Sites
}

// send enqueues encoded bytes on the from->to link, creating the link and
// its delivery goroutine on first use.
func (m *Memory) send(from, to core.SiteID, buf []byte) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	key := linkKey{from, to}
	if m.down[key] {
		m.mu.Unlock()
		return nil // partitioned: silently dropped
	}
	if credits, limited := m.credits[key]; limited {
		if credits <= 0 {
			m.mu.Unlock()
			return nil // budget exhausted: silently dropped
		}
		m.credits[key] = credits - 1
	}
	l, ok := m.links[key]
	if !ok {
		l = &memLink{q: newQueue[memItem]()}
		m.links[key] = l
		m.wg.Add(1)
		go m.deliver(l, to)
	}
	m.mu.Unlock()
	// Count only messages the link actually accepted: a push that lost the
	// race with Close is dropped during shutdown and must not inflate the
	// experiments' message-complexity columns.
	if l.q.push(memItem{buf: buf, at: time.Now()}) {
		m.sent.Add(1)
	}
	return nil
}

// deliver pumps one link: pops encoded messages in FIFO order, holds each
// until its delivery deadline, decodes and hands the envelope to the
// destination inbox.
//
// The deadline is sendTime + Delay, so Delay behaves as per-message
// *latency*: k messages queued to one destination all complete after ~1
// Delay, pipelined as they would be on a real wire. (Sleeping Delay per pop
// instead would space deliveries Delay apart, turning the paper's 9 ms
// per-message cost into a bandwidth limit of one message per 9 ms per
// link.) Per-link FIFO order is preserved: the single goroutine delivers in
// pop order, and send timestamps on a link are non-decreasing.
func (m *Memory) deliver(l *memLink, to core.SiteID) {
	defer m.wg.Done()
	for {
		it, ok := l.q.pop()
		if !ok {
			return
		}
		if m.cfg.Delay > 0 {
			if d := m.cfg.Delay - time.Since(it.at); d > 0 {
				time.Sleep(d)
			}
		}
		env, err := msg.Unmarshal(it.buf)
		if err != nil {
			// A memory link cannot corrupt data; an error here is a
			// programming bug in the codec and must be loud.
			panic(fmt.Sprintf("transport: undecodable message on memory link: %v", err))
		}
		m.mu.Lock()
		ep := m.endpoints[to]
		m.mu.Unlock()
		if ep != nil {
			ep.inbox.push(env)
		}
	}
}

type memEndpoint struct {
	id    core.SiteID
	net   *Memory
	inbox *queue[*msg.Envelope]
}

// ID implements Endpoint.
func (ep *memEndpoint) ID() core.SiteID { return ep.id }

// Send implements Endpoint.
func (ep *memEndpoint) Send(env *msg.Envelope) error {
	if !ep.net.valid(env.To) {
		return fmt.Errorf("%w: %s", ErrUnknownSite, env.To)
	}
	env.From = ep.id
	ep.net.tracer.Load().CountMessage(env.Body.Kind().String())
	return ep.net.send(ep.id, env.To, msg.Marshal(env))
}

// Recv implements Endpoint.
func (ep *memEndpoint) Recv() (*msg.Envelope, bool) { return ep.inbox.pop() }

// Close implements Endpoint.
func (ep *memEndpoint) Close() error {
	ep.inbox.close()
	return nil
}
