package transport

import "sync"

// queue is an unbounded FIFO of envelopes with blocking pop and close
// semantics. Senders never block, which rules out the queue-full deadlocks
// a bounded channel could introduce between sites that are simultaneously
// sending to each other; memory is bounded in practice by the protocol's
// request/response discipline.
type queue[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	closed bool
}

func newQueue[T any]() *queue[T] {
	q := &queue[T]{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends an item. Pushing to a closed queue drops the item and
// reports false.
func (q *queue[T]) push(item T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, item)
	q.cond.Signal()
	return true
}

// pop removes the oldest item, blocking while the queue is empty. It
// returns ok=false once the queue is closed and drained.
func (q *queue[T]) pop() (item T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	item = q.items[0]
	// Shift rather than reslice so the backing array does not pin
	// delivered envelopes.
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = *new(T)
	q.items = q.items[:len(q.items)-1]
	return item, true
}

// close marks the queue closed; blocked pops drain remaining items and then
// return ok=false.
func (q *queue[T]) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// len returns the current queue depth.
func (q *queue[T]) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
