package transport

import "sync"

// queue is an unbounded FIFO of envelopes with blocking pop and close
// semantics. Senders never block, which rules out the queue-full deadlocks
// a bounded channel could introduce between sites that are simultaneously
// sending to each other; memory is bounded in practice by the protocol's
// request/response discipline.
//
// Storage is a head-indexed slice: pop reads items[head] and zeroes the
// slot (so delivered envelopes are released for GC immediately) instead of
// copy-shifting the whole backing slice, which made draining a burst of n
// queued messages O(n²). The dead prefix is reclaimed when the queue
// empties and folded away when the slice would otherwise grow.
type queue[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	head   int
	closed bool
}

func newQueue[T any]() *queue[T] {
	q := &queue[T]{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends an item. Pushing to a closed queue drops the item and
// reports false.
func (q *queue[T]) push(item T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	if q.head > 0 && len(q.items) == cap(q.items) {
		// About to grow: fold the dead prefix away first so the backing
		// array only grows when there are genuinely more live items.
		n := copy(q.items, q.items[q.head:])
		clearTail(q.items[n:])
		q.items = q.items[:n]
		q.head = 0
	}
	q.items = append(q.items, item)
	q.cond.Signal()
	return true
}

// clearTail zeroes slots that held live items so their referents are not
// pinned by the backing array.
func clearTail[T any](s []T) {
	var zero T
	for i := range s {
		s[i] = zero
	}
}

// pop removes the oldest item, blocking while the queue is empty. It
// returns ok=false once the queue is closed and drained.
func (q *queue[T]) pop() (item T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.items) && !q.closed {
		q.cond.Wait()
	}
	if q.head == len(q.items) {
		var zero T
		return zero, false
	}
	item = q.items[q.head]
	// Zero the slot so the backing array does not pin the delivered
	// envelope.
	var zero T
	q.items[q.head] = zero
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return item, true
}

// close marks the queue closed; blocked pops drain remaining items and then
// return ok=false.
func (q *queue[T]) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// len returns the current queue depth.
func (q *queue[T]) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}
