package transport

import (
	"testing"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
)

// TestChaosOneWayCut: an asymmetric cut (0->1 down, 1->0 up) silences
// exactly one direction — 0's requests vanish (counted as Cut, Send still
// succeeds), 1's replies deliver — and healing the link restores it.
func TestChaosOneWayCut(t *testing.T) {
	inner := NewMemory(MemoryConfig{Sites: 2})
	ch := NewChaos(inner, ChaosConfig{Seed: 1})
	defer ch.Close()
	a, _ := ch.Endpoint(0)
	b, _ := ch.Endpoint(1)

	ch.SetLinkDown(0, 1, true)

	const n = 5
	for i := 1; i <= n; i++ {
		if err := a.Send(commitEnv(1, core.TxnID(i), uint64(i))); err != nil {
			t.Fatalf("send on cut link must report acceptance, got %v", err)
		}
	}
	// The reverse direction stays alive: B's messages reach A.
	if err := b.Send(&msg.Envelope{To: 0, Seq: 1, Body: &msg.CommitAck{Txn: 1}}); err != nil {
		t.Fatal(err)
	}
	if env, ok := a.Recv(); !ok || env.From != 1 {
		t.Fatalf("reverse direction dropped: %v %v", env, ok)
	}

	stats := ch.Stats()
	if got := stats[LinkID{From: 0, To: 1}]; got.Cut != n || got.Sent != n {
		t.Fatalf("cut link stats: %+v, want Sent=Cut=%d", got, n)
	}
	if got := stats[LinkID{From: 1, To: 0}]; got.Cut != 0 {
		t.Fatalf("reverse link counted cuts: %+v", got)
	}

	// Heal: traffic flows again and the cut counter stops.
	ch.SetLinkDown(0, 1, false)
	if err := a.Send(commitEnv(1, core.TxnID(n+1), uint64(n+1))); err != nil {
		t.Fatal(err)
	}
	if env, ok := b.Recv(); !ok || env.Seq != uint64(n+1) {
		t.Fatalf("healed link did not deliver: %v %v", env, ok)
	}
	if got := ch.Stats()[LinkID{From: 0, To: 1}]; got.Cut != n {
		t.Fatalf("cut counter moved after heal: %+v", got)
	}
}

// TestChaosCutSkipsRNG: messages discarded by an administrative cut never
// touch the link's probabilistic decision stream — the surviving messages
// see exactly the decisions they would have seen on an uncut run.
func TestChaosCutSkipsRNG(t *testing.T) {
	run := func(cutFirst int) map[LinkID]LinkStats {
		inner := NewMemory(MemoryConfig{Sites: 2})
		ch := NewChaos(inner, ChaosConfig{Seed: 42, Drop: 0.5, MaxJitter: time.Millisecond})
		a, _ := ch.Endpoint(0)
		if cutFirst > 0 {
			ch.SetLinkDown(0, 1, true)
			for i := 1; i <= cutFirst; i++ {
				if err := a.Send(commitEnv(1, core.TxnID(i), uint64(i))); err != nil {
					panic(err)
				}
			}
			ch.SetLinkDown(0, 1, false)
		}
		for i := cutFirst + 1; i <= cutFirst+100; i++ {
			if err := a.Send(commitEnv(1, core.TxnID(i), uint64(i))); err != nil {
				panic(err)
			}
		}
		if err := ch.Close(); err != nil {
			panic(err)
		}
		return ch.Stats()
	}

	plain := run(0)[LinkID{From: 0, To: 1}]
	cut := run(30)[LinkID{From: 0, To: 1}]
	if cut.Cut != 30 || cut.Sent != 130 {
		t.Fatalf("cut run stats: %+v", cut)
	}
	if cut.Dropped != plain.Dropped || cut.JitterTotal != plain.JitterTotal {
		t.Fatalf("cut traffic perturbed the rng stream: plain %+v, cut %+v", plain, cut)
	}
}
