package failure

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestRandomSchedulesValid draws many schedules across seeds and site
// counts and checks the generator's contract: sorted valid events, and at
// least one site up at every transaction boundary.
func TestRandomSchedulesValid(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	for sites := 2; sites <= 5; sites++ {
		for seed := 0; seed < seeds; seed++ {
			cfg := RandomConfig{Sites: sites, Txns: 60}
			sched, err := Random(cfg, rand.New(rand.NewSource(int64(seed))))
			if err != nil {
				t.Fatalf("sites=%d seed=%d: %v", sites, seed, err)
			}
			if err := sched.Validate(sites); err != nil {
				t.Fatalf("sites=%d seed=%d: invalid schedule: %v", sites, seed, err)
			}
			plan, err := NewPlan(sched, sites)
			if err != nil {
				t.Fatalf("sites=%d seed=%d: %v", sites, seed, err)
			}
			for txn := 1; txn <= sched.Txns; txn++ {
				if len(plan.UpSites(txn)) == 0 {
					t.Fatalf("sites=%d seed=%d: no site up at txn %d", sites, seed, txn)
				}
				plan.Coordinator(txn) // must not panic
			}
		}
	}
}

// TestRandomScheduleDeterministic checks that identical (config, seed)
// produce identical schedules — the property soak reproducibility rests on.
func TestRandomScheduleDeterministic(t *testing.T) {
	cfg := RandomConfig{Sites: 4, Txns: 100}
	a, err := Random(cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	c, err := Random(cfg, rand.New(rand.NewSource(43)))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical schedules: %v", a)
	}
}

// TestRandomScheduleRespectsMaxDown replays generated schedules and checks
// the simultaneous-failure cap.
func TestRandomScheduleRespectsMaxDown(t *testing.T) {
	cfg := RandomConfig{Sites: 5, Txns: 80, Events: 60, MaxDown: 2}
	for seed := 0; seed < 50; seed++ {
		sched, err := Random(cfg, rand.New(rand.NewSource(int64(seed))))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := NewPlan(sched, cfg.Sites)
		if err != nil {
			t.Fatal(err)
		}
		for txn := 1; txn <= sched.Txns; txn++ {
			if down := cfg.Sites - len(plan.UpSites(txn)); down > cfg.MaxDown {
				t.Fatalf("seed=%d: %d sites down at txn %d, cap %d", seed, down, txn, cfg.MaxDown)
			}
		}
	}
}

// TestRandomScheduleRejectsBadConfig checks input validation.
func TestRandomScheduleRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Random(RandomConfig{Sites: 1, Txns: 10}, rng); err == nil {
		t.Fatal("expected error for 1 site")
	}
	if _, err := Random(RandomConfig{Sites: 3, Txns: 0}, rng); err == nil {
		t.Fatal("expected error for 0 txns")
	}
}
