package failure

import (
	"fmt"
	"math/rand"
	"sort"

	"minraid/internal/core"
)

// RandomConfig parameterizes a randomized fail/recover schedule. The paper
// scripts its failures by hand (§3.1, §4.2); soak runs instead draw many
// schedules from a seeded source to probe state-transition interleavings
// nobody thought to script.
type RandomConfig struct {
	// Sites is the number of database sites.
	Sites int
	// Txns is the number of transactions the schedule spans.
	Txns int
	// Events is how many fail/recover events to attempt. Attempts that
	// find no legal move (everything up and only one site may go down, or
	// nothing to recover) are skipped, so the generated schedule may hold
	// fewer. Defaults to one event per five transactions.
	Events int
	// MaxDown caps the number of simultaneously failed sites. It is
	// clamped to Sites-1: a schedule never takes the last site down, so
	// Plan.Coordinator is total and the always-one-site-up invariant the
	// copy-control protocol assumes (§1.2, total failures excluded) holds
	// by construction. Defaults to Sites-1.
	MaxDown int
}

func (c *RandomConfig) fillDefaults() error {
	if c.Sites < 2 {
		return fmt.Errorf("failure: random schedule needs >= 2 sites, got %d", c.Sites)
	}
	if c.Txns < 1 {
		return fmt.Errorf("failure: random schedule needs >= 1 txn, got %d", c.Txns)
	}
	if c.Events == 0 {
		c.Events = c.Txns/5 + 1
	}
	if c.MaxDown <= 0 || c.MaxDown > c.Sites-1 {
		c.MaxDown = c.Sites - 1
	}
	return nil
}

// Random draws a valid schedule from rng: fail/recover events at random
// transaction boundaries, never taking the last operational site down.
// The result is sorted, passes Validate, and keeps at least one site up at
// every transaction. Identical (config, rng state) produce identical
// schedules, so a soak epoch is reproducible from its seed.
func Random(cfg RandomConfig, rng *rand.Rand) (Schedule, error) {
	if err := cfg.fillDefaults(); err != nil {
		return Schedule{}, err
	}

	// Draw the firing points first and walk them in order, so each
	// action is decided against the up-set actually in force at that
	// point in the run.
	points := make([]int, cfg.Events)
	for i := range points {
		points[i] = 1 + rng.Intn(cfg.Txns)
	}
	sort.Ints(points)

	up := make([]bool, cfg.Sites)
	for i := range up {
		up[i] = true
	}
	downCount := 0

	sched := Schedule{Txns: cfg.Txns}
	for _, at := range points {
		// Recover when at the failure cap, fail when everything is up,
		// otherwise flip a coin — keeps schedules oscillating through
		// mixed states instead of saturating at either extreme.
		bringUp := downCount > 0 && (downCount >= cfg.MaxDown || rng.Intn(2) == 0)
		var pool []core.SiteID
		for s, isUp := range up {
			if isUp != bringUp {
				pool = append(pool, core.SiteID(s))
			}
		}
		if len(pool) == 0 {
			continue
		}
		site := pool[rng.Intn(len(pool))]
		if bringUp {
			up[site] = true
			downCount--
			sched.Events = append(sched.Events, Event{BeforeTxn: at, Action: Recover, Site: site})
		} else {
			up[site] = false
			downCount++
			sched.Events = append(sched.Events, Event{BeforeTxn: at, Action: Fail, Site: site})
		}
	}
	return sched, nil
}
