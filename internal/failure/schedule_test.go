package failure

import (
	"testing"

	"minraid/internal/core"
)

func sitesEqual(a []core.SiteID, b ...core.SiteID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestValidate(t *testing.T) {
	good := Scenario1()
	if err := good.Validate(2); err != nil {
		t.Errorf("scenario 1 invalid: %v", err)
	}
	bad := Schedule{Events: []Event{{BeforeTxn: 0, Action: Fail, Site: 0}}}
	if err := bad.Validate(2); err == nil {
		t.Error("zero txn accepted")
	}
	bad = Schedule{Events: []Event{{BeforeTxn: 1, Action: Fail, Site: 9}}}
	if err := bad.Validate(2); err == nil {
		t.Error("out-of-range site accepted")
	}
	bad = Schedule{Events: []Event{
		{BeforeTxn: 5, Action: Fail, Site: 0},
		{BeforeTxn: 2, Action: Recover, Site: 0},
	}}
	if err := bad.Validate(2); err == nil {
		t.Error("out-of-order events accepted")
	}
}

func TestEventsBefore(t *testing.T) {
	s := Scenario1()
	evs := s.EventsBefore(26)
	if len(evs) != 2 {
		t.Fatalf("events before 26: %v", evs)
	}
	if evs[0].Action != Recover || evs[0].Site != 0 || evs[1].Action != Fail || evs[1].Site != 1 {
		t.Errorf("events = %v", evs)
	}
	if got := s.EventsBefore(27); len(got) != 0 {
		t.Errorf("unexpected events: %v", got)
	}
}

func TestPlanUpSitesScenario1(t *testing.T) {
	p, err := NewPlan(Scenario1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sitesEqual(p.UpSites(1), 1) {
		t.Errorf("txn 1 up = %v", p.UpSites(1))
	}
	if !sitesEqual(p.UpSites(25), 1) {
		t.Errorf("txn 25 up = %v", p.UpSites(25))
	}
	if !sitesEqual(p.UpSites(26), 0) {
		t.Errorf("txn 26 up = %v", p.UpSites(26))
	}
	if !sitesEqual(p.UpSites(51), 0, 1) {
		t.Errorf("txn 51 up = %v", p.UpSites(51))
	}
}

func TestPlanCoordinatorRoundRobin(t *testing.T) {
	p, _ := NewPlan(Scenario1(), 2)
	// Single up site: always that site.
	for txn := 1; txn <= 25; txn++ {
		if got := p.Coordinator(txn); got != 1 {
			t.Fatalf("txn %d coordinator = %v", txn, got)
		}
	}
	// Both up: alternate.
	c51, c52 := p.Coordinator(51), p.Coordinator(52)
	if c51 == c52 {
		t.Errorf("coordinators do not alternate: %v %v", c51, c52)
	}
}

func TestPlanPanicsWithNoUpSite(t *testing.T) {
	s := Schedule{Txns: 5, Events: []Event{
		{BeforeTxn: 1, Action: Fail, Site: 0},
		{BeforeTxn: 1, Action: Fail, Site: 1},
	}}
	p, _ := NewPlan(s, 2)
	defer func() {
		if recover() == nil {
			t.Error("no panic with all sites down")
		}
	}()
	p.Coordinator(1)
}

func TestScenario2Shape(t *testing.T) {
	s := Scenario2()
	if err := s.Validate(4); err != nil {
		t.Fatal(err)
	}
	p, _ := NewPlan(s, 4)
	// Exactly one site down in each failure window; all up from txn 101.
	for txn := 1; txn <= 100; txn++ {
		if got := len(p.UpSites(txn)); got != 3 {
			t.Fatalf("txn %d has %d up sites", txn, got)
		}
	}
	if got := len(p.UpSites(101)); got != 4 {
		t.Errorf("txn 101 has %d up sites", got)
	}
	downAt := map[int]core.SiteID{1: 0, 26: 1, 51: 2, 76: 3}
	for txn, want := range downAt {
		up := p.UpSites(txn)
		for _, id := range up {
			if id == want {
				t.Errorf("txn %d: %s should be down", txn, want)
			}
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	s := Figure1(400)
	if s.Txns != 400 {
		t.Errorf("cap = %d", s.Txns)
	}
	p, _ := NewPlan(s, 2)
	if !sitesEqual(p.UpSites(100), 1) {
		t.Errorf("txn 100 up = %v", p.UpSites(100))
	}
	if !sitesEqual(p.UpSites(101), 0, 1) {
		t.Errorf("txn 101 up = %v", p.UpSites(101))
	}
}

func TestSorted(t *testing.T) {
	s := Schedule{Events: []Event{
		{BeforeTxn: 9, Action: Fail, Site: 0},
		{BeforeTxn: 2, Action: Fail, Site: 1},
	}}
	sorted := Sorted(s)
	if sorted.Events[0].BeforeTxn != 2 || sorted.Events[1].BeforeTxn != 9 {
		t.Errorf("sorted = %v", sorted.Events)
	}
	// Original untouched.
	if s.Events[0].BeforeTxn != 9 {
		t.Error("Sorted mutated its input")
	}
}

func TestActionEventStrings(t *testing.T) {
	if Fail.String() != "fail" || Recover.String() != "recover" {
		t.Error("action strings")
	}
	e := Event{BeforeTxn: 3, Action: Fail, Site: 1}
	if e.String() != "before txn 3: fail site 1" {
		t.Errorf("event string = %q", e.String())
	}
}
