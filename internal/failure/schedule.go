// Package failure expresses the experiment scripts of the paper as
// declarative schedules: "Before transaction 1, we caused site 0 to fail.
// For transactions 1-100 we kept site 0 down and processed transactions on
// site 1. Before transaction 101, site 0 was brought up..." (§3.1).
//
// A Schedule lists fail/recover events keyed to transaction numbers; a
// Plan replays it to answer, for any transaction number, which sites are
// up and who should coordinate (round-robin over the up sites, matching
// the paper's "transactions were processed on both sites").
package failure

import (
	"fmt"
	"sort"

	"minraid/internal/core"
)

// Action is what happens to a site at an event.
type Action uint8

const (
	// Fail takes the site down.
	Fail Action = iota
	// Recover brings the site back up.
	Recover
)

// String implements fmt.Stringer.
func (a Action) String() string {
	if a == Fail {
		return "fail"
	}
	return "recover"
}

// Event is one scheduled state change: before transaction BeforeTxn is
// issued, apply Action to Site. Transaction numbers are 1-based, as in the
// paper.
type Event struct {
	BeforeTxn int
	Action    Action
	Site      core.SiteID
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("before txn %d: %s %s", e.BeforeTxn, e.Action, e.Site)
}

// Schedule is an ordered list of events plus the total transaction count.
type Schedule struct {
	// Txns is the number of transactions to run. Zero means "run until
	// the condition the experiment defines" (e.g. full recovery).
	Txns   int
	Events []Event
}

// Validate checks event ordering and site ranges.
func (s Schedule) Validate(sites int) error {
	for i, e := range s.Events {
		if e.BeforeTxn < 1 {
			return fmt.Errorf("failure: event %d fires before txn %d (< 1)", i, e.BeforeTxn)
		}
		if int(e.Site) >= sites {
			return fmt.Errorf("failure: event %d targets %s of %d sites", i, e.Site, sites)
		}
		if i > 0 && e.BeforeTxn < s.Events[i-1].BeforeTxn {
			return fmt.Errorf("failure: events out of order at %d", i)
		}
	}
	return nil
}

// EventsBefore returns the events that fire immediately before
// transaction txnNum.
func (s Schedule) EventsBefore(txnNum int) []Event {
	var out []Event
	for _, e := range s.Events {
		if e.BeforeTxn == txnNum {
			out = append(out, e)
		}
	}
	return out
}

// Plan replays a schedule to answer up-set and coordinator queries.
type Plan struct {
	sched Schedule
	sites int
}

// NewPlan builds a plan for a system of sites database sites.
func NewPlan(sched Schedule, sites int) (*Plan, error) {
	if err := sched.Validate(sites); err != nil {
		return nil, err
	}
	return &Plan{sched: sched, sites: sites}, nil
}

// Schedule returns the underlying schedule.
func (p *Plan) Schedule() Schedule { return p.sched }

// UpSites returns, in ascending order, the sites that are up when
// transaction txnNum is issued (after all events with BeforeTxn <= txnNum).
func (p *Plan) UpSites(txnNum int) []core.SiteID {
	up := make([]bool, p.sites)
	for i := range up {
		up[i] = true
	}
	for _, e := range p.sched.Events {
		if e.BeforeTxn > txnNum {
			break
		}
		up[e.Site] = e.Action == Recover
	}
	var out []core.SiteID
	for i, u := range up {
		if u {
			out = append(out, core.SiteID(i))
		}
	}
	return out
}

// Coordinator returns the coordinator for transaction txnNum: round-robin
// over the sites up at that point ("transactions were processed on both
// sites", §3.1). It panics if no site is up — a schedule error.
func (p *Plan) Coordinator(txnNum int) core.SiteID {
	up := p.UpSites(txnNum)
	if len(up) == 0 {
		panic(fmt.Sprintf("failure: no site up at txn %d", txnNum))
	}
	return up[(txnNum-1)%len(up)]
}

// Paper scenario builders. Transaction numbering is 1-based, matching the
// text exactly.

// Figure1 is experiment 2's schedule (§3.1): 2 sites; site 0 fails before
// txn 1, recovers before txn 101; transactions continue on both sites
// until site 0 is fully recovered (open-ended, so Txns is a cap).
func Figure1(capTxns int) Schedule {
	return Schedule{
		Txns: capTxns,
		Events: []Event{
			{BeforeTxn: 1, Action: Fail, Site: 0},
			{BeforeTxn: 101, Action: Recover, Site: 0},
		},
	}
}

// Scenario1 is experiment 3 scenario 1 (§4.2.1): 2 sites, alternating
// failures, 120 transactions.
func Scenario1() Schedule {
	return Schedule{
		Txns: 120,
		Events: []Event{
			{BeforeTxn: 1, Action: Fail, Site: 0},
			{BeforeTxn: 26, Action: Recover, Site: 0},
			{BeforeTxn: 26, Action: Fail, Site: 1},
			{BeforeTxn: 51, Action: Recover, Site: 1},
		},
	}
}

// Scenario2 is experiment 3 scenario 2 (§4.2.2): 4 sites, rolling single
// failures every 25 transactions, 160 transactions.
func Scenario2() Schedule {
	return Schedule{
		Txns: 160,
		Events: []Event{
			{BeforeTxn: 1, Action: Fail, Site: 0},
			{BeforeTxn: 26, Action: Recover, Site: 0},
			{BeforeTxn: 26, Action: Fail, Site: 1},
			{BeforeTxn: 51, Action: Recover, Site: 1},
			{BeforeTxn: 51, Action: Fail, Site: 2},
			{BeforeTxn: 76, Action: Recover, Site: 2},
			{BeforeTxn: 76, Action: Fail, Site: 3},
			{BeforeTxn: 101, Action: Recover, Site: 3},
		},
	}
}

// Sorted returns a copy of the schedule with events sorted by firing
// transaction (stable), for builders that assemble events out of order.
func Sorted(s Schedule) Schedule {
	events := make([]Event, len(s.Events))
	copy(events, s.Events)
	sort.SliceStable(events, func(i, j int) bool { return events[i].BeforeTxn < events[j].BeforeTxn })
	return Schedule{Txns: s.Txns, Events: events}
}
