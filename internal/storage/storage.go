// Package storage holds a site's copy of the replicated database.
//
// The paper's mini-RAID "kept data copies within the virtual memory of each
// process which represented a site" (§1.2, assumption 3), which MemStore
// reproduces. WALStore adds the durable path the full RAID system would
// have — an append-only, CRC-framed log with snapshot compaction — so the
// I/O overhead the paper factored out can be measured as an ablation.
//
// Every copy is versioned: Version is the TxnID of the writing transaction,
// which under serial processing totally orders writes. Stores never regress
// a copy: applying an older version than the one held is an idempotent
// no-op, which makes commit retries and copier/commit races harmless.
package storage

import (
	"errors"
	"fmt"

	"minraid/internal/core"
)

// Errors returned by stores.
var (
	// ErrNoItem is returned for an item outside the database.
	ErrNoItem = errors.New("storage: no such item")
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = errors.New("storage: closed")
)

// Store is one site's copy of the fully replicated database.
type Store interface {
	// Items returns the database size.
	Items() int
	// Get returns the local copy of item.
	Get(item core.ItemID) (core.ItemVersion, error)
	// Apply installs a committed copy. It returns true if the copy was
	// newer than the one held and was installed, false if it was stale
	// and ignored.
	Apply(iv core.ItemVersion) (bool, error)
	// Dump returns the copies of items in [first, last], ascending.
	Dump(first, last core.ItemID) ([]core.ItemVersion, error)
	// Close releases resources. A MemStore Close is a no-op; a WALStore
	// Close flushes and closes the log.
	Close() error
}

// validRange normalizes and checks a dump range against the store size.
func validRange(items int, first, last core.ItemID) (core.ItemID, core.ItemID, error) {
	if int(first) >= items {
		return 0, 0, fmt.Errorf("%w: first %d of %d", ErrNoItem, first, items)
	}
	if int(last) >= items {
		last = core.ItemID(items - 1)
	}
	if last < first {
		return 0, 0, fmt.Errorf("%w: empty range %d..%d", ErrNoItem, first, last)
	}
	return first, last, nil
}
