package storage

import (
	"testing"

	"minraid/internal/core"
)

func BenchmarkMemStoreApply(b *testing.B) {
	s := NewMemStore(1000, nil)
	val := []byte("payload-12345678")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Apply(core.ItemVersion{
			Item: core.ItemID(i % 1000), Version: core.TxnID(i + 1), Value: val,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemStoreGet(b *testing.B) {
	s := NewMemStore(1000, []byte("payload-12345678"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(core.ItemID(i % 1000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALApply(b *testing.B) {
	s, err := OpenWAL(WALOptions{Dir: b.TempDir(), Items: 1000})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := []byte("payload-12345678")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Apply(core.ItemVersion{
			Item: core.ItemID(i % 1000), Version: core.TxnID(i + 1), Value: val,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALApplySync(b *testing.B) {
	s, err := OpenWAL(WALOptions{Dir: b.TempDir(), Items: 100, Sync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := []byte("payload-12345678")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Apply(core.ItemVersion{
			Item: core.ItemID(i % 100), Version: core.TxnID(i + 1), Value: val,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	s, err := OpenWAL(WALOptions{Dir: dir, Items: 200})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		s.Apply(core.ItemVersion{Item: core.ItemID(i % 200), Version: core.TxnID(i + 1), Value: []byte("v")})
	}
	s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := OpenWAL(WALOptions{Dir: dir, Items: 200})
		if err != nil {
			b.Fatal(err)
		}
		re.Close()
	}
}
