package storage

import (
	"os"
	"path/filepath"
	"testing"

	"minraid/internal/core"
)

// readFileOrNil returns a file's bytes, or nil if it does not exist.
func readFileOrNil(t *testing.T, path string) []byte {
	t.Helper()
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// restoreFile writes saved bytes back, or removes the file if the saved
// state was "absent".
func restoreFile(t *testing.T, path string, buf []byte) {
	t.Helper()
	if buf == nil {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
		return
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// applySeq applies versions 1..n of every item and returns the final
// expected version.
func applySeq(t *testing.T, s *WALStore, items, n int) {
	t.Helper()
	for v := 1; v <= n; v++ {
		for i := 0; i < items; i++ {
			if _, err := s.Apply(core.ItemVersion{Item: core.ItemID(i), Version: core.TxnID(v), Value: []byte{byte(v), byte(i)}}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func checkVersions(t *testing.T, s Store, items, want int) {
	t.Helper()
	for i := 0; i < items; i++ {
		iv, err := s.Get(core.ItemID(i))
		if err != nil {
			t.Fatal(err)
		}
		if iv.Version != core.TxnID(want) || len(iv.Value) != 2 || iv.Value[0] != byte(want) {
			t.Fatalf("item %d after crash-reopen: got %v, want version %d", i, iv, want)
		}
	}
}

// TestWALCompactCrashBeforeTruncate simulates the crash window the
// directory fsync in compactLocked creates on purpose: the renamed
// snapshot is durable but the log truncation never hit the disk, so reopen
// sees the new snapshot alongside the full pre-compaction log. Every log
// record is now stale (the snapshot already covers it) and must replay as
// a no-op, not corrupt the state.
func TestWALCompactCrashBeforeTruncate(t *testing.T) {
	const items = 4
	dir := t.TempDir()
	s, err := OpenWAL(WALOptions{Dir: dir, Items: items})
	if err != nil {
		t.Fatal(err)
	}
	applySeq(t, s, items, 7)

	walPath := filepath.Join(dir, walFile)
	oldLog := readFileOrNil(t, walPath)
	if len(oldLog) == 0 {
		t.Fatal("expected a non-empty log before compaction")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash": the truncate is undone, the snapshot rename survives —
	// exactly the on-disk state the syncDir ordering guarantees is the
	// worst case.
	restoreFile(t, walPath, oldLog)

	re, err := OpenWAL(WALOptions{Dir: dir, Items: items})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	checkVersions(t, re, items, 7)

	// The reopened store must still be writable and compactable.
	if _, err := re.Apply(core.ItemVersion{Item: 0, Version: 99, Value: []byte{99, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := re.Compact(); err != nil {
		t.Fatal(err)
	}
}

// TestWALCompactCrashNothingDurable simulates a crash where neither the
// snapshot rename nor the truncation became durable: the directory still
// holds the pre-compaction snapshot (or none) and the full log. Replay
// must recover every committed write — this, plus the case above, are the
// only two states the fsync-before-truncate ordering can leave behind.
// (Without the ordering, old-snapshot + empty-log was reachable, silently
// losing every write the log held.)
func TestWALCompactCrashNothingDurable(t *testing.T) {
	const items = 3
	dir := t.TempDir()
	s, err := OpenWAL(WALOptions{Dir: dir, Items: items})
	if err != nil {
		t.Fatal(err)
	}
	applySeq(t, s, items, 4)
	if err := s.Compact(); err != nil { // durable baseline snapshot
		t.Fatal(err)
	}
	applySeq(t, s, items, 9) // versions 5..9 live only in the log

	snapPath := filepath.Join(dir, snapshotFile)
	walPath := filepath.Join(dir, walFile)
	oldSnap := readFileOrNil(t, snapPath)
	oldLog := readFileOrNil(t, walPath)

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash": both the rename and the truncate are rolled back.
	restoreFile(t, snapPath, oldSnap)
	restoreFile(t, walPath, oldLog)

	re, err := OpenWAL(WALOptions{Dir: dir, Items: items})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	checkVersions(t, re, items, 9)
}
