package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"testing"
	"testing/quick"

	"minraid/internal/core"
)

func TestMemStoreInitial(t *testing.T) {
	s := NewMemStore(10, []byte("init"))
	if s.Items() != 10 {
		t.Fatalf("Items = %d", s.Items())
	}
	iv, err := s.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Item != 3 || iv.Version != 0 || !bytes.Equal(iv.Value, []byte("init")) {
		t.Errorf("Get(3) = %v", iv)
	}
}

func TestMemStoreApplyGet(t *testing.T) {
	s := NewMemStore(5, nil)
	applied, err := s.Apply(core.ItemVersion{Item: 2, Version: 7, Value: []byte("x")})
	if err != nil || !applied {
		t.Fatalf("apply: %v %v", applied, err)
	}
	iv, _ := s.Get(2)
	if iv.Version != 7 || !bytes.Equal(iv.Value, []byte("x")) {
		t.Errorf("Get = %v", iv)
	}
}

func TestMemStoreStaleApplyIgnored(t *testing.T) {
	s := NewMemStore(5, nil)
	s.Apply(core.ItemVersion{Item: 0, Version: 10, Value: []byte("new")})
	applied, err := s.Apply(core.ItemVersion{Item: 0, Version: 4, Value: []byte("old")})
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Error("stale apply reported applied")
	}
	iv, _ := s.Get(0)
	if iv.Version != 10 || !bytes.Equal(iv.Value, []byte("new")) {
		t.Errorf("stale apply overwrote: %v", iv)
	}
}

func TestMemStoreEqualVersionReapplies(t *testing.T) {
	s := NewMemStore(1, nil)
	s.Apply(core.ItemVersion{Item: 0, Version: 3, Value: []byte("a")})
	applied, _ := s.Apply(core.ItemVersion{Item: 0, Version: 3, Value: []byte("a")})
	if !applied {
		t.Error("idempotent re-apply rejected")
	}
}

func TestMemStoreNoSuchItem(t *testing.T) {
	s := NewMemStore(2, nil)
	if _, err := s.Get(2); !errors.Is(err, ErrNoItem) {
		t.Errorf("Get: %v", err)
	}
	if _, err := s.Apply(core.ItemVersion{Item: 9}); !errors.Is(err, ErrNoItem) {
		t.Errorf("Apply: %v", err)
	}
	if _, err := s.Dump(5, 6); !errors.Is(err, ErrNoItem) {
		t.Errorf("Dump: %v", err)
	}
}

func TestMemStoreDump(t *testing.T) {
	s := NewMemStore(10, nil)
	s.Apply(core.ItemVersion{Item: 4, Version: 2, Value: []byte("v")})
	got, err := s.Dump(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Item != 3 || got[1].Version != 2 || got[2].Item != 5 {
		t.Errorf("Dump = %v", got)
	}
	// Out-of-range last is clamped.
	all, err := s.Dump(0, 999)
	if err != nil || len(all) != 10 {
		t.Errorf("clamped dump: %v %v", len(all), err)
	}
	if _, err := s.Dump(5, 3); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestMemStoreGetReturnsCopy(t *testing.T) {
	s := NewMemStore(1, nil)
	s.Apply(core.ItemVersion{Item: 0, Version: 1, Value: []byte{1, 2}})
	iv, _ := s.Get(0)
	iv.Value[0] = 99
	again, _ := s.Get(0)
	if again.Value[0] != 1 {
		t.Error("Get aliases internal buffer")
	}
}

func TestMemStoreApplyClonesInput(t *testing.T) {
	s := NewMemStore(1, nil)
	val := []byte{5}
	s.Apply(core.ItemVersion{Item: 0, Version: 1, Value: val})
	val[0] = 6
	iv, _ := s.Get(0)
	if iv.Value[0] != 5 {
		t.Error("Apply aliases caller buffer")
	}
}

func TestMemStoreBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-size store accepted")
		}
	}()
	NewMemStore(0, nil)
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWAL(WALOptions{Dir: dir, Items: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := s.Apply(core.ItemVersion{Item: core.ItemID(i), Version: core.TxnID(i + 1), Value: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenWAL(WALOptions{Dir: dir, Items: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < 8; i++ {
		iv, err := re.Get(core.ItemID(i))
		if err != nil {
			t.Fatal(err)
		}
		if iv.Version != core.TxnID(i+1) || iv.Value[0] != byte(i) {
			t.Errorf("item %d after reopen: %v", i, iv)
		}
	}
}

func TestWALCompactAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWAL(WALOptions{Dir: dir, Items: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 10; v++ {
		s.Apply(core.ItemVersion{Item: 1, Version: core.TxnID(v), Value: []byte{byte(v)}})
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-compaction writes land in the fresh log.
	s.Apply(core.ItemVersion{Item: 2, Version: 99, Value: []byte("after")})
	s.Close()

	re, err := OpenWAL(WALOptions{Dir: dir, Items: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	iv, _ := re.Get(1)
	if iv.Version != 10 || iv.Value[0] != 10 {
		t.Errorf("item 1 = %v", iv)
	}
	iv, _ = re.Get(2)
	if iv.Version != 99 || string(iv.Value) != "after" {
		t.Errorf("item 2 = %v", iv)
	}
}

func TestWALAutoCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWAL(WALOptions{Dir: dir, Items: 2, CompactEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 12; v++ {
		s.Apply(core.ItemVersion{Item: 0, Version: core.TxnID(v), Value: []byte{byte(v)}})
	}
	s.Close()
	re, err := OpenWAL(WALOptions{Dir: dir, Items: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	iv, _ := re.Get(0)
	if iv.Version != 12 {
		t.Errorf("after auto-compactions: %v", iv)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWAL(WALOptions{Dir: dir, Items: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Apply(core.ItemVersion{Item: 0, Version: 1, Value: []byte("good")})
	s.Apply(core.ItemVersion{Item: 1, Version: 2, Value: []byte("alsogood")})
	s.Close()

	// Simulate a crash mid-append: chop bytes off the final record.
	path := dir + "/" + walFile
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	re, err := OpenWAL(WALOptions{Dir: dir, Items: 2})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer re.Close()
	iv, _ := re.Get(0)
	if iv.Version != 1 || string(iv.Value) != "good" {
		t.Errorf("intact record lost: %v", iv)
	}
	iv, _ = re.Get(1)
	if iv.Version != 0 {
		t.Errorf("torn record partially applied: %v", iv)
	}
	// The torn bytes must be gone so new appends start clean.
	re.Apply(core.ItemVersion{Item: 1, Version: 5, Value: []byte("retry")})
	re.Close()
	re2, err := OpenWAL(WALOptions{Dir: dir, Items: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	iv, _ = re2.Get(1)
	if iv.Version != 5 {
		t.Errorf("append after truncation lost: %v", iv)
	}
}

func TestWALSizeMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWAL(WALOptions{Dir: dir, Items: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.Apply(core.ItemVersion{Item: 0, Version: 1, Value: []byte("x")})
	s.Compact()
	s.Close()
	if _, err := OpenWAL(WALOptions{Dir: dir, Items: 8}); err == nil {
		t.Error("snapshot size mismatch accepted")
	}
}

func TestWALClosedStore(t *testing.T) {
	s, err := OpenWAL(WALOptions{Dir: t.TempDir(), Items: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Apply(core.ItemVersion{Item: 0, Version: 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("Apply on closed: %v", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact on closed: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestWALSyncMode(t *testing.T) {
	s, err := OpenWAL(WALOptions{Dir: t.TempDir(), Items: 1, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Apply(core.ItemVersion{Item: 0, Version: 1, Value: []byte("s")}); err != nil {
		t.Fatal(err)
	}
}

func TestWALBadItemCount(t *testing.T) {
	if _, err := OpenWAL(WALOptions{Dir: t.TempDir(), Items: 0}); err == nil {
		t.Error("zero items accepted")
	}
}

// Property: a MemStore and a WALStore fed the same random apply sequence
// agree item for item, and the WALStore still agrees after reopen.
func TestStoreEquivalenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const items = 6
		dir := t.TempDir()
		mem := NewMemStore(items, nil)
		wal, err := OpenWAL(WALOptions{Dir: dir, Items: items, CompactEvery: 7})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 60; i++ {
			iv := core.ItemVersion{
				Item:    core.ItemID(rng.Intn(items)),
				Version: core.TxnID(rng.Intn(20)),
				Value:   []byte{byte(rng.Intn(256))},
			}
			a1, e1 := mem.Apply(iv)
			a2, e2 := wal.Apply(iv)
			if a1 != a2 || (e1 == nil) != (e2 == nil) {
				return false
			}
		}
		wal.Close()
		re, err := OpenWAL(WALOptions{Dir: dir, Items: items})
		if err != nil {
			return false
		}
		defer re.Close()
		for i := 0; i < items; i++ {
			a, _ := mem.Get(core.ItemID(i))
			b, _ := re.Get(core.ItemID(i))
			if a.Version != b.Version || !bytes.Equal(a.Value, b.Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestWALCrashAtEveryOffset simulates a crash at every possible point of a
// log write: for each prefix length of the final WAL file, reopening must
// succeed and recover exactly the records whose frames are intact — never
// a partial record, never an error.
func TestWALCrashAtEveryOffset(t *testing.T) {
	// Build a reference WAL.
	master := t.TempDir()
	s, err := OpenWAL(WALOptions{Dir: master, Items: 4})
	if err != nil {
		t.Fatal(err)
	}
	var versions []core.TxnID
	for v := 1; v <= 6; v++ {
		iv := core.ItemVersion{Item: core.ItemID(v % 4), Version: core.TxnID(v), Value: []byte{byte(v), byte(v)}}
		if _, err := s.Apply(iv); err != nil {
			t.Fatal(err)
		}
		versions = append(versions, iv.Version)
	}
	s.Close()
	walBytes, err := os.ReadFile(master + "/" + walFile)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(walBytes); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(dir+"/"+walFile, walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenWAL(WALOptions{Dir: dir, Items: 4})
		if err != nil {
			t.Fatalf("cut %d: reopen failed: %v", cut, err)
		}
		// Every recovered copy must be one of the written versions (or
		// the initial version 0) — no torn record may surface.
		maxSeen := core.TxnID(0)
		for i := 0; i < 4; i++ {
			iv, err := re.Get(core.ItemID(i))
			if err != nil {
				t.Fatal(err)
			}
			if iv.Version != 0 {
				ok := false
				for _, v := range versions {
					if iv.Version == v {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("cut %d: item %d has unknown version %d", cut, i, iv.Version)
				}
				if len(iv.Value) != 2 || iv.Value[0] != byte(iv.Version) {
					t.Fatalf("cut %d: item %d torn value %v for version %d", cut, i, iv.Value, iv.Version)
				}
			}
			if iv.Version > maxSeen {
				maxSeen = iv.Version
			}
		}
		// Recovery is prefix-faithful: a longer prefix never recovers
		// fewer records. (maxSeen is monotone in cut; spot-check ends.)
		if cut == len(walBytes) && maxSeen != versions[len(versions)-1] {
			t.Fatalf("full log recovered only up to version %d", maxSeen)
		}
		if cut == 0 && maxSeen != 0 {
			t.Fatalf("empty log recovered version %d", maxSeen)
		}
		// The store must accept new writes after any crash point.
		if _, err := re.Apply(core.ItemVersion{Item: 0, Version: 100, Value: []byte{9, 9}}); err != nil {
			t.Fatalf("cut %d: apply after recovery: %v", cut, err)
		}
		re.Close()
	}
}
