package storage

import (
	"fmt"
	"sync"

	"minraid/internal/core"
)

// MemStore is the paper-faithful store: every copy lives in the site
// process's memory, reads and writes cost no I/O. It is safe for concurrent
// use; the site event loop is the usual single writer, but status dumps and
// audits may read concurrently.
type MemStore struct {
	mu     sync.RWMutex
	copies []core.ItemVersion
}

// NewMemStore returns a store of items copies, all at version 0 with the
// given initial value (which may be nil).
func NewMemStore(items int, initial []byte) *MemStore {
	if items <= 0 {
		panic(fmt.Sprintf("storage: item count %d out of range", items))
	}
	copies := make([]core.ItemVersion, items)
	for i := range copies {
		copies[i] = core.ItemVersion{Item: core.ItemID(i), Version: 0, Value: cloneBytes(initial)}
	}
	return &MemStore{copies: copies}
}

// Items implements Store.
func (s *MemStore) Items() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.copies)
}

// Get implements Store.
func (s *MemStore) Get(item core.ItemID) (core.ItemVersion, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(item) >= len(s.copies) {
		return core.ItemVersion{}, fmt.Errorf("%w: %d of %d", ErrNoItem, item, len(s.copies))
	}
	iv := s.copies[item]
	iv.Value = cloneBytes(iv.Value)
	return iv, nil
}

// Apply implements Store.
func (s *MemStore) Apply(iv core.ItemVersion) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyLocked(iv)
}

func (s *MemStore) applyLocked(iv core.ItemVersion) (bool, error) {
	if int(iv.Item) >= len(s.copies) {
		return false, fmt.Errorf("%w: %d of %d", ErrNoItem, iv.Item, len(s.copies))
	}
	cur := &s.copies[iv.Item]
	if iv.Version < cur.Version {
		return false, nil // stale copy: keep the newer one
	}
	cur.Version = iv.Version
	cur.Value = cloneBytes(iv.Value)
	return true, nil
}

// Dump implements Store.
func (s *MemStore) Dump(first, last core.ItemID) ([]core.ItemVersion, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	first, last, err := validRange(len(s.copies), first, last)
	if err != nil {
		return nil, err
	}
	out := make([]core.ItemVersion, 0, last-first+1)
	for i := first; i <= last; i++ {
		iv := s.copies[i]
		iv.Value = cloneBytes(iv.Value)
		out = append(out, iv)
	}
	return out, nil
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

var _ Store = (*MemStore)(nil)
