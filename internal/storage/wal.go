package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"minraid/internal/core"
	"minraid/internal/wire"
)

// Frame kinds inside snapshot and log files.
const (
	frameHeader byte = 1 // snapshot header: item count
	frameRecord byte = 2 // one versioned copy
)

const (
	snapshotFile = "snapshot"
	walFile      = "wal"
)

// WALOptions configures a durable store.
type WALOptions struct {
	// Dir is the directory holding the snapshot and log files. It is
	// created if missing.
	Dir string
	// Items is the database size; must match any existing snapshot.
	Items int
	// Initial is the version-0 value of every item.
	Initial []byte
	// Sync forces an fsync after every applied write. Without it the OS
	// page cache absorbs the cost, which is the usual configuration for
	// the experiments (the paper factored data I/O out entirely).
	Sync bool
	// GroupCommit batches concurrent Appends into one write+fsync: each
	// Apply enqueues its record and blocks until a committer goroutine
	// flushes the accumulated batch. The committer is notifier-driven
	// (woken on first enqueue, no ticker latency when idle); while one
	// batch's write+fsync is in flight, later arrivals accumulate into
	// the next batch, so the fsync cost is amortized across however many
	// transactions commit during one device flush. A lone writer
	// degenerates to one fsync per record, same as without the option.
	GroupCommit bool
	// CompactEvery triggers snapshot compaction after that many applied
	// records. Zero disables automatic compaction.
	CompactEvery int
}

// walBatch is one group-commit batch: encoded frames from concurrent
// Applies, flushed by the committer in a single write+fsync.
type walBatch struct {
	buf  []byte
	recs int
	err  error
	done chan struct{} // closed after flush; err is then readable
}

// WALStore is a MemStore with an append-only, CRC-framed redo log and
// snapshot compaction. Reopening a directory replays the snapshot and log,
// recovering every committed copy; a torn final record (partial write
// during a crash) is detected by the frame CRC and truncated away.
//
// Two locks: mu orders memory installs, batch accumulation and the closed
// flag; logMu owns the log file, its end offset and compaction. mu may be
// held while taking logMu, never the reverse.
type WALStore struct {
	mu     sync.Mutex
	mem    *MemStore
	opts   WALOptions
	closed bool
	batch  *walBatch // group commit: the accumulating batch

	logMu     sync.Mutex
	log       *os.File
	off       int64 // end offset of the last well-formed record
	logFailed error // fail-stop sticky error after unrecoverable append
	appends   int

	// kick wakes the committer; quit stops it; committerDone reports it
	// has flushed the final batch and exited.
	kick          chan struct{}
	quit          chan struct{}
	committerDone chan struct{}

	// testWrite, when non-nil, replaces log.Write in appendLocked so
	// tests can inject partial writes. Guarded by logMu.
	testWrite func([]byte) (int, error)
}

// OpenWAL opens or creates a durable store in opts.Dir.
func OpenWAL(opts WALOptions) (*WALStore, error) {
	if opts.Items <= 0 {
		return nil, fmt.Errorf("storage: item count %d out of range", opts.Items)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating %s: %w", opts.Dir, err)
	}
	s := &WALStore{mem: NewMemStore(opts.Items, opts.Initial), opts: opts}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayLog(); err != nil {
		return nil, err
	}
	log, err := os.OpenFile(filepath.Join(opts.Dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: opening log: %w", err)
	}
	s.log = log
	if opts.GroupCommit {
		s.kick = make(chan struct{}, 1)
		s.quit = make(chan struct{})
		s.committerDone = make(chan struct{})
		go s.committer()
	}
	return s, nil
}

func encodeRecord(iv core.ItemVersion) []byte {
	enc := wire.NewEncoder(16 + len(iv.Value))
	enc.Uvarint(uint64(iv.Item))
	enc.Uvarint(uint64(iv.Version))
	enc.PutBytes(iv.Value)
	return enc.Bytes()
}

func decodeRecord(payload []byte) (core.ItemVersion, error) {
	dec := wire.NewDecoder(payload)
	iv := core.ItemVersion{
		Item:    core.ItemID(dec.Uvarint()),
		Version: core.TxnID(dec.Uvarint()),
		Value:   dec.Bytes(),
	}
	if err := dec.Finish(); err != nil {
		return core.ItemVersion{}, err
	}
	return iv, nil
}

// encodeFrame returns the full on-disk frame (header + payload) for one
// record, so an append is a single Write call: either the whole frame
// reaches the file or the error path truncates back to the previous
// record boundary — a failed append never leaves framing garbage that a
// later successful append would bury mid-log.
func encodeFrame(iv core.ItemVersion) []byte {
	var bb bytes.Buffer
	// Writing to a bytes.Buffer cannot fail; the only WriteFrame error is
	// the size limit, impossible for an 8-byte-payload record.
	if err := wire.WriteFrame(&bb, frameRecord, encodeRecord(iv)); err != nil {
		panic(err)
	}
	return bb.Bytes()
}

// loadSnapshot restores the memory image from the snapshot file, if any.
func (s *WALStore) loadSnapshot() error {
	f, err := os.Open(filepath.Join(s.opts.Dir, snapshotFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: opening snapshot: %w", err)
	}
	defer f.Close()
	kind, payload, err := wire.ReadFrame(f)
	if err != nil {
		return fmt.Errorf("storage: snapshot header: %w", err)
	}
	if kind != frameHeader {
		return fmt.Errorf("storage: snapshot starts with frame kind %d", kind)
	}
	dec := wire.NewDecoder(payload)
	n := dec.Uvarint()
	if err := dec.Finish(); err != nil {
		return fmt.Errorf("storage: snapshot header: %w", err)
	}
	if int(n) != s.opts.Items {
		return fmt.Errorf("storage: snapshot holds %d items, configured for %d", n, s.opts.Items)
	}
	for {
		kind, payload, err := wire.ReadFrame(f)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("storage: reading snapshot: %w", err)
		}
		if kind != frameRecord {
			return fmt.Errorf("storage: snapshot frame kind %d", kind)
		}
		iv, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("storage: snapshot record: %w", err)
		}
		if _, err := s.mem.Apply(iv); err != nil {
			return err
		}
	}
}

// replayLog applies every intact log record and truncates a torn tail,
// leaving s.off at the end of the last well-formed record.
func (s *WALStore) replayLog() error {
	path := filepath.Join(s.opts.Dir, walFile)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: opening log: %w", err)
	}
	defer f.Close()
	var valid int64
	for {
		kind, payload, err := wire.ReadFrame(f)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn or corrupt tail: everything before it is intact.
			if terr := os.Truncate(path, valid); terr != nil {
				return fmt.Errorf("storage: truncating torn log: %w", terr)
			}
			break
		}
		if kind != frameRecord {
			return fmt.Errorf("storage: log frame kind %d", kind)
		}
		iv, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("storage: log record: %w", err)
		}
		if _, err := s.mem.Apply(iv); err != nil {
			return err
		}
		pos, err := f.Seek(0, io.SeekCurrent)
		if err != nil {
			return err
		}
		valid = pos
	}
	s.off = valid
	return nil
}

// Items implements Store.
func (s *WALStore) Items() int { return s.mem.Items() }

// Get implements Store.
func (s *WALStore) Get(item core.ItemID) (core.ItemVersion, error) { return s.mem.Get(item) }

// Apply implements Store: install in memory, then append to the redo log
// (directly, or via the group-commit batch).
func (s *WALStore) Apply(iv core.ItemVersion) (bool, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, ErrClosed
	}
	applied, err := s.mem.Apply(iv)
	if err != nil || !applied {
		s.mu.Unlock()
		return applied, err
	}

	if s.opts.GroupCommit {
		// Enqueue into the accumulating batch and wait for the committer.
		if s.batch == nil {
			s.batch = &walBatch{done: make(chan struct{})}
		}
		b := s.batch
		b.buf = append(b.buf, encodeFrame(iv)...)
		b.recs++
		s.mu.Unlock()
		select {
		case s.kick <- struct{}{}:
		default: // committer already signalled
		}
		<-b.done
		if b.err != nil {
			return false, b.err
		}
		return true, nil
	}

	// Direct append. mu stays held so log order matches memory order in
	// the serial configuration (not required for correctness — replay is
	// idempotent and version-monotone — but keeps the log readable).
	s.logMu.Lock()
	err = s.appendLocked(encodeFrame(iv), 1)
	s.logMu.Unlock()
	s.mu.Unlock()
	if err != nil {
		return false, err
	}
	return true, nil
}

// appendLocked writes pre-encoded frames to the log, fsyncs if
// configured, and runs threshold compaction. Callers hold logMu.
//
// This is the partial-write window: a crash or I/O error mid-write can
// leave a torn frame at the tail. A torn *tail* is recoverable (replayLog
// truncates it), but only if it stays the tail — if a later append
// succeeded after a failed one, the torn bytes would sit mid-log and
// replay would stop there, silently dropping the committed suffix. So a
// failed write truncates back to the last well-formed boundary before
// returning; if even that fails, the log is declared failed and every
// later append is refused (fail-stop) rather than risk burying the tear.
func (s *WALStore) appendLocked(frames []byte, recs int) error {
	if s.logFailed != nil {
		return s.logFailed
	}
	write := s.log.Write
	if s.testWrite != nil {
		write = s.testWrite
	}
	if _, err := write(frames); err != nil {
		if terr := s.log.Truncate(s.off); terr != nil {
			s.logFailed = fmt.Errorf("storage: log failed: append (%v) then truncate-back: %w", err, terr)
			return s.logFailed
		}
		return fmt.Errorf("storage: appending log: %w", err)
	}
	s.off += int64(len(frames))
	if s.opts.Sync {
		if err := s.log.Sync(); err != nil {
			return fmt.Errorf("storage: syncing log: %w", err)
		}
	}
	s.appends += recs
	if s.opts.CompactEvery > 0 && s.appends >= s.opts.CompactEvery {
		return s.compactLocked()
	}
	return nil
}

// committer is the group-commit flush loop: woken by the first record of
// a batch, it swaps the batch out and flushes it while later arrivals
// accumulate into the next one.
func (s *WALStore) committer() {
	defer close(s.committerDone)
	for {
		select {
		case <-s.kick:
			s.flushBatch()
		case <-s.quit:
			s.flushBatch() // final flush: nothing enqueues after closed
			return
		}
	}
}

// flushBatch writes the current batch (if any) in one write+fsync and
// wakes its waiters.
func (s *WALStore) flushBatch() {
	s.mu.Lock()
	b := s.batch
	s.batch = nil
	s.mu.Unlock()
	if b == nil {
		return
	}
	s.logMu.Lock()
	b.err = s.appendLocked(b.buf, b.recs)
	s.logMu.Unlock()
	close(b.done)
}

// Dump implements Store.
func (s *WALStore) Dump(first, last core.ItemID) ([]core.ItemVersion, error) {
	return s.mem.Dump(first, last)
}

// Compact writes a fresh snapshot and truncates the log.
func (s *WALStore) Compact() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.mu.Unlock()
	s.logMu.Lock()
	defer s.logMu.Unlock()
	return s.compactLocked()
}

// compactLocked snapshots memory and truncates the log. Callers hold
// logMu. Under group commit the snapshot may include records whose batch
// has not flushed yet (memory runs ahead of the log); that direction is
// safe — the store can only be *more* durable than acknowledged, and
// replay of any superseded log record is rejected as stale.
func (s *WALStore) compactLocked() error {
	tmp := filepath.Join(s.opts.Dir, snapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: creating snapshot: %w", err)
	}
	hdr := wire.NewEncoder(8)
	hdr.Uvarint(uint64(s.mem.Items()))
	if err := wire.WriteFrame(f, frameHeader, hdr.Bytes()); err != nil {
		f.Close()
		return err
	}
	copies, err := s.mem.Dump(0, core.ItemID(s.mem.Items()-1))
	if err != nil {
		f.Close()
		return err
	}
	for _, iv := range copies {
		if err := wire.WriteFrame(f, frameRecord, encodeRecord(iv)); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.opts.Dir, snapshotFile)); err != nil {
		return fmt.Errorf("storage: installing snapshot: %w", err)
	}
	// The rename must be durable before the log shrinks: without the
	// directory fsync a crash can surface the old directory entry (old or
	// missing snapshot) next to an already-truncated log, losing every
	// committed write the old log held. Only after the directory entry is
	// on disk is the log's content really covered by the snapshot.
	if err := syncDir(s.opts.Dir); err != nil {
		return err
	}
	if err := s.log.Truncate(0); err != nil {
		return fmt.Errorf("storage: truncating log: %w", err)
	}
	if _, err := s.log.Seek(0, io.SeekStart); err != nil {
		return err
	}
	s.off = 0
	s.appends = 0
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: opening dir for sync: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("storage: syncing dir: %w", err)
	}
	return d.Close()
}

// Close implements Store. Under group commit the committer flushes any
// accumulated batch before the log is synced and closed, so every Apply
// that was acknowledged — and any still blocked in a batch — is durable.
func (s *WALStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if s.opts.GroupCommit {
		close(s.quit)
		<-s.committerDone
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if err := s.log.Sync(); err != nil {
		s.log.Close()
		return err
	}
	return s.log.Close()
}

var _ Store = (*WALStore)(nil)
