package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"minraid/internal/core"
	"minraid/internal/wire"
)

// Frame kinds inside snapshot and log files.
const (
	frameHeader byte = 1 // snapshot header: item count
	frameRecord byte = 2 // one versioned copy
)

const (
	snapshotFile = "snapshot"
	walFile      = "wal"
)

// WALOptions configures a durable store.
type WALOptions struct {
	// Dir is the directory holding the snapshot and log files. It is
	// created if missing.
	Dir string
	// Items is the database size; must match any existing snapshot.
	Items int
	// Initial is the version-0 value of every item.
	Initial []byte
	// Sync forces an fsync after every applied write. Without it the OS
	// page cache absorbs the cost, which is the usual configuration for
	// the experiments (the paper factored data I/O out entirely).
	Sync bool
	// CompactEvery triggers snapshot compaction after that many applied
	// records. Zero disables automatic compaction.
	CompactEvery int
}

// WALStore is a MemStore with an append-only, CRC-framed redo log and
// snapshot compaction. Reopening a directory replays the snapshot and log,
// recovering every committed copy; a torn final record (partial write
// during a crash) is detected by the frame CRC and truncated away.
type WALStore struct {
	mu      sync.Mutex
	mem     *MemStore
	opts    WALOptions
	log     *os.File
	appends int
	closed  bool
}

// OpenWAL opens or creates a durable store in opts.Dir.
func OpenWAL(opts WALOptions) (*WALStore, error) {
	if opts.Items <= 0 {
		return nil, fmt.Errorf("storage: item count %d out of range", opts.Items)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating %s: %w", opts.Dir, err)
	}
	s := &WALStore{mem: NewMemStore(opts.Items, opts.Initial), opts: opts}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayLog(); err != nil {
		return nil, err
	}
	log, err := os.OpenFile(filepath.Join(opts.Dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: opening log: %w", err)
	}
	s.log = log
	return s, nil
}

func encodeRecord(iv core.ItemVersion) []byte {
	enc := wire.NewEncoder(16 + len(iv.Value))
	enc.Uvarint(uint64(iv.Item))
	enc.Uvarint(uint64(iv.Version))
	enc.PutBytes(iv.Value)
	return enc.Bytes()
}

func decodeRecord(payload []byte) (core.ItemVersion, error) {
	dec := wire.NewDecoder(payload)
	iv := core.ItemVersion{
		Item:    core.ItemID(dec.Uvarint()),
		Version: core.TxnID(dec.Uvarint()),
		Value:   dec.Bytes(),
	}
	if err := dec.Finish(); err != nil {
		return core.ItemVersion{}, err
	}
	return iv, nil
}

// loadSnapshot restores the memory image from the snapshot file, if any.
func (s *WALStore) loadSnapshot() error {
	f, err := os.Open(filepath.Join(s.opts.Dir, snapshotFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: opening snapshot: %w", err)
	}
	defer f.Close()
	kind, payload, err := wire.ReadFrame(f)
	if err != nil {
		return fmt.Errorf("storage: snapshot header: %w", err)
	}
	if kind != frameHeader {
		return fmt.Errorf("storage: snapshot starts with frame kind %d", kind)
	}
	dec := wire.NewDecoder(payload)
	n := dec.Uvarint()
	if err := dec.Finish(); err != nil {
		return fmt.Errorf("storage: snapshot header: %w", err)
	}
	if int(n) != s.opts.Items {
		return fmt.Errorf("storage: snapshot holds %d items, configured for %d", n, s.opts.Items)
	}
	for {
		kind, payload, err := wire.ReadFrame(f)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("storage: reading snapshot: %w", err)
		}
		if kind != frameRecord {
			return fmt.Errorf("storage: snapshot frame kind %d", kind)
		}
		iv, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("storage: snapshot record: %w", err)
		}
		if _, err := s.mem.Apply(iv); err != nil {
			return err
		}
	}
}

// replayLog applies every intact log record and truncates a torn tail.
func (s *WALStore) replayLog() error {
	path := filepath.Join(s.opts.Dir, walFile)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: opening log: %w", err)
	}
	defer f.Close()
	var valid int64
	for {
		kind, payload, err := wire.ReadFrame(f)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn or corrupt tail: everything before it is intact.
			if terr := os.Truncate(path, valid); terr != nil {
				return fmt.Errorf("storage: truncating torn log: %w", terr)
			}
			break
		}
		if kind != frameRecord {
			return fmt.Errorf("storage: log frame kind %d", kind)
		}
		iv, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("storage: log record: %w", err)
		}
		if _, err := s.mem.Apply(iv); err != nil {
			return err
		}
		pos, err := f.Seek(0, io.SeekCurrent)
		if err != nil {
			return err
		}
		valid = pos
	}
	return nil
}

// Items implements Store.
func (s *WALStore) Items() int { return s.mem.Items() }

// Get implements Store.
func (s *WALStore) Get(item core.ItemID) (core.ItemVersion, error) { return s.mem.Get(item) }

// Apply implements Store: install in memory, then append to the redo log.
func (s *WALStore) Apply(iv core.ItemVersion) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	applied, err := s.mem.Apply(iv)
	if err != nil || !applied {
		return applied, err
	}
	if err := wire.WriteFrame(s.log, frameRecord, encodeRecord(iv)); err != nil {
		return false, fmt.Errorf("storage: appending log: %w", err)
	}
	if s.opts.Sync {
		if err := s.log.Sync(); err != nil {
			return false, fmt.Errorf("storage: syncing log: %w", err)
		}
	}
	s.appends++
	if s.opts.CompactEvery > 0 && s.appends >= s.opts.CompactEvery {
		if err := s.compactLocked(); err != nil {
			return false, err
		}
	}
	return true, nil
}

// Dump implements Store.
func (s *WALStore) Dump(first, last core.ItemID) ([]core.ItemVersion, error) {
	return s.mem.Dump(first, last)
}

// Compact writes a fresh snapshot and truncates the log.
func (s *WALStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

func (s *WALStore) compactLocked() error {
	tmp := filepath.Join(s.opts.Dir, snapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: creating snapshot: %w", err)
	}
	hdr := wire.NewEncoder(8)
	hdr.Uvarint(uint64(s.mem.Items()))
	if err := wire.WriteFrame(f, frameHeader, hdr.Bytes()); err != nil {
		f.Close()
		return err
	}
	copies, err := s.mem.Dump(0, core.ItemID(s.mem.Items()-1))
	if err != nil {
		f.Close()
		return err
	}
	for _, iv := range copies {
		if err := wire.WriteFrame(f, frameRecord, encodeRecord(iv)); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.opts.Dir, snapshotFile)); err != nil {
		return fmt.Errorf("storage: installing snapshot: %w", err)
	}
	// The rename must be durable before the log shrinks: without the
	// directory fsync a crash can surface the old directory entry (old or
	// missing snapshot) next to an already-truncated log, losing every
	// committed write the old log held. Only after the directory entry is
	// on disk is the log's content really covered by the snapshot.
	if err := syncDir(s.opts.Dir); err != nil {
		return err
	}
	if err := s.log.Truncate(0); err != nil {
		return fmt.Errorf("storage: truncating log: %w", err)
	}
	if _, err := s.log.Seek(0, io.SeekStart); err != nil {
		return err
	}
	s.appends = 0
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: opening dir for sync: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("storage: syncing dir: %w", err)
	}
	return d.Close()
}

// Close implements Store.
func (s *WALStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.log.Sync(); err != nil {
		s.log.Close()
		return err
	}
	return s.log.Close()
}

var _ Store = (*WALStore)(nil)
