package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"minraid/internal/core"
)

// TestWALPartialAppendWindow is the regression test for the
// partial-write window in Apply: a failed append used to leave its torn
// bytes in place while later appends succeeded after them, so replay —
// which must stop at the first corrupt frame — silently dropped the
// committed suffix. The fix truncates back to the last well-formed
// record boundary before returning the error.
func TestWALPartialAppendWindow(t *testing.T) {
	const items = 2
	dir := t.TempDir()
	s, err := OpenWAL(WALOptions{Dir: dir, Items: items})
	if err != nil {
		t.Fatal(err)
	}

	// A good record, then an injected torn write (half the frame reaches
	// the file), then another good record.
	if _, err := s.Apply(core.ItemVersion{Item: 0, Version: 1, Value: []byte{1, 0}}); err != nil {
		t.Fatal(err)
	}
	s.logMu.Lock()
	s.testWrite = func(b []byte) (int, error) {
		n, _ := s.log.Write(b[:len(b)/2])
		return n, errors.New("injected: disk full mid-frame")
	}
	s.logMu.Unlock()
	if _, err := s.Apply(core.ItemVersion{Item: 1, Version: 1, Value: []byte{1, 1}}); err == nil {
		t.Fatal("torn append reported success")
	}
	s.logMu.Lock()
	s.testWrite = nil
	s.logMu.Unlock()
	if _, err := s.Apply(core.ItemVersion{Item: 0, Version: 2, Value: []byte{2, 0}}); err != nil {
		t.Fatalf("append after recovered torn write: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay must recover BOTH good records. Before the truncate-back
	// fix the log was [item0 v1][torn][item0 v2]: replay stopped at the
	// tear and item 0 came back as version 1.
	re, err := OpenWAL(WALOptions{Dir: dir, Items: items})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	iv, err := re.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Version != 2 {
		t.Fatalf("item 0 replayed as version %d, want 2 (suffix after torn write lost)", iv.Version)
	}
	// The torn record itself must not have survived.
	if iv, err := re.Get(1); err != nil || iv.Version != 0 {
		t.Fatalf("torn record leaked into replay: %v %v", iv, err)
	}
}

// TestWALFailStopAfterUnrecoverableAppend covers the fail-stop branch:
// when the truncate-back itself fails, the log must refuse all further
// appends instead of burying the tear under later records.
func TestWALFailStopAfterUnrecoverableAppend(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWAL(WALOptions{Dir: dir, Items: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(core.ItemVersion{Item: 0, Version: 1, Value: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	// Close the descriptor out from under the store: the write fails and
	// so does the truncate-back.
	s.log.Close()
	if _, err := s.Apply(core.ItemVersion{Item: 0, Version: 2, Value: []byte{2}}); err == nil {
		t.Fatal("append on a dead log reported success")
	}
	if _, err := s.Apply(core.ItemVersion{Item: 0, Version: 3, Value: []byte{3}}); err == nil {
		t.Fatal("append after unrecoverable failure must fail-stop")
	}
	s.logMu.Lock()
	failed := s.logFailed
	s.logMu.Unlock()
	if failed == nil {
		t.Fatal("logFailed not latched")
	}
}

// TestWALGroupCommitDurability drives concurrent appliers through the
// group-commit path with per-write sync and checks every acknowledged
// record survives reopen.
func TestWALGroupCommitDurability(t *testing.T) {
	const items = 8
	dir := t.TempDir()
	s, err := OpenWAL(WALOptions{Dir: dir, Items: items, Sync: true, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, items)
	for i := 0; i < items; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for v := 1; v <= 5; v++ {
				if _, err := s.Apply(core.ItemVersion{Item: core.ItemID(i), Version: core.TxnID(v), Value: []byte{byte(v), byte(i)}}); err != nil {
					errCh <- fmt.Errorf("item %d v%d: %w", i, v, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenWAL(WALOptions{Dir: dir, Items: items})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	checkVersions(t, re, items, 5)
}

// TestWALGroupCommitBatches proves appends actually coalesce: while the
// committer is stalled inside the first flush, further appliers must
// accumulate into one batch that flushes as a single write.
func TestWALGroupCommitBatches(t *testing.T) {
	const followers = 6
	dir := t.TempDir()
	s, err := OpenWAL(WALOptions{Dir: dir, Items: followers + 1, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var (
		writeCalls int
		entered    = make(chan struct{})
		release    = make(chan struct{})
		first      = true
	)
	s.logMu.Lock()
	s.testWrite = func(b []byte) (int, error) {
		writeCalls++
		if first {
			first = false
			close(entered)
			<-release // stall the first flush
		}
		return s.log.Write(b)
	}
	s.logMu.Unlock()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Apply(core.ItemVersion{Item: 0, Version: 1, Value: []byte{1}}); err != nil {
			t.Error(err)
		}
	}()
	<-entered // committer is now stalled flushing record 0

	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Apply(core.ItemVersion{Item: core.ItemID(i), Version: 1, Value: []byte{byte(i)}}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	// Wait until all followers sit in the accumulating batch.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		n := 0
		if s.batch != nil {
			n = s.batch.recs
		}
		s.mu.Unlock()
		if n == followers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d followers accumulated", n, followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	s.logMu.Lock()
	calls := writeCalls
	s.testWrite = nil
	s.logMu.Unlock()
	if calls != 2 {
		t.Errorf("%d records flushed in %d writes, want 2 (1 + one coalesced batch)", followers+1, calls)
	}
}
