package netsched

import (
	"fmt"
	"math/rand"

	"minraid/internal/core"
	"minraid/internal/transport"
)

// RandomConfig parameterizes a randomized link-fault schedule. Like
// failure.Random, the generator is a pure function of (config, rng
// state), so a soak epoch's partition event stream is reproducible from
// its seed.
type RandomConfig struct {
	// Sites is the number of database sites.
	Sites int
	// Txns is the number of transactions the schedule spans.
	Txns int
	// Episodes is how many fault episodes (cut ... heal) to attempt.
	// Episodes that no longer fit before Txns are dropped. Defaults to
	// one per twelve transactions.
	Episodes int
	// MinHold and MaxHold bound how many transactions an episode stays
	// active before its heal (defaults 2 and 5).
	MinHold, MaxHold int
	// Kinds restricts the fault kinds drawn. Defaults to all three
	// (Partition, OneWay, Cut). Heal is implicit.
	Kinds []Kind
}

func (c *RandomConfig) fillDefaults() error {
	if c.Sites < 2 || c.Sites > core.MaxSites {
		return fmt.Errorf("netsched: random schedule needs 2..%d sites, got %d", core.MaxSites, c.Sites)
	}
	if c.Txns < 1 {
		return fmt.Errorf("netsched: random schedule needs >= 1 txn, got %d", c.Txns)
	}
	if c.Episodes == 0 {
		c.Episodes = c.Txns/12 + 1
	}
	if c.MinHold <= 0 {
		c.MinHold = 2
	}
	if c.MaxHold < c.MinHold {
		c.MaxHold = c.MinHold + 3
	}
	if len(c.Kinds) == 0 {
		c.Kinds = []Kind{Partition, OneWay, Cut}
	}
	for _, k := range c.Kinds {
		if k == Heal {
			return fmt.Errorf("netsched: Heal is implicit and cannot be drawn as a fault kind")
		}
	}
	return nil
}

// Random draws a valid schedule from rng: non-overlapping fault episodes
// at random transaction boundaries, each healed MinHold..MaxHold
// transactions later. Sites never fail here — netsched cuts links, the
// failure package fails sites; a soak composes both. Identical (config,
// rng state) produce identical schedules.
func Random(cfg RandomConfig, rng *rand.Rand) (Schedule, error) {
	if err := cfg.fillDefaults(); err != nil {
		return Schedule{}, err
	}
	sched := Schedule{Sites: cfg.Sites, Txns: cfg.Txns}
	spread := cfg.Txns/cfg.Episodes + 1
	next := 1
	for ep := 0; ep < cfg.Episodes; ep++ {
		start := next + rng.Intn(spread)
		hold := cfg.MinHold + rng.Intn(cfg.MaxHold-cfg.MinHold+1)
		heal := start + hold
		if heal > cfg.Txns {
			break
		}
		fault := drawFault(cfg, rng)
		fault.BeforeTxn = start
		sched.Events = append(sched.Events, fault, Event{BeforeTxn: heal, Kind: Heal})
		next = heal + 1
	}
	if err := sched.Validate(); err != nil {
		return Schedule{}, fmt.Errorf("netsched: generated schedule invalid: %w", err)
	}
	return sched, nil
}

// drawFault draws one fault event (BeforeTxn unset).
func drawFault(cfg RandomConfig, rng *rand.Rand) Event {
	switch cfg.Kinds[rng.Intn(len(cfg.Kinds))] {
	case Partition:
		groups := 2
		if cfg.Sites >= 4 && rng.Intn(4) == 0 {
			groups = 3
		}
		return Event{Kind: Partition, Groups: drawGroups(cfg.Sites, groups, rng)}
	case OneWay:
		a, b := drawPair(cfg.Sites, rng)
		return Event{Kind: OneWay, Links: []transport.LinkID{{From: a, To: b}}}
	default:
		a, b := drawPair(cfg.Sites, rng)
		return Event{Kind: Cut, Links: []transport.LinkID{{From: a, To: b}}}
	}
}

// drawGroups splits all sites into n named, non-empty groups.
func drawGroups(sites, n int, rng *rand.Rand) []Group {
	assign := make([]int, sites)
	for i := range assign {
		assign[i] = rng.Intn(n)
	}
	// Repair empty groups deterministically: steal the first site of the
	// largest group.
	for g := 0; g < n; g++ {
		if countOf(assign, g) > 0 {
			continue
		}
		largest := 0
		for h := 1; h < n; h++ {
			if countOf(assign, h) > countOf(assign, largest) {
				largest = h
			}
		}
		for i := range assign {
			if assign[i] == largest {
				assign[i] = g
				break
			}
		}
	}
	out := make([]Group, n)
	for g := 0; g < n; g++ {
		out[g].Name = string(rune('A' + g))
		for i, a := range assign {
			if a == g {
				out[g].Sites = append(out[g].Sites, core.SiteID(i))
			}
		}
	}
	return out
}

func countOf(assign []int, g int) int {
	n := 0
	for _, a := range assign {
		if a == g {
			n++
		}
	}
	return n
}

// drawPair draws two distinct sites.
func drawPair(sites int, rng *rand.Rand) (core.SiteID, core.SiteID) {
	a := rng.Intn(sites)
	b := rng.Intn(sites - 1)
	if b >= a {
		b++
	}
	return core.SiteID(a), core.SiteID(b)
}
