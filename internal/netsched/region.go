package netsched

import (
	"fmt"
	"math/rand"

	"minraid/internal/core"
	"minraid/internal/transport"
)

// Region-sized events: WAN fault schedules operate on whole regions, not
// individual sites. The generators here take a site->region assignment
// as a plain []int (index = site id, value = region index) so netsched
// stays independent of the geo package that produces assignments.

// regionSites collects the sites of region r from an assignment.
func regionSites(assign []int, r int) []core.SiteID {
	var out []core.SiteID
	for i, a := range assign {
		if a == r {
			out = append(out, core.SiteID(i))
		}
	}
	return out
}

// regionName renders a region label for event groups.
func regionName(names []string, r int) string {
	if r < len(names) {
		return names[r]
	}
	return fmt.Sprintf("region%d", r)
}

// RegionPartition builds a Partition event cutting region r off from
// every other site, both directions — the "a whole region goes dark"
// fault. names labels the groups (falling back to regionN).
func RegionPartition(assign []int, names []string, r int) (Event, error) {
	cut := regionSites(assign, r)
	if len(cut) == 0 {
		return Event{}, fmt.Errorf("netsched: region %d has no sites", r)
	}
	var rest []core.SiteID
	for i, a := range assign {
		if a != r {
			rest = append(rest, core.SiteID(i))
		}
	}
	if len(rest) == 0 {
		return Event{}, fmt.Errorf("netsched: region %d holds every site; nothing to cut it from", r)
	}
	return Event{Kind: Partition, Groups: []Group{
		{Name: regionName(names, r), Sites: cut},
		{Name: "rest", Sites: rest},
	}}, nil
}

// RegionOneWay builds a OneWay event dropping every directed link from
// the sites of region from to the sites of region to — the asymmetric
// inter-region fault where one region's traffic to another blackholes
// while the reverse path stays up.
func RegionOneWay(assign []int, from, to int) (Event, error) {
	if from == to {
		return Event{}, fmt.Errorf("netsched: one-way region drop needs distinct regions, got %d", from)
	}
	src := regionSites(assign, from)
	dst := regionSites(assign, to)
	if len(src) == 0 || len(dst) == 0 {
		return Event{}, fmt.Errorf("netsched: regions %d->%d have %d and %d sites", from, to, len(src), len(dst))
	}
	var links []transport.LinkID
	for _, a := range src {
		for _, b := range dst {
			links = append(links, transport.LinkID{From: a, To: b})
		}
	}
	return Event{Kind: OneWay, Links: links}, nil
}

// RegionalConfig parameterizes a randomized region-sized fault schedule.
type RegionalConfig struct {
	// Assign maps site id -> region index; it defines both the site
	// count and the region count.
	Assign []int
	// Names labels regions in partition events (optional).
	Names []string
	// Txns is the number of transactions the schedule spans.
	Txns int
	// Episodes is how many fault episodes to attempt (default one per
	// twelve transactions, like Random).
	Episodes int
	// MinHold and MaxHold bound episode length in transactions
	// (defaults 2 and 5).
	MinHold, MaxHold int
}

func (c *RegionalConfig) regions() int {
	max := -1
	for _, a := range c.Assign {
		if a > max {
			max = a
		}
	}
	return max + 1
}

func (c *RegionalConfig) fillDefaults() error {
	if len(c.Assign) < 2 || len(c.Assign) > core.MaxSites {
		return fmt.Errorf("netsched: regional schedule needs 2..%d sites, got %d", core.MaxSites, len(c.Assign))
	}
	if c.regions() < 2 {
		return fmt.Errorf("netsched: regional schedule needs >= 2 regions, got %d", c.regions())
	}
	if c.Txns < 1 {
		return fmt.Errorf("netsched: regional schedule needs >= 1 txn, got %d", c.Txns)
	}
	if c.Episodes == 0 {
		c.Episodes = c.Txns/12 + 1
	}
	if c.MinHold <= 0 {
		c.MinHold = 2
	}
	if c.MaxHold < c.MinHold {
		c.MaxHold = c.MinHold + 3
	}
	return nil
}

// RandomRegional draws a valid region-sized fault schedule: each episode
// is either a region partition (a random region cut off, both
// directions) or a one-way inter-region drop (a random ordered region
// pair blackholed one way), healed MinHold..MaxHold transactions later.
// Identical (config, rng state) produce identical schedules.
func RandomRegional(cfg RegionalConfig, rng *rand.Rand) (Schedule, error) {
	if err := cfg.fillDefaults(); err != nil {
		return Schedule{}, err
	}
	regions := cfg.regions()
	sched := Schedule{Sites: len(cfg.Assign), Txns: cfg.Txns}
	spread := cfg.Txns/cfg.Episodes + 1
	next := 1
	for ep := 0; ep < cfg.Episodes; ep++ {
		start := next + rng.Intn(spread)
		hold := cfg.MinHold + rng.Intn(cfg.MaxHold-cfg.MinHold+1)
		heal := start + hold
		if heal > cfg.Txns {
			break
		}
		var fault Event
		var err error
		if rng.Intn(2) == 0 {
			fault, err = RegionPartition(cfg.Assign, cfg.Names, rng.Intn(regions))
		} else {
			a := rng.Intn(regions)
			b := rng.Intn(regions - 1)
			if b >= a {
				b++
			}
			fault, err = RegionOneWay(cfg.Assign, a, b)
		}
		if err != nil {
			return Schedule{}, err
		}
		fault.BeforeTxn = start
		sched.Events = append(sched.Events, fault, Event{BeforeTxn: heal, Kind: Heal})
		next = heal + 1
	}
	if err := sched.Validate(); err != nil {
		return Schedule{}, fmt.Errorf("netsched: generated regional schedule invalid: %w", err)
	}
	return sched, nil
}
