package netsched

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"minraid/internal/core"
	"minraid/internal/transport"
)

// assign6 spreads 6 sites over 3 regions round-robin, the shape wan3
// compiles for 6 sites: region 0 = {0,3}, 1 = {1,4}, 2 = {2,5}.
var assign6 = []int{0, 1, 2, 0, 1, 2}

func TestRegionPartitionCutsRegionFromRest(t *testing.T) {
	e, err := RegionPartition(assign6, []string{"us", "eu", "ap"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != Partition {
		t.Fatalf("kind = %v, want partition", e.Kind)
	}
	if len(e.Groups) != 2 || e.Groups[0].Name != "eu" || e.Groups[1].Name != "rest" {
		t.Fatalf("groups = %v", e.Groups)
	}
	if want := []core.SiteID{1, 4}; !reflect.DeepEqual(e.Groups[0].Sites, want) {
		t.Fatalf("cut sites = %v, want %v", e.Groups[0].Sites, want)
	}
	if want := []core.SiteID{0, 2, 3, 5}; !reflect.DeepEqual(e.Groups[1].Sites, want) {
		t.Fatalf("rest sites = %v, want %v", e.Groups[1].Sites, want)
	}
	// Every compiled down link crosses the region boundary.
	for _, l := range e.DownLinks() {
		inFrom := assign6[l.From] == 1
		inTo := assign6[l.To] == 1
		if inFrom == inTo {
			t.Fatalf("link %v does not cross the region boundary", l)
		}
	}
}

func TestRegionOneWayBlackholesDirectedLinks(t *testing.T) {
	e, err := RegionOneWay(assign6, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != OneWay {
		t.Fatalf("kind = %v, want one-way", e.Kind)
	}
	want := []transport.LinkID{
		{From: 2, To: 0}, {From: 2, To: 3},
		{From: 5, To: 0}, {From: 5, To: 3},
	}
	if !reflect.DeepEqual(e.Links, want) {
		t.Fatalf("links = %v, want %v", e.Links, want)
	}
}

func TestRegionEventErrors(t *testing.T) {
	if _, err := RegionPartition([]int{0, 0, 0}, nil, 0); err == nil {
		t.Fatal("partitioned a region holding every site")
	}
	if _, err := RegionPartition(assign6, nil, 9); err == nil {
		t.Fatal("partitioned an empty region")
	}
	if _, err := RegionOneWay(assign6, 1, 1); err == nil {
		t.Fatal("one-way drop accepted identical regions")
	}
}

func TestRandomRegionalDeterministic(t *testing.T) {
	cfg := RegionalConfig{Assign: assign6, Names: []string{"us", "eu", "ap"}, Txns: 60}
	a, err := RandomRegional(cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomRegional(cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Strings(), b.Strings()) || a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same seed diverged:\n%v\n%v", a.Strings(), b.Strings())
	}
	c, err := RandomRegional(cfg, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestRandomRegionalShape: over many seeds every generated schedule
// validates, every fault is region-sized, and both fault kinds occur.
func TestRandomRegionalShape(t *testing.T) {
	cfg := RegionalConfig{Assign: assign6, Txns: 80}
	parts, oneways := 0, 0
	for seed := int64(1); seed <= 30; seed++ {
		s, err := RandomRegional(cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, e := range s.Events {
			switch e.Kind {
			case Partition:
				parts++
				// One side is exactly a region.
				cut := e.Groups[0].Sites
				r := assign6[cut[0]]
				if !reflect.DeepEqual(cut, regionSites(assign6, r)) {
					t.Fatalf("seed %d: partition group %v is not region %d", seed, cut, r)
				}
			case OneWay:
				oneways++
			case Heal:
			default:
				t.Fatalf("seed %d: unexpected event kind %v", seed, e.Kind)
			}
		}
	}
	if parts == 0 || oneways == 0 {
		t.Fatalf("fault mix degenerate: %d partitions, %d one-ways", parts, oneways)
	}
}

func TestRandomRegionalRejectsBadConfig(t *testing.T) {
	if _, err := RandomRegional(RegionalConfig{Assign: []int{0, 0}, Txns: 10}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("accepted a single-region assignment")
	}
	if _, err := RandomRegional(RegionalConfig{Assign: assign6, Txns: 0}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("accepted zero transactions")
	}
}

// TestRegionalScheduleRendersRegionNames: the canonical rendering carries
// region labels, so soak logs and repro diffs read in WAN terms.
func TestRegionalScheduleRendersRegionNames(t *testing.T) {
	cfg := RegionalConfig{Assign: assign6, Names: []string{"us-east", "eu-west", "ap-south"}, Txns: 60}
	for seed := int64(1); seed <= 10; seed++ {
		s, err := RandomRegional(cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		rendered := strings.Join(s.Strings(), "; ")
		if strings.Contains(rendered, "partition") && !strings.Contains(rendered, "-") {
			t.Fatalf("seed %d: partition event lost its region label: %s", seed, rendered)
		}
	}
}
