package netsched

import (
	"math/rand"
	"reflect"
	"testing"

	"minraid/internal/core"
	"minraid/internal/transport"
)

// fakeLinks records SetLinkDown calls in order.
type fakeLinks struct {
	calls []call
	down  map[transport.LinkID]bool
}

type call struct {
	link transport.LinkID
	down bool
}

func newFakeLinks() *fakeLinks { return &fakeLinks{down: make(map[transport.LinkID]bool)} }

func (f *fakeLinks) SetLinkDown(from, to core.SiteID, down bool) {
	f.calls = append(f.calls, call{transport.LinkID{From: from, To: to}, down})
	if down {
		f.down[transport.LinkID{From: from, To: to}] = true
	} else {
		delete(f.down, transport.LinkID{From: from, To: to})
	}
}

func TestPartitionEventCompilesToCrossLinks(t *testing.T) {
	e := Event{
		Kind: Partition,
		Groups: []Group{
			{Name: "A", Sites: []core.SiteID{0}},
			{Name: "B", Sites: []core.SiteID{1, 2}},
		},
	}
	got := e.DownLinks()
	want := []transport.LinkID{
		{From: 0, To: 1}, {From: 0, To: 2},
		{From: 1, To: 0}, {From: 2, To: 0},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DownLinks = %v, want %v", got, want)
	}
	// A site outside every group keeps its links: a 4th site appears in
	// no compiled link.
	for _, l := range got {
		if l.From == 3 || l.To == 3 {
			t.Fatalf("ungrouped site 3 appears in %v", l)
		}
	}
}

func TestCutCompilesBothDirections(t *testing.T) {
	e := Event{Kind: Cut, Links: []transport.LinkID{{From: 2, To: 0}}}
	want := []transport.LinkID{{From: 0, To: 2}, {From: 2, To: 0}}
	if got := e.DownLinks(); !reflect.DeepEqual(got, want) {
		t.Fatalf("DownLinks = %v, want %v", got, want)
	}
	one := Event{Kind: OneWay, Links: []transport.LinkID{{From: 2, To: 0}}}
	if got := one.DownLinks(); !reflect.DeepEqual(got, []transport.LinkID{{From: 2, To: 0}}) {
		t.Fatalf("OneWay DownLinks = %v", got)
	}
}

func TestValidateRejectsBadSchedules(t *testing.T) {
	part := Event{BeforeTxn: 1, Kind: Partition, Groups: []Group{
		{Name: "A", Sites: []core.SiteID{0}}, {Name: "B", Sites: []core.SiteID{1}},
	}}
	cases := []struct {
		name string
		s    Schedule
	}{
		{"heal without episode", Schedule{Sites: 3, Txns: 10, Events: []Event{{BeforeTxn: 2, Kind: Heal}}}},
		{"overlapping episodes", Schedule{Sites: 3, Txns: 10, Events: []Event{part,
			{BeforeTxn: 3, Kind: Cut, Links: []transport.LinkID{{From: 0, To: 1}}}}}},
		{"event out of range", Schedule{Sites: 3, Txns: 10, Events: []Event{{BeforeTxn: 11, Kind: Heal}}}},
		{"unsorted", Schedule{Sites: 3, Txns: 10, Events: []Event{
			{BeforeTxn: 5, Kind: Cut, Links: []transport.LinkID{{From: 0, To: 1}}},
			{BeforeTxn: 2, Kind: Heal}}}},
		{"site out of range", Schedule{Sites: 2, Txns: 10, Events: []Event{
			{BeforeTxn: 1, Kind: OneWay, Links: []transport.LinkID{{From: 0, To: 5}}}}}},
		{"self link", Schedule{Sites: 3, Txns: 10, Events: []Event{
			{BeforeTxn: 1, Kind: OneWay, Links: []transport.LinkID{{From: 1, To: 1}}}}}},
		{"overlapping groups", Schedule{Sites: 3, Txns: 10, Events: []Event{
			{BeforeTxn: 1, Kind: Partition, Groups: []Group{
				{Name: "A", Sites: []core.SiteID{0, 1}}, {Name: "B", Sites: []core.SiteID{1, 2}}}}}}},
	}
	for _, tc := range cases {
		if err := tc.s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid schedule", tc.name)
		}
	}
	ok := Schedule{Sites: 3, Txns: 10, Events: []Event{part, {BeforeTxn: 4, Kind: Heal}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestRandomIsDeterministic(t *testing.T) {
	cfg := RandomConfig{Sites: 4, Txns: 60}
	a, err := Random(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a.Strings(), b.Strings())
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
	c, err := Random(cfg, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Events) > 0 && len(a.Events) > 0 && a.Fingerprint() == c.Fingerprint() {
		t.Fatalf("different seeds produced identical fingerprints")
	}
	if len(a.Events) == 0 {
		t.Fatalf("60-txn schedule generated no episodes")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
}

func TestRandomManySeedsValidate(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		for _, sites := range []int{2, 3, 4, 7} {
			s, err := Random(RandomConfig{Sites: sites, Txns: 40}, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("seed %d sites %d: %v", seed, sites, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("seed %d sites %d: %v\n%v", seed, sites, err, s.Strings())
			}
		}
	}
}

func TestTopologyDrive(t *testing.T) {
	lc := newFakeLinks()
	top := NewTopology(3)
	fault := Event{Kind: Partition, Groups: []Group{
		{Name: "A", Sites: []core.SiteID{0}}, {Name: "B", Sites: []core.SiteID{1, 2}},
	}}
	top.Drive(lc, fault)
	if !top.Active() {
		t.Fatal("topology inactive after fault")
	}
	if top.Reachable(0, 1) || top.Reachable(2, 0) {
		t.Fatal("cross-group pairs reported reachable")
	}
	if !top.Reachable(1, 2) {
		t.Fatal("same-side pair reported unreachable")
	}
	if !top.Affected(0) || !top.Affected(1) || !top.Affected(2) {
		t.Fatal("partitioned sites not reported affected")
	}
	if len(lc.down) != 4 {
		t.Fatalf("%d links down, want 4", len(lc.down))
	}
	top.Drive(lc, Event{Kind: Heal})
	if top.Active() || len(lc.down) != 0 {
		t.Fatalf("heal left links down: %v", lc.down)
	}
	if top.Affected(0) {
		t.Fatal("site affected after heal")
	}
	// One-way cut: request direction dead, reply direction alive, but
	// the pair counts as unreachable for round-trip purposes.
	top.Drive(lc, Event{Kind: OneWay, Links: []transport.LinkID{{From: 0, To: 1}}})
	if top.Reachable(0, 1) || top.Reachable(1, 0) {
		t.Fatal("one-way cut pair reported reachable")
	}
	if top.Affected(2) {
		t.Fatal("bystander reported affected by one-way cut")
	}
}
