// Package netsched is a deterministic network-topology scheduler: from a
// (seed, config) pair it generates a timed stream of link-level fault
// events — symmetric partitions into named groups, asymmetric one-way
// drops, partial cuts, and heals — and drives them onto any network that
// exposes per-directed-link control (transport.Chaos, transport.Memory,
// or a cluster routing to either).
//
// The paper's experiments fail whole sites; fail-locks, however, are
// defined against "site failure or network partitioning" (§1.1), and a
// partition is the case the ROWAA strategy cannot survive alone: both
// sides of a symmetric cut declare the other failed and keep committing.
// The soak harness uses this package to schedule such cuts at transaction
// boundaries, reproducibly from a seed, so split-brain formation and
// heal-time reconciliation can be tested as ordinary regression runs.
//
// Like failure.Schedule, events fire at transaction boundaries
// (BeforeTxn), which keeps a run's event stream a pure function of the
// seed: no event ever lands mid-transaction.
package netsched

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"minraid/internal/core"
	"minraid/internal/transport"
)

// Kind classifies one scheduler event.
type Kind uint8

const (
	// Partition cuts every link between distinct groups, both
	// directions — a symmetric split into named groups. Sites in no
	// group keep all their links (a partial partition).
	Partition Kind = iota
	// OneWay cuts the listed directed links only — asymmetric faults
	// where A's messages to B vanish while B still reaches A.
	OneWay
	// Cut cuts the listed links in the direction given plus the
	// reverse — a partial cut isolating individual site pairs while
	// the rest of the mesh stays connected.
	Cut
	// Heal restores every link the active episode cut.
	Heal
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Partition:
		return "partition"
	case OneWay:
		return "oneway"
	case Cut:
		return "cut"
	case Heal:
		return "heal"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Group is one named side of a symmetric partition.
type Group struct {
	Name  string
	Sites []core.SiteID
}

// Event is one scheduled topology change, firing before the given
// 1-based transaction number.
type Event struct {
	BeforeTxn int
	Kind      Kind
	// Groups names the sides of a Partition event.
	Groups []Group
	// Links lists the directed links of a OneWay or Cut event.
	Links []transport.LinkID
}

// DownLinks compiles the event into the directed links it cuts, sorted
// by (From, To) so SetLinkDown calls happen in a deterministic order.
// Heal events compile to nil — they restore whatever is down.
func (e Event) DownLinks() []transport.LinkID {
	var out []transport.LinkID
	switch e.Kind {
	case Partition:
		for i, gi := range e.Groups {
			for j, gj := range e.Groups {
				if i == j {
					continue
				}
				for _, a := range gi.Sites {
					for _, b := range gj.Sites {
						out = append(out, transport.LinkID{From: a, To: b})
					}
				}
			}
		}
	case OneWay:
		out = append(out, e.Links...)
	case Cut:
		for _, l := range e.Links {
			out = append(out, l, transport.LinkID{From: l.To, To: l.From})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	// Dedup (a Cut listing both directions would otherwise double up).
	dedup := out[:0]
	for i, l := range out {
		if i == 0 || l != out[i-1] {
			dedup = append(dedup, l)
		}
	}
	return dedup
}

// String renders the event canonically; the soak records these strings as
// the epoch's partition event stream and the repro check compares them.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t%d %s", e.BeforeTxn, e.Kind)
	switch e.Kind {
	case Partition:
		for _, g := range e.Groups {
			ids := make([]string, len(g.Sites))
			for i, s := range g.Sites {
				ids[i] = fmt.Sprintf("%d", s)
			}
			fmt.Fprintf(&b, " %s={%s}", g.Name, strings.Join(ids, ","))
		}
	case OneWay:
		for _, l := range e.Links {
			fmt.Fprintf(&b, " %d->%d", l.From, l.To)
		}
	case Cut:
		for _, l := range e.Links {
			fmt.Fprintf(&b, " %d<->%d", l.From, l.To)
		}
	}
	return b.String()
}

// Schedule is a validated event stream over a fixed-size system.
type Schedule struct {
	Sites int
	Txns  int
	// Events fire in slice order; BeforeTxn values are non-decreasing.
	Events []Event
}

// Validate checks the schedule: dimensions, event ordering, site ranges,
// group shape, and episode alternation (at most one fault episode active
// at a time, every fault followed by its heal before the next fault; a
// schedule may end with an episode still active — the run's epilogue
// heals it).
func (s Schedule) Validate() error {
	if s.Sites < 2 || s.Sites > core.MaxSites {
		return fmt.Errorf("netsched: %d sites out of range", s.Sites)
	}
	if s.Txns < 1 {
		return fmt.Errorf("netsched: %d txns out of range", s.Txns)
	}
	active := false
	prev := 0
	for i, e := range s.Events {
		if e.BeforeTxn < 1 || e.BeforeTxn > s.Txns {
			return fmt.Errorf("netsched: event %d fires before txn %d, outside 1..%d", i, e.BeforeTxn, s.Txns)
		}
		if e.BeforeTxn < prev {
			return fmt.Errorf("netsched: event %d fires before txn %d, after an event at %d", i, e.BeforeTxn, prev)
		}
		prev = e.BeforeTxn
		if e.Kind == Heal {
			if !active {
				return fmt.Errorf("netsched: event %d heals with no episode active", i)
			}
			active = false
			continue
		}
		if active {
			return fmt.Errorf("netsched: event %d starts an episode while one is active", i)
		}
		active = true
		if err := s.validateFault(i, e); err != nil {
			return err
		}
	}
	return nil
}

func (s Schedule) validateFault(i int, e Event) error {
	switch e.Kind {
	case Partition:
		if len(e.Groups) < 2 {
			return fmt.Errorf("netsched: event %d partitions into %d group(s)", i, len(e.Groups))
		}
		seen := make(map[core.SiteID]bool)
		for _, g := range e.Groups {
			if len(g.Sites) == 0 {
				return fmt.Errorf("netsched: event %d has empty group %q", i, g.Name)
			}
			for _, id := range g.Sites {
				if int(id) >= s.Sites {
					return fmt.Errorf("netsched: event %d: site %d out of range", i, id)
				}
				if seen[id] {
					return fmt.Errorf("netsched: event %d: site %d in two groups", i, id)
				}
				seen[id] = true
			}
		}
	case OneWay, Cut:
		if len(e.Links) == 0 {
			return fmt.Errorf("netsched: event %d cuts no links", i)
		}
		for _, l := range e.Links {
			if int(l.From) >= s.Sites || int(l.To) >= s.Sites {
				return fmt.Errorf("netsched: event %d: link %d->%d out of range", i, l.From, l.To)
			}
			if l.From == l.To {
				return fmt.Errorf("netsched: event %d: self link %d->%d", i, l.From, l.To)
			}
		}
	default:
		return fmt.Errorf("netsched: event %d has unknown kind %d", i, e.Kind)
	}
	return nil
}

// EventsBefore returns the events firing before the given 1-based
// transaction, in order.
func (s Schedule) EventsBefore(txnNum int) []Event {
	var out []Event
	for _, e := range s.Events {
		if e.BeforeTxn == txnNum {
			out = append(out, e)
		}
	}
	return out
}

// Strings renders every event; the soak stores this as the epoch's
// partition event stream.
func (s Schedule) Strings() []string {
	out := make([]string, len(s.Events))
	for i, e := range s.Events {
		out[i] = e.String()
	}
	return out
}

// Fingerprint hashes the canonical event stream (FNV-1a). Two schedules
// fingerprint equal exactly when their rendered event streams match —
// the determinism witness the soak's -repro check compares.
func (s Schedule) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d", s.Sites, s.Txns)
	for _, e := range s.Events {
		h.Write([]byte{0})
		h.Write([]byte(e.String()))
	}
	return h.Sum64()
}

// LinkControl is the network surface the scheduler drives. Both
// *transport.Memory and *transport.Chaos satisfy it, as does
// *cluster.Cluster (which routes to whichever layer it runs).
type LinkControl interface {
	SetLinkDown(from, to core.SiteID, down bool)
}

// Topology tracks which directed links the scheduler currently holds
// down, and answers the reachability queries a partition-aware harness
// needs (who can complete a request/reply round trip, who is touched by
// the active episode).
type Topology struct {
	sites int
	down  map[transport.LinkID]bool
}

// NewTopology returns an all-up topology over sites sites.
func NewTopology(sites int) *Topology {
	return &Topology{sites: sites, down: make(map[transport.LinkID]bool)}
}

// Active reports whether any link is currently down.
func (t *Topology) Active() bool { return len(t.down) > 0 }

// Reachable reports whether a and b can complete a request/reply round
// trip: both directed links are up. A one-way cut makes the pair
// unreachable for protocol purposes even though one direction delivers.
func (t *Topology) Reachable(a, b core.SiteID) bool {
	return !t.down[transport.LinkID{From: a, To: b}] && !t.down[transport.LinkID{From: b, To: a}]
}

// Affected reports whether s is an endpoint of any down link — i.e.
// whether the active episode touches it. Suspicions involving affected
// sites are legitimate network evidence and must wait for heal-time
// reconciliation rather than per-transaction false-suspicion repair.
func (t *Topology) Affected(s core.SiteID) bool {
	for l := range t.down {
		if l.From == s || l.To == s {
			return true
		}
	}
	return false
}

// DownLinks returns the currently-down links, sorted.
func (t *Topology) DownLinks() []transport.LinkID {
	out := make([]transport.LinkID, 0, len(t.down))
	for l := range t.down {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Drive applies one event: it updates the tracked topology and issues
// the SetLinkDown calls on lc in deterministic (sorted) order. A Heal
// event restores every link currently down.
func (t *Topology) Drive(lc LinkControl, e Event) {
	if e.Kind == Heal {
		t.HealAll(lc)
		return
	}
	for _, l := range e.DownLinks() {
		if !t.down[l] {
			t.down[l] = true
			lc.SetLinkDown(l.From, l.To, true)
		}
	}
}

// HealAll restores every down link, in deterministic order.
func (t *Topology) HealAll(lc LinkControl) {
	for _, l := range t.DownLinks() {
		lc.SetLinkDown(l.From, l.To, false)
		delete(t.down, l)
	}
}
