package site

import (
	"testing"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
	"minraid/internal/policy"
	"minraid/internal/storage"
	"minraid/internal/transport"
)

// harness hosts n sites plus a manager caller on one memory network.
type harness struct {
	net    *transport.Memory
	sites  []*Site
	caller *transport.Caller
}

func newHarness(t *testing.T, n, items int, mutate func(*Config)) *harness {
	t.Helper()
	net := transport.NewMemory(transport.MemoryConfig{Sites: n})
	h := &harness{net: net}
	for i := 0; i < n; i++ {
		cfg := Config{ID: core.SiteID(i), Sites: n, Items: items, AckTimeout: 50 * time.Millisecond}
		if mutate != nil {
			mutate(&cfg)
		}
		s, err := New(cfg, net)
		if err != nil {
			t.Fatal(err)
		}
		h.sites = append(h.sites, s)
		s.Start()
	}
	mgr, err := net.Endpoint(core.ManagingSite)
	if err != nil {
		t.Fatal(err)
	}
	h.caller = transport.NewCaller(mgr, 5*time.Second)
	go func() {
		for {
			env, ok := mgr.Recv()
			if !ok {
				return
			}
			h.caller.Deliver(env)
		}
	}()
	t.Cleanup(func() {
		for _, s := range h.sites {
			s.Stop()
		}
		net.Close()
	})
	return h
}

func (h *harness) exec(t *testing.T, coord core.SiteID, id core.TxnID, ops []core.Op) *msg.TxnResult {
	t.Helper()
	reply, err := h.caller.Call(coord, &msg.ClientTxn{Txn: id, Ops: ops})
	if err != nil {
		t.Fatalf("exec txn %d: %v", id, err)
	}
	return reply.Body.(*msg.TxnResult)
}

func TestConfigValidation(t *testing.T) {
	net := transport.NewMemory(transport.MemoryConfig{Sites: 2})
	defer net.Close()
	bad := []Config{
		{ID: 0, Sites: 0, Items: 5},
		{ID: 5, Sites: 2, Items: 5},
		{ID: 0, Sites: 2, Items: 0},
		{ID: 0, Sites: 2, Items: 5, BatchCopierThreshold: 1.5},
		{ID: 0, Sites: 2, Items: 5, Store: storage.NewMemStore(3, nil)}, // size mismatch
	}
	for i, cfg := range bad {
		if _, err := New(cfg, net); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	s, err := New(Config{ID: 0, Sites: 2, Items: 5}, net)
	if err != nil {
		t.Fatal(err)
	}
	if s.Policy().Name() != "rowaa" {
		t.Errorf("default policy = %s", s.Policy().Name())
	}
	if s.State() != core.StatusUp || s.Session() != 1 {
		t.Errorf("initial state %v session %d", s.State(), s.Session())
	}
}

func TestAdminAllowed(t *testing.T) {
	mk := func(from core.SiteID, body msg.Body) *msg.Envelope {
		return &msg.Envelope{From: from, Body: body}
	}
	if !adminAllowed(mk(core.ManagingSite, &msg.RecoverSim{})) {
		t.Error("RecoverSim from manager blocked")
	}
	if !adminAllowed(mk(core.ManagingSite, &msg.StatusReq{})) {
		t.Error("StatusReq from manager blocked")
	}
	if !adminAllowed(mk(core.ManagingSite, &msg.Shutdown{})) {
		t.Error("Shutdown from manager blocked")
	}
	if adminAllowed(mk(core.ManagingSite, &msg.Prepare{})) {
		t.Error("Prepare from manager allowed on a down site")
	}
	if adminAllowed(mk(1, &msg.RecoverSim{})) {
		t.Error("RecoverSim from a peer allowed")
	}
}

func TestStalePrepareNacked(t *testing.T) {
	h := newHarness(t, 2, 5, nil)
	// Forge a prepare whose vector names the wrong session for site 1.
	vec := core.NewSessionVector(2)
	vec.MarkUp(1, 42) // site 1 is actually in session 1
	reply, err := h.caller.Call(1, &msg.Prepare{
		Txn:    7,
		Vector: vec.Records(),
		Writes: []core.ItemVersion{{Item: 0, Version: 7, Value: []byte("x")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ack := reply.Body.(*msg.PrepareAck)
	if ack.OK {
		t.Fatal("stale-session prepare acked")
	}
}

func TestPrepareRejectsOutOfRangeWrite(t *testing.T) {
	h := newHarness(t, 2, 5, nil)
	vec := core.NewSessionVector(2)
	reply, err := h.caller.Call(1, &msg.Prepare{
		Txn:    7,
		Vector: vec.Records(),
		Writes: []core.ItemVersion{{Item: 99, Version: 7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Body.(*msg.PrepareAck).OK {
		t.Fatal("out-of-range write acked")
	}
}

func TestAbortDiscardsStagedWrites(t *testing.T) {
	h := newHarness(t, 2, 5, nil)
	vec := core.NewSessionVector(2)
	if _, err := h.caller.Call(1, &msg.Prepare{
		Txn:    9,
		Vector: vec.Records(),
		Writes: []core.ItemVersion{{Item: 2, Version: 9, Value: []byte("ghost")}},
	}); err != nil {
		t.Fatal(err)
	}
	h.caller.Send(1, &msg.Abort{Txn: 9})
	time.Sleep(20 * time.Millisecond)
	// A commit for the aborted txn must be a no-op (acked, not applied).
	reply, err := h.caller.Call(1, &msg.Commit{Txn: 9})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Body.(*msg.CommitAck).Txn != 9 {
		t.Error("commit of unknown txn not acked")
	}
	dump, _ := h.caller.Call(1, &msg.DumpReq{First: 2, Last: 2})
	iv := dump.Body.(*msg.DumpResp).Items[0]
	if iv.Version != 0 || string(iv.Value) == "ghost" {
		t.Errorf("aborted write applied: %v", iv)
	}
}

func TestFailedSiteIsDeaf(t *testing.T) {
	h := newHarness(t, 2, 5, nil)
	if _, err := h.caller.Call(0, &msg.FailSim{}); err != nil {
		t.Fatal(err)
	}
	if h.sites[0].State() != core.StatusDown {
		t.Fatal("site not down")
	}
	// Protocol traffic is dropped: a prepare gets no reply, even from the
	// managing site (Prepare is not in the admin allowlist).
	vec := core.NewSessionVector(2)
	done := make(chan struct{})
	go func() {
		h.caller.Call(0, &msg.Prepare{Txn: 1, Vector: vec.Records()})
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("down site answered a prepare")
	case <-time.After(150 * time.Millisecond):
	}
	// StatusReq still answered (out-of-band instrumentation).
	reply, err := h.caller.Call(0, &msg.StatusReq{})
	if err != nil {
		t.Fatal(err)
	}
	if got := reply.Body.(*msg.StatusResp).State; got != core.StatusDown {
		t.Errorf("status while down = %v", got)
	}
}

func TestRecoveryBumpsSession(t *testing.T) {
	h := newHarness(t, 2, 5, nil)
	h.caller.Call(0, &msg.FailSim{})
	reply, err := h.caller.Call(0, &msg.RecoverSim{})
	if err != nil {
		t.Fatal(err)
	}
	st := reply.Body.(*msg.StatusResp)
	if st.State != core.StatusUp {
		t.Fatalf("state = %v", st.State)
	}
	if st.Session != 2 {
		t.Errorf("session = %d, want 2", st.Session)
	}
	// The donor learned the new session.
	if got := h.sites[1].Vector().Session(0); got != 2 {
		t.Errorf("donor sees session %d", got)
	}
	// A second failure/recovery bumps again.
	h.caller.Call(0, &msg.FailSim{})
	reply, _ = h.caller.Call(0, &msg.RecoverSim{})
	if got := reply.Body.(*msg.StatusResp).Session; got != 3 {
		t.Errorf("session after second recovery = %d", got)
	}
}

func TestRecoverWhileUpIsNoop(t *testing.T) {
	h := newHarness(t, 2, 5, nil)
	reply, err := h.caller.Call(0, &msg.RecoverSim{})
	if err != nil {
		t.Fatal(err)
	}
	st := reply.Body.(*msg.StatusResp)
	if st.State != core.StatusUp || st.Session != 1 {
		t.Errorf("recover-while-up changed state: %+v", st)
	}
}

func TestDisableFailLockMaintenance(t *testing.T) {
	h := newHarness(t, 2, 5, func(c *Config) { c.DisableFailLockMaintenance = true })
	res := h.exec(t, 0, 1, []core.Op{core.Write(1, []byte("x"))})
	if !res.Committed {
		t.Fatal("txn failed")
	}
	st0 := h.sites[0].Stats()
	if st0.FailLocksSet != 0 || st0.FailLocksCleared != 0 {
		t.Error("fail-lock code ran despite being disabled")
	}
}

func TestLastWriteWinsWithinTxn(t *testing.T) {
	h := newHarness(t, 2, 5, nil)
	res := h.exec(t, 0, 1, []core.Op{
		core.Write(3, []byte("a")),
		core.Write(3, []byte("b")),
	})
	if !res.Committed {
		t.Fatal("txn failed")
	}
	for i, s := range h.sites {
		iv, _ := s.store.Get(3)
		if string(iv.Value) != "b" {
			t.Errorf("site %d value = %q", i, iv.Value)
		}
	}
}

func TestReadsSeePreTransactionState(t *testing.T) {
	h := newHarness(t, 2, 5, nil)
	h.exec(t, 0, 1, []core.Op{core.Write(2, []byte("old"))})
	res := h.exec(t, 0, 2, []core.Op{core.Write(2, []byte("new")), core.Read(2)})
	if !res.Committed {
		t.Fatal("txn failed")
	}
	if string(res.Reads[0].Value) != "old" {
		t.Errorf("read within txn = %q, want pre-transaction value", res.Reads[0].Value)
	}
}

func TestInvalidTxnAborts(t *testing.T) {
	h := newHarness(t, 2, 5, nil)
	res := h.exec(t, 0, 5, []core.Op{core.Read(99)})
	if res.Committed {
		t.Fatal("invalid txn committed")
	}
}

func TestShutdownMessage(t *testing.T) {
	h := newHarness(t, 2, 5, nil)
	if _, err := h.caller.Call(0, &msg.Shutdown{}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for h.sites[0].State() != core.StatusTerminating {
		if time.Now().After(deadline) {
			t.Fatal("site never terminated")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestQuorumPolicyWiring(t *testing.T) {
	h := newHarness(t, 3, 5, func(c *Config) { c.Policy = policy.Quorum{} })
	res := h.exec(t, 0, 1, []core.Op{core.Write(1, []byte("q")), core.Read(1)})
	if !res.Committed {
		t.Fatalf("quorum txn aborted: %s", res.AbortReason)
	}
	// Reads are version-voting: pre-transaction state, via majority.
	if string(res.Reads[0].Value) != "" && res.Reads[0].Version != 0 {
		t.Errorf("quorum read = %v, want pre-transaction state", res.Reads[0])
	}
}

func TestStopIsIdempotentAndUnblocks(t *testing.T) {
	h := newHarness(t, 2, 5, nil)
	s := h.sites[0]
	done := make(chan struct{})
	go func() {
		s.Stop()
		s.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop hung")
	}
}

func TestCoordinatorFailureDiscardStaged(t *testing.T) {
	// Appendix A.2's third arm: a participant holding staged writes whose
	// coordinator never decides discards them and announces the failure.
	h := newHarness(t, 3, 5, nil)
	// Fail site 0 immediately after it would have sent a prepare. To
	// simulate, stage writes at site 1 via a forged prepare from site 0
	// (which we then fail so it never sends commit).
	if _, err := h.caller.Call(0, &msg.FailSim{}); err != nil {
		t.Fatal(err)
	}
	// Site 1 does not yet know site 0 is down; the prepare is "from" the
	// managing site in this harness, but carries site 0's staged txn.
	vec := core.NewSessionVector(3)
	reply, err := h.caller.Call(1, &msg.Prepare{
		Txn:    77,
		Vector: vec.Records(),
		Writes: []core.ItemVersion{{Item: 1, Version: 77, Value: []byte("orphan")}},
	})
	if err != nil || !reply.Body.(*msg.PrepareAck).OK {
		t.Fatalf("prepare: %v %v", reply, err)
	}
	// After the decision timeout the staged write must be gone: a late
	// read shows the old value, and no ghost write ever applies.
	time.Sleep(decisionTimeout(h.sites[1].caller.Timeout()) + 100*time.Millisecond)
	dump, err := h.caller.Call(1, &msg.DumpReq{First: 1, Last: 1})
	if err != nil {
		t.Fatal(err)
	}
	iv := dump.Body.(*msg.DumpResp).Items[0]
	if iv.Version != 0 || string(iv.Value) == "orphan" {
		t.Errorf("orphaned staged write applied: %v", iv)
	}
	// A commit arriving even later is acked but harmless.
	ack, err := h.caller.Call(1, &msg.Commit{Txn: 77})
	if err != nil || ack.Body.(*msg.CommitAck).Txn != 77 {
		t.Errorf("late commit: %v %v", ack, err)
	}
	dump, _ = h.caller.Call(1, &msg.DumpReq{First: 1, Last: 1})
	if got := dump.Body.(*msg.DumpResp).Items[0]; got.Version != 0 {
		t.Errorf("late commit applied discarded writes: %v", got)
	}
}
