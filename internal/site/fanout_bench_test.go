package site

import (
	"fmt"
	"testing"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
	"minraid/internal/transport"
)

const benchAckTimeout = 20 * time.Millisecond

// benchCluster builds a fresh n-site cluster with the top `dead` site IDs
// silently failed — deaf but not yet announced, so fan-outs still target
// them and eat the ack timeout.
func benchCluster(b *testing.B, n, dead int) ([]*Site, func()) {
	b.Helper()
	net := transport.NewMemory(transport.MemoryConfig{Sites: n})
	sites := make([]*Site, n)
	for i := 0; i < n; i++ {
		s, err := New(Config{ID: core.SiteID(i), Sites: n, Items: 4, AckTimeout: benchAckTimeout}, net)
		if err != nil {
			b.Fatal(err)
		}
		sites[i] = s
		s.Start()
	}
	for i := n - dead; i < n; i++ {
		sites[i].failNow()
	}
	return sites, func() {
		for _, s := range sites {
			s.Stop()
		}
		net.Close()
	}
}

// BenchmarkAnnounceFailure times a type-2 control transaction (announce
// site 1 down to the four remaining sites) with k of the targets silently
// dead. The parallel fan-out keeps the wall time at ~1 ack timeout for any
// k>0; the pre-parallel serial loop paid ~k timeouts.
func BenchmarkAnnounceFailure(b *testing.B) {
	for _, dead := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("dead=%d", dead), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sites, teardown := benchCluster(b, 6, dead)
				b.StartTimer()
				sites[0].announceFailure([]core.SiteID{1}, 0)
				b.StopTimer()
				teardown()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkClearFailLocksFanout times the special clear-fail-locks fan-out
// (the tail of every copier transaction) to five targets with k silently
// dead, including the follow-up type-2 announcing the losses.
func BenchmarkClearFailLocksFanout(b *testing.B) {
	targets := []core.SiteID{1, 2, 3, 4, 5}
	for _, dead := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("dead=%d", dead), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sites, teardown := benchCluster(b, 6, dead)
				b.StartTimer()
				lost, cancelled := sites[0].fanoutClears(targets, &msg.ClearFailLocks{Site: 1, Items: []core.ItemID{0}}, 0)
				if !cancelled {
					sites[0].announceFailure(lost, 0)
				}
				b.StopTimer()
				teardown()
				b.StartTimer()
			}
		})
	}
}
