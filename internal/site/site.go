// Package site implements a mini-RAID database site: one event loop owning
// a copy of the replicated database, a nominal session vector and a
// fail-lock table, acting as two-phase-commit coordinator or participant,
// running copier and control transactions, and simulating failure and
// recovery on command from the managing site.
//
// Concurrency model. The paper's sites were single Unix processes handling
// messages serially. Here each site runs:
//
//   - one receive loop (run) that dispatches inbound messages; participant
//     and control handlers execute inline, in arrival order, which gives
//     the paper's serial, in-order message processing;
//   - one transaction executor at a time (txnGate), so database
//     transactions, recovery and batch refresh are serialized exactly as
//     in the paper ("transactions were processed serially", §1.2,
//     assumption 2);
//   - coordinator work in its own goroutine so the receive loop stays free
//     to route acks and serve other sites' requests while this site waits
//     for replies.
//
// All mutable state (vector, fail-locks, staged writes, stats) is guarded
// by mu; the store is internally synchronized.
package site

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"minraid/internal/core"
	"minraid/internal/lockmgr"
	"minraid/internal/metrics"
	"minraid/internal/msg"
	"minraid/internal/policy"
	"minraid/internal/storage"
	"minraid/internal/trace"
	"minraid/internal/transport"
	"minraid/internal/txn"
)

// Timer and counter names recorded in the metrics registry. The experiment
// harness reads them to regenerate the paper's tables.
const (
	// TimerCoordTxn is the coordinator-side database transaction time
	// (§2.2.1), for transactions that ran no copier.
	TimerCoordTxn = "txn.coord"
	// TimerCoordTxnCopier is the same measure for transactions that ran
	// at least one copier transaction (§2.2.3: 270 ms vs 186 ms).
	TimerCoordTxnCopier = "txn.coord.copier"
	// TimerPartTxn is the participant-side transaction time (§2.2.1).
	TimerPartTxn = "txn.part"
	// TimerCtrl1Recovering is the type-1 control transaction time at the
	// recovering site (§2.2.2: 190 ms).
	TimerCtrl1Recovering = "ctrl1.recovering"
	// TimerCtrl1Operational is the type-1 time at an operational site
	// (§2.2.2: 50 ms).
	TimerCtrl1Operational = "ctrl1.operational"
	// TimerCtrl2 is the type-2 control transaction time per announced-to
	// site (§2.2.2: 68 ms).
	TimerCtrl2 = "ctrl2"
	// TimerCtrl2Fanout is the wall time of one whole type-2 announcement
	// fan-out: every target contacted in parallel under a single shared
	// ack deadline, so k unresponsive targets cost ~1 timeout, not k.
	TimerCtrl2Fanout = "ctrl2.fanout"
	// TimerCopyServe is the donor-side copy-request service time
	// (§2.2.3: 25 ms).
	TimerCopyServe = "copy.serve"
	// TimerClearFailLocks is the coordinator-side cost of the special
	// fail-lock-clearing transaction, per contacted site (§2.2.3: 20 ms).
	TimerClearFailLocks = "clear.flock"
	// TimerClearFanout is the wall time of one whole clear-fail-locks
	// fan-out (the special transaction's parallel multicast to every
	// operational site).
	TimerClearFanout = "clear.flock.fanout"
	// TimerCtrl3 is the type-3 (backup copy) control transaction time.
	TimerCtrl3 = "ctrl3"
	// TimerBatchRefresh is the duration of a batch copier refresh pass
	// (the paper's proposed step two of recovery).
	TimerBatchRefresh = "recovery.batch"

	// CounterAborts counts coordinator-side aborts.
	CounterAborts = "aborts"
	// CounterCommits counts coordinator-side commits.
	CounterCommits = "commits"
	// CounterCopiers counts copier transactions issued.
	CounterCopiers = "copiers"
	// CounterBatchCopiers counts copier transactions issued by batch
	// refresh (step two of two-step recovery).
	CounterBatchCopiers = "copiers.batch"
	// CounterDemandCopiers counts copier transactions issued on the
	// demand path — a database transaction reading a fail-locked local
	// copy (Appendix A.1). With the background scrubber running, demand
	// copiers cover only the reads that outrun it.
	CounterDemandCopiers = "copiers.demand"
	// CounterRecoveryStale counts the items fail-locked for this site at
	// the moment instant recovery completed — the stale set handed to the
	// background scrubber instead of the threshold/batch two-step.
	CounterRecoveryStale = "recovery.stale"
)

// Config parameterizes a site.
type Config struct {
	// ID is this site's identity (0..Sites-1).
	ID core.SiteID
	// Sites is the number of database sites in the system.
	Sites int
	// Items is the database size ("the number of data items", §1.2).
	Items int
	// Policy selects the replication protocol; nil means ROWAA.
	Policy policy.Policy
	// Store holds the local database copy; nil means an in-memory store
	// (the paper's configuration).
	Store storage.Store
	// AckTimeout bounds every wait for a remote reply; expiry is treated
	// as failure of the callee. Default 250ms.
	AckTimeout time.Duration
	// DisableFailLockMaintenance removes the fail-lock maintenance code
	// path, reproducing the "without fail-locks code" row of the paper's
	// first experiment. Only safe when no site ever fails.
	DisableFailLockMaintenance bool
	// BatchCopierThreshold enables the paper's proposed two-step
	// recovery: once the fraction of items fail-locked for this site
	// drops to or below the threshold, the site refreshes the remainder
	// in batch via copier transactions (§3.2). Zero disables batching.
	BatchCopierThreshold float64
	// InstantRecovery selects REDO-only recovery: the site is operational
	// the moment the type-1 announcement installs its fail-lock set — it
	// serves reads of clean items immediately, answers reads of
	// fail-locked items through the demand-copier path, and leaves the
	// remaining stale set to the background scrubber (internal/scrub)
	// rather than arming the threshold/batch two-step. Mutually exclusive
	// with BatchCopierThreshold: the two-step machinery is exactly what
	// this mode replaces.
	InstantRecovery bool
	// EnableType3 enables the paper's proposed type-3 control
	// transaction: when this site holds the last up-to-date copy of an
	// item among operational sites, it pushes a backup copy to another
	// operational site (§3.2).
	EnableType3 bool
	// Type3Batch bounds the number of items one type-3 replication push
	// (CtrlReplicate) carries. A larger endangered set is split into
	// chunks with the backup site re-chosen per chunk, so one slow or
	// failing site never absorbs the whole payload in one unbounded
	// message. Zero defaults to 16.
	Type3Batch int
	// Metrics receives timing observations; nil allocates a private
	// registry.
	Metrics *metrics.Registry
	// Tracer receives structured trace events for the protocol phases
	// this site executes. Nil disables tracing (all emit calls are
	// no-ops on a nil recorder).
	Tracer *trace.Recorder
	// Replicas assigns items to hosting sites. Nil means full
	// replication, the paper's assumption 4. Partial replication is
	// supported for the copy-aware policies — ROWAA and quorum. Under
	// ROWAA a coordinator that hosts no copy of a read item fetches a
	// fresh copy from a hosting site, and writes go to the hosting sites
	// (plus maintenance-only notices to the other operational sites,
	// keeping fail-lock tables fully replicated). Under quorum, read and
	// write quorums are sized per item from its hosting degree and only
	// hosting sites' copies vote. ROWA is rejected: write-all over a
	// partial map is write-all-hosts, which is ROWAA without its
	// availability, and supporting it would only blur the baselines.
	//
	// The map is installed copy-on-write: permanent-loss rebalancing
	// (CtrlRehost) swaps in an edited clone, so in-flight operations keep
	// the placement they started with.
	Replicas *core.ReplicaMap
	// ConcurrentTxns enables the full-RAID future-work mode the paper
	// deferred ("we plan to run this protocol ... taking into account
	// other factors such as concurrency control", §5): up to this many
	// transactions execute interleaved at this site, serialized by
	// distributed strict two-phase locking — shared locks on the read
	// set at the coordinator, exclusive locks on every copy of the write
	// set (acquired at prepare), all held until commit or abort. Values
	// of 0 or 1 keep the paper's serial processing (assumption 2).
	// Requires ROWAA and full replication. Distributed deadlocks resolve
	// by lock-acquisition timeout (transactions abort retriably).
	//
	// Recovery (the type-1 control transaction) should be initiated
	// during a write-quiescent period: session-vector checks abort
	// transactions that straddle a recovery at prepare and at the commit
	// decision, but a recovery announcement still in flight cannot veto
	// a commit already decided, so overlapping writes can leave a
	// freshly installed fail-lock snapshot behind by one transaction.
	// Site failures need no such care — fail-locks exist precisely to
	// absorb them.
	ConcurrentTxns int
	// CommitEpoch enables epoch-batched commit: the coordinator
	// accumulates transactions past their commit decision and flushes the
	// phase-two fan-out once per epoch boundary — one CommitBatch per
	// participant, one WAL group-commit window, commit acks collected off
	// the critical path (see internal/site/epoch.go). Results release at
	// the flush, so client latency gains up to one epoch while the
	// per-transaction WAN fan-out cost collapses. Zero keeps the paper's
	// per-transaction phase two. Requires ROWAA, and must stay under
	// AckTimeout: a participant's decision timer (4x AckTimeout) must
	// absorb the flush delay without suspecting the coordinator.
	CommitEpoch time.Duration
	// LockWaitBudget bounds how long a concurrent-mode transaction waits
	// for one lock before aborting with a retriable timeout. Zero
	// defaults to AckTimeout/2. It must stay well under AckTimeout: a
	// participant blocked on locks longer than the coordinator's patience
	// would be mistaken for a failed site, and a lock wait must surface
	// as a retriable NACK, never as a spurious type-2 announcement. At
	// higher ConcurrentTxns degrees a larger fraction of AckTimeout (or a
	// larger AckTimeout) reduces spurious contention aborts.
	LockWaitBudget time.Duration
	// StartDown boots the site in the failed state: deaf to everything
	// but managing-site admin traffic until a recover order runs the
	// type-1 control transaction. A raidsrv process restarted after a
	// real crash starts down — its database just replayed from the WAL,
	// but it must rejoin through the ordinary recovery path (new session,
	// fail-lock set from a donor) before serving anything.
	StartDown bool
	// Session is the site's initial session number; zero means 1, the
	// protocol's starting session. A restarted process passes the last
	// persisted session so the recovery bump stays monotone over the
	// site's whole lifetime — survivors' vectors and any in-flight
	// failure announcements carry the pre-crash session, and a recovery
	// announced with a smaller one would be vetoed as stale.
	Session core.SessionNum
	// PersistSession, when non-nil, is called with the new session number
	// at every session bump, before the type-1 announcement goes out. A
	// durable deployment (cmd/raidsrv) writes it next to the WAL so a
	// crash-restart resumes the monotone sequence. An error from the hook
	// aborts the recovery: announcing a session that would be forgotten
	// by the next crash is worse than staying down.
	PersistSession func(core.SessionNum) error
}

func (c *Config) fillDefaults() error {
	if c.Sites <= 0 || c.Sites > core.MaxSites {
		return fmt.Errorf("site: %d sites out of range", c.Sites)
	}
	if int(c.ID) >= c.Sites {
		return fmt.Errorf("site: id %d out of range for %d sites", c.ID, c.Sites)
	}
	if c.Items <= 0 {
		return fmt.Errorf("site: %d items out of range", c.Items)
	}
	if c.Policy == nil {
		c.Policy = policy.ROWAA{}
	}
	if c.Store == nil {
		c.Store = storage.NewMemStore(c.Items, nil)
	}
	if c.Store.Items() != c.Items {
		return fmt.Errorf("site: store holds %d items, config says %d", c.Store.Items(), c.Items)
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 250 * time.Millisecond
	}
	if c.LockWaitBudget <= 0 {
		c.LockWaitBudget = c.AckTimeout / 2
	}
	if c.LockWaitBudget >= c.AckTimeout {
		return fmt.Errorf("site: lock-wait budget %v must stay under the ack timeout %v (a lock wait must not look like a site failure)", c.LockWaitBudget, c.AckTimeout)
	}
	if c.BatchCopierThreshold < 0 || c.BatchCopierThreshold > 1 {
		return fmt.Errorf("site: batch copier threshold %v out of [0,1]", c.BatchCopierThreshold)
	}
	if c.InstantRecovery && c.BatchCopierThreshold > 0 {
		return fmt.Errorf("site: instant recovery and two-step recovery (batch copier threshold %v) are mutually exclusive", c.BatchCopierThreshold)
	}
	if c.Type3Batch < 0 {
		return fmt.Errorf("site: type-3 batch size %d out of range", c.Type3Batch)
	}
	if c.Type3Batch == 0 {
		c.Type3Batch = 16
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.Replicas == nil {
		c.Replicas = core.FullReplication(c.Items, c.Sites)
	}
	if c.Replicas.Items() != c.Items || c.Replicas.Sites() != c.Sites {
		return fmt.Errorf("site: replica map is %dx%d, config is %dx%d",
			c.Replicas.Items(), c.Replicas.Sites(), c.Items, c.Sites)
	}
	if !c.Replicas.IsFull() && c.Policy.Name() != "rowaa" && c.Policy.Name() != "quorum" {
		return fmt.Errorf("site: partial replication requires a copy-aware policy (rowaa or quorum), not %s", c.Policy.Name())
	}
	if !c.Replicas.IsFull() && c.EnableType3 {
		return fmt.Errorf("site: type-3 control transactions require full replication (dynamic replica maps are out of scope)")
	}
	if c.ConcurrentTxns > 1 {
		if c.Policy.Name() != "rowaa" {
			return fmt.Errorf("site: concurrent mode requires the rowaa policy, not %s", c.Policy.Name())
		}
		if !c.Replicas.IsFull() {
			return fmt.Errorf("site: concurrent mode requires full replication")
		}
	}
	if c.CommitEpoch > 0 {
		if c.Policy.Name() != "rowaa" {
			return fmt.Errorf("site: epoch-batched commit requires the rowaa policy, not %s", c.Policy.Name())
		}
		if c.CommitEpoch >= c.AckTimeout {
			return fmt.Errorf("site: commit epoch %v must stay under the ack timeout %v (a batched commit must not look like a lost coordinator)", c.CommitEpoch, c.AckTimeout)
		}
	}
	return nil
}

// stagedTxn is a participant's buffered phase-one state.
type stagedTxn struct {
	writes    []core.ItemVersion
	maintOnly []core.ItemID // fail-lock maintenance without data (partial replication)
	// vector is the coordinator's nominal session vector from the
	// prepare. Commit-time fail-lock maintenance uses it — not the
	// participant's own vector — because the coordinator's view is what
	// decided which sites received this write, i.e. which sites actually
	// missed it. Under serial processing the two vectors coincide; under
	// the concurrent extension they can briefly differ during failure
	// detection, and using the coordinator's keeps every table
	// identical.
	vector []core.SiteInfo
	start  time.Time        // start of participation, for TimerPartTxn
	coord  core.SiteID      // the coordinator, for Appendix A.2's failure arm
	trace  uint64           // trace ID carried by the prepare envelope
	timer  *time.Timer      // fires if no phase-two decision arrives
	lm     *lockmgr.Manager // holds this txn's X locks (concurrent mode)
}

// stop cancels the decision timer, if armed.
func (st *stagedTxn) stop() {
	if st.timer != nil {
		st.timer.Stop()
	}
}

// finish stops the timer and releases any participant-side locks.
func (st *stagedTxn) finish(id core.TxnID) {
	st.stop()
	if st.lm != nil {
		st.lm.Release(id)
	}
}

// Site is one mini-RAID database site.
type Site struct {
	cfg    Config
	pol    policy.Policy
	ep     transport.Endpoint
	caller *transport.Caller
	reg    *metrics.Registry
	tracer *trace.Recorder
	// replicas holds the current replica placement behind an atomic
	// pointer: coordinator and handler paths read it without mu, so a
	// rehost (permanent-loss rebalancing) clones the map, edits the
	// clone, and swaps it in. Each operation snapshots the pointer once
	// via replicaMap and uses that snapshot throughout.
	replicas atomic.Pointer[core.ReplicaMap]

	mu      sync.Mutex
	state   core.Status
	session core.SessionNum
	vec     core.SessionVector
	flocks  *core.FailLockTable
	staged  map[core.TxnID]*stagedTxn
	stats   msg.SiteStats
	// batchArmed is true while two-step recovery is waiting for the
	// fail-locked fraction to cross the threshold.
	batchArmed bool

	store storage.Store

	// txnGate bounds in-flight transaction execution: capacity 1 in the
	// paper's serial mode, ConcurrentTxns in concurrent mode. Recovery
	// and batch refresh also take a slot.
	txnGate chan struct{}
	// locks is the strict-2PL manager; non-nil only in concurrent mode.
	// Replaced wholesale on simulated failure (process lock state dies
	// with the process).
	locks *lockmgr.Manager
	// epoch batches commit fan-outs; non-nil only when CommitEpoch > 0.
	epoch *epochBatcher

	// reqSeen tracks, per sender, a bounded window of request sequence
	// numbers already handled. A chaotic transport can deliver a request
	// twice; replaying a Prepare after its Commit would re-stage the
	// transaction and leak a decision timer that later fires as a
	// spurious coordinator-failure announcement. A high-watermark check
	// is NOT safe here: Caller assigns seqs atomically but sends outside
	// any lock, so two concurrent calls on one caller can reach the wire
	// out of order (concurrent mode multiplexes in-flight transactions
	// over one caller) — a watermark would drop the late-arriving lower
	// seq as a false duplicate. An exact-match window suffices because a
	// chaos duplicate trails its original by at most the link's in-flight
	// backlog. Replies bypass this (their Seq belongs to the requester's
	// stream); Caller.Deliver already drops duplicate replies. Touched
	// only by the run goroutine.
	reqSeen map[core.SiteID]*seqWindow

	wg       sync.WaitGroup
	stopOnce sync.Once
}

// New creates a site attached to net. Call Start to begin processing.
func New(cfg Config, net transport.Network) (*Site, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	ep, err := net.Endpoint(cfg.ID)
	if err != nil {
		return nil, err
	}
	gate := 1
	if cfg.ConcurrentTxns > 1 {
		gate = cfg.ConcurrentTxns
	}
	session := cfg.Session
	if session == 0 {
		session = 1
	}
	state := core.StatusUp
	if cfg.StartDown {
		state = core.StatusDown
	}
	s := &Site{
		cfg:     cfg,
		pol:     cfg.Policy,
		ep:      ep,
		caller:  transport.NewCaller(ep, cfg.AckTimeout),
		reg:     cfg.Metrics,
		tracer:  cfg.Tracer,
		state:   state,
		session: session,
		vec:     core.NewSessionVector(cfg.Sites),
		flocks:  core.NewFailLockTable(cfg.Items, cfg.Sites),
		staged:  make(map[core.TxnID]*stagedTxn),
		store:   cfg.Store,
		locks:   newLockManager(cfg),
		txnGate: make(chan struct{}, gate),

		reqSeen: make(map[core.SiteID]*seqWindow),
	}
	if cfg.StartDown {
		s.vec.MarkDown(cfg.ID)
	}
	s.replicas.Store(cfg.Replicas)
	s.epoch = newEpochBatcher(s)
	return s, nil
}

// replicaMap returns the current replica placement. Every operation
// snapshots it once and uses the snapshot throughout, so a concurrent
// rehost swap cannot split one transaction across two placements.
func (s *Site) replicaMap() *core.ReplicaMap { return s.replicas.Load() }

// newLockManager builds the 2PL manager for concurrent mode; serial mode
// (the paper's) needs none. The acquisition timeout (Config.LockWaitBudget)
// doubles as the distributed-deadlock breaker for cycles spanning sites;
// local cycles are caught earlier by the waits-for detector.
func newLockManager(cfg Config) *lockmgr.Manager {
	if cfg.ConcurrentTxns <= 1 {
		return nil
	}
	return lockmgr.New(cfg.LockWaitBudget)
}

// lockAbortReason maps a lock-acquisition failure to its abort reason,
// keeping deadlock victims distinguishable from wait timeouts in every
// table downstream.
func lockAbortReason(err error) string {
	if errors.Is(err, lockmgr.ErrDeadlock) {
		return txn.AbortDeadlock
	}
	return txn.AbortLockTimeout
}

// concurrent reports whether the site runs the interleaved-execution
// extension.
func (s *Site) concurrent() bool { return s.cfg.ConcurrentTxns > 1 }

// lockManager returns the current 2PL manager instance. Simulated failure
// replaces it (a real crash would lose lock state), so callers capture the
// instance once per transaction.
func (s *Site) lockManager() *lockmgr.Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.locks
}

// ID returns the site's identity.
func (s *Site) ID() core.SiteID { return s.cfg.ID }

// emit records one completed protocol phase into the tracer (a no-op
// when tracing is disabled or the message carried no trace ID).
func (s *Site) emit(tr uint64, phase, kind string, start time.Time) {
	if tr == 0 {
		return
	}
	s.tracer.Emit(trace.ID(tr), s.cfg.ID, phase, kind, start)
}

// Metrics returns the site's metrics registry.
func (s *Site) Metrics() *metrics.Registry { return s.reg }

// Policy returns the replication policy the site runs.
func (s *Site) Policy() policy.Policy { return s.pol }

// Start launches the receive loop.
func (s *Site) Start() {
	s.wg.Add(1)
	go s.run()
}

// Stop terminates the site: the receive loop exits and in-flight calls are
// cancelled. Stop blocks until the loop has finished.
func (s *Site) Stop() {
	s.stopOnce.Do(func() {
		s.mu.Lock()
		s.state = core.StatusTerminating
		s.mu.Unlock()
		s.caller.CancelAll()
		if s.epoch != nil {
			// After CancelAll so in-flight ack collectors unblock; before
			// the endpoint closes so drained waiters see a live caller.
			s.epoch.shutdown()
		}
		s.ep.Close()
	})
	s.wg.Wait()
}

// run is the receive loop: replies go to the caller's pending table,
// requests to handle. A site simulating failure drops everything except
// managing-site control traffic, exactly as the paper prescribes ("the
// site should not participate in any further system actions", §1.2).
func (s *Site) run() {
	defer s.wg.Done()
	for {
		env, ok := s.ep.Recv()
		if !ok {
			return
		}
		s.mu.Lock()
		s.stats.MsgsIn++
		state := s.state
		s.mu.Unlock()

		if state == core.StatusTerminating {
			return
		}
		if state == core.StatusDown && !adminAllowed(env) {
			continue // failed sites are deaf
		}
		if env.Body.Kind().IsReply() {
			s.caller.Deliver(env)
			continue
		}
		if env.Seq != 0 {
			w := s.reqSeen[env.From]
			if w == nil {
				w = newSeqWindow(seqWindowSize)
				s.reqSeen[env.From] = w
			}
			if !w.add(env.Seq) {
				continue // duplicated request, already handled
			}
		}
		s.handle(env)
	}
}

// seqWindowSize bounds per-sender duplicate-suppression memory. It only
// needs to exceed the number of messages a link can hold between an
// original and its chaos duplicate (the duplicate is re-sent immediately
// after the original, so that backlog is the per-link queue depth).
const seqWindowSize = 1024

// seqWindow is a fixed-capacity set of recently seen sequence numbers:
// membership via map, FIFO eviction via ring.
type seqWindow struct {
	seen map[uint64]struct{}
	ring []uint64
	next int
}

func newSeqWindow(capacity int) *seqWindow {
	return &seqWindow{
		seen: make(map[uint64]struct{}, capacity),
		ring: make([]uint64, 0, capacity),
	}
}

// add records seq and reports true, or reports false if seq was already
// in the window (a duplicate). Oldest entries are evicted at capacity.
func (w *seqWindow) add(seq uint64) bool {
	if _, dup := w.seen[seq]; dup {
		return false
	}
	if len(w.ring) < cap(w.ring) {
		w.ring = append(w.ring, seq)
	} else {
		delete(w.seen, w.ring[w.next])
		w.ring[w.next] = seq
		w.next = (w.next + 1) % len(w.ring)
	}
	w.seen[seq] = struct{}{}
	return true
}

// adminAllowed reports whether a message may reach a site that is
// simulating failure: only the managing site's recover/shutdown orders and
// its out-of-band status probes.
func adminAllowed(env *msg.Envelope) bool {
	if env.From != core.ManagingSite {
		return false
	}
	switch env.Body.Kind() {
	case msg.KindRecoverSim, msg.KindShutdown, msg.KindStatusReq:
		return true
	}
	return false
}

// State returns the site's current lifecycle state.
func (s *Site) State() core.Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Session returns the site's current session number.
func (s *Site) Session() core.SessionNum {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.session
}

// Vector returns a copy of the site's nominal session vector.
func (s *Site) Vector() core.SessionVector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vec.Clone()
}

// FailLockCount returns the number of items fail-locked for the given
// site, in this site's table — the per-transaction measurement behind the
// paper's figures.
func (s *Site) FailLockCount(id core.SiteID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flocks.CountForSite(id)
}

// Stats returns a snapshot of the site's counters.
func (s *Site) Stats() msg.SiteStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.MsgsOut = s.caller.Sent()
	return st
}

// Wait blocks until the site's receive loop and handlers have finished —
// after Stop, or after a Shutdown message arrived. cmd/raidsrv uses it to
// keep the process alive until the managing site orders termination.
func (s *Site) Wait() { s.wg.Wait() }

// InjectFailLock sets a fail-lock bit directly, bypassing the protocol — a
// bench/test hook for constructing copier scenarios without paying a real
// failure-detection cycle per iteration.
func (s *Site) InjectFailLock(item core.ItemID, target core.SiteID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flocks.Set(item, target)
}

// InjectCorruption overwrites the local copy of item behind the protocol's
// back — no fail-lock, no propagation. It exists for audit tests and
// fault-injection experiments: the consistency audit must flag the
// resulting untracked divergence.
func (s *Site) InjectCorruption(item core.ItemID, value []byte) (core.ItemVersion, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, err := s.store.Get(item)
	if err != nil {
		return core.ItemVersion{}, err
	}
	iv := core.ItemVersion{Item: item, Version: cur.Version + 1, Value: value}
	if _, err := s.store.Apply(iv); err != nil {
		return core.ItemVersion{}, err
	}
	return iv, nil
}

// statusRespLocked builds a StatusResp; callers hold mu.
func (s *Site) statusRespLocked(includeFailLocks bool) *msg.StatusResp {
	counts := make([]uint32, s.cfg.Sites)
	for i := 0; i < s.cfg.Sites; i++ {
		counts[i] = uint32(s.flocks.CountForSite(core.SiteID(i)))
	}
	resp := &msg.StatusResp{
		Site:           s.cfg.ID,
		State:          s.state,
		Session:        s.session,
		Vector:         s.vec.Records(),
		FailLockCounts: counts,
		Stats:          s.stats,
	}
	resp.Stats.MsgsOut = s.caller.Sent()
	if includeFailLocks {
		resp.FailLocks = s.flocks.Snapshot()
	}
	return resp
}
