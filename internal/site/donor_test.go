package site

import (
	"testing"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
	"minraid/internal/transport"
)

// badDonorPeer occupies a site ID with a responder that answers every
// request with the supplied body — a donor that is alive (it replies)
// but unusable (the reply is garbage or a refusal).
func badDonorPeer(t *testing.T, net *transport.Memory, id core.SiteID, mk func() msg.Body) {
	t.Helper()
	ep, err := net.Endpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	caller := transport.NewCaller(ep, time.Second)
	go func() {
		for {
			env, ok := ep.Recv()
			if !ok {
				return
			}
			if env.Body.Kind().IsReply() {
				continue
			}
			caller.Reply(env, mk())
		}
	}()
	t.Cleanup(func() { ep.Close() })
}

// TestMalformedDonorReplyRetriedWithoutAnnounce covers remoteReads'
// donor handling: a donor that answers — with a wrong-typed body, a
// refusal, or an OK reply missing the requested items — is alive, so the
// coordinator must retry the item on the next candidate WITHOUT
// announcing the responsive donor down. Only silence is a failure
// signal.
func TestMalformedDonorReplyRetriedWithoutAnnounce(t *testing.T) {
	cases := map[string]func() msg.Body{
		"wrong-typed body": func() msg.Body { return &msg.StatusResp{} },
		"refusal":          func() msg.Body { return &msg.ReadResp{OK: false} },
		"ok missing items": func() msg.Body { return &msg.ReadResp{OK: true} },
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			net := transport.NewMemory(transport.MemoryConfig{Sites: 3})
			t.Cleanup(func() { net.Close() })
			replicas := core.RoundRobinReplication(3, 3, 2)
			var sites []*Site
			for _, id := range []core.SiteID{0, 2} {
				s, err := New(Config{
					ID: id, Sites: 3, Items: 3,
					AckTimeout: 100 * time.Millisecond,
					Replicas:   replicas,
				}, net)
				if err != nil {
					t.Fatal(err)
				}
				s.Start()
				t.Cleanup(s.Stop)
				sites = append(sites, s)
			}
			badDonorPeer(t, net, 1, mk)

			mgr, err := net.Endpoint(core.ManagingSite)
			if err != nil {
				t.Fatal(err)
			}
			caller := transport.NewCaller(mgr, 5*time.Second)
			go func() {
				for {
					env, ok := mgr.Recv()
					if !ok {
						return
					}
					caller.Deliver(env)
				}
			}()

			// Item 1 is hosted by {1, 2}; coordinator 0 holds no copy and
			// picks donor 1 (lowest candidate) first.
			reply, err := caller.Call(0, &msg.ClientTxn{Txn: 1, Ops: []core.Op{core.Read(1)}})
			if err != nil {
				t.Fatal(err)
			}
			res := reply.Body.(*msg.TxnResult)
			if !res.Committed {
				t.Fatalf("read aborted (%s) despite a usable second donor", res.AbortReason)
			}
			if !sites[0].Vector().IsUp(1) {
				t.Error("responsive donor announced down on a decode problem")
			}
		})
	}
}
