package site

import (
	"sync"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
	"minraid/internal/transport"
	"minraid/internal/txn"
)

// Epoch-batched commit (Config.CommitEpoch > 0): the coordinator
// accumulates transactions that have passed their commit decision and
// flushes the whole phase-two fan-out once per epoch boundary — one
// CommitBatch message per participant instead of one Commit per
// transaction per participant, one local WAL group-commit window for the
// batch, and one shared ack collection that runs off the critical path.
//
// The trade against stock ROWAA (per the SCAR/epoch-OCC designs this
// mode reproduces): results are released late — a client learns its
// outcome at the flush, not at the decision — but the per-transaction
// cost of phase two collapses. On WAN links, where the commit fan-out's
// serialization and round-trip cost dominates, batching it per epoch is
// what buys committed throughput.
//
// Safety mirrors Appendix A.1 exactly:
//
//   - The commit decision re-validates at flush: a site that recovered
//     into a newer session while the transaction sat in the batch would
//     miss the write untracked, so such entries abort (AbortStaleSession)
//     with Aborts to their acked participants — legal, because no
//     participant has committed and no client has been answered.
//   - Results are released only after the CommitBatch is on the wire and
//     the local copies are applied: once a client sees "committed", the
//     participants either hold the batch in flight or have it.
//   - Commit acks are collected asynchronously. A participant that never
//     acks is announced down and the batch's items are conservatively
//     fail-locked for it everywhere (markLostParticipants), the same
//     repair path a lost per-transaction Commit takes.
//
// A participant's staged transaction waits on its decision timer
// (4 x AckTimeout) for the batched commit, so CommitEpoch must stay
// under AckTimeout: the flush adds at most one epoch to the phase gap,
// which the timer's headroom absorbs.

// epochOutcome is what a batched transaction's waiter receives at flush.
type epochOutcome struct {
	committed bool
	reason    string
}

// epochTxn is one decided-but-unflushed transaction in the batch.
type epochTxn struct {
	id          core.TxnID
	writes      []core.ItemVersion // full write set (final versions in concurrent mode)
	localWrites []core.ItemVersion // the subset this site hosts
	localMaint  []core.ItemID      // written items this site does not host
	versions    []core.ItemVersion // commit-version overlay shipped to participants
	acked       []core.SiteID      // participants that acked phase one
	vec         core.SessionVector // the vector the prepares carried
	tr          uint64
	done        chan epochOutcome // buffered(1); exactly one outcome is sent
}

// epochBatcher owns the pending batch and its flush timing. It has its
// own locks — never s.mu — so enqueue and flush ordering cannot entangle
// with the site's state lock.
type epochBatcher struct {
	s *Site

	mu      sync.Mutex
	pending []*epochTxn
	timer   *time.Timer
	closed  bool

	// flushMu serializes flushes so epochs retire in order; shutdown
	// takes it to join an in-flight flush.
	flushMu sync.Mutex
	wg      sync.WaitGroup // ack collectors
}

func newEpochBatcher(s *Site) *epochBatcher {
	if s.cfg.CommitEpoch <= 0 {
		return nil
	}
	return &epochBatcher{s: s}
}

// enqueue adds a decided transaction to the batch. The batch flushes
// when every transaction-gate slot is in it (no further decision can
// arrive until results release, so waiting longer is pure latency) or
// when the epoch timer — armed by the first entry — fires.
func (b *epochBatcher) enqueue(e *epochTxn) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		e.done <- epochOutcome{reason: txn.AbortSiteDown}
		return
	}
	b.pending = append(b.pending, e)
	if len(b.pending) >= cap(b.s.txnGate) {
		batch := b.takeLocked()
		b.mu.Unlock()
		b.flush(batch)
		return
	}
	if len(b.pending) == 1 {
		b.timer = time.AfterFunc(b.s.cfg.CommitEpoch, b.timerFlush)
	}
	b.mu.Unlock()
}

// takeLocked detaches the pending batch and disarms the timer; callers
// hold b.mu.
func (b *epochBatcher) takeLocked() []*epochTxn {
	batch := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// timerFlush is the epoch-boundary flush.
func (b *epochBatcher) timerFlush() {
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	b.flush(batch)
}

// drain aborts every pending entry without sending anything — the
// simulated-failure path: the process's volatile 2PC state dies, the
// participants' decision timers discard their staged writes.
func (b *epochBatcher) drain() {
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	for _, e := range batch {
		e.done <- epochOutcome{reason: txn.AbortSiteDown}
	}
}

// shutdown drains the batch, refuses further enqueues, joins any
// in-flight flush and waits for the ack collectors. Called from Stop
// after CancelAll, so collectors unblock promptly.
func (b *epochBatcher) shutdown() {
	b.mu.Lock()
	b.closed = true
	batch := b.takeLocked()
	b.mu.Unlock()
	for _, e := range batch {
		e.done <- epochOutcome{reason: txn.AbortSiteDown}
	}
	b.flushMu.Lock()
	b.flushMu.Unlock() //nolint:staticcheck // join in-flight flush, nothing to hold
	b.wg.Wait()
}

// flush retires one batch: re-validate each entry's commit decision,
// abort the stale ones, send one CommitBatch per participant, apply the
// committed writes locally in one lock hold (one WAL group-commit
// window), release the waiters, and collect commit acks asynchronously.
func (b *epochBatcher) flush(batch []*epochTxn) {
	if len(batch) == 0 {
		return
	}
	b.flushMu.Lock()
	defer b.flushMu.Unlock()
	s := b.s

	// Re-validate the decision point per entry: any session that advanced
	// past the entry's vector means a site recovered while the entry sat
	// in the batch — its copy would miss the write untracked. Abort those.
	s.mu.Lock()
	if s.state != core.StatusUp {
		s.mu.Unlock()
		for _, e := range batch {
			e.done <- epochOutcome{reason: txn.AbortSiteDown}
		}
		return
	}
	var commits, stale []*epochTxn
	for _, e := range batch {
		ok := true
		for k := 0; k < s.vec.Len(); k++ {
			if s.vec.Session(core.SiteID(k)) > e.vec.Session(core.SiteID(k)) {
				ok = false
				break
			}
		}
		if ok {
			commits = append(commits, e)
		} else {
			stale = append(stale, e)
		}
	}
	s.mu.Unlock()

	for _, e := range stale {
		s.sendAbort(e.acked, e.id, e.tr)
		e.done <- epochOutcome{reason: txn.AbortStaleSession}
	}
	if len(commits) == 0 {
		return
	}

	// One CommitBatch per participant, carrying the entries it prepared,
	// in batch order. The sends happen here, before any waiter wakes: a
	// client told "committed" implies the batch is at least in flight to
	// every acked participant.
	perSite := make(map[core.SiteID][]msg.CommitEntry)
	var order []core.SiteID
	for _, e := range commits {
		for _, id := range e.acked {
			if _, ok := perSite[id]; !ok {
				order = append(order, id)
			}
			perSite[id] = append(perSite[id], msg.CommitEntry{Txn: e.id, Versions: e.versions})
		}
	}
	var join func() []transport.CallResult
	if len(order) > 0 {
		calls := make([]transport.Outcall, len(order))
		for i, id := range order {
			calls[i] = transport.Outcall{To: id, Body: &msg.CommitBatch{Txns: perSite[id]}}
		}
		join = s.caller.MulticastAsyncT(commits[0].tr, calls)
	}

	// Local phase two for the whole batch under one lock hold: the store
	// applies run back to back, so a WAL store coalesces their fsyncs
	// into one group commit. Failing here mirrors the stock "failed
	// between phases" arm — the participants commit, our copy is repaired
	// by fail-locks on recovery, waiters report AbortSiteDown silently.
	s.mu.Lock()
	committedLocally := s.state == core.StatusUp
	if committedLocally {
		for _, e := range commits {
			for _, iv := range e.localWrites {
				if _, err := s.store.Apply(iv); err != nil {
					panic("site: applying local write: " + err.Error())
				}
			}
			s.maintainFailLocksLocked(e.localWrites, e.localMaint, e.vec)
		}
	}
	s.mu.Unlock()

	for _, e := range commits {
		if committedLocally {
			e.done <- epochOutcome{committed: true}
		} else {
			e.done <- epochOutcome{reason: txn.AbortSiteDown}
		}
	}

	if join == nil {
		return
	}
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.collect(order, commits, join)
	}()
}

// collect drains one batch's commit acks. Participants whose ack never
// arrives are announced down and every batched item they host is
// conservatively fail-locked for them, exactly as a lost per-transaction
// Commit would be (Appendix A.1).
func (b *epochBatcher) collect(order []core.SiteID, commits []*epochTxn, join func() []transport.CallResult) {
	s := b.s
	lost := make(map[core.SiteID]bool)
	for i, r := range join() {
		if r.Err == nil {
			continue
		}
		if r.Err == transport.ErrCancelled {
			return // local failure mid-collection: stop silently
		}
		lost[order[i]] = true
	}
	if len(lost) == 0 {
		return
	}
	announced := make(map[core.SiteID]bool)
	for _, e := range commits {
		var lostHere []core.SiteID
		for _, id := range e.acked {
			if lost[id] {
				lostHere = append(lostHere, id)
			}
		}
		if len(lostHere) == 0 {
			continue
		}
		var fresh []core.SiteID
		for _, id := range s.perceivedUp(e.vec, lostHere) {
			if !announced[id] {
				announced[id] = true
				fresh = append(fresh, id)
			}
		}
		if len(fresh) > 0 {
			s.announceFailure(fresh, e.tr)
		}
		s.markLostParticipants(lostHere, e.writes, e.tr)
	}
}

// epochCommit is the coordinator's phase two in epoch mode: enqueue the
// decided transaction and block until the epoch flush releases it.
func (s *Site) epochCommit(res txn.Result, writes, localWrites, commitVersions []core.ItemVersion,
	acked []core.SiteID, vec core.SessionVector, rep *core.ReplicaMap, tr uint64) txn.Result {
	var localMaint []core.ItemID
	for _, iv := range writes {
		if !rep.IsHost(iv.Item, s.cfg.ID) {
			localMaint = append(localMaint, iv.Item)
		}
	}
	e := &epochTxn{
		id:          res.Txn,
		writes:      writes,
		localWrites: localWrites,
		localMaint:  localMaint,
		versions:    commitVersions,
		acked:       acked,
		vec:         vec,
		tr:          tr,
		done:        make(chan epochOutcome, 1),
	}
	s.epoch.enqueue(e)
	out := <-e.done
	if out.committed {
		res.Committed = true
	} else {
		res.AbortReason = out.reason
	}
	return res
}

// handleCommitBatch is the participant side of an epoch flush: commit
// every listed staged transaction (exactly as handleCommit would, in
// batch order, under one lock hold so a WAL store group-commits them)
// and acknowledge the batch once. Entries with no staged state are
// counted and skipped — the same idempotent silence a stray Commit gets.
func (s *Site) handleCommitBatch(env *msg.Envelope, body *msg.CommitBatch) {
	type finished struct {
		st *stagedTxn
		id core.TxnID
	}
	var done []finished
	applied := 0
	s.mu.Lock()
	for _, entry := range body.Txns {
		st, ok := s.staged[entry.Txn]
		if !ok {
			applied++
			continue
		}
		delete(s.staged, entry.Txn)
		if len(entry.Versions) > 0 {
			byItem := make(map[core.ItemID]core.TxnID, len(entry.Versions))
			for _, v := range entry.Versions {
				byItem[v.Item] = v.Version
			}
			for i := range st.writes {
				if v, ok := byItem[st.writes[i].Item]; ok {
					st.writes[i].Version = v
				}
			}
		}
		for _, iv := range st.writes {
			if _, err := s.store.Apply(iv); err != nil {
				panic("site: applying staged write: " + err.Error())
			}
		}
		s.maintainFailLocksLocked(st.writes, st.maintOnly, core.VectorFromRecords(st.vector))
		s.stats.Participated++
		applied++
		done = append(done, finished{st: st, id: entry.Txn})
	}
	armed := s.batchArmed
	s.mu.Unlock()
	now := time.Now()
	for _, f := range done {
		f.st.finish(f.id)
		s.reg.Observe(TimerPartTxn, now.Sub(f.st.start))
	}
	s.caller.Reply(env, &msg.CommitBatchAck{Applied: uint32(applied)})
	if armed && len(done) > 0 {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.checkBatchTrigger()
		}()
	}
}
