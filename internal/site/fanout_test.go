package site

import (
	"testing"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
	"minraid/internal/transport"
)

// wrongTypedPeer occupies a site ID with a responder that answers every
// request with a reply of the wrong body type — a malformed participant
// the protocol must treat as silent, never trust, and never panic on.
func wrongTypedPeer(t *testing.T, net *transport.Memory, id core.SiteID) {
	t.Helper()
	ep, err := net.Endpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	caller := transport.NewCaller(ep, time.Second)
	go func() {
		for {
			env, ok := ep.Recv()
			if !ok {
				return
			}
			if env.Body.Kind().IsReply() {
				continue
			}
			caller.Reply(env, &msg.ReadResp{OK: true})
		}
	}()
	t.Cleanup(func() { ep.Close() })
}

// TestWrongTypedPrepareReplyTreatedAsSilent covers coordinator.go's
// phase-one ack handling: a garbage-typed reply must count as no vote
// (abort, announce) instead of panicking on a blind type assertion.
func TestWrongTypedPrepareReplyTreatedAsSilent(t *testing.T) {
	net := transport.NewMemory(transport.MemoryConfig{Sites: 2})
	t.Cleanup(func() { net.Close() })
	s, err := New(Config{ID: 0, Sites: 2, Items: 5, AckTimeout: 100 * time.Millisecond}, net)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Stop)
	wrongTypedPeer(t, net, 1)

	mgr, err := net.Endpoint(core.ManagingSite)
	if err != nil {
		t.Fatal(err)
	}
	caller := transport.NewCaller(mgr, 5*time.Second)
	go func() {
		for {
			env, ok := mgr.Recv()
			if !ok {
				return
			}
			caller.Deliver(env)
		}
	}()

	reply, err := caller.Call(0, &msg.ClientTxn{Txn: 1, Ops: []core.Op{core.Write(1, []byte("x"))}})
	if err != nil {
		t.Fatal(err)
	}
	res := reply.Body.(*msg.TxnResult)
	if res.Committed {
		t.Fatal("transaction committed on a garbage-typed prepare ack")
	}
	// The malformed participant counts as silent, i.e. failed.
	if s.Vector().IsUp(1) {
		t.Error("malformed participant not announced as down")
	}
}

// TestWrongTypedRecoverAckBlocksRecovery covers recovery.go's type-1 ack
// handling: a garbage-typed CtrlRecoverAck is no reply, so with no other
// donor the recovery stays blocked — and nothing panics.
func TestWrongTypedRecoverAckBlocksRecovery(t *testing.T) {
	net := transport.NewMemory(transport.MemoryConfig{Sites: 2})
	t.Cleanup(func() { net.Close() })
	s, err := New(Config{ID: 0, Sites: 2, Items: 5, AckTimeout: 100 * time.Millisecond}, net)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Stop)
	wrongTypedPeer(t, net, 1)

	s.failNow()
	if s.recoverSite(0) {
		t.Fatal("recovery succeeded with only a malformed donor")
	}
	if got := s.State(); got != core.StatusDown {
		t.Errorf("state after blocked recovery = %v, want down", got)
	}
}

// TestFanoutLatencyBoundedTwoSitesDown asserts the tentpole property on a
// live cluster: with two sites silently dead, both the commit/abort path
// (phase-one fan-out plus type-2 announcement) and the copier path (copy
// fetch plus clear-fail-locks fan-out) finish within ~one ack timeout,
// not one timeout per dead site.
func TestFanoutLatencyBoundedTwoSitesDown(t *testing.T) {
	const ackTimeout = 250 * time.Millisecond
	// Anything at or above two timeouts means some fan-out degenerated to
	// serial per-target waits; leave a margin below that for scheduling.
	const bound = 2*ackTimeout - 50*time.Millisecond
	h := newHarness(t, 5, 8, func(c *Config) { c.AckTimeout = ackTimeout })

	// --- Abort path: a write detecting two dead participants. ---
	h.sites[3].failNow()
	h.sites[4].failNow()
	start := time.Now()
	res := h.exec(t, 0, 1, []core.Op{core.Write(1, []byte("x"))})
	elapsed := time.Since(start)
	if res.Committed {
		t.Fatal("write committed with two participants dead")
	}
	if elapsed > bound {
		t.Errorf("abort with 2 dead sites took %v, want < %v", elapsed, bound)
	}
	if v := h.sites[0].Vector(); v.IsUp(3) || v.IsUp(4) {
		t.Error("dead participants not announced")
	}
	// The retry commits against the surviving sites.
	if res := h.exec(t, 0, 2, []core.Op{core.Write(1, []byte("y"))}); !res.Committed {
		t.Fatalf("retry aborted: %s", res.AbortReason)
	}

	// --- Copier path: a fresh cluster, fail-lock one item, then read it
	// with two dead clear-fan-out targets. ---
	h2 := newHarness(t, 5, 8, func(c *Config) { c.AckTimeout = ackTimeout })
	if _, err := h2.caller.Call(0, &msg.FailSim{}); err != nil {
		t.Fatal(err)
	}
	// First write detects the failure and aborts; the second commits and
	// fail-locks the item for site 0.
	h2.exec(t, 1, 1, []core.Op{core.Write(1, []byte("a"))})
	if res := h2.exec(t, 1, 2, []core.Op{core.Write(1, []byte("b"))}); !res.Committed {
		t.Fatalf("setup write aborted: %s", res.AbortReason)
	}
	if _, err := h2.caller.Call(0, &msg.RecoverSim{}); err != nil {
		t.Fatal(err)
	}
	if got := h2.sites[0].FailLockCount(0); got == 0 {
		t.Fatal("no fail-locks after recovery")
	}
	h2.sites[3].failNow()
	h2.sites[4].failNow()
	start = time.Now()
	res = h2.exec(t, 0, 3, []core.Op{core.Read(1)})
	elapsed = time.Since(start)
	if !res.Committed || res.Copiers == 0 {
		t.Fatalf("copier txn failed: committed=%v copiers=%d reason=%s", res.Committed, res.Copiers, res.AbortReason)
	}
	if elapsed > bound {
		t.Errorf("copier txn with 2 dead clear targets took %v, want < %v", elapsed, bound)
	}
	if v := h2.sites[0].Vector(); v.IsUp(3) || v.IsUp(4) {
		t.Error("dead clear targets not announced")
	}
}
