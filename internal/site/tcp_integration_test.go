package site

import (
	"bytes"
	"testing"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
	"minraid/internal/transport"
)

// tcpHarness runs n sites, each with its own TCP network on loopback, plus
// a TCP managing endpoint — the full multi-process protocol path minus the
// process boundary.
type tcpHarness struct {
	sites  []*Site
	nets   []*transport.TCP
	mgrNet *transport.TCP
	caller *transport.Caller
}

func newTCPHarness(t *testing.T, n, items int) *tcpHarness {
	t.Helper()
	h := &tcpHarness{}
	addrs := make(map[core.SiteID]string)
	for i := 0; i < n; i++ {
		id := core.SiteID(i)
		net, err := transport.NewTCP(transport.TCPConfig{
			Self:          id,
			Addrs:         map[core.SiteID]string{id: "127.0.0.1:0"},
			RetryInterval: 20 * time.Millisecond,
			MaxRetries:    3,
		})
		if err != nil {
			t.Fatal(err)
		}
		h.nets = append(h.nets, net)
		addrs[id] = net.Addr()
	}
	mgrNet, err := transport.NewTCP(transport.TCPConfig{
		Self:  core.ManagingSite,
		Addrs: map[core.SiteID]string{core.ManagingSite: "127.0.0.1:0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.mgrNet = mgrNet
	addrs[core.ManagingSite] = mgrNet.Addr()

	for i := 0; i < n; i++ {
		for id, a := range addrs {
			h.nets[i].SetAddr(id, a)
		}
	}
	for id, a := range addrs {
		mgrNet.SetAddr(id, a)
	}

	for i := 0; i < n; i++ {
		s, err := New(Config{
			ID: core.SiteID(i), Sites: n, Items: items,
			AckTimeout: 200 * time.Millisecond,
		}, h.nets[i])
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		h.sites = append(h.sites, s)
	}

	ep, err := mgrNet.Endpoint(core.ManagingSite)
	if err != nil {
		t.Fatal(err)
	}
	h.caller = transport.NewCaller(ep, 10*time.Second)
	go func() {
		for {
			env, ok := ep.Recv()
			if !ok {
				return
			}
			h.caller.Deliver(env)
		}
	}()
	t.Cleanup(func() {
		for _, s := range h.sites {
			s.Stop()
		}
		for _, net := range h.nets {
			net.Close()
		}
		mgrNet.Close()
	})
	return h
}

func TestFullProtocolOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP integration is slower than the memory transport")
	}
	h := newTCPHarness(t, 3, 10)
	exec := func(coord core.SiteID, id core.TxnID, ops []core.Op) *msg.TxnResult {
		t.Helper()
		reply, err := h.caller.Call(coord, &msg.ClientTxn{Txn: id, Ops: ops})
		if err != nil {
			t.Fatalf("txn %d: %v", id, err)
		}
		return reply.Body.(*msg.TxnResult)
	}

	// Replicated write + remote read over real sockets.
	if res := exec(0, 1, []core.Op{core.Write(4, []byte("sockets"))}); !res.Committed {
		t.Fatalf("write aborted: %s", res.AbortReason)
	}
	res := exec(2, 2, []core.Op{core.Read(4)})
	if !res.Committed || !bytes.Equal(res.Reads[0].Value, []byte("sockets")) {
		t.Fatalf("read = %+v", res)
	}

	// Failure, detection, isolated progress.
	if _, err := h.caller.Call(1, &msg.FailSim{}); err != nil {
		t.Fatal(err)
	}
	if res := exec(0, 3, []core.Op{core.Write(5, []byte("detect"))}); res.Committed {
		t.Fatal("detection txn committed")
	}
	if res := exec(0, 4, []core.Op{core.Write(5, []byte("down-write"))}); !res.Committed {
		t.Fatalf("post-detection write aborted: %s", res.AbortReason)
	}

	// Recovery over TCP: session bump, fail-lock install, copier heal.
	reply, err := h.caller.Call(1, &msg.RecoverSim{})
	if err != nil {
		t.Fatal(err)
	}
	st := reply.Body.(*msg.StatusResp)
	if st.State != core.StatusUp || st.Session != 2 {
		t.Fatalf("recovery status: %+v", st)
	}
	res = exec(1, 5, []core.Op{core.Read(5)})
	if !res.Committed || !bytes.Equal(res.Reads[0].Value, []byte("down-write")) {
		t.Fatalf("healed read = %+v", res)
	}
	if res.Copiers != 1 {
		t.Errorf("copiers = %d", res.Copiers)
	}

	// Every site converged.
	for i := 0; i < 3; i++ {
		reply, err := h.caller.Call(core.SiteID(i), &msg.DumpReq{First: 5, Last: 5})
		if err != nil {
			t.Fatal(err)
		}
		iv := reply.Body.(*msg.DumpResp).Items[0]
		if !bytes.Equal(iv.Value, []byte("down-write")) {
			t.Errorf("site %d copy = %q", i, iv.Value)
		}
	}
}
