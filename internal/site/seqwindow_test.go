package site

import "testing"

func TestSeqWindowDropsExactDuplicates(t *testing.T) {
	w := newSeqWindow(8)
	for _, seq := range []uint64{5, 6, 7} {
		if !w.add(seq) {
			t.Fatalf("fresh seq %d rejected", seq)
		}
	}
	for _, seq := range []uint64{5, 6, 7} {
		if w.add(seq) {
			t.Fatalf("duplicate seq %d accepted", seq)
		}
	}
}

// Out-of-order arrivals are not duplicates: concurrent calls on one
// caller can hit the wire with seqs inverted, so a lower seq arriving
// after a higher one must still be handled.
func TestSeqWindowAcceptsOutOfOrder(t *testing.T) {
	w := newSeqWindow(8)
	if !w.add(10) {
		t.Fatal("seq 10 rejected")
	}
	if !w.add(9) {
		t.Fatal("out-of-order seq 9 rejected — watermark semantics leaked back in")
	}
	if w.add(10) || w.add(9) {
		t.Fatal("replay accepted")
	}
}

func TestSeqWindowEvictsOldest(t *testing.T) {
	w := newSeqWindow(4)
	for seq := uint64(1); seq <= 6; seq++ {
		if !w.add(seq) {
			t.Fatalf("fresh seq %d rejected", seq)
		}
	}
	// 1 and 2 were evicted; re-adding them must succeed (the window only
	// guarantees suppression within its capacity).
	if !w.add(1) || !w.add(2) {
		t.Fatal("evicted seqs rejected")
	}
	// 5 and 6 are still inside the window.
	if w.add(5) || w.add(6) {
		t.Fatal("in-window duplicate accepted")
	}
	if got := len(w.seen); got != 4 {
		t.Fatalf("window holds %d seqs, want capacity 4", got)
	}
}
