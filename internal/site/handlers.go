package site

import (
	"fmt"
	"time"

	"minraid/internal/core"
	"minraid/internal/lockmgr"
	"minraid/internal/msg"
	"minraid/internal/trace"
	"minraid/internal/txn"
)

// handle dispatches one inbound request. Handlers that only touch local
// state run inline, preserving arrival order; handlers that must wait for
// other sites (transaction coordination, recovery, type-3 replication) are
// spawned so the receive loop stays responsive.
func (s *Site) handle(env *msg.Envelope) {
	switch body := env.Body.(type) {
	case *msg.ClientTxn:
		s.wg.Add(1)
		go s.coordinate(env, body)
	case *msg.Prepare:
		if s.concurrent() {
			// Lock acquisition may block; keep the receive loop free.
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.handlePrepare(env, body)
			}()
		} else {
			s.handlePrepare(env, body)
		}
	case *msg.Commit:
		s.handleCommit(env, body)
	case *msg.CommitBatch:
		s.handleCommitBatch(env, body)
	case *msg.Abort:
		s.handleAbort(body)
	case *msg.CopyRequest:
		s.handleCopyRequest(env, body)
	case *msg.ClearFailLocks:
		s.handleClearFailLocks(env, body)
	case *msg.CtrlRecover:
		s.handleCtrlRecover(env, body)
	case *msg.CtrlFail:
		s.handleCtrlFail(env, body)
	case *msg.CtrlReplicate:
		s.handleCtrlReplicate(env, body)
	case *msg.CtrlLockSync:
		s.handleCtrlLockSync(env, body)
	case *msg.CtrlRehost:
		s.handleCtrlRehost(env, body)
	case *msg.ReadReq:
		s.handleReadReq(env, body)
	case *msg.StatusReq:
		s.handleStatusReq(env, body)
	case *msg.DumpReq:
		s.handleDumpReq(env, body)
	case *msg.FailSim:
		s.failNow()
		s.caller.Reply(env, &msg.CtrlFailAck{})
	case *msg.RecoverSim:
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.recoverSite(env.Trace)
			s.mu.Lock()
			resp := s.statusRespLocked(false)
			s.mu.Unlock()
			s.caller.Reply(env, resp)
		}()
	case *msg.Shutdown:
		// Reply first; Stop closes the endpoint.
		s.caller.Reply(env, &msg.CtrlFailAck{})
		go s.Stop()
	default:
		// Unknown request kinds are dropped; replies were routed earlier.
	}
}

// handlePrepare is phase one at a participant: "receive copy update from
// coordinating site; send ack to coordinating site" (Appendix A.2). The
// writes are staged until commit or abort.
//
// The prepare carries the coordinator's nominal session vector; if its
// entry for this site names a different session, the coordinator formed
// its write set before this site's most recent failure/recovery transition
// and must abort (status change during execution).
func (s *Site) handlePrepare(env *msg.Envelope, body *msg.Prepare) {
	for _, iv := range body.Writes {
		if int(iv.Item) >= s.cfg.Items {
			s.caller.Reply(env, &msg.PrepareAck{Txn: body.Txn, OK: false, Reason: txn.AbortInvalid})
			return
		}
	}

	// Concurrent mode: take exclusive locks on this copy of the write
	// set before staging — the participant half of distributed 2PL. A
	// deadlock or timeout is a retriable NACK, with the reason preserved
	// so the coordinator's abort keeps the two distinguishable.
	var lm *lockmgr.Manager
	if s.concurrent() {
		lm = s.lockManager()
		items := make([]core.ItemID, 0, len(body.Writes))
		for _, iv := range body.Writes {
			items = append(items, iv.Item)
		}
		if err := lm.AcquireAll(body.Txn, nil, items); err != nil {
			lm.Release(body.Txn)
			s.caller.Reply(env, &msg.PrepareAck{Txn: body.Txn, OK: false, Reason: lockAbortReason(err)})
			return
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != core.StatusUp || (lm != nil && lm != s.locks) {
		// Not operational (or failed while waiting for locks): a
		// recovering site must not vote. No reply; the coordinator's
		// timeout handles it.
		if lm != nil {
			lm.Release(body.Txn)
		}
		return
	}
	if int(s.cfg.ID) < len(body.Vector) {
		if got := body.Vector[s.cfg.ID].Session; got != s.session {
			if lm != nil {
				lm.Release(body.Txn)
			}
			s.caller.Reply(env, &msg.PrepareAck{Txn: body.Txn, OK: false, Reason: txn.AbortStaleSession})
			return
		}
	}
	// Reject a prepare whose vector predates a recovery this site knows
	// about: the coordinator chose its write set before learning that a
	// site rejoined, so that site would silently miss the write without a
	// fail-lock. This is the session numbers' stated purpose —
	// "determining if the status of a site has changed during the
	// execution of a transaction" (§1.1) — generalized to every entry.
	for k := 0; k < s.vec.Len() && k < len(body.Vector); k++ {
		if body.Vector[k].Session < s.vec.Session(core.SiteID(k)) {
			if lm != nil {
				lm.Release(body.Txn)
			}
			s.caller.Reply(env, &msg.PrepareAck{Txn: body.Txn, OK: false, Reason: txn.AbortStaleSession})
			return
		}
	}
	st := &stagedTxn{writes: body.Writes, maintOnly: body.MaintOnly, vector: body.Vector, start: time.Now(), coord: env.From, trace: env.Trace, lm: lm}
	s.staged[body.Txn] = st
	// Appendix A.2's third arm: "else /* coordinating site has failed */
	// run control type 2 transaction to announce failure". A participant
	// that hears neither commit nor abort within the decision timeout
	// concludes the coordinator died mid-protocol, discards the staged
	// copy updates, and announces the failure.
	st.timer = time.AfterFunc(decisionTimeout(s.caller.Timeout()), func() {
		s.coordinatorLost(body.Txn)
	})
	s.caller.Reply(env, &msg.PrepareAck{Txn: body.Txn, OK: true})
	s.emit(env.Trace, trace.PhasePrepare, fmt.Sprintf("writes=%d", len(body.Writes)), st.start)
}

// decisionTimeout is how long a participant waits for the coordinator's
// phase-two decision before presuming it failed. Several ack timeouts: the
// coordinator itself waits one ack timeout per phase-one straggler before
// deciding.
func decisionTimeout(ackTimeout time.Duration) time.Duration { return 4 * ackTimeout }

// coordinatorLost handles a phase-two decision that never arrived.
func (s *Site) coordinatorLost(id core.TxnID) {
	s.mu.Lock()
	st, ok := s.staged[id]
	if !ok || s.state != core.StatusUp {
		s.mu.Unlock()
		return
	}
	delete(s.staged, id)
	st.finish(id)
	coord := st.coord
	s.mu.Unlock()
	tr := st.trace
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.announceFailure([]core.SiteID{coord}, tr)
	}()
}

// handleCommit is phase two at a participant: "commit database data items;
// update fail-locks for data items" (Appendix A.2).
func (s *Site) handleCommit(env *msg.Envelope, body *msg.Commit) {
	s.mu.Lock()
	st, ok := s.staged[body.Txn]
	if !ok {
		// Unknown transaction: the staged state was discarded, either by
		// a failure simulation or by the decision timeout. The decision
		// timeout (4x the ack timeout) comfortably exceeds the
		// coordinator's worst-case phase gap (one ack timeout), so a
		// commit racing the timeout is not expected in practice; ack so
		// the coordinator completes, and rely on recovery fail-locks for
		// repair in the failure-simulation case.
		s.mu.Unlock()
		s.caller.Reply(env, &msg.CommitAck{Txn: body.Txn})
		return
	}
	delete(s.staged, body.Txn)
	defer st.finish(body.Txn)
	// Concurrent mode ships the final version numbers with the commit;
	// overlay them onto the staged values.
	if len(body.Versions) > 0 {
		byItem := make(map[core.ItemID]core.TxnID, len(body.Versions))
		for _, v := range body.Versions {
			byItem[v.Item] = v.Version
		}
		for i := range st.writes {
			if v, ok := byItem[st.writes[i].Item]; ok {
				st.writes[i].Version = v
			}
		}
	}
	for _, iv := range st.writes {
		if _, err := s.store.Apply(iv); err != nil {
			panic("site: applying staged write: " + err.Error())
		}
	}
	s.maintainFailLocksLocked(st.writes, st.maintOnly, core.VectorFromRecords(st.vector))
	s.stats.Participated++
	armed := s.batchArmed
	s.mu.Unlock()
	s.reg.Observe(TimerPartTxn, time.Since(st.start))
	s.emit(env.Trace, trace.PhaseCommit, fmt.Sprintf("writes=%d", len(st.writes)), st.start)
	s.caller.Reply(env, &msg.CommitAck{Txn: body.Txn})
	if armed {
		// A commit may have dropped the fail-locked fraction below the
		// two-step recovery threshold.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.checkBatchTrigger()
		}()
	}
}

// handleAbort discards staged copy updates (Appendix A.2).
func (s *Site) handleAbort(body *msg.Abort) {
	s.mu.Lock()
	if st, ok := s.staged[body.Txn]; ok {
		st.finish(body.Txn)
		delete(s.staged, body.Txn)
	}
	s.mu.Unlock()
}

// maintainFailLocksLocked performs commit-time fail-lock maintenance for
// the written items: set the bit of every non-operational site, re-clear
// the bit of every operational site (§1.2), restricted to each item's
// hosting sites, judged by the coordinating transaction's session vector
// (see stagedTxn.vector). maintOnly lists written items this site does
// not host (partial replication): their fail-locks are maintained too, so
// tables stay fully replicated. Callers hold mu.
func (s *Site) maintainFailLocksLocked(writes []core.ItemVersion, maintOnly []core.ItemID, vec core.SessionVector) {
	if s.cfg.DisableFailLockMaintenance || !s.pol.UsesFailLocks() {
		return
	}
	rep := s.replicaMap()
	maintain := func(item core.ItemID) {
		set, cleared := s.flocks.MaintainMasked(item, vec, rep.HostMask(item))
		s.stats.FailLocksSet += uint64(set)
		s.stats.FailLocksCleared += uint64(cleared)
	}
	for _, iv := range writes {
		maintain(iv.Item)
	}
	for _, item := range maintOnly {
		if int(item) < s.cfg.Items {
			maintain(item)
		}
	}
}

// handleCopyRequest serves a copier transaction as donor: return the
// requested copies, provided this site's own copies are up to date (no
// fail-lock set for this site).
func (s *Site) handleCopyRequest(env *msg.Envelope, body *msg.CopyRequest) {
	start := time.Now()
	rep := s.replicaMap()
	s.mu.Lock()
	if s.state != core.StatusUp {
		s.mu.Unlock()
		return
	}
	items := make([]core.ItemVersion, 0, len(body.Items))
	for _, item := range body.Items {
		if int(item) >= s.cfg.Items || !rep.IsHost(item, s.cfg.ID) {
			s.mu.Unlock()
			s.caller.Reply(env, &msg.CopyResponse{Txn: body.Txn, OK: false, Reason: "donor hosts no copy"})
			return
		}
		if s.flocks.IsSet(item, s.cfg.ID) {
			s.mu.Unlock()
			s.caller.Reply(env, &msg.CopyResponse{Txn: body.Txn, OK: false, Reason: "donor copy fail-locked"})
			return
		}
		iv, err := s.store.Get(item)
		if err != nil {
			s.mu.Unlock()
			s.caller.Reply(env, &msg.CopyResponse{Txn: body.Txn, OK: false, Reason: err.Error()})
			return
		}
		items = append(items, iv)
	}
	s.stats.CopiesServed++
	s.mu.Unlock()
	s.caller.Reply(env, &msg.CopyResponse{Txn: body.Txn, OK: true, Items: items})
	s.reg.Observe(TimerCopyServe, time.Since(start))
	s.emit(env.Trace, trace.PhaseCopyServe, fmt.Sprintf("items=%d", len(items)), start)
}

// handleClearFailLocks applies the special transaction that propagates
// fail-lock clears after copier transactions (§1.2), or — with Set — the
// conservative fail-lock sets for a participant lost between commit
// phases.
func (s *Site) handleClearFailLocks(env *msg.Envelope, body *msg.ClearFailLocks) {
	start := time.Now()
	rep := s.replicaMap()
	s.mu.Lock()
	for _, item := range body.Items {
		if int(item) >= s.cfg.Items || int(body.Site) >= s.cfg.Sites {
			continue
		}
		switch {
		// A fail-lock marks a stale copy; a site hosting no copy of the
		// item has nothing to be stale, so a Set for it is dropped rather
		// than planting a stray bit the audit would flag.
		case body.Set && !rep.IsHost(item, body.Site):
			continue
		case body.Set && !s.flocks.IsSet(item, body.Site):
			s.flocks.Set(item, body.Site)
			s.stats.FailLocksSet++
		case !body.Set && s.flocks.IsSet(item, body.Site):
			s.flocks.Clear(item, body.Site)
			s.stats.FailLocksCleared++
		}
	}
	s.mu.Unlock()
	s.caller.Reply(env, &msg.ClearFailLocksAck{Txn: body.Txn})
	mode := "clear"
	if body.Set {
		mode = "set"
	}
	s.emit(env.Trace, trace.PhaseClearFL, fmt.Sprintf("%s site=%d items=%d", mode, body.Site, len(body.Items)), start)
}

// handleCtrlRecover is a type-1 control transaction at an operational
// site: record the recovering site's new session number and ship back the
// session vector and fail-locks (§1.1).
func (s *Site) handleCtrlRecover(env *msg.Envelope, body *msg.CtrlRecover) {
	start := time.Now()
	s.mu.Lock()
	if s.state != core.StatusUp {
		s.mu.Unlock()
		return
	}
	s.vec.MarkUp(body.Site, body.Session)
	// The copy versions backing the snapshot travel with it so the
	// recovering site can merge donor tables per item instead of
	// installing whichever ack arrived first: per item, the newest copy
	// carries the authoritative lock word.
	resp := &msg.CtrlRecoverAck{
		OK:        true,
		Vector:    s.vec.Records(),
		FailLocks: s.flocks.Snapshot(),
		Versions:  s.versionVector(),
	}
	s.mu.Unlock()
	s.caller.Reply(env, resp)
	s.reg.Observe(TimerCtrl1Operational, time.Since(start))
	s.emit(env.Trace, trace.PhaseCtrl1, "operational", start)
}

// handleCtrlFail is a type-2 control transaction at a receiving site: mark
// the announced sites down, unless this site knows of a newer session for
// them (the announcement is stale).
func (s *Site) handleCtrlFail(env *msg.Envelope, body *msg.CtrlFail) {
	start := time.Now()
	s.mu.Lock()
	for _, f := range body.Failed {
		if f.Site == s.cfg.ID {
			continue // we know our own state better
		}
		if int(f.Site) < s.vec.Len() && s.vec.Session(f.Site) <= f.Session {
			s.vec.MarkDown(f.Site)
		}
	}
	s.mu.Unlock()
	s.caller.Reply(env, &msg.CtrlFailAck{})
	s.emit(env.Trace, trace.PhaseCtrl2, fmt.Sprintf("failed=%d", len(body.Failed)), start)
	if s.cfg.EnableType3 {
		s.wg.Add(1)
		go s.maybeReplicate(env.Trace)
	}
}

// handleCtrlReplicate is a type-3 control transaction at the backup site:
// install the pushed copies and clear the local fail-locks for them.
func (s *Site) handleCtrlReplicate(env *msg.Envelope, body *msg.CtrlReplicate) {
	s.mu.Lock()
	if s.state != core.StatusUp {
		s.mu.Unlock()
		return
	}
	for _, iv := range body.Items {
		if _, err := s.store.Apply(iv); err != nil {
			s.mu.Unlock()
			s.caller.Reply(env, &msg.CtrlReplicateAck{OK: false})
			return
		}
		if s.flocks.IsSet(iv.Item, s.cfg.ID) {
			s.flocks.Clear(iv.Item, s.cfg.ID)
			s.stats.FailLocksCleared++
		}
	}
	s.mu.Unlock()
	s.caller.Reply(env, &msg.CtrlReplicateAck{OK: true})
}

// handleCtrlLockSync finishes a type-1 control transaction from the
// recovered site's side: adopt its lock word for every item where its
// copy is strictly ahead of ours. Those are exactly the items whose
// staleness only the sender knew about — writes it committed while it
// believed the rest of the system down marked the other copies stale in
// its table alone, and its recovery must not erase that record. The
// version gate keeps the merge from resurrecting bits that were
// legitimately cleared while the sender was down: for those items the
// sender is not ahead, so its word is ignored. Versions and lock words
// are read and merged under the site lock, atomically with commit-time
// maintenance.
func (s *Site) handleCtrlLockSync(env *msg.Envelope, body *msg.CtrlLockSync) {
	start := time.Now()
	s.mu.Lock()
	if s.state != core.StatusUp {
		s.mu.Unlock()
		return
	}
	// A length mismatch means a mis-sized peer: drop the merge.
	_ = s.flocks.MergeAhead(body.FailLocks, body.Versions, s.versionVector())
	s.mu.Unlock()
	s.caller.Reply(env, &msg.CtrlLockSyncAck{})
	s.emit(env.Trace, trace.PhaseCtrl1, "lock-sync", start)
}

// handleCtrlRehost re-homes a permanently lost site's copies: for each
// (item, new host) pair the replica map's host bit moves from the lost
// site to the new host, the new host's copy is fail-locked (it holds no
// data yet — copiers populate it on demand or via drain), and any stray
// bit for the lost site is dropped (it no longer hosts, so it can no
// longer be stale). The map is replaced copy-on-write: concurrent
// readers keep the old snapshot; the handler runs in the event loop, so
// rehosts themselves are serialized.
func (s *Site) handleCtrlRehost(env *msg.Envelope, body *msg.CtrlRehost) {
	start := time.Now()
	if len(body.Items) != len(body.NewHosts) {
		s.caller.Reply(env, &msg.CtrlRehostAck{OK: false, Reason: "items/hosts length mismatch"})
		return
	}
	for i, item := range body.Items {
		if int(item) >= s.cfg.Items || int(body.NewHosts[i]) >= s.cfg.Sites || int(body.Lost) >= s.cfg.Sites {
			s.caller.Reply(env, &msg.CtrlRehostAck{OK: false, Reason: "item or site out of range"})
			return
		}
	}
	s.mu.Lock()
	if s.state != core.StatusUp {
		s.mu.Unlock()
		s.caller.Reply(env, &msg.CtrlRehostAck{OK: false, Reason: "not operational"})
		return
	}
	next := s.replicaMap().Clone()
	for i, item := range body.Items {
		next.Rehost(item, body.Lost, body.NewHosts[i])
		if !s.flocks.IsSet(item, body.NewHosts[i]) {
			s.flocks.Set(item, body.NewHosts[i])
			s.stats.FailLocksSet++
		}
		if s.flocks.IsSet(item, body.Lost) {
			s.flocks.Clear(item, body.Lost)
			s.stats.FailLocksCleared++
		}
	}
	s.replicas.Store(next)
	s.mu.Unlock()
	s.caller.Reply(env, &msg.CtrlRehostAck{OK: true})
	s.emit(env.Trace, trace.PhaseCtrl1, fmt.Sprintf("rehost lost=%d items=%d", body.Lost, len(body.Items)), start)
}

// handleReadReq serves a remote read: version voting for the quorum
// baseline (any copy qualifies), or a fresh-copy read for partially
// replicated ROWAA (RequireFresh: this site must host the item and its
// copy must not be fail-locked).
func (s *Site) handleReadReq(env *msg.Envelope, body *msg.ReadReq) {
	start := time.Now()
	rep := s.replicaMap()
	s.mu.Lock()
	if s.state != core.StatusUp {
		s.mu.Unlock()
		return
	}
	items := make([]core.ItemVersion, 0, len(body.Items))
	for _, item := range body.Items {
		if body.RequireFresh && (int(item) >= s.cfg.Items ||
			!rep.IsHost(item, s.cfg.ID) || s.flocks.IsSet(item, s.cfg.ID)) {
			s.mu.Unlock()
			s.caller.Reply(env, &msg.ReadResp{Txn: body.Txn, OK: false})
			return
		}
		iv, err := s.store.Get(item)
		if err != nil {
			s.mu.Unlock()
			s.caller.Reply(env, &msg.ReadResp{Txn: body.Txn, OK: false})
			return
		}
		items = append(items, iv)
	}
	s.mu.Unlock()
	s.caller.Reply(env, &msg.ReadResp{Txn: body.Txn, OK: true, Items: items})
	s.emit(env.Trace, trace.PhaseRead, fmt.Sprintf("items=%d", len(items)), start)
}

// handleStatusReq serves the managing site's instrumentation probe. It is
// answered even by a failed site: the probe is out-of-band measurement
// machinery, not a protocol action.
func (s *Site) handleStatusReq(env *msg.Envelope, body *msg.StatusReq) {
	s.mu.Lock()
	resp := s.statusRespLocked(body.IncludeFailLocks)
	s.mu.Unlock()
	s.caller.Reply(env, resp)
}

// handleDumpReq serves the consistency audit. With HostedOnly the dump
// is filtered to the items this site hosts, so a partial-replication
// audit moves O(items×degree) copies instead of O(items×sites).
func (s *Site) handleDumpReq(env *msg.Envelope, body *msg.DumpReq) {
	items, err := s.store.Dump(body.First, body.Last)
	if err != nil {
		items = nil
	}
	if body.HostedOnly {
		rep := s.replicaMap()
		if !rep.IsFull() {
			hosted := items[:0:0]
			for _, iv := range items {
				if rep.IsHost(iv.Item, s.cfg.ID) {
					hosted = append(hosted, iv)
				}
			}
			items = hosted
		}
	}
	s.caller.Reply(env, &msg.DumpResp{Items: items})
}
