package site

import (
	"errors"
	"fmt"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
	"minraid/internal/trace"
	"minraid/internal/transport"
)

// failNow simulates a site failure: the site stops participating in any
// further system actions (§1.2). In-flight calls are cancelled so a
// coordination in progress dies silently; staged phase-one writes are
// discarded (the process's volatile 2PC state is gone); the database copy
// itself survives in "virtual memory", exactly as in mini-RAID, and will
// simply miss updates until recovery.
func (s *Site) failNow() {
	s.mu.Lock()
	if s.state == core.StatusDown {
		s.mu.Unlock()
		return
	}
	s.state = core.StatusDown
	s.vec.MarkDown(s.cfg.ID)
	for id, st := range s.staged {
		st.finish(id)
	}
	s.staged = make(map[core.TxnID]*stagedTxn)
	s.batchArmed = false
	if s.locks != nil {
		// A crashed process loses its lock table: fail every waiter and
		// start the next session with a fresh manager.
		s.locks.Close()
		s.locks = newLockManager(s.cfg)
	}
	s.mu.Unlock()
	if s.epoch != nil {
		// The batch is volatile 2PC state: wake its waiters with
		// AbortSiteDown (they stay silent — the site is down) and let the
		// participants' decision timers discard their staged halves.
		s.epoch.drain()
	}
	s.caller.CancelAll()
}

// versionVector reads the per-item copy versions from the local store —
// the evidence backing a fail-lock exchange: commit-time maintenance
// rewrites an item's lock word together with its copy, so per item the
// side holding the newer copy holds the authoritative word.
func (s *Site) versionVector() []uint64 {
	out := make([]uint64, s.cfg.Items)
	if s.cfg.Items == 0 {
		return out
	}
	dump, err := s.store.Dump(0, core.ItemID(s.cfg.Items-1))
	if err != nil {
		return out
	}
	for _, iv := range dump {
		if int(iv.Item) < len(out) {
			out[iv.Item] = uint64(iv.Version)
		}
	}
	return out
}

// recoverSite runs the recovery procedure: bump the session number, run a
// type-1 control transaction (announce the new session to every site,
// install the session vector and fail-locks returned by an operational
// site), and become operational. It returns false if recovery is blocked
// because no operational site could supply the vector and fail-locks —
// the situation §3.2 calls "a site's recovery being blocked by the failure
// of other sites".
func (s *Site) recoverSite(tr uint64) bool {
	start := time.Now()
	s.mu.Lock()
	if s.state == core.StatusUp {
		s.mu.Unlock()
		return true
	}
	if s.state != core.StatusDown {
		s.mu.Unlock()
		return false
	}
	s.state = core.StatusRecovering
	s.session++
	session := s.session
	s.stats.ControlType1++
	// The table survived the failure (a failed site keeps its database,
	// §1.2) and may hold the only record of staleness elsewhere: writes
	// this site committed while it believed the others down marked their
	// copies stale in this table alone. Snapshot it with the copy
	// versions backing it; the merge below keeps its words for items
	// where this site is provably ahead, and the lock-sync fan-out at
	// the end re-publishes them.
	ownLocks := s.flocks.Snapshot()
	ownVers := s.versionVector()
	// The announcement goes to every other site; sites that are down
	// simply never answer. (A stale vector cannot be trusted to say who
	// is operational — that is what the announcement finds out.)
	var targets []core.SiteID
	for i := 0; i < s.cfg.Sites; i++ {
		if id := core.SiteID(i); id != s.cfg.ID {
			targets = append(targets, id)
		}
	}
	s.mu.Unlock()

	// The bumped session must be durable before it is announced: a crash
	// after the announcement but before the persist would let the next
	// incarnation re-announce an old session, which survivors (and any
	// stale failure announcement still in flight) would veto or, worse,
	// believe. An unpersistable session keeps the site down.
	if s.cfg.PersistSession != nil {
		if err := s.cfg.PersistSession(session); err != nil {
			s.mu.Lock()
			if s.state == core.StatusRecovering {
				s.state = core.StatusDown
				s.vec.MarkDown(s.cfg.ID)
			}
			s.mu.Unlock()
			return false
		}
	}

	if len(targets) == 0 {
		// Single-site system: trivially operational.
		s.mu.Lock()
		s.vec.MarkUp(s.cfg.ID, session)
		s.state = core.StatusUp
		s.mu.Unlock()
		s.reg.Observe(TimerCtrl1Recovering, time.Since(start))
		s.emit(tr, trace.PhaseCtrl1, "recovering", start)
		return true
	}

	replies := s.caller.MulticallT(tr, targets, func(core.SiteID) msg.Body {
		return &msg.CtrlRecover{Site: s.cfg.ID, Session: session}
	})

	s.mu.Lock()
	if s.state != core.StatusRecovering {
		// A failure order arrived while the announcement was in flight.
		s.mu.Unlock()
		return false
	}
	// "obtains a copy of the session vector and fail-locks from an
	// operational site for the recovering site" (§1.1) — but merged
	// per item over the surviving local table and over every donor, not
	// installed from whichever ack happened to arrive first: donors'
	// tables can diverge after false suspicions, and replacing the whole
	// table would erase any staleness only a subset of them (or only
	// this site, pre-failure) knew about. Per item the newest copy
	// version carries the authoritative lock word; on a version tie a
	// donor's current word beats this site's pre-failure word (which may
	// hold bits cleared while this site was down), and tied donors are
	// OR-ed (their divergence is transient; keeping a bit is the safe
	// direction).
	installed := false
	words := make([]uint64, len(ownLocks))
	vers := make([]uint64, len(ownVers))
	copy(words, ownLocks)
	copy(vers, ownVers)
	fromDonor := make([]bool, len(words))
	for _, id := range targets {
		reply, ok := replies[id]
		if !ok {
			continue
		}
		ack, wellTyped := reply.Body.(*msg.CtrlRecoverAck)
		if !wellTyped {
			// A garbled reply is no reply: the site cannot serve as donor
			// and, below, is treated like a site that never answered.
			delete(replies, id)
			continue
		}
		if !ack.OK {
			continue
		}
		if len(ack.FailLocks) != len(words) || len(ack.Versions) != len(words) {
			delete(replies, id)
			continue
		}
		for i := range words {
			switch {
			case ack.Versions[i] > vers[i]:
				words[i], vers[i] = ack.FailLocks[i], ack.Versions[i]
				fromDonor[i] = true
			case ack.Versions[i] == vers[i] && fromDonor[i]:
				words[i] |= ack.FailLocks[i]
			case ack.Versions[i] == vers[i]:
				words[i] = ack.FailLocks[i]
				fromDonor[i] = true
			}
		}
		installed = true
		s.vec.Merge(core.VectorFromRecords(ack.Vector))
	}
	if installed {
		if err := s.flocks.Install(words); err != nil {
			installed = false
		}
	}
	// Items whose word survived every donor (no donor copy at or above
	// this site's version): staleness only this site knows about, which
	// the survivors must be told — their tables have no bit for copies
	// this site outran while writing alone.
	needSync := false
	for i := range words {
		if !fromDonor[i] && words[i] != 0 {
			needSync = true
			break
		}
	}
	if !installed {
		// Recovery blocked: without fail-locks from an operational site
		// the out-of-date items cannot be identified. Back to down.
		s.state = core.StatusDown
		s.vec.MarkDown(s.cfg.ID)
		s.mu.Unlock()
		return false
	}
	// Sites that did not answer the announcement are down. Collect them
	// for a type-2 announcement once this site is operational: marking
	// them down only locally would leave the survivors' nominal vectors
	// divergent (they still carry the silent sites as up) until their own
	// ack-timeout detection fires on some later transaction.
	var silent []core.SiteID
	for _, id := range targets {
		if _, ok := replies[id]; !ok && s.vec.IsUp(id) {
			silent = append(silent, id)
		}
	}
	s.vec.MarkUp(s.cfg.ID, session)
	s.state = core.StatusUp
	instant := s.cfg.InstantRecovery
	armBatch := !instant && s.cfg.BatchCopierThreshold > 0
	if armBatch {
		s.batchArmed = true
	}
	stale := len(s.flocks.ItemsLockedFor(s.cfg.ID))
	s.mu.Unlock()
	s.reg.Observe(TimerCtrl1Recovering, time.Since(start))
	kind := "recovering"
	if instant {
		// REDO-only instant recovery: the site is already serving — clean
		// items locally, fail-locked items via demand copiers — and the
		// stale set just measured is the backlog the background scrubber
		// will heal.
		kind = "recovering-instant"
		s.reg.Add(CounterRecoveryStale, uint64(stale))
	}
	s.emit(tr, trace.PhaseCtrl1, kind, start)

	// announceFailure marks the silent sites down locally and tells every
	// survivor, so nominal vectors converge on the recovery's evidence
	// instead of waiting for each survivor's own timeout.
	if len(silent) > 0 {
		s.announceFailure(silent, tr)
	}
	if needSync {
		s.fanoutLockSync(words, vers, tr)
	}
	if armBatch {
		s.maybeBatchRefresh(tr)
	}
	return true
}

// fanoutLockSync publishes the recovered site's post-merge fail-lock table
// to every operational site. Needed when the merge kept words no donor
// could vouch for — staleness recorded while this site committed writes
// alone — since the survivors' tables carry no bit for those copies and
// replacing this site's table on its next recovery would erase the record
// for good. Receivers adopt a word only where the shipped copy version is
// strictly ahead of their own, so legitimately cleared bits never travel
// backwards. Survivors that do not answer are announced failed, exactly as
// for a lost clear fan-out: an unreachable table would otherwise silently
// miss the staleness record.
func (s *Site) fanoutLockSync(words, vers []uint64, tr uint64) {
	s.mu.Lock()
	if s.state != core.StatusUp {
		s.mu.Unlock()
		return
	}
	targets := s.vec.Operational(s.cfg.ID)
	s.mu.Unlock()
	if len(targets) == 0 {
		return
	}
	start := time.Now()
	results := s.caller.MulticastT(tr, transport.Outcalls(targets, func(core.SiteID) msg.Body {
		return &msg.CtrlLockSync{Site: s.cfg.ID, FailLocks: words, Versions: vers}
	}))
	var lost []core.SiteID
	for _, r := range results {
		if errors.Is(r.Err, transport.ErrCancelled) {
			return // this site failed mid-fan-out: die silently
		}
		if r.Err != nil {
			lost = append(lost, r.To)
		}
	}
	s.emit(tr, trace.PhaseCtrl1, "lock-sync", start)
	if len(lost) > 0 {
		s.announceFailure(lost, tr)
	}
}

// announceFailure runs a type-2 control transaction for the given sites:
// mark them down locally, then announce to each remaining operational site
// so it updates its nominal session vector (§1.1).
func (s *Site) announceFailure(failed []core.SiteID, tr uint64) {
	if len(failed) == 0 {
		return
	}
	s.mu.Lock()
	var fails []msg.SiteFail
	for _, id := range failed {
		if id == s.cfg.ID || int(id) >= s.vec.Len() || !s.vec.IsUp(id) {
			continue
		}
		fails = append(fails, msg.SiteFail{Site: id, Session: s.vec.Session(id)})
		s.vec.MarkDown(id)
	}
	if len(fails) == 0 {
		s.mu.Unlock()
		return
	}
	s.stats.ControlType2++
	targets := s.vec.Operational(s.cfg.ID)
	s.mu.Unlock()

	// One parallel multicast under a single shared ack deadline: a target
	// that is itself dead costs the announcement ~1 timeout total, not one
	// timeout per dead target. A target that cannot be reached is left for
	// the next transaction that needs it to detect — announcing it here
	// would recurse into another type-2 for no benefit; a target that
	// answered is alive and must never be announced.
	if len(targets) > 0 {
		start := time.Now()
		results := s.caller.MulticastT(tr, transport.Outcalls(targets, func(core.SiteID) msg.Body {
			return &msg.CtrlFail{Failed: fails}
		}))
		for _, r := range results {
			if r.Err != nil {
				continue
			}
			// The paper's 68 ms covers "the sending of the failure
			// announcement to a particular site and the updating of the
			// session vector at that site" — per-target round trip.
			s.reg.Observe(TimerCtrl2, r.RTT)
			s.emit(tr, trace.PhaseCtrl2, "announce", start)
		}
		s.reg.Observe(TimerCtrl2Fanout, time.Since(start))
	}
	if s.cfg.EnableType3 {
		s.maybeReplicate0(tr)
	}
}

// maybeBatchRefresh implements step two of the paper's proposed two-step
// recovery (§3.2): once the fraction of items fail-locked for this site is
// at or below the threshold, refresh every remaining out-of-date copy in
// batch with copier transactions, instead of waiting for reads to demand
// them. Runs under the transaction gate so it serializes with database
// transactions.
func (s *Site) maybeBatchRefresh(tr uint64) {
	s.mu.Lock()
	if !s.batchArmed || s.state != core.StatusUp {
		s.mu.Unlock()
		return
	}
	locked := s.flocks.ItemsLockedFor(s.cfg.ID)
	frac := float64(len(locked)) / float64(s.cfg.Items)
	if len(locked) == 0 {
		s.batchArmed = false
		s.mu.Unlock()
		return
	}
	if frac > s.cfg.BatchCopierThreshold {
		s.mu.Unlock()
		return // step one: stay demand-driven until below threshold
	}
	s.batchArmed = false
	s.mu.Unlock()

	s.txnGate <- struct{}{}
	defer func() { <-s.txnGate }()
	start := time.Now()
	// Re-read under the gate: commits may have refreshed items meanwhile.
	s.mu.Lock()
	locked = s.flocks.ItemsLockedFor(s.cfg.ID)
	s.mu.Unlock()
	if len(locked) == 0 {
		return
	}
	// The batch copiers count themselves (inside runCopiers, before each
	// call) so the counter is never behind the fail-lock drain.
	s.runCopiers(locked, core.NoTxn, true, tr)
	s.reg.Observe(TimerBatchRefresh, time.Since(start))
}

// checkBatchTrigger re-evaluates the two-step threshold; called after
// commits that may have dropped the fail-locked fraction.
func (s *Site) checkBatchTrigger() {
	s.mu.Lock()
	armed := s.batchArmed
	s.mu.Unlock()
	if armed {
		s.maybeBatchRefresh(0)
	}
}

// maybeReplicate runs the paper's proposed type-3 control transaction from
// a spawned goroutine.
func (s *Site) maybeReplicate(tr uint64) {
	defer s.wg.Done()
	s.maybeReplicate0(tr)
}

// maybeReplicate0 scans for items whose only up-to-date copy among
// operational sites is this site's, and pushes a backup copy of each to
// another operational site (§3.2: "a site having the last up-to-date copy
// of a data item would create a copy on a back-up site"). In the fully
// replicated database the "back-up site" is an operational site whose own
// copy is fail-locked; installing the fresh copy clears that fail-lock,
// and the special clear transaction propagates the news.
//
// The push is chunked to Type3Batch items per CtrlReplicate, and the
// backup site is re-chosen per chunk (rotating over every operational
// candidate), so a large endangered set neither travels in one unbounded
// message nor lands entirely on the one site that happened to be stale
// for the first endangered item. A chunk whose backup fails just moves on
// to the next chunk and candidate.
func (s *Site) maybeReplicate0(tr uint64) {
	s.mu.Lock()
	if s.state != core.StatusUp {
		s.mu.Unlock()
		return
	}
	ups := s.vec.Operational()
	if len(ups) < 2 {
		s.mu.Unlock()
		return // nobody to back up onto
	}
	// endangered: items where this site is the sole up-to-date holder.
	// For such an item every OTHER operational site's copy is stale, so
	// the backup candidates — stale operational sites — are the same for
	// every endangered item: all operational sites but this one.
	var endangered []core.ItemVersion
	var candidates []core.SiteID
	for _, id := range ups {
		if id != s.cfg.ID {
			candidates = append(candidates, id)
		}
	}
	for i := 0; i < s.cfg.Items; i++ {
		item := core.ItemID(i)
		if s.flocks.IsSet(item, s.cfg.ID) {
			continue // our own copy is stale
		}
		fresh := 0
		staleUpFound := false
		for _, id := range ups {
			if !s.flocks.IsSet(item, id) {
				fresh++
			} else if id != s.cfg.ID {
				staleUpFound = true
			}
		}
		if fresh == 1 && staleUpFound {
			iv, err := s.store.Get(item)
			if err != nil {
				continue
			}
			endangered = append(endangered, iv)
		}
	}
	s.mu.Unlock()
	if len(endangered) == 0 || len(candidates) == 0 {
		return
	}

	start := time.Now()
	batch := s.cfg.Type3Batch
	var lostAll []core.SiteID
	lostSeen := make(map[core.SiteID]bool)
	chunks := 0
	for lo := 0; lo < len(endangered); lo += batch {
		hi := lo + batch
		if hi > len(endangered) {
			hi = len(endangered)
		}
		chunk := endangered[lo:hi]
		backup := candidates[chunks%len(candidates)]
		chunks++
		s.mu.Lock()
		alive := s.vec.IsUp(backup)
		s.mu.Unlock()
		if !alive {
			continue // failed since the scan; next chunk rotates onward
		}
		reply, err := s.caller.CallT(tr, backup, &msg.CtrlReplicate{Items: chunk})
		if err != nil {
			continue
		}
		ack, wellTyped := reply.Body.(*msg.CtrlReplicateAck)
		if !wellTyped || !ack.OK {
			continue
		}
		s.mu.Lock()
		s.stats.ControlType3++
		items := make([]core.ItemID, 0, len(chunk))
		for _, iv := range chunk {
			if s.flocks.IsSet(iv.Item, backup) {
				s.flocks.Clear(iv.Item, backup)
				s.stats.FailLocksCleared++
			}
			items = append(items, iv.Item)
		}
		targets := s.vec.Operational(s.cfg.ID, backup)
		s.mu.Unlock()
		// Propagate the backup site's refreshed status. Targets whose ack
		// never arrives are announced like any other clear fan-out loss —
		// their tables would otherwise keep stale bits for the backup site.
		lost, cancelled := s.fanoutClears(targets, &msg.ClearFailLocks{Site: backup, Items: items}, tr)
		if cancelled {
			return // local failure mid-push: stop silently
		}
		for _, id := range lost {
			if !lostSeen[id] {
				lostSeen[id] = true
				lostAll = append(lostAll, id)
			}
		}
	}
	s.reg.Observe(TimerCtrl3, time.Since(start))
	s.emit(tr, trace.PhaseCtrl3, fmt.Sprintf("backup chunks=%d", chunks), start)
	if len(lostAll) > 0 {
		s.announceFailure(lostAll, tr)
	}
}
