package site

import (
	"errors"
	"fmt"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
	"minraid/internal/trace"
	"minraid/internal/transport"
	"minraid/internal/txn"
)

// coordinate runs one database transaction as coordinator (Appendix A.1).
// It executes under the transaction gate, so transactions are processed
// serially as in the paper, and replies to the managing site with the
// outcome and the coordinator-measured elapsed time.
func (s *Site) coordinate(env *msg.Envelope, body *msg.ClientTxn) {
	defer s.wg.Done()
	s.txnGate <- struct{}{}
	defer func() { <-s.txnGate }()

	start := time.Now()
	t := txn.Txn{ID: body.Txn, Ops: body.Ops}
	tr := env.Trace

	// Concurrent mode: strict 2PL — shared locks on the read set,
	// exclusive on the write set, held until the transaction completes.
	// Failures here are retriable aborts, reported distinctly: a deadlock
	// victim (local waits-for cycle) versus a lock-wait timeout
	// (contention, or a distributed cycle only the timeout can break).
	if s.concurrent() {
		lm := s.lockManager()
		if err := lm.AcquireAll(t.ID, core.ReadSet(t.Ops), core.WriteSet(t.Ops)); err != nil {
			lm.Release(t.ID)
			reason := lockAbortReason(err)
			s.mu.Lock()
			s.stats.Aborted++
			up := s.state == core.StatusUp
			s.mu.Unlock()
			if up {
				s.reg.Add(CounterAborts, 1)
				s.emit(tr, trace.PhaseAbort, reason, start)
				s.caller.Reply(env, &msg.TxnResult{
					Txn: t.ID, AbortReason: reason,
					ElapsedNanos: uint64(time.Since(start).Nanoseconds()),
				})
			}
			return
		}
		defer lm.Release(t.ID)
	}

	res := s.executeTxn(t, tr)
	elapsed := time.Since(start)

	s.mu.Lock()
	state := s.state
	if res.Committed {
		s.stats.Committed++
	} else {
		s.stats.Aborted++
	}
	s.mu.Unlock()
	if state != core.StatusUp {
		return // failed mid-transaction: stay silent
	}

	if res.Committed {
		if res.Copiers > 0 {
			s.reg.Observe(TimerCoordTxnCopier, elapsed)
		} else {
			s.reg.Observe(TimerCoordTxn, elapsed)
		}
		s.reg.Add(CounterCommits, 1)
		s.emit(tr, trace.PhaseCoord, "committed", start)
	} else {
		s.reg.Add(CounterAborts, 1)
		s.emit(tr, trace.PhaseAbort, res.AbortReason, start)
	}
	s.caller.Reply(env, &msg.TxnResult{
		Txn:          res.Txn,
		Committed:    res.Committed,
		AbortReason:  res.AbortReason,
		Reads:        res.Reads,
		Copiers:      uint32(res.Copiers),
		ElapsedNanos: uint64(elapsed.Nanoseconds()),
	})

	s.mu.Lock()
	armed := s.batchArmed
	s.mu.Unlock()
	if res.Committed && armed {
		// Committing (or the copiers above) may have crossed the
		// two-step recovery threshold; re-evaluate once the gate frees.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.checkBatchTrigger()
		}()
	}
}

// executeTxn is the coordinator's transaction body. The structure follows
// Appendix A.1: copier transactions first, then reads, then the two-phase
// commit of the written items.
func (s *Site) executeTxn(t txn.Txn, tr uint64) txn.Result {
	res := txn.Result{Txn: t.ID}
	if err := t.Validate(s.cfg.Items); err != nil {
		res.AbortReason = txn.AbortInvalid
		return res
	}

	// "if transaction contains read operation for a fail-locked copy then
	// run copier transaction" (Appendix A.1).
	if s.pol.UsesFailLocks() && !s.cfg.DisableFailLockMaintenance {
		stale := s.staleReadItems(t)
		if len(stale) > 0 {
			n, reason := s.runCopiers(stale, t.ID, false, tr)
			res.Copiers += n
			if reason != "" {
				res.AbortReason = reason
				return res
			}
		}
	}

	// Reads observe the pre-transaction state (writes apply at commit).
	if s.pol.LocalRead() {
		// Partial replication: fetch items this site does not host from
		// an up-to-date hosting site (read-one of an available copy).
		remote, reason := s.remoteReads(t, tr)
		if reason != "" {
			res.AbortReason = reason
			return res
		}
		for _, op := range t.Ops {
			if op.Kind != core.OpRead {
				continue
			}
			if iv, ok := remote[op.Item]; ok {
				res.Reads = append(res.Reads, iv)
				continue
			}
			iv, err := s.store.Get(op.Item)
			if err != nil {
				res.AbortReason = txn.AbortInvalid
				return res
			}
			res.Reads = append(res.Reads, iv)
		}
	} else {
		reads, ok := s.quorumRead(t, tr)
		if !ok {
			res.AbortReason = txn.AbortNoQuorum
			return res
		}
		res.Reads = reads
	}

	writes := t.WriteVersions()
	if len(writes) == 0 {
		res.Committed = true
		return res
	}

	// Phase one: "issue copy update for written items to every
	// operational site" (per policy; ROWA contacts every site). Under
	// partial replication each operational site receives the copies it
	// hosts plus maintenance-only notices for the rest; an item with no
	// operational copy at all cannot be written, even by ROWAA.
	s.mu.Lock()
	if s.state != core.StatusUp {
		s.mu.Unlock()
		res.AbortReason = txn.AbortSiteDown
		return res
	}
	vec := s.vec.Clone()
	s.mu.Unlock()
	rep := s.replicaMap()
	targets := s.pol.WriteTargets(vec, s.cfg.ID)

	localWrites := writes
	perSite := map[core.SiteID][]core.ItemVersion{}
	perSiteMaint := map[core.SiteID][]core.ItemID{}
	if !rep.IsFull() {
		localWrites = localWrites[:0:0]
		for _, iv := range writes {
			avail := 0
			if rep.IsHost(iv.Item, s.cfg.ID) {
				localWrites = append(localWrites, iv)
				avail++
			}
			for _, target := range targets {
				if rep.IsHost(iv.Item, target) {
					perSite[target] = append(perSite[target], iv)
					avail++
				} else if s.pol.UsesFailLocks() {
					perSiteMaint[target] = append(perSiteMaint[target], iv.Item)
				}
			}
			if avail == 0 {
				res.AbortReason = txn.AbortWriteUnavailable
				return res
			}
		}
		if !s.pol.UsesFailLocks() {
			// No fail-lock tables to maintain (quorum): a site hosting
			// none of the written items has nothing to receive, so the
			// commit fan-out stays proportional to the items' hosting
			// degrees instead of the cluster size.
			contacted := targets[:0:0]
			for _, target := range targets {
				if len(perSite[target]) > 0 {
					contacted = append(contacted, target)
				}
			}
			targets = contacted
		}
	}

	var acked, nacked, silent []core.SiteID
	var nackReason string
	if len(targets) > 0 {
		replies := s.caller.MulticallT(tr, targets, func(target core.SiteID) msg.Body {
			if rep.IsFull() {
				return &msg.Prepare{Txn: t.ID, Vector: vec.Records(), Writes: writes}
			}
			return &msg.Prepare{
				Txn:       t.ID,
				Vector:    vec.Records(),
				Writes:    perSite[target],
				MaintOnly: perSiteMaint[target],
			}
		})
		for _, id := range targets {
			var ack *msg.PrepareAck
			if reply, ok := replies[id]; ok {
				ack, _ = reply.Body.(*msg.PrepareAck) // wrong type = no vote
			}
			switch {
			case ack == nil:
				silent = append(silent, id)
			case ack.OK:
				acked = append(acked, id)
			default:
				nacked = append(nacked, id)
				if nackReason == "" {
					nackReason = ack.Reason
				}
			}
		}
	}

	short := len(acked) < s.pol.RequiredAcks(s.cfg.Sites, len(targets))
	if !rep.IsFull() && !s.pol.AbortOnMissingAck() {
		// Per-item write quorums: a majority of the cluster can exceed a
		// partially replicated item's copy count, which would leave the
		// item permanently unwritable. Judge each written item against
		// its own hosting degree instead — the copies actually updated
		// (the coordinator's own hosted copy plus acked hosting targets)
		// must reach the policy's quorum for that degree.
		short = false
		for _, iv := range writes {
			updated, contacted := 0, 0
			if rep.IsHost(iv.Item, s.cfg.ID) {
				updated++
			}
			for _, id := range targets {
				if rep.IsHost(iv.Item, id) {
					contacted++
				}
			}
			for _, id := range acked {
				if rep.IsHost(iv.Item, id) {
					updated++
				}
			}
			// +1 converts RequiredAcks's acks-from-others count into a
			// total copy count including the coordinator's.
			if updated < s.pol.RequiredAcks(rep.Degree(iv.Item), contacted)+1 {
				short = true
				break
			}
		}
	}
	if (s.pol.AbortOnMissingAck() && (len(silent) > 0 || len(nacked) > 0)) || short {
		// "abort database transaction; run control type 2 transaction to
		// announce failure" (Appendix A.1).
		s.sendAbort(acked, t.ID, tr)
		s.announceFailure(s.perceivedUp(vec, silent), tr)
		switch {
		case len(silent) > 0:
			res.AbortReason = txn.AbortParticipantDown
		case nackReason != "":
			res.AbortReason = nackReason
		default:
			res.AbortReason = txn.AbortNoQuorum
		}
		return res
	}

	// Point of decision: re-validate the vector before ordering anyone to
	// commit. If a site recovered into a newer session while this
	// transaction was in flight, its copy was not in the write set and
	// would miss the write untracked; abort instead — "the status of a
	// site has changed during the execution of a transaction" (§1.1).
	s.mu.Lock()
	staleRecovery := false
	for k := 0; k < s.vec.Len(); k++ {
		if s.vec.Session(core.SiteID(k)) > vec.Session(core.SiteID(k)) {
			staleRecovery = true
			break
		}
	}
	s.mu.Unlock()
	if staleRecovery {
		s.sendAbort(acked, t.ID, tr)
		res.AbortReason = txn.AbortStaleSession
		return res
	}

	// Concurrent mode: assign each written item's final version now —
	// every copy is exclusively locked (locally since acquisition, at
	// the participants since their prepares), so the local committed
	// version is the global one and version numbers stay strictly
	// increasing in commit order.
	var commitVersions []core.ItemVersion
	if s.concurrent() {
		commitVersions = make([]core.ItemVersion, 0, len(writes))
		for i := range writes {
			cur, err := s.store.Get(writes[i].Item)
			if err != nil {
				panic("site: reading version of locked item: " + err.Error())
			}
			writes[i].Version = cur.Version + 1
			commitVersions = append(commitVersions, core.ItemVersion{
				Item: writes[i].Item, Version: writes[i].Version,
			})
		}
	}

	// Epoch mode: hand the decided transaction to the batcher, which
	// flushes phase two once per commit epoch and re-validates the
	// decision at the flush (the batch widens the window a recovery can
	// slip into). The wait is the late result release — the client's ack
	// rides the flush.
	if s.epoch != nil {
		return s.epochCommit(res, writes, localWrites, commitVersions, acked, vec, rep, tr)
	}

	// Phase two: "send commit indication to participating sites". A
	// missing commit ack triggers a type-2 announcement but the
	// transaction still commits (Appendix A.1).
	var lost []core.SiteID
	if len(acked) > 0 {
		replies := s.caller.MulticallT(tr, acked, func(core.SiteID) msg.Body {
			return &msg.Commit{Txn: t.ID, Versions: commitVersions}
		})
		for _, id := range acked {
			if _, ok := replies[id]; !ok {
				lost = append(lost, id)
			}
		}
		if len(lost) > 0 {
			s.announceFailure(s.perceivedUp(vec, lost), tr)
		}
	}

	// "commit database data items; update fail-locks for data items."
	// Maintenance uses the vector the prepares carried, so every
	// committing site computes identical fail-lock bits for this
	// transaction.
	s.mu.Lock()
	if s.state != core.StatusUp {
		// Failed between phases: the other sites have committed; our
		// copy will be repaired by fail-locks on recovery. Report abort
		// locally (no reply is sent anyway).
		s.mu.Unlock()
		res.AbortReason = txn.AbortSiteDown
		return res
	}
	for _, iv := range localWrites {
		if _, err := s.store.Apply(iv); err != nil {
			panic("site: applying local write: " + err.Error())
		}
	}
	var localMaint []core.ItemID
	for _, iv := range writes {
		if !rep.IsHost(iv.Item, s.cfg.ID) {
			localMaint = append(localMaint, iv.Item)
		}
	}
	s.maintainFailLocksLocked(localWrites, localMaint, vec)
	s.mu.Unlock()

	// A participant lost between phases may or may not have applied the
	// commit; conservatively mark this transaction's items stale for it,
	// everywhere (Appendix A.1 places the fail-lock update after the
	// type-2 for exactly this case).
	if len(lost) > 0 {
		s.markLostParticipants(lost, writes, tr)
	}

	res.Committed = true
	return res
}

// markLostParticipants sets fail-locks for the given sites on the written
// items, locally and at every operational site, after a phase-two loss.
func (s *Site) markLostParticipants(lost []core.SiteID, writes []core.ItemVersion, tr uint64) {
	// Only the items a lost site hosts can be stale there: shipping the
	// full written set would plant that site's fail-lock bit on items it
	// holds no copy of, in every table in the system, and the audit
	// rightly flags such bits as stray.
	rep := s.replicaMap()
	perLost := make(map[core.SiteID][]core.ItemID, len(lost))
	for _, site := range lost {
		for _, iv := range writes {
			if rep.IsHost(iv.Item, site) {
				perLost[site] = append(perLost[site], iv.Item)
			}
		}
	}
	s.mu.Lock()
	for _, site := range lost {
		for _, item := range perLost[site] {
			if !s.flocks.IsSet(item, site) {
				s.flocks.Set(item, site)
				s.stats.FailLocksSet++
			}
		}
	}
	targets := s.vec.Operational(s.cfg.ID)
	s.mu.Unlock()
	if len(targets) == 0 {
		return
	}
	// One fan-out carries every (lost site, target) update — the same
	// lost×targets messages as before, but in parallel under one shared
	// deadline instead of up to lost×targets blocking ack timeouts. A
	// target whose ack never arrives is itself down and gets announced;
	// on recovery it installs its fail-lock table from a site that heard.
	calls := make([]transport.Outcall, 0, len(lost)*len(targets))
	for _, site := range lost {
		if len(perLost[site]) == 0 {
			continue
		}
		for _, target := range targets {
			calls = append(calls, transport.Outcall{To: target, Body: &msg.ClearFailLocks{Site: site, Items: perLost[site], Set: true}})
		}
	}
	if len(calls) == 0 {
		return
	}
	var silent []core.SiteID
	seen := make(map[core.SiteID]bool, len(targets))
	for _, r := range s.caller.MulticastT(tr, calls) {
		if errors.Is(r.Err, transport.ErrCancelled) {
			return // local failure mid-fan-out: stop silently
		}
		if r.Err != nil && !seen[r.To] {
			seen[r.To] = true
			silent = append(silent, r.To)
		}
	}
	if len(silent) > 0 {
		s.announceFailure(silent, tr)
	}
}

// remoteReads fetches fresh copies of the transaction's read items this
// site does not host, from up-to-date hosting sites. It returns an empty
// map under full replication. On failure it returns the abort reason.
//
// A failed donor does not fail the read while other candidates remain:
// each round fans out to one donor per pending item, and items whose
// donor stayed silent (announced down) or sent an unusable reply (a
// decode problem, not a liveness signal — never announced) are retried
// against the remaining candidates. Only when an item has exhausted
// every up-to-date hosting site does the transaction abort — with
// AbortDonorDown if a donor loss forced the exhaustion, AbortNoDonor
// when no candidate existed at all.
func (s *Site) remoteReads(t txn.Txn, tr uint64) (map[core.ItemID]core.ItemVersion, string) {
	rep := s.replicaMap()
	if rep.IsFull() {
		return nil, ""
	}
	var pending []core.ItemID
	for _, item := range core.ReadSet(t.Ops) {
		if !rep.IsHost(item, s.cfg.ID) {
			pending = append(pending, item)
		}
	}
	if len(pending) == 0 {
		return nil, ""
	}

	out := make(map[core.ItemID]core.ItemVersion)
	tried := make(map[core.ItemID]uint64, len(pending))
	sawDown := false
	for len(pending) > 0 {
		s.mu.Lock()
		byDonor := map[core.SiteID][]core.ItemID{}
		var order []core.SiteID
		for _, item := range pending {
			donor, found := s.pickDonorLocked(rep, item, tried[item])
			if !found {
				s.mu.Unlock()
				if sawDown {
					return nil, txn.AbortDonorDown
				}
				return nil, txn.AbortNoDonor
			}
			tried[item] |= 1 << donor
			if _, ok := byDonor[donor]; !ok {
				order = append(order, donor)
			}
			byDonor[donor] = append(byDonor[donor], item)
		}
		s.mu.Unlock()

		// This round's donors are read in parallel under one shared
		// deadline; results are processed in donor order so abort reasons
		// stay deterministic.
		calls := make([]transport.Outcall, len(order))
		for i, donor := range order {
			calls[i] = transport.Outcall{To: donor, Body: &msg.ReadReq{Txn: t.ID, Items: byDonor[donor], RequireFresh: true}}
		}
		pending = pending[:0]
		var announce []core.SiteID
		for i, r := range s.caller.MulticastT(tr, calls) {
			donor := order[i]
			if errors.Is(r.Err, transport.ErrCancelled) {
				return nil, txn.AbortSiteDown
			}
			if r.Err != nil {
				// Silence: the donor is genuinely unresponsive.
				announce = append(announce, donor)
				sawDown = true
				pending = append(pending, byDonor[donor]...)
				continue
			}
			resp, wellTyped := r.Reply.Body.(*msg.ReadResp)
			if !wellTyped || !resp.OK {
				// The donor answered — it is alive. A wrong-typed body or a
				// refusal is a protocol problem, not a failure; retry the
				// items elsewhere without announcing the donor down.
				pending = append(pending, byDonor[donor]...)
				continue
			}
			got := make(map[core.ItemID]core.ItemVersion, len(resp.Items))
			for _, iv := range resp.Items {
				got[iv.Item] = iv
			}
			for _, item := range byDonor[donor] {
				iv, ok := got[item]
				if !ok {
					// An OK reply missing an item we asked for is the same
					// class of decode problem as a wrong-typed body: without
					// this check the coordinator would silently fall back to
					// its own non-hosted (zero) copy. Retry elsewhere.
					pending = append(pending, item)
					continue
				}
				out[item] = iv
			}
		}
		if len(announce) > 0 {
			s.announceFailure(announce, tr)
		}
	}
	return out, ""
}

// pickDonorLocked returns an operational hosting site holding an
// up-to-date copy of item, skipping sites in the excluded bitmask
// (donors already tried). Callers hold mu.
func (s *Site) pickDonorLocked(rep *core.ReplicaMap, item core.ItemID, excluded uint64) (core.SiteID, bool) {
	for _, cand := range s.flocks.UpToDateSites(item, s.cfg.ID) {
		if excluded&(1<<cand) != 0 {
			continue
		}
		if s.vec.IsUp(cand) && rep.IsHost(item, cand) {
			return cand, true
		}
	}
	return 0, false
}

// staleReadItems returns the distinct items the transaction reads whose
// local copies are fail-locked for this site. Items this site does not
// host are excluded: there is no local copy to refresh (remoteReads
// serves them instead).
func (s *Site) staleReadItems(t txn.Txn) []core.ItemID {
	rep := s.replicaMap()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []core.ItemID
	for _, item := range core.ReadSet(t.Ops) {
		if rep.IsHost(item, s.cfg.ID) && s.flocks.IsSet(item, s.cfg.ID) {
			out = append(out, item)
		}
	}
	return out
}

// runCopiers refreshes the given out-of-date items via copier
// transactions: read a good copy from an operational up-to-date site,
// install it locally, clear the local fail-lock, then run the special
// transaction propagating the clears (§1.2, Appendix A.1).
//
// It returns the number of copier transactions issued and, unless
// bestEffort is set, an abort reason when a copy could not be obtained.
// Batch refresh (two-step recovery) uses bestEffort: items without a donor
// are skipped rather than failing the pass.
func (s *Site) runCopiers(items []core.ItemID, id core.TxnID, bestEffort bool, tr uint64) (int, string) {
	// Choose a donor per item: an operational site whose copy carries no
	// fail-lock.
	rep := s.replicaMap()
	s.mu.Lock()
	byDonor := make(map[core.SiteID][]core.ItemID)
	order := make([]core.SiteID, 0, 2)
	for _, item := range items {
		if !s.flocks.IsSet(item, s.cfg.ID) {
			continue // already refreshed (e.g. by a concurrent commit)
		}
		donor, found := s.pickDonorLocked(rep, item, 0)
		if !found {
			if bestEffort {
				continue
			}
			s.mu.Unlock()
			return 0, txn.AbortNoDonor
		}
		if _, ok := byDonor[donor]; !ok {
			order = append(order, donor)
		}
		byDonor[donor] = append(byDonor[donor], item)
	}
	s.mu.Unlock()

	count := 0
	var refreshed []core.ItemID
	// Every donor is fetched in parallel under one shared deadline;
	// replies are applied in donor order so abort reasons and stats stay
	// deterministic.
	calls := make([]transport.Outcall, len(order))
	for i, donor := range order {
		if bestEffort {
			// Counted before the fan-out: observers watching the fail-lock
			// count drain must never see completion before the batch
			// copier shows in the counters.
			s.reg.Add(CounterBatchCopiers, 1)
		} else {
			s.reg.Add(CounterDemandCopiers, 1)
		}
		calls[i] = transport.Outcall{To: donor, Body: &msg.CopyRequest{Txn: id, Items: byDonor[donor]}}
	}
	fanStart := time.Now()
	for i, r := range s.caller.MulticastT(tr, calls) {
		donor := order[i]
		if errors.Is(r.Err, transport.ErrCancelled) {
			return count, txn.AbortSiteDown
		}
		if r.Err != nil {
			// "site to which copy request sent is now down": abort and
			// announce (Appendix A.1).
			s.announceFailure([]core.SiteID{donor}, tr)
			if bestEffort {
				continue
			}
			return count, txn.AbortDonorDown
		}
		resp, wellTyped := r.Reply.Body.(*msg.CopyResponse)
		if !wellTyped {
			// The donor answered — it is alive; a wrong-typed body is a
			// decode problem, never grounds to announce it down.
			if bestEffort {
				continue
			}
			return count, txn.AbortDonorDown
		}
		if !resp.OK {
			if bestEffort {
				continue
			}
			return count, txn.AbortNoDonor
		}
		s.mu.Lock()
		for _, iv := range resp.Items {
			if _, err := s.store.Apply(iv); err != nil {
				panic("site: applying copier write: " + err.Error())
			}
			if s.flocks.IsSet(iv.Item, s.cfg.ID) {
				s.flocks.Clear(iv.Item, s.cfg.ID)
				s.stats.FailLocksCleared++
			}
			refreshed = append(refreshed, iv.Item)
		}
		s.stats.CopiersRequested++
		s.mu.Unlock()
		s.emit(tr, trace.PhaseCopier, fmt.Sprintf("donor=%d items=%d", donor, len(byDonor[donor])), fanStart)
		count++
	}

	if len(refreshed) > 0 {
		s.clearFailLocksEverywhere(refreshed, tr)
	}
	return count, ""
}

// clearFailLocksEverywhere runs the special transaction informing the
// other operational sites of the fail-lock bits cleared by copier
// transactions (§1.2). Failures are announced but do not abort: the
// refreshed copies are already installed.
func (s *Site) clearFailLocksEverywhere(items []core.ItemID, tr uint64) {
	s.mu.Lock()
	targets := s.vec.Operational(s.cfg.ID)
	s.mu.Unlock()
	lost, cancelled := s.fanoutClears(targets, &msg.ClearFailLocks{Site: s.cfg.ID, Items: items}, tr)
	if cancelled {
		return // local failure mid-fan-out: stop silently
	}
	if len(lost) > 0 {
		s.announceFailure(lost, tr)
	}
}

// fanoutClears multicasts one ClearFailLocks body to every target in
// parallel under a single shared ack deadline, so k unresponsive targets
// cost ~1 timeout instead of k. Each acknowledging site is timed and
// traced. lost lists the targets whose ack never arrived (send failure or
// timeout) — silent sites the caller announces; a target that answered is
// alive and must never be announced. cancelled reports that the local
// site failed with the fan-out in flight: the caller must stop quietly.
func (s *Site) fanoutClears(targets []core.SiteID, body *msg.ClearFailLocks, tr uint64) (lost []core.SiteID, cancelled bool) {
	if len(targets) == 0 {
		return nil, false
	}
	start := time.Now()
	results := s.caller.MulticastT(tr, transport.Outcalls(targets, func(core.SiteID) msg.Body { return body }))
	for _, r := range results {
		switch {
		case errors.Is(r.Err, transport.ErrCancelled):
			cancelled = true
		case r.Err != nil:
			lost = append(lost, r.To)
		default:
			s.reg.Observe(TimerClearFailLocks, r.RTT)
			s.emit(tr, trace.PhaseClearFL, fmt.Sprintf("target=%d items=%d", r.To, len(body.Items)), start)
		}
	}
	s.reg.Observe(TimerClearFanout, time.Since(start))
	return lost, cancelled
}

// quorumRead collects, for every read item, ReadQuorum versioned copies
// from the item's hosting sites (counting the local copy when this site
// hosts one) and returns, per read operation, the highest version
// observed. Used only by the quorum baseline.
//
// Quorums are sized per item from its hosting degree: under partial
// replication a global majority of sites can exceed an item's copy
// count, and a non-hosting site's answer is not a vote for that item.
// Under full replication every degree equals the site count and every
// site answers for every item, so this reduces exactly to the old
// global-majority check.
func (s *Site) quorumRead(t txn.Txn, tr uint64) ([]core.ItemVersion, bool) {
	readSet := core.ReadSet(t.Ops)
	if len(readSet) == 0 {
		return nil, true
	}
	rep := s.replicaMap()

	best := make(map[core.ItemID]core.ItemVersion, len(readSet))
	votes := make(map[core.ItemID]int, len(readSet))
	need := make(map[core.ItemID]int, len(readSet))
	perTarget := map[core.SiteID][]core.ItemID{}
	var targets []core.SiteID
	remote := false
	for _, item := range readSet {
		need[item] = s.pol.ReadQuorum(rep.Degree(item))
		if rep.IsHost(item, s.cfg.ID) {
			iv, err := s.store.Get(item)
			if err != nil {
				return nil, false
			}
			best[item] = iv
			votes[item] = 1
		}
		if votes[item] < need[item] {
			remote = true
		}
		for i := 0; i < s.cfg.Sites; i++ {
			id := core.SiteID(i)
			if id == s.cfg.ID || !rep.IsHost(item, id) {
				continue
			}
			if _, ok := perTarget[id]; !ok {
				targets = append(targets, id)
			}
			perTarget[id] = append(perTarget[id], item)
		}
	}

	if remote && len(targets) > 0 {
		replies := s.caller.MulticallT(tr, targets, func(target core.SiteID) msg.Body {
			return &msg.ReadReq{Txn: t.ID, Items: perTarget[target]}
		})
		for _, id := range targets {
			reply, ok := replies[id]
			if !ok {
				continue
			}
			resp, wellTyped := reply.Body.(*msg.ReadResp)
			if !wellTyped || !resp.OK {
				continue
			}
			for _, iv := range resp.Items {
				if _, asked := need[iv.Item]; !asked {
					continue
				}
				votes[iv.Item]++
				if cur, ok := best[iv.Item]; !ok || iv.Version > cur.Version {
					best[iv.Item] = iv
				}
			}
		}
	}
	for _, item := range readSet {
		if votes[item] < need[item] {
			return nil, false
		}
	}

	// Emit in operation order, as TxnResult documents.
	var out []core.ItemVersion
	for _, op := range t.Ops {
		if op.Kind == core.OpRead {
			out = append(out, best[op.Item])
		}
	}
	return out, true
}

// sendAbort tells the sites that acked phase one to discard their staged
// copy updates.
func (s *Site) sendAbort(acked []core.SiteID, id core.TxnID, tr uint64) {
	for _, target := range acked {
		s.caller.SendT(tr, target, &msg.Abort{Txn: id})
	}
}

// perceivedUp filters ids to those the given vector believes operational —
// only their silence is news worth a type-2 announcement.
func (s *Site) perceivedUp(vec core.SessionVector, ids []core.SiteID) []core.SiteID {
	var out []core.SiteID
	for _, id := range ids {
		if vec.IsUp(id) {
			out = append(out, id)
		}
	}
	return out
}
