// Package scrub implements continuous heal: a background scrubber that
// walks each operational site's fail-locked items and repairs them with
// rate-limited batches of read transactions while foreground traffic
// continues. Reading a fail-locked local copy runs a demand copier
// against an up-to-date donor and the clear fan-out propagates the
// cleared bit everywhere (§1.2, Appendix A.1), so the scrubber needs no
// repair primitive of its own — it is a pacemaker for the machinery the
// paper already defines, in the mold of an mdadm/ZFS scrub.
//
// Paired with REDO-only instant recovery (site.Config.InstantRecovery),
// it replaces the demand-only long tail the paper measures, the one-shot
// threshold/batch two-step of §3.2, and the managing site's fixed
// DrainFailLocks epilogue: a recovering site is operational the moment
// its fail-lock set is installed, and the scrubber grinds the stale set
// to zero in the background at a configurable items/sec budget.
package scrub

import (
	"fmt"
	"sync"
	"time"

	"minraid/internal/core"
	"minraid/internal/metrics"
	"minraid/internal/msg"
	"minraid/internal/trace"
)

// Metric names recorded in Config.Metrics.
const (
	// TimerPass is the wall time of one whole scrub pass over every site.
	TimerPass = "scrub.pass"
	// TimerBatch is the duration of one repair batch (one read
	// transaction over fail-locked items).
	TimerBatch = "scrub.batch"
	// TimerHeal is the duration of one heal episode: a site first
	// observed with fail-locked items until first observed clean.
	TimerHeal = "scrub.heal"
	// CounterItems counts items scrubbed clean (read under a committed
	// repair batch, so their fail-locks are gone).
	CounterItems = "scrub.items"
	// CounterCopiers counts copier transactions the repair batches ran.
	CounterCopiers = "scrub.copiers"
)

// txnIDBase offsets the scrubber's transaction IDs. Foreground
// transactions number from 1 (or the soak's TxnIDBase) and admin traces
// live at trace.AdminBase (1<<32); the scrubber draws from its own
// disjoint space so background repairs never perturb the foreground
// numbering that reproducibility checks fingerprint.
const txnIDBase = uint64(3) << 32

// passTraceBase offsets per-pass trace span IDs, disjoint from both
// transaction IDs (including the scrubber's own) and admin trace IDs.
const passTraceBase = uint64(4) << 32

// Target is the slice of the managing-site API the scrubber drives. A
// *cluster.Cluster satisfies it.
type Target interface {
	// Sites returns the number of database sites.
	Sites() int
	// Replicas returns the current item-to-site placement; the scrubber
	// only repairs a site's own hosted copies.
	Replicas() *core.ReplicaMap
	// Status queries one site's state and, with includeFailLocks, its
	// fail-lock table snapshot; it answers even for down sites.
	Status(id core.SiteID, includeFailLocks bool) (*msg.StatusResp, error)
	// ExecTxnTimeout coordinates one transaction at the given site with a
	// bounded reply wait.
	ExecTxnTimeout(coordinator core.SiteID, id core.TxnID, ops []core.Op, timeout time.Duration) (*msg.TxnResult, error)
}

// Config parameterizes a Scrubber.
type Config struct {
	// Rate caps the scrub budget in items per second across all sites;
	// zero or negative means unthrottled. The budget is a token bucket
	// with burst capacity BatchSize, so an idle stretch never banks more
	// than one batch of credit.
	Rate float64
	// BatchSize bounds the fail-locked items repaired by one read
	// transaction (default 8).
	BatchSize int
	// Interval is the idle poll period between passes that found nothing
	// to heal (default 25ms). Kick cuts it short.
	Interval time.Duration
	// ExecTimeout bounds the reply wait of one repair transaction, so a
	// batch racing a site failure costs the scrubber a bounded stall
	// (default 2s). Keep it above the cluster's ack timeout: the repair
	// itself may legitimately wait out a failure detection.
	ExecTimeout time.Duration
	// Metrics receives scrub timers and counters; nil allocates a private
	// registry (readable via Scrubber.Metrics).
	Metrics *metrics.Registry
	// Tracer receives one span per scrub pass; nil disables tracing.
	Tracer *trace.Recorder
}

func (c *Config) fillDefaults() {
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.Interval <= 0 {
		c.Interval = 25 * time.Millisecond
	}
	if c.ExecTimeout <= 0 {
		c.ExecTimeout = 2 * time.Second
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
}

// Stats is a snapshot of the scrubber's counters.
type Stats struct {
	// Passes counts completed scans over every site.
	Passes int
	// Batches counts repair transactions issued; Aborts those that came
	// back uncommitted (no donor reachable yet, lock contention); Errors
	// those that got no reply at all (target failed mid-batch).
	Batches, Aborts, Errors int
	// ItemsScrubbed counts items read under committed repair batches —
	// each is clean once its batch commits. Copiers counts the copier
	// transactions those batches ran (fewer when demand copiers or
	// foreground commits got there first).
	ItemsScrubbed, Copiers int
	// Throttles counts rate-budget waits.
	Throttles int
	// HealEpisodes counts site heal episodes driven to zero fail-locks;
	// LastHealTime and MaxHealTime measure them from the first pass that
	// saw the site stale to the first that saw it clean.
	HealEpisodes int
	LastHealTime time.Duration
	MaxHealTime  time.Duration
}

// Scrubber is the background healer. Create with New, then Start; Stop
// halts the loop and waits for any in-flight batch.
type Scrubber struct {
	t      Target
	cfg    Config
	reg    *metrics.Registry
	tracer *trace.Recorder

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	startOnce, stopOnce sync.Once

	mu      sync.Mutex
	stats   Stats
	healing map[core.SiteID]time.Time // heal-episode start per site
	txnSeq  uint64
	passSeq uint64
}

// New builds a scrubber over t. It does not start scrubbing until Start.
func New(t Target, cfg Config) *Scrubber {
	cfg.fillDefaults()
	return &Scrubber{
		t:       t,
		cfg:     cfg,
		reg:     cfg.Metrics,
		tracer:  cfg.Tracer,
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		healing: make(map[core.SiteID]time.Time),
	}
}

// Metrics returns the registry scrub timers and counters land in.
func (s *Scrubber) Metrics() *metrics.Registry { return s.reg }

// Start launches the scrub loop.
func (s *Scrubber) Start() {
	s.startOnce.Do(func() { go s.run() })
}

// Stop halts the scrub loop and blocks until it has exited (an in-flight
// repair batch is allowed to finish, bounded by ExecTimeout). Idempotent;
// safe to call before Start, which then becomes a no-op.
func (s *Scrubber) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.startOnce.Do(func() { close(s.done) }) // never started: nothing to wait out
	<-s.done
}

// Kick nudges the loop out of its idle wait — call it after a recovery
// installs a fresh stale set so healing starts immediately.
func (s *Scrubber) Kick() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Stats returns a snapshot of the scrubber's counters.
func (s *Scrubber) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// WaitClean polls until no operational site holds a fail-lock on its own
// copy, or the timeout expires; it reports whether the system came clean.
// Down sites are skipped — their locks are correct state the scrubber
// must not (and cannot) heal.
func (s *Scrubber) WaitClean(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if n, err := s.remaining(); err == nil && n == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		s.Kick()
		select {
		case <-time.After(s.cfg.Interval):
		case <-s.stop:
			n, err := s.remaining()
			return err == nil && n == 0
		}
	}
}

// remaining counts (item, site) fail-locks operational sites hold on
// their own copies.
func (s *Scrubber) remaining() (int, error) {
	total := 0
	for i := 0; i < s.t.Sites(); i++ {
		st, err := s.t.Status(core.SiteID(i), true)
		if err != nil {
			return 0, err
		}
		if st.State != core.StatusUp {
			continue
		}
		total += len(ownLocked(st, s.t.Replicas()))
	}
	return total, nil
}

// ownLocked lists the items st's site holds fail-locked on its own copy,
// restricted to the items it hosts: a bit for a non-hosted copy is not
// repairable by reading there (the demand-copier path only refreshes
// hosted copies) and the audit flags it as stray instead.
func ownLocked(st *msg.StatusResp, replicas *core.ReplicaMap) []core.ItemID {
	var out []core.ItemID
	for item, bits := range st.FailLocks {
		if bits&(1<<st.Site) != 0 && replicas.IsHost(core.ItemID(item), st.Site) {
			out = append(out, core.ItemID(item))
		}
	}
	return out
}

// run is the scrub loop: pass, then sleep Interval when the pass found
// nothing to repair (or everything it tried was stuck), else go again.
func (s *Scrubber) run() {
	defer close(s.done)
	p := &pacer{rate: s.cfg.Rate, burst: float64(s.cfg.BatchSize), avail: float64(s.cfg.BatchSize), last: time.Now()}
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		progressed := s.pass(p)
		if progressed {
			continue
		}
		select {
		case <-s.stop:
			return
		case <-s.kick:
		case <-time.After(s.cfg.Interval):
		}
	}
}

// pass scans every site once and repairs what it finds, reporting whether
// any repair batch committed.
func (s *Scrubber) pass(p *pacer) (progressed bool) {
	start := time.Now()
	scanned := 0
	for i := 0; i < s.t.Sites(); i++ {
		select {
		case <-s.stop:
			return progressed
		default:
		}
		id := core.SiteID(i)
		st, err := s.t.Status(id, true)
		if err != nil {
			continue // manager link hiccup; next pass retries
		}
		if st.State != core.StatusUp {
			// A site that failed again mid-episode: its episode ends when
			// it next recovers and heals, measured from that recovery.
			s.mu.Lock()
			delete(s.healing, id)
			s.mu.Unlock()
			continue
		}
		locked := ownLocked(st, s.t.Replicas())
		scanned += len(locked)
		if len(locked) == 0 {
			s.finishEpisode(id)
			continue
		}
		s.beginEpisode(id)
		if s.repair(id, locked, p) {
			progressed = true
		}
	}
	s.mu.Lock()
	s.stats.Passes++
	seq := s.passSeq
	s.passSeq++
	s.mu.Unlock()
	s.reg.Observe(TimerPass, time.Since(start))
	if s.tracer != nil {
		s.tracer.Emit(trace.ID(passTraceBase+seq), core.ManagingSite, trace.PhaseScrub,
			fmt.Sprintf("locked=%d", scanned), start)
	}
	return progressed
}

// repair issues rate-limited read batches over the site's fail-locked
// items; a committed batch has demand-refreshed (or found already fresh)
// every item it read. It reports whether any batch committed.
func (s *Scrubber) repair(id core.SiteID, locked []core.ItemID, p *pacer) (progressed bool) {
	for lo := 0; lo < len(locked); lo += s.cfg.BatchSize {
		hi := lo + s.cfg.BatchSize
		if hi > len(locked) {
			hi = len(locked)
		}
		chunk := locked[lo:hi]
		if !s.pace(p, len(chunk)) {
			return progressed // stopping
		}
		ops := make([]core.Op, 0, len(chunk))
		for _, item := range chunk {
			ops = append(ops, core.Read(item))
		}
		batchStart := time.Now()
		res, err := s.t.ExecTxnTimeout(id, s.nextTxnID(), ops, s.cfg.ExecTimeout)
		s.reg.Observe(TimerBatch, time.Since(batchStart))
		s.mu.Lock()
		s.stats.Batches++
		switch {
		case err != nil:
			// The site failed (or was cut off) under the batch; leave the
			// rest of its backlog to a later pass.
			s.stats.Errors++
			s.mu.Unlock()
			return progressed
		case res.Committed:
			s.stats.ItemsScrubbed += len(chunk)
			s.stats.Copiers += int(res.Copiers)
			s.mu.Unlock()
			s.reg.Add(CounterItems, uint64(len(chunk)))
			s.reg.Add(CounterCopiers, uint64(res.Copiers))
			progressed = true
		default:
			// Aborted — no donor reachable yet, or a foreground lock
			// conflict. Both retriable; both better served by backing off
			// to the next pass than by hammering this site.
			s.stats.Aborts++
			s.mu.Unlock()
			return progressed
		}
	}
	return progressed
}

// pace blocks until the token bucket can afford n more items (or the
// scrubber is stopping, reporting false).
func (s *Scrubber) pace(p *pacer, n int) bool {
	if s.cfg.Rate <= 0 {
		return true
	}
	wait := p.take(n)
	if wait <= 0 {
		return true
	}
	s.mu.Lock()
	s.stats.Throttles++
	s.mu.Unlock()
	select {
	case <-time.After(wait):
		return true
	case <-s.stop:
		return false
	}
}

// nextTxnID allocates a scrub transaction ID from the scrubber's private
// space above txnIDBase.
func (s *Scrubber) nextTxnID() core.TxnID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.txnSeq++
	return core.TxnID(txnIDBase + s.txnSeq)
}

// beginEpisode marks the start of a site's heal episode, once.
func (s *Scrubber) beginEpisode(id core.SiteID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.healing[id]; !ok {
		s.healing[id] = time.Now()
	}
}

// finishEpisode closes a site's heal episode, if one was open, and
// records its duration.
func (s *Scrubber) finishEpisode(id core.SiteID) {
	s.mu.Lock()
	began, ok := s.healing[id]
	if ok {
		delete(s.healing, id)
		d := time.Since(began)
		s.stats.HealEpisodes++
		s.stats.LastHealTime = d
		if d > s.stats.MaxHealTime {
			s.stats.MaxHealTime = d
		}
	}
	s.mu.Unlock()
	if ok {
		s.reg.Observe(TimerHeal, time.Since(began))
	}
}

// pacer is the items/sec token bucket. Not safe for concurrent use; the
// scrub loop owns it.
type pacer struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity
	avail float64
	last  time.Time
}

// take withdraws n tokens, returning how long the caller must wait before
// proceeding (zero when the budget covers it now). The bucket may go
// negative — the debt is the wait.
func (p *pacer) take(n int) time.Duration {
	now := time.Now()
	p.avail += now.Sub(p.last).Seconds() * p.rate
	if p.avail > p.burst {
		p.avail = p.burst
	}
	p.last = now
	p.avail -= float64(n)
	if p.avail >= 0 {
		return 0
	}
	return time.Duration(-p.avail / p.rate * float64(time.Second))
}
