package scrub_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/scrub"
)

func newCluster(t *testing.T, cfg cluster.Config) *cluster.Cluster {
	t.Helper()
	if cfg.AckTimeout == 0 {
		cfg.AckTimeout = 50 * time.Millisecond
	}
	if cfg.ManagerTimeout == 0 {
		cfg.ManagerTimeout = 10 * time.Second
	}
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// failAndDetect fails victim and runs one write at detector so the group
// announces the failure and later writes commit with fail-locks.
func failAndDetect(t *testing.T, c *cluster.Cluster, victim, detector core.SiteID) {
	t.Helper()
	if err := c.Fail(victim); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec(detector, []core.Op{core.Write(0, []byte("detect"))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed {
		t.Fatal("detection txn unexpectedly committed")
	}
}

func val(n int) []byte { return []byte(fmt.Sprintf("v%d", n)) }

// mustWrite commits one write or fails the test.
func mustWrite(t *testing.T, c *cluster.Cluster, coord core.SiteID, item core.ItemID, v []byte) {
	t.Helper()
	res, err := c.Exec(coord, []core.Op{core.Write(item, v)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("write of item %d aborted: %s", item, res.AbortReason)
	}
}

// TestScrubHealsStaleSetInBackground: after an outage and an instant
// recovery, the scrubber alone — no foreground reads — drives the
// recovered site's fail-locks to zero.
func TestScrubHealsStaleSetInBackground(t *testing.T) {
	c := newCluster(t, cluster.Config{Sites: 3, Items: 12, InstantRecovery: true})
	failAndDetect(t, c, 1, 0)
	for i := 0; i < 10; i++ {
		mustWrite(t, c, 0, core.ItemID(i), val(i))
	}
	if _, err := c.Recover(1); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.FailLockCount(1, 1); n != 10 {
		t.Fatalf("stale set after recovery = %d, want 10", n)
	}

	scr := scrub.New(c, scrub.Config{BatchSize: 3})
	scr.Start()
	defer scr.Stop()
	if !scr.WaitClean(5 * time.Second) {
		t.Fatal("scrubber never drove the stale set to zero")
	}
	scr.Stop()

	st := scr.Stats()
	if st.ItemsScrubbed < 10 {
		t.Errorf("ItemsScrubbed = %d, want >= 10", st.ItemsScrubbed)
	}
	if st.Copiers == 0 {
		t.Error("no copier transactions recorded")
	}
	if st.HealEpisodes < 1 {
		t.Error("no heal episode recorded")
	}
	if scr.Metrics().Counter(scrub.CounterItems) == 0 {
		t.Error("scrub.items counter empty")
	}
	report, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Error(report)
	}
	// The healed copies really carry the missed writes.
	dump, err := c.Dump(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !bytes.Equal(dump[i].Value, val(i)) {
			t.Errorf("item %d at recovered site = %q, want %q", i, dump[i].Value, val(i))
		}
	}
}

// TestInstantRecoveryServesCleanReadsBeforeHeal is the acceptance test
// for REDO-only recovery: the recovered site commits a read of a clean
// item — no copier, no batch refresh — while its stale set is still
// entirely unhealed, serves a fail-locked item through a demand copier,
// and the scrubber heals the remainder.
func TestInstantRecoveryServesCleanReadsBeforeHeal(t *testing.T) {
	c := newCluster(t, cluster.Config{Sites: 3, Items: 10, InstantRecovery: true})
	failAndDetect(t, c, 2, 0)
	for i := 0; i < 5; i++ {
		mustWrite(t, c, 0, core.ItemID(i), val(i))
	}
	st, err := c.Recover(2)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != core.StatusUp {
		t.Fatalf("instant recovery left site 2 %v", st.State)
	}
	if n, _ := c.FailLockCount(2, 2); n != 5 {
		t.Fatalf("stale set after recovery = %d, want 5", n)
	}

	// Clean read at the recovering coordinator, before anything healed.
	res, err := c.Exec(2, []core.Op{core.Read(8)})
	if err != nil || !res.Committed {
		t.Fatalf("clean read at instant-recovered site: %v %v", res, err)
	}
	if res.Copiers != 0 {
		t.Errorf("clean read ran %d copiers", res.Copiers)
	}
	if n, _ := c.FailLockCount(2, 2); n != 5 {
		t.Error("clean read disturbed the stale set")
	}

	// Fail-locked read serves through the demand-copier path.
	res, err = c.Exec(2, []core.Op{core.Read(1)})
	if err != nil || !res.Committed {
		t.Fatalf("stale read at instant-recovered site: %v %v", res, err)
	}
	if res.Copiers == 0 {
		t.Error("stale read ran no demand copier")
	}
	if !bytes.Equal(res.Reads[0].Value, val(1)) {
		t.Errorf("stale read returned %q, want %q", res.Reads[0].Value, val(1))
	}
	if c.Registry(2).Counter("copiers.demand") == 0 {
		t.Error("demand-copier counter empty")
	}

	// The scrubber heals the rest.
	scr := scrub.New(c, scrub.Config{BatchSize: 2})
	scr.Start()
	defer scr.Stop()
	if !scr.WaitClean(5 * time.Second) {
		t.Fatal("scrubber never drove the stale set to zero")
	}
	scr.Stop()
	if st := scr.Stats(); st.ItemsScrubbed < 4 {
		t.Errorf("ItemsScrubbed = %d, want >= 4", st.ItemsScrubbed)
	}
	report, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Error(report)
	}
}

// TestScrubRateThrottles: a finite items/sec budget makes the scrubber
// wait between batches but still converge.
func TestScrubRateThrottles(t *testing.T) {
	c := newCluster(t, cluster.Config{Sites: 2, Items: 30, InstantRecovery: true})
	failAndDetect(t, c, 1, 0)
	for i := 0; i < 20; i++ {
		mustWrite(t, c, 0, core.ItemID(i), val(i))
	}
	if _, err := c.Recover(1); err != nil {
		t.Fatal(err)
	}

	scr := scrub.New(c, scrub.Config{Rate: 400, BatchSize: 4})
	scr.Start()
	defer scr.Stop()
	if !scr.WaitClean(10 * time.Second) {
		t.Fatal("throttled scrubber never converged")
	}
	scr.Stop()
	st := scr.Stats()
	if st.Throttles == 0 {
		t.Error("rate budget never throttled a 20-item backlog at burst 4")
	}
	if st.ItemsScrubbed < 20 {
		t.Errorf("ItemsScrubbed = %d, want >= 20", st.ItemsScrubbed)
	}
	if st.HealEpisodes < 1 {
		t.Error("no heal episode recorded")
	}
}

// TestScrubRacesForegroundTraffic is the concurrent-mode -race
// regression: the scrubber, demand copiers and foreground writers all
// work the same items, and the scrub must never resurrect a stale
// version over a newer committed write (storage.Apply keeps the newer
// version; 2PL serializes the rest) — the audit is the oracle.
func TestScrubRacesForegroundTraffic(t *testing.T) {
	const items = 8
	c := newCluster(t, cluster.Config{Sites: 3, Items: items, ConcurrentTxns: 4, InstantRecovery: true})
	failAndDetect(t, c, 1, 0)
	for i := 0; i < items; i++ {
		mustWrite(t, c, 0, core.ItemID(i), val(i))
	}
	if _, err := c.Recover(1); err != nil {
		t.Fatal(err)
	}

	scr := scrub.New(c, scrub.Config{BatchSize: 2})
	scr.Start()
	defer scr.Stop()

	// Writers at sites 0 and 2, a reader at the recovered site 1 whose
	// reads run demand copiers — all racing the scrub batches on the
	// same 8 items. Retriable aborts (lock waits, deadlock victims) are
	// expected under contention; transport errors are not.
	var wg sync.WaitGroup
	errc := make(chan error, 3)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				item := core.ItemID((w*5 + i) % items)
				var ops []core.Op
				coord := core.SiteID(0)
				switch w {
				case 0:
					ops = []core.Op{core.Write(item, []byte(fmt.Sprintf("w0-%d", i)))}
				case 1:
					coord = 2
					ops = []core.Op{core.Write(item, []byte(fmt.Sprintf("w2-%d", i)))}
				default:
					coord = 1
					ops = []core.Op{core.Read(item)}
				}
				if _, err := c.Exec(coord, ops); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	if !scr.WaitClean(10 * time.Second) {
		t.Fatal("scrubber never converged under racing traffic")
	}
	scr.Stop()
	report, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Error(report)
	}
}
