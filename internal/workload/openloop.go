package workload

import (
	"sync"
	"time"
)

// OpenLoop is an open-loop (arrival-rate) load driver. A closed-loop
// driver — N workers each issuing the next transaction when the previous
// one finishes — lets a slow system throttle its own load, hiding queueing
// delay (the "coordinated omission" problem). An open-loop driver instead
// schedules arrival i at start + i/Rate regardless of how the system is
// doing, and measures each transaction's latency from its *scheduled*
// arrival, so time spent waiting for an in-flight slot counts against the
// system, exactly as a queued request would experience it.
//
// MaxInFlight bounds concurrently outstanding transactions so an
// overloaded run degrades into visible queueing delay rather than
// unbounded goroutine growth.
type OpenLoop struct {
	// Rate is the target arrival rate in transactions per second.
	// Non-positive rates are treated as "as fast as the in-flight bound
	// allows" (no pacing).
	Rate float64
	// Count is the total number of transactions to issue.
	Count int
	// MaxInFlight bounds outstanding transactions; 0 defaults to 64.
	MaxInFlight int
}

// OpenLoopResult reports one driver run.
type OpenLoopResult struct {
	// Issued is the number of transactions issued (== Count).
	Issued int
	// Elapsed is the wall-clock span from first scheduled arrival to the
	// completion of the last transaction.
	Elapsed time.Duration
	// Latencies[i] is transaction i's completion latency measured from
	// its scheduled arrival time (not its actual issue time).
	Latencies []time.Duration
}

// Run issues Count transactions, pacing arrivals at Rate per second and
// calling issue(seq) for each on its own goroutine, at most MaxInFlight
// at a time. It blocks until all transactions complete. issue must be
// safe for concurrent invocation.
func (o *OpenLoop) Run(issue func(seq int)) OpenLoopResult {
	n := o.Count
	if n <= 0 {
		return OpenLoopResult{}
	}
	inflight := o.MaxInFlight
	if inflight <= 0 {
		inflight = 64
	}
	var interval time.Duration
	if o.Rate > 0 {
		interval = time.Duration(float64(time.Second) / o.Rate)
	}

	res := OpenLoopResult{Issued: n, Latencies: make([]time.Duration, n)}
	slots := make(chan struct{}, inflight)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		scheduled := start.Add(time.Duration(i) * interval)
		if wait := time.Until(scheduled); wait > 0 {
			time.Sleep(wait)
		}
		// Waiting for a slot happens after the arrival is due, so the
		// latency clock (anchored at scheduled) keeps running through
		// any queueing delay.
		slots <- struct{}{}
		wg.Add(1)
		go func(seq int, scheduled time.Time) {
			defer wg.Done()
			defer func() { <-slots }()
			issue(seq)
			res.Latencies[seq] = time.Since(scheduled)
		}(i, scheduled)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res
}
