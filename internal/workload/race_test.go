package workload

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"minraid/internal/core"
)

// TestGeneratorsRaceSafeDeterministic is the regression test for the
// shared-rng data race: all four generators used to advance one
// unsynchronized *rand.Rand, so concurrent drivers raced (caught by
// -race) and the (seed) → stream mapping depended on issue order. Now
// each transaction's stream is derived from (seed, id), so hammering
// Next from many goroutines in arbitrary order must be race-clean and
// must reproduce exactly the serial reference streams.
func TestGeneratorsRaceSafeDeterministic(t *testing.T) {
	const txns = 400
	gens := []Generator{
		NewUniform(50, 10, 42),
		NewHotCold(100, 10, 5, 42),
		NewET1(500, 42),
		NewWisconsin(100, 42),
	}
	for _, g := range gens {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			t.Parallel()
			// Serial reference, issued in order.
			want := make([][]core.Op, txns)
			for i := range want {
				want[i] = g.Next(core.TxnID(i + 1))
			}
			// Concurrent re-generation: 8 workers pulling interleaved,
			// out-of-order IDs (worker w handles ids w+1, w+9, ...).
			got := make([][]core.Op, txns)
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < txns; i += 8 {
						got[i] = g.Next(core.TxnID(i + 1))
					}
				}(w)
			}
			wg.Wait()
			for i := range want {
				if !reflect.DeepEqual(want[i], got[i]) {
					t.Fatalf("txn %d: concurrent stream diverged from serial reference\nserial:     %v\nconcurrent: %v", i+1, want[i], got[i])
				}
			}
		})
	}
}

// TestDeriveSeedStreamsIndependent checks the stream-splitting mix: the
// derived seeds for consecutive stream indices must not collide or
// degenerate (a weak mix like seed+stream makes neighbouring streams
// correlated).
func TestDeriveSeedStreamsIndependent(t *testing.T) {
	seen := map[int64]uint64{}
	for s := uint64(0); s < 10000; s++ {
		d := DeriveSeed(7, s)
		if prev, dup := seen[d]; dup {
			t.Fatalf("streams %d and %d derived the same seed %d", prev, s, d)
		}
		seen[d] = s
	}
	if DeriveSeed(1, 5) == DeriveSeed(2, 5) {
		t.Error("different root seeds derived the same stream seed")
	}
}

// TestOpenLoopPacing checks the open-loop driver: all transactions are
// issued, in-flight stays bounded, and latency is measured from the
// scheduled arrival so queueing delay is visible (coordinated omission
// is not hidden).
func TestOpenLoopPacing(t *testing.T) {
	var mu sync.Mutex
	inflight, maxInflight := 0, 0
	issued := 0
	ol := &OpenLoop{Rate: 2000, Count: 60, MaxInFlight: 4}
	res := ol.Run(func(seq int) {
		mu.Lock()
		issued++
		inflight++
		if inflight > maxInflight {
			maxInflight = inflight
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		inflight--
		mu.Unlock()
	})
	if issued != 60 || res.Issued != 60 {
		t.Fatalf("issued %d/%d, want 60", issued, res.Issued)
	}
	if maxInflight > 4 {
		t.Errorf("in-flight reached %d, bound is 4", maxInflight)
	}
	if len(res.Latencies) != 60 {
		t.Fatalf("got %d latencies", len(res.Latencies))
	}
	for i, l := range res.Latencies {
		if l <= 0 {
			t.Fatalf("latency[%d] = %v, want > 0", i, l)
		}
	}
	// 60 txns at 2000/s arrive over 30ms but each holds a slot ~1ms with
	// 4 slots: the run can't complete faster than the arrival schedule.
	if res.Elapsed < 25*time.Millisecond {
		t.Errorf("elapsed %v implausibly fast for the arrival schedule", res.Elapsed)
	}

	// Saturation: 1 slot, fast arrivals, slow service. The last arrival
	// waits ~(n-1)×service behind the queue, and open-loop latency must
	// show it (measured from scheduled arrival, not issue time).
	ol = &OpenLoop{Rate: 100000, Count: 10, MaxInFlight: 1}
	res = ol.Run(func(seq int) { time.Sleep(2 * time.Millisecond) })
	last := res.Latencies[len(res.Latencies)-1]
	if last < 10*time.Millisecond {
		t.Errorf("saturated open-loop tail latency %v hides queueing delay", last)
	}
}
