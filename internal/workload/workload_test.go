package workload

import (
	"math"
	"testing"

	"minraid/internal/core"
)

func TestUniformShape(t *testing.T) {
	g := NewUniform(50, 10, 1)
	reads, writes := 0, 0
	for id := core.TxnID(1); id <= 2000; id++ {
		ops := g.Next(id)
		if len(ops) < 1 || len(ops) > 10 {
			t.Fatalf("txn size %d out of 1..10", len(ops))
		}
		for _, op := range ops {
			if int(op.Item) >= 50 {
				t.Fatalf("item %d out of range", op.Item)
			}
			switch op.Kind {
			case core.OpRead:
				reads++
				if op.Value != nil {
					t.Fatal("read carries a value")
				}
			case core.OpWrite:
				writes++
				if len(op.Value) == 0 {
					t.Fatal("write carries no value")
				}
			}
		}
	}
	frac := float64(reads) / float64(reads+writes)
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("read fraction = %.3f, want ~0.5", frac)
	}
}

func TestUniformDeterministic(t *testing.T) {
	a, b := NewUniform(50, 5, 42), NewUniform(50, 5, 42)
	for id := core.TxnID(1); id <= 100; id++ {
		oa, ob := a.Next(id), b.Next(id)
		if len(oa) != len(ob) {
			t.Fatalf("txn %d sizes differ", id)
		}
		for i := range oa {
			if oa[i].Kind != ob[i].Kind || oa[i].Item != ob[i].Item {
				t.Fatalf("txn %d op %d differs", id, i)
			}
		}
	}
}

func TestUniformReadFraction(t *testing.T) {
	g := NewUniform(50, 10, 7)
	g.ReadFraction = 0.9
	reads, total := 0, 0
	for id := core.TxnID(1); id <= 2000; id++ {
		for _, op := range g.Next(id) {
			total++
			if op.Kind == core.OpRead {
				reads++
			}
		}
	}
	frac := float64(reads) / float64(total)
	if math.Abs(frac-0.9) > 0.03 {
		t.Errorf("read fraction = %.3f, want ~0.9", frac)
	}
}

func TestHotColdSkew(t *testing.T) {
	g := NewHotCold(100, 10, 5, 3)
	hot, total := 0, 0
	for id := core.TxnID(1); id <= 3000; id++ {
		for _, op := range g.Next(id) {
			total++
			if int(op.Item) < 10 {
				hot++
			}
			if int(op.Item) >= 100 {
				t.Fatalf("item %d out of range", op.Item)
			}
		}
	}
	frac := float64(hot) / float64(total)
	if math.Abs(frac-0.8) > 0.03 {
		t.Errorf("hot fraction = %.3f, want ~0.8", frac)
	}
}

func TestET1Shape(t *testing.T) {
	g := NewET1(500, 9)
	if g.Branches != 5 || g.Tellers != 50 {
		t.Fatalf("partitions: %d branches, %d tellers", g.Branches, g.Tellers)
	}
	if g.Accounts() != 445 {
		t.Fatalf("accounts = %d", g.Accounts())
	}
	for id := core.TxnID(1); id <= 500; id++ {
		ops := g.Next(id)
		if len(ops) != 6 {
			t.Fatalf("ET1 txn has %d ops", len(ops))
		}
		// account read+write, teller read+write, branch read+write.
		acc, tel, br := ops[0].Item, ops[2].Item, ops[4].Item
		if int(br) >= g.Branches {
			t.Fatalf("branch item %d", br)
		}
		if int(tel) < g.Branches || int(tel) >= g.Branches+g.Tellers {
			t.Fatalf("teller item %d", tel)
		}
		if int(acc) < g.Branches+g.Tellers || int(acc) >= g.Items {
			t.Fatalf("account item %d", acc)
		}
		for i := 0; i < 6; i += 2 {
			if ops[i].Kind != core.OpRead || ops[i+1].Kind != core.OpWrite {
				t.Fatal("ET1 op pattern broken")
			}
			if ops[i].Item != ops[i+1].Item {
				t.Fatal("read/write pair targets different items")
			}
		}
	}
}

func TestET1TinyDatabase(t *testing.T) {
	g := NewET1(10, 1)
	if g.Branches != 1 || g.Tellers != 1 || g.Accounts() != 8 {
		t.Fatalf("tiny partitions: %+v accounts=%d", g, g.Accounts())
	}
	ops := g.Next(1)
	for _, op := range ops {
		if int(op.Item) >= 10 {
			t.Fatalf("item %d out of range", op.Item)
		}
	}
}

func TestAmountCodec(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 999, -999, 1 << 40} {
		if got := DecodeAmount(EncodeAmount(v)); got != v {
			t.Errorf("amount %d round-tripped to %d", v, got)
		}
	}
	if DecodeAmount(nil) != 0 || DecodeAmount([]byte{1, 2}) != 0 {
		t.Error("short payload should decode as 0")
	}
}

func TestWisconsinAlternation(t *testing.T) {
	g := NewWisconsin(100, 5)
	scan := g.Next(1) // odd: scan
	if len(scan) != 10 {
		t.Fatalf("scan len %d", len(scan))
	}
	for i, op := range scan {
		if op.Kind != core.OpRead {
			t.Fatal("scan contains writes")
		}
		if i > 0 && scan[i].Item != scan[i-1].Item+1 {
			t.Fatal("scan not sequential")
		}
	}
	batch := g.Next(2) // even: batch update
	if len(batch) != 5 {
		t.Fatalf("batch len %d", len(batch))
	}
	for _, op := range batch {
		if op.Kind != core.OpWrite {
			t.Fatal("batch contains reads")
		}
	}
}

func TestWisconsinSmallDatabase(t *testing.T) {
	g := NewWisconsin(3, 1)
	for id := core.TxnID(1); id <= 20; id++ {
		for _, op := range g.Next(id) {
			if int(op.Item) >= 3 {
				t.Fatalf("item %d out of range", op.Item)
			}
		}
	}
}

func TestPayloadDistinct(t *testing.T) {
	a := Payload(1, 5)
	b := Payload(2, 5)
	c := Payload(1, 6)
	if string(a) == string(b) || string(a) == string(c) {
		t.Error("payloads collide")
	}
}

func TestGeneratorNames(t *testing.T) {
	gens := []Generator{
		NewUniform(50, 10, 1),
		NewHotCold(100, 10, 5, 1),
		NewET1(500, 1),
		NewWisconsin(100, 1),
	}
	seen := map[string]bool{}
	for _, g := range gens {
		name := g.Name()
		if name == "" || seen[name] {
			t.Errorf("bad or duplicate name %q", name)
		}
		seen[name] = true
	}
	u := NewUniform(50, 10, 1)
	u.ReadFraction = 0.8
	if u.Name() == NewUniform(50, 10, 1).Name() {
		t.Error("read-fraction variant not reflected in name")
	}
}

// TestUniformClampsParameters is the regression test for out-of-range
// generator parameters: a negative read fraction used to make every
// operation a write silently, and non-positive Items/MaxOps panicked
// inside rand.Intn.
func TestUniformClampsParameters(t *testing.T) {
	// Constructor clamps.
	g := NewUniform(0, -3, 1)
	if g.Items != 1 || g.MaxOps != 1 {
		t.Errorf("NewUniform(0,-3) = items %d maxops %d, want 1 1", g.Items, g.MaxOps)
	}
	ops := g.Next(1)
	if len(ops) != 1 || ops[0].Item != 0 {
		t.Errorf("clamped generator produced %v", ops)
	}

	// Next re-clamps fields set after construction (the experiment
	// harness assigns ReadFraction directly).
	g = NewUniform(10, 4, 1)
	g.ReadFraction = 1.7
	for i := 0; i < 50; i++ {
		for _, op := range g.Next(core.TxnID(i)) {
			if op.Kind != core.OpRead {
				t.Fatalf("ReadFraction>1 generated a write: %v", op)
			}
		}
	}
	g.ReadFraction = -0.3
	for i := 0; i < 50; i++ {
		for _, op := range g.Next(core.TxnID(i)) {
			if op.Kind != core.OpWrite {
				t.Fatalf("ReadFraction<0 generated a read: %v", op)
			}
		}
	}
	g.Items, g.MaxOps = -5, 0
	if ops := g.Next(99); len(ops) != 1 || ops[0].Item != 0 {
		t.Errorf("negative field values not re-clamped: %v", ops)
	}
}

// TestHotColdClampsParameters covers the skewed generator's bounds: a hot
// set larger than the database, and an empty cold set.
func TestHotColdClampsParameters(t *testing.T) {
	g := NewHotCold(5, 50, 0, 1)
	if g.HotItems != 5 || g.MaxOps != 1 {
		t.Errorf("NewHotCold(5,50,0) = hot %d maxops %d, want 5 1", g.HotItems, g.MaxOps)
	}
	// Hot set == database: every op must stay in range without panicking
	// on an empty cold set.
	for i := 0; i < 100; i++ {
		for _, op := range g.Next(core.TxnID(i)) {
			if int(op.Item) >= g.Items {
				t.Fatalf("item %d out of range", op.Item)
			}
		}
	}
	g.HotFraction, g.ReadFraction = 2.0, -1.0
	g.HotItems = -2
	for i := 0; i < 50; i++ {
		for _, op := range g.Next(core.TxnID(i)) {
			if op.Kind != core.OpWrite || op.Item != 0 {
				t.Fatalf("clamped hot/read fractions violated: %v", op)
			}
		}
	}
}
