package workload

import (
	"encoding/binary"
	"fmt"

	"minraid/internal/core"
)

// ET1 is a DebitCredit-style generator after the Tandem ET1 benchmark
// [Anon85] the paper planned to adopt ("in the near future, we hope to
// repeat our experiments with the well-known benchmarks ET1 from Tandem
// Corporation", §1.2).
//
// The item space is partitioned into accounts, tellers and branches; each
// transaction reads and rewrites one account, one teller and one branch —
// a fixed-shape 3-read/3-write transaction against a skew-free account
// space with strongly contended branch records, the classic bank-ledger
// shape.
//
// Layout within the database:
//
//	items [0, Branches)                        branch balances
//	items [Branches, Branches+Tellers)         teller balances
//	items [Branches+Tellers, Items)            account balances
type ET1 struct {
	Items    int
	Branches int
	Tellers  int
	// Seed roots the per-transaction random streams (see package doc).
	Seed int64
}

// NewET1 partitions items into 1 branch + 10 tellers per 100 items, the
// ET1 ratio scaled down.
func NewET1(items int, seed int64) *ET1 {
	branches := items / 100
	if branches == 0 {
		branches = 1
	}
	tellers := branches * 10
	if branches+tellers >= items {
		// Tiny databases: one branch, one teller, rest accounts.
		branches, tellers = 1, 1
	}
	return &ET1{Items: items, Branches: branches, Tellers: tellers, Seed: seed}
}

// Name implements Generator.
func (e *ET1) Name() string {
	return fmt.Sprintf("et1(items=%d,branches=%d,tellers=%d)", e.Items, e.Branches, e.Tellers)
}

// Accounts returns the number of account items.
func (e *ET1) Accounts() int { return e.Items - e.Branches - e.Tellers }

// AccountItem returns the ItemID of account n.
func (e *ET1) AccountItem(n int) core.ItemID {
	return core.ItemID(e.Branches + e.Tellers + n%e.Accounts())
}

// Next implements Generator: read-modify-write of one account, one teller
// and one branch. Safe for concurrent use; deterministic in (Seed, id).
func (e *ET1) Next(id core.TxnID) []core.Op {
	rng := txnRng(e.Seed, id)
	branch := core.ItemID(rng.Intn(e.Branches))
	teller := core.ItemID(e.Branches + rng.Intn(e.Tellers))
	account := core.ItemID(e.Branches + e.Tellers + rng.Intn(e.Accounts()))
	delta := EncodeAmount(int64(rng.Intn(1999) - 999)) // -999..+999
	return []core.Op{
		core.Read(account), core.Write(account, delta),
		core.Read(teller), core.Write(teller, delta),
		core.Read(branch), core.Write(branch, delta),
	}
}

// EncodeAmount encodes a money amount as an 8-byte payload.
func EncodeAmount(v int64) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(v))
	return buf
}

// DecodeAmount decodes an EncodeAmount payload; a nil or short payload
// decodes as zero (the initial value of every copy).
func DecodeAmount(b []byte) int64 {
	if len(b) < 8 {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

// Wisconsin is a Wisconsin-benchmark-flavoured generator [Bitt83], adapted
// to the key-value model: a mix of range scans (sequential reads over a
// window, the selection queries) and batch updates (sequential writes),
// exercising transactions much larger than the paper's 1..max random ones.
type Wisconsin struct {
	Items    int
	ScanLen  int // items per range scan
	BatchLen int // items per batch update
	// Seed roots the per-transaction random streams (see package doc).
	Seed int64
}

// NewWisconsin returns a generator with 10-item scans and 5-item batches.
func NewWisconsin(items int, seed int64) *Wisconsin {
	scan, batch := 10, 5
	if scan > items {
		scan = items
	}
	if batch > items {
		batch = items
	}
	return &Wisconsin{Items: items, ScanLen: scan, BatchLen: batch, Seed: seed}
}

// Name implements Generator.
func (w *Wisconsin) Name() string {
	return fmt.Sprintf("wisconsin(items=%d,scan=%d,batch=%d)", w.Items, w.ScanLen, w.BatchLen)
}

// Next implements Generator: alternating scans and batch updates. Safe
// for concurrent use; deterministic in (Seed, id).
func (w *Wisconsin) Next(id core.TxnID) []core.Op {
	rng := txnRng(w.Seed, id)
	if id%2 == 1 {
		// Range scan.
		start := rng.Intn(w.Items - w.ScanLen + 1)
		ops := make([]core.Op, 0, w.ScanLen)
		for i := 0; i < w.ScanLen; i++ {
			ops = append(ops, core.Read(core.ItemID(start+i)))
		}
		return ops
	}
	// Batch update.
	start := rng.Intn(w.Items - w.BatchLen + 1)
	ops := make([]core.Op, 0, w.BatchLen)
	for i := 0; i < w.BatchLen; i++ {
		item := core.ItemID(start + i)
		ops = append(ops, core.Write(item, Payload(id, item)))
	}
	return ops
}

var (
	_ Generator = (*Uniform)(nil)
	_ Generator = (*HotCold)(nil)
	_ Generator = (*ET1)(nil)
	_ Generator = (*Wisconsin)(nil)
)
