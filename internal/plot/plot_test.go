package plot

import (
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	s := []Series{{Name: "site 0", Y: []float64{0, 10, 20, 30, 20, 10, 0}}}
	out := Chart("Figure 1", 40, 10, s)
	if !strings.Contains(out, "Figure 1") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "site 0") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("no data points plotted")
	}
	if !strings.Contains(out, "transaction number") {
		t.Error("x-axis caption missing")
	}
	// Peak (30) must appear on the top plot row.
	lines := strings.Split(out, "\n")
	var topRow string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			topRow = l
			break
		}
	}
	if !strings.Contains(topRow, "*") {
		t.Errorf("peak not on top row: %q", topRow)
	}
}

func TestChartMultiSeriesMarkers(t *testing.T) {
	s := []Series{
		{Name: "a", Y: []float64{1, 2, 3}},
		{Name: "b", Y: []float64{3, 2, 1}},
	}
	out := Chart("two", 30, 8, s)
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("markers missing:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart("empty", 30, 8, nil)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart output: %q", out)
	}
}

func TestChartAllZero(t *testing.T) {
	out := Chart("zeros", 20, 6, []Series{{Name: "z", Y: []float64{0, 0, 0}}})
	if !strings.Contains(out, "*") {
		t.Error("zero series not plotted on baseline")
	}
}

// TestChartNegativeValues is the regression test for negative series
// collapsing onto the bottom row: the scale must extend below zero, the
// minimum must sit on the bottom row, and the axis labels must show the
// negative bound.
func TestChartNegativeValues(t *testing.T) {
	s := []Series{{Name: "delta", Y: []float64{-20, -10, 0, 10, 20}}}
	out := Chart("dip", 20, 5, s)
	if !strings.Contains(out, "-20") {
		t.Errorf("negative axis label missing:\n%s", out)
	}
	var rows []string
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "|") {
			rows = append(rows, l)
		}
	}
	if len(rows) != 5 {
		t.Fatalf("got %d plot rows, want 5:\n%s", len(rows), out)
	}
	// Max (20) on the top row, min (-20) on the bottom row, and the
	// distinct values must not all collapse onto one row.
	if !strings.Contains(rows[0], "*") {
		t.Errorf("max not on top row:\n%s", out)
	}
	if !strings.Contains(rows[len(rows)-1], "*") {
		t.Errorf("min not on bottom row:\n%s", out)
	}
	marked := 0
	for _, r := range rows {
		if strings.Contains(r, "*") {
			marked++
		}
	}
	if marked != 5 {
		t.Errorf("5 evenly spaced values should cover all 5 rows, got %d:\n%s", marked, out)
	}
}

func TestChartClampsTinyDims(t *testing.T) {
	out := Chart("tiny", 1, 1, []Series{{Name: "s", Y: []float64{1}}})
	if out == "" {
		t.Error("tiny chart empty")
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	err := CSV(&b, "txn", []Series{
		{Name: "site 0", Y: []float64{5, 4.5}},
		{Name: "site 1", Y: []float64{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "txn,site 0,site 1\n1,5,1\n2,4.5,\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestTable(t *testing.T) {
	tbl := NewTable("Overhead").
		Row("without fail-locks", "176 ms").
		Rowf("with fail-locks", "%d ms", 186)
	out := tbl.String()
	if !strings.Contains(out, "Overhead") || !strings.Contains(out, "176 ms") || !strings.Contains(out, "186 ms") {
		t.Errorf("table output:\n%s", out)
	}
	// Aligned: both value columns start at the same offset.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	i1 := strings.Index(lines[2], "176")
	i2 := strings.Index(lines[3], "186")
	if i1 != i2 {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(5) != "5" || trimFloat(4.5) != "4.5" {
		t.Error("trimFloat formatting")
	}
}
