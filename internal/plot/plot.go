// Package plot renders experiment series as ASCII line charts and CSV.
// The charts regenerate the paper's figures ("Number of Fail-Locks Set"
// vs. "Number of Transactions") directly in the terminal; the CSV output
// feeds external plotting when publication-quality figures are wanted.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one line of a chart: Y values at X = 1, 2, 3, ... (transaction
// numbers, as in the paper's figures).
type Series struct {
	Name string
	Y    []float64
}

// markers distinguish series, mirroring the paper's solid/dashed/dotted
// line styles.
var markers = []byte{'*', '+', 'o', 'x', '@', '%'}

// Chart renders the series into a width x height character grid with axes
// and a legend. Width and height are the plot area, excluding axes.
func Chart(title string, width, height int, series []Series) string {
	if width < 10 {
		width = 10
	}
	if height < 5 {
		height = 5
	}

	// The y scale spans [minY, maxY]. The baseline stays at zero for
	// all-positive data (the paper's fail-lock counts), but series that
	// dip negative (e.g. deltas between runs) extend the scale downward
	// instead of collapsing onto the bottom row.
	maxX, minY, maxY := 0, 0.0, 0.0
	for _, s := range series {
		if len(s.Y) > maxX {
			maxX = len(s.Y)
		}
		for _, y := range s.Y {
			if y > maxY {
				maxY = y
			}
			if y < minY {
				minY = y
			}
		}
	}
	if maxX == 0 {
		return title + "\n(no data)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i, y := range s.Y {
			col := 0
			if maxX > 1 {
				col = i * (width - 1) / (maxX - 1)
			}
			row := height - 1 - int(math.Round((y-minY)/(maxY-minY)*float64(height-1)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = m
		}
	}

	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	// Legend.
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s", markers[si%len(markers)], s.Name)
	}
	if len(series) > 0 {
		b.WriteByte('\n')
	}
	// Plot rows with sparse y labels.
	for r := 0; r < height; r++ {
		yVal := minY + (maxY-minY)*float64(height-1-r)/float64(height-1)
		if r == 0 || r == height-1 || r == height/2 {
			fmt.Fprintf(&b, "%6.0f |", yVal)
		} else {
			b.WriteString("       |")
		}
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	// X axis.
	b.WriteString("       +")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	// X labels: first, middle, last.
	label := func(v int) string { return fmt.Sprintf("%d", v) }
	first, mid, last := label(1), label(maxX/2), label(maxX)
	line := make([]byte, width+8)
	for i := range line {
		line[i] = ' '
	}
	copy(line[8:], first)
	midPos := 8 + (width-1)/2 - len(mid)/2
	if midPos > 8+len(first) {
		copy(line[midPos:], mid)
	}
	lastPos := 8 + width - len(last)
	if lastPos > midPos+len(mid) {
		copy(line[lastPos:], last)
	}
	b.Write(line)
	b.WriteByte('\n')
	b.WriteString("        (transaction number)\n")
	return b.String()
}

// CSV writes the series as a CSV table: one row per X with a column per
// series. Shorter series pad with empty cells.
func CSV(w io.Writer, xName string, series []Series) error {
	cols := make([]string, 0, len(series)+1)
	cols = append(cols, xName)
	maxX := 0
	for _, s := range series {
		cols = append(cols, s.Name)
		if len(s.Y) > maxX {
			maxX = len(s.Y)
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i := 0; i < maxX; i++ {
		row := make([]string, 0, len(series)+1)
		row = append(row, fmt.Sprintf("%d", i+1))
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, trimFloat(s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Table renders a simple aligned two-column table, for the experiment-1
// style overhead tables.
type Table struct {
	Title string
	rows  [][2]string
}

// NewTable returns an empty table.
func NewTable(title string) *Table { return &Table{Title: title} }

// Row appends one label/value row.
func (t *Table) Row(label, value string) *Table {
	t.rows = append(t.rows, [2]string{label, value})
	return t
}

// Rowf appends a formatted row.
func (t *Table) Rowf(label, format string, args ...any) *Table {
	return t.Row(label, fmt.Sprintf(format, args...))
}

// String implements fmt.Stringer.
func (t *Table) String() string {
	width := 0
	for _, r := range t.rows {
		if len(r[0]) > width {
			width = len(r[0])
		}
	}
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", len(t.Title)))
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "  %-*s  %s\n", width, r[0], r[1])
	}
	return b.String()
}
