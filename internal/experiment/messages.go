package experiment

import (
	"fmt"
	"strings"

	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/policy"
	"minraid/internal/workload"
)

// MessageComplexityReport tabulates messages per committed transaction as
// the system grows — the quantity behind every time the paper reports,
// since "intersite communications were an important component of execution
// times" (§2.1, 9 ms per communication).
type MessageComplexityReport struct {
	TxnsPerCell int
	SiteCounts  []int
	// Rows[policy][i] is the mean messages per transaction at
	// SiteCounts[i] sites.
	Rows map[string][]float64
	// Order lists the policies in display order.
	Order []string
}

// String renders the table.
func (r MessageComplexityReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: messages per transaction vs system size (%d txns per cell)\n", r.TxnsPerCell)
	fmt.Fprintf(&b, "  %-8s", "policy")
	for _, n := range r.SiteCounts {
		fmt.Fprintf(&b, " %7d-site", n)
	}
	b.WriteByte('\n')
	for _, name := range r.Order {
		fmt.Fprintf(&b, "  %-8s", name)
		for _, v := range r.Rows[name] {
			fmt.Fprintf(&b, " %12.1f", v)
		}
		b.WriteByte('\n')
	}
	b.WriteString("  (paper hardware: each message costs ~9 ms of the reported times)\n")
	return b.String()
}

// RunMessageComplexity measures mean messages per transaction for each
// policy at several system sizes, on a healthy system.
func RunMessageComplexity(cfg Config, siteCounts []int, txns int) (*MessageComplexityReport, error) {
	cfg = cfg.withDefaults(4, 50, 10)
	if len(siteCounts) == 0 {
		siteCounts = []int{2, 3, 4, 6, 8}
	}
	if txns == 0 {
		txns = 100
	}
	report := &MessageComplexityReport{
		TxnsPerCell: txns,
		SiteCounts:  siteCounts,
		Rows:        make(map[string][]float64),
		Order:       []string{"rowaa", "rowa", "quorum"},
	}
	for _, polName := range report.Order {
		pol, _ := policy.ByName(polName)
		for _, n := range siteCounts {
			ccfg := cfg.clusterConfig()
			ccfg.Sites = n
			ccfg.Policy = pol
			c, err := cluster.New(ccfg)
			if err != nil {
				return nil, err
			}
			gen := workload.NewUniform(cfg.Items, cfg.MaxOps, cfg.Seed)
			before := c.MessagesSent()
			for i := 0; i < txns; i++ {
				id := c.NextTxnID()
				out, err := c.ExecTxn(core.SiteID(i%n), id, gen.Next(id))
				if err != nil {
					c.Close()
					return nil, err
				}
				if !out.Committed {
					c.Close()
					return nil, fmt.Errorf("message complexity: unexpected abort: %s", out.AbortReason)
				}
			}
			perTxn := float64(c.MessagesSent()-before) / float64(txns)
			report.Rows[polName] = append(report.Rows[polName], perTxn)
			c.Close()
		}
	}
	return report, nil
}
