package experiment

import (
	"testing"
	"time"

	"minraid/internal/policy"
	"minraid/internal/transport"
)

// partialSoakConfig is the partial-replication regression corpus: chaos
// and deterministic partitions over a cluster where each item lives on
// `degree` of the sites (round-robin placement). Partial replication
// forces the paper's serial processing; the harness picks that up from
// the degree automatically.
func partialSoakConfig(seeds []int64, txns, sites, items, degree int) SoakConfig {
	return SoakConfig{
		Base: Config{
			Sites:             sites,
			Items:             items,
			AckTimeout:        40 * time.Millisecond,
			ReplicationDegree: degree,
		},
		Seeds:        seeds,
		TxnsPerEpoch: txns,
		Chaos: transport.ChaosConfig{
			Drop:      0.03,
			Dup:       0.03,
			MaxJitter: 4 * time.Millisecond,
		},
		Partitions: true,
	}
}

// TestSoakPartialReplication: ROWAA over a degree-2-of-4 placement must
// audit clean every epoch under chaos plus partitions. The audit here is
// the sparse one — hosted-only dumps judged against the placement — so a
// copy materializing on a non-hosting site, or a stray fail-lock bit for
// one, fails the epoch.
func TestSoakPartialReplication(t *testing.T) {
	seeds := []int64{1, 2, 3}
	txns := 30
	if testing.Short() {
		seeds = seeds[:2]
		txns = 20
	}
	res, err := RunSoak(partialSoakConfig(seeds, txns, 4, 20, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("partial soak regression: %d audit violations:\n%s", res.Violations, res)
	}
	total := transport.LinkStats{}
	for _, e := range res.Epochs {
		total.Add(e.ChaosTotal())
	}
	if total.Dropped == 0 {
		t.Fatalf("chaos never fired: %+v", total)
	}
	if res.PartitionTxns == 0 {
		t.Fatal("no transaction ran while a link was down")
	}
}

// TestSoakPartialQuorum: quorum consensus with per-item quorum sizing
// over a degree-2-of-4 placement. Every quorum is sized from the item's
// two copies (write 2, read 1), so the epoch-end quorum audit must find
// each item's read quorum intersecting its fresh copies.
func TestSoakPartialQuorum(t *testing.T) {
	seeds := []int64{1, 2}
	txns := 30
	if testing.Short() {
		txns = 20
	}
	cfg := partialSoakConfig(seeds, txns, 4, 20, 2)
	cfg.Base.Policy = policy.Quorum{}
	res, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("partial quorum soak regression: %d audit violations:\n%s", res.Violations, res)
	}
}

// TestSoakPartialReplicationAtScale is the acceptance run: 10^5 items at
// degree 3 over 5 sites, chaos plus partitions, per-epoch sparse audits.
// The point is the complexity class — placement-aware audits and
// reconciliation touch O(items x degree) copies, not O(items x sites) —
// so a hundred thousand items stays test-suite fast.
func TestSoakPartialReplicationAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("10^5-item soak skipped in -short mode")
	}
	res, err := RunSoak(partialSoakConfig([]int64{1}, 40, 5, 100_000, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("at-scale partial soak: %d audit violations:\n%s", res.Violations, res)
	}
}
