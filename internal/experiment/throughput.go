package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/msg"
	"minraid/internal/storage"
	"minraid/internal/workload"
)

// SoakBenchConfig parameterizes the serial-vs-concurrent throughput bench:
// the same seeded workload run twice against durably-logged stores, once
// with the paper's serial processing (one transaction at a time, one fsync
// per applied write) and once interleaved with group commit (concurrent
// transactions, batched fsyncs).
type SoakBenchConfig struct {
	// Base supplies sites, items, delay and timeouts. A zero Delay gets
	// 500us: with no message cost at all the protocol is pure CPU and a
	// single-core host shows no interleaving win to measure.
	Base Config
	// Txns is the workload length of each pass (default 200).
	Txns int
	// Concurrency is the per-site degree of the concurrent pass
	// (default 8).
	Concurrency int
	// Rate, when positive, paces the concurrent pass open-loop at this
	// many transactions per second and reports latency from scheduled
	// arrival (queueing included — the coordinated-omission-aware view).
	// Zero runs both passes unpaced for a peak-throughput comparison and
	// reports per-transaction service latency instead.
	Rate float64
	// LockWaitBudget bounds per-site lock waits (default 25ms). Short is
	// right here: replicated writes from different coordinators acquire
	// the same item's copies in different site orders, and the resulting
	// cross-site deadlocks are invisible to per-site detection — they
	// resolve only by this timeout, so every extra millisecond of budget
	// is a millisecond the deadlocked pair stalls the lock queues.
	LockWaitBudget time.Duration
	// WALDir is where each pass puts its write-ahead-logged stores; empty
	// uses a temporary directory removed afterwards.
	WALDir string
}

func (c SoakBenchConfig) withDefaults() SoakBenchConfig {
	// The bench injects no faults, so failure detection is pure downside:
	// under load a participant's lock wait plus scheduling delay can
	// exceed a tight ack deadline, and the coordinator would falsely
	// declare a perfectly healthy site failed mid-bench. A generous
	// timeout keeps the detector out of the measurement.
	if c.Base.AckTimeout == 0 {
		c.Base.AckTimeout = 2 * time.Second
	}
	c.Base = c.Base.withDefaults(4, 64, 5)
	if c.Base.Delay == 0 {
		c.Base.Delay = 500 * time.Microsecond
	}
	if c.Txns == 0 {
		c.Txns = 200
	}
	if c.Concurrency == 0 {
		c.Concurrency = 8
	}
	if c.Base.ReplicationDegree > 0 && c.Base.ReplicationDegree < c.Base.Sites {
		// Partial replication runs serially (remote donor reads are not
		// covered by distributed 2PL), so the second pass degenerates to
		// serial-with-group-commit: the bench then isolates the fsync
		// batching win instead of the interleaving win.
		c.Concurrency = 1
	}
	if c.LockWaitBudget == 0 {
		c.LockWaitBudget = 25 * time.Millisecond
	}
	return c
}

// BenchMode is one pass of the bench in BENCH_soak.json.
type BenchMode struct {
	Mode         string         `json:"mode"` // "serial" or "concurrent"
	Concurrency  int            `json:"concurrency"`
	GroupCommit  bool           `json:"group_commit"`
	Txns         int            `json:"txns"`
	Committed    int            `json:"committed"`
	Aborted      int            `json:"aborted"`
	AbortReasons map[string]int `json:"abort_reasons,omitempty"`
	ElapsedMs    float64        `json:"elapsed_ms"`
	OpsPerSec    float64        `json:"ops_per_sec"`
	P50Ms        float64        `json:"p50_ms"`
	P95Ms        float64        `json:"p95_ms"`
	P99Ms        float64        `json:"p99_ms"`
}

// BenchReport is the machine-readable result of one bench run — the
// BENCH_soak.json schema. Latencies are in milliseconds; LatencySource
// says what they measure: "service" (from actual issue, unpaced peak run)
// or "scheduled-arrival" (from the open-loop arrival clock, paced run).
type BenchReport struct {
	Schema        string     `json:"schema"` // "minraid/bench_soak/v1"
	Seed          int64      `json:"seed"`
	Sites         int        `json:"sites"`
	Items         int        `json:"items"`
	MaxOps        int        `json:"max_ops"`
	DelayMs       float64    `json:"delay_ms"`
	RateTxnPerSec float64    `json:"rate_txn_per_sec"` // 0 = unpaced
	LatencySource string     `json:"latency_source"`
	Serial        *BenchMode `json:"serial"`
	Concurrent    *BenchMode `json:"concurrent"`
	// SpeedupX is concurrent ops/sec over serial ops/sec.
	SpeedupX float64 `json:"speedup_x"`
}

// String renders the human-readable summary.
func (r *BenchReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Soak bench: %d txns, %d sites, %d items, delay %.1fms, seed %d",
		r.Serial.Txns, r.Sites, r.Items, r.DelayMs, r.Seed)
	if r.RateTxnPerSec > 0 {
		fmt.Fprintf(&b, ", open-loop %.0f txn/s", r.RateTxnPerSec)
	}
	fmt.Fprintf(&b, "\n  %-36s %10s %10s %8s %8s %8s %8s\n",
		"mode", "committed", "txn/s", "p50", "p95", "p99", "aborted")
	for _, m := range []*BenchMode{r.Serial, r.Concurrent} {
		name := m.Mode
		if m.GroupCommit {
			name += "+group-commit"
		}
		fmt.Fprintf(&b, "  %-36s %10d %10.1f %7.1fm %7.1fm %7.1fm %8d\n",
			fmt.Sprintf("%s (degree %d)", name, m.Concurrency),
			m.Committed, m.OpsPerSec, m.P50Ms, m.P95Ms, m.P99Ms, m.Aborted)
	}
	fmt.Fprintf(&b, "  speedup: %.2fx (latency source: %s)\n", r.SpeedupX, r.LatencySource)
	return b.String()
}

// RunSoakBench runs the two passes and assembles the report. Both passes
// replay the identical pre-generated transaction stream (IDs, coordinators
// and operations fixed up front from the seed), so the comparison isolates
// the execution regime: serial processing with per-write fsync versus
// interleaved execution with group commit.
func RunSoakBench(cfg SoakBenchConfig) (*BenchReport, error) {
	cfg = cfg.withDefaults()
	dir := cfg.WALDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "raid-bench-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	report := &BenchReport{
		Schema:        "minraid/bench_soak/v1",
		Seed:          cfg.Base.Seed,
		Sites:         cfg.Base.Sites,
		Items:         cfg.Base.Items,
		MaxOps:        cfg.Base.MaxOps,
		DelayMs:       float64(cfg.Base.Delay) / float64(time.Millisecond),
		RateTxnPerSec: cfg.Rate,
		LatencySource: "service",
	}
	if cfg.Rate > 0 {
		report.LatencySource = "scheduled-arrival"
	}

	var err error
	if report.Serial, err = runBenchMode(cfg, filepath.Join(dir, "serial"), 1, false); err != nil {
		return nil, fmt.Errorf("experiment: bench serial pass: %w", err)
	}
	if report.Concurrent, err = runBenchMode(cfg, filepath.Join(dir, "concurrent"), cfg.Concurrency, true); err != nil {
		return nil, fmt.Errorf("experiment: bench concurrent pass: %w", err)
	}
	if report.Serial.OpsPerSec > 0 {
		report.SpeedupX = report.Concurrent.OpsPerSec / report.Serial.OpsPerSec
	}
	return report, nil
}

// runBenchMode runs one pass: a fresh cluster over durably-logged stores
// (Sync on; GroupCommit per mode), driven by the open-loop driver with the
// pass's in-flight bound.
func runBenchMode(cfg SoakBenchConfig, dir string, degree int, groupCommit bool) (*BenchMode, error) {
	base := cfg.Base
	ccfg := base.clusterConfig()
	if degree > 1 {
		ccfg.ConcurrentTxns = degree
	}
	ccfg.LockWaitBudget = cfg.LockWaitBudget
	var walStores []*storage.WALStore
	defer func() {
		for _, s := range walStores {
			_ = s.Close()
		}
	}()
	ccfg.StoreFactory = func(id core.SiteID) (storage.Store, error) {
		s, err := storage.OpenWAL(storage.WALOptions{
			Dir:         filepath.Join(dir, fmt.Sprintf("site%d", id)),
			Items:       base.Items,
			Sync:        true,
			GroupCommit: groupCommit,
		})
		if err != nil {
			return nil, err
		}
		walStores = append(walStores, s)
		return s, nil
	}
	c, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	// Pre-generate the stream so both passes issue bit-identical work:
	// IDs are allocated serially here, not inside the racing closures.
	gen := workload.NewUniform(base.Items, base.MaxOps, base.Seed)
	gen.ReadFraction = base.ReadFraction
	issues := make([]soakIssue, cfg.Txns)
	for i := range issues {
		id := c.NextTxnID()
		issues[i] = soakIssue{
			num:   i + 1,
			id:    id,
			coord: core.SiteID(i % base.Sites),
			ops:   gen.Next(id),
		}
	}

	mode := &BenchMode{
		Mode:         "serial",
		Concurrency:  degree,
		GroupCommit:  groupCommit,
		Txns:         cfg.Txns,
		AbortReasons: make(map[string]int),
	}
	if degree > 1 {
		mode.Mode = "concurrent"
	}

	outs := make([]*msg.TxnResult, len(issues))
	service := make([]time.Duration, len(issues))
	var execMu sync.Mutex
	var execErr error
	ol := &workload.OpenLoop{Rate: cfg.Rate, Count: len(issues), MaxInFlight: degree}
	res := ol.Run(func(i int) {
		iss := issues[i]
		st := time.Now()
		out, err := c.ExecTxn(iss.coord, iss.id, iss.ops)
		service[i] = time.Since(st)
		if err != nil {
			execMu.Lock()
			if execErr == nil {
				execErr = fmt.Errorf("txn %d on %s: %w", iss.num, iss.coord, err)
			}
			execMu.Unlock()
			return
		}
		outs[i] = out
	})
	if execErr != nil {
		return nil, execErr
	}

	for _, out := range outs {
		if out.Committed {
			mode.Committed++
		} else {
			mode.Aborted++
			mode.AbortReasons[out.AbortReason]++
		}
	}
	mode.ElapsedMs = float64(res.Elapsed) / float64(time.Millisecond)
	// Throughput counts committed transactions only: an abort did no
	// durable work, so issued/sec would flatter a pass that thrashes on
	// lock contention.
	mode.OpsPerSec = float64(mode.Committed) / res.Elapsed.Seconds()
	lat := service
	if cfg.Rate > 0 {
		lat = res.Latencies
	}
	mode.P50Ms = pctileMs(lat, 0.50)
	mode.P95Ms = pctileMs(lat, 0.95)
	mode.P99Ms = pctileMs(lat, 0.99)

	// The bench injects no faults, so the pass must leave every replica
	// identical — a correctness gate on the interleaved+batched regime.
	report, err := c.Audit()
	if err != nil {
		return nil, err
	}
	if !report.OK() || report.StaleCopies != 0 {
		return nil, fmt.Errorf("bench %s pass failed audit: %s", mode.Mode, report)
	}
	return mode, nil
}

// pctileMs is the nearest-rank percentile of a latency sample, in
// milliseconds.
func pctileMs(lat []time.Duration, q float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	s := make([]time.Duration, len(lat))
	copy(s, lat)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return float64(s[idx]) / float64(time.Millisecond)
}
