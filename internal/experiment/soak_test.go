package experiment

import (
	"reflect"
	"testing"
	"time"

	"minraid/internal/transport"
)

// soakTestConfig is the regression corpus configuration: small epochs,
// fast timeouts, fault rates aggressive enough to exercise false failure
// declarations, duplicates and recovery retries.
func soakTestConfig(seeds []int64, txns int) SoakConfig {
	return SoakConfig{
		Base: Config{
			Sites:      4,
			Items:      20,
			AckTimeout: 40 * time.Millisecond,
		},
		Seeds:        seeds,
		TxnsPerEpoch: txns,
		Chaos: transport.ChaosConfig{
			Drop:      0.03,
			Dup:       0.03,
			MaxJitter: 4 * time.Millisecond,
		},
	}
}

// TestSoakKnownGoodSeeds is the chaos regression corpus: seeds that have
// audited clean must keep auditing clean — a regression in the ack-timeout
// or announce machinery, the chaos layer, or the repair policy shows up as
// an audit violation or an unexplained error here.
func TestSoakKnownGoodSeeds(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	txns := 25
	if testing.Short() {
		seeds = seeds[:2]
		txns = 15
	}
	res, err := RunSoak(soakTestConfig(seeds, txns))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("soak regression: %d audit violations:\n%s", res.Violations, res)
	}
	if res.Txns != len(seeds)*txns {
		t.Fatalf("ran %d txns, want %d", res.Txns, len(seeds)*txns)
	}
	total := transport.LinkStats{}
	for _, e := range res.Epochs {
		total.Add(e.ChaosTotal())
	}
	if total.Dropped == 0 || total.Duplicated == 0 {
		t.Fatalf("chaos never fired — the corpus is not exercising faults: %+v", total)
	}
}

// TestSoakEpochReproducible runs one epoch twice and requires identical
// per-link chaos decisions — the end-to-end determinism the transport
// layer promises, verified through the whole cluster stack. Serial mode
// only: goroutine interleavings under concurrency reorder per-link
// consumption of the chaos streams, so the bit-level counter comparison is
// a serial-processing property (the concurrent witness is
// TestSoakConcurrentDeterministic).
func TestSoakEpochReproducible(t *testing.T) {
	cfg := soakTestConfig([]int64{1}, 15)
	cfg.Concurrency = 1
	a, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Epochs[0].Chaos, b.Epochs[0].Chaos) {
		t.Fatalf("same seed produced different chaos decisions:\nfirst: %+v\nrerun: %+v",
			a.Epochs[0].Chaos, b.Epochs[0].Chaos)
	}
}
