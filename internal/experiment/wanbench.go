package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/geo"
	"minraid/internal/msg"
	"minraid/internal/storage"
	"minraid/internal/transport"
	"minraid/internal/workload"
)

// WANBenchConfig parameterizes the geo-replication commit bench: the same
// seeded workload run twice over the same compiled WAN link matrix, once
// with per-transaction ROWAA commit and once with epoch-batched commit,
// both interleaved at the same degree over durably-logged stores.
type WANBenchConfig struct {
	// Base supplies sites, items and timeouts. Zero sites defaults to 6
	// (two per wan3 region); zero AckTimeout defaults to 2s to keep the
	// failure detector out of the measurement.
	Base Config
	// Profile names the WAN shape (internal/geo); default "wan3".
	Profile string
	// Txns is the workload length of each pass (default 200).
	Txns int
	// Concurrency is the per-site interleaving degree of both passes
	// (default 8).
	Concurrency int
	// Rate, when positive, paces both passes open-loop at this many
	// transactions per second (latency from scheduled arrival). Zero
	// runs unpaced for a peak-throughput comparison.
	Rate float64
	// CommitEpoch is the epoch length of the batched pass (default 2ms;
	// must stay under Base.AckTimeout).
	CommitEpoch time.Duration
	// LockWaitBudget bounds per-site lock waits (default 100ms — WAN
	// prepare round trips hold locks for several milliseconds, so the
	// LAN bench's tight budget would abort healthy transactions).
	LockWaitBudget time.Duration
	// WALDir is where each pass puts its write-ahead-logged stores;
	// empty uses a temporary directory removed afterwards.
	WALDir string
}

func (c WANBenchConfig) withDefaults() WANBenchConfig {
	if c.Base.AckTimeout == 0 {
		c.Base.AckTimeout = 2 * time.Second
	}
	// 256 items keeps write-write conflict (and with it the cross-site
	// deadlocks that resolve only by lock timeout) rare enough that the
	// comparison measures the commit protocol, not the deadlock detector.
	c.Base = c.Base.withDefaults(6, 256, 5)
	if c.Profile == "" {
		c.Profile = "wan3"
	}
	if c.Txns == 0 {
		c.Txns = 200
	}
	if c.Concurrency == 0 {
		c.Concurrency = 8
	}
	if c.CommitEpoch == 0 {
		c.CommitEpoch = 2 * time.Millisecond
	}
	if c.LockWaitBudget == 0 {
		c.LockWaitBudget = 100 * time.Millisecond
	}
	return c
}

// WANBenchReport is the machine-readable result of one WAN bench run —
// the BENCH_wan.json schema. Both passes replay the identical seeded
// transaction stream over the identical compiled link matrix; the only
// difference is the commit protocol.
type WANBenchReport struct {
	Schema        string  `json:"schema"` // "minraid/bench_wan/v1"
	Seed          int64   `json:"seed"`
	Sites         int     `json:"sites"`
	Items         int     `json:"items"`
	MaxOps        int     `json:"max_ops"`
	Profile       string  `json:"profile"`
	Regions       string  `json:"regions"`
	WANFingerprint uint64 `json:"wan_fingerprint"`
	Concurrency   int     `json:"concurrency"`
	CommitEpochMs float64 `json:"commit_epoch_ms"`
	RateTxnPerSec float64 `json:"rate_txn_per_sec"` // 0 = unpaced
	LatencySource string  `json:"latency_source"`
	// ROWAA is the per-transaction commit pass, Epoch the batched one.
	ROWAA *BenchMode `json:"rowaa"`
	Epoch *BenchMode `json:"epoch"`
	// SpeedupX is epoch committed ops/sec over rowaa committed ops/sec.
	SpeedupX float64 `json:"speedup_x"`
}

// String renders the human-readable summary.
func (r *WANBenchReport) String() string {
	var b strings.Builder
	txns := 0
	if r.ROWAA != nil {
		txns = r.ROWAA.Txns
	} else if r.Epoch != nil {
		txns = r.Epoch.Txns
	}
	fmt.Fprintf(&b, "WAN bench: %s (%s), %d txns, %d sites, %d items, seed %d, degree %d, epoch %.1fms",
		r.Profile, r.Regions, txns, r.Sites, r.Items, r.Seed, r.Concurrency, r.CommitEpochMs)
	if r.RateTxnPerSec > 0 {
		fmt.Fprintf(&b, ", open-loop %.0f txn/s", r.RateTxnPerSec)
	}
	fmt.Fprintf(&b, "\n  %-24s %10s %10s %8s %8s %8s %8s\n",
		"commit mode", "committed", "txn/s", "p50", "p95", "p99", "aborted")
	for _, m := range []*BenchMode{r.ROWAA, r.Epoch} {
		if m == nil {
			continue
		}
		fmt.Fprintf(&b, "  %-24s %10d %10.1f %7.1fm %7.1fm %7.1fm %8d\n",
			m.Mode, m.Committed, m.OpsPerSec, m.P50Ms, m.P95Ms, m.P99Ms, m.Aborted)
	}
	if r.ROWAA != nil && r.Epoch != nil {
		fmt.Fprintf(&b, "  speedup: %.2fx (latency source: %s)\n", r.SpeedupX, r.LatencySource)
	}
	return b.String()
}

// RunWANBench compiles the profile once from the seed and runs the two
// passes over identical link matrices and identical pre-generated
// transaction streams, so the comparison isolates the commit protocol:
// per-transaction ROWAA fan-out versus epoch-batched fan-out.
func RunWANBench(cfg WANBenchConfig) (*WANBenchReport, error) {
	return runWANBench(cfg, true, true)
}

// RunWANBenchOne runs a single commit-mode pass ("rowaa" or "epoch") of
// the same seeded workload — the other mode's slot in the report stays
// nil, for callers that merge two separate invocations into one file.
func RunWANBenchOne(cfg WANBenchConfig, mode string) (*WANBenchReport, error) {
	switch mode {
	case "rowaa":
		return runWANBench(cfg, true, false)
	case "epoch":
		return runWANBench(cfg, false, true)
	}
	return nil, fmt.Errorf("experiment: unknown commit mode %q (want rowaa or epoch)", mode)
}

func runWANBench(cfg WANBenchConfig, doROWAA, doEpoch bool) (*WANBenchReport, error) {
	cfg = cfg.withDefaults()
	if cfg.CommitEpoch >= cfg.Base.AckTimeout {
		return nil, fmt.Errorf("experiment: commit epoch %v must stay under the ack timeout %v", cfg.CommitEpoch, cfg.Base.AckTimeout)
	}
	p, err := geo.Lookup(cfg.Profile)
	if err != nil {
		return nil, err
	}
	wan, err := geo.Compile(p, cfg.Base.Sites, cfg.Base.Seed)
	if err != nil {
		return nil, err
	}
	dir := cfg.WALDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "raid-wanbench-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	report := &WANBenchReport{
		Schema:         "minraid/bench_wan/v1",
		Seed:           cfg.Base.Seed,
		Sites:          cfg.Base.Sites,
		Items:          cfg.Base.Items,
		MaxOps:         cfg.Base.MaxOps,
		Profile:        wan.Profile.Name,
		Regions:        wan.String(),
		WANFingerprint: wan.Fingerprint(),
		Concurrency:    cfg.Concurrency,
		CommitEpochMs:  float64(cfg.CommitEpoch) / float64(time.Millisecond),
		RateTxnPerSec:  cfg.Rate,
		LatencySource:  "service",
	}
	if cfg.Rate > 0 {
		report.LatencySource = "scheduled-arrival"
	}

	if doROWAA {
		if report.ROWAA, err = runWANBenchMode(cfg, wan, filepath.Join(dir, "rowaa"), 0); err != nil {
			return nil, fmt.Errorf("experiment: wan bench rowaa pass: %w", err)
		}
	}
	if doEpoch {
		if report.Epoch, err = runWANBenchMode(cfg, wan, filepath.Join(dir, "epoch"), cfg.CommitEpoch); err != nil {
			return nil, fmt.Errorf("experiment: wan bench epoch pass: %w", err)
		}
	}
	if report.ROWAA != nil && report.Epoch != nil && report.ROWAA.OpsPerSec > 0 {
		report.SpeedupX = report.Epoch.OpsPerSec / report.ROWAA.OpsPerSec
	}
	return report, nil
}

// runWANBenchMode runs one pass: a fresh cluster whose chaos layer is the
// compiled WAN link matrix (no drops, no dups — latency and wire-cost
// only), durably-logged group-commit stores, the open-loop driver at the
// configured degree. commitEpoch zero runs stock ROWAA commit; positive
// enables the epoch batcher.
func runWANBenchMode(cfg WANBenchConfig, wan *geo.Compiled, dir string, commitEpoch time.Duration) (*BenchMode, error) {
	base := cfg.Base
	ccfg := base.clusterConfig()
	chaosCfg := transport.ChaosConfig{
		Seed:          base.Seed,
		Links:         wan.Links,
		ExemptManager: true,
	}
	ccfg.Chaos = &chaosCfg
	ccfg.ConcurrentTxns = cfg.Concurrency
	ccfg.LockWaitBudget = cfg.LockWaitBudget
	ccfg.CommitEpoch = commitEpoch
	var walStores []*storage.WALStore
	defer func() {
		for _, s := range walStores {
			_ = s.Close()
		}
	}()
	ccfg.StoreFactory = func(id core.SiteID) (storage.Store, error) {
		s, err := storage.OpenWAL(storage.WALOptions{
			Dir:         filepath.Join(dir, fmt.Sprintf("site%d", id)),
			Items:       base.Items,
			Sync:        true,
			GroupCommit: true,
		})
		if err != nil {
			return nil, err
		}
		walStores = append(walStores, s)
		return s, nil
	}
	c, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	// Pre-generate the stream so both passes issue bit-identical work.
	gen := workload.NewUniform(base.Items, base.MaxOps, base.Seed)
	gen.ReadFraction = base.ReadFraction
	issues := make([]soakIssue, cfg.Txns)
	for i := range issues {
		id := c.NextTxnID()
		issues[i] = soakIssue{
			num:   i + 1,
			id:    id,
			coord: core.SiteID(i % base.Sites),
			ops:   gen.Next(id),
		}
	}

	mode := &BenchMode{
		Mode:         "rowaa",
		Concurrency:  cfg.Concurrency,
		GroupCommit:  true,
		Txns:         cfg.Txns,
		AbortReasons: make(map[string]int),
	}
	if commitEpoch > 0 {
		mode.Mode = "epoch"
	}

	outs := make([]*msg.TxnResult, len(issues))
	service := make([]time.Duration, len(issues))
	var execMu sync.Mutex
	var execErr error
	ol := &workload.OpenLoop{Rate: cfg.Rate, Count: len(issues), MaxInFlight: cfg.Concurrency}
	res := ol.Run(func(i int) {
		iss := issues[i]
		st := time.Now()
		out, err := c.ExecTxn(iss.coord, iss.id, iss.ops)
		service[i] = time.Since(st)
		if err != nil {
			execMu.Lock()
			if execErr == nil {
				execErr = fmt.Errorf("txn %d on %s: %w", iss.num, iss.coord, err)
			}
			execMu.Unlock()
			return
		}
		outs[i] = out
	})
	if execErr != nil {
		return nil, execErr
	}

	for _, out := range outs {
		if out.Committed {
			mode.Committed++
		} else {
			mode.Aborted++
			mode.AbortReasons[out.AbortReason]++
		}
	}
	mode.ElapsedMs = float64(res.Elapsed) / float64(time.Millisecond)
	mode.OpsPerSec = float64(mode.Committed) / res.Elapsed.Seconds()
	lat := service
	if cfg.Rate > 0 {
		lat = res.Latencies
	}
	mode.P50Ms = pctileMs(lat, 0.50)
	mode.P95Ms = pctileMs(lat, 0.95)
	mode.P99Ms = pctileMs(lat, 0.99)

	// Epoch commit answers the client once the batch fan-out is on the
	// wire; let in-flight CommitBatch deliveries cross the slowest link
	// and apply before comparing copies.
	if commitEpoch > 0 {
		time.Sleep(commitEpoch + 2*wan.MaxBaseDelay() + 200*time.Millisecond)
	}

	// No faults are injected, so the pass must leave every replica
	// identical — the audit gate the epoch-batched commit has to clear
	// at full concurrency before its throughput means anything.
	report, err := c.Audit()
	if err != nil {
		return nil, err
	}
	if !report.OK() || report.StaleCopies != 0 {
		return nil, fmt.Errorf("wan bench %s pass failed audit: %s", mode.Mode, report)
	}
	return mode, nil
}
