package experiment

import (
	"fmt"
	"strings"

	"minraid/internal/core"
	"minraid/internal/failure"
	"minraid/internal/plot"
)

// ScenarioReport reproduces experiment 3 (§4): consistency of replicated
// copies under multiple site failures — Figures 2 and 3.
type ScenarioReport struct {
	Name string
	Cfg  Config
	Res  *ScheduleResult
	// ExpectDataAborts reports whether the scenario predicts aborts for
	// data unavailability (scenario 1: yes, 13 in the paper; scenario 2:
	// none).
	ExpectDataAborts bool
}

// String renders the scenario's figure and abort accounting.
func (r ScenarioReport) String() string {
	var b strings.Builder
	series := make([]plot.Series, 0, r.Cfg.Sites)
	for i := 0; i < r.Cfg.Sites; i++ {
		series = append(series, plot.Series{
			Name: fmt.Sprintf("site %d", i),
			Y:    r.Res.FailLocks[core.SiteID(i)],
		})
	}
	b.WriteString(plot.Chart(
		fmt.Sprintf("%s: database inconsistency (db=%d, maxops=%d, sites=%d)",
			r.Name, r.Cfg.Items, r.Cfg.MaxOps, r.Cfg.Sites),
		72, 16, series,
	))
	fmt.Fprintf(&b, "txns: %d committed, %d aborted (data unavailability: %d, failure detection: %d)\n",
		r.Res.Committed, r.Res.Aborted, r.Res.DataAborts, r.Res.DetectionAborts)
	fmt.Fprintf(&b, "copier transactions: %d; %s\n", r.Res.Copiers, r.Res.AuditDetail)
	return b.String()
}

// RunFigure2 reproduces experiment 3 scenario 1 (§4.2.1): 2 sites with
// alternating failures. Site 1's failure during site 0's recovery makes
// some fail-locked items totally unavailable, forcing aborts (the paper
// observed 13).
func RunFigure2(cfg Config) (*ScenarioReport, error) {
	cfg = cfg.withDefaults(2, 50, 5)
	res, err := RunSchedule(cfg, failure.Scenario1(), 0)
	if err != nil {
		return nil, err
	}
	return &ScenarioReport{Name: "Figure 2 (scenario 1)", Cfg: cfg, Res: res, ExpectDataAborts: true}, nil
}

// RunFigure3 reproduces experiment 3 scenario 2 (§4.2.2): 4 sites failing
// singly in succession. "Since the sites went down singly ... an
// up-to-date copy of a data item was always available on some site. Thus
// the sites were able to recover without any aborted transactions due to
// data being unavailable."
func RunFigure3(cfg Config) (*ScenarioReport, error) {
	cfg = cfg.withDefaults(4, 50, 5)
	res, err := RunSchedule(cfg, failure.Scenario2(), 0)
	if err != nil {
		return nil, err
	}
	return &ScenarioReport{Name: "Figure 3 (scenario 2)", Cfg: cfg, Res: res, ExpectDataAborts: false}, nil
}
