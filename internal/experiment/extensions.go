package experiment

import (
	"fmt"
	"strings"
	"time"

	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/failure"
	"minraid/internal/policy"
	"minraid/internal/txn"
	"minraid/internal/workload"
)

// TwoStepRecoveryReport compares the paper's baseline demand-driven
// recovery against its proposed two-step recovery (§3.2): "in the second
// step the recovering site begins to issue copier transactions in a
// 'batch' mode ... this causes the out-of-date copies to be refreshed and
// hastens the completion of recovery."
type TwoStepRecoveryReport struct {
	Threshold float64
	// Baseline and TwoStep are the transactions-to-full-recovery counts.
	Baseline, TwoStep int
	// BaselineCopiers / TwoStepCopiers count demand copiers.
	BaselineCopiers, TwoStepCopiers int
	// TwoStepBatchCopiers counts the batch copiers step two issued
	// (grouped: one copier can refresh many items from one donor).
	TwoStepBatchCopiers int
	// Percentiles merges both arms' latency histograms.
	Percentiles *PercentileReport
}

// String renders the comparison.
func (r TwoStepRecoveryReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: two-step recovery (batch threshold %.0f%%)\n", r.Threshold*100)
	fmt.Fprintf(&b, "  %-36s %8s %8s\n", "", "baseline", "two-step")
	fmt.Fprintf(&b, "  %-36s %8d %8d\n", "txns from site-up to full recovery", r.Baseline, r.TwoStep)
	fmt.Fprintf(&b, "  %-36s %8d %8d\n", "demand copier transactions", r.BaselineCopiers, r.TwoStepCopiers)
	fmt.Fprintf(&b, "  %-36s %8d %8d\n", "batch copier transactions", 0, r.TwoStepBatchCopiers)
	return b.String()
}

// RunTwoStepRecovery runs the Figure-1 scenario twice — once demand-driven
// and once with the batch threshold — and compares recovery length.
func RunTwoStepRecovery(cfg Config, threshold float64, capTxns int) (*TwoStepRecoveryReport, error) {
	cfg = cfg.withDefaults(2, 50, 5)
	if capTxns == 0 {
		capTxns = 2000
	}
	if threshold == 0 {
		threshold = 0.5
	}
	report := &TwoStepRecoveryReport{Threshold: threshold}

	base := cfg
	base.BatchCopierThreshold = 0
	baseRes, err := RunSchedule(base, failure.Figure1(0), capTxns)
	if err != nil {
		return nil, err
	}
	report.Baseline = recoverySpan(baseRes)
	report.BaselineCopiers = baseRes.Copiers

	two := cfg
	two.BatchCopierThreshold = threshold
	twoRes, err := RunSchedule(two, failure.Figure1(0), capTxns)
	if err != nil {
		return nil, err
	}
	report.TwoStep = recoverySpan(twoRes)
	report.TwoStepCopiers = twoRes.Copiers
	report.TwoStepBatchCopiers = twoRes.BatchCopiers
	report.Percentiles = baseRes.Percentiles
	report.Percentiles.Merge(twoRes.Percentiles)
	return report, nil
}

func recoverySpan(res *ScheduleResult) int {
	if res.FullyRecoveredAt > 100 {
		return res.FullyRecoveredAt - 100
	}
	return res.Txns - 100 // never fully recovered within the cap
}

// ReadFractionReport sweeps the workload's read fraction over the
// Figure-1 scenario — §5's discussion: "if reads occur more commonly than
// writes then more copier transactions would probably be requested by a
// recovering site during recovery."
type ReadFractionReport struct {
	Rows []ReadFractionRow
}

// ReadFractionRow is one sweep point, averaged over several seeds.
type ReadFractionRow struct {
	ReadFraction float64
	PeakLocked   float64
	RecoveryTxns float64
	Copiers      float64
}

// String renders the sweep table.
func (r ReadFractionReport) String() string {
	var b strings.Builder
	b.WriteString("Extension: read-fraction sweep over the Figure-1 scenario (mean over seeds)\n")
	fmt.Fprintf(&b, "  %12s %12s %14s %10s\n", "read frac", "peak locked", "recovery txns", "copiers")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %11.0f%% %12.1f %14.1f %10.1f\n",
			row.ReadFraction*100, row.PeakLocked, row.RecoveryTxns, row.Copiers)
	}
	return b.String()
}

// RunReadFractionSweep runs the Figure-1 scenario at several read
// fractions, averaging each point over a handful of seeds (a single seed
// would be noise-dominated: the item-visit sequence, and hence the
// coupon-collector tail of recovery, is identical across fractions for one
// seed).
func RunReadFractionSweep(cfg Config, fractions []float64, capTxns int) (*ReadFractionReport, error) {
	cfg = cfg.withDefaults(2, 50, 5)
	if len(fractions) == 0 {
		fractions = []float64{0.3, 0.5, 0.7, 0.9}
	}
	if capTxns == 0 {
		capTxns = 4000
	}
	const seeds = 5
	report := &ReadFractionReport{}
	for _, f := range fractions {
		row := ReadFractionRow{ReadFraction: f}
		for s := 0; s < seeds; s++ {
			c := cfg
			c.ReadFraction = f
			c.Seed = cfg.Seed + int64(s)*7919
			res, err := RunSchedule(c, failure.Figure1(0), capTxns)
			if err != nil {
				return nil, err
			}
			if len(res.FailLocks[0]) >= 100 {
				row.PeakLocked += res.FailLocks[0][99]
			}
			row.RecoveryTxns += float64(recoverySpan(res))
			row.Copiers += float64(res.Copiers)
		}
		row.PeakLocked /= seeds
		row.RecoveryTxns /= seeds
		row.Copiers /= seeds
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

// PolicyComparisonReport contrasts ROWAA against the ROWA and quorum
// baselines under a single site failure — the availability argument of
// §1.1 and §5 made quantitative.
type PolicyComparisonReport struct {
	Txns int
	Rows []PolicyRow
}

// PolicyRow is one protocol's outcome.
type PolicyRow struct {
	Policy      string
	Committed   int
	WriteAborts int // aborts of transactions containing writes
	ReadAborts  int // aborts of read-only transactions
}

// String renders the comparison table.
func (r PolicyComparisonReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: protocol availability with one of four sites down (%d txns each)\n", r.Txns)
	fmt.Fprintf(&b, "  %-8s %10s %13s %12s\n", "policy", "committed", "write aborts", "read aborts")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-8s %10d %13d %12d\n", row.Policy, row.Committed, row.WriteAborts, row.ReadAborts)
	}
	return b.String()
}

// RunPolicyComparison runs the same workload under ROWAA, ROWA and quorum
// with one site failed, counting committed transactions.
func RunPolicyComparison(cfg Config, txns int) (*PolicyComparisonReport, error) {
	cfg = cfg.withDefaults(4, 50, 5)
	if txns == 0 {
		txns = 100
	}
	report := &PolicyComparisonReport{Txns: txns}

	for _, pol := range []policy.Policy{policy.ROWAA{}, policy.ROWA{}, policy.Quorum{}} {
		ccfg := cfg.clusterConfig()
		ccfg.Policy = pol
		c, err := cluster.New(ccfg)
		if err != nil {
			return nil, err
		}
		gen := workload.NewUniform(cfg.Items, cfg.MaxOps, cfg.Seed)
		row := PolicyRow{Policy: pol.Name()}

		if err := c.Fail(core.SiteID(cfg.Sites - 1)); err != nil {
			c.Close()
			return nil, err
		}
		// One detection write so ROWAA's vector converges before the
		// measured window (ROWA and quorum behave the same either way).
		id := c.NextTxnID()
		if _, err := c.ExecTxn(0, id, []core.Op{core.Write(0, workload.Payload(id, 0))}); err != nil {
			c.Close()
			return nil, err
		}

		for i := 0; i < txns; i++ {
			id := c.NextTxnID()
			ops := gen.Next(id)
			coord := core.SiteID(i % (cfg.Sites - 1)) // an up site
			out, err := c.ExecTxn(coord, id, ops)
			if err != nil {
				c.Close()
				return nil, err
			}
			switch {
			case out.Committed:
				row.Committed++
			case txn.Txn{ID: id, Ops: ops}.IsReadOnly():
				row.ReadAborts++
			default:
				row.WriteAborts++
			}
		}
		c.Close()
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

// Type3Report shows the effect of the proposed type-3 control transaction
// (§3.2): after a second failure leaves single up-to-date copies, type 3
// re-replicates them onto a backup site.
type Type3Report struct {
	// EndangeredBefore is the number of items with exactly one
	// up-to-date copy among operational sites when the second failure is
	// detected.
	EndangeredBefore int
	// WithType3Remaining / WithoutType3Remaining: endangered items still
	// unbacked after the protocol settles.
	WithType3Remaining    int
	WithoutType3Remaining int
	// Type3Txns is the number of type-3 control transactions run.
	Type3Txns int
}

// String renders the study.
func (r Type3Report) String() string {
	var b strings.Builder
	b.WriteString("Extension: type-3 control transactions (backup of last up-to-date copies)\n")
	fmt.Fprintf(&b, "  %-52s %6d\n", "items endangered after second failure", r.EndangeredBefore)
	fmt.Fprintf(&b, "  %-52s %6d\n", "still endangered without type 3", r.WithoutType3Remaining)
	fmt.Fprintf(&b, "  %-52s %6d\n", "still endangered with type 3", r.WithType3Remaining)
	fmt.Fprintf(&b, "  %-52s %6d\n", "type-3 control transactions run", r.Type3Txns)
	return b.String()
}

// RunType3Study builds the endangered-copy situation twice — with and
// without type-3 enabled — and compares how many items remain with a
// single up-to-date copy.
func RunType3Study(cfg Config) (*Type3Report, error) {
	cfg = cfg.withDefaults(3, 20, 5)
	report := &Type3Report{}

	for _, enable := range []bool{false, true} {
		ccfg := cfg.clusterConfig()
		ccfg.EnableType3 = enable
		c, err := cluster.New(ccfg)
		if err != nil {
			return nil, err
		}

		// Fail site 1, write half the database, recover site 1 (items
		// now fail-locked for it), then fail site 2 and detect.
		if err := c.Fail(1); err != nil {
			c.Close()
			return nil, err
		}
		id := c.NextTxnID()
		c.ExecTxn(0, id, []core.Op{core.Write(0, workload.Payload(id, 0))}) // detection
		endangered := cfg.Items / 2
		for i := 0; i < endangered; i++ {
			id := c.NextTxnID()
			out, err := c.ExecTxn(0, id, []core.Op{core.Write(core.ItemID(i), workload.Payload(id, core.ItemID(i)))})
			if err != nil || !out.Committed {
				c.Close()
				return nil, fmt.Errorf("type-3 setup write %d failed: %v %v", i, out, err)
			}
		}
		if _, err := c.Recover(1); err != nil {
			c.Close()
			return nil, err
		}
		if err := c.Fail(2); err != nil {
			c.Close()
			return nil, err
		}
		id = c.NextTxnID()
		c.ExecTxn(0, id, []core.Op{core.Write(core.ItemID(cfg.Items-1), workload.Payload(id, 0))}) // detection -> type 2 -> (maybe) type 3

		// Let asynchronous type-3 work settle.
		remaining := -1
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			n, err := c.FailLockCount(0, 1)
			if err != nil {
				c.Close()
				return nil, err
			}
			if n == remaining {
				break
			}
			remaining = n
			time.Sleep(50 * time.Millisecond)
		}
		if enable {
			report.WithType3Remaining = remaining
			st, _ := c.Status(0, false)
			report.Type3Txns = int(st.Stats.ControlType3)
		} else {
			report.WithoutType3Remaining = remaining
			report.EndangeredBefore = remaining
		}
		c.Close()
	}
	return report, nil
}
