package experiment

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/deploy"
	"minraid/internal/failure"
	"minraid/internal/metrics"
	"minraid/internal/msg"
	"minraid/internal/workload"
)

// validateProc rejects soak options the process fabric cannot express.
// Chaos, partitions and the scrubber are in-process mechanisms: chaos and
// link cuts live inside the memory/loopback transports (a real wire has
// its own weather), and the scrubber needs the cluster's trace plumbing.
// The process fabric's contribution is orthogonal — failures are SIGKILL
// and recoveries replay a WAL — so the regimes compose in principle, just
// not in this driver yet.
func (c SoakConfig) validateProc() error {
	if c.Chaos.Active() {
		return errors.New("experiment: -fabric proc does not support chaos (real processes, real wire)")
	}
	if c.Partitions {
		return errors.New("experiment: -fabric proc does not support the partition scheduler")
	}
	if c.WANProfile != "" {
		return errors.New("experiment: -fabric proc does not support WAN profiles (the link model is in-process chaos)")
	}
	if c.CommitEpoch > 0 {
		return errors.New("experiment: -fabric proc does not support epoch-batched commit yet")
	}
	if c.Scrub {
		return errors.New("experiment: -fabric proc does not support the background scrubber")
	}
	if c.Transport != "" && c.Transport != "tcp" {
		return fmt.Errorf("experiment: -fabric proc is always real TCP; -transport %s conflicts", c.Transport)
	}
	if c.WALDir != "" {
		return errors.New("experiment: -fabric proc persists WALs under its own work dir; -wal conflicts")
	}
	return nil
}

// runProcSoak is RunSoak's dispatch target for Fabric "proc": the same
// seeded fail/recover schedules and workload waves, but each site is a
// raidsrv OS process, every scheduled failure is a SIGKILL, and every
// scheduled recovery is a re-exec that replays the site's WAL before the
// ordinary type-1 rejoin. One fabric (one fleet, one WAL tree) serves all
// of a seed's epochs, so epoch boundaries carry real on-disk state.
func runProcSoak(cfg SoakConfig) (*SoakResult, error) {
	if err := cfg.validateProc(); err != nil {
		return nil, err
	}
	binary := cfg.RaidsrvBin
	workRoot := cfg.WorkDir
	if workRoot == "" {
		dir, err := os.MkdirTemp("", "minraid-procsoak-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		workRoot = dir
	}
	if binary == "" {
		b, err := deploy.BuildRaidsrv(workRoot)
		if err != nil {
			return nil, err
		}
		binary = b
	}

	res := &SoakResult{
		AbortReasons:          make(map[string]int),
		PartitionAbortReasons: make(map[string]int),
		Percentiles:           &PercentileReport{Hists: make(map[string]metrics.HistogramStat), Msgs: make(map[string]uint64)},
	}
	for _, seed := range cfg.Seeds {
		if err := runProcSoakSeed(cfg, seed, binary, filepath.Join(workRoot, fmt.Sprintf("seed%d", seed)), res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// runProcSoakSeed boots one fleet and runs the seed's epochs against it.
func runProcSoakSeed(cfg SoakConfig, seed int64, binary, workDir string, res *SoakResult) error {
	base := cfg.Base
	addrs, err := deploy.FreeLoopbackAddrs(base.Sites)
	if err != nil {
		return err
	}
	spec := &deploy.ClusterSpec{
		Addrs:             addrs,
		Items:             base.Items,
		PolicyName:        policyName(base),
		ReplicationDegree: base.ReplicationDegree,
		Concurrent:        concurrentDegree(cfg),
		AckTimeout:        deploy.Duration(base.AckTimeout),
		LockWaitBudget:    deploy.Duration(cfg.LockWaitBudget),
		EnableType3:       base.EnableType3,
	}
	fab, err := deploy.NewProcFabric(deploy.ProcConfig{
		Spec:    spec,
		Binary:  binary,
		WorkDir: workDir,
	})
	if err != nil {
		return fmt.Errorf("experiment: proc fabric seed %d: %w", seed, err)
	}
	defer fab.Close()

	for epoch := 0; epoch < cfg.EpochsPerSeed; epoch++ {
		er, err := runProcSoakEpoch(cfg, fab, seed, epoch)
		if err != nil {
			return fmt.Errorf("experiment: proc soak seed %d epoch %d: %w (site logs in %s)", seed, epoch, err, workDir)
		}
		res.Epochs = append(res.Epochs, *er)
		res.Txns += er.Txns
		res.Committed += er.Committed
		res.Aborted += er.Aborted
		for reason, n := range er.AbortReasons {
			res.AbortReasons[reason] += n
		}
		res.DrainCopiers += er.DrainCopiers
		if !er.AuditOK {
			res.Violations++
		}
		cfg.logf("proc soak seed=%d epoch=%d: %d txns (%d committed), %d kills, %d restarts, audit=%v",
			seed, epoch, er.Txns, er.Committed, er.Kills, er.Restarts, er.AuditOK)
	}
	return nil
}

// policyName renders the base policy for the spec ("" means rowaa).
func policyName(base Config) string {
	if base.Policy == nil {
		return "rowaa"
	}
	return base.Policy.Name()
}

// concurrentDegree maps the soak concurrency to the per-site spec knob.
func concurrentDegree(cfg SoakConfig) int {
	if cfg.Concurrency > 1 {
		return cfg.Concurrency
	}
	return 0
}

// runProcSoakEpoch is one epoch over live raidsrv processes. Failures and
// recoveries land at their scheduled transaction numbers against a
// write-quiescent fleet (waves barrier before schedule events, the same
// constraint as the in-process concurrent driver) — but the failure
// itself is a SIGKILL, so everything volatile at that site genuinely
// dies: lock tables, fail-lock tables, session vector, socket state. The
// recovery path is the production one end-to-end: exec, WAL replay,
// persisted-session resume, down-boot, then the type-1 control
// transaction against a live donor.
func runProcSoakEpoch(cfg SoakConfig, fab *deploy.ProcFabric, seed int64, epoch int) (*EpochResult, error) {
	base := cfg.Base
	mgr := fab.Manager()
	chaosSeed := epochSeed(seed, epoch)
	er := &EpochResult{
		Seed:                  seed,
		Epoch:                 epoch,
		ChaosSeed:             chaosSeed,
		AbortReasons:          make(map[string]int),
		PartitionAbortReasons: make(map[string]int),
		Concurrency:           cfg.Concurrency,
	}

	rng := rand.New(rand.NewSource(chaosSeed))
	maxDown := cfg.MaxDown
	if maxDown == 0 {
		// Fail-lock tables are volatile and fully replicated; a SIGKILL
		// destroys the dead site's table but every survivor still holds a
		// complete copy. One-at-a-time failure (the paper's experimental
		// regime) keeps that invariant trivially; deeper simultaneous
		// kills are opt-in.
		maxDown = 1
	}
	sched, err := failure.Random(failure.RandomConfig{
		Sites:   base.Sites,
		Txns:    cfg.TxnsPerEpoch,
		MaxDown: maxDown,
	}, rng)
	if err != nil {
		return nil, err
	}
	for _, e := range sched.Events {
		er.FailEvents = append(er.FailEvents, e.String())
	}

	gen := workload.NewUniform(base.Items, base.MaxOps, chaosSeed)
	gen.ReadFraction = base.ReadFraction

	trueUp := make([]bool, base.Sites)
	for i := range trueUp {
		trueUp[i] = true
	}

	restart := func(id core.SiteID) error {
		_, err := fab.Restart(id)
		// A blocked recovery means a donor was still settling its own
		// failure-detection bookkeeping; with a reliable wire a short
		// retry of just the recovery order resolves it (the child is
		// already running, down-booted, after the exec).
		for attempt := 0; errors.Is(err, cluster.ErrRecoveryBlocked) && attempt < 5; attempt++ {
			er.RecoveryRetries++
			time.Sleep(ackOrDefault(base))
			_, err = mgr.Recover(id)
		}
		if err != nil {
			return err
		}
		er.Restarts++
		return nil
	}

	concurrent := cfg.Concurrency > 1
	waveCap := 1
	if concurrent {
		waveCap = 4 * cfg.Concurrency
	}
	eventAt := func(n int) bool { return len(sched.EventsBefore(n)) > 0 }
	fp := fnv.New64a()

	for txnNum := 1; txnNum <= cfg.TxnsPerEpoch; {
		for _, e := range sched.EventsBefore(txnNum) {
			switch e.Action {
			case failure.Fail:
				if !trueUp[e.Site] || countUp(trueUp) <= 1 {
					er.SkippedFails++
					continue
				}
				if err := fab.Kill(e.Site); err != nil {
					return nil, fmt.Errorf("%s: %w", e, err)
				}
				er.Kills++
				trueUp[e.Site] = false
			case failure.Recover:
				if trueUp[e.Site] {
					continue
				}
				if err := restart(e.Site); err != nil {
					return nil, fmt.Errorf("%s: %w", e, err)
				}
				trueUp[e.Site] = true
			}
		}

		waveEnd := txnNum
		for waveEnd-txnNum+1 < waveCap && waveEnd+1 <= cfg.TxnsPerEpoch && !eventAt(waveEnd+1) {
			waveEnd++
		}
		wave := make([]soakIssue, 0, waveEnd-txnNum+1)
		for n := txnNum; n <= waveEnd; n++ {
			id := mgr.NextTxnID()
			iss := soakIssue{num: n, id: id, coord: pickCoordinator(trueUp, n), ops: gen.Next(id)}
			wave = append(wave, iss)
			fmt.Fprintf(fp, "%d/%d@%d:", iss.num, iss.id, iss.coord)
			for _, op := range iss.ops {
				fmt.Fprintf(fp, "%d,%d,%x;", op.Kind, op.Item, op.Value)
			}
		}

		outs := make([]*msg.TxnResult, len(wave))
		if !concurrent {
			out, err := mgr.ExecTxn(wave[0].coord, wave[0].id, wave[0].ops)
			if err != nil {
				return nil, fmt.Errorf("txn %d on %s: %w", wave[0].num, wave[0].coord, err)
			}
			outs[0] = out
		} else {
			var execMu sync.Mutex
			var execErr error
			ol := &workload.OpenLoop{Rate: cfg.ArrivalRate, Count: len(wave), MaxInFlight: cfg.Concurrency}
			ol.Run(func(i int) {
				iss := wave[i]
				out, err := mgr.ExecTxn(iss.coord, iss.id, iss.ops)
				if err != nil {
					execMu.Lock()
					if execErr == nil {
						execErr = fmt.Errorf("txn %d on %s: %w", iss.num, iss.coord, err)
					}
					execMu.Unlock()
					return
				}
				outs[i] = out
			})
			if execErr != nil {
				return nil, execErr
			}
		}
		for _, out := range outs {
			er.Txns++
			if out.Committed {
				er.Committed++
			} else {
				er.Aborted++
				er.AbortReasons[out.AbortReason]++
			}
		}
		txnNum = waveEnd + 1
	}
	er.WorkloadFingerprint = fp.Sum64()

	// Epilogue: restart whatever the schedule left dead, then drain the
	// fail-locks the kills accumulated (copier transactions refreshing the
	// replayed-but-stale copies) and audit every live store.
	for i, isUp := range trueUp {
		if !isUp {
			if err := restart(core.SiteID(i)); err != nil {
				return nil, fmt.Errorf("final restart %d: %w", i, err)
			}
			trueUp[i] = true
		}
	}
	usesFailLocks := base.Policy == nil || base.Policy.UsesFailLocks()
	if usesFailLocks {
		// Drain, then reconcile, then drain again: a SIGKILL can land while
		// a fail-lock fan-out is mid-flight, leaving one survivor's table
		// with a stray bit the others never saw (the crash-real analogue of
		// a chaotic link eating a clear). Reconciliation re-derives every
		// table from the actual copy versions over the manager links;
		// another pass drains whatever it had to re-lock.
		for pass := 0; pass < 3; pass++ {
			copiers, remaining, err := mgr.DrainFailLocks(trueUp, base.MaxOps)
			if err != nil {
				return nil, fmt.Errorf("drain: %w", err)
			}
			er.DrainCopiers += copiers
			er.LocksAfterDrain = remaining
			rep, err := mgr.ReconcileSplitBrain(trueUp, ackOrDefault(base))
			if err != nil {
				return nil, fmt.Errorf("post-drain reconcile: %w", err)
			}
			if rep.Detected() {
				er.SplitBrains++
			}
			er.DivergentItems += rep.DivergentItems
			er.LocksSet += rep.LocksSet
			er.LocksCleared += rep.LocksCleared
			er.Repairs += rep.Repairs
			if remaining == 0 && rep.LocksSet == 0 {
				break
			}
		}
	}

	var report cluster.AuditReport
	if usesFailLocks {
		report, err = mgr.Audit()
	} else {
		report, err = mgr.AuditQuorum()
	}
	if err != nil {
		return nil, err
	}
	er.AuditOK = report.OK() && er.LocksAfterDrain == 0
	if !er.AuditOK {
		er.AuditDetail = report.String()
		if er.LocksAfterDrain > 0 {
			er.AuditDetail = fmt.Sprintf("%s; %d fail-locks undrained at epoch end", er.AuditDetail, er.LocksAfterDrain)
		}
	}
	return er, nil
}

// ackOrDefault is the retry backoff for blocked recoveries: the failure
// detection timeout when configured, else a real-wire-scale default.
func ackOrDefault(base Config) time.Duration {
	if base.AckTimeout > 0 {
		return base.AckTimeout
	}
	return 200 * time.Millisecond
}
