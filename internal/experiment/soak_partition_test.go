package experiment

import (
	"reflect"
	"testing"
	"time"

	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/netsched"
	"minraid/internal/policy"
	"minraid/internal/transport"
)

// partitionSoakConfig is the partition regression corpus: link cuts from
// the netsched scheduler on top of the fail/recover schedule, with no
// probabilistic chaos — the cuts themselves are the fault under test.
func partitionSoakConfig(seeds []int64, txns int) SoakConfig {
	return SoakConfig{
		Base: Config{
			Sites:      4,
			Items:      20,
			AckTimeout: 40 * time.Millisecond,
		},
		Seeds:        seeds,
		TxnsPerEpoch: txns,
		Partitions:   true,
	}
}

// TestPartitionSoakROWAA: under ROWAA every epoch must end with a clean
// audit even though partitions let both sides of a cut commit divergent
// versions — heal-time reconciliation collects the divergence into
// fail-locks and the drain refreshes the stale copies.
func TestPartitionSoakROWAA(t *testing.T) {
	seeds := []int64{1, 2, 3}
	txns := 30
	if testing.Short() {
		seeds = seeds[:2]
		txns = 20
	}
	res, err := RunSoak(partitionSoakConfig(seeds, txns))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("partition soak regression: %d audit violations:\n%s", res.Violations, res)
	}
	if res.PartitionTxns == 0 {
		t.Fatal("no transaction ran while a link was down — the scheduler never fired")
	}
	for _, e := range res.Epochs {
		if len(e.NetEvents) == 0 {
			t.Fatalf("seed %d epoch %d has no partition events", e.Seed, e.Epoch)
		}
		if e.NetFingerprint == 0 {
			t.Fatalf("seed %d epoch %d has no schedule fingerprint", e.Seed, e.Epoch)
		}
		if e.ChaosTotal().Cut == 0 {
			t.Fatalf("seed %d epoch %d cut no messages despite events %v", e.Seed, e.Epoch, e.NetEvents)
		}
	}
}

// TestPartitionSoakQuorum: quorum consensus refuses the minority side, so
// partitions never create divergence — the quorum audit (read quorums
// intersect the fresh copies) must pass with no fail-lock edits at all.
func TestPartitionSoakQuorum(t *testing.T) {
	seeds := []int64{1, 2}
	txns := 30
	if testing.Short() {
		txns = 20
	}
	cfg := partitionSoakConfig(seeds, txns)
	cfg.Base.Policy = policy.Quorum{}
	res, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("quorum partition soak: %d audit violations:\n%s", res.Violations, res)
	}
	if res.LocksSet != 0 || res.LocksCleared != 0 {
		t.Fatalf("reconciliation edited fail-locks under quorum: +%d/-%d", res.LocksSet, res.LocksCleared)
	}
	if res.PartitionTxns == 0 {
		t.Fatal("no partition-time transactions ran")
	}
}

// TestPartitionSoakWithChaos layers probabilistic drop/dup/jitter on top
// of the scheduled cuts — the full fault model at once.
func TestPartitionSoakWithChaos(t *testing.T) {
	seeds := []int64{1, 2}
	txns := 25
	if testing.Short() {
		seeds = seeds[:1]
		txns = 15
	}
	cfg := partitionSoakConfig(seeds, txns)
	cfg.Chaos = transport.ChaosConfig{
		Drop:      0.03,
		Dup:       0.03,
		MaxJitter: 4 * time.Millisecond,
	}
	res, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("partition+chaos soak: %d audit violations:\n%s", res.Violations, res)
	}
}

// TestPartitionSoakReproducible runs one partitioned epoch twice and
// requires the identical partition event stream, schedule fingerprint and
// per-link decision counters (including Cut) — the determinism witness
// behind `soak -partitions -repro`. Serial mode: the per-link counter
// comparison only holds without goroutine races (see
// TestSoakConcurrentDeterministic for the concurrent-mode witness).
func TestPartitionSoakReproducible(t *testing.T) {
	cfg := partitionSoakConfig([]int64{1}, 20)
	cfg.Concurrency = 1
	a, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Epochs[0], b.Epochs[0]
	if !reflect.DeepEqual(ea.NetEvents, eb.NetEvents) {
		t.Fatalf("same seed produced different partition events:\nfirst: %v\nrerun: %v", ea.NetEvents, eb.NetEvents)
	}
	if ea.NetFingerprint != eb.NetFingerprint {
		t.Fatalf("schedule fingerprints differ: %#x vs %#x", ea.NetFingerprint, eb.NetFingerprint)
	}
	if !reflect.DeepEqual(ea.Chaos, eb.Chaos) {
		t.Fatalf("same seed produced different link stats:\nfirst: %+v\nrerun: %+v", ea.Chaos, eb.Chaos)
	}
}

// TestSoakWALPersistence carries each site's write-ahead-logged store
// across epochs of one seed: an epoch boundary is a whole-system crash
// and restart, and every restarted epoch must still audit clean against
// the state the previous epoch left on disk.
func TestSoakWALPersistence(t *testing.T) {
	cfg := partitionSoakConfig([]int64{1}, 20)
	cfg.EpochsPerSeed = 3
	cfg.WALDir = t.TempDir()
	if testing.Short() {
		cfg.EpochsPerSeed = 2
	}
	res, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("persistent soak: %d audit violations:\n%s", res.Violations, res)
	}
	if len(res.Epochs) != cfg.EpochsPerSeed {
		t.Fatalf("ran %d epochs, want %d", len(res.Epochs), cfg.EpochsPerSeed)
	}
}

// TestPartitionSoakTCP runs the partitioned soak over the loopback TCP
// fabric: scheduled cuts and reconciliation must behave identically on a
// real wire with framing, reconnection and receiver-side dedup.
func TestPartitionSoakTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP soak is slow under -short")
	}
	cfg := partitionSoakConfig([]int64{1}, 20)
	cfg.Transport = "tcp"
	res, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("TCP partition soak: %d audit violations:\n%s", res.Violations, res)
	}
	if res.PartitionTxns == 0 {
		t.Fatal("no partition-time transactions ran over TCP")
	}
}

// TestPartitionStudyViaNetsched reproduces the static RunPartitionStudy
// scenario — ROWAA splits {0} | {1,2}, both sides commit, replicas
// diverge — as a one-event netsched schedule driven through the
// scheduler's own Topology, then heals and reconciles it back to a clean
// audit. The hand-written study and the scheduler are the same experiment.
func TestPartitionStudyViaNetsched(t *testing.T) {
	const txns = 6
	cfg := Config{Sites: 3, Items: 20, AckTimeout: 40 * time.Millisecond}.withDefaults(3, 20, 5)
	c, err := cluster.New(cfg.clusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sched := netsched.Schedule{
		Sites: 3,
		Txns:  txns,
		Events: []netsched.Event{{
			BeforeTxn: 1,
			Kind:      netsched.Partition,
			Groups: []netsched.Group{
				{Name: "A", Sites: []core.SiteID{0}},
				{Name: "B", Sites: []core.SiteID{1, 2}},
			},
		}},
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	top := netsched.NewTopology(3)
	for _, e := range sched.EventsBefore(1) {
		top.Drive(c, e)
	}
	if top.Reachable(0, 1) || top.Reachable(0, 2) || !top.Reachable(1, 2) {
		t.Fatal("one-event partition schedule compiled to the wrong topology")
	}

	minority, majority, err := partitionDrive2(c, txns)
	if err != nil {
		t.Fatal(err)
	}
	if minority == 0 || majority == 0 {
		t.Fatalf("ROWAA split brain did not form: minority=%d majority=%d commits", minority, majority)
	}
	audit, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if audit.OK() {
		t.Fatal("audit missed the divergence the partition created")
	}

	top.HealAll(c)
	if top.Active() {
		t.Fatal("topology still active after HealAll")
	}
	trueUp := []bool{true, true, true}
	rep, err := c.ReconcileSplitBrain(trueUp, cfg.AckTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected() {
		t.Fatalf("reconciliation missed the split brain: %s", rep)
	}
	if _, remaining, err := c.DrainFailLocks(trueUp, 8); err != nil {
		t.Fatal(err)
	} else if remaining != 0 {
		t.Fatalf("%d fail-locks left after drain", remaining)
	}
	audit, err = c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !audit.OK() {
		t.Fatalf("post-heal audit failed: %s", audit)
	}
}

// partitionDrive2 mirrors partitionDrive but over scheduler-driven cuts:
// writes item 0 on both sides of the {0} | {1,2} split.
func partitionDrive2(c *cluster.Cluster, txns int) (minority, majority int, err error) {
	for i := 0; i < txns; i++ {
		id := c.NextTxnID()
		res, err := c.ExecTxn(0, id, []core.Op{core.Write(0, minorityValue(i))})
		if err != nil {
			return 0, 0, err
		}
		if res.Committed {
			minority++
		}
		id = c.NextTxnID()
		res, err = c.ExecTxn(1, id, []core.Op{core.Write(0, majorityValue(i))})
		if err != nil {
			return 0, 0, err
		}
		if res.Committed {
			majority++
		}
	}
	return minority, majority, nil
}
