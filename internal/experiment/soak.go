package experiment

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/failure"
	"minraid/internal/geo"
	"minraid/internal/metrics"
	"minraid/internal/msg"
	"minraid/internal/netsched"
	"minraid/internal/scrub"
	"minraid/internal/storage"
	"minraid/internal/transport"
	"minraid/internal/workload"
)

// SoakConfig parameterizes a randomized robustness run: many seeded epochs
// of generated fail/recover schedules plus workload traffic, all under a
// chaotic network, audited for copy consistency after every epoch.
type SoakConfig struct {
	// Base supplies the system parameters (sites, items, ops, delay,
	// timeouts). Zero fields get the soak defaults: 4 sites, 30 items,
	// 5 ops.
	Base Config
	// Seeds are the root seeds; each runs EpochsPerSeed epochs. Every
	// epoch derives its own chaos seed and schedule from (seed, epoch),
	// so any failing epoch can be re-run alone.
	Seeds []int64
	// EpochsPerSeed is the number of epochs per root seed (default 1).
	EpochsPerSeed int
	// TxnsPerEpoch is the workload length of one epoch (default 40).
	TxnsPerEpoch int
	// Concurrency is the per-site ConcurrentTxns degree and the driver's
	// in-flight bound. Zero defaults to 4 when the policy supports the
	// concurrent extension (ROWAA, full replication) and 1 otherwise;
	// 1 forces the paper's serial processing. In concurrent mode the
	// driver issues transactions in waves between schedule-event
	// boundaries: failures, recoveries and partition events still land at
	// their scheduled transaction numbers against a write-quiescent
	// system (the documented constraint for concurrent-mode recovery),
	// while the transactions between two events execute interleaved.
	Concurrency int
	// ArrivalRate, when positive, paces the concurrent driver open-loop
	// at this many transactions per second (latency measured from
	// scheduled arrival; see workload.OpenLoop). Zero issues as fast as
	// the in-flight bound allows.
	ArrivalRate float64
	// LockWaitBudget bounds concurrent-mode lock waits at every site;
	// zero uses the site default (AckTimeout/2).
	LockWaitBudget time.Duration
	// Chaos carries the fault probabilities (Drop, Dup, MaxJitter). Seed
	// is overridden per epoch and ExemptManager is forced on: the
	// managing site is the experimenter's out-of-band console and must
	// stay reliable for injection and measurement. MaxJitter should stay
	// well below Base.AckTimeout so jitter alone never masquerades as a
	// site failure.
	Chaos transport.ChaosConfig
	// WANProfile names a geo-replication profile (internal/geo). Sites
	// are assigned round-robin to the profile's regions and every
	// directed link gets a compiled base-delay/jitter/per-message-cost
	// from the region-pair matrix, asymmetrically skewed per link but
	// deterministic from the epoch seed. With Partitions on, the
	// link-fault scheduler switches to region-sized events: whole-region
	// partitions and one-way inter-region drops. The chaos Drop/Dup
	// probabilities still apply on top. Empty disables the WAN layer.
	WANProfile string
	// CommitEpoch enables epoch-batched commit on every site (see
	// site.Config.CommitEpoch): phase-two fan-outs and local WAL applies
	// batch at epoch boundaries instead of per transaction. Requires
	// ROWAA and must stay under Base.AckTimeout.
	CommitEpoch time.Duration
	// MaxDown caps simultaneously failed sites in generated schedules
	// (default sites-1).
	MaxDown int
	// Partitions enables the netsched link-fault scheduler: each epoch
	// derives a deterministic partition/one-way/cut event stream from
	// its seed, keeps issuing workload on both sides of every cut, and
	// reconciles split brain at heal time through the paper's machinery
	// (session-vector comparison, fail-lock collection, copier
	// transactions).
	Partitions bool
	// Transport selects the wire: "" or "memory" for the in-process
	// transport, "tcp" for the loopback TCP fabric (one listener per
	// site, CRC framing, per-sender dedup) with the same chaos layer.
	Transport string
	// Scrub enables the continuous-heal regime: sites recover REDO-only
	// (operational the moment the fail-lock set is installed, no batch
	// refresh), and a background scrubber repairs fail-locked items in
	// rate-limited copier batches while workload traffic continues. The
	// epoch-end epilogue then waits for the scrubber to reach zero
	// truly-up fail-locks instead of running the DrainFailLocks passes.
	// Ignored for policies that do not use fail-locks.
	Scrub bool
	// ScrubRate caps the scrubber at this many items per second
	// (0 = unthrottled); ScrubBatch bounds items per copier transaction
	// (0 = scrub default).
	ScrubRate  float64
	ScrubBatch int
	// Fabric selects the deployment shape: "" or "local" runs every site
	// as goroutines of one in-process cluster with the paper's simulated
	// failures; "proc" execs one raidsrv OS process per site, fails sites
	// with SIGKILL and recovers them by re-exec + WAL replay + type-1.
	// Chaos, Partitions, Scrub, Transport and WALDir are in-process
	// mechanisms and are rejected under "proc".
	Fabric string
	// RaidsrvBin is the raidsrv executable for Fabric "proc"; empty
	// builds it from source into the work dir (go toolchain required).
	RaidsrvBin string
	// WorkDir holds the process fabric's spec file, per-site logs and WAL
	// trees; empty uses a removed-on-exit temp dir (set it to keep logs).
	WorkDir string
	// WALDir, when non-empty, persists every site's database in
	// write-ahead-logged stores under WALDir/seedN/siteK and carries
	// them across the seed's epochs: an epoch boundary becomes a
	// whole-system crash (close) and restart (reopen) instead of a
	// fresh database. Transaction IDs stay monotone across the seed's
	// epochs so on-disk item versions never regress.
	WALDir string
	// Logf, when non-nil, receives per-epoch progress lines.
	Logf func(format string, args ...any)
}

func (c SoakConfig) withDefaults() SoakConfig {
	c.Base = c.Base.withDefaults(4, 30, 5)
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3, 4, 5}
	}
	if c.EpochsPerSeed == 0 {
		c.EpochsPerSeed = 1
	}
	if c.TxnsPerEpoch == 0 {
		c.TxnsPerEpoch = 40
	}
	if c.Concurrency == 0 {
		// Interleaved execution is the default soak regime wherever the
		// configuration supports it. Partial replication forces serial
		// processing: remote donor reads are not covered by distributed
		// 2PL, so ConcurrentTxns requires full replication.
		partial := c.Base.ReplicationDegree > 0 && c.Base.ReplicationDegree < c.Base.Sites
		if (c.Base.Policy == nil || c.Base.Policy.Name() == "rowaa") && !partial {
			c.Concurrency = 4
		} else {
			c.Concurrency = 1
		}
	}
	c.Chaos.ExemptManager = true
	return c
}

func (c SoakConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// EpochResult is one epoch's outcome.
type EpochResult struct {
	// Seed and Epoch identify the run; ChaosSeed is the derived seed the
	// chaos layer actually used.
	Seed      int64
	Epoch     int
	ChaosSeed int64
	// Txns, Committed, Aborted account for the epoch's transactions.
	Txns, Committed, Aborted int
	// AbortReasons counts aborts by reason string.
	AbortReasons map[string]int
	// Repairs counts false-suspicion repairs: a truly-up site that some
	// other truly-up site declared failed (its ack lost to chaos) was
	// failed and recovered by the manager to rejoin it to the group.
	Repairs int
	// RecoveryRetries counts recovery attempts that came back blocked
	// because chaos ate the donor handshake, and were retried.
	RecoveryRetries int
	// Concurrency records the per-site interleaving degree the epoch ran
	// with (1 = the paper's serial processing).
	Concurrency int
	// WANProfile and WANRegions record the compiled geo profile and its
	// site->region map; WANFingerprint hashes the full compiled link
	// matrix — the determinism witness -repro compares for WAN runs.
	// Empty/zero unless the soak ran with a WAN profile.
	WANProfile, WANRegions string
	WANFingerprint         uint64
	// NetEvents is the partition scheduler's event stream in canonical
	// rendering, and NetFingerprint its FNV-1a hash — the determinism
	// witness the -repro check compares. Empty unless Partitions is on.
	NetEvents      []string
	NetFingerprint uint64
	// FailEvents is the fail/recover schedule in canonical rendering —
	// with NetEvents, the injected-fault half of the determinism witness.
	FailEvents []string
	// WorkloadFingerprint hashes the issued transaction stream
	// (number, ID, coordinator, operations): a pure function of the seed
	// and the schedules, so it must be bit-identical across reruns even
	// in concurrent mode, where outcomes and per-link chaos counters are
	// allowed to race.
	WorkloadFingerprint uint64
	// PartitionTxns counts transactions issued while some link was down;
	// PartitionAborts those of them that aborted, classified by
	// PartitionAbortReasons (the partition-time rejection profile).
	PartitionTxns, PartitionAborts int
	PartitionAbortReasons          map[string]int
	// SplitBrains counts reconciliations that detected mutual suspicion
	// or divergent copies; DivergentItems totals items found at
	// differing versions across sites; LocksSet and LocksCleared the
	// fail-lock edits reconciliation installed to re-track staleness.
	SplitBrains, DivergentItems int
	LocksSet, LocksCleared      int
	// DrainCopiers counts copier transactions run to drain fail-locks at
	// epoch end; LocksAfterDrain is what was left (0 for a clean epoch).
	DrainCopiers, LocksAfterDrain int
	// HealTime is the epilogue wall time to reach zero truly-up
	// fail-locks through the background scrubber (zero when scrub is off
	// and the DrainFailLocks epilogue ran instead).
	HealTime time.Duration
	// ScrubPasses, ScrubItems and ScrubCopiers copy the scrubber's
	// lifetime counters: table scans, items refreshed, copier
	// transactions committed on its behalf.
	ScrubPasses, ScrubItems, ScrubCopiers int
	// Kills and Restarts count the process fabric's SIGKILLs and
	// exec-with-replay recoveries (zero on the in-process fabric, whose
	// failures are the Fail/Recover orders counted elsewhere).
	Kills, Restarts int
	// DeferredRecoveries counts scheduled recoveries that found no
	// reachable donor (recovery blocked, §3.2) and waited for the heal;
	// SkippedFails counts scheduled failures skipped because a deferred
	// recovery left the schedule's model of the up-set ahead of reality.
	DeferredRecoveries, SkippedFails int
	// AuditOK reports the epoch-end consistency audit; AuditDetail holds
	// its rendering when it failed.
	AuditOK     bool
	AuditDetail string
	// Chaos is the per-link decision counters — the reproducibility
	// fingerprint of the epoch.
	Chaos map[transport.LinkID]transport.LinkStats
}

// ChaosTotal folds the epoch's per-link counters into one.
func (e *EpochResult) ChaosTotal() transport.LinkStats {
	var total transport.LinkStats
	for _, s := range e.Chaos {
		total.Add(s)
	}
	return total
}

// SoakResult aggregates a whole soak run.
type SoakResult struct {
	// Epochs holds every epoch in run order.
	Epochs []EpochResult
	// Txns, Committed, Aborted aggregate across epochs.
	Txns, Committed, Aborted int
	// AbortReasons aggregates abort counts by reason.
	AbortReasons map[string]int
	// PartitionTxns, PartitionAborts, SplitBrains, DivergentItems,
	// LocksSet, LocksCleared and DrainCopiers aggregate the partition
	// scheduler's accounting across epochs.
	PartitionTxns, PartitionAborts int
	SplitBrains, DivergentItems    int
	LocksSet, LocksCleared         int
	DrainCopiers                   int
	// ScrubItems and ScrubCopiers aggregate the background scrubber's
	// work across epochs; MaxHealTime is the slowest epoch epilogue heal.
	ScrubItems, ScrubCopiers int
	MaxHealTime              time.Duration
	// PartitionAbortReasons aggregates partition-time aborts by reason.
	PartitionAbortReasons map[string]int
	// Violations counts epochs whose audit failed.
	Violations int
	// Percentiles merges every epoch's latency histograms and message
	// counts.
	Percentiles *PercentileReport
}

// OK reports whether every epoch audited clean.
func (r *SoakResult) OK() bool { return r.Violations == 0 }

// String renders the soak summary table.
func (r *SoakResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Soak: %d epochs, %d txns (%d committed, %d aborted), %d audit violations\n",
		len(r.Epochs), r.Txns, r.Committed, r.Aborted, r.Violations)
	fmt.Fprintf(&b, "  %-6s %-5s %6s %6s %6s %7s %8s %8s %8s %8s %8s  %s\n",
		"seed", "epoch", "txns", "commit", "abort", "repairs", "sent", "dropped", "dup", "cut", "jitter", "audit")
	for _, e := range r.Epochs {
		total := e.ChaosTotal()
		verdict := "ok"
		if !e.AuditOK {
			verdict = "VIOLATION"
		}
		fmt.Fprintf(&b, "  %-6d %-5d %6d %6d %6d %7d %8d %8d %8d %8d %8v  %s\n",
			e.Seed, e.Epoch, e.Txns, e.Committed, e.Aborted, e.Repairs,
			total.Sent, total.Dropped, total.Duplicated, total.Cut,
			total.JitterTotal.Round(time.Millisecond), verdict)
	}
	if r.PartitionTxns > 0 || r.SplitBrains > 0 {
		fmt.Fprintf(&b, "Partitions: %d partition-time txns (%d aborted), %d split-brain reconciliations, %d divergent items, fail-lock edits +%d/-%d, %d drain copiers\n",
			r.PartitionTxns, r.PartitionAborts, r.SplitBrains, r.DivergentItems,
			r.LocksSet, r.LocksCleared, r.DrainCopiers)
	}
	if r.ScrubItems > 0 || r.ScrubCopiers > 0 {
		fmt.Fprintf(&b, "Scrub: %d items refreshed in background by %d copier txns, slowest epoch heal %v\n",
			r.ScrubItems, r.ScrubCopiers, r.MaxHealTime.Round(time.Millisecond))
	}
	writeReasons := func(title string, reasons map[string]int) {
		if len(reasons) == 0 {
			return
		}
		fmt.Fprintf(&b, "%s\n", title)
		keys := make([]string, 0, len(reasons))
		for reason := range reasons {
			keys = append(keys, reason)
		}
		sort.Strings(keys)
		for _, reason := range keys {
			fmt.Fprintf(&b, "  %-52s %6d\n", reason, reasons[reason])
		}
	}
	writeReasons("Aborts by reason", r.AbortReasons)
	writeReasons("Partition-time aborts by reason", r.PartitionAbortReasons)
	return b.String()
}

// epochSeed derives the chaos seed for (root seed, epoch) with a
// splitmix64-style mix, so epochs of one root seed see unrelated fault
// streams but remain individually re-runnable.
func epochSeed(seed int64, epoch int) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(epoch+1)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// netSeed derives the partition-schedule seed from the epoch's chaos seed
// with one more splitmix64 round, so the link-fault stream is unrelated to
// both the chaos decision streams and the fail/recover schedule (which
// consume the chaos seed directly).
func netSeed(chaosSeed int64) int64 {
	z := uint64(chaosSeed) + 0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// RunSoak drives the full soak: for every (seed, epoch) it builds a fresh
// chaotic cluster, runs a generated fail/recover schedule (plus, with
// Partitions, a generated link-fault schedule) with workload traffic,
// heals the system, and audits copy consistency.
func RunSoak(cfg SoakConfig) (*SoakResult, error) {
	cfg = cfg.withDefaults()
	switch cfg.Fabric {
	case "", "local":
	case "proc":
		return runProcSoak(cfg)
	default:
		return nil, fmt.Errorf("experiment: unknown fabric %q (want local or proc)", cfg.Fabric)
	}
	res := &SoakResult{
		AbortReasons:          make(map[string]int),
		PartitionAbortReasons: make(map[string]int),
		Percentiles:           &PercentileReport{Hists: make(map[string]metrics.HistogramStat), Msgs: make(map[string]uint64)},
	}
	for _, seed := range cfg.Seeds {
		// With persistence, item versions are transaction IDs carried in
		// the on-disk stores; each epoch numbers transactions after the
		// previous one so versions stay monotone across restarts.
		var txnBase uint64
		for epoch := 0; epoch < cfg.EpochsPerSeed; epoch++ {
			er, pct, lastTxn, err := runSoakEpoch(cfg, seed, epoch, txnBase)
			if err != nil {
				return nil, fmt.Errorf("experiment: soak seed %d epoch %d: %w", seed, epoch, err)
			}
			if cfg.WALDir != "" {
				txnBase = lastTxn
			}
			res.Epochs = append(res.Epochs, *er)
			res.Txns += er.Txns
			res.Committed += er.Committed
			res.Aborted += er.Aborted
			for reason, n := range er.AbortReasons {
				res.AbortReasons[reason] += n
			}
			res.PartitionTxns += er.PartitionTxns
			res.PartitionAborts += er.PartitionAborts
			res.SplitBrains += er.SplitBrains
			res.DivergentItems += er.DivergentItems
			res.LocksSet += er.LocksSet
			res.LocksCleared += er.LocksCleared
			res.DrainCopiers += er.DrainCopiers
			res.ScrubItems += er.ScrubItems
			res.ScrubCopiers += er.ScrubCopiers
			if er.HealTime > res.MaxHealTime {
				res.MaxHealTime = er.HealTime
			}
			for reason, n := range er.PartitionAbortReasons {
				res.PartitionAbortReasons[reason] += n
			}
			if !er.AuditOK {
				res.Violations++
			}
			res.Percentiles.Merge(pct)
			total := er.ChaosTotal()
			heal := ""
			if cfg.Scrub {
				heal = fmt.Sprintf(", heal=%v scrub(passes=%d items=%d copiers=%d)",
					er.HealTime.Round(time.Millisecond), er.ScrubPasses, er.ScrubItems, er.ScrubCopiers)
			}
			cfg.logf("soak seed=%d epoch=%d: %d txns (%d committed), %d repairs, %d net events, chaos sent=%d dropped=%d dup=%d cut=%d%s, audit=%v",
				seed, epoch, er.Txns, er.Committed, er.Repairs, len(er.NetEvents),
				total.Sent, total.Dropped, total.Duplicated, total.Cut, heal, er.AuditOK)
		}
	}
	return res, nil
}

// soakIssue is one pre-generated transaction of a wave: everything about
// it except its outcome is fixed before execution starts.
type soakIssue struct {
	num   int
	id    core.TxnID
	coord core.SiteID
	ops   []core.Op
}

// runSoakEpoch runs one epoch on a fresh cluster (reopening persisted
// stores when WALDir is set) and returns the epoch result, its latency
// percentiles, and the last transaction ID allocated.
func runSoakEpoch(cfg SoakConfig, seed int64, epoch int, txnBase uint64) (*EpochResult, *PercentileReport, uint64, error) {
	base := cfg.Base
	chaosCfg := cfg.Chaos
	chaosCfg.Seed = epochSeed(seed, epoch)
	er := &EpochResult{
		Seed:                  seed,
		Epoch:                 epoch,
		ChaosSeed:             chaosCfg.Seed,
		AbortReasons:          make(map[string]int),
		PartitionAbortReasons: make(map[string]int),
	}

	// The WAN layer compiles the profile into per-directed-link chaos
	// overrides, deterministically from the epoch's chaos seed — the
	// same seed that reruns the epoch recompiles the same link matrix.
	var wan *geo.Compiled
	if cfg.WANProfile != "" {
		p, err := geo.Lookup(cfg.WANProfile)
		if err != nil {
			return nil, nil, 0, err
		}
		wan, err = geo.Compile(p, base.Sites, chaosCfg.Seed)
		if err != nil {
			return nil, nil, 0, err
		}
		// The profile owns latency, jitter and wire cost; the chaos
		// Drop/Dup probabilities still apply on top of every WAN link
		// (a per-link override replaces the globals wholesale, so fold
		// them in here).
		links := make(map[transport.LinkID]transport.LinkChaos, len(wan.Links))
		for id, lc := range wan.Links {
			lc.Drop = chaosCfg.Drop
			lc.Dup = chaosCfg.Dup
			links[id] = lc
		}
		chaosCfg.Links = links
		er.WANProfile = p.Name
		er.WANRegions = wan.String()
		er.WANFingerprint = wan.Fingerprint()
	}

	rng := rand.New(rand.NewSource(chaosCfg.Seed))
	sched, err := failure.Random(failure.RandomConfig{
		Sites:   base.Sites,
		Txns:    cfg.TxnsPerEpoch,
		MaxDown: cfg.MaxDown,
	}, rng)
	if err != nil {
		return nil, nil, 0, err
	}
	for _, e := range sched.Events {
		er.FailEvents = append(er.FailEvents, e.String())
	}

	// The link-fault schedule draws from its own rng so enabling
	// partitions leaves the chaos decision streams and the fail/recover
	// schedule untouched.
	var nsched netsched.Schedule
	var top *netsched.Topology
	if cfg.Partitions {
		nrng := rand.New(rand.NewSource(netSeed(chaosCfg.Seed)))
		if wan != nil {
			// WAN regime: faults are region-sized — whole regions go
			// dark or blackhole one way toward another region.
			nsched, err = netsched.RandomRegional(netsched.RegionalConfig{
				Assign: wan.Assignment,
				Names:  wan.Profile.Regions,
				Txns:   cfg.TxnsPerEpoch,
			}, nrng)
		} else {
			nsched, err = netsched.Random(netsched.RandomConfig{
				Sites: base.Sites,
				Txns:  cfg.TxnsPerEpoch,
			}, nrng)
		}
		if err != nil {
			return nil, nil, 0, err
		}
		top = netsched.NewTopology(base.Sites)
		er.NetEvents = nsched.Strings()
		er.NetFingerprint = nsched.Fingerprint()
	}

	ccfg := base.clusterConfig()
	ccfg.Chaos = &chaosCfg
	ccfg.Transport = cfg.Transport
	if cfg.Concurrency > 1 {
		ccfg.ConcurrentTxns = cfg.Concurrency
	}
	ccfg.LockWaitBudget = cfg.LockWaitBudget
	ccfg.CommitEpoch = cfg.CommitEpoch
	er.Concurrency = cfg.Concurrency
	// Continuous heal: REDO-only instant recovery plus the background
	// scrubber replace the two-step batch refresh, which is mutually
	// exclusive with InstantRecovery by construction.
	usesFailLocks := base.Policy == nil || base.Policy.UsesFailLocks()
	scrubOn := cfg.Scrub && usesFailLocks
	if scrubOn {
		ccfg.InstantRecovery = true
		ccfg.BatchCopierThreshold = 0
	}
	// Sites never close their stores (a failed site keeps its database,
	// §1.2); the epoch owns the WAL handles and closes them after the
	// cluster is torn down, flushing the state the next epoch reopens.
	var walStores []*storage.WALStore
	defer func() {
		for _, s := range walStores {
			_ = s.Close()
		}
	}()
	if cfg.WALDir != "" {
		dir := filepath.Join(cfg.WALDir, fmt.Sprintf("seed%d", seed))
		ccfg.StoreFactory = func(id core.SiteID) (storage.Store, error) {
			s, err := storage.OpenWAL(storage.WALOptions{
				Dir:   filepath.Join(dir, fmt.Sprintf("site%d", id)),
				Items: base.Items,
			})
			if err != nil {
				return nil, err
			}
			walStores = append(walStores, s)
			return s, nil
		}
		ccfg.TxnIDBase = txnBase
	}
	c, err := cluster.New(ccfg)
	if err != nil {
		return nil, nil, 0, err
	}
	defer c.Close()

	// The scrubber heals fail-locked items alongside the workload for the
	// whole epoch; the epilogue waits on it instead of running drain
	// passes. Its copier batches are bounded so a chaotic or partitioned
	// donor path stalls one batch, not the scrub loop.
	var scr *scrub.Scrubber
	if scrubOn {
		scr = scrub.New(c, scrub.Config{
			Rate:        cfg.ScrubRate,
			BatchSize:   cfg.ScrubBatch,
			Interval:    base.AckTimeout,
			ExecTimeout: 10 * base.AckTimeout,
			Tracer:      c.Tracer(),
		})
		scr.Start()
		defer scr.Stop()
	}
	kickScrub := func() {
		if scr != nil {
			scr.Kick()
		}
	}

	gen := workload.NewUniform(base.Items, base.MaxOps, chaosCfg.Seed)
	gen.ReadFraction = base.ReadFraction

	// trueUp is the manager's ground truth: which sites it has NOT
	// ordered to fail. Chaos can make sites falsely suspect each other;
	// it cannot change ground truth, which only the managing site's
	// fail/recover orders move.
	trueUp := make([]bool, base.Sites)
	for i := range trueUp {
		trueUp[i] = true
	}
	// deferred marks sites whose scheduled recovery came back blocked —
	// cut off from every donor — and waits for the next heal.
	deferred := make([]bool, base.Sites)

	// settle lets in-flight decision timers (armed 4x the ack timeout
	// after a lost phase-two decision) expire before a topology change,
	// so their sends land in a deterministic topology era and the
	// per-link counters stay reproducible. A WAN profile widens the
	// budget by its propagation floor: a timer's last send still has to
	// cross the slowest link before the era flips.
	settleDelay := 5 * base.AckTimeout
	if wan != nil {
		settleDelay += 2 * wan.MaxBaseDelay()
	}
	settle := func() { time.Sleep(settleDelay) }

	reconcile := func() (cluster.ReconcileReport, error) {
		rep, err := c.ReconcileSplitBrain(trueUp, base.AckTimeout)
		if err != nil {
			return rep, err
		}
		if rep.Detected() {
			er.SplitBrains++
		}
		er.DivergentItems += rep.DivergentItems
		er.LocksSet += rep.LocksSet
		er.LocksCleared += rep.LocksCleared
		er.Repairs += rep.Repairs
		return rep, nil
	}

	// eventAt reports whether any schedule event fires immediately before
	// transaction n — a wave boundary in concurrent mode.
	eventAt := func(n int) bool {
		if len(sched.EventsBefore(n)) > 0 {
			return true
		}
		return cfg.Partitions && len(nsched.EventsBefore(n)) > 0
	}
	concurrent := cfg.Concurrency > 1
	// Waves are capped so false-suspicion repair still runs at a bounded
	// interval even through an event-free stretch of the schedule.
	waveCap := 1
	if concurrent {
		waveCap = 4 * cfg.Concurrency
	}
	fp := fnv.New64a()

	for txnNum := 1; txnNum <= cfg.TxnsPerEpoch; {
		if cfg.Partitions {
			for _, e := range nsched.EventsBefore(txnNum) {
				if chaosCfg.Active() || top.Active() {
					settle()
				}
				top.Drive(c, e)
				if e.Kind != netsched.Heal {
					continue
				}
				// Heal time: first complete the recoveries the episode
				// blocked, then compare session vectors and collect the
				// divergence into fail-locks.
				for i, d := range deferred {
					if !d {
						continue
					}
					n, err := c.RecoverWithRetry(core.SiteID(i), base.AckTimeout)
					if err != nil {
						return nil, nil, 0, fmt.Errorf("deferred recover %d before txn %d: %w", i, txnNum, err)
					}
					er.RecoveryRetries += n
					deferred[i] = false
					trueUp[i] = true
					kickScrub()
				}
				if _, err := reconcile(); err != nil {
					return nil, nil, 0, fmt.Errorf("reconcile before txn %d: %w", txnNum, err)
				}
			}
		}
		for _, e := range sched.EventsBefore(txnNum) {
			switch e.Action {
			case failure.Fail:
				// A deferred recovery leaves the schedule's model of the
				// up-set ahead of reality; skip failures that would hit
				// an already-down site or empty the up-set.
				if !trueUp[e.Site] || countUp(trueUp) <= 1 {
					er.SkippedFails++
					continue
				}
				if err := c.Fail(e.Site); err != nil {
					return nil, nil, 0, fmt.Errorf("%s: %w", e, err)
				}
				trueUp[e.Site] = false
			case failure.Recover:
				if trueUp[e.Site] {
					// Its Fail was skipped; nothing to recover.
					continue
				}
				if top != nil && top.Active() {
					// During an episode a single attempt decides: a site
					// cut off from every donor reports recovery blocked
					// (§3.2) and waits for the heal.
					_, err := c.Recover(e.Site)
					switch {
					case errors.Is(err, cluster.ErrRecoveryBlocked):
						deferred[e.Site] = true
						er.DeferredRecoveries++
					case err != nil:
						return nil, nil, 0, fmt.Errorf("%s: %w", e, err)
					default:
						trueUp[e.Site] = true
						kickScrub()
					}
					continue
				}
				n, err := c.RecoverWithRetry(e.Site, base.AckTimeout)
				if err != nil {
					return nil, nil, 0, fmt.Errorf("%s: %w", e, err)
				}
				er.RecoveryRetries += n
				trueUp[e.Site] = true
				kickScrub()
			}
		}

		// Wave: the longest run of transactions before the next schedule
		// event (capped at waveCap). Serial mode issues waves of one,
		// preserving the paper's one-at-a-time processing; concurrent
		// mode executes the wave interleaved through the open-loop
		// driver, with a barrier at the wave end so every fail, recover
		// and partition event lands on a write-quiescent system (the
		// documented constraint for concurrent-mode recovery).
		waveEnd := txnNum
		for waveEnd-txnNum+1 < waveCap && waveEnd+1 <= cfg.TxnsPerEpoch && !eventAt(waveEnd+1) {
			waveEnd++
		}
		wave := make([]soakIssue, 0, waveEnd-txnNum+1)
		for n := txnNum; n <= waveEnd; n++ {
			id := c.NextTxnID()
			iss := soakIssue{num: n, id: id, coord: pickCoordinator(trueUp, n), ops: gen.Next(id)}
			wave = append(wave, iss)
			// Transaction IDs, coordinators and operations are all pure
			// functions of (seed, schedule) — fingerprint the issued
			// stream as the reproducibility witness that stays
			// bit-identical even when outcomes race in concurrent mode.
			fmt.Fprintf(fp, "%d/%d@%d:", iss.num, iss.id, iss.coord)
			for _, op := range iss.ops {
				fmt.Fprintf(fp, "%d,%d,%x;", op.Kind, op.Item, op.Value)
			}
		}

		outs := make([]*msg.TxnResult, len(wave))
		if !concurrent {
			out, err := c.ExecTxn(wave[0].coord, wave[0].id, wave[0].ops)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("txn %d on %s: %w", wave[0].num, wave[0].coord, err)
			}
			outs[0] = out
		} else {
			var execMu sync.Mutex
			var execErr error
			ol := &workload.OpenLoop{Rate: cfg.ArrivalRate, Count: len(wave), MaxInFlight: cfg.Concurrency}
			ol.Run(func(i int) {
				iss := wave[i]
				out, err := c.ExecTxn(iss.coord, iss.id, iss.ops)
				if err != nil {
					execMu.Lock()
					if execErr == nil {
						execErr = fmt.Errorf("txn %d on %s: %w", iss.num, iss.coord, err)
					}
					execMu.Unlock()
					return
				}
				outs[i] = out
			})
			if execErr != nil {
				return nil, nil, 0, execErr
			}
		}

		inPartition := top != nil && top.Active()
		for _, out := range outs {
			er.Txns++
			if inPartition {
				er.PartitionTxns++
			}
			if out.Committed {
				er.Committed++
			} else {
				er.Aborted++
				er.AbortReasons[out.AbortReason]++
				if inPartition {
					er.PartitionAborts++
					er.PartitionAbortReasons[out.AbortReason]++
				}
			}
		}
		txnNum = waveEnd + 1

		// Chaos turns lost messages into false failure declarations: a
		// dropped ack and the sender is announced failed system-wide,
		// ostracized by sites that are themselves fine. Repair after
		// every wave (every transaction, in serial mode) so a falsely
		// isolated site gets at most a bounded run of solo divergence
		// before it is rejoined (its writes fail-locked and refreshed
		// through the normal recovery machinery). While an episode is
		// active, suspicion touching a cut site is legitimate network
		// evidence, not a false positive — those pairs wait for heal-time
		// reconciliation.
		var eligible func(observer, suspect core.SiteID) bool
		if inPartition {
			eligible = func(observer, suspect core.SiteID) bool {
				return !top.Affected(observer) && !top.Affected(suspect)
			}
		}
		n, err := c.RepairFalseSuspicionsWhere(trueUp, eligible, base.AckTimeout)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("repair after txn %d: %w", waveEnd, err)
		}
		er.Repairs += n
	}
	er.WorkloadFingerprint = fp.Sum64()

	// Epilogue: heal any episode the schedule left active (after letting
	// partition-era decision timers expire into the cut), bring
	// ground-truth-down sites back, and clear remaining false suspicions.
	if top != nil && top.Active() {
		settle()
		top.HealAll(c)
	}
	for i, isUp := range trueUp {
		if !isUp {
			n, err := c.RecoverWithRetry(core.SiteID(i), base.AckTimeout)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("final recover %d: %w", i, err)
			}
			er.RecoveryRetries += n
			trueUp[i] = true
			deferred[i] = false
			kickScrub()
		}
	}
	n, err := c.RepairFalseSuspicions(trueUp, base.AckTimeout)
	if err != nil {
		return nil, nil, 0, err
	}
	er.Repairs += n
	settle()
	if n, err = c.RepairFalseSuspicions(trueUp, base.AckTimeout); err != nil {
		return nil, nil, 0, err
	}
	er.Repairs += n

	// Final reconciliation folds in whatever the late recoveries
	// surfaced (a site that solo-committed during a cut and then failed
	// hides its versions until it is back up), then the drain runs the
	// copier transactions that actually refresh the stale copies. With
	// persistence the drain also guarantees the next epoch's fresh
	// fail-lock tables have no untracked stale on-disk copies to miss.
	if cfg.Partitions {
		if _, err := reconcile(); err != nil {
			return nil, nil, 0, fmt.Errorf("epilogue reconcile: %w", err)
		}
	}
	if scrubOn {
		// Continuous heal: no DrainFailLocks passes — wait for the
		// scrubber to grind the remaining truly-up fail-locks to zero.
		// Reconciliation between waits re-derives tables over the
		// reliable manager links (a chaotic link may have eaten a clear
		// fan-out, leaving a stray bit the scrubber's status scan has
		// already seen cleared); anything it re-locks goes back to the
		// scrubber for another round.
		healStart := time.Now()
		for pass := 0; pass < 3; pass++ {
			scr.Kick()
			clean := scr.WaitClean(60 * base.AckTimeout)
			rep, err := reconcile()
			if err != nil {
				return nil, nil, 0, fmt.Errorf("scrub-heal reconcile: %w", err)
			}
			if clean && rep.LocksSet == 0 {
				break
			}
		}
		er.HealTime = time.Since(healStart)
		remaining, err := c.FailLocksRemaining(trueUp)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("scrub-heal count: %w", err)
		}
		er.LocksAfterDrain = remaining
		// Stop before the audit so no scrub batch races the final copy
		// comparison.
		scr.Stop()
		st := scr.Stats()
		er.ScrubPasses = int(st.Passes)
		er.ScrubItems = int(st.ItemsScrubbed)
		er.ScrubCopiers = int(st.Copiers)
	} else if (cfg.Partitions || cfg.WALDir != "") && usesFailLocks {
		// Drain, then reconcile again: the drain's copier clear fan-outs
		// travel chaotic site-to-site links, and a dropped clear leaves a
		// stray bit in one table that the drain's per-site count cannot
		// see. Reconciliation re-derives every table from the copies over
		// the reliable manager links; another pass drains whatever it had
		// to re-lock (a copier that aborted mid-drain).
		for pass := 0; pass < 3; pass++ {
			copiers, remaining, err := c.DrainFailLocks(trueUp, base.MaxOps)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("drain: %w", err)
			}
			er.DrainCopiers += copiers
			er.LocksAfterDrain = remaining
			rep, err := reconcile()
			if err != nil {
				return nil, nil, 0, fmt.Errorf("post-drain reconcile: %w", err)
			}
			if remaining == 0 && rep.LocksSet == 0 {
				break
			}
		}
	}

	var report cluster.AuditReport
	if usesFailLocks {
		report, err = c.Audit()
	} else {
		report, err = c.AuditQuorum()
	}
	if err != nil {
		return nil, nil, 0, err
	}
	er.AuditOK = report.OK() && er.LocksAfterDrain == 0
	if !er.AuditOK {
		er.AuditDetail = report.String()
		if er.LocksAfterDrain > 0 {
			er.AuditDetail = fmt.Sprintf("%s; %d fail-locks undrained at epoch end", er.AuditDetail, er.LocksAfterDrain)
		}
	}
	pct := CollectPercentiles(c)
	er.Chaos = c.ChaosStats()
	return er, pct, c.LastTxnID(), nil
}

// pickCoordinator round-robins over the truly-up sites, matching the
// paper's "transactions were processed on both sites" (§3.1).
func pickCoordinator(trueUp []bool, txnNum int) core.SiteID {
	var ups []core.SiteID
	for i, u := range trueUp {
		if u {
			ups = append(ups, core.SiteID(i))
		}
	}
	return ups[(txnNum-1)%len(ups)]
}

// countUp counts the ground-truth-up sites.
func countUp(trueUp []bool) int {
	n := 0
	for _, u := range trueUp {
		if u {
			n++
		}
	}
	return n
}
