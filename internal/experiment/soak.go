package experiment

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/failure"
	"minraid/internal/metrics"
	"minraid/internal/transport"
	"minraid/internal/workload"
)

// SoakConfig parameterizes a randomized robustness run: many seeded epochs
// of generated fail/recover schedules plus workload traffic, all under a
// chaotic network, audited for copy consistency after every epoch.
type SoakConfig struct {
	// Base supplies the system parameters (sites, items, ops, delay,
	// timeouts). Zero fields get the soak defaults: 4 sites, 30 items,
	// 5 ops.
	Base Config
	// Seeds are the root seeds; each runs EpochsPerSeed epochs. Every
	// epoch derives its own chaos seed and schedule from (seed, epoch),
	// so any failing epoch can be re-run alone.
	Seeds []int64
	// EpochsPerSeed is the number of epochs per root seed (default 1).
	EpochsPerSeed int
	// TxnsPerEpoch is the workload length of one epoch (default 40).
	TxnsPerEpoch int
	// Chaos carries the fault probabilities (Drop, Dup, MaxJitter). Seed
	// is overridden per epoch and ExemptManager is forced on: the
	// managing site is the experimenter's out-of-band console and must
	// stay reliable for injection and measurement. MaxJitter should stay
	// well below Base.AckTimeout so jitter alone never masquerades as a
	// site failure.
	Chaos transport.ChaosConfig
	// MaxDown caps simultaneously failed sites in generated schedules
	// (default sites-1).
	MaxDown int
	// Logf, when non-nil, receives per-epoch progress lines.
	Logf func(format string, args ...any)
}

func (c SoakConfig) withDefaults() SoakConfig {
	c.Base = c.Base.withDefaults(4, 30, 5)
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3, 4, 5}
	}
	if c.EpochsPerSeed == 0 {
		c.EpochsPerSeed = 1
	}
	if c.TxnsPerEpoch == 0 {
		c.TxnsPerEpoch = 40
	}
	c.Chaos.ExemptManager = true
	return c
}

func (c SoakConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// EpochResult is one epoch's outcome.
type EpochResult struct {
	// Seed and Epoch identify the run; ChaosSeed is the derived seed the
	// chaos layer actually used.
	Seed      int64
	Epoch     int
	ChaosSeed int64
	// Txns, Committed, Aborted account for the epoch's transactions.
	Txns, Committed, Aborted int
	// AbortReasons counts aborts by reason string.
	AbortReasons map[string]int
	// Repairs counts false-suspicion repairs: a truly-up site that some
	// other truly-up site declared failed (its ack lost to chaos) was
	// failed and recovered by the manager to rejoin it to the group.
	Repairs int
	// RecoveryRetries counts recovery attempts that came back blocked
	// because chaos ate the donor handshake, and were retried.
	RecoveryRetries int
	// AuditOK reports the epoch-end consistency audit; AuditDetail holds
	// its rendering when it failed.
	AuditOK     bool
	AuditDetail string
	// Chaos is the per-link decision counters — the reproducibility
	// fingerprint of the epoch.
	Chaos map[transport.LinkID]transport.LinkStats
}

// ChaosTotal folds the epoch's per-link counters into one.
func (e *EpochResult) ChaosTotal() transport.LinkStats {
	var total transport.LinkStats
	for _, s := range e.Chaos {
		total.Add(s)
	}
	return total
}

// SoakResult aggregates a whole soak run.
type SoakResult struct {
	// Epochs holds every epoch in run order.
	Epochs []EpochResult
	// Txns, Committed, Aborted aggregate across epochs.
	Txns, Committed, Aborted int
	// AbortReasons aggregates abort counts by reason.
	AbortReasons map[string]int
	// Violations counts epochs whose audit failed.
	Violations int
	// Percentiles merges every epoch's latency histograms and message
	// counts.
	Percentiles *PercentileReport
}

// OK reports whether every epoch audited clean.
func (r *SoakResult) OK() bool { return r.Violations == 0 }

// String renders the soak summary table.
func (r *SoakResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Soak: %d epochs, %d txns (%d committed, %d aborted), %d audit violations\n",
		len(r.Epochs), r.Txns, r.Committed, r.Aborted, r.Violations)
	fmt.Fprintf(&b, "  %-6s %-5s %6s %6s %6s %7s %8s %8s %8s %8s  %s\n",
		"seed", "epoch", "txns", "commit", "abort", "repairs", "sent", "dropped", "dup", "jitter", "audit")
	for _, e := range r.Epochs {
		total := e.ChaosTotal()
		verdict := "ok"
		if !e.AuditOK {
			verdict = "VIOLATION"
		}
		fmt.Fprintf(&b, "  %-6d %-5d %6d %6d %6d %7d %8d %8d %8d %8v  %s\n",
			e.Seed, e.Epoch, e.Txns, e.Committed, e.Aborted, e.Repairs,
			total.Sent, total.Dropped, total.Duplicated, total.JitterTotal.Round(time.Millisecond), verdict)
	}
	if len(r.AbortReasons) > 0 {
		fmt.Fprintf(&b, "Aborts by reason\n")
		reasons := make([]string, 0, len(r.AbortReasons))
		for reason := range r.AbortReasons {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		for _, reason := range reasons {
			fmt.Fprintf(&b, "  %-52s %6d\n", reason, r.AbortReasons[reason])
		}
	}
	return b.String()
}

// epochSeed derives the chaos seed for (root seed, epoch) with a
// splitmix64-style mix, so epochs of one root seed see unrelated fault
// streams but remain individually re-runnable.
func epochSeed(seed int64, epoch int) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(epoch+1)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// RunSoak drives the full soak: for every (seed, epoch) it builds a fresh
// chaotic cluster, runs a generated fail/recover schedule with workload
// traffic, heals the system, and audits copy consistency.
func RunSoak(cfg SoakConfig) (*SoakResult, error) {
	cfg = cfg.withDefaults()
	res := &SoakResult{
		AbortReasons: make(map[string]int),
		Percentiles:  &PercentileReport{Hists: make(map[string]metrics.HistogramStat), Msgs: make(map[string]uint64)},
	}
	for _, seed := range cfg.Seeds {
		for epoch := 0; epoch < cfg.EpochsPerSeed; epoch++ {
			er, pct, err := runSoakEpoch(cfg, seed, epoch)
			if err != nil {
				return nil, fmt.Errorf("experiment: soak seed %d epoch %d: %w", seed, epoch, err)
			}
			res.Epochs = append(res.Epochs, *er)
			res.Txns += er.Txns
			res.Committed += er.Committed
			res.Aborted += er.Aborted
			for reason, n := range er.AbortReasons {
				res.AbortReasons[reason] += n
			}
			if !er.AuditOK {
				res.Violations++
			}
			res.Percentiles.Merge(pct)
			total := er.ChaosTotal()
			cfg.logf("soak seed=%d epoch=%d: %d txns (%d committed), %d repairs, chaos sent=%d dropped=%d dup=%d, audit=%v",
				seed, epoch, er.Txns, er.Committed, er.Repairs, total.Sent, total.Dropped, total.Duplicated, er.AuditOK)
		}
	}
	return res, nil
}

// runSoakEpoch runs one epoch on a fresh cluster.
func runSoakEpoch(cfg SoakConfig, seed int64, epoch int) (*EpochResult, *PercentileReport, error) {
	base := cfg.Base
	chaosCfg := cfg.Chaos
	chaosCfg.Seed = epochSeed(seed, epoch)
	er := &EpochResult{
		Seed:         seed,
		Epoch:        epoch,
		ChaosSeed:    chaosCfg.Seed,
		AbortReasons: make(map[string]int),
	}

	rng := rand.New(rand.NewSource(chaosCfg.Seed))
	sched, err := failure.Random(failure.RandomConfig{
		Sites:   base.Sites,
		Txns:    cfg.TxnsPerEpoch,
		MaxDown: cfg.MaxDown,
	}, rng)
	if err != nil {
		return nil, nil, err
	}

	ccfg := base.clusterConfig()
	ccfg.Chaos = &chaosCfg
	c, err := cluster.New(ccfg)
	if err != nil {
		return nil, nil, err
	}
	defer c.Close()

	gen := workload.NewUniform(base.Items, base.MaxOps, chaosCfg.Seed)
	gen.ReadFraction = base.ReadFraction

	// trueUp is the manager's ground truth: which sites it has NOT
	// ordered to fail. Chaos can make sites falsely suspect each other;
	// it cannot change ground truth, which only the managing site's
	// fail/recover orders move.
	trueUp := make([]bool, base.Sites)
	for i := range trueUp {
		trueUp[i] = true
	}

	for txnNum := 1; txnNum <= cfg.TxnsPerEpoch; txnNum++ {
		for _, e := range sched.EventsBefore(txnNum) {
			switch e.Action {
			case failure.Fail:
				if err := c.Fail(e.Site); err != nil {
					return nil, nil, fmt.Errorf("%s: %w", e, err)
				}
				trueUp[e.Site] = false
			case failure.Recover:
				n, err := c.RecoverWithRetry(e.Site, base.AckTimeout)
				if err != nil {
					return nil, nil, fmt.Errorf("%s: %w", e, err)
				}
				er.RecoveryRetries += n
				trueUp[e.Site] = true
			}
		}

		coord := pickCoordinator(trueUp, txnNum)
		id := c.NextTxnID()
		out, err := c.ExecTxn(coord, id, gen.Next(id))
		if err != nil {
			return nil, nil, fmt.Errorf("txn %d on %s: %w", txnNum, coord, err)
		}
		er.Txns++
		if out.Committed {
			er.Committed++
		} else {
			er.Aborted++
			er.AbortReasons[out.AbortReason]++
		}

		// Chaos turns lost messages into false failure declarations: a
		// dropped ack and the sender is announced failed system-wide,
		// ostracized by sites that are themselves fine. Repair after
		// every transaction so a falsely isolated site gets at most ~one
		// transaction of solo divergence before it is rejoined (its
		// writes fail-locked and refreshed through the normal recovery
		// machinery).
		n, err := c.RepairFalseSuspicions(trueUp, base.AckTimeout)
		if err != nil {
			return nil, nil, fmt.Errorf("repair after txn %d: %w", txnNum, err)
		}
		er.Repairs += n
	}

	// Heal: bring ground-truth-down sites back, clear any remaining
	// false suspicions, then let in-flight decision timers (armed when a
	// phase-two decision was dropped) expire before auditing.
	for i, isUp := range trueUp {
		if !isUp {
			n, err := c.RecoverWithRetry(core.SiteID(i), base.AckTimeout)
			if err != nil {
				return nil, nil, fmt.Errorf("final recover %d: %w", i, err)
			}
			er.RecoveryRetries += n
			trueUp[i] = true
		}
	}
	n, err := c.RepairFalseSuspicions(trueUp, base.AckTimeout)
	if err != nil {
		return nil, nil, err
	}
	er.Repairs += n
	time.Sleep(5 * base.AckTimeout)
	if n, err = c.RepairFalseSuspicions(trueUp, base.AckTimeout); err != nil {
		return nil, nil, err
	}
	er.Repairs += n

	report, err := c.Audit()
	if err != nil {
		return nil, nil, err
	}
	er.AuditOK = report.OK()
	if !er.AuditOK {
		er.AuditDetail = report.String()
	}
	pct := CollectPercentiles(c)
	er.Chaos = c.ChaosStats()
	return er, pct, nil
}

// pickCoordinator round-robins over the truly-up sites, matching the
// paper's "transactions were processed on both sites" (§3.1).
func pickCoordinator(trueUp []bool, txnNum int) core.SiteID {
	var ups []core.SiteID
	for i, u := range trueUp {
		if u {
			ups = append(ups, core.SiteID(i))
		}
	}
	return ups[(txnNum-1)%len(ups)]
}

// recoverWithRetry and repairFalseSuspicions moved to
// (*cluster.Cluster).RecoverWithRetry / RepairFalseSuspicions so tests
// outside this package can heal false suspicions the same way.
