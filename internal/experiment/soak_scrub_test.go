package experiment

import (
	"testing"
	"time"

	"minraid/internal/transport"
)

// scrubSoakConfig is the continuous-heal regression corpus: instant
// REDO-only recovery with the background scrubber healing alongside the
// workload, instead of batch refresh plus the DrainFailLocks epilogue.
func scrubSoakConfig(seeds []int64, txns int) SoakConfig {
	return SoakConfig{
		Base: Config{
			Sites:      4,
			Items:      20,
			AckTimeout: 40 * time.Millisecond,
		},
		Seeds:        seeds,
		TxnsPerEpoch: txns,
		Scrub:        true,
	}
}

// TestSoakScrubFailRecover: fail/recover schedules only — every epoch
// must reach zero truly-up fail-locks through the scrubber (no drain
// passes run at all in scrub mode), audit clean, and report its heal
// time and scrub work.
func TestSoakScrubFailRecover(t *testing.T) {
	seeds := []int64{1, 2, 3}
	txns := 30
	if testing.Short() {
		seeds = seeds[:2]
		txns = 20
	}
	res, err := RunSoak(scrubSoakConfig(seeds, txns))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("scrub soak: %d audit violations:\n%s", res.Violations, res)
	}
	for _, e := range res.Epochs {
		if e.LocksAfterDrain != 0 {
			t.Errorf("seed %d epoch %d: %d fail-locks left after scrub heal", e.Seed, e.Epoch, e.LocksAfterDrain)
		}
		if e.HealTime <= 0 {
			t.Errorf("seed %d epoch %d reported no heal time", e.Seed, e.Epoch)
		}
		if e.ScrubPasses == 0 {
			t.Errorf("seed %d epoch %d: scrubber never scanned", e.Seed, e.Epoch)
		}
		if e.DrainCopiers != 0 {
			t.Errorf("seed %d epoch %d ran %d drain copiers in scrub mode", e.Seed, e.Epoch, e.DrainCopiers)
		}
	}
}

// TestSoakScrubChaosPartitions is the acceptance run: chaos and
// scheduled partitions on top of scrub mode. Split-brain divergence is
// collected into fail-locks at reconciliation and the scrubber — not a
// drain epilogue — refreshes the stale copies to a clean audit.
func TestSoakScrubChaosPartitions(t *testing.T) {
	seeds := []int64{1, 2}
	txns := 25
	if testing.Short() {
		seeds = seeds[:1]
		txns = 15
	}
	cfg := scrubSoakConfig(seeds, txns)
	cfg.Partitions = true
	cfg.Chaos = transport.ChaosConfig{
		Drop:      0.03,
		Dup:       0.03,
		MaxJitter: 4 * time.Millisecond,
	}
	res, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("scrub+chaos+partition soak: %d audit violations:\n%s", res.Violations, res)
	}
	scrubbed := 0
	for _, e := range res.Epochs {
		if e.LocksAfterDrain != 0 {
			t.Errorf("seed %d epoch %d: %d fail-locks left after scrub heal", e.Seed, e.Epoch, e.LocksAfterDrain)
		}
		if e.HealTime <= 0 {
			t.Errorf("seed %d epoch %d reported no heal time", e.Seed, e.Epoch)
		}
		scrubbed += e.ScrubItems
	}
	if scrubbed == 0 {
		t.Error("no epoch scrubbed a single item under chaos+partitions")
	}
}

// TestSoakScrubRateLimited bounds the copier budget and still requires
// convergence — the throttle slows the heal, it must not prevent it.
func TestSoakScrubRateLimited(t *testing.T) {
	cfg := scrubSoakConfig([]int64{1}, 20)
	cfg.ScrubRate = 200
	cfg.ScrubBatch = 4
	res, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("rate-limited scrub soak: %d audit violations:\n%s", res.Violations, res)
	}
	for _, e := range res.Epochs {
		if e.LocksAfterDrain != 0 {
			t.Errorf("seed %d epoch %d: %d fail-locks left", e.Seed, e.Epoch, e.LocksAfterDrain)
		}
	}
}
