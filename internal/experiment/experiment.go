// Package experiment reproduces the paper's three experiments and the
// follow-on studies it proposes:
//
//   - Experiment 1 (§2): overhead of fail-lock maintenance, control
//     transactions and copier transactions.
//   - Experiment 2 (§3): data availability on a recovering site (Figure 1).
//   - Experiment 3 (§4): consistency of replicated copies under multiple
//     failures (Figures 2 and 3).
//   - Extensions (§3.2, §5): two-step recovery, type-3 control
//     transactions, read-fraction sensitivity, and a protocol-availability
//     comparison against the ROWA and quorum baselines.
//
// Every experiment returns a typed report whose String method renders the
// same table or figure the paper presents; cmd/raid-experiments writes them
// all, and EXPERIMENTS.md records a captured run.
package experiment

import (
	"fmt"
	"time"

	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/failure"
	"minraid/internal/policy"
	"minraid/internal/txn"
	"minraid/internal/workload"
)

// Config carries the system parameters shared by all experiments; the
// zero value is filled with the paper's defaults per experiment.
type Config struct {
	// Sites, Items, MaxOps: the §2.2 / §3.1.1 parameter blocks.
	Sites  int
	Items  int
	MaxOps int
	// Seed makes runs reproducible.
	Seed int64
	// Delay is the per-hop communication cost. The paper measured 9ms;
	// zero measures pure protocol cost. Experiment shapes hold either
	// way; absolute times only resemble the paper's with 9ms.
	Delay time.Duration
	// AckTimeout is the failure-detection timeout (default 25x Delay,
	// minimum 50ms).
	AckTimeout time.Duration
	// Policy is the replication protocol (nil: ROWAA).
	Policy policy.Policy
	// ReadFraction is the probability a generated operation is a read
	// (default 0.5, the paper's equal mix).
	ReadFraction float64
	// BatchCopierThreshold enables two-step recovery.
	BatchCopierThreshold float64
	// EnableType3 enables type-3 control transactions.
	EnableType3 bool
	// ReplicationDegree places each item on this many sites, round-robin
	// (core.RoundRobinReplication), instead of fully replicating. Zero or
	// >= Sites keeps full replication. Partial replication requires a
	// copy-aware policy (ROWAA or quorum) and serial execution.
	ReplicationDegree int
}

func (c Config) withDefaults(sites, items, maxOps int) Config {
	if c.Sites == 0 {
		c.Sites = sites
	}
	if c.Items == 0 {
		c.Items = items
	}
	if c.MaxOps == 0 {
		c.MaxOps = maxOps
	}
	if c.Seed == 0 {
		c.Seed = 1987 // the year of the technical report
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.5
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 25 * c.Delay
		if c.AckTimeout < 50*time.Millisecond {
			c.AckTimeout = 50 * time.Millisecond
		}
	}
	return c
}

func (c Config) clusterConfig() cluster.Config {
	ccfg := cluster.Config{
		Sites:                c.Sites,
		Items:                c.Items,
		Policy:               c.Policy,
		Delay:                c.Delay,
		AckTimeout:           c.AckTimeout,
		BatchCopierThreshold: c.BatchCopierThreshold,
		EnableType3:          c.EnableType3,
	}
	if c.ReplicationDegree > 0 && c.ReplicationDegree < c.Sites {
		ccfg.Replicas = core.RoundRobinReplication(c.Items, c.Sites, c.ReplicationDegree)
	}
	return ccfg
}

// ScheduleResult is the outcome of driving one failure schedule with the
// paper's workload: per-transaction fail-lock series (the figures) plus
// commit/abort accounting.
type ScheduleResult struct {
	// Txns is the number of transactions issued.
	Txns int
	// Committed and Aborted partition the issued transactions.
	Committed, Aborted int
	// DataAborts counts aborts for data unavailability (no copier donor)
	// — the quantity scenario 1 reports as 13 and scenario 2 as 0.
	DataAborts int
	// DetectionAborts counts aborts that detected a site failure (the
	// transaction that times out and runs the type-2 announcement).
	DetectionAborts int
	// Copiers is the total number of demand copier transactions
	// requested by database transactions.
	Copiers int
	// BatchCopiers is the number of copier transactions issued by batch
	// refresh (step two of two-step recovery); zero unless a batch
	// threshold is configured.
	BatchCopiers int
	// FailLocks[k][i] is the number of items fail-locked for site k
	// after transaction i+1, as observed by that transaction's (up)
	// coordinator — the y-axis of Figures 1-3.
	FailLocks map[core.SiteID][]float64
	// FullyRecoveredAt is the 1-based transaction number after which no
	// fail-locks remained for any site, or 0 if that never happened.
	FullyRecoveredAt int
	// AuditOK reports the final cross-site consistency audit.
	AuditOK bool
	// AuditDetail holds the audit's String rendering.
	AuditDetail string
	// Percentiles holds the run's merged latency histograms and message
	// counts (-percentiles view).
	Percentiles *PercentileReport
}

// RunSchedule drives the schedule with the paper's uniform workload. If
// sched.Txns is zero the run continues until every fail-lock clears
// (capped at capTxns).
func RunSchedule(cfg Config, sched failure.Schedule, capTxns int) (*ScheduleResult, error) {
	cfg = cfg.withDefaults(2, 50, 5)
	plan, err := failure.NewPlan(sched, cfg.Sites)
	if err != nil {
		return nil, err
	}
	c, err := cluster.New(cfg.clusterConfig())
	if err != nil {
		return nil, err
	}
	defer c.Close()

	gen := workload.NewUniform(cfg.Items, cfg.MaxOps, cfg.Seed)
	gen.ReadFraction = cfg.ReadFraction
	res := &ScheduleResult{FailLocks: make(map[core.SiteID][]float64)}
	for i := 0; i < cfg.Sites; i++ {
		res.FailLocks[core.SiteID(i)] = nil
	}

	limit := sched.Txns
	openEnded := limit == 0
	if openEnded {
		limit = capTxns
	}

	everLocked := false
	for txnNum := 1; txnNum <= limit; txnNum++ {
		for _, e := range sched.EventsBefore(txnNum) {
			switch e.Action {
			case failure.Fail:
				if err := c.Fail(e.Site); err != nil {
					return nil, fmt.Errorf("experiment: %s: %w", e, err)
				}
			case failure.Recover:
				if _, err := c.Recover(e.Site); err != nil {
					return nil, fmt.Errorf("experiment: %s: %w", e, err)
				}
			}
		}

		coord := plan.Coordinator(txnNum)
		id := c.NextTxnID()
		ops := gen.Next(id)
		out, err := c.ExecTxn(coord, id, ops)
		if err != nil {
			return nil, fmt.Errorf("experiment: txn %d on %s: %w", txnNum, coord, err)
		}
		res.Txns++
		if out.Committed {
			res.Committed++
		} else {
			res.Aborted++
			switch out.AbortReason {
			case txn.AbortNoDonor, txn.AbortDonorDown:
				res.DataAborts++
			case txn.AbortParticipantDown:
				res.DetectionAborts++
			}
		}
		res.Copiers += int(out.Copiers)

		// Observe the fail-lock state through the (operational)
		// coordinator, as the managing site would.
		st, err := c.Status(coord, false)
		if err != nil {
			return nil, err
		}
		total := 0
		for k := 0; k < cfg.Sites; k++ {
			n := int(st.FailLockCounts[k])
			res.FailLocks[core.SiteID(k)] = append(res.FailLocks[core.SiteID(k)], float64(n))
			total += n
		}
		if total > 0 {
			everLocked = true
			res.FullyRecoveredAt = 0
		} else if everLocked && res.FullyRecoveredAt == 0 {
			res.FullyRecoveredAt = txnNum
			if openEnded {
				break
			}
		}
	}

	for i := 0; i < cfg.Sites; i++ {
		res.BatchCopiers += int(c.Registry(core.SiteID(i)).Counter("copiers.batch"))
	}
	report, err := c.Audit()
	if err != nil {
		return nil, err
	}
	res.AuditOK = report.OK()
	res.AuditDetail = report.String()
	res.Percentiles = CollectPercentiles(c)
	return res, nil
}
