package experiment

import (
	"bytes"
	"fmt"
	"strings"

	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/policy"
)

// PartitionReport records the partition study: what ROWAA and the quorum
// baseline each do when the network splits instead of a site failing.
//
// The fail-lock definition covers "site failure or network partitioning"
// (§1.1), but the ROWAA strategy itself is safe only against fail-stop
// sites: in a symmetric partition each side declares the other failed
// (type-2 control transactions), keeps committing on its own copies, and
// the replicas diverge — a divergence the consistency audit detects via
// the disagreeing fail-lock tables. Quorum consensus refuses the minority
// side instead, trading availability for partition safety. This study
// makes that contrast measurable.
type PartitionReport struct {
	Txns int
	// ROWAA outcome.
	ROWAAMinorityCommits int
	ROWAAMajorityCommits int
	ROWAADiverged        bool // audit found untracked divergence (expected)
	// Quorum outcome.
	QuorumMinorityCommits int
	QuorumMajorityCommits int
	// QuorumHealedReadFresh: after healing, a read coordinated on the
	// former minority side returned the majority's newest value.
	QuorumHealedReadFresh bool
}

// String renders the study.
func (r PartitionReport) String() string {
	var b strings.Builder
	b.WriteString("Extension: symmetric network partition {0} vs {1,2} — site-failure protocols vs partitions\n")
	fmt.Fprintf(&b, "  %-10s %18s %18s %28s\n", "policy", "minority commits", "majority commits", "post-partition state")
	rowaaState := "replicas DIVERGED (detected by audit)"
	if !r.ROWAADiverged {
		rowaaState = "no divergence (unexpected)"
	}
	fmt.Fprintf(&b, "  %-10s %18d %18d   %s\n", "rowaa", r.ROWAAMinorityCommits, r.ROWAAMajorityCommits, rowaaState)
	quorumState := "consistent; healed read is fresh"
	if !r.QuorumHealedReadFresh {
		quorumState = "healed read was stale (unexpected)"
	}
	fmt.Fprintf(&b, "  %-10s %18d %18d   %s\n", "quorum", r.QuorumMinorityCommits, r.QuorumMajorityCommits, quorumState)
	return b.String()
}

// RunPartitionStudy partitions a three-site system into {0} and {1, 2},
// drives writes on both sides, heals, and reports what each protocol did.
func RunPartitionStudy(cfg Config, txns int) (*PartitionReport, error) {
	cfg = cfg.withDefaults(3, 20, 5)
	if txns == 0 {
		txns = 10
	}
	report := &PartitionReport{Txns: txns}

	// ROWAA: both sides keep writing the same item; replicas diverge.
	{
		c, err := cluster.New(cfg.clusterConfig())
		if err != nil {
			return nil, err
		}
		minority, majority, err := partitionDrive(c, cfg, txns)
		if err != nil {
			c.Close()
			return nil, err
		}
		report.ROWAAMinorityCommits = minority
		report.ROWAAMajorityCommits = majority
		c.Partition([]core.SiteID{0}, []core.SiteID{1, 2}, false)
		audit, err := c.Audit()
		if err != nil {
			c.Close()
			return nil, err
		}
		report.ROWAADiverged = !audit.OK()
		c.Close()
	}

	// Quorum: the minority side cannot commit; after healing, version
	// voting serves the majority's value everywhere.
	{
		ccfg := cfg.clusterConfig()
		ccfg.Policy = policy.Quorum{}
		c, err := cluster.New(ccfg)
		if err != nil {
			return nil, err
		}
		minority, majority, err := partitionDrive(c, cfg, txns)
		if err != nil {
			c.Close()
			return nil, err
		}
		report.QuorumMinorityCommits = minority
		report.QuorumMajorityCommits = majority
		c.Partition([]core.SiteID{0}, []core.SiteID{1, 2}, false)
		res, err := c.Exec(0, []core.Op{core.Read(0)})
		if err != nil {
			c.Close()
			return nil, err
		}
		report.QuorumHealedReadFresh = res.Committed &&
			len(res.Reads) == 1 && bytes.Equal(res.Reads[0].Value, lastMajorityValue(txns))
		c.Close()
	}
	return report, nil
}

// partitionDrive cuts {0} | {1,2} and writes item 0 on both sides,
// returning the commit counts (minority side, majority side).
func partitionDrive(c *cluster.Cluster, cfg Config, txns int) (minority, majority int, err error) {
	c.Partition([]core.SiteID{0}, []core.SiteID{1, 2}, true)
	for i := 0; i < txns; i++ {
		// Minority side write.
		id := c.NextTxnID()
		res, err := c.ExecTxn(0, id, []core.Op{core.Write(0, minorityValue(i))})
		if err != nil {
			return 0, 0, err
		}
		if res.Committed {
			minority++
		}
		// Majority side write of the same item.
		id = c.NextTxnID()
		res, err = c.ExecTxn(1, id, []core.Op{core.Write(0, majorityValue(i))})
		if err != nil {
			return 0, 0, err
		}
		if res.Committed {
			majority++
		}
	}
	return minority, majority, nil
}

func minorityValue(i int) []byte { return []byte(fmt.Sprintf("minority-%d", i)) }
func majorityValue(i int) []byte { return []byte(fmt.Sprintf("majority-%d", i)) }

// lastMajorityValue is the value the majority side wrote last.
func lastMajorityValue(txns int) []byte { return majorityValue(txns - 1) }
