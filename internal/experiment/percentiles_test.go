package experiment

import (
	"strings"
	"testing"

	"minraid/internal/cluster"
	"minraid/internal/core"
)

func TestCollectPercentiles(t *testing.T) {
	c, err := cluster.New(cluster.Config{Sites: 2, Items: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if res, err := c.Exec(0, []core.Op{core.Write(core.ItemID(i), []byte("x"))}); err != nil || !res.Committed {
			t.Fatalf("txn %d: %v %v", i, res, err)
		}
	}

	pr := CollectPercentiles(c)
	h, ok := pr.Hists["txn.coord"]
	if !ok || h.Count != 5 {
		t.Fatalf("coordinator histogram = %+v (ok=%v), want 5 observations", h, ok)
	}
	if h.Quantile(0.5) <= 0 || h.Quantile(0.99) < h.Quantile(0.5) {
		t.Errorf("implausible quantiles: p50=%v p99=%v", h.Quantile(0.5), h.Quantile(0.99))
	}
	if pr.Msgs["prepare"] == 0 || pr.Msgs["commit"] == 0 {
		t.Errorf("message counts missing 2PC traffic: %v", pr.Msgs)
	}

	out := pr.String()
	for _, want := range []string{"p50", "p95", "p99", "txn.coord", "Messages sent per kind", "prepare"} {
		if !strings.Contains(out, want) {
			t.Errorf("percentile table missing %q:\n%s", want, out)
		}
	}

	// Merge doubles the counts.
	pr.Merge(CollectPercentiles(c))
	if got := pr.Hists["txn.coord"].Count; got != 10 {
		t.Errorf("merged count = %d, want 10", got)
	}
	// Merging nil is a no-op.
	pr.Merge(nil)
}
