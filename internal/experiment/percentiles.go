package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/metrics"
)

// PercentileReport is the tail-latency view of one experiment run: every
// site's latency histograms merged per event class, plus the network's
// per-kind message counts. The paper reports means only; percentiles show
// how failure handling stretches the tail without moving the mean much.
type PercentileReport struct {
	// Hists maps a timer name (site.Timer*) to the histogram merged
	// across every site of the run.
	Hists map[string]metrics.HistogramStat
	// Msgs counts messages sent on the wire, per message kind.
	Msgs map[string]uint64
}

// CollectPercentiles merges the latency histograms of every site in a
// running cluster and snapshots the per-kind message counts. Call it
// before Close — registries die with their sites.
func CollectPercentiles(c *cluster.Cluster) *PercentileReport {
	r := &PercentileReport{
		Hists: make(map[string]metrics.HistogramStat),
		Msgs:  make(map[string]uint64),
	}
	for i := 0; i < c.Sites(); i++ {
		for name, h := range c.Registry(core.SiteID(i)).Histograms() {
			agg := r.Hists[name]
			agg.Merge(h)
			r.Hists[name] = agg
		}
	}
	for kind, n := range c.Tracer().MessageCounts() {
		r.Msgs[kind] = n
	}
	return r
}

// Merge folds another run's report into this one (exp1a runs one cluster
// per ablation arm).
func (r *PercentileReport) Merge(other *PercentileReport) {
	if other == nil {
		return
	}
	for name, h := range other.Hists {
		agg := r.Hists[name]
		agg.Merge(h)
		r.Hists[name] = agg
	}
	for kind, n := range other.Msgs {
		r.Msgs[kind] += n
	}
}

// String renders the per-event-class percentile table followed by the
// message-count breakdown.
func (r *PercentileReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Latency percentiles per event class (all sites merged)\n")
	fmt.Fprintf(&b, "  %-28s %8s %10s %10s %10s %10s %10s\n",
		"event", "n", "mean", "p50", "p95", "p99", "max")
	names := make([]string, 0, len(r.Hists))
	for name := range r.Hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.Hists[name]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-28s %8d %10v %10v %10v %10v %10v\n",
			name, h.Count,
			rndUs(h.Mean()), rndUs(h.Quantile(0.50)),
			rndUs(h.Quantile(0.95)), rndUs(h.Quantile(0.99)), rndUs(h.Max))
	}
	if len(r.Msgs) > 0 {
		fmt.Fprintf(&b, "Messages sent per kind\n")
		kinds := make([]string, 0, len(r.Msgs))
		for kind := range r.Msgs {
			kinds = append(kinds, kind)
		}
		sort.Strings(kinds)
		for _, kind := range kinds {
			fmt.Fprintf(&b, "  %-28s %8d\n", kind, r.Msgs[kind])
		}
	}
	return b.String()
}

func rndUs(d time.Duration) time.Duration { return d.Round(time.Microsecond) }

// p95p99 formats the tail of one event class for report columns; blank
// when the class was never observed.
func (r *PercentileReport) p95p99(name string) string {
	if r == nil {
		return ""
	}
	h, ok := r.Hists[name]
	if !ok || h.Count == 0 {
		return ""
	}
	return fmt.Sprintf("p95=%v p99=%v", rndUs(h.Quantile(0.95)), rndUs(h.Quantile(0.99)))
}
