package experiment

import (
	"fmt"
	"strings"

	"minraid/internal/core"
	"minraid/internal/failure"
	"minraid/internal/plot"
)

// Figure1Report reproduces experiment 2 (§3): data availability on a
// recovering site, the fail-lock count over one failure/recovery cycle.
type Figure1Report struct {
	Cfg Config
	Res *ScheduleResult
	// DownTxns is the length of the down window (paper: 100).
	DownTxns int
	// PeakLocked is the fail-lock count when the site came back up; the
	// paper observed "over 90% of the copies" locked.
	PeakLocked int
	// RecoveryTxns is the number of transactions from the site coming up
	// to full recovery (paper: 160).
	RecoveryTxns int
	// First10Txns and Last10Txns: transactions needed to clear the first
	// and the last ten fail-locks (paper: 6 and 106) — the convex decay
	// of §3.1.2.
	First10Txns int
	Last10Txns  int
}

// PeakPct is the peak fraction of the database fail-locked.
func (r Figure1Report) PeakPct() float64 {
	return 100 * float64(r.PeakLocked) / float64(r.Cfg.Items)
}

// String renders Figure 1 and its analysis.
func (r Figure1Report) String() string {
	var b strings.Builder
	b.WriteString(plot.Chart(
		fmt.Sprintf("Figure 1: data availability during failure and recovery (db=%d, maxops=%d)", r.Cfg.Items, r.Cfg.MaxOps),
		72, 16,
		[]plot.Series{{Name: "fail-locks set for site 0", Y: r.Res.FailLocks[0]}},
	))
	fmt.Fprintf(&b, "down window: %d txns; peak fail-locked: %d/%d (%.0f%%)\n",
		r.DownTxns, r.PeakLocked, r.Cfg.Items, r.PeakPct())
	fmt.Fprintf(&b, "full recovery after %d further txns; copiers requested: %d\n",
		r.RecoveryTxns, r.Res.Copiers)
	fmt.Fprintf(&b, "first 10 fail-locks cleared in %d txns; last 10 in %d txns\n",
		r.First10Txns, r.Last10Txns)
	fmt.Fprintf(&b, "aborts: %d (data: %d, detection: %d); %s\n",
		r.Res.Aborted, r.Res.DataAborts, r.Res.DetectionAborts, r.Res.AuditDetail)
	return b.String()
}

// RunFigure1 reproduces experiment 2's scenario (§3.1): 50 items, 2 sites,
// max transaction size 5; site 0 down for transactions 1-100, then
// recovering until every fail-lock clears (capped at capTxns).
func RunFigure1(cfg Config, capTxns int) (*Figure1Report, error) {
	cfg = cfg.withDefaults(2, 50, 5)
	if capTxns == 0 {
		capTxns = 2000
	}
	const downTxns = 100
	res, err := RunSchedule(cfg, failure.Figure1(0), capTxns)
	if err != nil {
		return nil, err
	}

	report := &Figure1Report{Cfg: cfg, Res: res, DownTxns: downTxns}
	series := res.FailLocks[core.SiteID(0)]
	if len(series) >= downTxns {
		report.PeakLocked = int(series[downTxns-1])
	}
	if res.FullyRecoveredAt > downTxns {
		report.RecoveryTxns = res.FullyRecoveredAt - downTxns
	}
	// Decay analysis (§3.1.2): transactions to clear the first and last
	// ten locks after recovery begins.
	peak := float64(report.PeakLocked)
	for i := downTxns; i < len(series); i++ {
		if series[i] <= peak-10 {
			report.First10Txns = i + 1 - downTxns
			break
		}
	}
	for i := downTxns; i < len(series); i++ {
		if series[i] <= 10 {
			if res.FullyRecoveredAt > 0 {
				report.Last10Txns = res.FullyRecoveredAt - (i + 1)
			}
			break
		}
	}
	return report, nil
}
