package experiment

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/txn"
	"minraid/internal/workload"
)

// ConcurrencyReport quantifies the paper's deferred future work: how much
// throughput interleaved execution under distributed strict 2PL buys over
// the paper's serial processing, as a function of the per-site concurrency
// bound.
type ConcurrencyReport struct {
	Sites, Items, Clients, TxnsPerClient int
	Delay                                time.Duration
	Rows                                 []ConcurrencyRow
}

// ConcurrencyRow is one sweep point. Lock-wait timeouts and deadlock
// victims are reported separately: timeouts respond to the lock-wait
// budget and the concurrency degree, deadlocks to the access pattern.
type ConcurrencyRow struct {
	Degree       int
	Committed    int
	LockAborts   int // lock-wait timeouts
	Deadlocks    int // waits-for cycle victims
	Elapsed      time.Duration
	TxnPerSecond float64
}

// String renders the sweep.
func (r ConcurrencyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: concurrent execution sweep (%d clients x %d txns, one coordinator, delay %v)\n",
		r.Clients, r.TxnsPerClient, r.Delay)
	fmt.Fprintf(&b, "  %8s %10s %13s %10s %10s %10s\n", "degree", "committed", "lock timeouts", "deadlocks", "elapsed", "txn/s")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %8d %10d %13d %10d %10v %10.0f\n",
			row.Degree, row.Committed, row.LockAborts, row.Deadlocks, row.Elapsed.Round(time.Millisecond), row.TxnPerSecond)
	}
	return b.String()
}

// RunConcurrencySweep drives parallel clients against one coordinator at
// several concurrency bounds. Clients work disjoint item ranges, so lock
// aborts reflect protocol overheads rather than data contention; degree 1
// is the paper's serial processing.
func RunConcurrencySweep(cfg Config, degrees []int, clients, perClient int) (*ConcurrencyReport, error) {
	cfg = cfg.withDefaults(3, 256, 4)
	if len(degrees) == 0 {
		degrees = []int{1, 2, 4, 8}
	}
	if clients == 0 {
		clients = 4
	}
	if perClient == 0 {
		perClient = 50
	}
	report := &ConcurrencyReport{
		Sites: cfg.Sites, Items: cfg.Items,
		Clients: clients, TxnsPerClient: perClient,
		Delay: cfg.Delay,
	}

	for _, degree := range degrees {
		ccfg := cfg.clusterConfig()
		ccfg.ConcurrentTxns = degree
		c, err := cluster.New(ccfg)
		if err != nil {
			return nil, err
		}
		row := ConcurrencyRow{Degree: degree}
		span := cfg.Items / clients
		var mu sync.Mutex
		var wg sync.WaitGroup
		var firstErr error
		start := time.Now()
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				base := core.ItemID(w * span)
				for i := 0; i < perClient; i++ {
					id := c.NextTxnID()
					item := base + core.ItemID(i%span)
					out, err := c.ExecTxn(0, id, []core.Op{
						core.Read(item),
						core.Write(item, workload.Payload(id, item)),
					})
					mu.Lock()
					switch {
					case err != nil:
						if firstErr == nil {
							firstErr = err
						}
					case out.Committed:
						row.Committed++
					case out.AbortReason == txn.AbortLockTimeout:
						row.LockAborts++
					case out.AbortReason == txn.AbortDeadlock:
						row.Deadlocks++
					default:
						if firstErr == nil {
							firstErr = fmt.Errorf("concurrency sweep: unexpected abort %q", out.AbortReason)
						}
					}
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		row.Elapsed = time.Since(start)
		row.TxnPerSecond = float64(row.Committed) / row.Elapsed.Seconds()
		c.Close()
		if firstErr != nil {
			return nil, firstErr
		}
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}
