package experiment

import (
	"fmt"
	"strings"
	"time"

	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/site"
	"minraid/internal/workload"
)

// Experiment 1 parameters (§2.2): 50 items, 4 sites, max transaction
// size 10.
const (
	exp1Items  = 50
	exp1Sites  = 4
	exp1MaxOps = 10
)

// FailLockOverheadReport is the §2.2.1 table: coordinator and participant
// transaction times with and without the fail-lock maintenance code.
type FailLockOverheadReport struct {
	Txns         int
	CoordWith    time.Duration
	CoordWithout time.Duration
	PartWith     time.Duration
	PartWithout  time.Duration
	// Percentiles holds the with-fail-locks arm's latency histograms
	// (the production configuration).
	Percentiles *PercentileReport
}

// CoordOverheadPct returns the coordinator-side overhead percentage
// (paper: 176->186 ms, +5.7%).
func (r FailLockOverheadReport) CoordOverheadPct() float64 {
	return pctIncrease(r.CoordWithout, r.CoordWith)
}

// PartOverheadPct returns the participant-side overhead percentage
// (paper: 90->97 ms, +7.8%).
func (r FailLockOverheadReport) PartOverheadPct() float64 {
	return pctIncrease(r.PartWithout, r.PartWith)
}

func pctIncrease(base, with time.Duration) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(with-base) / float64(base)
}

// String renders the §2.2.1 table.
func (r FailLockOverheadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment 1a: overhead for fail-locks maintenance (%d txns per cell)\n", r.Txns)
	fmt.Fprintf(&b, "%-20s %16s %16s %10s  %s\n", "", "without fail-locks", "with fail-locks", "overhead", "tail (with)")
	fmt.Fprintf(&b, "%-20s %16v %16v %9.1f%%  %s\n", "Coordinating site", r.CoordWithout.Round(time.Microsecond), r.CoordWith.Round(time.Microsecond), r.CoordOverheadPct(), r.Percentiles.p95p99(site.TimerCoordTxn))
	fmt.Fprintf(&b, "%-20s %16v %16v %9.1f%%  %s\n", "Participating site", r.PartWithout.Round(time.Microsecond), r.PartWith.Round(time.Microsecond), r.PartOverheadPct(), r.Percentiles.p95p99(site.TimerPartTxn))
	return b.String()
}

// RunOverheadFailLocks reproduces §2.2.1: run the same transaction set
// with the fail-lock maintenance code removed and then included, measuring
// coordinator and participant transaction times. "The transactions did not
// generate any copier transactions" — no failures occur.
func RunOverheadFailLocks(cfg Config, warmup, measured int) (*FailLockOverheadReport, error) {
	cfg = cfg.withDefaults(exp1Sites, exp1Items, exp1MaxOps)
	report := &FailLockOverheadReport{Txns: measured}

	for _, disable := range []bool{true, false} {
		ccfg := cfg.clusterConfig()
		ccfg.DisableFailLockMaintenance = disable
		coord, part, pct, err := measureTxnTimes(cfg, ccfg, warmup, measured)
		if err != nil {
			return nil, err
		}
		if disable {
			report.CoordWithout, report.PartWithout = coord, part
		} else {
			report.CoordWith, report.PartWith = coord, part
			report.Percentiles = pct
		}
	}
	return report, nil
}

// measureTxnTimes runs the paper's workload and returns the mean
// coordinator and participant transaction times over the measured window.
func measureTxnTimes(cfg Config, ccfg cluster.Config, warmup, measured int) (coord, part time.Duration, pct *PercentileReport, err error) {
	c, err := cluster.New(ccfg)
	if err != nil {
		return 0, 0, nil, err
	}
	defer c.Close()
	gen := workload.NewUniform(cfg.Items, cfg.MaxOps, cfg.Seed)

	runOne := func() error {
		id := c.NextTxnID()
		coordSite := core.SiteID(uint64(id) % uint64(cfg.Sites))
		out, err := c.ExecTxn(coordSite, id, gen.Next(id))
		if err != nil {
			return err
		}
		if !out.Committed {
			return fmt.Errorf("experiment 1: unexpected abort: %s", out.AbortReason)
		}
		return nil
	}

	// "The execution times of processing events were recorded after a
	// stable state of transaction processing was achieved" (§2.1).
	for i := 0; i < warmup; i++ {
		if err := runOne(); err != nil {
			return 0, 0, nil, err
		}
	}
	for i := 0; i < cfg.Sites; i++ {
		c.Registry(core.SiteID(i)).Reset()
	}
	for i := 0; i < measured; i++ {
		if err := runOne(); err != nil {
			return 0, 0, nil, err
		}
	}

	var coordTotal, partTotal time.Duration
	var coordN, partN uint64
	for i := 0; i < cfg.Sites; i++ {
		reg := c.Registry(core.SiteID(i))
		ct := reg.Timer(site.TimerCoordTxn)
		pt := reg.Timer(site.TimerPartTxn)
		coordTotal += ct.Total
		coordN += ct.Count
		partTotal += pt.Total
		partN += pt.Count
	}
	if coordN == 0 || partN == 0 {
		return 0, 0, nil, fmt.Errorf("experiment 1: no timer observations")
	}
	return coordTotal / time.Duration(coordN), partTotal / time.Duration(partN), CollectPercentiles(c), nil
}

// ControlOverheadReport is the §2.2.2 table: control-transaction costs.
type ControlOverheadReport struct {
	Rounds int
	// Type1Recovering: type-1 completion at the recovering site (paper:
	// 190 ms; grows with the number of sites).
	Type1Recovering time.Duration
	// Type1Operational: type-1 completion at an operational site (paper:
	// 50 ms; independent of the number of sites).
	Type1Operational time.Duration
	// Type2: type-2 completion per announced-to site (paper: 68 ms).
	Type2 time.Duration
	// Type2Fanout: wall time of one whole type-2 announcement fan-out —
	// every target contacted in parallel under one shared ack deadline,
	// so it tracks the slowest target, not the sum.
	Type2Fanout time.Duration
	// Percentiles holds the run's latency histograms per event class.
	Percentiles *PercentileReport
}

// String renders the §2.2.2 table.
func (r ControlOverheadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment 1b: overhead for control transactions (%d failure/recovery rounds)\n", r.Rounds)
	fmt.Fprintf(&b, "  %-44s %12v  %s\n", "Type 1 at recovering site", r.Type1Recovering.Round(time.Microsecond), r.Percentiles.p95p99(site.TimerCtrl1Recovering))
	fmt.Fprintf(&b, "  %-44s %12v  %s\n", "Type 1 at operational site", r.Type1Operational.Round(time.Microsecond), r.Percentiles.p95p99(site.TimerCtrl1Operational))
	fmt.Fprintf(&b, "  %-44s %12v  %s\n", "Type 2 (per announced-to site)", r.Type2.Round(time.Microsecond), r.Percentiles.p95p99(site.TimerCtrl2))
	fmt.Fprintf(&b, "  %-44s %12v  %s\n", "Type 2 fan-out (all targets, wall)", r.Type2Fanout.Round(time.Microsecond), r.Percentiles.p95p99(site.TimerCtrl2Fanout))
	return b.String()
}

// RunOverheadControl reproduces §2.2.2 by cycling one site through
// failure, detection and recovery `rounds` times and averaging the control
// transaction timers.
func RunOverheadControl(cfg Config, rounds int) (*ControlOverheadReport, error) {
	cfg = cfg.withDefaults(exp1Sites, exp1Items, exp1MaxOps)
	c, err := cluster.New(cfg.clusterConfig())
	if err != nil {
		return nil, err
	}
	defer c.Close()
	gen := workload.NewUniform(cfg.Items, cfg.MaxOps, cfg.Seed)

	victim := core.SiteID(0)
	detector := core.SiteID(1)
	for round := 0; round < rounds; round++ {
		if err := c.Fail(victim); err != nil {
			return nil, err
		}
		// A write transaction detects the failure and runs type 2.
		id := c.NextTxnID()
		if _, err := c.ExecTxn(detector, id, []core.Op{core.Write(core.ItemID(round%cfg.Items), workload.Payload(id, 0))}); err != nil {
			return nil, err
		}
		// A few transactions while the site is down, then recovery
		// (type 1).
		for i := 0; i < 3; i++ {
			id := c.NextTxnID()
			if _, err := c.ExecTxn(detector, id, gen.Next(id)); err != nil {
				return nil, err
			}
		}
		if _, err := c.Recover(victim); err != nil {
			return nil, err
		}
		// Clear the backlog of fail-locks so rounds stay uniform.
		for i := 0; i < cfg.Items; i++ {
			id := c.NextTxnID()
			if _, err := c.ExecTxn(victim, id, []core.Op{core.Read(core.ItemID(i))}); err != nil {
				return nil, err
			}
		}
	}

	report := &ControlOverheadReport{Rounds: rounds, Percentiles: CollectPercentiles(c)}
	report.Type1Recovering = c.Registry(victim).Timer(site.TimerCtrl1Recovering).Mean()
	var opTotal, t2Total, fanTotal time.Duration
	var opN, t2N, fanN uint64
	for i := 0; i < cfg.Sites; i++ {
		reg := c.Registry(core.SiteID(i))
		op := reg.Timer(site.TimerCtrl1Operational)
		opTotal += op.Total
		opN += op.Count
		t2 := reg.Timer(site.TimerCtrl2)
		t2Total += t2.Total
		t2N += t2.Count
		fan := reg.Timer(site.TimerCtrl2Fanout)
		fanTotal += fan.Total
		fanN += fan.Count
	}
	if opN > 0 {
		report.Type1Operational = opTotal / time.Duration(opN)
	}
	if t2N > 0 {
		report.Type2 = t2Total / time.Duration(t2N)
	}
	if fanN > 0 {
		report.Type2Fanout = fanTotal / time.Duration(fanN)
	}
	return report, nil
}

// CopierOverheadReport is the §2.2.3 table: copier transaction costs.
type CopierOverheadReport struct {
	Rounds int
	// TxnPlain is the mean database-transaction time without copiers.
	TxnPlain time.Duration
	// TxnWithCopier is the mean time for a database transaction that ran
	// one copier (paper: 270 ms, +45% over 186 ms).
	TxnWithCopier time.Duration
	// CopyServe is the donor-side service time (paper: 25 ms).
	CopyServe time.Duration
	// ClearFailLocks is the per-site cost of the special clearing
	// transaction (paper: 20 ms).
	ClearFailLocks time.Duration
	// ClearFanout is the wall time of one whole clear-fail-locks fan-out
	// (all ClearSites contacted in parallel under one shared deadline).
	ClearFanout time.Duration
	// ClearSites is the number of sites contacted by each special
	// transaction.
	ClearSites int
	// Percentiles holds the run's latency histograms per event class.
	Percentiles *PercentileReport
}

// IncreasePct is the copier-transaction cost increase (paper: 45%).
func (r CopierOverheadReport) IncreasePct() float64 {
	return pctIncrease(r.TxnPlain, r.TxnWithCopier)
}

// ClearSharePct estimates the share of the copier overhead attributable to
// the fail-lock-clearing special transaction (paper: ~30%): per-site clear
// cost times contacted sites, over the total overhead.
func (r CopierOverheadReport) ClearSharePct() float64 {
	over := r.TxnWithCopier - r.TxnPlain
	if over <= 0 {
		return 0
	}
	return 100 * float64(r.ClearFailLocks*time.Duration(r.ClearSites)) / float64(over)
}

// String renders the §2.2.3 table.
func (r CopierOverheadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment 1c: overhead for copier transactions (%d rounds)\n", r.Rounds)
	fmt.Fprintf(&b, "  %-44s %12v  %s\n", "Database txn without copier", r.TxnPlain.Round(time.Microsecond), r.Percentiles.p95p99(site.TimerCoordTxn))
	fmt.Fprintf(&b, "  %-44s %12v  (+%.0f%%)  %s\n", "Database txn with one copier", r.TxnWithCopier.Round(time.Microsecond), r.IncreasePct(), r.Percentiles.p95p99(site.TimerCoordTxnCopier))
	fmt.Fprintf(&b, "  %-44s %12v  %s\n", "Copy request service at donor", r.CopyServe.Round(time.Microsecond), r.Percentiles.p95p99(site.TimerCopyServe))
	fmt.Fprintf(&b, "  %-44s %12v  %s\n", "Clear-fail-locks special txn (per site)", r.ClearFailLocks.Round(time.Microsecond), r.Percentiles.p95p99(site.TimerClearFailLocks))
	fmt.Fprintf(&b, "  %-44s %12v  %s\n", "Clear-fail-locks fan-out (all sites, wall)", r.ClearFanout.Round(time.Microsecond), r.Percentiles.p95p99(site.TimerClearFanout))
	fmt.Fprintf(&b, "  %-44s %11.0f%%\n", "Share of copier overhead from clearing", r.ClearSharePct())
	return b.String()
}

// RunOverheadCopier reproduces §2.2.3: "a coordinating site received a
// database transaction which included a read operation for a fail-locked
// copy. A copier transaction was then run to get an up-to-date copy."
func RunOverheadCopier(cfg Config, rounds int) (*CopierOverheadReport, error) {
	cfg = cfg.withDefaults(exp1Sites, exp1Items, exp1MaxOps)
	c, err := cluster.New(cfg.clusterConfig())
	if err != nil {
		return nil, err
	}
	defer c.Close()
	gen := workload.NewUniform(cfg.Items, cfg.MaxOps, cfg.Seed)

	victim := core.SiteID(0)
	other := core.SiteID(1)
	for round := 0; round < rounds; round++ {
		item := core.ItemID(round % cfg.Items)
		if err := c.Fail(victim); err != nil {
			return nil, err
		}
		// Detect, then write the item so it fail-locks for the victim.
		id := c.NextTxnID()
		if _, err := c.ExecTxn(other, id, []core.Op{core.Write(item, workload.Payload(id, item))}); err != nil {
			return nil, err
		}
		id = c.NextTxnID()
		if out, err := c.ExecTxn(other, id, []core.Op{core.Write(item, workload.Payload(id, item))}); err != nil || !out.Committed {
			return nil, fmt.Errorf("experiment 1c: setup write failed: %v %v", out, err)
		}
		if _, err := c.Recover(victim); err != nil {
			return nil, err
		}
		// The measured transaction: a read of the fail-locked item plus
		// a typical op mix, coordinated at the recovering site.
		ops := append([]core.Op{core.Read(item)}, gen.Next(core.TxnID(round+1))...)
		id = c.NextTxnID()
		out, err := c.ExecTxn(victim, id, ops)
		if err != nil {
			return nil, err
		}
		if !out.Committed || out.Copiers == 0 {
			return nil, fmt.Errorf("experiment 1c: copier txn failed: committed=%v copiers=%d reason=%s", out.Committed, out.Copiers, out.AbortReason)
		}
		// Baseline transactions with no copiers, same shape.
		id = c.NextTxnID()
		if _, err := c.ExecTxn(victim, id, gen.Next(id)); err != nil {
			return nil, err
		}
	}

	report := &CopierOverheadReport{Rounds: rounds, ClearSites: cfg.Sites - 1, Percentiles: CollectPercentiles(c)}
	var plainTotal, copierTotal time.Duration
	var plainN, copierN uint64
	var serveTotal, clearTotal, clearFanTotal time.Duration
	var serveN, clearN, clearFanN uint64
	for i := 0; i < cfg.Sites; i++ {
		reg := c.Registry(core.SiteID(i))
		p := reg.Timer(site.TimerCoordTxn)
		plainTotal += p.Total
		plainN += p.Count
		cp := reg.Timer(site.TimerCoordTxnCopier)
		copierTotal += cp.Total
		copierN += cp.Count
		sv := reg.Timer(site.TimerCopyServe)
		serveTotal += sv.Total
		serveN += sv.Count
		cl := reg.Timer(site.TimerClearFailLocks)
		clearTotal += cl.Total
		clearN += cl.Count
		cf := reg.Timer(site.TimerClearFanout)
		clearFanTotal += cf.Total
		clearFanN += cf.Count
	}
	if plainN > 0 {
		report.TxnPlain = plainTotal / time.Duration(plainN)
	}
	if copierN > 0 {
		report.TxnWithCopier = copierTotal / time.Duration(copierN)
	}
	if serveN > 0 {
		report.CopyServe = serveTotal / time.Duration(serveN)
	}
	if clearN > 0 {
		report.ClearFailLocks = clearTotal / time.Duration(clearN)
	}
	if clearFanN > 0 {
		report.ClearFanout = clearFanTotal / time.Duration(clearFanN)
	}
	return report, nil
}
