package experiment

import (
	"strings"
	"testing"
	"time"

	"minraid/internal/core"
	"minraid/internal/failure"
)

// Experiment tests assert the paper's qualitative shapes with small
// parameter scaling where the full runs would be slow. The figure-shape
// tests run at zero delay (delay-independent); the experiment-1 timing
// tests inject a small per-hop delay so message costs dominate scheduler
// noise — on a loaded machine a zero-delay microsecond-scale comparison
// is meaningless, as it was on the paper's hardware too.

func TestRunScheduleFigure1Shape(t *testing.T) {
	cfg := Config{Sites: 2, Items: 50, MaxOps: 5, Seed: 7}
	res, err := RunSchedule(cfg, failure.Figure1(0), 2000)
	if err != nil {
		t.Fatal(err)
	}
	series := res.FailLocks[core.SiteID(0)]
	if len(series) < 100 {
		t.Fatalf("series too short: %d", len(series))
	}
	// Fail-locks rise while the site is down...
	peak := series[99]
	if peak < 0.9*50 {
		t.Errorf("peak fail-locked = %v, paper reports >90%% of 50", peak)
	}
	// ...are non-decreasing during the down window...
	for i := 1; i < 100; i++ {
		if series[i] < series[i-1] {
			t.Fatalf("fail-locks dropped during down window at txn %d", i+1)
		}
	}
	// ...and reach zero after recovery.
	if res.FullyRecoveredAt == 0 {
		t.Fatal("site never fully recovered")
	}
	if series[len(series)-1] != 0 {
		t.Errorf("final fail-lock count = %v", series[len(series)-1])
	}
	if !res.AuditOK {
		t.Errorf("audit failed: %s", res.AuditDetail)
	}
	if res.DataAborts != 0 {
		t.Errorf("figure 1 scenario should have no data aborts, got %d", res.DataAborts)
	}
}

func TestRunFigure1Analysis(t *testing.T) {
	rep, err := RunFigure1(Config{Seed: 7}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakPct() < 90 {
		t.Errorf("peak = %.0f%%, paper reports >90%%", rep.PeakPct())
	}
	if rep.RecoveryTxns == 0 {
		t.Error("no recovery span measured")
	}
	// The paper's convexity observation: the first ten locks clear much
	// faster than the last ten (6 vs 106 txns).
	if rep.First10Txns == 0 || rep.Last10Txns == 0 {
		t.Fatalf("decay analysis empty: first=%d last=%d", rep.First10Txns, rep.Last10Txns)
	}
	if rep.Last10Txns <= rep.First10Txns {
		t.Errorf("decay not convex: first 10 in %d txns, last 10 in %d", rep.First10Txns, rep.Last10Txns)
	}
	out := rep.String()
	for _, want := range []string{"Figure 1", "peak fail-locked", "first 10 fail-locks"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunFigure2ScenarioOne(t *testing.T) {
	rep, err := RunFigure2(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Res
	if res.Txns != 120 {
		t.Errorf("txns = %d, want 120", res.Txns)
	}
	// The defining feature: aborts for data unavailability while site 1
	// (the only donor) is down during site 0's recovery.
	if res.DataAborts == 0 {
		t.Error("scenario 1 produced no data-unavailability aborts; paper reports 13")
	}
	if !res.AuditOK {
		t.Errorf("audit failed: %s", res.AuditDetail)
	}
	// Both sites' curves rise and fall.
	for sid := core.SiteID(0); sid <= 1; sid++ {
		max := 0.0
		for _, v := range res.FailLocks[sid] {
			if v > max {
				max = v
			}
		}
		if max == 0 {
			t.Errorf("site %d never fail-locked", sid)
		}
	}
	if !strings.Contains(rep.String(), "scenario 1") {
		t.Error("report title wrong")
	}
}

func TestRunFigure3ScenarioTwo(t *testing.T) {
	rep, err := RunFigure3(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Res
	if res.Txns != 160 {
		t.Errorf("txns = %d, want 160", res.Txns)
	}
	// The paper's claim: no aborts due to data unavailability.
	if res.DataAborts != 0 {
		t.Errorf("scenario 2 produced %d data aborts; paper reports none", res.DataAborts)
	}
	if !res.AuditOK {
		t.Errorf("audit failed: %s", res.AuditDetail)
	}
	// Each site's curve peaks during its own down window.
	for sid := 0; sid < 4; sid++ {
		max := 0.0
		for _, v := range res.FailLocks[core.SiteID(sid)] {
			if v > max {
				max = v
			}
		}
		if max == 0 {
			t.Errorf("site %d never fail-locked", sid)
		}
	}
}

func TestOverheadFailLocks(t *testing.T) {
	rep, err := RunOverheadFailLocks(Config{Seed: 3, Delay: time.Millisecond}, 20, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CoordWith == 0 || rep.CoordWithout == 0 || rep.PartWith == 0 || rep.PartWithout == 0 {
		t.Fatalf("empty measurements: %+v", rep)
	}
	// Fail-lock maintenance is cheap: the paper saw +5.7%/+7.8%. With
	// zero network delay the relative overhead can be larger but must
	// stay small in absolute terms; sanity-bound it loosely.
	if rep.CoordWith < rep.CoordWithout/2 {
		t.Errorf("with-fail-locks coordinator time implausibly low: %+v", rep)
	}
	out := rep.String()
	if !strings.Contains(out, "Coordinating site") || !strings.Contains(out, "Participating site") {
		t.Errorf("report:\n%s", out)
	}
}

func TestOverheadControl(t *testing.T) {
	rep, err := RunOverheadControl(Config{Seed: 3, Delay: time.Millisecond}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Type1Recovering == 0 || rep.Type1Operational == 0 || rep.Type2 == 0 {
		t.Fatalf("empty control timings: %+v", rep)
	}
	// Type 1 at the recovering site spans one announcement per site and
	// must cost at least as much as the single-hop handler at an
	// operational site.
	if rep.Type1Recovering < rep.Type1Operational {
		t.Errorf("type1 recovering (%v) < type1 operational (%v)", rep.Type1Recovering, rep.Type1Operational)
	}
}

func TestOverheadCopier(t *testing.T) {
	rep, err := RunOverheadCopier(Config{Seed: 3, Delay: time.Millisecond}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TxnPlain == 0 || rep.TxnWithCopier == 0 {
		t.Fatalf("empty copier timings: %+v", rep)
	}
	// The paper's central observation: a transaction that runs a copier
	// is significantly more expensive (45% there).
	if rep.TxnWithCopier <= rep.TxnPlain {
		t.Errorf("copier txn (%v) not more expensive than plain (%v)", rep.TxnWithCopier, rep.TxnPlain)
	}
	if rep.CopyServe == 0 || rep.ClearFailLocks == 0 {
		t.Errorf("donor/clear timings missing: %+v", rep)
	}
	if rep.ClearSharePct() <= 0 {
		t.Errorf("clear share = %v", rep.ClearSharePct())
	}
}

func TestTwoStepRecoveryShortens(t *testing.T) {
	rep, err := RunTwoStepRecovery(Config{Seed: 11}, 0.9, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TwoStep >= rep.Baseline {
		t.Errorf("two-step (%d txns) did not beat baseline (%d txns)", rep.TwoStep, rep.Baseline)
	}
	if rep.TwoStepBatchCopiers == 0 {
		t.Error("batch mode issued no batch copiers")
	}
}

func TestReadFractionSweep(t *testing.T) {
	rep, err := RunReadFractionSweep(Config{Seed: 5}, []float64{0.3, 0.8}, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	lo, hi := rep.Rows[0], rep.Rows[1]
	// §5: with more reads, fewer write-driven clears, so recovery relies
	// more on copiers and/or takes longer.
	if hi.Copiers < lo.Copiers && hi.RecoveryTxns < lo.RecoveryTxns {
		t.Errorf("read-heavy run was strictly easier: %+v vs %+v", lo, hi)
	}
}

func TestPolicyComparison(t *testing.T) {
	rep, err := RunPolicyComparison(Config{Seed: 9, AckTimeout: 20 * time.Millisecond}, 60)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PolicyRow{}
	for _, row := range rep.Rows {
		byName[row.Policy] = row
	}
	rowaa, rowa, quorum := byName["rowaa"], byName["rowa"], byName["quorum"]
	if rowaa.Committed != rep.Txns {
		t.Errorf("ROWAA committed %d/%d with one site down", rowaa.Committed, rep.Txns)
	}
	if quorum.Committed != rep.Txns {
		t.Errorf("quorum committed %d/%d with a majority up", quorum.Committed, rep.Txns)
	}
	if rowa.WriteAborts == 0 {
		t.Error("ROWA aborted no writes with a site down — baseline broken")
	}
	if rowa.ReadAborts != 0 {
		t.Errorf("ROWA aborted %d read-only txns", rowa.ReadAborts)
	}
	if rowa.Committed >= rowaa.Committed {
		t.Error("ROWA availability should be strictly worse than ROWAA")
	}
}

func TestType3Study(t *testing.T) {
	rep, err := RunType3Study(Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EndangeredBefore == 0 {
		t.Fatal("setup produced no endangered items")
	}
	if rep.WithoutType3Remaining != rep.EndangeredBefore {
		t.Errorf("without type 3, endangered items changed: %d -> %d", rep.EndangeredBefore, rep.WithoutType3Remaining)
	}
	if rep.WithType3Remaining != 0 {
		t.Errorf("type 3 left %d items endangered", rep.WithType3Remaining)
	}
	if rep.Type3Txns == 0 {
		t.Error("no type-3 transactions recorded")
	}
}

func TestPartitionStudy(t *testing.T) {
	rep, err := RunPartitionStudy(Config{Seed: 21, AckTimeout: 20 * time.Millisecond}, 6)
	if err != nil {
		t.Fatal(err)
	}
	// ROWAA: both sides commit after detecting "failure" of the other —
	// split brain — and the audit must catch the divergence.
	if rep.ROWAAMinorityCommits == 0 || rep.ROWAAMajorityCommits == 0 {
		t.Errorf("ROWAA sides did not both make progress: %d / %d",
			rep.ROWAAMinorityCommits, rep.ROWAAMajorityCommits)
	}
	if !rep.ROWAADiverged {
		t.Error("audit missed the ROWAA split-brain divergence")
	}
	// Quorum: the minority is blocked, the majority proceeds, and after
	// healing version voting serves the fresh value.
	if rep.QuorumMinorityCommits != 0 {
		t.Errorf("quorum minority committed %d writes", rep.QuorumMinorityCommits)
	}
	if rep.QuorumMajorityCommits != rep.Txns {
		t.Errorf("quorum majority committed %d/%d", rep.QuorumMajorityCommits, rep.Txns)
	}
	if !rep.QuorumHealedReadFresh {
		t.Error("healed quorum read did not surface the majority value")
	}
	if !strings.Contains(rep.String(), "DIVERGED") {
		t.Error("report text missing divergence note")
	}
}

func TestMessageComplexity(t *testing.T) {
	rep, err := RunMessageComplexity(Config{Seed: 17}, []int{2, 4}, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range rep.Order {
		row := rep.Rows[name]
		if len(row) != 2 {
			t.Fatalf("%s row = %v", name, row)
		}
		// More sites, more messages — every policy writes to more
		// copies.
		if row[1] <= row[0] {
			t.Errorf("%s: messages did not grow with sites: %v", name, row)
		}
	}
	// Quorum pays a read round trip ROWAA does not.
	if rep.Rows["quorum"][1] <= rep.Rows["rowaa"][1] {
		t.Errorf("quorum (%v) not costlier than ROWAA (%v) at 4 sites",
			rep.Rows["quorum"][1], rep.Rows["rowaa"][1])
	}
}

func TestReplicationDegree(t *testing.T) {
	rep, err := RunReplicationDegree(Config{Seed: 23, AckTimeout: 20 * time.Millisecond}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Degree 1: items hosted solely on the dead site are unreachable.
	if rep.Rows[0].UnavailableAborts == 0 {
		t.Error("degree 1 with a dead site produced no unavailable aborts")
	}
	// Full replication: every transaction commits.
	last := rep.Rows[len(rep.Rows)-1]
	if last.Degree != 4 || last.CommittedPct != 100 {
		t.Errorf("full replication row: %+v", last)
	}
	// Availability is monotone in degree.
	for i := 1; i < len(rep.Rows); i++ {
		if rep.Rows[i].CommittedPct < rep.Rows[i-1].CommittedPct {
			t.Errorf("availability not monotone: %+v", rep.Rows)
		}
	}
}

func TestReportStrings(t *testing.T) {
	// Every report renders non-empty, labelled text; these are the
	// artefacts EXPERIMENTS.md captures.
	cases := map[string]interface{ String() string }{
		"control": ControlOverheadReport{Rounds: 3, Type1Recovering: time.Millisecond, Type1Operational: time.Microsecond, Type2: time.Millisecond},
		"copier": CopierOverheadReport{Rounds: 3, TxnPlain: time.Millisecond, TxnWithCopier: 2 * time.Millisecond,
			CopyServe: time.Microsecond, ClearFailLocks: time.Microsecond, ClearSites: 3},
		"twostep":   TwoStepRecoveryReport{Threshold: 0.5, Baseline: 100, TwoStep: 10},
		"readfrac":  ReadFractionReport{Rows: []ReadFractionRow{{ReadFraction: 0.5, PeakLocked: 45, RecoveryTxns: 100, Copiers: 10}}},
		"policies":  PolicyComparisonReport{Txns: 10, Rows: []PolicyRow{{Policy: "rowaa", Committed: 10}}},
		"type3":     Type3Report{EndangeredBefore: 5, Type3Txns: 1},
		"partition": PartitionReport{Txns: 5, ROWAADiverged: true, QuorumHealedReadFresh: true},
		"messages": MessageComplexityReport{TxnsPerCell: 10, SiteCounts: []int{2, 4},
			Rows: map[string][]float64{"rowaa": {5, 10}}, Order: []string{"rowaa"}},
		"degree": ReplicationDegreeReport{Sites: 4, Txns: 10, Rows: []ReplicationDegreeRow{{Degree: 2, CommittedPct: 100}}},
	}
	for name, rep := range cases {
		out := rep.String()
		if len(out) < 20 || !strings.Contains(out, "\n") {
			t.Errorf("%s report renders %q", name, out)
		}
	}
	// Derived percentages.
	cop := cases["copier"].(CopierOverheadReport)
	if cop.IncreasePct() != 100 {
		t.Errorf("IncreasePct = %v", cop.IncreasePct())
	}
	if cop.ClearSharePct() <= 0 {
		t.Errorf("ClearSharePct = %v", cop.ClearSharePct())
	}
}

func TestConcurrencySweep(t *testing.T) {
	rep, err := RunConcurrencySweep(Config{
		Seed: 31, Delay: 200 * time.Microsecond, AckTimeout: 100 * time.Millisecond,
	}, []int{1, 4}, 4, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	serial, conc := rep.Rows[0], rep.Rows[1]
	if serial.Committed != 100 {
		t.Errorf("serial committed %d/100", serial.Committed)
	}
	// Disjoint working sets: almost everything commits at degree 4 too.
	if conc.Committed+conc.LockAborts != 100 {
		t.Errorf("degree-4 accounting: %d + %d != 100", conc.Committed, conc.LockAborts)
	}
	// With real message costs, interleaving must raise throughput.
	if conc.TxnPerSecond <= serial.TxnPerSecond {
		t.Errorf("no concurrency gain: serial %.0f txn/s, degree 4 %.0f txn/s",
			serial.TxnPerSecond, conc.TxnPerSecond)
	}
}
