package experiment

import (
	"runtime"
	"testing"
	"time"
)

// TestProcSoakCrashCycles is the acceptance pin for the process fabric: a
// soak over exec'd raidsrv sites must survive at least two SIGKILL +
// re-exec/WAL-replay/type-1 cycles with every per-epoch audit clean. It
// builds raidsrv from source and delivers real signals, so it is skipped
// under -short and on non-Linux platforms.
func TestProcSoakCrashCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("process fabric soak skipped in -short mode")
	}
	if runtime.GOOS != "linux" {
		t.Skip("process fabric soak requires SIGKILL semantics; linux only")
	}
	cfg := SoakConfig{
		Base: Config{
			Sites:      3,
			Items:      20,
			AckTimeout: 200 * time.Millisecond,
		},
		Seeds:         []int64{1},
		EpochsPerSeed: 2,
		TxnsPerEpoch:  30,
		Fabric:        "proc",
		WorkDir:       t.TempDir(),
		Logf:          t.Logf,
	}
	res, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kills, restarts := 0, 0
	for _, e := range res.Epochs {
		kills += e.Kills
		restarts += e.Restarts
		if !e.AuditOK {
			t.Errorf("seed %d epoch %d audit failed: %s", e.Seed, e.Epoch, e.AuditDetail)
		}
	}
	// The acceptance bar: at least two full crash cycles actually
	// happened, and they were real restarts (exec + WAL replay), not
	// skipped events.
	if kills < 2 || restarts < 2 {
		t.Fatalf("want >= 2 SIGKILL/restart cycles, got %d kills, %d restarts", kills, restarts)
	}
	if !res.OK() {
		t.Fatalf("proc soak violations:\n%s", res)
	}
	if res.Committed == 0 {
		t.Fatal("no transaction ever committed")
	}
}

// TestProcSoakRejectsInProcessMechanisms pins the validation boundary:
// chaos, partitions, scrub, the in-process WAL carry and the memory
// transport are simulation-side mechanisms and must be refused, not
// silently ignored, under the process fabric.
func TestProcSoakRejectsInProcessMechanisms(t *testing.T) {
	base := SoakConfig{Fabric: "proc", Seeds: []int64{1}}
	bad := []func(*SoakConfig){
		func(c *SoakConfig) { c.Chaos.Drop = 0.1 },
		func(c *SoakConfig) { c.Partitions = true },
		func(c *SoakConfig) { c.Scrub = true },
		func(c *SoakConfig) { c.Transport = "memory" },
		func(c *SoakConfig) { c.WALDir = t.TempDir() },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if _, err := RunSoak(cfg); err == nil {
			t.Errorf("case %d: in-process mechanism accepted under proc fabric", i)
		}
	}
	if _, err := RunSoak(SoakConfig{Fabric: "bogus"}); err == nil {
		t.Error("unknown fabric accepted")
	}
}
