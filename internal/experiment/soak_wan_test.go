package experiment

import (
	"testing"
	"time"

	"minraid/internal/policy"
)

// The WAN soak regime: compiled geo profile link delays, region-sized
// partition events, and optionally the epoch-batched commit mode. Ack
// timeouts must clear the profile's inter-region round trip — wan3 tops
// out under 10ms one-way, so 40ms leaves slack for jitter and wire cost.

func wanSoakConfig(seeds []int64, txns int) SoakConfig {
	return SoakConfig{
		Base: Config{
			Sites:      6,
			Items:      24,
			AckTimeout: 40 * time.Millisecond,
		},
		Seeds:        seeds,
		TxnsPerEpoch: txns,
		Partitions:   true,
		WANProfile:   "wan3",
	}
}

// TestSoakWANRegionPartitions: the full WAN regime under stock ROWAA —
// every epoch audits clean, every fault is region-sized, and the compiled
// link matrix is fingerprinted for repro checks.
func TestSoakWANRegionPartitions(t *testing.T) {
	seeds := []int64{1, 2}
	txns := 24
	if testing.Short() {
		seeds = seeds[:1]
		txns = 16
	}
	res, err := RunSoak(wanSoakConfig(seeds, txns))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("WAN soak regression: %d audit violations:\n%s", res.Violations, res)
	}
	for _, e := range res.Epochs {
		if e.WANProfile != "wan3" {
			t.Fatalf("seed %d epoch %d lost its WAN profile: %q", e.Seed, e.Epoch, e.WANProfile)
		}
		if e.WANFingerprint == 0 {
			t.Fatalf("seed %d epoch %d has no WAN matrix fingerprint", e.Seed, e.Epoch)
		}
		if e.WANRegions == "" {
			t.Fatalf("seed %d epoch %d has no region rendering", e.Seed, e.Epoch)
		}
		if len(e.NetEvents) == 0 {
			t.Fatalf("seed %d epoch %d scheduled no region events", e.Seed, e.Epoch)
		}
	}
	// Same seed ⇒ same compiled matrix; the repro flag depends on this.
	bySeed := map[int64]uint64{}
	for _, e := range res.Epochs {
		if prev, ok := bySeed[e.Seed]; ok && prev != e.WANFingerprint {
			t.Fatalf("seed %d compiled two matrices: %016x vs %016x", e.Seed, prev, e.WANFingerprint)
		}
		bySeed[e.Seed] = e.WANFingerprint
	}
}

// TestSoakWANEpochCommit: the tentpole combination — epoch-batched commit
// under WAN delays and region partitions still converges to clean audits.
func TestSoakWANEpochCommit(t *testing.T) {
	seeds := []int64{1, 2}
	txns := 24
	if testing.Short() {
		seeds = seeds[:1]
		txns = 16
	}
	cfg := wanSoakConfig(seeds, txns)
	cfg.Concurrency = 4
	cfg.CommitEpoch = 2 * time.Millisecond
	res, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("WAN epoch-commit soak regression: %d audit violations:\n%s", res.Violations, res)
	}
	if res.Committed == 0 {
		t.Fatal("no transaction committed through the epoch batcher")
	}
}

// TestSoakWANDeterministic: two identical WAN soak runs produce identical
// epoch results — the property the -repro flag verifies in anger.
func TestSoakWANDeterministic(t *testing.T) {
	cfg := wanSoakConfig([]int64{7}, 16)
	a, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Epochs[0], b.Epochs[0]
	if ea.WANFingerprint != eb.WANFingerprint || ea.WANRegions != eb.WANRegions {
		t.Fatalf("WAN matrix not reproducible:\n%s %016x\n%s %016x",
			ea.WANRegions, ea.WANFingerprint, eb.WANRegions, eb.WANFingerprint)
	}
	if ea.WorkloadFingerprint != eb.WorkloadFingerprint || ea.NetFingerprint != eb.NetFingerprint {
		t.Fatal("workload or net schedule diverged between identical WAN runs")
	}
}

// TestSoakRejectsEpochWithoutRowaa: SoakConfig surfaces the site-level
// guardrail instead of failing deep inside an epoch.
func TestSoakRejectsEpochWithoutRowaa(t *testing.T) {
	cfg := wanSoakConfig([]int64{1}, 8)
	cfg.Base.Policy = policy.Quorum{}
	cfg.CommitEpoch = 2 * time.Millisecond
	if _, err := RunSoak(cfg); err == nil {
		t.Fatal("soak accepted epoch commit with a quorum policy")
	}
}
