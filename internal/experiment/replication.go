package experiment

import (
	"fmt"
	"strings"

	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/txn"
	"minraid/internal/workload"
)

// ReplicationDegreeReport sweeps the replication degree under one site
// failure — quantifying the trade the paper's §3.2 partial-replication
// discussion gestures at: fewer copies cost availability (some items lose
// their last copy when a site dies) but save write messages.
type ReplicationDegreeReport struct {
	Sites, Items, Txns int
	Rows               []ReplicationDegreeRow
}

// ReplicationDegreeRow is one sweep point.
type ReplicationDegreeRow struct {
	Degree int
	// CommittedPct is the fraction of transactions that committed with
	// one site down.
	CommittedPct float64
	// UnavailableAborts counts aborts because an item had no available
	// copy (read or write).
	UnavailableAborts int
	// MsgsPerTxn is the mean message count per transaction.
	MsgsPerTxn float64
}

// String renders the sweep.
func (r ReplicationDegreeReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: replication degree vs availability (%d sites, one down, %d txns)\n", r.Sites, r.Txns)
	fmt.Fprintf(&b, "  %8s %12s %20s %12s\n", "degree", "committed", "unavailable aborts", "msgs/txn")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %8d %11.0f%% %20d %12.1f\n",
			row.Degree, row.CommittedPct, row.UnavailableAborts, row.MsgsPerTxn)
	}
	return b.String()
}

// RunReplicationDegree sweeps the replication degree from 1 to full on a
// system with one failed site, measuring commit rate and message cost.
func RunReplicationDegree(cfg Config, txns int) (*ReplicationDegreeReport, error) {
	cfg = cfg.withDefaults(4, 50, 5)
	if txns == 0 {
		txns = 150
	}
	report := &ReplicationDegreeReport{Sites: cfg.Sites, Items: cfg.Items, Txns: txns}

	for degree := 1; degree <= cfg.Sites; degree++ {
		ccfg := cfg.clusterConfig()
		if degree < cfg.Sites {
			ccfg.Replicas = core.RoundRobinReplication(cfg.Items, cfg.Sites, degree)
		}
		c, err := cluster.New(ccfg)
		if err != nil {
			return nil, err
		}
		gen := workload.NewUniform(cfg.Items, cfg.MaxOps, cfg.Seed)

		if err := c.Fail(core.SiteID(cfg.Sites - 1)); err != nil {
			c.Close()
			return nil, err
		}
		// Detection write so the vector converges before measuring.
		id := c.NextTxnID()
		if _, err := c.ExecTxn(0, id, []core.Op{core.Write(0, workload.Payload(id, 0))}); err != nil {
			c.Close()
			return nil, err
		}

		row := ReplicationDegreeRow{Degree: degree}
		before := c.MessagesSent()
		for i := 0; i < txns; i++ {
			id := c.NextTxnID()
			out, err := c.ExecTxn(core.SiteID(i%(cfg.Sites-1)), id, gen.Next(id))
			if err != nil {
				c.Close()
				return nil, err
			}
			switch {
			case out.Committed:
				row.CommittedPct++
			case out.AbortReason == txn.AbortWriteUnavailable || out.AbortReason == txn.AbortNoDonor:
				row.UnavailableAborts++
			}
		}
		row.CommittedPct = 100 * row.CommittedPct / float64(txns)
		row.MsgsPerTxn = float64(c.MessagesSent()-before) / float64(txns)
		report.Rows = append(report.Rows, row)
		c.Close()
	}
	return report, nil
}
