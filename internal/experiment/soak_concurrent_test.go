package experiment

import (
	"reflect"
	"testing"
	"time"

	"minraid/internal/transport"
	"minraid/internal/txn"
)

// concurrentSoakConfig is the full fault model under interleaved
// execution: probabilistic chaos (drops, dups, jitter) plus scheduled
// partitions, driven at per-site degree 4 through the wave-based
// open-loop issue path.
func concurrentSoakConfig(seeds []int64, txns int) SoakConfig {
	return SoakConfig{
		Base: Config{
			Sites:      4,
			Items:      20,
			AckTimeout: 40 * time.Millisecond,
		},
		Seeds:        seeds,
		TxnsPerEpoch: txns,
		Concurrency:  4,
		Chaos: transport.ChaosConfig{
			Drop:      0.03,
			Dup:       0.03,
			MaxJitter: 4 * time.Millisecond,
		},
		Partitions: true,
	}
}

// TestSoakConcurrentChaosPartitions runs the concurrent regression corpus:
// degree-4 interleaved execution with chaos drops and scheduled link cuts,
// and every epoch must still audit clean — replicas identical, fail-locks
// drained. Aborts may only carry the defined retriable reasons; in
// particular, deadlock victims and lock-wait timeouts must be reported as
// distinct reasons, never folded together.
func TestSoakConcurrentChaosPartitions(t *testing.T) {
	seeds := []int64{1, 2, 3}
	txns := 30
	if testing.Short() {
		seeds = seeds[:2]
		txns = 20
	}
	res, err := RunSoak(concurrentSoakConfig(seeds, txns))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("concurrent soak regression: %d audit violations:\n%s", res.Violations, res)
	}
	for _, e := range res.Epochs {
		if e.Concurrency != 4 {
			t.Fatalf("seed %d epoch %d ran at degree %d, want 4", e.Seed, e.Epoch, e.Concurrency)
		}
	}
	for reason := range res.AbortReasons {
		switch reason {
		case txn.AbortLockTimeout, txn.AbortDeadlock, txn.AbortParticipantDown,
			txn.AbortSiteDown, txn.AbortStaleSession, txn.AbortNoDonor,
			txn.AbortDonorDown, txn.AbortWriteUnavailable:
		default:
			t.Errorf("unexpected abort reason under concurrency: %q", reason)
		}
	}
}

// TestSoakConcurrentDeterministic is the concurrent-mode -repro witness:
// the same seed must issue the bit-identical transaction stream (IDs,
// coordinators, operations — the workload fingerprint) against the
// bit-identical fail/recover and partition schedules, across two full
// runs. Outcomes and per-link chaos counters are allowed to race — the
// injected world is deterministic even when the execution inside it is
// not.
func TestSoakConcurrentDeterministic(t *testing.T) {
	cfg := concurrentSoakConfig([]int64{1}, 20)
	a, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Epochs[0], b.Epochs[0]
	if ea.WorkloadFingerprint == 0 {
		t.Fatal("epoch has no workload fingerprint")
	}
	if ea.WorkloadFingerprint != eb.WorkloadFingerprint {
		t.Fatalf("same seed issued different workloads: %016x vs %016x",
			ea.WorkloadFingerprint, eb.WorkloadFingerprint)
	}
	if !reflect.DeepEqual(ea.FailEvents, eb.FailEvents) {
		t.Fatalf("same seed produced different failure schedules:\nfirst: %v\nrerun: %v",
			ea.FailEvents, eb.FailEvents)
	}
	if !reflect.DeepEqual(ea.NetEvents, eb.NetEvents) || ea.NetFingerprint != eb.NetFingerprint {
		t.Fatalf("same seed produced different partition schedules:\nfirst: %016x %v\nrerun: %016x %v",
			ea.NetFingerprint, ea.NetEvents, eb.NetFingerprint, eb.NetEvents)
	}
	if len(ea.FailEvents) == 0 {
		t.Fatal("epoch scheduled no failure events — the corpus is not exercising recovery")
	}
}
