package experiment

import (
	"strings"
	"testing"
	"time"
)

// TestWANBenchSmoke: a short two-pass run of the WAN commit-mode bench.
// Both passes must complete audit-clean over the identical seeded
// workload and land in one comparable report. Throughput ordering is NOT
// asserted at this scale — a few dozen transactions under WAN delays is
// noise; the full-size ordering claim lives in the committed BENCH_wan
// baseline and its CI gate.
func TestWANBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("WAN bench pays real link delays")
	}
	cfg := WANBenchConfig{
		Txns:        30,
		Concurrency: 4,
		WALDir:      t.TempDir(),
	}
	rep, err := RunWANBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ROWAA == nil || rep.Epoch == nil {
		t.Fatalf("report missing a pass: %+v", rep)
	}
	for name, m := range map[string]*BenchMode{"rowaa": rep.ROWAA, "epoch": rep.Epoch} {
		if m.Txns != 30 {
			t.Errorf("%s pass ran %d txns, want 30", name, m.Txns)
		}
		if m.Committed == 0 {
			t.Errorf("%s pass committed nothing", name)
		}
		if m.OpsPerSec <= 0 {
			t.Errorf("%s pass reports %v ops/sec", name, m.OpsPerSec)
		}
	}
	if rep.WANFingerprint == 0 {
		t.Error("report carries no WAN matrix fingerprint")
	}
	if rep.SpeedupX <= 0 {
		t.Errorf("speedup not computed: %v", rep.SpeedupX)
	}
	if !strings.Contains(rep.Regions, rep.Profile) {
		t.Errorf("region rendering %q does not name profile %q", rep.Regions, rep.Profile)
	}
}

// TestWANBenchSinglePass: -commit rowaa / -commit epoch runs populate only
// their slot, so separate invocations can be merged into one report.
func TestWANBenchSinglePass(t *testing.T) {
	if testing.Short() {
		t.Skip("WAN bench pays real link delays")
	}
	cfg := WANBenchConfig{
		Txns:        16,
		Concurrency: 4,
		WALDir:      t.TempDir(),
	}
	rep, err := RunWANBenchOne(cfg, "epoch")
	if err != nil {
		t.Fatal(err)
	}
	if rep.ROWAA != nil || rep.Epoch == nil {
		t.Fatalf("epoch-only run filled the wrong slots: rowaa=%v epoch=%v", rep.ROWAA, rep.Epoch)
	}
	if rep.SpeedupX != 0 {
		t.Fatalf("speedup computed from a single pass: %v", rep.SpeedupX)
	}
	if _, err := RunWANBenchOne(cfg, "both"); err == nil {
		t.Fatal("RunWANBenchOne accepted an unknown mode")
	}
}

// TestWANBenchRejectsOversizedEpoch: the epoch must stay under the ack
// timeout or a batched commit reads as a lost coordinator.
func TestWANBenchRejectsOversizedEpoch(t *testing.T) {
	cfg := WANBenchConfig{
		CommitEpoch: 3 * time.Second,
	}
	if _, err := RunWANBench(cfg); err == nil {
		t.Fatal("accepted a commit epoch above the ack timeout")
	}
}
