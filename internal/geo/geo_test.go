package geo

import (
	"reflect"
	"testing"
	"time"

	"minraid/internal/core"
	"minraid/internal/transport"
)

func TestLookupKnowsBuiltins(t *testing.T) {
	for _, name := range Names() {
		p, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("Lookup(%s) returned profile %q", name, p.Name)
		}
	}
	if _, err := Lookup("wan99"); err == nil {
		t.Fatal("Lookup accepted an unknown profile")
	}
}

func TestCompileDeterministic(t *testing.T) {
	p, err := Lookup("wan3")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Compile(p, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(p, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Links, b.Links) {
		t.Fatal("same (profile, sites, seed) compiled different link matrices")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ: %016x vs %016x", a.Fingerprint(), b.Fingerprint())
	}

	c, err := Compile(p, 6, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds produced identical fingerprints")
	}

	p2, err := Lookup("wan2")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compile(p2, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("different profiles produced identical fingerprints")
	}
}

func TestCompileRoundRobinAssignment(t *testing.T) {
	p, err := Lookup("wan3")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(p, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2, 0, 1}; !reflect.DeepEqual(c.Assignment, want) {
		t.Fatalf("assignment = %v, want %v", c.Assignment, want)
	}
	if want := []core.SiteID{0, 3}; !reflect.DeepEqual(c.RegionSites(0), want) {
		t.Fatalf("RegionSites(0) = %v, want %v", c.RegionSites(0), want)
	}
	if got := c.String(); got != "wan3 us-east={0,3} eu-west={1,4} ap-south={2}" {
		t.Fatalf("String() = %q", got)
	}
}

// TestCompileAsymmetricSkew: the two directions of an inter-region link
// draw independent skews, so A->B and B->A differ, while both stay within
// the profile's skew band around the region-pair base latency.
func TestCompileAsymmetricSkew(t *testing.T) {
	p, err := Lookup("wan3")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(p, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	asym := 0
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			ab := c.Links[transport.LinkID{From: core.SiteID(a), To: core.SiteID(b)}]
			ba := c.Links[transport.LinkID{From: core.SiteID(b), To: core.SiteID(a)}]
			if ab.BaseDelay != ba.BaseDelay {
				asym++
			}
			base := p.Latency[c.Assignment[a]][c.Assignment[b]]
			lo := time.Duration(float64(base) * (1 - p.Skew))
			hi := time.Duration(float64(base) * (1 + p.Skew))
			for _, d := range []time.Duration{ab.BaseDelay, ba.BaseDelay} {
				if d < lo || d > hi {
					t.Fatalf("link %d<->%d base delay %v outside [%v, %v]", a, b, d, lo, hi)
				}
			}
		}
	}
	if asym == 0 {
		t.Fatal("every inter-region link pair compiled symmetric delays")
	}
}

// TestCompileIntraVsInter: intra-region links come out faster than
// inter-region ones even after skew — the ratio the WAN regime is about.
func TestCompileIntraVsInter(t *testing.T) {
	p, err := Lookup("wan3")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(p, 6, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Sites 0 and 3 share us-east; site 1 is eu-west.
	intra := c.Links[transport.LinkID{From: 0, To: 3}]
	inter := c.Links[transport.LinkID{From: 0, To: 1}]
	if intra.BaseDelay >= inter.BaseDelay {
		t.Fatalf("intra-region base %v not below inter-region %v", intra.BaseDelay, inter.BaseDelay)
	}
	if intra.PerMsgCost >= inter.PerMsgCost {
		t.Fatalf("intra-region wire cost %v not below inter-region %v", intra.PerMsgCost, inter.PerMsgCost)
	}
	if max := c.MaxBaseDelay(); max < inter.BaseDelay {
		t.Fatalf("MaxBaseDelay %v below a compiled link's %v", max, inter.BaseDelay)
	}
}

func TestCompileRejectsBadInputs(t *testing.T) {
	p, err := Lookup("wan3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(p, 2, 1); err == nil {
		t.Fatal("compiled 2 sites over 3 regions")
	}
	bad := p
	bad.Skew = 1.5
	if _, err := Compile(bad, 6, 1); err == nil {
		t.Fatal("accepted skew outside [0,1)")
	}
	bad = p
	bad.Latency = bad.Latency[:2]
	if _, err := Compile(bad, 6, 1); err == nil {
		t.Fatal("accepted a truncated latency matrix")
	}
}
