// Package geo compiles named WAN profiles into per-directed-link chaos
// configurations. A profile assigns sites to named regions round-robin
// and gives every region pair a one-way base latency, a jitter bound and
// a per-message serialization cost; Compile turns that matrix into a
// transport.LinkChaos per directed link, deterministically from
// (profile, sites, seed).
//
// Inter-region delays come out asymmetric on purpose: each directed link
// perturbs its region-pair base latency by a seeded factor in
// [1-Skew, 1+Skew], drawn per (seed, profile, from, to) — so A→B and
// B→A differ, as real WAN routes do, while two runs with the same seed
// see bit-identical link matrices. The compiled profile fingerprints
// (region map + link matrix) so -repro can verify a geo run end to end.
//
// The paper's experiments model a 9ms LAN hop ("communication delay",
// §4); the profiles here keep that flavor of scaled-down model time —
// sub-millisecond intra-region, a few milliseconds cross-region — so WAN
// regimes stay well inside the harness's ack timeouts while preserving
// the ~10..30x intra/inter latency ratio that makes commit fan-out cost
// dominate in geo-replication.
package geo

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"minraid/internal/core"
	"minraid/internal/transport"
)

// Profile is a named WAN shape: regions and the per-region-pair link
// parameters. Matrices are indexed [from][to] and are typically
// symmetric — asymmetry is added per directed link at compile time.
type Profile struct {
	Name    string
	Regions []string
	// Latency is the one-way base propagation delay between regions;
	// Latency[i][i] is the intra-region delay.
	Latency [][]time.Duration
	// Jitter bounds the seeded extra hold on top of the base delay.
	Jitter [][]time.Duration
	// PerMsgCost is the per-message wire occupancy (serialization cost):
	// cross-region pipes are thin, so fan-out bursts on them queue.
	PerMsgCost [][]time.Duration
	// Skew is the maximum fractional perturbation of a directed link's
	// base latency: each link draws a factor in [1-Skew, 1+Skew].
	Skew float64
}

// validate checks the profile's matrix dimensions.
func (p Profile) validate() error {
	n := len(p.Regions)
	if n < 2 {
		return fmt.Errorf("geo: profile %q has %d region(s), need >= 2", p.Name, n)
	}
	for name, m := range map[string][][]time.Duration{
		"latency": p.Latency, "jitter": p.Jitter, "permsgcost": p.PerMsgCost,
	} {
		if len(m) != n {
			return fmt.Errorf("geo: profile %q %s matrix is %dx, need %dx%d", p.Name, name, len(m), n, n)
		}
		for i, row := range m {
			if len(row) != n {
				return fmt.Errorf("geo: profile %q %s row %d has %d entries, need %d", p.Name, name, i, len(row), n)
			}
		}
	}
	if p.Skew < 0 || p.Skew >= 1 {
		return fmt.Errorf("geo: profile %q skew %v out of [0,1)", p.Name, p.Skew)
	}
	return nil
}

// sym builds a symmetric matrix from the upper triangle given as
// pairs[i][j-i-1] for j > i, with diag on the diagonal.
func sym(n int, diag time.Duration, pairs ...time.Duration) [][]time.Duration {
	m := make([][]time.Duration, n)
	for i := range m {
		m[i] = make([]time.Duration, n)
		m[i][i] = diag
	}
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m[i][j] = pairs[k]
			m[j][i] = pairs[k]
			k++
		}
	}
	return m
}

// uniform builds an n x n matrix with diag on the diagonal and off
// everywhere else.
func uniform(n int, diag, off time.Duration) [][]time.Duration {
	m := make([][]time.Duration, n)
	for i := range m {
		m[i] = make([]time.Duration, n)
		for j := range m[i] {
			if i == j {
				m[i][j] = diag
			} else {
				m[i][j] = off
			}
		}
	}
	return m
}

// profiles holds the built-in WAN shapes. Latencies are model-time (see
// package comment): intra-region links are LAN-ish, cross-region links
// are 10-30x slower with thin pipes.
var profiles = map[string]Profile{
	"wan2": {
		Name:    "wan2",
		Regions: []string{"us-east", "eu-west"},
		Latency: sym(2, 200*time.Microsecond,
			3*time.Millisecond), // us<->eu
		Jitter: sym(2, 100*time.Microsecond,
			600*time.Microsecond),
		PerMsgCost: uniform(2, 20*time.Microsecond, 150*time.Microsecond),
		Skew:       0.25,
	},
	"wan3": {
		Name:    "wan3",
		Regions: []string{"us-east", "eu-west", "ap-south"},
		Latency: sym(3, 200*time.Microsecond,
			3*time.Millisecond, // us<->eu
			6*time.Millisecond, // us<->ap
			5*time.Millisecond, // eu<->ap
		),
		Jitter: sym(3, 100*time.Microsecond,
			600*time.Microsecond,
			1200*time.Microsecond,
			1000*time.Microsecond,
		),
		PerMsgCost: uniform(3, 20*time.Microsecond, 150*time.Microsecond),
		Skew:       0.25,
	},
	"wan5": {
		Name:    "wan5",
		Regions: []string{"us-east", "us-west", "eu-west", "ap-south", "ap-east"},
		Latency: sym(5, 200*time.Microsecond,
			1500*time.Microsecond, // use<->usw
			3*time.Millisecond,    // use<->euw
			6*time.Millisecond,    // use<->aps
			7*time.Millisecond,    // use<->ape
			4*time.Millisecond,    // usw<->euw
			5*time.Millisecond,    // usw<->aps
			4*time.Millisecond,    // usw<->ape
			5*time.Millisecond,    // euw<->aps
			6*time.Millisecond,    // euw<->ape
			2*time.Millisecond,    // aps<->ape
		),
		Jitter: sym(5, 100*time.Microsecond,
			300*time.Microsecond,
			600*time.Microsecond,
			1200*time.Microsecond,
			1400*time.Microsecond,
			800*time.Microsecond,
			1000*time.Microsecond,
			800*time.Microsecond,
			1000*time.Microsecond,
			1200*time.Microsecond,
			400*time.Microsecond,
		),
		PerMsgCost: uniform(5, 20*time.Microsecond, 150*time.Microsecond),
		Skew:       0.25,
	},
}

// Names lists the built-in profile names, sorted.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the built-in profile by name.
func Lookup(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("geo: unknown WAN profile %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return p, nil
}

// Compiled is a profile instantiated over a concrete site count and
// seed: the region assignment and the full per-directed-link chaos
// matrix, plus the fingerprint -repro verifies.
type Compiled struct {
	Profile    Profile
	Sites      int
	Seed       int64
	Assignment []int // site id -> region index
	Links      map[transport.LinkID]transport.LinkChaos
}

// Compile instantiates p over sites database sites. Sites are assigned
// to regions round-robin (site i -> region i mod regions), and every
// directed inter-site link gets a LinkChaos from the region-pair matrix,
// with the base latency perturbed asymmetrically by a factor drawn from
// (seed, profile name, from, to). Identical inputs compile to identical
// link matrices.
func Compile(p Profile, sites int, seed int64) (*Compiled, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if sites < len(p.Regions) {
		return nil, fmt.Errorf("geo: %d sites cannot populate %d regions of profile %q", sites, len(p.Regions), p.Name)
	}
	if sites > core.MaxSites {
		return nil, fmt.Errorf("geo: %d sites out of range", sites)
	}
	c := &Compiled{
		Profile:    p,
		Sites:      sites,
		Seed:       seed,
		Assignment: make([]int, sites),
		Links:      make(map[transport.LinkID]transport.LinkChaos, sites*(sites-1)),
	}
	for i := 0; i < sites; i++ {
		c.Assignment[i] = i % len(p.Regions)
	}
	nameH := fnv.New64a()
	nameH.Write([]byte(p.Name))
	nameSeed := int64(nameH.Sum64())
	for a := 0; a < sites; a++ {
		for b := 0; b < sites; b++ {
			if a == b {
				continue
			}
			ra, rb := c.Assignment[a], c.Assignment[b]
			base := p.Latency[ra][rb]
			if p.Skew > 0 {
				// Perturb per directed link: u in [0,1) from a pure
				// function of (seed, profile, from, to), so A->B and B->A
				// skew independently and map iteration order is
				// irrelevant.
				u := float64(mix64(uint64(seed)^uint64(nameSeed), uint64(a), uint64(b))>>11) / (1 << 53)
				base = time.Duration(float64(base) * (1 + p.Skew*(2*u-1)))
			}
			c.Links[transport.LinkID{From: core.SiteID(a), To: core.SiteID(b)}] = transport.LinkChaos{
				BaseDelay:  base,
				MaxJitter:  p.Jitter[ra][rb],
				PerMsgCost: p.PerMsgCost[ra][rb],
			}
		}
	}
	return c, nil
}

// mix64 is a splitmix64-style hash of three words, matching the spirit
// of transport's linkSeed but independent of it — link rng streams and
// latency skews must not correlate.
func mix64(a, b, c uint64) uint64 {
	z := a ^ (b+1)*0x9E3779B97F4A7C15 ^ (c+1)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// RegionSites returns the sites assigned to region r, ascending.
func (c *Compiled) RegionSites(r int) []core.SiteID {
	var out []core.SiteID
	for i, a := range c.Assignment {
		if a == r {
			out = append(out, core.SiteID(i))
		}
	}
	return out
}

// MaxBaseDelay returns the largest compiled one-way base delay — the
// worst-case propagation a harness should budget its settle times for.
func (c *Compiled) MaxBaseDelay() time.Duration {
	var max time.Duration
	for _, lc := range c.Links {
		if lc.BaseDelay > max {
			max = lc.BaseDelay
		}
	}
	return max
}

// Fingerprint hashes the region map and the full compiled link matrix
// (FNV-1a over a canonical rendering). Two compilations fingerprint
// equal exactly when profile, site count, assignment and every per-link
// parameter match — the witness -repro compares for geo runs.
func (c *Compiled) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d/%d", c.Profile.Name, c.Sites, c.Seed)
	for i, r := range c.Assignment {
		fmt.Fprintf(h, "|%d:%s", i, c.Profile.Regions[r])
	}
	links := make([]transport.LinkID, 0, len(c.Links))
	for id := range c.Links {
		links = append(links, id)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	for _, id := range links {
		lc := c.Links[id]
		fmt.Fprintf(h, "|%d->%d:%d/%d/%d/%v/%v", id.From, id.To,
			lc.BaseDelay.Nanoseconds(), lc.MaxJitter.Nanoseconds(), lc.PerMsgCost.Nanoseconds(), lc.Drop, lc.Dup)
	}
	return h.Sum64()
}

// String renders the region map compactly, e.g.
// "wan3 us-east={0,3} eu-west={1,4} ap-south={2}".
func (c *Compiled) String() string {
	var b strings.Builder
	b.WriteString(c.Profile.Name)
	for r, name := range c.Profile.Regions {
		ids := make([]string, 0, 2)
		for _, s := range c.RegionSites(r) {
			ids = append(ids, fmt.Sprintf("%d", s))
		}
		fmt.Fprintf(&b, " %s={%s}", name, strings.Join(ids, ","))
	}
	return b.String()
}
