// Package cli holds the small parsing and formatting helpers shared by
// the interactive managing-site commands (cmd/minraid, cmd/raidctl).
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"minraid/internal/core"
	"minraid/internal/msg"
)

// ParseOp parses one operation token: "rN" reads item N, "wN=value" writes
// value to item N.
func ParseOp(tok string) (core.Op, error) {
	if len(tok) < 2 {
		return core.Op{}, fmt.Errorf("bad op %q (want rN or wN=value)", tok)
	}
	switch tok[0] {
	case 'r':
		n, err := strconv.Atoi(tok[1:])
		if err != nil || n < 0 {
			return core.Op{}, fmt.Errorf("bad read %q", tok)
		}
		return core.Read(core.ItemID(n)), nil
	case 'w':
		body := tok[1:]
		eq := strings.IndexByte(body, '=')
		if eq < 1 {
			return core.Op{}, fmt.Errorf("bad write %q (want wN=value)", tok)
		}
		n, err := strconv.Atoi(body[:eq])
		if err != nil || n < 0 {
			return core.Op{}, fmt.Errorf("bad write item %q", tok)
		}
		return core.Write(core.ItemID(n), []byte(body[eq+1:])), nil
	default:
		return core.Op{}, fmt.Errorf("bad op %q (want rN or wN=value)", tok)
	}
}

// ParseOps parses a sequence of operation tokens.
func ParseOps(toks []string) ([]core.Op, error) {
	ops := make([]core.Op, 0, len(toks))
	for _, tok := range toks {
		op, err := ParseOp(tok)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// ParseSite parses a site-id argument.
func ParseSite(arg string, sites int) (core.SiteID, error) {
	n, err := strconv.Atoi(arg)
	if err != nil || n < 0 || n >= sites {
		return 0, fmt.Errorf("bad site id %q (want 0..%d)", arg, sites-1)
	}
	return core.SiteID(n), nil
}

// FormatResult renders a transaction outcome the way both CLIs print it.
func FormatResult(res *msg.TxnResult) string {
	var b strings.Builder
	if !res.Committed {
		fmt.Fprintf(&b, "txn %d ABORTED: %s (%.2f ms)", res.Txn, res.AbortReason,
			float64(res.ElapsedNanos)/1e6)
		return b.String()
	}
	fmt.Fprintf(&b, "txn %d committed in %.2f ms, %d copier(s)", res.Txn,
		float64(res.ElapsedNanos)/1e6, res.Copiers)
	for _, iv := range res.Reads {
		fmt.Fprintf(&b, "\n  read item %d = %q (v%d)", iv.Item, iv.Value, iv.Version)
	}
	return b.String()
}

// FormatVector renders the session-vector records of a status response.
func FormatVector(recs []core.SiteInfo) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, rec := range recs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%s/%d", i, rec.Status, rec.Session)
	}
	b.WriteByte(']')
	return b.String()
}
