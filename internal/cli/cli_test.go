package cli

import (
	"strings"
	"testing"

	"minraid/internal/core"
	"minraid/internal/msg"
)

func TestParseOpReads(t *testing.T) {
	op, err := ParseOp("r12")
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind != core.OpRead || op.Item != 12 || op.Value != nil {
		t.Errorf("op = %+v", op)
	}
}

func TestParseOpWrites(t *testing.T) {
	op, err := ParseOp("w5=hello world")
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind != core.OpWrite || op.Item != 5 || string(op.Value) != "hello world" {
		t.Errorf("op = %+v", op)
	}
	// Empty value is legal.
	op, err = ParseOp("w5=")
	if err != nil || len(op.Value) != 0 {
		t.Errorf("empty write: %+v %v", op, err)
	}
	// '=' in the value survives.
	op, _ = ParseOp("w1=a=b")
	if string(op.Value) != "a=b" {
		t.Errorf("value = %q", op.Value)
	}
}

func TestParseOpErrors(t *testing.T) {
	for _, tok := range []string{"", "r", "x3", "rx", "w3", "w=v", "wx=v", "r-1", "w-1=v"} {
		if _, err := ParseOp(tok); err == nil {
			t.Errorf("token %q accepted", tok)
		}
	}
}

func TestParseOps(t *testing.T) {
	ops, err := ParseOps([]string{"r1", "w2=x"})
	if err != nil || len(ops) != 2 {
		t.Fatalf("ops=%v err=%v", ops, err)
	}
	if _, err := ParseOps([]string{"r1", "bogus"}); err == nil {
		t.Error("bad token in sequence accepted")
	}
}

func TestParseSite(t *testing.T) {
	id, err := ParseSite("2", 4)
	if err != nil || id != 2 {
		t.Errorf("id=%v err=%v", id, err)
	}
	for _, arg := range []string{"-1", "4", "x"} {
		if _, err := ParseSite(arg, 4); err == nil {
			t.Errorf("site %q accepted", arg)
		}
	}
}

func TestFormatResult(t *testing.T) {
	committed := &msg.TxnResult{
		Txn: 7, Committed: true, Copiers: 1, ElapsedNanos: 2_500_000,
		Reads: []core.ItemVersion{{Item: 3, Version: 5, Value: []byte("v")}},
	}
	out := FormatResult(committed)
	for _, want := range []string{"txn 7 committed", "2.50 ms", "1 copier", `read item 3 = "v" (v5)`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
	aborted := &msg.TxnResult{Txn: 8, AbortReason: "participating site failed"}
	out = FormatResult(aborted)
	if !strings.Contains(out, "ABORTED") || !strings.Contains(out, "participating site failed") {
		t.Errorf("abort format: %q", out)
	}
}

func TestFormatVector(t *testing.T) {
	v := core.NewSessionVector(2)
	v.MarkDown(1)
	if got := FormatVector(v.Records()); got != "[0:up/1 1:down/1]" {
		t.Errorf("FormatVector = %q", got)
	}
}
