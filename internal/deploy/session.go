package deploy

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"minraid/internal/core"
)

// sessionFile is the name of the per-site session record inside the WAL
// directory. Session numbers must be monotone across real crashes: the
// stale-failure guard at every site ignores a CtrlFail carrying a session
// older than the vector's entry, so a restarted site that re-announced an
// old session could have its recovery undone by a delayed failure report.
// The site persists the bumped session here before the type-1
// announcement (site.Config.PersistSession); a crash-restarted raidsrv
// resumes from it.
const sessionFile = "session"

// LoadSession reads the persisted session number from a site's WAL
// directory. A missing file is a first boot and returns 0 (the site
// defaults it to the paper's initial session 1).
func LoadSession(walDir string) (core.SessionNum, error) {
	b, err := os.ReadFile(filepath.Join(walDir, sessionFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("deploy: read session: %w", err)
	}
	n, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 32)
	if err != nil {
		return 0, fmt.Errorf("deploy: corrupt session file %s: %w", filepath.Join(walDir, sessionFile), err)
	}
	return core.SessionNum(n), nil
}

// SaveSession durably records a site's session number: write to a
// temporary file, fsync, rename — the same crash-atomicity discipline as
// the WAL's snapshots, so a kill between the two steps leaves either the
// old or the new session, never a torn one.
func SaveSession(walDir string, n core.SessionNum) error {
	tmp := filepath.Join(walDir, sessionFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("deploy: write session: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%d\n", n); err != nil {
		f.Close()
		return fmt.Errorf("deploy: write session: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("deploy: sync session: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("deploy: close session: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(walDir, sessionFile)); err != nil {
		return fmt.Errorf("deploy: install session: %w", err)
	}
	return nil
}
