package deploy

import (
	"errors"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/workload"
)

// The process-fabric tests exec real raidsrv children and deliver real
// SIGKILLs, so they are skipped under -short and on non-Linux platforms.

var (
	buildOnce sync.Once
	buildDir  string
	builtBin  string
	buildErr  error
)

func TestMain(m *testing.M) {
	code := m.Run()
	if buildDir != "" {
		os.RemoveAll(buildDir)
	}
	os.Exit(code)
}

// procBinary builds raidsrv once for the whole package and returns its
// path, skipping the calling test where process tests cannot run.
func procBinary(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("process fabric test skipped in -short mode")
	}
	if runtime.GOOS != "linux" {
		t.Skip("process fabric test requires SIGKILL semantics; linux only")
	}
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "minraid-proc-test-")
		if buildErr != nil {
			return
		}
		builtBin, buildErr = BuildRaidsrv(buildDir)
	})
	if buildErr != nil {
		t.Fatalf("building raidsrv: %v", buildErr)
	}
	return builtBin
}

// TestProcFabricKillMidCommitRestartConverges is the crash-real core of the
// deployment API: a raidsrv child is SIGKILLed while commit traffic is in
// flight (so the kill lands inside some transaction's commit window), the
// survivors keep committing against the dead site, and a re-exec on the
// same WAL directory — WAL replay, persisted session, type-1 recovery —
// converges to an audit-clean fleet.
func TestProcFabricKillMidCommitRestartConverges(t *testing.T) {
	bin := procBinary(t)
	addrs, err := FreeLoopbackAddrs(3)
	if err != nil {
		t.Fatal(err)
	}
	spec := &ClusterSpec{
		Addrs:      addrs,
		Items:      16,
		AckTimeout: Duration(150 * time.Millisecond),
	}
	fab, err := NewProcFabric(ProcConfig{Spec: spec, Binary: bin, WorkDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	mgr := fab.Manager()

	write := func(coord core.SiteID, item int) (bool, error) {
		id := mgr.NextTxnID()
		res, err := mgr.ExecTxn(coord, id, []core.Op{
			core.Write(core.ItemID(item%spec.Items), workload.Payload(id, core.ItemID(item%spec.Items))),
		})
		if err != nil {
			return false, err
		}
		return res.Committed, nil
	}

	// Warm up: committed writes land durable state in every WAL.
	for i := 0; i < 5; i++ {
		ok, err := write(0, i)
		if err != nil || !ok {
			t.Fatalf("warm-up write %d: committed=%v err=%v", i, ok, err)
		}
	}

	// Hammer writes from the managing site while the kill is delivered, so
	// SIGKILL interleaves with live prepare/commit windows. Aborts are
	// expected and tolerated here; consistency is what the audit checks.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			write(0, i) //nolint:errcheck
		}
	}()
	time.Sleep(50 * time.Millisecond)
	if err := fab.Kill(1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The survivors must reach commit again with site 1 dead (failure
	// announcement, fail-locks, two-site ROWAA).
	committed := false
	for i := 0; i < 20 && !committed; i++ {
		committed, _ = write(0, i)
	}
	if !committed {
		t.Fatalf("survivors never committed with site 1 dead (logs in %s)", fab.LogPath(1))
	}

	// Re-exec site 1 against its original WAL directory. The recovery
	// order can come back blocked while the failure announcement settles;
	// retry like the soak driver does.
	if _, err := fab.Restart(1); err != nil {
		for i := 0; i < 10 && errors.Is(err, cluster.ErrRecoveryBlocked); i++ {
			time.Sleep(150 * time.Millisecond)
			_, err = mgr.Recover(1)
		}
		if err != nil {
			t.Fatalf("restart site 1: %v (logs in %s)", err, fab.LogPath(1))
		}
	}

	// Post-recovery traffic touches the rejoined site, then drain any
	for i := 0; i < 5; i++ {
		if ok, err := write(core.SiteID(i%3), i); err != nil || !ok {
			t.Fatalf("post-recovery write %d: committed=%v err=%v", i, ok, err)
		}
	}
	// fail-locks the kill left behind and reconcile any stray conservative
	// lock bits a SIGKILL mid-fan-out can strand at a single survivor
	// (same epilogue the proc soak driver runs).
	trueUp := []bool{true, true, true}
	for pass := 0; pass < 3; pass++ {
		_, remaining, err := mgr.DrainFailLocks(trueUp, spec.Items)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := mgr.ReconcileSplitBrain(trueUp, 150*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if remaining == 0 && rep.LocksSet == 0 {
			break
		}
	}
	report, err := mgr.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("audit after SIGKILL+WAL-replay restart:\n%s", report)
	}
}

// TestProcFabricDownBootNeedsRecovery pins the restart boot contract: a
// child exec'd with -down must come up in the recovering-wait state, not
// silently rejoin as up.
func TestProcFabricDownBootNeedsRecovery(t *testing.T) {
	bin := procBinary(t)
	addrs, err := FreeLoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	spec := &ClusterSpec{Addrs: addrs, Items: 8, AckTimeout: Duration(150 * time.Millisecond)}
	fab, err := NewProcFabric(ProcConfig{Spec: spec, Binary: bin, WorkDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	mgr := fab.Manager()

	if err := fab.Kill(0); err != nil {
		t.Fatal(err)
	}
	if err := fab.Wait(0); err == nil {
		t.Error("SIGKILLed child reported clean exit")
	}
	if _, err := fab.Restart(0); err != nil {
		for i := 0; i < 10 && errors.Is(err, cluster.ErrRecoveryBlocked); i++ {
			time.Sleep(150 * time.Millisecond)
			_, err = mgr.Recover(0)
		}
		if err != nil {
			t.Fatalf("restart: %v (logs in %s)", err, fab.LogPath(0))
		}
	}
	st, err := mgr.StatusTimeout(0, false, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != core.StatusUp {
		t.Fatalf("site 0 after restart+recovery: state %v, want up", st.State)
	}
}
