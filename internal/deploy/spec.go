// Package deploy is the deployment layer: one serializable description of
// a mini-RAID fleet (ClusterSpec) and one Fabric interface over the two
// ways the fleet can exist — sites as goroutines inside this process
// (LocalFabric wrapping cluster.Cluster) or sites as raidsrv OS processes
// reached over real TCP (ProcFabric), where "fail" is SIGKILL and
// "recover" is re-exec plus WAL replay plus the ordinary type-1 control
// transaction.
//
// The spec is deliberately the whole configuration surface shared by
// cmd/raidsrv, cmd/raidctl and the soak CLI: each binds the same flags
// through BindFlags, or loads the same JSON file, so every participant in
// a deployment is configured identically from one artifact.
package deploy

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"minraid/internal/core"
	"minraid/internal/netcfg"
	"minraid/internal/policy"
	"minraid/internal/site"
)

// Duration is a time.Duration that marshals to JSON as a parseable string
// ("250ms"), keeping spec files human-editable.
type Duration time.Duration

// MarshalJSON renders the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a duration string or a nanosecond count.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("deploy: bad duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("deploy: bad duration %s", b)
	}
	*d = Duration(n)
	return nil
}

// ClusterSpec describes a deployed fleet completely: topology (the netcfg
// address map), database size, protocol, placement and per-site execution
// knobs. It round-trips flags ⇄ JSON: BindFlags exposes every field as a
// command-line flag, Flags renders it back, and Load/Save move it through
// a JSON file.
type ClusterSpec struct {
	// Addrs is the netcfg address map ("0=host:port,...,m=host:port",
	// ranges allowed). The number of database sites is derived from it.
	Addrs string `json:"addrs"`
	// Items is the database size in data items.
	Items int `json:"items"`
	// PolicyName selects the replication protocol: rowaa, rowa, quorum.
	PolicyName string `json:"policy,omitempty"`
	// ReplicationDegree places each item on this many sites round-robin;
	// 0 or >= sites keeps the paper's full replication.
	ReplicationDegree int `json:"replication_degree,omitempty"`
	// Concurrent is the per-site interleaved-transaction cap (0/1 serial).
	Concurrent int `json:"concurrent,omitempty"`
	// AckTimeout is each site's failure-detection timeout (0: site default).
	AckTimeout Duration `json:"ack_timeout,omitempty"`
	// LockWaitBudget bounds concurrent-mode lock waits (0: site default).
	LockWaitBudget Duration `json:"lock_wait_budget,omitempty"`
	// InstantRecovery selects REDO-only recovery on every site.
	InstantRecovery bool `json:"instant_recovery,omitempty"`
	// EnableType3 enables type-3 control transactions on every site.
	EnableType3 bool `json:"enable_type3,omitempty"`
	// WALRoot, when non-empty, gives every site a durable WAL store under
	// WALRoot/site-N. Empty runs in-memory stores (no crash recovery).
	WALRoot string `json:"wal_root,omitempty"`
}

// BindFlags registers every spec field on fs under the shared flag names
// and returns the spec that fs.Parse will populate. All deployment CLIs
// (raidsrv, raidctl, raid-experiments soak -fabric proc) bind the same
// surface, so one command line configures them identically.
func BindFlags(fs *flag.FlagSet) *ClusterSpec {
	s := &ClusterSpec{}
	fs.StringVar(&s.Addrs, "addrs", "", "address map: 0=host:port,...,m=host:port (ranges: 0-4=host:7000-7004)")
	fs.IntVar(&s.Items, "items", 50, "database size in data items")
	fs.StringVar(&s.PolicyName, "policy", "rowaa", "replication policy: rowaa, rowa, quorum")
	fs.IntVar(&s.ReplicationDegree, "degree", 0, "copies per item, round-robin (0 = full replication)")
	fs.IntVar(&s.Concurrent, "concurrent", 0, "max interleaved txns per site (0/1 = serial, as the paper)")
	fs.DurationVar((*time.Duration)(&s.AckTimeout), "ack-timeout", 0, "per-site failure-detection timeout (0 = site default)")
	fs.DurationVar((*time.Duration)(&s.LockWaitBudget), "lock-wait", 0, "per-site concurrent-mode lock wait budget (0 = site default)")
	fs.BoolVar(&s.InstantRecovery, "instant-recovery", false, "REDO-only recovery: operational at type-1, scrubber finishes")
	fs.BoolVar(&s.EnableType3, "type3", false, "enable type-3 control transactions")
	fs.StringVar(&s.WALRoot, "wal", "", "root directory for per-site WAL stores (empty: in-memory)")
	return s
}

// Flags renders the spec back to the argument list BindFlags parses —
// the inverse direction of the flags ⇄ JSON round trip. Zero-valued
// fields that have non-zero flag defaults are still emitted so the
// rendered list reproduces the spec exactly regardless of defaults.
func (s *ClusterSpec) Flags() []string {
	args := []string{
		"-addrs", s.Addrs,
		"-items", fmt.Sprint(s.Items),
		"-policy", s.PolicyName,
		"-degree", fmt.Sprint(s.ReplicationDegree),
		"-concurrent", fmt.Sprint(s.Concurrent),
		"-ack-timeout", time.Duration(s.AckTimeout).String(),
		"-lock-wait", time.Duration(s.LockWaitBudget).String(),
		"-wal", s.WALRoot,
	}
	if s.InstantRecovery {
		args = append(args, "-instant-recovery")
	}
	if s.EnableType3 {
		args = append(args, "-type3")
	}
	return args
}

// LoadSpec reads a ClusterSpec from a JSON file and validates it.
func LoadSpec(path string) (*ClusterSpec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("deploy: read spec: %w", err)
	}
	var s ClusterSpec
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("deploy: parse spec %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("deploy: spec %s: %w", path, err)
	}
	return &s, nil
}

// Save writes the spec as indented JSON — the artifact a ProcFabric hands
// to every raidsrv child and an operator hands to raidctl.
func (s *ClusterSpec) Save(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Validate checks the spec is internally consistent: a parseable address
// map with a managing-site entry, a known policy, and placement bounds.
func (s *ClusterSpec) Validate() error {
	addrs, sites, err := netcfg.ParseAddrs(s.Addrs)
	if err != nil {
		return err
	}
	if _, ok := addrs[core.ManagingSite]; !ok {
		return fmt.Errorf("deploy: address map needs an m= entry for the managing site")
	}
	if s.Items <= 0 {
		return fmt.Errorf("deploy: %d items out of range", s.Items)
	}
	if _, ok := policy.ByName(s.policyName()); !ok {
		return fmt.Errorf("deploy: unknown policy %q", s.PolicyName)
	}
	if s.ReplicationDegree < 0 || s.ReplicationDegree > sites {
		return fmt.Errorf("deploy: replication degree %d out of range 0..%d", s.ReplicationDegree, sites)
	}
	if s.ReplicationDegree > 0 && s.ReplicationDegree < sites && s.policyName() != "rowaa" {
		return fmt.Errorf("deploy: partial replication requires the rowaa policy")
	}
	return nil
}

func (s *ClusterSpec) policyName() string {
	if s.PolicyName == "" {
		return "rowaa"
	}
	return s.PolicyName
}

// AddrMap parses the address map, returning the per-site addresses and
// the database site count.
func (s *ClusterSpec) AddrMap() (map[core.SiteID]string, int, error) {
	return netcfg.ParseAddrs(s.Addrs)
}

// Sites returns the database site count (0 if the map does not parse;
// Validate first).
func (s *ClusterSpec) Sites() int {
	_, sites, err := netcfg.ParseAddrs(s.Addrs)
	if err != nil {
		return 0
	}
	return sites
}

// Policy resolves the replication protocol.
func (s *ClusterSpec) Policy() (policy.Policy, error) {
	p, ok := policy.ByName(s.policyName())
	if !ok {
		return nil, fmt.Errorf("deploy: unknown policy %q", s.PolicyName)
	}
	return p, nil
}

// Replicas builds the item placement the spec describes: nil-safe full
// replication, or a round-robin map when a partial degree is set.
func (s *ClusterSpec) Replicas() *core.ReplicaMap {
	sites := s.Sites()
	if s.ReplicationDegree > 0 && s.ReplicationDegree < sites {
		return core.RoundRobinReplication(s.Items, sites, s.ReplicationDegree)
	}
	return core.FullReplication(s.Items, sites)
}

// WALDir returns site id's store directory under WALRoot, or "" when the
// deployment runs in-memory.
func (s *ClusterSpec) WALDir(id core.SiteID) string {
	if s.WALRoot == "" {
		return ""
	}
	return filepath.Join(s.WALRoot, fmt.Sprintf("site-%d", id))
}

// SiteConfig translates the spec into site id's configuration — the same
// translation whether the site runs in-process or inside raidsrv. The
// caller supplies the store and crash-restart state (initial session,
// StartDown, PersistSession), which are deployment-shape-specific.
func (s *ClusterSpec) SiteConfig(id core.SiteID) (site.Config, error) {
	p, err := s.Policy()
	if err != nil {
		return site.Config{}, err
	}
	var replicas *core.ReplicaMap
	if sites := s.Sites(); s.ReplicationDegree > 0 && s.ReplicationDegree < sites {
		replicas = core.RoundRobinReplication(s.Items, sites, s.ReplicationDegree)
	}
	return site.Config{
		ID:              id,
		Sites:           s.Sites(),
		Items:           s.Items,
		Policy:          p,
		AckTimeout:      time.Duration(s.AckTimeout),
		InstantRecovery: s.InstantRecovery,
		EnableType3:     s.EnableType3,
		Replicas:        replicas,
		ConcurrentTxns:  s.Concurrent,
		LockWaitBudget:  time.Duration(s.LockWaitBudget),
	}, nil
}
