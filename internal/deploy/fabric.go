package deploy

import (
	"errors"
	"fmt"
	"os"

	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/msg"
)

// ErrNotSupported marks fabric operations a deployment shape cannot
// express — OS signals to an in-process site, for example.
var ErrNotSupported = errors.New("deploy: operation not supported by this fabric")

// Fabric abstracts how a fleet of database sites is deployed, failed and
// recovered. Two implementations exist:
//
//   - LocalFabric: sites are goroutines of one cluster.Cluster. Kill is
//     the paper's simulated failure (a FailSim message flips the site to
//     the failed state in place); Restart is a RecoverSim order.
//   - ProcFabric: sites are raidsrv OS processes. Kill is SIGKILL — the
//     process dies mid-whatever with no farewell; Restart re-execs the
//     binary on the same WAL directory, so recovery runs genuine WAL
//     replay before the ordinary type-1 rejoin.
//
// Everything above the fabric — soak drivers, audits, repair passes —
// talks to the fleet through Manager(), which is the same managing-site
// control plane either way.
type Fabric interface {
	// Manager is the managing-site control plane for the fleet. It
	// implements cluster.Prober, so the shared audits run over any fabric.
	Manager() *cluster.Manager
	// Start launches site id if the fabric starts sites individually.
	// LocalFabric sites start with the cluster; Start is a no-op there.
	Start(id core.SiteID) error
	// Kill fails site id abruptly: FailSim locally, SIGKILL for processes.
	Kill(id core.SiteID) error
	// Restart brings a killed site back through full recovery: the site
	// is restored to existence (respawned for processes), then the type-1
	// control transaction rejoins it. The returned status is the site's
	// post-recovery state; ErrRecoveryBlocked surfaces unchanged.
	Restart(id core.SiteID) (*msg.StatusResp, error)
	// Wait blocks until site id's process (or goroutine) has exited.
	Wait(id core.SiteID) error
	// Signal delivers an OS signal to site id's process. In-process
	// fabrics return ErrNotSupported.
	Signal(id core.SiteID, sig os.Signal) error
	// Close tears the whole fleet down.
	Close() error
}

// LocalFabric adapts the in-process cluster to the Fabric interface: the
// deployment shape every experiment used before the process fabric
// existed, now reachable through the same API.
type LocalFabric struct {
	c *cluster.Cluster
}

// NewLocalFabric wraps a running cluster. The fabric does not own the
// cluster's lifetime unless Close is used.
func NewLocalFabric(c *cluster.Cluster) *LocalFabric { return &LocalFabric{c: c} }

// Cluster returns the wrapped cluster, for callers needing in-process
// extras (chaos stats, link control, per-site metrics).
func (f *LocalFabric) Cluster() *cluster.Cluster { return f.c }

// Manager implements Fabric.
func (f *LocalFabric) Manager() *cluster.Manager { return f.c.Manager }

// Start implements Fabric; local sites start with the cluster.
func (f *LocalFabric) Start(id core.SiteID) error {
	if err := f.check(id); err != nil {
		return err
	}
	return nil
}

// Kill implements Fabric with the paper's simulated failure.
func (f *LocalFabric) Kill(id core.SiteID) error {
	if err := f.check(id); err != nil {
		return err
	}
	return f.c.Fail(id)
}

// Restart implements Fabric with a RecoverSim order: the site is still
// resident (simulated failure keeps its volatile state's shell), so
// recovery is exactly the paper's type-1 path.
func (f *LocalFabric) Restart(id core.SiteID) (*msg.StatusResp, error) {
	if err := f.check(id); err != nil {
		return nil, err
	}
	return f.c.Recover(id)
}

// Wait implements Fabric: it blocks until the site's goroutines exit
// (after a Shutdown or cluster Close).
func (f *LocalFabric) Wait(id core.SiteID) error {
	if err := f.check(id); err != nil {
		return err
	}
	f.c.Site(id).Wait()
	return nil
}

// Signal implements Fabric; in-process sites have no OS process.
func (f *LocalFabric) Signal(id core.SiteID, sig os.Signal) error {
	return fmt.Errorf("%w: signal %v to in-process site %s", ErrNotSupported, sig, id)
}

// Close implements Fabric.
func (f *LocalFabric) Close() error {
	f.c.Close()
	return nil
}

func (f *LocalFabric) check(id core.SiteID) error {
	if int(id) < 0 || int(id) >= f.c.Sites() {
		return fmt.Errorf("deploy: site %s out of range 0..%d", id, f.c.Sites()-1)
	}
	return nil
}
