package deploy

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/msg"
	"minraid/internal/transport"
)

// ProcConfig parameterizes a process fabric.
type ProcConfig struct {
	// Spec describes the fleet. Required. If Spec.WALRoot is empty it is
	// defaulted to WorkDir/wal: a process fabric without durable stores
	// cannot survive SIGKILL, which is the whole point.
	Spec *ClusterSpec
	// Binary is the raidsrv executable to exec. Required (tests and the
	// soak CLI build it with BuildRaidsrv).
	Binary string
	// WorkDir holds the spec file, per-site logs and (by default) the WAL
	// trees. Required; created if missing.
	WorkDir string
	// ManagerTimeout bounds managing-site calls. Default 30s.
	ManagerTimeout time.Duration
	// StartTimeout bounds how long Start/Restart polls a freshly exec'd
	// child for its first status reply. Default 15s.
	StartTimeout time.Duration
}

// childProc is one raidsrv OS process slot. The slot survives the process:
// a killed site keeps its slot (with the exit recorded) until Restart
// execs a successor into it.
type childProc struct {
	cmd  *exec.Cmd
	done chan struct{} // closed when cmd.Wait returns
	err  error         // cmd.Wait's verdict, valid after done
}

// ProcFabric runs every database site as a raidsrv OS process and itself
// acts as the managing site over real TCP. Kill is SIGKILL — no flushing,
// no goodbyes, volatile state (lock tables, fail-lock tables, sessions in
// memory) genuinely gone. Restart execs a fresh raidsrv on the same WAL
// directory, which replays the log into the store, resumes the persisted
// session number, and boots in the failed state; the fabric then orders
// the ordinary type-1 recovery, so the rejoin path is byte-for-byte the
// protocol the paper measures — only the failure underneath is real.
type ProcFabric struct {
	spec         *ClusterSpec
	specPath     string
	binary       string
	workDir      string
	startTimeout time.Duration

	tcp *transport.TCP
	mgr *cluster.Manager
	wg  sync.WaitGroup

	mu     sync.Mutex
	procs  []*childProc
	closed bool
}

// NewProcFabric launches the fleet: one raidsrv per database site, all
// sharing one spec file, plus the manager's TCP endpoint in this process.
// It returns once every site answers a status probe.
func NewProcFabric(cfg ProcConfig) (*ProcFabric, error) {
	if cfg.Spec == nil {
		return nil, errors.New("deploy: ProcConfig.Spec is required")
	}
	if cfg.Binary == "" {
		return nil, errors.New("deploy: ProcConfig.Binary is required (see BuildRaidsrv)")
	}
	if cfg.WorkDir == "" {
		return nil, errors.New("deploy: ProcConfig.WorkDir is required")
	}
	if cfg.ManagerTimeout <= 0 {
		cfg.ManagerTimeout = 30 * time.Second
	}
	if cfg.StartTimeout <= 0 {
		cfg.StartTimeout = 15 * time.Second
	}
	if err := os.MkdirAll(cfg.WorkDir, 0o755); err != nil {
		return nil, fmt.Errorf("deploy: workdir: %w", err)
	}
	spec := *cfg.Spec
	if spec.WALRoot == "" {
		spec.WALRoot = filepath.Join(cfg.WorkDir, "wal")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	addrs, sites, err := spec.AddrMap()
	if err != nil {
		return nil, err
	}
	specPath := filepath.Join(cfg.WorkDir, "spec.json")
	if err := spec.Save(specPath); err != nil {
		return nil, fmt.Errorf("deploy: write spec: %w", err)
	}

	tcp, err := transport.NewTCP(transport.TCPConfig{Self: core.ManagingSite, Addrs: addrs})
	if err != nil {
		return nil, fmt.Errorf("deploy: manager transport: %w", err)
	}
	ep, err := tcp.Endpoint(core.ManagingSite)
	if err != nil {
		tcp.Close()
		return nil, err
	}
	pol, err := spec.Policy()
	if err != nil {
		tcp.Close()
		return nil, err
	}
	caller := transport.NewCaller(ep, cfg.ManagerTimeout)
	mgr, err := cluster.NewManager(caller, cluster.ManagerConfig{
		Sites:    sites,
		Items:    spec.Items,
		Policy:   pol,
		Timeout:  cfg.ManagerTimeout,
		Replicas: spec.Replicas(),
	})
	if err != nil {
		tcp.Close()
		return nil, err
	}
	f := &ProcFabric{
		spec:         &spec,
		specPath:     specPath,
		binary:       cfg.Binary,
		workDir:      cfg.WorkDir,
		startTimeout: cfg.StartTimeout,
		tcp:          tcp,
		mgr:          mgr,
		procs:        make([]*childProc, sites),
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for {
			env, ok := ep.Recv()
			if !ok {
				return
			}
			caller.Deliver(env)
		}
	}()

	for i := 0; i < sites; i++ {
		if err := f.Start(core.SiteID(i)); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// Manager implements Fabric.
func (f *ProcFabric) Manager() *cluster.Manager { return f.mgr }

// Spec returns the effective spec (with the defaulted WAL root), as
// written to the spec file every child loads.
func (f *ProcFabric) Spec() *ClusterSpec { return f.spec }

// SpecPath returns the on-disk spec file shared by the fleet — hand it to
// raidctl's -config to point an interactive manager at the same fleet.
func (f *ProcFabric) SpecPath() string { return f.specPath }

// LogPath returns site id's captured stdout+stderr log file.
func (f *ProcFabric) LogPath(id core.SiteID) string {
	return filepath.Join(f.workDir, fmt.Sprintf("site-%d.log", id))
}

// Start implements Fabric: it execs raidsrv for site id (operational
// boot) and waits until the child answers a status probe.
func (f *ProcFabric) Start(id core.SiteID) error {
	return f.startChild(id, false)
}

// startChild execs a raidsrv for site id and polls until it responds.
// down selects the crash-restart boot: the child comes up in the failed
// state after WAL replay and waits for a recovery order.
func (f *ProcFabric) startChild(id core.SiteID, down bool) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return errors.New("deploy: fabric closed")
	}
	if p := f.procs[id]; p != nil {
		select {
		case <-p.done:
		default:
			f.mu.Unlock()
			return fmt.Errorf("deploy: site %s already running", id)
		}
	}
	logf, err := os.OpenFile(f.LogPath(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		f.mu.Unlock()
		return fmt.Errorf("deploy: site %s log: %w", id, err)
	}
	args := []string{"-config", f.specPath, "-id", fmt.Sprint(int(id))}
	if down {
		args = append(args, "-down")
	}
	fmt.Fprintf(logf, "--- exec %s %s ---\n", f.binary, strings.Join(args, " "))
	cmd := exec.Command(f.binary, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		f.mu.Unlock()
		return fmt.Errorf("deploy: exec site %s: %w", id, err)
	}
	p := &childProc{cmd: cmd, done: make(chan struct{})}
	f.procs[id] = p
	f.mu.Unlock()
	go func() {
		p.err = cmd.Wait()
		logf.Close()
		close(p.done)
	}()

	// Poll until the child's listener is up and its site loop answers. A
	// down-booted child still answers status (out-of-band instrumentation
	// works on failed sites), so one probe covers both boot shapes.
	deadline := time.Now().Add(f.startTimeout)
	for {
		st, err := f.mgr.StatusTimeout(id, false, time.Second)
		if err == nil {
			if down && st.State == core.StatusUp {
				return fmt.Errorf("deploy: site %s restarted up, want down-boot", id)
			}
			return nil
		}
		select {
		case <-p.done:
			return fmt.Errorf("deploy: site %s exited during start: %v (log: %s)", id, p.err, f.LogPath(id))
		default:
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("deploy: site %s not answering after %s: %v (log: %s)", id, f.startTimeout, err, f.LogPath(id))
		}
	}
}

// Kill implements Fabric: SIGKILL, then wait for the OS to reap the
// child. Nothing is flushed; whatever the WAL already holds is the only
// state that survives — a genuine crash, not the paper's simulated one.
func (f *ProcFabric) Kill(id core.SiteID) error {
	p, err := f.proc(id)
	if err != nil {
		return err
	}
	select {
	case <-p.done: // already dead
		return nil
	default:
	}
	if err := p.cmd.Process.Kill(); err != nil && !errors.Is(err, os.ErrProcessDone) {
		return fmt.Errorf("deploy: kill site %s: %w", id, err)
	}
	<-p.done
	return nil
}

// Restart implements Fabric for a crashed site: re-exec raidsrv with
// -down on the same WAL directory (replay + persisted session + failed
// state), then order the ordinary type-1 recovery through the manager.
func (f *ProcFabric) Restart(id core.SiteID) (*msg.StatusResp, error) {
	if err := f.startChild(id, true); err != nil {
		return nil, err
	}
	return f.mgr.Recover(id)
}

// Wait implements Fabric: block until site id's current process exits.
func (f *ProcFabric) Wait(id core.SiteID) error {
	p, err := f.proc(id)
	if err != nil {
		return err
	}
	<-p.done
	return p.err
}

// Signal implements Fabric.
func (f *ProcFabric) Signal(id core.SiteID, sig os.Signal) error {
	p, err := f.proc(id)
	if err != nil {
		return err
	}
	select {
	case <-p.done:
		return fmt.Errorf("deploy: site %s is not running", id)
	default:
	}
	return p.cmd.Process.Signal(sig)
}

func (f *ProcFabric) proc(id core.SiteID) (*childProc, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if int(id) < 0 || int(id) >= len(f.procs) {
		return nil, fmt.Errorf("deploy: site %s out of range 0..%d", id, len(f.procs)-1)
	}
	p := f.procs[id]
	if p == nil {
		return nil, fmt.Errorf("deploy: site %s was never started", id)
	}
	return p, nil
}

// Close tears the fleet down: SIGTERM for a clean stop (raidsrv flushes
// and exits), SIGKILL after a grace period for stragglers, then the
// manager transport.
func (f *ProcFabric) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	procs := append([]*childProc(nil), f.procs...)
	f.mu.Unlock()

	for _, p := range procs {
		if p == nil {
			continue
		}
		select {
		case <-p.done:
			continue
		default:
		}
		_ = p.cmd.Process.Signal(syscall.SIGTERM)
	}
	grace := time.After(5 * time.Second)
	for _, p := range procs {
		if p == nil {
			continue
		}
		select {
		case <-p.done:
		case <-grace:
			_ = p.cmd.Process.Kill()
			<-p.done
		}
	}
	f.mgr.Caller().CancelAll()
	f.tcp.Close()
	f.wg.Wait()
	return nil
}

// FreeLoopbackAddrs allocates sites+1 distinct free TCP ports on the
// loopback interface and renders the netcfg address map (manager last).
// The listeners are closed before returning, so a raced port grab is
// possible but vanishingly unlikely in practice; raidsrv fails fast and
// loudly if it loses the race.
func FreeLoopbackAddrs(sites int) (string, error) {
	var lns []net.Listener
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	parts := make([]string, 0, sites+1)
	for i := 0; i <= sites; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", fmt.Errorf("deploy: allocate port: %w", err)
		}
		lns = append(lns, ln)
		if i < sites {
			parts = append(parts, fmt.Sprintf("%d=%s", i, ln.Addr().String()))
		} else {
			parts = append(parts, "m="+ln.Addr().String())
		}
	}
	return strings.Join(parts, ","), nil
}

// BuildRaidsrv compiles cmd/raidsrv into dir and returns the binary path.
// It must run with the module root reachable from the current directory
// (true for tests and for the soak CLI run from a checkout). The go
// toolchain is a build-time dependency only; deployments with a prebuilt
// binary never call this.
func BuildRaidsrv(dir string) (string, error) {
	bin := filepath.Join(dir, "raidsrv")
	cmd := exec.Command("go", "build", "-o", bin, "minraid/cmd/raidsrv")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("deploy: build raidsrv: %v\n%s", err, out)
	}
	return bin, nil
}
