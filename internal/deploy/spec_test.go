package deploy

import (
	"flag"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"minraid/internal/core"
)

func testSpec() *ClusterSpec {
	return &ClusterSpec{
		Addrs:             "0-2=host:7000-7002,m=host:7009",
		Items:             40,
		PolicyName:        "rowaa",
		ReplicationDegree: 2,
		Concurrent:        4,
		AckTimeout:        Duration(250 * time.Millisecond),
		LockWaitBudget:    Duration(100 * time.Millisecond),
		InstantRecovery:   true,
		EnableType3:       true,
		WALRoot:           "/tmp/walroot",
	}
}

// TestSpecRoundTrip pins the acceptance property of the deployment API:
// one ClusterSpec survives both serialization directions — through the
// flag surface every CLI binds (raidsrv, raidctl, the soak driver) and
// through the JSON file the process fabric writes — and lands identical.
func TestSpecRoundTrip(t *testing.T) {
	spec := testSpec()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}

	// flags direction: render, re-parse on a fresh FlagSet.
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fromFlags := BindFlags(fs)
	if err := fs.Parse(spec.Flags()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromFlags, spec) {
		t.Errorf("flags round trip diverged:\n got %+v\nwant %+v", fromFlags, spec)
	}

	// JSON direction: save, load.
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := spec.Save(path); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromJSON, spec) {
		t.Errorf("JSON round trip diverged:\n got %+v\nwant %+v", fromJSON, spec)
	}

	// And the derived configuration every consumer builds from the spec is
	// identical whichever path delivered it: the per-site config raidsrv
	// uses, and the placement raidctl's manager audits with.
	for _, other := range []*ClusterSpec{fromFlags, fromJSON} {
		for id := 0; id < spec.Sites(); id++ {
			a, err := spec.SiteConfig(core.SiteID(id))
			if err != nil {
				t.Fatal(err)
			}
			b, err := other.SiteConfig(core.SiteID(id))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("site %d config diverged:\n got %+v\nwant %+v", id, b, a)
			}
		}
		if !reflect.DeepEqual(spec.Replicas(), other.Replicas()) {
			t.Error("replica placement diverged")
		}
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []ClusterSpec{
		{Addrs: "0=h:1,1=h:2", Items: 10},                                         // no manager entry
		{Addrs: "0=h:1,1=h:2,m=h:9", Items: 0},                                    // no items
		{Addrs: "0=h:1,1=h:2,m=h:9", Items: 10, PolicyName: "nope"},               // unknown policy
		{Addrs: "0=h:1,1=h:2,m=h:9", Items: 10, ReplicationDegree: 3},             // degree > sites
		{Addrs: "0=h:1,1=h:2,m=h:9", Items: 10, ReplicationDegree: -1},            // negative degree
		{Addrs: "0=h:1,1=h:2,m=h:9", Items: 10, PolicyName: "quorum", ReplicationDegree: 1}, // partial needs rowaa
		{Addrs: "bogus", Items: 10},                                               // unparseable map
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
	good := ClusterSpec{Addrs: "0=h:1,1=h:2,m=h:9", Items: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("minimal spec rejected: %v", err)
	}
}

func TestSpecWALDir(t *testing.T) {
	s := ClusterSpec{WALRoot: "/data"}
	if got := s.WALDir(2); got != filepath.Join("/data", "site-2") {
		t.Errorf("WALDir = %q", got)
	}
	s.WALRoot = ""
	if got := s.WALDir(2); got != "" {
		t.Errorf("in-memory WALDir = %q", got)
	}
}

func TestSessionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// Missing file: first boot.
	n, err := LoadSession(dir)
	if err != nil || n != 0 {
		t.Fatalf("fresh dir: n=%d err=%v", n, err)
	}
	for _, want := range []core.SessionNum{1, 2, 7} {
		if err := SaveSession(dir, want); err != nil {
			t.Fatal(err)
		}
		got, err := LoadSession(dir)
		if err != nil || got != want {
			t.Fatalf("session %d: got %d err=%v", want, got, err)
		}
	}
}
