package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTimerBasics(t *testing.T) {
	r := NewRegistry()
	r.Observe("txn", 10*time.Millisecond)
	r.Observe("txn", 20*time.Millisecond)
	r.Observe("txn", 30*time.Millisecond)
	st := r.Timer("txn")
	if st.Count != 3 {
		t.Errorf("Count = %d", st.Count)
	}
	if st.Mean() != 20*time.Millisecond {
		t.Errorf("Mean = %v", st.Mean())
	}
	if st.Min != 10*time.Millisecond || st.Max != 30*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", st.Min, st.Max)
	}
}

func TestTimerZero(t *testing.T) {
	r := NewRegistry()
	st := r.Timer("never")
	if st.Count != 0 || st.Mean() != 0 {
		t.Errorf("zero timer: %+v", st)
	}
}

func TestCounters(t *testing.T) {
	r := NewRegistry()
	r.Add("aborts", 1)
	r.Add("aborts", 2)
	if got := r.Counter("aborts"); got != 3 {
		t.Errorf("Counter = %d", got)
	}
	if got := r.Counter("missing"); got != 0 {
		t.Errorf("missing counter = %d", got)
	}
}

func TestTime(t *testing.T) {
	r := NewRegistry()
	r.Time("op", func() { time.Sleep(time.Millisecond) })
	st := r.Timer("op")
	if st.Count != 1 || st.Total < time.Millisecond {
		t.Errorf("Time recorded %+v", st)
	}
}

func TestSnapshotsAreCopies(t *testing.T) {
	r := NewRegistry()
	r.Observe("a", time.Second)
	r.Add("c", 1)
	timers := r.Timers()
	counters := r.Counters()
	timers["a"] = TimerStat{Count: 99}
	counters["c"] = 99
	if r.Timer("a").Count != 1 || r.Counter("c") != 1 {
		t.Error("snapshot mutation leaked into registry")
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	r.Observe("a", time.Second)
	r.Add("c", 5)
	r.Reset()
	if r.Timer("a").Count != 0 || r.Counter("c") != 0 {
		t.Error("reset did not clear")
	}
	r.Observe("a", time.Millisecond)
	if r.Timer("a").Count != 1 {
		t.Error("registry unusable after reset")
	}
}

func TestStringOutput(t *testing.T) {
	r := NewRegistry()
	r.Observe("zz", time.Millisecond)
	r.Add("aa", 2)
	s := r.String()
	if !strings.Contains(s, "count aa") || !strings.Contains(s, "timer zz") {
		t.Errorf("String output:\n%s", s)
	}
	// Sorted: counters (aa) before timers (zz) alphabetically by name.
	if strings.Index(s, "aa") > strings.Index(s, "zz") {
		t.Error("output not sorted")
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Observe("t", time.Microsecond)
				r.Add("c", 1)
			}
		}()
	}
	wg.Wait()
	if r.Timer("t").Count != 8000 || r.Counter("c") != 8000 {
		t.Errorf("lost updates: %d %d", r.Timer("t").Count, r.Counter("c"))
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var h HistogramStat
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(p); got != 0 {
			t.Errorf("empty Quantile(%v) = %v", p, got)
		}
	}
	if h.Mean() != 0 {
		t.Errorf("empty Mean = %v", h.Mean())
	}
}

func TestHistogramQuantileSingleSample(t *testing.T) {
	r := NewRegistry()
	r.Observe("one", 7*time.Millisecond)
	h := r.Histogram("one")
	for _, p := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(p); got != 7*time.Millisecond {
			t.Errorf("single-sample Quantile(%v) = %v", p, got)
		}
	}
}

func TestHistogramQuantileAllEqual(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 100; i++ {
		r.Observe("eq", 3*time.Millisecond)
	}
	h := r.Histogram("eq")
	for _, p := range []float64{0.5, 0.95, 0.99} {
		if got := h.Quantile(p); got != 3*time.Millisecond {
			t.Errorf("all-equal Quantile(%v) = %v", p, got)
		}
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	r := NewRegistry()
	// Durations spread over many buckets: 1us .. 100ms.
	for i := 1; i <= 1000; i++ {
		r.Observe("spread", time.Duration(i)*100*time.Microsecond)
	}
	h := r.Histogram("spread")
	p50, p95, p99 := h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("quantiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if p50 < h.Min || p99 > h.Max {
		t.Errorf("quantiles outside [min,max]: %v %v (min=%v max=%v)", p50, p99, h.Min, h.Max)
	}
	// p99 must sit near the top of the range; buckets are power-of-two so
	// allow generous slack, but 50ms is the floor for a 100ms max.
	if p99 < 50*time.Millisecond {
		t.Errorf("p99 = %v, expected near 100ms", p99)
	}
	if p50 > 90*time.Millisecond {
		t.Errorf("p50 = %v, expected near 50ms", p50)
	}
}

func TestHistogramQuantileBoundsP0P1(t *testing.T) {
	r := NewRegistry()
	r.Observe("b", time.Millisecond)
	r.Observe("b", 10*time.Millisecond)
	h := r.Histogram("b")
	if h.Quantile(0) != time.Millisecond {
		t.Errorf("Quantile(0) = %v", h.Quantile(0))
	}
	if h.Quantile(1) != 10*time.Millisecond {
		t.Errorf("Quantile(1) = %v", h.Quantile(1))
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewRegistry()
	b := NewRegistry()
	for i := 0; i < 10; i++ {
		a.Observe("x", time.Millisecond)
		b.Observe("x", 100*time.Millisecond)
	}
	ha, hb := a.Histogram("x"), b.Histogram("x")
	ha.Merge(hb)
	if ha.Count != 20 {
		t.Errorf("merged Count = %d", ha.Count)
	}
	if ha.Min != time.Millisecond || ha.Max != 100*time.Millisecond {
		t.Errorf("merged Min/Max = %v/%v", ha.Min, ha.Max)
	}
	var zero HistogramStat
	zero.Merge(hb)
	if zero.Count != 10 || zero.Min != hb.Min {
		t.Errorf("merge into zero: %+v", zero)
	}
	hb2 := hb
	hb2.Merge(HistogramStat{})
	if hb2.Count != 10 {
		t.Errorf("merge of empty changed count: %d", hb2.Count)
	}
}

func TestHistogramTracksTimer(t *testing.T) {
	r := NewRegistry()
	r.Observe("t", 2*time.Millisecond)
	r.Observe("t", 4*time.Millisecond)
	ts, hs := r.Timer("t"), r.Histogram("t")
	if ts.Count != hs.Count || ts.Total != hs.Total || ts.Min != hs.Min || ts.Max != hs.Max {
		t.Errorf("timer %+v and histogram mismatch (n=%d total=%v)", ts, hs.Count, hs.Total)
	}
	snap := r.Histograms()
	if len(snap) != 1 || snap["t"].Count != 2 {
		t.Errorf("Histograms snapshot: %+v", snap)
	}
	r.Reset()
	if r.Histogram("t").Count != 0 {
		t.Error("reset did not clear histograms")
	}
}

// TestRegistryConcurrencyHammer exercises every registry entry point from
// many goroutines at once; run with -race it verifies the locking.
func TestRegistryConcurrencyHammer(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				r.Observe("h", time.Duration(j+1)*time.Microsecond)
				r.Add("c", 1)
			}
		}(i)
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.Timers()
				_ = r.Histograms()
				_ = r.Counters()
				_ = r.Timer("h")
				_ = r.Histogram("h")
				_ = r.Counter("c")
				_ = r.String()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			r.Reset()
			time.Sleep(100 * time.Microsecond)
		}
	}()
	// Wait for the writers, then release the readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("hammer deadlocked")
	}
	// Post-reset state must still be coherent and usable.
	r.Reset()
	r.Observe("h", time.Millisecond)
	if r.Timer("h").Count != 1 || r.Histogram("h").Count != 1 {
		t.Error("registry unusable after hammer")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("fail-locks")
	if s.Name() != "fail-locks" {
		t.Errorf("Name = %q", s.Name())
	}
	for i := 0; i < 5; i++ {
		s.Append(float64(i))
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d", s.Len())
	}
	vals := s.Values()
	vals[0] = 99
	if s.Values()[0] != 0 {
		t.Error("Values aliases internal slice")
	}
	for i, v := range s.Values() {
		if v != float64(i) {
			t.Errorf("vals[%d] = %v", i, v)
		}
	}
}
