package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTimerBasics(t *testing.T) {
	r := NewRegistry()
	r.Observe("txn", 10*time.Millisecond)
	r.Observe("txn", 20*time.Millisecond)
	r.Observe("txn", 30*time.Millisecond)
	st := r.Timer("txn")
	if st.Count != 3 {
		t.Errorf("Count = %d", st.Count)
	}
	if st.Mean() != 20*time.Millisecond {
		t.Errorf("Mean = %v", st.Mean())
	}
	if st.Min != 10*time.Millisecond || st.Max != 30*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", st.Min, st.Max)
	}
}

func TestTimerZero(t *testing.T) {
	r := NewRegistry()
	st := r.Timer("never")
	if st.Count != 0 || st.Mean() != 0 {
		t.Errorf("zero timer: %+v", st)
	}
}

func TestCounters(t *testing.T) {
	r := NewRegistry()
	r.Add("aborts", 1)
	r.Add("aborts", 2)
	if got := r.Counter("aborts"); got != 3 {
		t.Errorf("Counter = %d", got)
	}
	if got := r.Counter("missing"); got != 0 {
		t.Errorf("missing counter = %d", got)
	}
}

func TestTime(t *testing.T) {
	r := NewRegistry()
	r.Time("op", func() { time.Sleep(time.Millisecond) })
	st := r.Timer("op")
	if st.Count != 1 || st.Total < time.Millisecond {
		t.Errorf("Time recorded %+v", st)
	}
}

func TestSnapshotsAreCopies(t *testing.T) {
	r := NewRegistry()
	r.Observe("a", time.Second)
	r.Add("c", 1)
	timers := r.Timers()
	counters := r.Counters()
	timers["a"] = TimerStat{Count: 99}
	counters["c"] = 99
	if r.Timer("a").Count != 1 || r.Counter("c") != 1 {
		t.Error("snapshot mutation leaked into registry")
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	r.Observe("a", time.Second)
	r.Add("c", 5)
	r.Reset()
	if r.Timer("a").Count != 0 || r.Counter("c") != 0 {
		t.Error("reset did not clear")
	}
	r.Observe("a", time.Millisecond)
	if r.Timer("a").Count != 1 {
		t.Error("registry unusable after reset")
	}
}

func TestStringOutput(t *testing.T) {
	r := NewRegistry()
	r.Observe("zz", time.Millisecond)
	r.Add("aa", 2)
	s := r.String()
	if !strings.Contains(s, "count aa") || !strings.Contains(s, "timer zz") {
		t.Errorf("String output:\n%s", s)
	}
	// Sorted: counters (aa) before timers (zz) alphabetically by name.
	if strings.Index(s, "aa") > strings.Index(s, "zz") {
		t.Error("output not sorted")
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Observe("t", time.Microsecond)
				r.Add("c", 1)
			}
		}()
	}
	wg.Wait()
	if r.Timer("t").Count != 8000 || r.Counter("c") != 8000 {
		t.Errorf("lost updates: %d %d", r.Timer("t").Count, r.Counter("c"))
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("fail-locks")
	if s.Name() != "fail-locks" {
		t.Errorf("Name = %q", s.Name())
	}
	for i := 0; i < 5; i++ {
		s.Append(float64(i))
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d", s.Len())
	}
	vals := s.Values()
	vals[0] = 99
	if s.Values()[0] != 0 {
		t.Error("Values aliases internal slice")
	}
	for i, v := range s.Values() {
		if v != float64(i) {
			t.Errorf("vals[%d] = %v", i, v)
		}
	}
}
