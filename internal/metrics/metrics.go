// Package metrics provides the measurement primitives the experiment
// harness uses: named duration timers (count/total/min/max) and named
// counters. The paper recorded "the execution times of processing events
// ... after a stable state of transaction processing was achieved" and
// reported averages (§2.1); TimerStat.Mean is that average.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// TimerStat is an immutable snapshot of one timer.
type TimerStat struct {
	Count uint64
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Mean returns the average observation, or zero if none were recorded.
func (s TimerStat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// String implements fmt.Stringer.
func (s TimerStat) String() string {
	return fmt.Sprintf("n=%d mean=%v min=%v max=%v", s.Count, s.Mean(), s.Min, s.Max)
}

// Registry is a set of named timers and counters, safe for concurrent use.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	timers   map[string]*TimerStat
	counters map[string]uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		timers:   make(map[string]*TimerStat),
		counters: make(map[string]uint64),
	}
}

// Observe records one duration under name.
func (r *Registry) Observe(name string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &TimerStat{Min: d, Max: d}
		r.timers[name] = t
	}
	t.Count++
	t.Total += d
	if d < t.Min {
		t.Min = d
	}
	if d > t.Max {
		t.Max = d
	}
}

// Time runs fn and records its duration under name.
func (r *Registry) Time(name string, fn func()) {
	start := time.Now()
	fn()
	r.Observe(name, time.Since(start))
}

// Add increments the named counter by n.
func (r *Registry) Add(name string, n uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] += n
}

// Counter returns the current value of the named counter.
func (r *Registry) Counter(name string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Timer returns a snapshot of the named timer; the zero TimerStat if it was
// never observed.
func (r *Registry) Timer(name string) TimerStat {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.timers[name]; ok {
		return *t
	}
	return TimerStat{}
}

// Timers returns a snapshot of every timer.
func (r *Registry) Timers() map[string]TimerStat {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]TimerStat, len(r.timers))
	for k, v := range r.timers {
		out[k] = *v
	}
	return out
}

// Counters returns a snapshot of every counter.
func (r *Registry) Counters() map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Reset discards all observations, keeping the registry usable. The
// experiment harness resets after warm-up so reported averages cover only
// the stable state, as in the paper.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.timers = make(map[string]*TimerStat)
	r.counters = make(map[string]uint64)
}

// String renders every timer and counter, sorted by name.
func (r *Registry) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.timers)+len(r.counters))
	for k := range r.timers {
		names = append(names, "T "+k)
	}
	for k := range r.counters {
		names = append(names, "C "+k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		kind, name := n[:1], n[2:]
		if kind == "T" {
			fmt.Fprintf(&b, "timer %-24s %s\n", name, (*r.timers[name]).String())
		} else {
			fmt.Fprintf(&b, "count %-24s %d\n", name, r.counters[name])
		}
	}
	return b.String()
}

// Series records one float64 value per step — the data behind the paper's
// figures (e.g. "number of fail-locks set" per transaction number). It is
// append-only and safe for concurrent use.
type Series struct {
	mu   sync.Mutex
	name string
	vals []float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Append adds one value.
func (s *Series) Append(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals = append(s.vals, v)
}

// Values returns a copy of the recorded values.
func (s *Series) Values() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	return out
}

// Len returns the number of recorded values.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vals)
}
