// Package metrics provides the measurement primitives the experiment
// harness uses: named duration timers (count/total/min/max) and named
// counters. The paper recorded "the execution times of processing events
// ... after a stable state of transaction processing was achieved" and
// reported averages (§2.1); TimerStat.Mean is that average.
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"time"
)

// TimerStat is an immutable snapshot of one timer.
type TimerStat struct {
	Count uint64
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Mean returns the average observation, or zero if none were recorded.
func (s TimerStat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// String implements fmt.Stringer.
func (s TimerStat) String() string {
	return fmt.Sprintf("n=%d mean=%v min=%v max=%v", s.Count, s.Mean(), s.Min, s.Max)
}

// HistBuckets is the number of fixed power-of-two histogram buckets.
// Bucket i holds durations d with bits.Len64(d nanoseconds) == i, i.e.
// [2^(i-1), 2^i) ns, so the range spans sub-nanosecond to ~292 years.
const HistBuckets = 65

// bucketOf maps a duration to its histogram bucket index.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d))
}

// bucketLow returns the inclusive lower bound of bucket i.
func bucketLow(i int) time.Duration {
	if i <= 0 {
		return 0
	}
	return time.Duration(1) << (i - 1)
}

// bucketHigh returns the exclusive upper bound of bucket i.
func bucketHigh(i int) time.Duration {
	if i >= 63 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(1) << i
}

// HistogramStat is an immutable snapshot of one latency histogram: the
// same count/total/min/max as TimerStat plus the bucket populations,
// which make tail quantiles recoverable. The paper reports only means
// (§2.1); recovery-time stalls live in the tail, so snapshots carry
// enough to answer p50/p95/p99.
type HistogramStat struct {
	Count   uint64
	Total   time.Duration
	Min     time.Duration
	Max     time.Duration
	Buckets [HistBuckets]uint64
}

// Mean returns the average observation, or zero if none were recorded.
func (h HistogramStat) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Total / time.Duration(h.Count)
}

// Quantile returns an estimate of the p-th quantile (p in [0,1]). The
// estimate interpolates linearly inside the bucket holding the target
// rank and is clamped to the observed [Min, Max]. An empty histogram
// returns 0; p <= 0 returns Min; p >= 1 returns Max.
func (h HistogramStat) Quantile(p float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	if p <= 0 {
		return h.Min
	}
	if p >= 1 {
		return h.Max
	}
	rank := uint64(p * float64(h.Count))
	if rank >= h.Count {
		rank = h.Count - 1
	}
	var seen uint64
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if rank < seen+n {
			lo, hi := bucketLow(i), bucketHigh(i)
			// Position of the target rank within this bucket.
			frac := (float64(rank-seen) + 0.5) / float64(n)
			est := lo + time.Duration(frac*float64(hi-lo))
			if est < h.Min {
				est = h.Min
			}
			if est > h.Max {
				est = h.Max
			}
			return est
		}
		seen += n
	}
	return h.Max
}

// Merge folds other into h, combining two sites' histograms of the same
// event class.
func (h *HistogramStat) Merge(other HistogramStat) {
	if other.Count == 0 {
		return
	}
	if h.Count == 0 || other.Min < h.Min {
		h.Min = other.Min
	}
	if other.Max > h.Max {
		h.Max = other.Max
	}
	h.Count += other.Count
	h.Total += other.Total
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// String implements fmt.Stringer, including the tail quantiles.
func (h HistogramStat) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max)
}

// Registry is a set of named timers, histograms and counters, safe for
// concurrent use. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	timers   map[string]*TimerStat
	hists    map[string]*HistogramStat
	counters map[string]uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		timers:   make(map[string]*TimerStat),
		hists:    make(map[string]*HistogramStat),
		counters: make(map[string]uint64),
	}
}

// Observe records one duration under name, updating both the timer and
// the histogram of that name.
func (r *Registry) Observe(name string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &TimerStat{Min: d, Max: d}
		r.timers[name] = t
	}
	t.Count++
	t.Total += d
	if d < t.Min {
		t.Min = d
	}
	if d > t.Max {
		t.Max = d
	}
	h, ok := r.hists[name]
	if !ok {
		h = &HistogramStat{Min: d, Max: d}
		r.hists[name] = h
	}
	h.Count++
	h.Total += d
	if d < h.Min {
		h.Min = d
	}
	if d > h.Max {
		h.Max = d
	}
	h.Buckets[bucketOf(d)]++
}

// Time runs fn and records its duration under name.
func (r *Registry) Time(name string, fn func()) {
	start := time.Now()
	fn()
	r.Observe(name, time.Since(start))
}

// Add increments the named counter by n.
func (r *Registry) Add(name string, n uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] += n
}

// Counter returns the current value of the named counter.
func (r *Registry) Counter(name string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Timer returns a snapshot of the named timer; the zero TimerStat if it was
// never observed.
func (r *Registry) Timer(name string) TimerStat {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.timers[name]; ok {
		return *t
	}
	return TimerStat{}
}

// Timers returns a snapshot of every timer.
func (r *Registry) Timers() map[string]TimerStat {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]TimerStat, len(r.timers))
	for k, v := range r.timers {
		out[k] = *v
	}
	return out
}

// Histogram returns a snapshot of the named histogram; the zero
// HistogramStat if it was never observed.
func (r *Registry) Histogram(name string) HistogramStat {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return *h
	}
	return HistogramStat{}
}

// Histograms returns a snapshot of every histogram.
func (r *Registry) Histograms() map[string]HistogramStat {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]HistogramStat, len(r.hists))
	for k, v := range r.hists {
		out[k] = *v
	}
	return out
}

// Counters returns a snapshot of every counter.
func (r *Registry) Counters() map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Reset discards all observations, keeping the registry usable. The
// experiment harness resets after warm-up so reported averages cover only
// the stable state, as in the paper.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.timers = make(map[string]*TimerStat)
	r.hists = make(map[string]*HistogramStat)
	r.counters = make(map[string]uint64)
}

// String renders every timer and counter, sorted by name.
func (r *Registry) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.timers)+len(r.counters))
	for k := range r.timers {
		names = append(names, "T "+k)
	}
	for k := range r.counters {
		names = append(names, "C "+k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		kind, name := n[:1], n[2:]
		if kind == "T" {
			if h, ok := r.hists[name]; ok {
				fmt.Fprintf(&b, "timer %-24s %s\n", name, h.String())
			} else {
				fmt.Fprintf(&b, "timer %-24s %s\n", name, (*r.timers[name]).String())
			}
		} else {
			fmt.Fprintf(&b, "count %-24s %d\n", name, r.counters[name])
		}
	}
	return b.String()
}

// Series records one float64 value per step — the data behind the paper's
// figures (e.g. "number of fail-locks set" per transaction number). It is
// append-only and safe for concurrent use.
type Series struct {
	mu   sync.Mutex
	name string
	vals []float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Append adds one value.
func (s *Series) Append(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals = append(s.vals, v)
}

// Values returns a copy of the recorded values.
func (s *Series) Values() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	return out
}

// Len returns the number of recorded values.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vals)
}
