package cluster

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
	"minraid/internal/policy"
	"minraid/internal/trace"
	"minraid/internal/transport"
)

// Errors returned by the managing-site operations.
var (
	// ErrNoResponse means the target site never answered — it is down or
	// the call outlived the manager timeout.
	ErrNoResponse = errors.New("cluster: site did not respond")
	// ErrRecoveryBlocked means recovery failed because no operational
	// site could supply the session vector and fail-locks.
	ErrRecoveryBlocked = errors.New("cluster: recovery blocked: no operational donor")
	// ErrSiteRemoved means the site was permanently retired by Rebalance
	// and can never rejoin: its copies have been re-homed.
	ErrSiteRemoved = errors.New("cluster: site permanently removed by rebalance")
)

// ManagerConfig parameterizes a standalone Manager.
type ManagerConfig struct {
	// Sites is the number of database sites (not counting the manager).
	Sites int
	// Items is the database size.
	Items int
	// Policy is the replication protocol the sites run (nil: ROWAA).
	// The manager needs it to size quorum audits and to refuse
	// operations that assume fail-locks under a policy without them.
	Policy policy.Policy
	// Timeout bounds every managing-site call (transactions, recovery
	// waits). Default 30s.
	Timeout time.Duration
	// Replicas is the item-to-site placement (nil: full replication).
	Replicas *core.ReplicaMap
	// Tracer, when non-nil, receives inject-phase trace events.
	Tracer *trace.Recorder
	// TxnIDBase offsets transaction-ID allocation; the first ID handed
	// out is TxnIDBase+1.
	TxnIDBase uint64
}

// Manager is the managing site's control plane: transaction injection,
// fail/recover orders, status probes, consistency audits, split-brain
// reconciliation, false-suspicion repair, fail-lock drains and
// permanent-loss rebalancing. Every operation is pure request/response
// messaging through one transport.Caller, so the same Manager drives an
// in-process cluster over the memory transport and a fleet of raidsrv
// OS processes over real TCP (internal/deploy.ProcFabric) identically.
//
// Cluster embeds a Manager; standalone deployments build one with
// NewManager around a caller whose receive loop delivers replies.
type Manager struct {
	caller  *transport.Caller
	sites   int
	items   int
	pol     policy.Policy
	timeout time.Duration
	tracer  *trace.Recorder

	nextTxn   atomic.Uint64
	nextAdmin atomic.Uint64

	// replicas is the managing site's view of the current placement. It
	// starts as cfg.Replicas (nil: full replication) and is replaced,
	// copy-on-write, when Rebalance re-homes a permanently lost site's
	// copies. removed is the bitmask of sites Rebalance retired; they can
	// never recover (their copies now live elsewhere).
	replicas atomic.Pointer[core.ReplicaMap]
	removed  atomic.Uint64
}

// NewManager builds a manager over caller. The caller's owner must run a
// receive loop that hands every inbound envelope to caller.Deliver.
func NewManager(caller *transport.Caller, cfg ManagerConfig) (*Manager, error) {
	if cfg.Sites <= 0 || cfg.Sites > core.MaxSites {
		return nil, fmt.Errorf("cluster: manager: %d sites out of range", cfg.Sites)
	}
	if cfg.Items <= 0 {
		return nil, fmt.Errorf("cluster: manager: %d items out of range", cfg.Items)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	m := &Manager{
		caller:  caller,
		sites:   cfg.Sites,
		items:   cfg.Items,
		pol:     cfg.Policy,
		timeout: cfg.Timeout,
		tracer:  cfg.Tracer,
	}
	if cfg.Replicas != nil {
		m.replicas.Store(cfg.Replicas)
	} else {
		m.replicas.Store(core.FullReplication(cfg.Items, cfg.Sites))
	}
	m.nextTxn.Store(cfg.TxnIDBase)
	return m, nil
}

// Sites returns the number of database sites.
func (c *Manager) Sites() int { return c.sites }

// Items returns the database size.
func (c *Manager) Items() int { return c.items }

// Tracer returns the manager's trace recorder (nil when tracing is off).
func (c *Manager) Tracer() *trace.Recorder { return c.tracer }

// Caller exposes the underlying transport caller, for owners that route
// inbound envelopes (Deliver) or cancel in-flight calls on shutdown.
func (c *Manager) Caller() *transport.Caller { return c.caller }

// adminTrace allocates a trace ID for a managing-site admin operation
// (fail/recover). Admin IDs live above trace.AdminBase so they never
// collide with transaction IDs, and they draw from their own counter so
// tracing does not perturb the transaction numbering experiments rely on.
func (c *Manager) adminTrace() uint64 {
	return uint64(trace.AdminBase) + c.nextAdmin.Add(1)
}

// NextTxnID allocates the next transaction identifier. The managing site
// numbers transactions sequentially from TxnIDBase+1 (from 1, as the
// paper does, unless a multi-epoch soak carries the counter forward).
func (c *Manager) NextTxnID() core.TxnID { return core.TxnID(c.nextTxn.Add(1)) }

// LastTxnID returns the highest transaction ID allocated so far (or
// TxnIDBase if none were). A persisting soak feeds this into the next
// epoch's TxnIDBase so on-disk item versions stay monotone.
func (c *Manager) LastTxnID() uint64 { return c.nextTxn.Load() }

// Exec sends one database transaction to the given coordinator and waits
// for its outcome. The transaction ID is allocated automatically.
func (c *Manager) Exec(coordinator core.SiteID, ops []core.Op) (*msg.TxnResult, error) {
	return c.ExecTxn(coordinator, c.NextTxnID(), ops)
}

// ExecTxn sends a database transaction with an explicit ID.
func (c *Manager) ExecTxn(coordinator core.SiteID, id core.TxnID, ops []core.Op) (*msg.TxnResult, error) {
	return c.ExecTxnTimeout(coordinator, id, ops, c.timeout)
}

// ExecTxnTimeout is ExecTxn with a per-call reply deadline (non-positive
// falls back to the manager timeout). Background repair traffic — the
// scrubber's read batches — uses it so a transaction racing a Fail order
// stalls for a bounded wait, not the full manager timeout.
func (c *Manager) ExecTxnTimeout(coordinator core.SiteID, id core.TxnID, ops []core.Op, timeout time.Duration) (*msg.TxnResult, error) {
	if timeout <= 0 {
		timeout = c.timeout
	}
	start := time.Now()
	reply, err := c.caller.CallTimeoutT(uint64(id), coordinator, &msg.ClientTxn{Txn: id, Ops: ops}, timeout)
	if err != nil {
		return nil, fmt.Errorf("%w: %s (txn %d): %v", ErrNoResponse, coordinator, id, err)
	}
	res, ok := reply.Body.(*msg.TxnResult)
	if !ok {
		return nil, fmt.Errorf("cluster: unexpected reply %s to txn %d", reply.Body.Kind(), id)
	}
	c.tracer.Emit(trace.ID(id), core.ManagingSite, trace.PhaseInject,
		fmt.Sprintf("coord=%d ops=%d", coordinator, len(ops)), start)
	return res, nil
}

// Fail orders a site to simulate failure and waits for the acknowledgement.
func (c *Manager) Fail(id core.SiteID) error {
	if _, err := c.caller.CallT(c.adminTrace(), id, &msg.FailSim{}); err != nil {
		return fmt.Errorf("%w: failing %s: %v", ErrNoResponse, id, err)
	}
	return nil
}

// Recover orders a failed site to recover and waits until recovery
// completes (the site replies with its status once the type-1 control
// transaction has finished). ErrRecoveryBlocked is returned when no
// operational site could act as donor. A site retired by Rebalance is
// permanently removed — its copies live elsewhere now — and is refused
// with ErrSiteRemoved.
func (c *Manager) Recover(id core.SiteID) (*msg.StatusResp, error) {
	if c.removed.Load()&(1<<id) != 0 {
		return nil, fmt.Errorf("%w: %s", ErrSiteRemoved, id)
	}
	reply, err := c.caller.CallT(c.adminTrace(), id, &msg.RecoverSim{})
	if err != nil {
		return nil, fmt.Errorf("%w: recovering %s: %v", ErrNoResponse, id, err)
	}
	st, ok := reply.Body.(*msg.StatusResp)
	if !ok {
		return nil, fmt.Errorf("cluster: unexpected reply %s to recover", reply.Body.Kind())
	}
	if st.State != core.StatusUp {
		return st, ErrRecoveryBlocked
	}
	return st, nil
}

// Shutdown orders a site to terminate its process (raidsrv exits; an
// in-process site stops its receive loop) and waits for the ack.
func (c *Manager) Shutdown(id core.SiteID) error {
	if _, err := c.caller.CallT(c.adminTrace(), id, &msg.Shutdown{}); err != nil {
		return fmt.Errorf("%w: shutting down %s: %v", ErrNoResponse, id, err)
	}
	return nil
}

// Status queries a site's replicated-copy-control state. Works even on a
// failed site (out-of-band instrumentation).
func (c *Manager) Status(id core.SiteID, includeFailLocks bool) (*msg.StatusResp, error) {
	reply, err := c.caller.Call(id, &msg.StatusReq{IncludeFailLocks: includeFailLocks})
	if err != nil {
		return nil, fmt.Errorf("%w: status of %s: %v", ErrNoResponse, id, err)
	}
	st, ok := reply.Body.(*msg.StatusResp)
	if !ok {
		return nil, fmt.Errorf("cluster: unexpected reply %s to status", reply.Body.Kind())
	}
	return st, nil
}

// StatusTimeout is Status with a per-call reply deadline, for probes that
// poll a site which may be down (a restarting raidsrv process) and must
// not stall for the full manager timeout per attempt.
func (c *Manager) StatusTimeout(id core.SiteID, includeFailLocks bool, timeout time.Duration) (*msg.StatusResp, error) {
	if timeout <= 0 {
		timeout = c.timeout
	}
	reply, err := c.caller.CallTimeoutT(0, id, &msg.StatusReq{IncludeFailLocks: includeFailLocks}, timeout)
	if err != nil {
		return nil, fmt.Errorf("%w: status of %s: %v", ErrNoResponse, id, err)
	}
	st, ok := reply.Body.(*msg.StatusResp)
	if !ok {
		return nil, fmt.Errorf("cluster: unexpected reply %s to status", reply.Body.Kind())
	}
	return st, nil
}

// Dump returns a site's versioned database copy: every item under full
// replication, only the hosted items under a partial map (the audits
// reconstruct placement-aware views from the sparse dump, keeping audit
// payloads O(items×degree) instead of O(items×sites)).
func (c *Manager) Dump(id core.SiteID) ([]core.ItemVersion, error) {
	reply, err := c.caller.Call(id, &msg.DumpReq{First: 0, Last: core.ItemID(c.items - 1), HostedOnly: true})
	if err != nil {
		return nil, fmt.Errorf("%w: dump of %s: %v", ErrNoResponse, id, err)
	}
	resp, ok := reply.Body.(*msg.DumpResp)
	if !ok {
		return nil, fmt.Errorf("cluster: unexpected reply %s to dump", reply.Body.Kind())
	}
	return resp.Items, nil
}

// FailLockCount returns, as observed by observer's table, how many items
// are fail-locked for target — the quantity plotted in the paper's figures.
func (c *Manager) FailLockCount(observer, target core.SiteID) (int, error) {
	st, err := c.Status(observer, false)
	if err != nil {
		return 0, err
	}
	if int(target) >= len(st.FailLockCounts) {
		return 0, fmt.Errorf("cluster: target %s out of range", target)
	}
	return int(st.FailLockCounts[target]), nil
}
