package cluster

import (
	"fmt"
	"sort"

	"minraid/internal/core"
	"minraid/internal/msg"
)

// RebalanceReport summarizes one permanent-loss rebalance.
type RebalanceReport struct {
	// Lost is the retired site.
	Lost core.SiteID
	// Moved counts the copies re-homed (one per item the lost site
	// hosted and a replacement host existed for).
	Moved int
	// PerSite counts the new copies each receiving site took on.
	PerSite map[core.SiteID]int
	// Unplaced counts the lost site's items left below target degree
	// because every non-hosting site was itself down.
	Unplaced int
	// Copiers is the number of copier transactions the healing drain ran
	// to populate the new copies.
	Copiers int
	// Remaining is the fail-lock population left after the drain — zero
	// when every re-homed copy was successfully populated.
	Remaining int
}

// String implements fmt.Stringer.
func (r RebalanceReport) String() string {
	return fmt.Sprintf("rebalance: %s retired, %d copies re-homed (%d unplaced), %d copiers, %d locks remaining",
		r.Lost, r.Moved, r.Unplaced, r.Copiers, r.Remaining)
}

// rehostChunk bounds the (item, new host) pairs one CtrlRehost carries.
const rehostChunk = 4096

// Rebalance permanently retires a failed site and re-replicates every
// item it hosted onto a replacement host, restoring each item's target
// degree. The placement change is installed copy-on-write at every
// operational site (CtrlRehost), the new copies are fail-locked — they
// hold no data yet — and a fail-lock drain populates them through the
// ordinary copier machinery. Afterward the lost site can never recover
// (Recover returns ErrSiteRemoved): its copies live elsewhere.
//
// Rebalance is restricted to fail-lock policies (ROWAA). Under quorum a
// freshly placed copy enters at version 0 with no fail-lock to mark it
// stale, and a read quorum containing it but missing the copies a past
// write quorum updated would return stale data — re-homing is only safe
// when staleness is tracked per copy.
//
// The cluster must be write-quiescent and, apart from the lost site,
// fully operational while Rebalance runs: the placement swap is not
// atomic across sites, and a site that misses the CtrlRehost would keep
// auditing (and fail-lock maintaining) against the old map.
func (c *Manager) Rebalance(lost core.SiteID) (RebalanceReport, error) {
	rep := RebalanceReport{Lost: lost, PerSite: map[core.SiteID]int{}}
	if int(lost) >= c.sites {
		return rep, fmt.Errorf("cluster: rebalance: site %s out of range", lost)
	}
	if c.pol != nil && !c.pol.UsesFailLocks() {
		return rep, fmt.Errorf("cluster: rebalance requires a fail-lock policy; a re-homed copy enters stale and %s cannot track that", c.pol.Name())
	}
	cur := c.Replicas()
	if cur.IsFull() {
		return rep, fmt.Errorf("cluster: rebalance: full replication leaves no site to re-home onto")
	}
	if c.removed.Load()&(1<<lost) != 0 {
		return rep, fmt.Errorf("%w: %s", ErrSiteRemoved, lost)
	}

	// Census: the lost site must be down, every other site up (a site
	// that misses the placement swap would diverge from the new map).
	up := make([]bool, c.sites)
	for i := 0; i < c.sites; i++ {
		id := core.SiteID(i)
		st, err := c.Status(id, false)
		if err != nil {
			return rep, err
		}
		up[i] = st.State == core.StatusUp
		if id == lost && up[i] {
			return rep, fmt.Errorf("cluster: rebalance: %s is still operational", lost)
		}
		if id != lost && !up[i] {
			return rep, fmt.Errorf("cluster: rebalance needs every surviving site up; %s is %s", id, st.State)
		}
	}

	// Plan: for each item the lost site hosted, the replacement is the
	// least-loaded surviving site not already hosting it (lowest ID on
	// ties, so the plan is deterministic). Loads update as copies are
	// placed, keeping the final placement balanced.
	load := make(map[core.SiteID]int, c.sites)
	for i := 0; i < c.sites; i++ {
		if id := core.SiteID(i); id != lost {
			load[id] = cur.HostedCount(id)
		}
	}
	next := cur.Clone()
	var items []core.ItemID
	var newHosts []core.SiteID
	for item := 0; item < c.items; item++ {
		id := core.ItemID(item)
		if !cur.IsHost(id, lost) {
			continue
		}
		cands := make([]core.SiteID, 0, c.sites)
		for i := 0; i < c.sites; i++ {
			if s := core.SiteID(i); s != lost && !cur.IsHost(id, s) {
				cands = append(cands, s)
			}
		}
		if len(cands) == 0 {
			rep.Unplaced++
			continue
		}
		sort.Slice(cands, func(a, b int) bool {
			if load[cands[a]] != load[cands[b]] {
				return load[cands[a]] < load[cands[b]]
			}
			return cands[a] < cands[b]
		})
		host := cands[0]
		load[host]++
		next.Rehost(id, lost, host)
		items = append(items, id)
		newHosts = append(newHosts, host)
		rep.Moved++
		rep.PerSite[host]++
	}

	// Install the new placement at every surviving site, chunked. Each
	// receiver fail-locks the re-homed copies and drops the lost site's
	// stray bits itself, so tables stay identical everywhere.
	for start := 0; start < len(items); start += rehostChunk {
		end := start + rehostChunk
		if end > len(items) {
			end = len(items)
		}
		body := &msg.CtrlRehost{Lost: lost, Items: items[start:end], NewHosts: newHosts[start:end]}
		for i := 0; i < c.sites; i++ {
			id := core.SiteID(i)
			if id == lost {
				continue
			}
			reply, err := c.caller.CallT(c.adminTrace(), id, body)
			if err != nil {
				return rep, fmt.Errorf("%w: rehost at %s: %v", ErrNoResponse, id, err)
			}
			ack, ok := reply.Body.(*msg.CtrlRehostAck)
			if !ok {
				return rep, fmt.Errorf("cluster: unexpected reply %s to rehost", reply.Body.Kind())
			}
			if !ack.OK {
				return rep, fmt.Errorf("cluster: rehost refused by %s: %s", id, ack.Reason)
			}
		}
	}

	// The managing site adopts the new map and retires the lost site
	// before the drain: audits of the healed system must judge placement
	// by the post-rebalance map.
	c.replicas.Store(next)
	for {
		old := c.removed.Load()
		if c.removed.CompareAndSwap(old, old|1<<lost) {
			break
		}
	}

	// Heal: drain the fail-locks the rehost planted so every new copy is
	// populated from an up-to-date donor through the copier machinery.
	copiers, remaining, err := c.DrainFailLocks(up, 0)
	rep.Copiers = copiers
	rep.Remaining = remaining
	return rep, err
}
