package cluster

import (
	"bytes"
	"fmt"
	"time"

	"minraid/internal/core"
	"minraid/internal/msg"
)

// ReconcileReport summarizes one heal-time split-brain reconciliation.
type ReconcileReport struct {
	// SuspicionPairs counts directed (observer, suspect) pairs where a
	// truly-up observer's session vector marks another truly-up site
	// non-operational when reconciliation starts.
	SuspicionPairs int
	// MutualSuspicions counts unordered pairs suspecting each other —
	// the signature of a symmetric partition: both sides announced the
	// other failed and kept committing.
	MutualSuspicions int
	// DivergentItems counts items whose copies disagree in version
	// across truly-up sites — the split-brain damage (or, when already
	// fail-locked, tracked staleness) the target table must cover.
	DivergentItems int
	// LocksSet and LocksCleared count the per-table bit edits installed
	// via the special fail-lock transaction to converge every table to
	// the reconciled target.
	LocksSet, LocksCleared int
	// Repairs counts fail/recover cycles run to merge the sides'
	// session vectors after the tables agreed.
	Repairs int
}

// Detected reports whether the reconciliation found split-brain evidence.
func (r ReconcileReport) Detected() bool {
	return r.MutualSuspicions > 0 || r.DivergentItems > 0
}

// String implements fmt.Stringer.
func (r ReconcileReport) String() string {
	return fmt.Sprintf("reconcile: %d suspicion pairs (%d mutual), %d divergent items, +%d/-%d lock edits, %d repairs",
		r.SuspicionPairs, r.MutualSuspicions, r.DivergentItems, r.LocksSet, r.LocksCleared, r.Repairs)
}

// ReconcileSplitBrain merges the sides of a healed partition through the
// paper's own machinery, driven from the managing site:
//
//  1. Session-vector comparison: collect every truly-up site's vector,
//     fail-lock table and database dump; mutual suspicion between
//     truly-up sites is the split-brain signal.
//  2. Fail-lock collection: compute the reconciled table. For every item
//     the highest version among truly-up copies wins; each truly-up copy
//     behind it must carry a fail-lock, each copy at it must not. In
//     serial mode versions are transaction IDs, globally unique, and that
//     comparison is complete. In concurrent mode versions are per-item
//     commit counters, and copies AT the highest version can still
//     disagree in value: both sides of a cut committing the same number
//     of writes to an item count to the same version from the same base.
//     Version comparison is blind to that, so values at the winning
//     version are compared too, the lowest-numbered truly-up copy is
//     canonicalized, and the others are fail-locked for refresh. Bits
//     for sites that are genuinely down are merged by union — each
//     side's table tracked real staleness the other side could not
//     observe, and over-locking only costs a copier refresh.
//  3. Install the reconciled table everywhere via the special fail-lock
//     transaction (ClearFailLocks with Set for the missing bits), then
//     merge the sides' vectors with fail/recover cycles; the type-1
//     announcements re-introduce each suspect and demand copiers plus
//     the clear fan-out repair the stale copies on access (or
//     DrainFailLocks forces the refresh immediately).
//
// trueUp is the managing site's ground truth of which sites were never
// ordered to fail. Only truly-up sites' tables are edited: a down site is
// deaf to the special transaction and installs a reconciled table from
// its donor when it recovers.
//
// ROWAA runs split brains into real divergence (both sides commit); the
// quorum policies cannot diverge, but their vectors still split, so
// reconciliation degenerates to the vector merge. Call it only on a
// healed network — with links still cut the repair cycles cannot
// converge.
func (c *Manager) ReconcileSplitBrain(trueUp []bool, ackTimeout time.Duration) (ReconcileReport, error) {
	var rep ReconcileReport
	sites, items := c.sites, c.items

	replicas := c.Replicas()
	type view struct {
		id   core.SiteID
		st   *msg.StatusResp
		dump []core.ItemVersion
	}
	var views []view
	var trueUpMask uint64
	for i := 0; i < sites; i++ {
		if !trueUp[i] {
			continue
		}
		id := core.SiteID(i)
		trueUpMask |= 1 << id
		st, err := c.Status(id, true)
		if err != nil {
			return rep, err
		}
		if st.State != core.StatusUp {
			// Ground truth says up but the site thinks otherwise — a
			// recovery the caller deferred; leave it to its recovery path.
			trueUpMask &^= 1 << id
			continue
		}
		dump, err := c.Dump(id)
		if err != nil {
			return rep, err
		}
		if len(st.FailLocks) != items {
			return rep, fmt.Errorf("cluster: reconcile: %s returned %d lock words for %d items", id, len(st.FailLocks), items)
		}
		// Dumps are hosted-only under partial replication; spread each one
		// into an items-length view (step 2 only reads hosting entries).
		sparse, err := sparseDump(dump, replicas, id, items)
		if err != nil {
			return rep, fmt.Errorf("cluster: reconcile: %v", err)
		}
		views = append(views, view{id: id, st: st, dump: sparse})
	}
	if len(views) == 0 {
		return rep, fmt.Errorf("cluster: reconcile: no operational site")
	}

	// Step 1: suspicion census among truly-up sites.
	suspect := make(map[[2]core.SiteID]bool)
	for _, v := range views {
		for b, rec := range v.st.Vector {
			if core.SiteID(b) != v.id && trueUpMask&(1<<b) != 0 && rec.Status != core.StatusUp {
				rep.SuspicionPairs++
				suspect[[2]core.SiteID{v.id, core.SiteID(b)}] = true
			}
		}
	}
	for pair := range suspect {
		if pair[0] < pair[1] && suspect[[2]core.SiteID{pair[1], pair[0]}] {
			rep.MutualSuspicions++
		}
	}

	// Step 2: reconciled fail-lock table, highest version wins.
	target := make([]uint64, items)
	for item := 0; item < items; item++ {
		hostMask := replicas.HostMask(core.ItemID(item))
		var maxVer core.TxnID
		minVer := core.TxnID(0)
		first := true
		for _, v := range views {
			if hostMask&(1<<v.id) == 0 {
				continue
			}
			ver := v.dump[item].Version
			if first || ver > maxVer {
				maxVer = ver
			}
			if first || ver < minVer {
				minVer = ver
			}
			first = false
		}
		// The canonical value: the lowest-numbered truly-up copy at the
		// winning version (views are in site order). Copies at maxVer
		// with a different value are split-brain twins — both sides
		// committed their item's Nth write — and must be fail-locked so
		// the drain refreshes them from the canonical copy (Apply
		// overwrites at equal version).
		var canonical []byte
		haveCanonical := false
		for _, v := range views {
			if hostMask&(1<<v.id) != 0 && v.dump[item].Version == maxVer {
				canonical = v.dump[item].Value
				haveCanonical = true
				break
			}
		}
		valueDiverged := false
		var bits uint64
		for _, v := range views {
			if hostMask&(1<<v.id) == 0 {
				continue
			}
			switch d := v.dump[item]; {
			case d.Version < maxVer:
				bits |= 1 << v.id
			case haveCanonical && !bytes.Equal(d.Value, canonical):
				bits |= 1 << v.id
				valueDiverged = true
			}
		}
		if (!first && minVer != maxVer) || valueDiverged {
			rep.DivergentItems++
		}
		// Down sites: union of what every side tracked, hosting only.
		var downBits uint64
		for _, v := range views {
			downBits |= v.st.FailLocks[item]
		}
		target[item] = bits | (downBits & hostMask &^ trueUpMask)
	}

	// Step 3a: install the target table at every truly-up site — only
	// for policies that track staleness with fail-locks. Quorum sites
	// keep stale copies legitimately (reads vote past them), so their
	// tables stay untouched and reconciliation is just the vector merge.
	usesFailLocks := c.pol == nil || c.pol.UsesFailLocks()
	if !usesFailLocks {
		up := make([]bool, sites)
		for i := 0; i < sites; i++ {
			up[i] = trueUpMask&(1<<i) != 0
		}
		repairs, err := c.RepairFalseSuspicionsWhere(up, nil, ackTimeout)
		rep.Repairs = repairs
		return rep, err
	}
	for _, v := range views {
		for s := 0; s < sites; s++ {
			var set, clear []core.ItemID
			bit := uint64(1) << s
			for item := 0; item < items; item++ {
				cur, want := v.st.FailLocks[item]&bit != 0, target[item]&bit != 0
				switch {
				case want && !cur:
					set = append(set, core.ItemID(item))
				case !want && cur:
					clear = append(clear, core.ItemID(item))
				}
			}
			if err := c.installLocks(v.id, core.SiteID(s), set, true); err != nil {
				return rep, err
			}
			if err := c.installLocks(v.id, core.SiteID(s), clear, false); err != nil {
				return rep, err
			}
			rep.LocksSet += len(set)
			rep.LocksCleared += len(clear)
		}
	}

	// Step 3b: merge the sides' session vectors. Tables now agree, so
	// whichever donor a recovering suspect picks hands it the reconciled
	// state.
	up := make([]bool, sites)
	for i := 0; i < sites; i++ {
		up[i] = trueUpMask&(1<<i) != 0
	}
	repairs, err := c.RepairFalseSuspicionsWhere(up, nil, ackTimeout)
	rep.Repairs = repairs
	return rep, err
}

// installLocks sends one special fail-lock transaction editing holder's
// table: the bits of site over items, set or cleared.
func (c *Manager) installLocks(holder, site core.SiteID, items []core.ItemID, set bool) error {
	if len(items) == 0 {
		return nil
	}
	reply, err := c.caller.CallT(c.adminTrace(), holder,
		&msg.ClearFailLocks{Site: site, Items: items, Set: set})
	if err != nil {
		return fmt.Errorf("%w: installing locks at %s: %v", ErrNoResponse, holder, err)
	}
	if _, ok := reply.Body.(*msg.ClearFailLocksAck); !ok {
		return fmt.Errorf("cluster: unexpected reply %s to fail-lock install", reply.Body.Kind())
	}
	return nil
}

// DrainFailLocks refreshes every fail-locked copy held by a truly-up site
// by coordinating read transactions at that site: reading a fail-locked
// local copy runs a demand copier against an up-to-date donor and the
// clear fan-out propagates the cleared bit everywhere (§1.2). maxOps
// bounds the reads batched into one transaction. It returns the number of
// copier refreshes run and how many (item, truly-up site) locks remain —
// zero on a healed, fully-recovered system; locks for genuinely down
// sites are correct state and are not counted or drained.
//
// Passes repeat until a pass makes no progress — it ran no copier and the
// lock population did not shrink. A fixed pass count is not enough: a
// donor refuses a copy request while its own copy of the item is
// fail-locked, so divergent tables can chain heals (each pass unblocks
// exactly one more donor) arbitrarily deep, one pass per link.
func (c *Manager) DrainFailLocks(trueUp []bool, maxOps int) (copiers, remaining int, err error) {
	if maxOps <= 0 {
		maxOps = 8
	}
	// Every productive pass clears at least one (item, site) lock, so the
	// lock population bounds the passes; the cap only guards the loop
	// against an unforeseen live-lock.
	maxPasses := c.sites*c.items + 2
	prevTotal := -1
	for pass := 0; pass < maxPasses; pass++ {
		total, passCopiers := 0, 0
		for i := 0; i < c.sites; i++ {
			if !trueUp[i] {
				continue
			}
			id := core.SiteID(i)
			locked, err := c.lockedItems(id)
			if err != nil {
				return copiers, 0, err
			}
			total += len(locked)
			for start := 0; start < len(locked); start += maxOps {
				end := start + maxOps
				if end > len(locked) {
					end = len(locked)
				}
				ops := make([]core.Op, 0, end-start)
				for _, item := range locked[start:end] {
					ops = append(ops, core.Read(item))
				}
				// Aborts (no donor yet, coordinator mid-repair) leave the
				// locks standing; a later pass retries them.
				res, err := c.Exec(id, ops)
				if err != nil {
					return copiers, 0, err
				}
				passCopiers += int(res.Copiers)
			}
		}
		copiers += passCopiers
		if total == 0 {
			break
		}
		// No copier ran and the population did not shrink since the last
		// pass: nothing left that this drain can heal (locks whose donors
		// are genuinely unreachable). prevTotal starts at -1 so a pass of
		// transient aborts still gets one retry.
		if passCopiers == 0 && prevTotal >= 0 && total >= prevTotal {
			break
		}
		prevTotal = total
	}
	remaining, err = c.FailLocksRemaining(trueUp)
	return copiers, remaining, err
}

// FailLocksRemaining counts the (item, site) fail-locks truly-up sites
// hold on their own copies — the population DrainFailLocks drains and the
// scrubber heals; zero on a fully-recovered, converged system. Locks for
// genuinely down sites are correct state and are not counted.
func (c *Manager) FailLocksRemaining(trueUp []bool) (int, error) {
	remaining := 0
	for i := 0; i < c.sites; i++ {
		if !trueUp[i] {
			continue
		}
		locked, err := c.lockedItems(core.SiteID(i))
		if err != nil {
			return remaining, err
		}
		remaining += len(locked)
	}
	return remaining, nil
}

// lockedItems lists the items fail-locked for id, as tracked by id's own
// table, restricted to the items id hosts — a copy the site does not
// hold cannot be refreshed by reading there (the demand-copier path only
// covers hosted items), and a bit for a non-hosted copy is an audit
// violation, not drainable work.
func (c *Manager) lockedItems(id core.SiteID) ([]core.ItemID, error) {
	st, err := c.Status(id, true)
	if err != nil {
		return nil, err
	}
	if st.State != core.StatusUp {
		return nil, nil
	}
	replicas := c.Replicas()
	var out []core.ItemID
	for item, bits := range st.FailLocks {
		if bits&(1<<id) != 0 && replicas.IsHost(core.ItemID(item), id) {
			out = append(out, core.ItemID(item))
		}
	}
	return out, nil
}
