package cluster

import (
	"errors"
	"strings"
	"testing"

	"minraid/internal/core"
	"minraid/internal/policy"
)

// TestRebalanceRetiresLostSite is the permanent-loss end-to-end: seed
// every item, lose a host, keep writing (fail-locks accumulate against
// it), then retire it. Afterward every item must sit at its target
// degree on surviving hosts, hold its latest value, audit clean, and the
// lost site must be refused forever.
func TestRebalanceRetiresLostSite(t *testing.T) {
	const sites, items, degree = 4, 12, 2
	c := partialCluster(t, sites, items, degree)
	for i := 0; i < items; i++ {
		res, err := c.Exec(core.SiteID(i%sites), []core.Op{core.Write(core.ItemID(i), val(i))})
		if err != nil || !res.Committed {
			t.Fatalf("seed write %d: %v %v", i, res, err)
		}
	}
	failAndDetect(t, c, 1, 0)
	// Writes during the outage: items hosted by site 1 commit on their
	// surviving host and fail-lock the down copy.
	for i := 0; i < items; i++ {
		res, err := c.Exec(0, []core.Op{core.Write(core.ItemID(i), val(100 + i))})
		if err != nil || !res.Committed {
			t.Fatalf("outage write %d: %v %v", i, res, err)
		}
	}

	rep, err := c.Rebalance(1)
	if err != nil {
		t.Fatalf("rebalance: %v (%s)", err, rep)
	}
	// Round-robin degree 2 of 4 puts 6 of the 12 items on site 1; every
	// one has a surviving non-hosting candidate.
	if rep.Moved != 6 || rep.Unplaced != 0 {
		t.Errorf("moved %d unplaced %d, want 6/0 (%s)", rep.Moved, rep.Unplaced, rep)
	}
	if rep.Remaining != 0 {
		t.Errorf("drain left %d fail-locks (%s)", rep.Remaining, rep)
	}
	m := c.Replicas()
	for i := 0; i < items; i++ {
		id := core.ItemID(i)
		if m.IsHost(id, 1) {
			t.Errorf("item %d still placed on the retired site", i)
		}
		if got := m.Degree(id); got != degree {
			t.Errorf("item %d degree = %d, want %d", i, got, degree)
		}
	}
	report, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() || report.StaleCopies != 0 {
		t.Errorf("post-rebalance audit: %s", report)
	}
	// Every value survived the move, including on the re-homed copies.
	for i := 0; i < items; i++ {
		res, err := c.Exec(2, []core.Op{core.Read(core.ItemID(i))})
		if err != nil || !res.Committed {
			t.Fatalf("read %d: %v %v", i, res, err)
		}
		if string(res.Reads[0].Value) != string(val(100+i)) {
			t.Errorf("item %d = %q after rebalance, want %q", i, res.Reads[0].Value, val(100+i))
		}
	}
	// The retired site can never rejoin: its copies live elsewhere now.
	if _, err := c.Recover(1); !errors.Is(err, ErrSiteRemoved) {
		t.Errorf("Recover(retired) = %v, want ErrSiteRemoved", err)
	}
	if _, err := c.Rebalance(1); !errors.Is(err, ErrSiteRemoved) {
		t.Errorf("second Rebalance = %v, want ErrSiteRemoved", err)
	}
	// The shrunken system keeps taking writes and stays consistent.
	for i := 0; i < items; i++ {
		res, err := c.Exec(3, []core.Op{core.Write(core.ItemID(i), val(200 + i))})
		if err != nil || !res.Committed {
			t.Fatalf("post-rebalance write %d: %v %v", i, res, err)
		}
	}
	report, err = c.Audit()
	if err != nil || !report.OK() || report.StaleCopies != 0 {
		t.Errorf("final audit: %v %v", report, err)
	}
}

func TestRebalanceRejections(t *testing.T) {
	// Full replication: there is no site left to re-home onto.
	full := newTestCluster(t, Config{Sites: 3, Items: 3})
	failAndDetect(t, full, 1, 0)
	if _, err := full.Rebalance(1); err == nil {
		t.Error("rebalance accepted under full replication")
	}

	// A still-operational site cannot be retired.
	p := partialCluster(t, 3, 6, 2)
	if _, err := p.Rebalance(1); err == nil {
		t.Error("rebalance accepted for an operational site")
	}

	// Quorum has no fail-locks to mark a freshly placed copy stale, so a
	// re-homed copy would poison read quorums; rejected up front.
	q := newTestCluster(t, Config{
		Sites: 3, Items: 6, Policy: policy.Quorum{},
		Replicas: core.RoundRobinReplication(6, 3, 2),
	})
	if _, err := q.Rebalance(1); err == nil {
		t.Error("rebalance accepted under quorum")
	}
}

// TestRemoteReadFallsBackPastSilentDonor covers the donor retry path: the
// first donor the coordinator picks is (undetectedly) down, so the read
// must announce it and fetch the copy from the item's other host instead
// of aborting.
func TestRemoteReadFallsBackPastSilentDonor(t *testing.T) {
	c := partialCluster(t, 3, 6, 2)
	// Item 1 is hosted by {1,2}; coordinator 0 holds no copy.
	res, err := c.Exec(1, []core.Op{core.Write(1, []byte("v"))})
	if err != nil || !res.Committed {
		t.Fatalf("seed: %v %v", res, err)
	}
	// Site 1 dies silently: site 0 still believes it is up and picks it
	// as the donor (lowest candidate ID).
	if err := c.Fail(1); err != nil {
		t.Fatal(err)
	}
	res, err = c.Exec(0, []core.Op{core.Read(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("read aborted (%s) despite a live second donor", res.AbortReason)
	}
	if string(res.Reads[0].Value) != "v" {
		t.Errorf("fallback read = %q", res.Reads[0].Value)
	}
	// The silent donor was a genuine failure: it must have been announced.
	st, err := c.Status(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Vector[1].Status != core.StatusDown {
		t.Error("silent donor not announced down by the retrying read")
	}
}

// TestAuditFlagsStrayFailLockOnNonHost: a fail-lock bit for a site that
// does not host the item is impossible protocol state under a partial
// map — the audit must call it a violation, not ignore it.
func TestAuditFlagsStrayFailLockOnNonHost(t *testing.T) {
	c := partialCluster(t, 3, 6, 2)
	// Item 0 is hosted by {0,1}. Plant a bit for non-host 2 on every
	// site so the tables still agree (a divergence violation would mask
	// the stray check).
	for s := 0; s < 3; s++ {
		c.Site(core.SiteID(s)).InjectFailLock(0, 2)
	}
	report, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Fatal("stray fail-lock bit for a non-hosting site passed the audit")
	}
	if !strings.Contains(report.Violations[0], "non-hosting") {
		t.Errorf("violation = %q, want the stray-bit report", report.Violations[0])
	}
}

// TestAuditAllHostsDownIsUnavailableNotViolation: when every host of an
// item is down the audit has no copy to judge; that is unavailability
// (the protocol aborts transactions touching the item), not a violation.
func TestAuditAllHostsDownIsUnavailableNotViolation(t *testing.T) {
	c := partialCluster(t, 4, 8, 2)
	failAndDetect(t, c, 0, 2)
	failAndDetect(t, c, 1, 2)
	report, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Error(report)
	}
	// Items 0 and 4 are hosted exactly by the down pair {0,1}.
	if report.UnavailableItems != 2 {
		t.Errorf("UnavailableItems = %d, want 2", report.UnavailableItems)
	}
}
