package cluster

import (
	"strings"
	"testing"

	"minraid/internal/core"
	"minraid/internal/trace"
)

// TestSpanTimelineAcrossFailureRecovery reconstructs the full trace span
// of one transaction that exercises the whole stack: after a site fails,
// an update fail-locks an item; once the site recovers, a transaction
// coordinated there must run a copier sub-span before its own prepare
// and commit. The span must read inject -> copier -> prepare -> commit
// in chronological order.
func TestSpanTimelineAcrossFailureRecovery(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 2, Items: 10})

	// Fail site 1 and update item 3 so site 0 fail-locks it for site 1.
	failAndDetect(t, c, 1, 0)
	if res, err := c.Exec(0, []core.Op{core.Write(3, val(1))}); err != nil || !res.Committed {
		t.Fatalf("update during failure: %v %v", res, err)
	}
	if _, err := c.Recover(1); err != nil {
		t.Fatal(err)
	}

	// A transaction coordinated at the freshly recovered site reading the
	// fail-locked item: the coordinator must refresh it with a copier
	// before the usual two-phase commit.
	res, err := c.Exec(1, []core.Op{core.Read(3), core.Write(4, val(2))})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("aborted: %s", res.AbortReason)
	}
	if res.Copiers == 0 {
		t.Fatal("expected at least one copier transaction")
	}

	span := c.Tracer().Span(trace.ID(res.Txn))
	if len(span.Events) == 0 {
		t.Fatal("no trace events recorded for the transaction")
	}

	// Chronological ordering is Span's contract.
	for i := 1; i < len(span.Events); i++ {
		if span.Events[i].At.Before(span.Events[i-1].At) {
			t.Fatalf("events out of order at %d:\n%s", i, span.Timeline())
		}
	}

	// The span must contain every phase of the story, including the
	// copier sub-span on the recovered coordinator.
	idx := map[string]int{}
	for i, ev := range span.Events {
		if _, seen := idx[ev.Phase]; !seen {
			idx[ev.Phase] = i
		}
	}
	for _, phase := range []string{
		trace.PhaseInject, trace.PhaseCopier, trace.PhaseCopyServe,
		trace.PhasePrepare, trace.PhaseCommit, trace.PhaseCoord,
	} {
		if _, ok := idx[phase]; !ok {
			t.Errorf("span missing phase %q:\n%s", phase, span.Timeline())
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// The copier ran before the transaction's own commit, and the donor
	// (site 0) served the copy request inside the copier window.
	if idx[trace.PhaseCopier] > idx[trace.PhaseCommit] {
		t.Errorf("copier after commit:\n%s", span.Timeline())
	}
	for _, ev := range span.Events {
		switch ev.Phase {
		case trace.PhaseCopier:
			if ev.Site != 1 {
				t.Errorf("copier ran on %s, want site 1", ev.Site)
			}
		case trace.PhaseCopyServe:
			if ev.Site != 0 {
				t.Errorf("copy served by %s, want site 0", ev.Site)
			}
		case trace.PhaseInject:
			if ev.Site != core.ManagingSite {
				t.Errorf("inject recorded on %s, want manager", ev.Site)
			}
		}
	}

	// Timeline renders a header plus one line per event.
	lines := strings.Split(strings.TrimRight(span.Timeline(), "\n"), "\n")
	if len(lines) != len(span.Events)+1 {
		t.Errorf("timeline has %d lines for %d events", len(lines), len(span.Events))
	}

	if span.Duration() <= 0 {
		t.Error("span duration not positive")
	}
}

// TestAdminOperationsTraced checks fail/recover orders get their own
// admin-range trace IDs and record control-transaction events.
func TestAdminOperationsTraced(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 2, Items: 5})
	failAndDetect(t, c, 1, 0)
	if res, err := c.Exec(0, []core.Op{core.Write(1, val(9))}); err != nil || !res.Committed {
		t.Fatalf("update during failure: %v %v", res, err)
	}
	if _, err := c.Recover(1); err != nil {
		t.Fatal(err)
	}

	// Admin op 2 is the recover; its span must show the type-1 control
	// transaction running on the recovering site.
	span := c.Tracer().Span(trace.AdminBase + 2)
	found := false
	for _, ev := range span.Events {
		if ev.Phase == trace.PhaseCtrl1 && ev.Site == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("recover span lacks a ctrl1 event on site 1: %v", span.Events)
	}

	// Admin traces must not consume transaction IDs.
	if id := c.NextTxnID(); id != 3 {
		t.Errorf("next txn ID = %d, want 3 (admin ops must not consume txn IDs)", id)
	}
}
