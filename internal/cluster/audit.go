package cluster

import (
	"bytes"
	"fmt"

	"minraid/internal/core"
	"minraid/internal/msg"
)

// AuditReport is the result of a cross-site consistency audit.
type AuditReport struct {
	// ItemsChecked is the number of items compared.
	ItemsChecked int
	// CopiesCompared is the total number of (item, site) copies examined.
	CopiesCompared int
	// StaleCopies counts copies that are behind but properly fail-locked
	// — expected inconsistency, correctly tracked.
	StaleCopies int
	// UnavailableItems counts items with no up-to-date copy on any
	// operational site — possible under partial replication when every
	// hosting site is down or stale, and not a violation (the protocol
	// aborts transactions touching them).
	UnavailableItems int
	// Violations lists real consistency violations: copies that differ
	// without a fail-lock recording the fact, or fail-locked copies that
	// are somehow ahead of the fresh version.
	Violations []string
}

// OK reports whether the audit found no violations.
func (r AuditReport) OK() bool { return len(r.Violations) == 0 }

// String implements fmt.Stringer.
func (r AuditReport) String() string {
	if r.OK() {
		return fmt.Sprintf("audit OK: %d items, %d copies, %d properly fail-locked stale copies",
			r.ItemsChecked, r.CopiesCompared, r.StaleCopies)
	}
	return fmt.Sprintf("audit FAILED: %d violations (first: %s)", len(r.Violations), r.Violations[0])
}

// Prober is the managing-side view the audit needs: dimensions, the
// replica placement, status (with fail-lock snapshots) and database dumps.
// Both the in-process Cluster and the TCP controller implement it.
type Prober interface {
	Sites() int
	Items() int
	Replicas() *core.ReplicaMap
	Status(id core.SiteID, includeFailLocks bool) (*msg.StatusResp, error)
	Dump(id core.SiteID) ([]core.ItemVersion, error)
}

// Replicas implements Prober. It returns the managing site's current
// view of the placement — cfg.Replicas as configured, updated when
// Rebalance re-homes a lost site's copies.
func (c *Manager) Replicas() *core.ReplicaMap {
	return c.replicas.Load()
}

// Audit verifies the system's core invariant: every pair of copies of an
// item on operational sites is identical unless a fail-lock records that
// one of them missed updates — "fail-locks can properly track the location
// of the correct values for data items even when these values are spread
// out over multiple sites" (§5).
//
// The audit is driven from the managing site using dumps and status
// probes. It should be run while no transactions are in flight.
func (c *Manager) Audit() (AuditReport, error) { return Audit(c) }

// AuditQuorum verifies the quorum-consensus invariant: for every item,
// at least degree−readQuorum(degree)+1 of its hosting copies hold the
// latest committed version, so any read quorum over the item's copies
// intersects the fresh ones — divergence is impossible by construction,
// no fail-locks involved. Quorums are sized per item from its hosting
// degree, so the audit is exact under partial replication too. Two
// copies at the same version with different values is the hard
// violation: committed divergence, which quorum writes can never
// produce. Run it fully healed with every site up; quorum holds its
// invariant through partitions (the minority side aborts), but a down
// site hides copies this audit must count.
func (c *Manager) AuditQuorum() (AuditReport, error) {
	if c.pol == nil {
		return AuditReport{}, fmt.Errorf("cluster: quorum audit needs a quorum policy")
	}
	return AuditQuorum(c, c.pol.ReadQuorum)
}

// AuditQuorum runs the quorum-visibility audit through any Prober.
// readQuorum maps an item's copy count to its read-quorum size (the
// policy's ReadQuorum method).
func AuditQuorum(p Prober, readQuorum func(copies int) int) (AuditReport, error) {
	var report AuditReport
	sites, items := p.Sites(), p.Items()
	replicas := p.Replicas()
	dumps := make([][]core.ItemVersion, sites)
	for i := 0; i < sites; i++ {
		id := core.SiteID(i)
		st, err := p.Status(id, false)
		if err != nil {
			return report, err
		}
		if st.State != core.StatusUp {
			return report, fmt.Errorf("cluster: quorum audit needs every site up; %s is %s", id, st.State)
		}
		dump, err := p.Dump(id)
		if err != nil {
			return report, err
		}
		dumps[i], err = sparseDump(dump, replicas, id, items)
		if err != nil {
			return report, err
		}
	}
	for item := 0; item < items; item++ {
		report.ItemsChecked++
		hostMask := replicas.HostMask(core.ItemID(item))
		degree := replicas.Degree(core.ItemID(item))
		need := degree - readQuorum(degree) + 1
		var fresh core.ItemVersion
		for i := 0; i < sites; i++ {
			if hostMask&(1<<i) == 0 {
				continue
			}
			report.CopiesCompared++
			if iv := dumps[i][item]; iv.Version > fresh.Version {
				fresh = iv
			}
		}
		atFresh := 0
		for i := 0; i < sites; i++ {
			if hostMask&(1<<i) == 0 {
				continue
			}
			iv := dumps[i][item]
			if iv.Version != fresh.Version {
				report.StaleCopies++
				continue
			}
			if !bytes.Equal(iv.Value, fresh.Value) {
				report.Violations = append(report.Violations, fmt.Sprintf(
					"item %d: %s holds version %d with a different value — committed divergence",
					item, core.SiteID(i), iv.Version))
				continue
			}
			atFresh++
		}
		if fresh.Version != 0 && atFresh < need {
			report.Violations = append(report.Violations, fmt.Sprintf(
				"item %d: only %d of %d copies at fresh version %d, read quorum %d needs %d",
				item, atFresh, degree, fresh.Version, readQuorum(degree), need))
		}
	}
	return report, nil
}

// sparseDump validates a site's dump against the replica placement and
// spreads it into an items-length array indexed by ItemID. A hosted-only
// dump carries exactly the site's hosted copies (the sparse audit wire
// format); a full-replication dump carries one copy per item. Entries
// for items the site does not host stay zero and must never be compared.
func sparseDump(dump []core.ItemVersion, replicas *core.ReplicaMap, id core.SiteID, items int) ([]core.ItemVersion, error) {
	want := items
	if !replicas.IsFull() {
		want = replicas.HostedCount(id)
	}
	if len(dump) != want {
		return nil, fmt.Errorf("cluster: %s returned %d copies, want %d", id, len(dump), want)
	}
	out := make([]core.ItemVersion, items)
	for _, iv := range dump {
		if int(iv.Item) >= items {
			return nil, fmt.Errorf("cluster: %s dumped out-of-range item %d", id, iv.Item)
		}
		if !replicas.IsHost(iv.Item, id) {
			return nil, fmt.Errorf("cluster: %s dumped item %d it does not host", id, iv.Item)
		}
		out[iv.Item] = iv
	}
	return out, nil
}

// Audit runs the consistency audit through any Prober.
func Audit(p Prober) (AuditReport, error) {
	var report AuditReport
	sites, items := p.Sites(), p.Items()
	replicas := p.Replicas()

	// Find the operational sites and a reference fail-lock table. Tables
	// at operational sites are compared too: they must agree. Dumps are
	// hosted-only under partial replication (see sparseDump); fail-lock
	// tables are fully replicated regardless of placement.
	type siteView struct {
		id    core.SiteID
		dump  []core.ItemVersion
		locks []uint64
	}
	var views []siteView
	for i := 0; i < sites; i++ {
		id := core.SiteID(i)
		st, err := p.Status(id, true)
		if err != nil {
			return report, err
		}
		if st.State != core.StatusUp {
			continue
		}
		dump, err := p.Dump(id)
		if err != nil {
			return report, err
		}
		if len(st.FailLocks) != items {
			return report, fmt.Errorf("cluster: %s returned %d lock words for %d items", id, len(st.FailLocks), items)
		}
		sparse, err := sparseDump(dump, replicas, id, items)
		if err != nil {
			return report, err
		}
		views = append(views, siteView{id: id, dump: sparse, locks: st.FailLocks})
	}
	if len(views) == 0 {
		return report, fmt.Errorf("cluster: no operational site to audit")
	}

	// Fail-lock tables of operational sites must agree.
	ref := views[0]
	for _, v := range views[1:] {
		for item := 0; item < items; item++ {
			if ref.locks[item] != v.locks[item] {
				report.Violations = append(report.Violations, fmt.Sprintf(
					"fail-lock tables diverge on item %d: %s=%#x %s=%#x",
					item, ref.id, ref.locks[item], v.id, v.locks[item]))
			}
		}
	}

	for item := 0; item < items; item++ {
		report.ItemsChecked++
		hostMask := replicas.HostMask(core.ItemID(item))
		if stray := ref.locks[item] &^ hostMask; stray != 0 {
			report.Violations = append(report.Violations, fmt.Sprintf(
				"item %d: fail-locks %#x set for non-hosting sites", item, stray))
		}
		// The fresh version is the max across up-to-date operational
		// hosting copies; non-hosting sites hold no copy to compare.
		var fresh core.ItemVersion
		haveFresh := false
		hostingUp := 0
		for _, v := range views {
			if hostMask&(1<<v.id) == 0 {
				continue
			}
			hostingUp++
			report.CopiesCompared++
			if ref.locks[item]&(1<<v.id) != 0 {
				continue // this copy is fail-locked: stale by design
			}
			iv := v.dump[item]
			if !haveFresh || iv.Version > fresh.Version {
				fresh = iv
				haveFresh = true
			}
		}
		if !haveFresh {
			if hostingUp == 0 || !replicas.IsFull() {
				// All hosts down (or all their copies stale): data
				// unavailable, which the protocol handles by aborting.
				report.UnavailableItems++
				continue
			}
			report.Violations = append(report.Violations, fmt.Sprintf(
				"item %d: every operational copy is fail-locked", item))
			continue
		}
		for _, v := range views {
			if hostMask&(1<<v.id) == 0 {
				continue
			}
			iv := v.dump[item]
			locked := ref.locks[item]&(1<<v.id) != 0
			switch {
			case locked:
				report.StaleCopies++
				if iv.Version > fresh.Version {
					report.Violations = append(report.Violations, fmt.Sprintf(
						"item %d: fail-locked copy on %s has version %d ahead of fresh %d",
						item, v.id, iv.Version, fresh.Version))
				}
			case iv.Version != fresh.Version || !bytes.Equal(iv.Value, fresh.Value):
				report.Violations = append(report.Violations, fmt.Sprintf(
					"item %d: unlocked copy on %s (v%d) differs from fresh (v%d)",
					item, v.id, iv.Version, fresh.Version))
			}
		}
	}
	return report, nil
}
