package cluster

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"minraid/internal/core"
	"minraid/internal/policy"
	"minraid/internal/txn"
	"minraid/internal/workload"
)

// Concurrent mode is the paper's deferred future work: interleaved
// transaction execution under distributed strict 2PL. The safety property
// tested here is one-copy serializability's observable core: after any
// concurrent workload quiesces, all replicas are identical (audit OK) and
// aborts carry only the defined retriable reasons.

func concurrentCluster(t *testing.T, sites, items, degree int) *Cluster {
	t.Helper()
	return newTestCluster(t, Config{
		Sites: sites, Items: items,
		ConcurrentTxns: degree,
		AckTimeout:     100 * time.Millisecond,
	})
}

func TestConcurrentWritersConverge(t *testing.T) {
	const (
		sites   = 3
		items   = 10
		clients = 6
		perC    = 40
	)
	c := concurrentCluster(t, sites, items, 4)
	var wg sync.WaitGroup
	var mu sync.Mutex
	committed, lockAborts := 0, 0
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perC; i++ {
				id := c.NextTxnID()
				item := core.ItemID(rng.Intn(items))
				coord := core.SiteID(rng.Intn(sites))
				ops := []core.Op{
					core.Read(item),
					core.Write(item, []byte(fmt.Sprintf("c%d-%d", seed, i))),
				}
				res, err := c.ExecTxn(coord, id, ops)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if res.Committed {
					committed++
				} else if res.AbortReason == txn.AbortLockTimeout || res.AbortReason == txn.AbortDeadlock {
					lockAborts++
				} else {
					t.Errorf("unexpected abort: %q", res.AbortReason)
				}
				mu.Unlock()
			}
		}(int64(w + 1))
	}
	wg.Wait()
	if committed == 0 {
		t.Fatal("nothing committed under contention")
	}
	t.Logf("committed=%d lock-timeout aborts=%d", committed, lockAborts)

	// The decisive check: every replica of every item is identical.
	report, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() || report.StaleCopies != 0 {
		t.Errorf("replicas diverged under concurrency: %s", report)
	}
	// Versions are commit-ordered: each item's version equals the number
	// of commits that wrote it, and dumps agree across sites (covered by
	// the audit); spot-check monotonicity by re-reading.
	for i := 0; i < items; i++ {
		res, err := c.Exec(0, []core.Op{core.Read(core.ItemID(i))})
		if err != nil || !res.Committed {
			t.Fatalf("final read: %v %v", res, err)
		}
	}
}

func TestConcurrentOppositeOrderWritersResolve(t *testing.T) {
	// The classic deadlock shape: one client writes {1 then 2}, the other
	// {2 then 1}, in single transactions locking both. Lock-order
	// normalization inside a transaction (AcquireAll sorts) kills
	// same-site cycles; cross-site interleavings resolve by timeout. The
	// system must never hang and must stay convergent.
	c := concurrentCluster(t, 2, 4, 4)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			a, b := core.ItemID(1), core.ItemID(2)
			if worker == 1 {
				a, b = b, a
			}
			for i := 0; i < 30; i++ {
				id := c.NextTxnID()
				ops := []core.Op{
					core.Write(a, []byte{byte(worker), byte(i)}),
					core.Write(b, []byte{byte(worker), byte(i)}),
				}
				if _, err := c.ExecTxn(core.SiteID(worker), id, ops); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("opposite-order writers hung (undetected distributed deadlock)")
	}
	report, err := c.Audit()
	if err != nil || !report.OK() {
		t.Errorf("audit: %v %v", report, err)
	}
}

func TestConcurrentReadersDontBlockEachOther(t *testing.T) {
	c := concurrentCluster(t, 2, 4, 8)
	if res, _ := c.Exec(0, []core.Op{core.Write(0, []byte("shared"))}); !res.Committed {
		t.Fatal("seed write failed")
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := c.NextTxnID()
				res, err := c.ExecTxn(core.SiteID(worker%2), id, []core.Op{core.Read(0)})
				if err != nil || !res.Committed {
					t.Errorf("read failed: %v %v", res, err)
					return
				}
				if string(res.Reads[0].Value) != "shared" {
					t.Errorf("read = %q", res.Reads[0].Value)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestConcurrentModeWithFailureRecovery(t *testing.T) {
	// Concurrency plus the paper's failure machinery: writers keep going
	// while a site fails, and through the post-recovery period. Recovery
	// itself runs write-quiescent, as Config.ConcurrentTxns documents:
	// the type-1 control transaction is not serializable against
	// in-flight transactions (the session-vector checks abort stragglers
	// at the coordinator and participants, but an announcement still in
	// flight cannot veto a commit already decided).
	c := concurrentCluster(t, 3, 8, 3)
	runWriters := func(d time.Duration) {
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				gen := workload.NewUniform(8, 3, int64(99+worker)) // private RNG per client
				for {
					select {
					case <-stop:
						return
					default:
					}
					id := c.NextTxnID()
					coord := core.SiteID(worker % 2) // sites 0 and 1 stay up
					if _, err := c.ExecTxn(coord, id, gen.Next(id)); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		time.Sleep(d)
		close(stop)
		wg.Wait()
	}

	runWriters(50 * time.Millisecond)
	if err := c.Fail(2); err != nil {
		t.Fatal(err)
	}
	runWriters(300 * time.Millisecond) // writers race the failure detection
	if _, err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	runWriters(200 * time.Millisecond) // writers race the copier repair

	// Let in-flight stragglers finish before the drain: a call issued
	// just before stop can wait a full AckTimeout (100ms), a prepared
	// participant's decision timer fires at 4x AckTimeout, and the
	// resulting announcement fan-out takes up to another AckTimeout to
	// land. A fail-lock Set arriving after the drain cleared that item
	// leaves the tables divergent.
	time.Sleep(9 * 100 * time.Millisecond)

	// Under load, a lost ack can escalate into a full failure
	// announcement against a live site; nothing in the protocol heals a
	// declaration the manager never made, so later transactions silently
	// exclude the ostracized site. Repair exactly as the soak harness
	// does: complete the declared failure and recover it (all three
	// sites are truly up by now).
	if _, err := c.RepairFalseSuspicions([]bool{true, true, true}, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// Drain remaining fail-locks, then audit. Each drain transaction
	// both reads (exercising the fail-locked-copy refresh path at the
	// recovered coordinator) and writes: commit-time fail-lock
	// maintenance re-clears the bits of every operational site, which
	// reconciles tables left divergent by a lost-participant Set racing
	// a concurrent commit — the same non-serializability the comment
	// above documents for announcements.
	for i := 0; i < 8; i++ {
		id := c.NextTxnID()
		ops := []core.Op{core.Read(core.ItemID(i)), core.Write(core.ItemID(i), []byte("drained"))}
		res, err := c.ExecTxn(2, id, ops)
		if err != nil || !res.Committed {
			t.Fatalf("drain txn %d: %v %v", i, res, err)
		}
	}
	report, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() || report.StaleCopies != 0 {
		t.Errorf("audit after concurrent failure cycle: %s\n%s",
			report, strings.Join(report.Violations, "\n"))
	}
}

func TestConcurrentModeConfigGates(t *testing.T) {
	if _, err := New(Config{Sites: 2, Items: 4, ConcurrentTxns: 4, Policy: rowaPolicy()}); err == nil {
		t.Error("concurrent mode with non-ROWAA policy accepted")
	}
	if _, err := New(Config{
		Sites: 3, Items: 6, ConcurrentTxns: 4,
		Replicas: core.RoundRobinReplication(6, 3, 2),
	}); err == nil {
		t.Error("concurrent mode with partial replication accepted")
	}
}

// rowaPolicy avoids importing policy at every call site above.
func rowaPolicy() policy.Policy { return policy.ROWA{} }
