package cluster

import (
	"fmt"

	"minraid/internal/core"
	"minraid/internal/trace"
	"minraid/internal/transport"
)

// tcpFabric assembles a transport.Network from per-site TCP attachments
// on loopback: every database site plus the managing site owns its own
// *transport.TCP listener (ephemeral port, addresses distributed after
// all listeners are up), each wrapped in its own *transport.Chaos so the
// partition scheduler's SetLinkDown hooks and seeded fault injection
// work identically to the in-memory cluster. This is the cross-process
// wire (CRC framing, reconnect, per-sender dedup) exercised in-process —
// ROADMAP's "soak over TCP" open item.
//
// Per-link chaos determinism is preserved even though each site has its
// own Chaos instance: a site's instance only ever carries links whose
// From is that site, and link rng streams are seeded by (seed, from,
// to) — the same streams one shared instance would derive.
type tcpFabric struct {
	nets  map[core.SiteID]*transport.TCP
	chaos map[core.SiteID]*transport.Chaos
}

// newTCPFabric starts sites+1 loopback listeners and wires the address
// map. A nil chaosCfg still installs zero-config Chaos wrappers (pure
// pass-through) so administrative link cuts work without faults.
func newTCPFabric(sites int, chaosCfg *transport.ChaosConfig, tracer *trace.Recorder) (*tcpFabric, error) {
	f := &tcpFabric{
		nets:  make(map[core.SiteID]*transport.TCP, sites+1),
		chaos: make(map[core.SiteID]*transport.Chaos, sites+1),
	}
	ids := make([]core.SiteID, 0, sites+1)
	for i := 0; i < sites; i++ {
		ids = append(ids, core.SiteID(i))
	}
	ids = append(ids, core.ManagingSite)

	for _, id := range ids {
		n, err := transport.NewTCP(transport.TCPConfig{
			Self:   id,
			Addrs:  map[core.SiteID]string{id: "127.0.0.1:0"},
			Tracer: tracer,
		})
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("cluster: tcp fabric listener for %s: %w", id, err)
		}
		f.nets[id] = n
		cfg := transport.ChaosConfig{}
		if chaosCfg != nil {
			cfg = *chaosCfg
		}
		f.chaos[id] = transport.NewChaos(n, cfg)
	}
	// Every listener is up; distribute the actual ephemeral addresses.
	for _, n := range f.nets {
		for _, id := range ids {
			n.SetAddr(id, f.nets[id].Addr())
		}
	}
	return f, nil
}

// Endpoint implements transport.Network: each site attaches through its
// own chaos-wrapped TCP network.
func (f *tcpFabric) Endpoint(id core.SiteID) (transport.Endpoint, error) {
	ch, ok := f.chaos[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", transport.ErrUnknownSite, id)
	}
	return ch.Endpoint(id)
}

// Close implements transport.Network.
func (f *tcpFabric) Close() error {
	var first error
	for _, ch := range f.chaos {
		if err := ch.Close(); err != nil && first == nil {
			first = err
		}
	}
	// Chaos.Close closes its inner TCP; close any net whose wrapper was
	// never built (partial construction failure).
	for id, n := range f.nets {
		if _, ok := f.chaos[id]; !ok {
			if err := n.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// SetLinkDown cuts or restores the directed link from->to by driving the
// sender's chaos wrapper — the only instance that carries that link.
func (f *tcpFabric) SetLinkDown(from, to core.SiteID, down bool) {
	if ch, ok := f.chaos[from]; ok {
		ch.SetLinkDown(from, to, down)
	}
}

// Stats merges every site's chaos counters into one per-link map. Keys
// are disjoint across instances (each only carries its own outbound
// links), so this is a union.
func (f *tcpFabric) Stats() map[transport.LinkID]transport.LinkStats {
	out := make(map[transport.LinkID]transport.LinkStats)
	for _, ch := range f.chaos {
		for id, s := range ch.Stats() {
			merged := out[id]
			merged.Add(s)
			out[id] = merged
		}
	}
	return out
}

var _ transport.Network = (*tcpFabric)(nil)
