// Package cluster assembles a complete in-process mini-RAID system: N
// database sites on one memory transport plus the managing site, which
// "provide[s] interactive control of system actions ... used to cause
// sites to fail and recover and to initiate a database transaction to a
// site" (§1.2).
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"minraid/internal/core"
	"minraid/internal/metrics"
	"minraid/internal/msg"
	"minraid/internal/policy"
	"minraid/internal/site"
	"minraid/internal/storage"
	"minraid/internal/trace"
	"minraid/internal/transport"
)

// Config carries the system parameters the paper's managing site defines:
// database size, number of sites, and the protocol configuration.
type Config struct {
	// Sites is "the number of database sites for the transaction
	// processing (not including the managing site)".
	Sites int
	// Items is "the database size in terms of the number of data items".
	Items int
	// Policy is the replication protocol (nil: ROWAA).
	Policy policy.Policy
	// Delay is the per-hop inter-site communication cost (0 for unit
	// tests; 9ms reproduces the paper's hardware).
	Delay time.Duration
	// AckTimeout is each site's failure-detection timeout.
	AckTimeout time.Duration
	// ManagerTimeout bounds managing-site calls (transactions, recovery
	// waits). Default 30s.
	ManagerTimeout time.Duration
	// DisableFailLockMaintenance removes fail-lock code on every site
	// (experiment 1 ablation).
	DisableFailLockMaintenance bool
	// BatchCopierThreshold enables two-step recovery on every site.
	BatchCopierThreshold float64
	// InstantRecovery selects REDO-only recovery on every site: a
	// recovering site is operational the moment the type-1 announcement
	// installs its fail-lock set, serving clean reads immediately and
	// fail-locked reads through demand copiers, with the remaining stale
	// set left for the background scrubber (internal/scrub) instead of
	// the threshold/batch two-step. Mutually exclusive with
	// BatchCopierThreshold.
	InstantRecovery bool
	// EnableType3 enables type-3 control transactions on every site.
	EnableType3 bool
	// Type3Batch bounds the items one type-3 replication push carries;
	// larger endangered sets are chunked with the backup site re-chosen
	// per chunk (0: the site default).
	Type3Batch int
	// StoreFactory supplies per-site stores (nil: in-memory, as in the
	// paper).
	StoreFactory func(id core.SiteID) (storage.Store, error)
	// Replicas assigns items to hosting sites (nil: full replication,
	// the paper's assumption 4). Partial replication requires ROWAA.
	Replicas *core.ReplicaMap
	// ConcurrentTxns enables interleaved transaction execution under
	// distributed strict 2PL on every site (the paper's deferred
	// concurrency-control future work); 0 or 1 keeps serial processing.
	ConcurrentTxns int
	// LockWaitBudget bounds a concurrent-mode lock wait at every site;
	// zero defaults to half the ack timeout (see site.Config).
	LockWaitBudget time.Duration
	// Tracer receives structured trace events from every site and
	// per-kind message counts from the transport. Nil allocates a shared
	// recorder with the default capacity.
	Tracer *trace.Recorder
	// Chaos, when non-nil, wraps the transport in a seeded
	// fault-injection layer (per-link message drop, duplication and
	// latency jitter) — the adversarial wire the paper's assumption 1
	// rules out. Managing-site links should normally stay exempt
	// (ChaosConfig.ExemptManager) so control and measurement traffic
	// remains reliable while the protocol links misbehave.
	Chaos *transport.ChaosConfig
	// Transport selects the wire: "" or "memory" runs the in-process
	// memory transport; "tcp" assembles a loopback TCP fabric — one
	// listener per site plus the manager, CRC framing, reconnect and
	// per-sender dedup — so the soak exercises the cross-process wire.
	Transport string
	// TxnIDBase offsets transaction-ID allocation: the first ID handed
	// out is TxnIDBase+1. Multi-epoch soaks that persist stores across
	// cluster instances use it to keep item versions (= txn IDs)
	// monotone across epochs; 0 numbers from 1 as the paper does.
	TxnIDBase uint64
}

// Cluster is a running mini-RAID system.
type Cluster struct {
	cfg Config
	// net is the underlying memory transport (nil on the TCP fabric);
	// network is what sites attach to — net itself, the chaos decorator
	// around it, or the TCP fabric.
	net     *transport.Memory
	network transport.Network
	chaos   *transport.Chaos
	fabric  *tcpFabric
	sites   []*site.Site
	mgr     transport.Endpoint
	caller  *transport.Caller
	tracer  *trace.Recorder

	nextTxn   atomic.Uint64
	nextAdmin atomic.Uint64

	// replicas is the managing site's view of the current placement. It
	// starts as cfg.Replicas (nil: full replication) and is replaced,
	// copy-on-write, when Rebalance re-homes a permanently lost site's
	// copies. removed is the bitmask of sites Rebalance retired; they can
	// never recover (their copies now live elsewhere).
	replicas atomic.Pointer[core.ReplicaMap]
	removed  atomic.Uint64

	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Sites <= 0 || cfg.Sites > core.MaxSites {
		return nil, fmt.Errorf("cluster: %d sites out of range", cfg.Sites)
	}
	if cfg.Items <= 0 {
		return nil, fmt.Errorf("cluster: %d items out of range", cfg.Items)
	}
	if cfg.ManagerTimeout <= 0 {
		cfg.ManagerTimeout = 30 * time.Second
	}
	if cfg.Tracer == nil {
		cfg.Tracer = trace.NewRecorder(0)
	}
	c := &Cluster{cfg: cfg, tracer: cfg.Tracer}
	if cfg.Replicas != nil {
		c.replicas.Store(cfg.Replicas)
	} else {
		c.replicas.Store(core.FullReplication(cfg.Items, cfg.Sites))
	}
	switch cfg.Transport {
	case "", "memory":
		net := transport.NewMemory(transport.MemoryConfig{Sites: cfg.Sites, Delay: cfg.Delay})
		net.SetTracer(cfg.Tracer)
		c.net, c.network = net, net
		if cfg.Chaos != nil {
			c.chaos = transport.NewChaos(net, *cfg.Chaos)
			c.network = c.chaos
		}
	case "tcp":
		fabric, err := newTCPFabric(cfg.Sites, cfg.Chaos, cfg.Tracer)
		if err != nil {
			return nil, err
		}
		c.fabric, c.network = fabric, fabric
	default:
		return nil, fmt.Errorf("cluster: unknown transport %q", cfg.Transport)
	}
	c.nextTxn.Store(cfg.TxnIDBase)

	for i := 0; i < cfg.Sites; i++ {
		id := core.SiteID(i)
		var store storage.Store
		if cfg.StoreFactory != nil {
			var err error
			store, err = cfg.StoreFactory(id)
			if err != nil {
				c.network.Close()
				return nil, fmt.Errorf("cluster: store for %s: %w", id, err)
			}
		}
		s, err := site.New(site.Config{
			ID:                         id,
			Sites:                      cfg.Sites,
			Items:                      cfg.Items,
			Policy:                     cfg.Policy,
			Store:                      store,
			AckTimeout:                 cfg.AckTimeout,
			DisableFailLockMaintenance: cfg.DisableFailLockMaintenance,
			BatchCopierThreshold:       cfg.BatchCopierThreshold,
			InstantRecovery:            cfg.InstantRecovery,
			EnableType3:                cfg.EnableType3,
			Type3Batch:                 cfg.Type3Batch,
			Replicas:                   cfg.Replicas,
			ConcurrentTxns:             cfg.ConcurrentTxns,
			LockWaitBudget:             cfg.LockWaitBudget,
			Tracer:                     cfg.Tracer,
		}, c.network)
		if err != nil {
			c.network.Close()
			return nil, err
		}
		c.sites = append(c.sites, s)
	}

	mgr, err := c.network.Endpoint(core.ManagingSite)
	if err != nil {
		c.network.Close()
		return nil, err
	}
	c.mgr = mgr
	c.caller = transport.NewCaller(mgr, cfg.ManagerTimeout)

	for _, s := range c.sites {
		s.Start()
	}
	c.wg.Add(1)
	go c.run()
	return c, nil
}

// run is the managing site's receive loop: it only consumes replies.
func (c *Cluster) run() {
	defer c.wg.Done()
	for {
		env, ok := c.mgr.Recv()
		if !ok {
			return
		}
		c.caller.Deliver(env)
	}
}

// Close stops every site and the network.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		for _, s := range c.sites {
			s.Stop()
		}
		c.caller.CancelAll()
		c.network.Close()
		c.wg.Wait()
	})
}

// Sites returns the number of database sites.
func (c *Cluster) Sites() int { return c.cfg.Sites }

// Items returns the database size.
func (c *Cluster) Items() int { return c.cfg.Items }

// Site returns the site object (for in-process metrics access).
func (c *Cluster) Site(id core.SiteID) *site.Site { return c.sites[id] }

// Registry returns site id's metrics registry.
func (c *Cluster) Registry(id core.SiteID) *metrics.Registry { return c.sites[id].Metrics() }

// Tracer returns the cluster-wide trace recorder.
func (c *Cluster) Tracer() *trace.Recorder { return c.tracer }

// adminTrace allocates a trace ID for a managing-site admin operation
// (fail/recover). Admin IDs live above trace.AdminBase so they never
// collide with transaction IDs, and they draw from their own counter so
// tracing does not perturb the transaction numbering experiments rely on.
func (c *Cluster) adminTrace() uint64 {
	return uint64(trace.AdminBase) + c.nextAdmin.Add(1)
}

// MessagesSent returns the network-wide message count (memory transport
// only; the TCP fabric reports 0 — use the tracer's per-kind counts).
func (c *Cluster) MessagesSent() uint64 {
	if c.net == nil {
		return 0
	}
	return c.net.MessagesSent()
}

// ChaosStats snapshots the chaos layer's per-link decision counters, or
// nil when the cluster runs without chaos. Two runs with the same chaos
// seed and workload produce identical counters — the reproducibility
// check soak runs assert. Administrative cuts (SetLinkDown through the
// chaos layer) appear in the Cut field.
func (c *Cluster) ChaosStats() map[transport.LinkID]transport.LinkStats {
	if c.chaos != nil {
		return c.chaos.Stats()
	}
	if c.fabric != nil {
		return c.fabric.Stats()
	}
	return nil
}

// SetLinkDown makes the directed link from->to silently drop messages, or
// restores it. Managing-site links are unaffected. The cut is applied at
// the highest layer running — the chaos decorator (where it is counted
// in LinkStats.Cut), the TCP fabric's per-site chaos wrappers, or the
// bare memory transport.
func (c *Cluster) SetLinkDown(from, to core.SiteID, down bool) {
	switch {
	case c.chaos != nil:
		c.chaos.SetLinkDown(from, to, down)
	case c.fabric != nil:
		c.fabric.SetLinkDown(from, to, down)
	default:
		c.net.SetLinkDown(from, to, down)
	}
}

// SetLinkDropAfter lets the directed link from->to deliver n more messages
// and then drop the rest (negative n removes the limit) — fault injection
// for mid-protocol failures. Memory transport only.
func (c *Cluster) SetLinkDropAfter(from, to core.SiteID, n int) {
	c.net.SetLinkDropAfter(from, to, n)
}

// Partition cuts (down=true) or heals (down=false) every link between the
// two site groups, in both directions — a symmetric network partition.
// The paper's experiments fail whole sites; partitions are the other
// hazard fail-locks are defined against ("a copy of a data item is being
// updated while some other copies are unavailable due to site failure or
// network partitioning", §1.1).
func (c *Cluster) Partition(groupA, groupB []core.SiteID, down bool) {
	for _, a := range groupA {
		for _, b := range groupB {
			c.SetLinkDown(a, b, down)
			c.SetLinkDown(b, a, down)
		}
	}
}

// NextTxnID allocates the next transaction identifier. The managing site
// numbers transactions sequentially from TxnIDBase+1 (from 1, as the
// paper does, unless a multi-epoch soak carries the counter forward).
func (c *Cluster) NextTxnID() core.TxnID { return core.TxnID(c.nextTxn.Add(1)) }

// LastTxnID returns the highest transaction ID allocated so far (or
// TxnIDBase if none were). A persisting soak feeds this into the next
// epoch's TxnIDBase so on-disk item versions stay monotone.
func (c *Cluster) LastTxnID() uint64 { return c.nextTxn.Load() }

// Errors returned by the managing-site operations.
var (
	// ErrNoResponse means the target site never answered — it is down or
	// the call outlived ManagerTimeout.
	ErrNoResponse = errors.New("cluster: site did not respond")
	// ErrRecoveryBlocked means recovery failed because no operational
	// site could supply the session vector and fail-locks.
	ErrRecoveryBlocked = errors.New("cluster: recovery blocked: no operational donor")
	// ErrSiteRemoved means the site was permanently retired by Rebalance
	// and can never rejoin: its copies have been re-homed.
	ErrSiteRemoved = errors.New("cluster: site permanently removed by rebalance")
)

// Exec sends one database transaction to the given coordinator and waits
// for its outcome. The transaction ID is allocated automatically.
func (c *Cluster) Exec(coordinator core.SiteID, ops []core.Op) (*msg.TxnResult, error) {
	return c.ExecTxn(coordinator, c.NextTxnID(), ops)
}

// ExecTxn sends a database transaction with an explicit ID.
func (c *Cluster) ExecTxn(coordinator core.SiteID, id core.TxnID, ops []core.Op) (*msg.TxnResult, error) {
	return c.ExecTxnTimeout(coordinator, id, ops, c.cfg.ManagerTimeout)
}

// ExecTxnTimeout is ExecTxn with a per-call reply deadline (non-positive
// falls back to ManagerTimeout). Background repair traffic — the
// scrubber's read batches — uses it so a transaction racing a Fail order
// stalls for a bounded wait, not the full manager timeout.
func (c *Cluster) ExecTxnTimeout(coordinator core.SiteID, id core.TxnID, ops []core.Op, timeout time.Duration) (*msg.TxnResult, error) {
	if timeout <= 0 {
		timeout = c.cfg.ManagerTimeout
	}
	start := time.Now()
	reply, err := c.caller.CallTimeoutT(uint64(id), coordinator, &msg.ClientTxn{Txn: id, Ops: ops}, timeout)
	if err != nil {
		return nil, fmt.Errorf("%w: %s (txn %d): %v", ErrNoResponse, coordinator, id, err)
	}
	res, ok := reply.Body.(*msg.TxnResult)
	if !ok {
		return nil, fmt.Errorf("cluster: unexpected reply %s to txn %d", reply.Body.Kind(), id)
	}
	c.tracer.Emit(trace.ID(id), core.ManagingSite, trace.PhaseInject,
		fmt.Sprintf("coord=%d ops=%d", coordinator, len(ops)), start)
	return res, nil
}

// Fail orders a site to simulate failure and waits for the acknowledgement.
func (c *Cluster) Fail(id core.SiteID) error {
	if _, err := c.caller.CallT(c.adminTrace(), id, &msg.FailSim{}); err != nil {
		return fmt.Errorf("%w: failing %s: %v", ErrNoResponse, id, err)
	}
	return nil
}

// Recover orders a failed site to recover and waits until recovery
// completes (the site replies with its status once the type-1 control
// transaction has finished). ErrRecoveryBlocked is returned when no
// operational site could act as donor. A site retired by Rebalance is
// permanently removed — its copies live elsewhere now — and is refused
// with ErrSiteRemoved.
func (c *Cluster) Recover(id core.SiteID) (*msg.StatusResp, error) {
	if c.removed.Load()&(1<<id) != 0 {
		return nil, fmt.Errorf("%w: %s", ErrSiteRemoved, id)
	}
	reply, err := c.caller.CallT(c.adminTrace(), id, &msg.RecoverSim{})
	if err != nil {
		return nil, fmt.Errorf("%w: recovering %s: %v", ErrNoResponse, id, err)
	}
	st, ok := reply.Body.(*msg.StatusResp)
	if !ok {
		return nil, fmt.Errorf("cluster: unexpected reply %s to recover", reply.Body.Kind())
	}
	if st.State != core.StatusUp {
		return st, ErrRecoveryBlocked
	}
	return st, nil
}

// Status queries a site's replicated-copy-control state. Works even on a
// failed site (out-of-band instrumentation).
func (c *Cluster) Status(id core.SiteID, includeFailLocks bool) (*msg.StatusResp, error) {
	reply, err := c.caller.Call(id, &msg.StatusReq{IncludeFailLocks: includeFailLocks})
	if err != nil {
		return nil, fmt.Errorf("%w: status of %s: %v", ErrNoResponse, id, err)
	}
	st, ok := reply.Body.(*msg.StatusResp)
	if !ok {
		return nil, fmt.Errorf("cluster: unexpected reply %s to status", reply.Body.Kind())
	}
	return st, nil
}

// Dump returns a site's versioned database copy: every item under full
// replication, only the hosted items under a partial map (the audits
// reconstruct placement-aware views from the sparse dump, keeping audit
// payloads O(items×degree) instead of O(items×sites)).
func (c *Cluster) Dump(id core.SiteID) ([]core.ItemVersion, error) {
	reply, err := c.caller.Call(id, &msg.DumpReq{First: 0, Last: core.ItemID(c.cfg.Items - 1), HostedOnly: true})
	if err != nil {
		return nil, fmt.Errorf("%w: dump of %s: %v", ErrNoResponse, id, err)
	}
	resp, ok := reply.Body.(*msg.DumpResp)
	if !ok {
		return nil, fmt.Errorf("cluster: unexpected reply %s to dump", reply.Body.Kind())
	}
	return resp.Items, nil
}

// FailLockCount returns, as observed by observer's table, how many items
// are fail-locked for target — the quantity plotted in the paper's figures.
func (c *Cluster) FailLockCount(observer, target core.SiteID) (int, error) {
	st, err := c.Status(observer, false)
	if err != nil {
		return 0, err
	}
	if int(target) >= len(st.FailLockCounts) {
		return 0, fmt.Errorf("cluster: target %s out of range", target)
	}
	return int(st.FailLockCounts[target]), nil
}
