// Package cluster assembles a complete in-process mini-RAID system: N
// database sites on one memory transport plus the managing site, which
// "provide[s] interactive control of system actions ... used to cause
// sites to fail and recover and to initiate a database transaction to a
// site" (§1.2). The managing-site control plane itself — transaction
// injection, fail/recover orders, audits, reconciliation, repair — lives
// in Manager, which is pure request/response messaging and also drives
// fleets of raidsrv OS processes over real TCP (internal/deploy).
package cluster

import (
	"fmt"
	"sync"
	"time"

	"minraid/internal/core"
	"minraid/internal/metrics"
	"minraid/internal/policy"
	"minraid/internal/site"
	"minraid/internal/storage"
	"minraid/internal/trace"
	"minraid/internal/transport"
)

// Config carries the system parameters the paper's managing site defines:
// database size, number of sites, and the protocol configuration.
type Config struct {
	// Sites is "the number of database sites for the transaction
	// processing (not including the managing site)".
	Sites int
	// Items is "the database size in terms of the number of data items".
	Items int
	// Policy is the replication protocol (nil: ROWAA).
	Policy policy.Policy
	// Delay is the per-hop inter-site communication cost (0 for unit
	// tests; 9ms reproduces the paper's hardware).
	Delay time.Duration
	// AckTimeout is each site's failure-detection timeout.
	AckTimeout time.Duration
	// ManagerTimeout bounds managing-site calls (transactions, recovery
	// waits). Default 30s.
	ManagerTimeout time.Duration
	// DisableFailLockMaintenance removes fail-lock code on every site
	// (experiment 1 ablation).
	DisableFailLockMaintenance bool
	// BatchCopierThreshold enables two-step recovery on every site.
	BatchCopierThreshold float64
	// InstantRecovery selects REDO-only recovery on every site: a
	// recovering site is operational the moment the type-1 announcement
	// installs its fail-lock set, serving clean reads immediately and
	// fail-locked reads through demand copiers, with the remaining stale
	// set left for the background scrubber (internal/scrub) instead of
	// the threshold/batch two-step. Mutually exclusive with
	// BatchCopierThreshold.
	InstantRecovery bool
	// EnableType3 enables type-3 control transactions on every site.
	EnableType3 bool
	// Type3Batch bounds the items one type-3 replication push carries;
	// larger endangered sets are chunked with the backup site re-chosen
	// per chunk (0: the site default).
	Type3Batch int
	// StoreFactory supplies per-site stores (nil: in-memory, as in the
	// paper).
	StoreFactory func(id core.SiteID) (storage.Store, error)
	// Replicas assigns items to hosting sites (nil: full replication,
	// the paper's assumption 4). Partial replication requires ROWAA.
	Replicas *core.ReplicaMap
	// ConcurrentTxns enables interleaved transaction execution under
	// distributed strict 2PL on every site (the paper's deferred
	// concurrency-control future work); 0 or 1 keeps serial processing.
	ConcurrentTxns int
	// LockWaitBudget bounds a concurrent-mode lock wait at every site;
	// zero defaults to half the ack timeout (see site.Config).
	LockWaitBudget time.Duration
	// CommitEpoch enables epoch-batched commit on every site: phase-two
	// fan-outs flush once per epoch boundary instead of per transaction
	// (see site.Config.CommitEpoch). Zero keeps per-transaction commit.
	CommitEpoch time.Duration
	// Tracer receives structured trace events from every site and
	// per-kind message counts from the transport. Nil allocates a shared
	// recorder with the default capacity.
	Tracer *trace.Recorder
	// Chaos, when non-nil, wraps the transport in a seeded
	// fault-injection layer (per-link message drop, duplication and
	// latency jitter) — the adversarial wire the paper's assumption 1
	// rules out. Managing-site links should normally stay exempt
	// (ChaosConfig.ExemptManager) so control and measurement traffic
	// remains reliable while the protocol links misbehave.
	Chaos *transport.ChaosConfig
	// Transport selects the wire: "" or "memory" runs the in-process
	// memory transport; "tcp" assembles a loopback TCP fabric — one
	// listener per site plus the manager, CRC framing, reconnect and
	// per-sender dedup — so the soak exercises the cross-process wire.
	Transport string
	// TxnIDBase offsets transaction-ID allocation: the first ID handed
	// out is TxnIDBase+1. Multi-epoch soaks that persist stores across
	// cluster instances use it to keep item versions (= txn IDs)
	// monotone across epochs; 0 numbers from 1 as the paper does.
	TxnIDBase uint64
}

// Cluster is a running mini-RAID system: the sites, the wire they attach
// to, and the embedded Manager that is the managing site's control plane.
type Cluster struct {
	*Manager

	cfg Config
	// net is the underlying memory transport (nil on the TCP fabric);
	// network is what sites attach to — net itself, the chaos decorator
	// around it, or the TCP fabric.
	net     *transport.Memory
	network transport.Network
	chaos   *transport.Chaos
	fabric  *tcpFabric
	sites   []*site.Site
	mgr     transport.Endpoint

	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Sites <= 0 || cfg.Sites > core.MaxSites {
		return nil, fmt.Errorf("cluster: %d sites out of range", cfg.Sites)
	}
	if cfg.Items <= 0 {
		return nil, fmt.Errorf("cluster: %d items out of range", cfg.Items)
	}
	if cfg.ManagerTimeout <= 0 {
		cfg.ManagerTimeout = 30 * time.Second
	}
	if cfg.Tracer == nil {
		cfg.Tracer = trace.NewRecorder(0)
	}
	c := &Cluster{cfg: cfg}
	switch cfg.Transport {
	case "", "memory":
		net := transport.NewMemory(transport.MemoryConfig{Sites: cfg.Sites, Delay: cfg.Delay})
		net.SetTracer(cfg.Tracer)
		c.net, c.network = net, net
		if cfg.Chaos != nil {
			c.chaos = transport.NewChaos(net, *cfg.Chaos)
			c.network = c.chaos
		}
	case "tcp":
		fabric, err := newTCPFabric(cfg.Sites, cfg.Chaos, cfg.Tracer)
		if err != nil {
			return nil, err
		}
		c.fabric, c.network = fabric, fabric
	default:
		return nil, fmt.Errorf("cluster: unknown transport %q", cfg.Transport)
	}

	for i := 0; i < cfg.Sites; i++ {
		id := core.SiteID(i)
		var store storage.Store
		if cfg.StoreFactory != nil {
			var err error
			store, err = cfg.StoreFactory(id)
			if err != nil {
				c.network.Close()
				return nil, fmt.Errorf("cluster: store for %s: %w", id, err)
			}
		}
		s, err := site.New(site.Config{
			ID:                         id,
			Sites:                      cfg.Sites,
			Items:                      cfg.Items,
			Policy:                     cfg.Policy,
			Store:                      store,
			AckTimeout:                 cfg.AckTimeout,
			DisableFailLockMaintenance: cfg.DisableFailLockMaintenance,
			BatchCopierThreshold:       cfg.BatchCopierThreshold,
			InstantRecovery:            cfg.InstantRecovery,
			EnableType3:                cfg.EnableType3,
			Type3Batch:                 cfg.Type3Batch,
			Replicas:                   cfg.Replicas,
			ConcurrentTxns:             cfg.ConcurrentTxns,
			LockWaitBudget:             cfg.LockWaitBudget,
			CommitEpoch:                cfg.CommitEpoch,
			Tracer:                     cfg.Tracer,
		}, c.network)
		if err != nil {
			c.network.Close()
			return nil, err
		}
		c.sites = append(c.sites, s)
	}

	mgr, err := c.network.Endpoint(core.ManagingSite)
	if err != nil {
		c.network.Close()
		return nil, err
	}
	c.mgr = mgr
	c.Manager, err = NewManager(transport.NewCaller(mgr, cfg.ManagerTimeout), ManagerConfig{
		Sites:     cfg.Sites,
		Items:     cfg.Items,
		Policy:    cfg.Policy,
		Timeout:   cfg.ManagerTimeout,
		Replicas:  cfg.Replicas,
		Tracer:    cfg.Tracer,
		TxnIDBase: cfg.TxnIDBase,
	})
	if err != nil {
		c.network.Close()
		return nil, err
	}

	for _, s := range c.sites {
		s.Start()
	}
	c.wg.Add(1)
	go c.run()
	return c, nil
}

// run is the managing site's receive loop: it only consumes replies.
func (c *Cluster) run() {
	defer c.wg.Done()
	for {
		env, ok := c.mgr.Recv()
		if !ok {
			return
		}
		c.caller.Deliver(env)
	}
}

// Close stops every site and the network.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		for _, s := range c.sites {
			s.Stop()
		}
		c.caller.CancelAll()
		c.network.Close()
		c.wg.Wait()
	})
}

// Site returns the site object (for in-process metrics access).
func (c *Cluster) Site(id core.SiteID) *site.Site { return c.sites[id] }

// Registry returns site id's metrics registry.
func (c *Cluster) Registry(id core.SiteID) *metrics.Registry { return c.sites[id].Metrics() }

// MessagesSent returns the network-wide message count (memory transport
// only; the TCP fabric reports 0 — use the tracer's per-kind counts).
func (c *Cluster) MessagesSent() uint64 {
	if c.net == nil {
		return 0
	}
	return c.net.MessagesSent()
}

// ChaosStats snapshots the chaos layer's per-link decision counters, or
// nil when the cluster runs without chaos. Two runs with the same chaos
// seed and workload produce identical counters — the reproducibility
// check soak runs assert. Administrative cuts (SetLinkDown through the
// chaos layer) appear in the Cut field.
func (c *Cluster) ChaosStats() map[transport.LinkID]transport.LinkStats {
	if c.chaos != nil {
		return c.chaos.Stats()
	}
	if c.fabric != nil {
		return c.fabric.Stats()
	}
	return nil
}

// SetLinkDown makes the directed link from->to silently drop messages, or
// restores it. Managing-site links are unaffected. The cut is applied at
// the highest layer running — the chaos decorator (where it is counted
// in LinkStats.Cut), the TCP fabric's per-site chaos wrappers, or the
// bare memory transport.
func (c *Cluster) SetLinkDown(from, to core.SiteID, down bool) {
	switch {
	case c.chaos != nil:
		c.chaos.SetLinkDown(from, to, down)
	case c.fabric != nil:
		c.fabric.SetLinkDown(from, to, down)
	default:
		c.net.SetLinkDown(from, to, down)
	}
}

// SetLinkDropAfter lets the directed link from->to deliver n more messages
// and then drop the rest (negative n removes the limit) — fault injection
// for mid-protocol failures. Memory transport only.
func (c *Cluster) SetLinkDropAfter(from, to core.SiteID, n int) {
	c.net.SetLinkDropAfter(from, to, n)
}

// Partition cuts (down=true) or heals (down=false) every link between the
// two site groups, in both directions — a symmetric network partition.
// The paper's experiments fail whole sites; partitions are the other
// hazard fail-locks are defined against ("a copy of a data item is being
// updated while some other copies are unavailable due to site failure or
// network partitioning", §1.1).
func (c *Cluster) Partition(groupA, groupB []core.SiteID, down bool) {
	for _, a := range groupA {
		for _, b := range groupB {
			c.SetLinkDown(a, b, down)
			c.SetLinkDown(b, a, down)
		}
	}
}
