package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"minraid/internal/core"
	"minraid/internal/policy"
	"minraid/internal/txn"
)

// Epoch-batched commit defers the phase-two fan-out to an epoch boundary
// and answers the client off the flush. The tests here pin its safety
// envelope: convergence under concurrency, the serial degenerate case,
// survival of participant failure mid-stream, and the configuration
// guardrails.

func epochCluster(t *testing.T, sites, items, degree int, epoch time.Duration) *Cluster {
	t.Helper()
	return newTestCluster(t, Config{
		Sites: sites, Items: items,
		ConcurrentTxns: degree,
		CommitEpoch:    epoch,
		// Generous for the in-memory fabric: a -race scheduler stall must
		// not read as a lost commit ack and fail-lock a healthy site.
		AckTimeout: 250 * time.Millisecond,
	})
}

// TestEpochCommitConverges: concurrent writers through the batcher leave
// every replica identical, and transactions genuinely commit.
func TestEpochCommitConverges(t *testing.T) {
	const (
		sites   = 4
		items   = 24
		clients = 4
		perC    = 25
	)
	c := epochCluster(t, sites, items, 8, 2*time.Millisecond)
	var wg sync.WaitGroup
	var mu sync.Mutex
	committed := 0
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perC; i++ {
				id := c.NextTxnID()
				item := core.ItemID((w*perC + i) % items)
				ops := []core.Op{core.Write(item, []byte(fmt.Sprintf("w%d-%d", w, i)))}
				res, err := c.ExecTxn(core.SiteID(w%sites), id, ops)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if res.Committed {
					committed++
				} else if res.AbortReason != txn.AbortLockTimeout && res.AbortReason != txn.AbortDeadlock {
					t.Errorf("unexpected abort: %q", res.AbortReason)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if committed == 0 {
		t.Fatal("nothing committed through the epoch batcher")
	}
	// Batches answered at flush time are on the wire but possibly not yet
	// applied at participants; let them land before comparing copies.
	time.Sleep(50 * time.Millisecond)
	report, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() || report.StaleCopies != 0 {
		t.Errorf("replicas diverged under epoch commit: %s", report)
	}
}

// TestEpochCommitSerialDegenerates: with serial processing (gate of one)
// the batcher flushes immediately per transaction — a single transaction
// must not stall for the epoch timer's worth of wall clock.
func TestEpochCommitSerialDegenerates(t *testing.T) {
	const epoch = 2 * time.Second // would dwarf the test if ever waited on
	c := newTestCluster(t, Config{
		Sites: 3, Items: 8,
		CommitEpoch: epoch,
		AckTimeout:  3 * time.Second,
	})
	start := time.Now()
	for i := 0; i < 5; i++ {
		res, err := c.ExecTxn(0, c.NextTxnID(), []core.Op{core.Write(core.ItemID(i), []byte{byte(i)})})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Committed {
			t.Fatalf("txn %d aborted: %s", i, res.AbortReason)
		}
	}
	if elapsed := time.Since(start); elapsed > epoch {
		t.Fatalf("serial transactions waited on the epoch timer: %v elapsed", elapsed)
	}
	time.Sleep(20 * time.Millisecond)
	report, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Errorf("audit: %s", report)
	}
}

// TestEpochCommitSurvivesParticipantFailure: a site failed between
// epochs is handled like the stock protocol handles a lost participant —
// later transactions commit without it, its copies are fail-locked, and
// recovery plus the audit converge.
func TestEpochCommitSurvivesParticipantFailure(t *testing.T) {
	c := epochCluster(t, 4, 12, 4, 2*time.Millisecond)
	run := func(n int) {
		t.Helper()
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := c.ExecTxn(0, c.NextTxnID(), []core.Op{core.Write(core.ItemID(i % 12), []byte{byte(i)})})
				if err != nil {
					t.Error(err)
					return
				}
				switch {
				case res.Committed:
				case res.AbortReason == txn.AbortLockTimeout,
					res.AbortReason == txn.AbortDeadlock,
					res.AbortReason == txn.AbortParticipantDown:
				default:
					t.Errorf("txn %d: %s", i, res.AbortReason)
				}
			}(i)
		}
		wg.Wait()
	}
	run(8)
	if err := c.Fail(2); err != nil {
		t.Fatal(err)
	}
	run(8)
	if _, err := c.RecoverWithRetry(2, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Recovery readmits the site; copies written while it was down stay
	// fail-locked until copier transactions true them up.
	if _, remaining, err := c.DrainFailLocks([]bool{true, true, true, true}, 0); err != nil {
		t.Fatal(err)
	} else if remaining != 0 {
		t.Fatalf("%d fail-locks survived the drain", remaining)
	}
	time.Sleep(50 * time.Millisecond)
	report, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() || report.StaleCopies != 0 {
		t.Errorf("audit after failure cycle: %s", report)
	}
}

// TestEpochCommitConfigGuardrails: the batcher requires ROWAA and an
// epoch under the ack timeout — a batched commit must never look like a
// lost coordinator to the participants' decision timers.
func TestEpochCommitConfigGuardrails(t *testing.T) {
	quorum, ok := policy.ByName("quorum")
	if !ok {
		t.Fatal("quorum policy missing")
	}
	if _, err := New(Config{
		Sites: 3, Items: 8, Policy: quorum,
		CommitEpoch: time.Millisecond,
		AckTimeout:  100 * time.Millisecond,
	}); err == nil {
		t.Fatal("epoch commit accepted a non-rowaa policy")
	}
	if _, err := New(Config{
		Sites: 3, Items: 8,
		CommitEpoch: 200 * time.Millisecond,
		AckTimeout:  100 * time.Millisecond,
	}); err == nil {
		t.Fatal("epoch commit accepted an epoch at or above the ack timeout")
	}
}
