package cluster

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"minraid/internal/core"
	"minraid/internal/policy"
)

// TestReconcileSplitBrain drives a full ROWAA split brain and repairs it:
// partition {0} | {1,2}, conflicting writes on both sides, heal, then
// session-vector comparison + fail-lock collection + copier drain must
// leave every copy at the highest committed version and the audit clean.
func TestReconcileSplitBrain(t *testing.T) {
	const ack = 40 * time.Millisecond
	c := newTestCluster(t, Config{Sites: 3, Items: 10, AckTimeout: ack})
	trueUp := []bool{true, true, true}

	c.Partition([]core.SiteID{0}, []core.SiteID{1, 2}, true)
	// Both sides write item 0; the first write on each side eats the ack
	// timeout, announces the other side failed, and sets fail-locks.
	var minorityLast, majorityLast *core.TxnID
	for i := 0; i < 4; i++ {
		res, err := c.Exec(0, []core.Op{core.Write(0, []byte{byte(0x10 + i)})})
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed {
			id := core.TxnID(res.Txn)
			minorityLast = &id
		}
		res, err = c.Exec(1, []core.Op{core.Write(0, []byte{byte(0x20 + i)})})
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed {
			id := core.TxnID(res.Txn)
			majorityLast = &id
		}
	}
	if minorityLast == nil || majorityLast == nil {
		t.Fatal("split brain did not form: a side never committed")
	}

	c.Partition([]core.SiteID{0}, []core.SiteID{1, 2}, false)
	rep, err := c.ReconcileSplitBrain(trueUp, ack)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected() {
		t.Fatalf("split brain not detected: %s", rep)
	}
	if rep.MutualSuspicions == 0 {
		t.Fatalf("no mutual suspicion recorded: %s", rep)
	}
	if rep.DivergentItems == 0 {
		t.Fatalf("no divergent items recorded: %s", rep)
	}

	copiers, remaining, err := c.DrainFailLocks(trueUp, 8)
	if err != nil {
		t.Fatal(err)
	}
	if remaining != 0 {
		t.Fatalf("%d fail-locks left after drain (%d copiers ran)", remaining, copiers)
	}
	if copiers == 0 {
		t.Fatal("drain ran no copier transactions")
	}

	audit, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !audit.OK() {
		t.Fatalf("post-reconcile audit failed: %s", audit)
	}
	// Highest version wins: the later of the two sides' last commits is
	// the surviving value on every copy.
	want := *majorityLast
	if *minorityLast > want {
		want = *minorityLast
	}
	for s := 0; s < 3; s++ {
		dump, err := c.Dump(core.SiteID(s))
		if err != nil {
			t.Fatal(err)
		}
		if dump[0].Version != want {
			t.Fatalf("site %d item 0 at v%d, want winning v%d", s, dump[0].Version, want)
		}
		if s > 0 {
			prev, _ := c.Dump(core.SiteID(s - 1))
			if !bytes.Equal(prev[0].Value, dump[0].Value) {
				t.Fatalf("sites %d and %d hold different values after reconcile", s-1, s)
			}
		}
	}
}

// TestReconcileEqualVersionDivergence is the concurrent-mode twin-write
// regression: versions are per-item commit counters under ConcurrentTxns,
// so when each side of a cut commits exactly one write to the same item,
// both copies land at the same version with different values. Version
// comparison alone cannot see that divergence — reconciliation must
// compare values at the winning version, canonicalize one copy, and
// fail-lock the twins so the drain converges every replica.
func TestReconcileEqualVersionDivergence(t *testing.T) {
	const ack = 40 * time.Millisecond
	c := newTestCluster(t, Config{Sites: 3, Items: 10, ConcurrentTxns: 2, AckTimeout: ack})
	trueUp := []bool{true, true, true}

	c.Partition([]core.SiteID{0}, []core.SiteID{1, 2}, true)
	// A sacrificial write per side eats the ack timeout and announces the
	// other side failed; its abort is expected and irrelevant.
	if _, err := c.Exec(0, []core.Op{core.Write(1, []byte("a"))}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(1, []core.Op{core.Write(1, []byte("b"))}); err != nil {
		t.Fatal(err)
	}
	// Exactly one committed write per side to item 0: both sides count it
	// from version 0, so each commit produces version 1.
	resA, err := c.Exec(0, []core.Op{core.Write(0, []byte("minority"))})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := c.Exec(1, []core.Op{core.Write(0, []byte("majority"))})
	if err != nil {
		t.Fatal(err)
	}
	if !resA.Committed || !resB.Committed {
		t.Fatalf("split brain did not form: committed %v/%v", resA.Committed, resB.Committed)
	}
	dumpA, err := c.Dump(0)
	if err != nil {
		t.Fatal(err)
	}
	dumpB, err := c.Dump(1)
	if err != nil {
		t.Fatal(err)
	}
	if dumpA[0].Version != dumpB[0].Version {
		t.Fatalf("setup broke: versions differ (%d vs %d), the regression needs equal-version twins",
			dumpA[0].Version, dumpB[0].Version)
	}
	if bytes.Equal(dumpA[0].Value, dumpB[0].Value) {
		t.Fatal("setup broke: twin copies hold equal values")
	}

	c.Partition([]core.SiteID{0}, []core.SiteID{1, 2}, false)
	rep, err := c.ReconcileSplitBrain(trueUp, ack)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DivergentItems == 0 {
		t.Fatalf("equal-version divergence not detected: %s", rep)
	}
	if rep.LocksSet == 0 {
		t.Fatalf("no fail-locks installed for the twin copies: %s", rep)
	}
	if _, remaining, err := c.DrainFailLocks(trueUp, 8); err != nil {
		t.Fatal(err)
	} else if remaining != 0 {
		t.Fatalf("%d fail-locks left after drain", remaining)
	}
	audit, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !audit.OK() {
		t.Fatalf("post-reconcile audit failed: %s", audit)
	}
	// Every copy converged to the canonical value (the lowest-numbered
	// truly-up copy at the winning version — site 0's).
	for s := 0; s < 3; s++ {
		dump, err := c.Dump(core.SiteID(s))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dump[0].Value, []byte("minority")) {
			t.Fatalf("site %d item 0 = %q, want canonical %q", s, dump[0].Value, "minority")
		}
	}
}

// TestReconcileQuorumVectorsOnly: under quorum consensus a partition
// splits the session vectors but never the data — reconciliation finds
// suspicion, no divergence, and the quorum audit stays clean throughout.
func TestReconcileQuorumVectorsOnly(t *testing.T) {
	const ack = 40 * time.Millisecond
	c := newTestCluster(t, Config{Sites: 3, Items: 10, Policy: policy.Quorum{}, AckTimeout: ack})
	trueUp := []bool{true, true, true}

	c.Partition([]core.SiteID{0}, []core.SiteID{1, 2}, true)
	minority, majority := 0, 0
	for i := 0; i < 4; i++ {
		res, err := c.Exec(0, []core.Op{core.Write(0, []byte{byte(0x10 + i)})})
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed {
			minority++
		}
		res, err = c.Exec(1, []core.Op{core.Write(0, []byte{byte(0x20 + i)})})
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed {
			majority++
		}
	}
	if minority != 0 {
		t.Fatalf("minority side committed %d writes under quorum", minority)
	}
	if majority == 0 {
		t.Fatal("majority side never committed under quorum")
	}

	c.Partition([]core.SiteID{0}, []core.SiteID{1, 2}, false)
	rep, err := c.ReconcileSplitBrain(trueUp, ack)
	if err != nil {
		t.Fatal(err)
	}
	// The minority copy is stale (version skew is legitimate under
	// quorum), but no fail-locks are installed: quorum does not track
	// staleness, reads vote past it.
	if rep.LocksSet != 0 || rep.LocksCleared != 0 {
		t.Fatalf("reconcile edited fail-locks under quorum: %s", rep)
	}
	audit, err := c.AuditQuorum()
	if err != nil {
		t.Fatal(err)
	}
	if !audit.OK() {
		t.Fatalf("quorum audit failed: %s", audit)
	}
}

// TestOneWayCutIsSilence: an asymmetric cut (0→1 down, 1→0 up) makes 0's
// requests vanish while 1's replies would still flow. Site 0's write
// times out waiting for 1's ack, treats the silence as a failure (not an
// error), announces it, and commits without 1. After heal, reconcile +
// drain restore a clean audit.
func TestOneWayCutIsSilence(t *testing.T) {
	const ack = 40 * time.Millisecond
	c := newTestCluster(t, Config{Sites: 3, Items: 10, AckTimeout: ack})
	trueUp := []bool{true, true, true}

	c.SetLinkDown(0, 1, true)
	// The first write eats the ack timeout, aborts, and announces the
	// silent participant failed; the next one commits without it. Either
	// way the manager sees a clean transaction outcome, never an error.
	commits := 0
	for i := 0; i < 3; i++ {
		res, err := c.Exec(0, []core.Op{core.Write(0, []byte{byte('a' + i)})})
		if err != nil {
			t.Fatalf("one-way cut produced a manager-visible error: %v", err)
		}
		if res.Committed {
			commits++
		}
	}
	if commits == 0 {
		t.Fatal("no write committed; silence toward one participant must not block ROWAA")
	}
	// Site 0 announced 1 failed and fail-locked the written item for it.
	n, err := c.FailLockCount(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("silent participant was not fail-locked")
	}
	// The request really vanished on the cut direction: 2 applied the
	// write, 1 never saw it — yet 1 is alive and answering (its own
	// outbound links, including 1→0, are untouched).
	d2, err := c.Dump(2)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := c.Dump(1)
	if err != nil {
		t.Fatal(err)
	}
	if d2[0].Version == 0 {
		t.Fatal("connected participant missed the write")
	}
	if d1[0].Version != 0 {
		t.Fatal("cut participant received the write through a down link")
	}
	st, err := c.Status(1, false)
	if err != nil {
		t.Fatalf("cut-off site stopped answering: %v", err)
	}
	if st.State != core.StatusUp {
		t.Fatalf("site 1 state %s, want up", st.State)
	}

	c.SetLinkDown(0, 1, false)
	if _, err := c.ReconcileSplitBrain(trueUp, ack); err != nil {
		t.Fatal(err)
	}
	if _, remaining, err := c.DrainFailLocks(trueUp, 8); err != nil {
		t.Fatal(err)
	} else if remaining != 0 {
		t.Fatalf("%d fail-locks left after heal", remaining)
	}
	audit, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !audit.OK() {
		t.Fatalf("post-heal audit failed: %s", audit)
	}
}

// TestRecoveryBlockedDuringPartition: a site recovering while alone on
// its side of a cut finds no donor and reports ErrRecoveryBlocked — the
// paper's "recovery blocked" outcome, not an error or a hang.
func TestRecoveryBlockedDuringPartition(t *testing.T) {
	const ack = 40 * time.Millisecond
	c := newTestCluster(t, Config{Sites: 3, Items: 10, AckTimeout: ack})

	if err := c.Fail(0); err != nil {
		t.Fatal(err)
	}
	c.Partition([]core.SiteID{0}, []core.SiteID{1, 2}, true)
	_, err := c.Recover(0)
	if !errors.Is(err, ErrRecoveryBlocked) {
		t.Fatalf("recovery on a cut-off site: %v, want ErrRecoveryBlocked", err)
	}
	c.Partition([]core.SiteID{0}, []core.SiteID{1, 2}, false)
	if _, err := c.RecoverWithRetry(0, ack); err != nil {
		t.Fatalf("recovery after heal: %v", err)
	}
}
