package cluster

import (
	"errors"
	"fmt"
	"time"

	"minraid/internal/core"
)

// RecoverWithRetry recovers a site, retrying when the donor handshake is
// lost in transit (the recovery multicast and its replies travel
// site-to-site links, which may be chaotic). Returns the number of
// blocked attempts retried.
func (c *Manager) RecoverWithRetry(id core.SiteID, ackTimeout time.Duration) (int, error) {
	const attempts = 8
	var err error
	for i := 0; i < attempts; i++ {
		if _, err = c.Recover(id); err == nil {
			return i, nil
		}
		if !errors.Is(err, ErrRecoveryBlocked) {
			return i, err
		}
		time.Sleep(ackTimeout / 2)
	}
	return attempts, err
}

// RepairFalseSuspicions probes every truly-up site's session vector and,
// while some truly-up site is marked failed by another truly-up site,
// completes the declared failure (Fail) and heals it (Recover): the type-1
// recovery announcement re-introduces the suspect to everyone, and demand
// copiers refresh whatever it missed or wrote solo. Divergence the suspect
// accumulated is fail-locked on both sides throughout, so the audit
// invariant holds across the repair. trueUp is the caller's ground truth
// of which sites have not been ordered to fail; the managing site always
// has it, since its orders are the only source of real failures.
func (c *Manager) RepairFalseSuspicions(trueUp []bool, ackTimeout time.Duration) (int, error) {
	return c.RepairFalseSuspicionsWhere(trueUp, nil, ackTimeout)
}

// RepairFalseSuspicionsWhere is RepairFalseSuspicions restricted to the
// (observer, suspect) pairs eligible accepts (nil accepts every pair). A
// partition-aware soak excludes pairs touched by the active network
// episode: their suspicion is legitimate evidence of the cut, not a false
// positive, and resolving it must wait for heal-time reconciliation.
func (c *Manager) RepairFalseSuspicionsWhere(trueUp []bool, eligible func(observer, suspect core.SiteID) bool, ackTimeout time.Duration) (int, error) {
	repairs := 0
	maxRounds := 2 * len(trueUp)
	for round := 0; round < maxRounds; round++ {
		suspect := core.SiteID(0)
		found := false
	probe:
		for a, aUp := range trueUp {
			if !aUp {
				continue
			}
			st, err := c.Status(core.SiteID(a), false)
			if err != nil {
				return repairs, err
			}
			for b, rec := range st.Vector {
				if b != a && trueUp[b] && rec.Status != core.StatusUp {
					if eligible != nil && !eligible(core.SiteID(a), core.SiteID(b)) {
						continue
					}
					suspect = core.SiteID(b)
					found = true
					break probe
				}
			}
		}
		if !found {
			return repairs, nil
		}
		if err := c.Fail(suspect); err != nil {
			return repairs, err
		}
		if _, err := c.RecoverWithRetry(suspect, ackTimeout); err != nil {
			return repairs, err
		}
		repairs++
	}
	return repairs, fmt.Errorf("cluster: false-suspicion repair did not converge after %d rounds", maxRounds)
}
