package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"minraid/internal/core"
	"minraid/internal/transport"
	"minraid/internal/txn"
	"minraid/internal/workload"
)

// TestChaosRandomFailRecover is a model-checking-lite property test: under
// arbitrary interleavings of transactions, site failures and recoveries —
// constrained only so that at least one site stays up — the system must
// never violate its core invariant (every divergent copy is fail-locked),
// and transactions must only ever abort for the reasons the protocol
// defines.
func TestChaosRandomFailRecover(t *testing.T) {
	const (
		sites = 4
		items = 30
		steps = 150
	)
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c := newTestCluster(t, Config{Sites: sites, Items: items, AckTimeout: 40 * time.Millisecond})
			gen := workload.NewUniform(items, 5, seed)

			up := make([]bool, sites)
			for i := range up {
				up[i] = true
			}
			upSites := func() []core.SiteID {
				var out []core.SiteID
				for i, u := range up {
					if u {
						out = append(out, core.SiteID(i))
					}
				}
				return out
			}
			countUp := func() int { return len(upSites()) }

			validAborts := map[string]bool{
				txn.AbortNoDonor:         true,
				txn.AbortDonorDown:       true,
				txn.AbortParticipantDown: true,
				txn.AbortStaleSession:    true,
			}

			for step := 0; step < steps; step++ {
				switch r := rng.Float64(); {
				case r < 0.12 && countUp() > 1:
					// Fail a random up site (never the last one).
					ups := upSites()
					victim := ups[rng.Intn(len(ups))]
					if err := c.Fail(victim); err != nil {
						t.Fatalf("step %d: fail %s: %v", step, victim, err)
					}
					up[victim] = false
				case r < 0.30 && countUp() < sites:
					// Recover a random down site; with >=1 up site a
					// donor exists, so recovery must succeed.
					var downs []core.SiteID
					for i, u := range up {
						if !u {
							downs = append(downs, core.SiteID(i))
						}
					}
					target := downs[rng.Intn(len(downs))]
					if _, err := c.Recover(target); err != nil {
						t.Fatalf("step %d: recover %s: %v", step, target, err)
					}
					up[target] = true
				default:
					ups := upSites()
					coord := ups[rng.Intn(len(ups))]
					id := c.NextTxnID()
					res, err := c.ExecTxn(coord, id, gen.Next(id))
					if err != nil {
						t.Fatalf("step %d: txn %d on %s: %v", step, id, coord, err)
					}
					if !res.Committed && !validAborts[res.AbortReason] {
						t.Fatalf("step %d: unexplained abort: %q", step, res.AbortReason)
					}
				}
			}

			// Quiesce: bring everyone back and audit.
			for i, u := range up {
				if !u {
					if _, err := c.Recover(core.SiteID(i)); err != nil {
						t.Fatalf("final recover %d: %v", i, err)
					}
				}
			}
			report, err := c.Audit()
			if err != nil {
				t.Fatal(err)
			}
			if !report.OK() {
				t.Errorf("seed %d: %s", seed, report)
			}

			// Drain every remaining fail-lock by writing all items, then
			// the audit must be perfectly clean (no stale copies at all).
			for i := 0; i < items; i++ {
				id := c.NextTxnID()
				res, err := c.ExecTxn(core.SiteID(i%sites), id,
					[]core.Op{core.Write(core.ItemID(i), workload.Payload(id, core.ItemID(i)))})
				if err != nil || !res.Committed {
					t.Fatalf("drain write %d: %v %v", i, res, err)
				}
			}
			report, err = c.Audit()
			if err != nil {
				t.Fatal(err)
			}
			if !report.OK() || report.StaleCopies != 0 {
				t.Errorf("seed %d after drain: %s (stale=%d)", seed, report, report.StaleCopies)
			}
		})
	}
}

// TestDuplicateStorm: every site-to-site message is delivered twice
// (transport.Chaos with Dup=1). Per-sender sequence suppression in the
// site receive loop must absorb the replays — without it a duplicated
// Prepare arriving after its Commit would re-stage the transaction, leak
// a decision timer and fire a spurious failure announcement. Every
// transaction must commit and the audit must be clean, exactly as on a
// reliable network.
func TestDuplicateStorm(t *testing.T) {
	c := newTestCluster(t, Config{
		Sites:      3,
		Items:      10,
		AckTimeout: 40 * time.Millisecond,
		Chaos:      &transport.ChaosConfig{Seed: 1, Dup: 1, ExemptManager: true},
	})
	gen := workload.NewUniform(10, 5, 1)

	for i := 0; i < 30; i++ {
		// Exercise the full state machine under duplication, including a
		// mid-run failure and recovery.
		if i == 10 {
			if err := c.Fail(1); err != nil {
				t.Fatal(err)
			}
		}
		if i == 20 {
			if _, err := c.Recover(1); err != nil {
				t.Fatal(err)
			}
		}
		coord := core.SiteID(i % 3)
		if i >= 10 && i < 20 && coord == 1 {
			coord = 0
		}
		id := c.NextTxnID()
		res, err := c.ExecTxn(coord, id, gen.Next(id))
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
		if !res.Committed {
			// The one legitimate abort: the first transaction touching
			// site 1 after its (real) failure detects it and runs the
			// type-2 announcement. Anything else is duplication damage.
			if i == 10 && res.AbortReason == txn.AbortParticipantDown {
				continue
			}
			t.Fatalf("txn %d aborted under pure duplication: %q", i, res.AbortReason)
		}
	}

	report, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Errorf("audit after duplicate storm: %s", report)
	}
	total := transport.LinkStats{}
	for _, s := range c.ChaosStats() {
		total.Add(s)
	}
	if total.Duplicated == 0 || total.Duplicated != total.Sent {
		t.Fatalf("duplication never fired: %+v", total)
	}
}

// TestAsymmetricLinkLoss: site 1's messages to site 0 are lost while the
// reverse direction works. Each side eventually declares the other failed
// and proceeds alone — the same split brain as a symmetric partition, and
// the audit must flag the divergence once the link heals.
func TestAsymmetricLinkLoss(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 2, Items: 4, AckTimeout: 40 * time.Millisecond})
	c.SetLinkDown(1, 0, true)

	// Coordinator 0: its prepare reaches 1, but the ack is lost -> abort
	// + type 2 (the announcement to 1 is delivered; 1 ignores news about
	// itself).
	res, err := c.Exec(0, []core.Op{core.Write(1, []byte("a"))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed {
		t.Fatal("commit without receiving the ack")
	}
	// Coordinator 1: its prepare never arrives -> abort + type 2.
	res, err = c.Exec(1, []core.Op{core.Write(1, []byte("b"))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed {
		t.Fatal("commit without reaching the peer")
	}
	// Both now run solo and commit conflicting values.
	if res, _ := c.Exec(0, []core.Op{core.Write(1, []byte("only-0"))}); !res.Committed {
		t.Fatalf("site 0 solo write aborted: %s", res.AbortReason)
	}
	if res, _ := c.Exec(1, []core.Op{core.Write(1, []byte("only-1"))}); !res.Committed {
		t.Fatalf("site 1 solo write aborted: %s", res.AbortReason)
	}

	c.SetLinkDown(1, 0, false)
	report, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Error("audit missed the asymmetric-partition divergence")
	}
}
