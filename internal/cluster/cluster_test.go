package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"minraid/internal/core"
	"minraid/internal/policy"
	"minraid/internal/txn"
)

// newTestCluster builds a cluster with fast failure detection for tests.
func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.AckTimeout == 0 {
		cfg.AckTimeout = 50 * time.Millisecond
	}
	if cfg.ManagerTimeout == 0 {
		cfg.ManagerTimeout = 10 * time.Second
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// val builds a deterministic write payload.
func val(n int) []byte { return []byte(fmt.Sprintf("v%d", n)) }

func TestSimpleCommitReplicatesEverywhere(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 3, Items: 10})
	res, err := c.Exec(0, []core.Op{core.Write(4, val(1))})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("aborted: %s", res.AbortReason)
	}
	for i := 0; i < 3; i++ {
		dump, err := c.Dump(core.SiteID(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dump[4].Value, val(1)) {
			t.Errorf("site %d copy = %q", i, dump[4].Value)
		}
		if dump[4].Version != res.Txn {
			t.Errorf("site %d version = %d, want %d", i, dump[4].Version, res.Txn)
		}
	}
	report, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Error(report)
	}
}

func TestReadsReturnValuesInOpOrder(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 2, Items: 5})
	if _, err := c.Exec(0, []core.Op{core.Write(1, val(11)), core.Write(2, val(22))}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec(1, []core.Op{core.Read(2), core.Read(1), core.Read(2)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed || len(res.Reads) != 3 {
		t.Fatalf("res = %+v", res)
	}
	if !bytes.Equal(res.Reads[0].Value, val(22)) || !bytes.Equal(res.Reads[1].Value, val(11)) || !bytes.Equal(res.Reads[2].Value, val(22)) {
		t.Errorf("reads = %v", res.Reads)
	}
}

func TestReadOnlyTxnSkips2PC(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 2, Items: 5})
	before := c.MessagesSent()
	res, err := c.Exec(0, []core.Op{core.Read(0)})
	if err != nil || !res.Committed {
		t.Fatalf("res=%v err=%v", res, err)
	}
	// Only the client request and the reply cross the network.
	if got := c.MessagesSent() - before; got != 2 {
		t.Errorf("read-only txn used %d messages, want 2", got)
	}
}

func TestFirstWriteAfterFailureDetectsAndAborts(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 2, Items: 5})
	if err := c.Fail(0); err != nil {
		t.Fatal(err)
	}
	// Site 1 still believes 0 is up: the prepare times out, the txn
	// aborts, and a type-2 control transaction marks 0 down.
	res, err := c.Exec(1, []core.Op{core.Write(1, val(1))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed {
		t.Fatal("commit despite undetected failure — ROWAA must abort on missing ack")
	}
	if res.AbortReason != txn.AbortParticipantDown {
		t.Errorf("abort reason = %q", res.AbortReason)
	}
	st, err := c.Status(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Vector[0].Status != core.StatusDown {
		t.Error("type-2 did not mark site 0 down")
	}
	if st.Stats.ControlType2 != 1 {
		t.Errorf("ControlType2 = %d", st.Stats.ControlType2)
	}

	// The next transaction skips the down site and commits.
	res, err = c.Exec(1, []core.Op{core.Write(1, val(2))})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("post-detection txn aborted: %s", res.AbortReason)
	}
}

// failAndDetect fails a site and runs one throwaway write so the survivors
// detect it.
func failAndDetect(t *testing.T, c *Cluster, victim, detector core.SiteID) {
	t.Helper()
	if err := c.Fail(victim); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec(detector, []core.Op{core.Write(0, []byte("detect"))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed {
		t.Fatal("detection txn unexpectedly committed")
	}
}

func TestFailLocksAccumulateWhileSiteDown(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 2, Items: 20})
	failAndDetect(t, c, 0, 1)
	written := map[core.ItemID]bool{}
	for i := 0; i < 10; i++ {
		item := core.ItemID(i)
		res, err := c.Exec(1, []core.Op{core.Write(item, val(i))})
		if err != nil || !res.Committed {
			t.Fatalf("txn on survivor failed: %v %v", res, err)
		}
		written[item] = true
	}
	// Item 0 was also written by the detection txn? No — it aborted.
	n, err := c.FailLockCount(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(written) {
		t.Errorf("fail-locks for site 0 = %d, want %d", n, len(written))
	}
	st, _ := c.Status(1, true)
	for item := range written {
		if st.FailLocks[item]&(1<<0) == 0 {
			t.Errorf("item %d not fail-locked for site 0", item)
		}
	}
}

func TestRecoveryClearsFailLocksByWrites(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 2, Items: 10})
	failAndDetect(t, c, 0, 1)
	for i := 0; i < 5; i++ {
		if res, _ := c.Exec(1, []core.Op{core.Write(core.ItemID(i), val(i))}); !res.Committed {
			t.Fatal("write failed")
		}
	}
	st, err := c.Recover(0)
	if err != nil {
		t.Fatalf("recover: %v (state %v)", err, st.State)
	}
	if st.State != core.StatusUp {
		t.Fatalf("state after recovery = %v", st.State)
	}
	// The recovering site received the fail-locks from the donor.
	n, _ := c.FailLockCount(0, 0)
	if n != 5 {
		t.Errorf("recovered site sees %d own fail-locks, want 5", n)
	}
	// New writes through site 1 reach site 0 and clear locks there too.
	for i := 0; i < 5; i++ {
		if res, _ := c.Exec(1, []core.Op{core.Write(core.ItemID(i), val(100+i))}); !res.Committed {
			t.Fatal("write failed")
		}
	}
	for _, observer := range []core.SiteID{0, 1} {
		n, _ := c.FailLockCount(observer, 0)
		if n != 0 {
			t.Errorf("observer %d still sees %d fail-locks", observer, n)
		}
	}
	report, err := c.Audit()
	if err != nil || !report.OK() {
		t.Errorf("audit: %v %v", report, err)
	}
}

func TestCopierRefreshesStaleRead(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 2, Items: 10})
	failAndDetect(t, c, 0, 1)
	// Fresh value written while 0 is down.
	if res, _ := c.Exec(1, []core.Op{core.Write(3, []byte("fresh"))}); !res.Committed {
		t.Fatal("write failed")
	}
	if _, err := c.Recover(0); err != nil {
		t.Fatal(err)
	}
	// A read of item 3 coordinated at the recovering site must trigger a
	// copier transaction and observe the fresh value, not the stale one.
	res, err := c.Exec(0, []core.Op{core.Read(3)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("aborted: %s", res.AbortReason)
	}
	if res.Copiers != 1 {
		t.Errorf("copiers = %d, want 1", res.Copiers)
	}
	if !bytes.Equal(res.Reads[0].Value, []byte("fresh")) {
		t.Errorf("stale read: %q", res.Reads[0].Value)
	}
	// The copier cleared the fail-lock everywhere (special transaction).
	for _, observer := range []core.SiteID{0, 1} {
		st, _ := c.Status(observer, true)
		if st.FailLocks[3]&(1<<0) != 0 {
			t.Errorf("observer %d: fail-lock for item 3 survives the copier", observer)
		}
	}
	// Donor-side counter.
	st, _ := c.Status(1, false)
	if st.Stats.CopiesServed != 1 {
		t.Errorf("CopiesServed = %d", st.Stats.CopiesServed)
	}
}

func TestWriteRefreshesStaleCopyWithoutCopier(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 2, Items: 10})
	failAndDetect(t, c, 0, 1)
	if res, _ := c.Exec(1, []core.Op{core.Write(3, []byte("missed"))}); !res.Committed {
		t.Fatal("write failed")
	}
	if _, err := c.Recover(0); err != nil {
		t.Fatal(err)
	}
	// A blind write to the stale item needs no copier: the write itself
	// refreshes the copy ("a recovering site clears a fail-lock bit for a
	// data item after it has become refreshed by a write", §1.1).
	res, err := c.Exec(0, []core.Op{core.Write(3, []byte("new"))})
	if err != nil || !res.Committed {
		t.Fatalf("res=%v err=%v", res, err)
	}
	if res.Copiers != 0 {
		t.Errorf("blind write ran %d copiers", res.Copiers)
	}
	n, _ := c.FailLockCount(1, 0)
	if n != 0 {
		t.Errorf("fail-locks remain: %d", n)
	}
	report, _ := c.Audit()
	if !report.OK() {
		t.Error(report)
	}
}

func TestAbortWhenNoDonorAvailable(t *testing.T) {
	// Scenario 1's abort mechanism: site 0 recovers with fail-locked
	// items, then site 1 (the only donor) fails. Reads of fail-locked
	// items must abort.
	c := newTestCluster(t, Config{Sites: 2, Items: 10})
	failAndDetect(t, c, 0, 1)
	if res, _ := c.Exec(1, []core.Op{core.Write(5, []byte("only-on-1"))}); !res.Committed {
		t.Fatal("write failed")
	}
	if _, err := c.Recover(0); err != nil {
		t.Fatal(err)
	}
	failAndDetect(t, c, 1, 0)
	res, err := c.Exec(0, []core.Op{core.Read(5)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed {
		t.Fatal("read of unavailable data committed")
	}
	if res.AbortReason != txn.AbortNoDonor {
		t.Errorf("abort reason = %q", res.AbortReason)
	}
	// Reads of up-to-date items still work: high availability on the
	// recovering site.
	res, err = c.Exec(0, []core.Op{core.Read(1)})
	if err != nil || !res.Committed {
		t.Fatalf("up-to-date read failed: %v %v", res, err)
	}
}

func TestRecoveryBlockedWithoutDonor(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 2, Items: 5})
	failAndDetect(t, c, 0, 1)
	if err := c.Fail(1); err != nil {
		t.Fatal(err)
	}
	_, err := c.Recover(0)
	if !errors.Is(err, ErrRecoveryBlocked) {
		t.Fatalf("err = %v, want recovery blocked", err)
	}
	st, _ := c.Status(0, false)
	if st.State != core.StatusDown {
		t.Errorf("blocked site state = %v, want down", st.State)
	}
	// Once the donor recovers, recovery succeeds. Site 1 recovers first:
	// its donor is site 0... also down. Both are blocked until one of
	// them was never actually stale. Recover 1 fails too.
	if _, err := c.Recover(1); !errors.Is(err, ErrRecoveryBlocked) {
		t.Fatalf("err = %v", err)
	}
}

func TestSuccessiveSingleFailuresNoAborts(t *testing.T) {
	// Scenario 2's core claim: rolling single failures leave an
	// up-to-date copy available somewhere, so no transaction aborts for
	// data unavailability.
	c := newTestCluster(t, Config{Sites: 4, Items: 20})
	coords := []core.SiteID{1, 2, 3}
	failAndDetect(t, c, 0, 1)
	dataAborts := 0
	for i := 0; i < 15; i++ {
		item := core.ItemID(i % 20)
		res, err := c.Exec(coords[i%len(coords)], []core.Op{core.Read(item), core.Write(item, val(i))})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Committed && res.AbortReason == txn.AbortNoDonor {
			dataAborts++
		}
	}
	if _, err := c.Recover(0); err != nil {
		t.Fatal(err)
	}
	failAndDetect(t, c, 1, 2)
	for i := 0; i < 15; i++ {
		item := core.ItemID(i % 20)
		res, err := c.Exec([]core.SiteID{0, 2, 3}[i%3], []core.Op{core.Read(item), core.Write(item, val(100+i))})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Committed && res.AbortReason == txn.AbortNoDonor {
			dataAborts++
		}
	}
	if _, err := c.Recover(1); err != nil {
		t.Fatal(err)
	}
	if dataAborts != 0 {
		t.Errorf("%d aborts for data unavailability; scenario 2 predicts none", dataAborts)
	}
	// Drain remaining fail-locks with writes, then audit.
	for i := 0; i < 20; i++ {
		c.Exec(core.SiteID(i%4), []core.Op{core.Write(core.ItemID(i), val(200+i))})
	}
	report, err := c.Audit()
	if err != nil || !report.OK() {
		t.Errorf("audit: %v %v", report, err)
	}
}

func TestROWABaselineBlocksOnFailure(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 3, Items: 5, Policy: policy.ROWA{}})
	if res, _ := c.Exec(0, []core.Op{core.Write(1, val(1))}); !res.Committed {
		t.Fatal("healthy ROWA write failed")
	}
	if err := c.Fail(2); err != nil {
		t.Fatal(err)
	}
	// Every write now aborts: write-all cannot reach site 2.
	for i := 0; i < 3; i++ {
		res, err := c.Exec(0, []core.Op{core.Write(1, val(10+i))})
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed {
			t.Fatal("ROWA committed a write with a site down")
		}
	}
	// Reads still work (read-one).
	res, err := c.Exec(0, []core.Op{core.Read(1)})
	if err != nil || !res.Committed {
		t.Fatalf("ROWA read failed: %v %v", res, err)
	}
	if !bytes.Equal(res.Reads[0].Value, val(1)) {
		t.Errorf("read = %q", res.Reads[0].Value)
	}
}

func TestQuorumBaselineToleratesMinority(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 3, Items: 5, Policy: policy.Quorum{}})
	if err := c.Fail(2); err != nil {
		t.Fatal(err)
	}
	// Majority (0, 1) suffices for both reads and writes.
	res, err := c.Exec(0, []core.Op{core.Write(1, []byte("qv"))})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("quorum write aborted: %s", res.AbortReason)
	}
	res, err = c.Exec(1, []core.Op{core.Read(1)})
	if err != nil || !res.Committed {
		t.Fatalf("quorum read failed: %v %v", res, err)
	}
	if !bytes.Equal(res.Reads[0].Value, []byte("qv")) {
		t.Errorf("quorum read = %q", res.Reads[0].Value)
	}

	// Losing the majority blocks everything.
	if err := c.Fail(1); err != nil {
		t.Fatal(err)
	}
	res, err = c.Exec(0, []core.Op{core.Write(1, []byte("x"))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed {
		t.Fatal("quorum committed without a majority")
	}
	res, err = c.Exec(0, []core.Op{core.Read(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed {
		t.Fatal("quorum read without a majority")
	}
	if res.AbortReason != txn.AbortNoQuorum {
		t.Errorf("abort reason = %q", res.AbortReason)
	}
}

func TestQuorumReadPicksNewestVersion(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 3, Items: 5, Policy: policy.Quorum{}})
	if err := c.Fail(0); err != nil {
		t.Fatal(err)
	}
	// Write lands on {1, 2} only; site 0's copy stays at version 0.
	if res, _ := c.Exec(1, []core.Op{core.Write(2, []byte("newest"))}); !res.Committed {
		t.Fatal("quorum write failed")
	}
	// Site 0 returns with a stale copy and coordinates a read: version
	// voting must surface the newest copy from the majority.
	// (Quorum has no type-1 recovery; simulate rejoin via RecoverSim.)
	if _, err := c.Recover(0); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec(0, []core.Op{core.Read(2)})
	if err != nil || !res.Committed {
		t.Fatalf("read failed: %v %v", res, err)
	}
	if !bytes.Equal(res.Reads[0].Value, []byte("newest")) {
		t.Errorf("quorum read returned stale %q", res.Reads[0].Value)
	}
}

func TestTwoStepRecoveryBatchRefresh(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 2, Items: 10, BatchCopierThreshold: 1.0})
	failAndDetect(t, c, 0, 1)
	for i := 0; i < 6; i++ {
		if res, _ := c.Exec(1, []core.Op{core.Write(core.ItemID(i), val(i))}); !res.Committed {
			t.Fatal("write failed")
		}
	}
	if _, err := c.Recover(0); err != nil {
		t.Fatal(err)
	}
	// With threshold 1.0 the batch refresh fires immediately after
	// recovery and clears every fail-lock without any new transactions.
	deadline := time.Now().Add(5 * time.Second)
	for {
		n0, _ := c.FailLockCount(0, 0)
		n1, _ := c.FailLockCount(1, 0)
		if n0 == 0 && n1 == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch refresh incomplete: observer0=%d observer1=%d", n0, n1)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Registry(0).Counter("copiers.batch"); got == 0 {
		t.Error("no batch copiers recorded")
	}
	report, _ := c.Audit()
	if !report.OK() {
		t.Error(report)
	}
}

func TestType3ReplicatesEndangeredCopies(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 3, Items: 6, EnableType3: true})
	failAndDetect(t, c, 1, 0)
	// Writes while 1 is down: fresh at {0, 2}, fail-locked for 1.
	for i := 0; i < 4; i++ {
		if res, _ := c.Exec(0, []core.Op{core.Write(core.ItemID(i), val(i))}); !res.Committed {
			t.Fatal("write failed")
		}
	}
	if _, err := c.Recover(1); err != nil {
		t.Fatal(err)
	}
	// Now fail 2: the items are fresh only at 0 among operational sites.
	// The detection's type-2 triggers type-3 replication to site 1.
	failAndDetect(t, c, 2, 0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, err := c.FailLockCount(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("type-3 never refreshed site 1 (still %d fail-locks)", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, _ := c.Status(0, false)
	if st.Stats.ControlType3 == 0 {
		t.Error("no type-3 control transactions recorded")
	}
	// Site 1 now serves the data even though 0 could fail next.
	res, err := c.Exec(1, []core.Op{core.Read(2)})
	if err != nil || !res.Committed {
		t.Fatalf("read at backup failed: %v %v", res, err)
	}
	if !bytes.Equal(res.Reads[0].Value, val(2)) {
		t.Errorf("backup copy = %q", res.Reads[0].Value)
	}
}

func TestAuditDetectsUntrackedDivergence(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 2, Items: 4})
	if res, _ := c.Exec(0, []core.Op{core.Write(1, val(1))}); !res.Committed {
		t.Fatal("write failed")
	}
	// Corrupt site 1's copy behind the protocol's back.
	s := c.Site(1)
	if _, err := s.InjectCorruption(1, []byte("corrupt")); err != nil {
		t.Fatal(err)
	}
	report, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Error("audit missed an untracked divergence")
	}
}

func TestStatsAndElapsedReporting(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 2, Items: 5})
	res, err := c.Exec(0, []core.Op{core.Write(1, val(1)), core.Read(1)})
	if err != nil || !res.Committed {
		t.Fatal("txn failed")
	}
	if res.ElapsedNanos == 0 {
		t.Error("no elapsed time reported")
	}
	st0, _ := c.Status(0, false)
	if st0.Stats.Committed != 1 {
		t.Errorf("coordinator Committed = %d", st0.Stats.Committed)
	}
	st1, _ := c.Status(1, false)
	if st1.Stats.Participated != 1 {
		t.Errorf("participant Participated = %d", st1.Stats.Participated)
	}
	if st0.Stats.MsgsOut == 0 || st1.Stats.MsgsIn == 0 {
		t.Error("message counters empty")
	}
	// Coordinator timer recorded.
	if c.Registry(0).Timer("txn.coord").Count != 1 {
		t.Error("coordinator timer not recorded")
	}
	if c.Registry(1).Timer("txn.part").Count != 1 {
		t.Error("participant timer not recorded")
	}
}

func TestExecOnDownCoordinatorTimesOut(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 2, Items: 5, ManagerTimeout: 100 * time.Millisecond})
	if err := c.Fail(0); err != nil {
		t.Fatal(err)
	}
	_, err := c.Exec(0, []core.Op{core.Read(0)})
	if !errors.Is(err, ErrNoResponse) {
		t.Errorf("err = %v", err)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := New(Config{Sites: 0, Items: 5}); err == nil {
		t.Error("zero sites accepted")
	}
	if _, err := New(Config{Sites: 2, Items: 0}); err == nil {
		t.Error("zero items accepted")
	}
}

func TestManySequentialTransactions(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 4, Items: 50})
	for i := 0; i < 60; i++ {
		coord := core.SiteID(i % 4)
		item := core.ItemID(i % 50)
		res, err := c.Exec(coord, []core.Op{core.Read(item), core.Write(item, val(i))})
		if err != nil || !res.Committed {
			t.Fatalf("txn %d: %v %v", i, res, err)
		}
	}
	report, err := c.Audit()
	if err != nil || !report.OK() {
		t.Errorf("audit: %v %v", report, err)
	}
	if report.StaleCopies != 0 {
		t.Errorf("healthy run produced %d stale copies", report.StaleCopies)
	}
}

// --- partial replication (§3.2's setting, implemented as an extension) ---

func partialCluster(t *testing.T, sites, items, degree int) *Cluster {
	t.Helper()
	return newTestCluster(t, Config{
		Sites: sites, Items: items,
		Replicas: core.RoundRobinReplication(items, sites, degree),
	})
}

func TestPartialReplicationBasics(t *testing.T) {
	c := partialCluster(t, 4, 8, 2)
	// Item 0 is hosted by sites 0 and 1. Write via a non-hosting
	// coordinator (site 2): only hosts store the copy.
	res, err := c.Exec(2, []core.Op{core.Write(0, []byte("pr"))})
	if err != nil || !res.Committed {
		t.Fatalf("write: %v %v", res, err)
	}
	for s := 0; s < 4; s++ {
		dump, err := c.Dump(core.SiteID(s))
		if err != nil {
			t.Fatal(err)
		}
		hosted := s == 0 || s == 1
		if hosted && !bytes.Equal(dump[0].Value, []byte("pr")) {
			t.Errorf("host %d missing the copy: %v", s, dump[0])
		}
		if !hosted && dump[0].Version != 0 {
			t.Errorf("non-host %d stored a copy: %v", s, dump[0])
		}
	}
	// Read via a non-hosting coordinator: remote fresh read.
	res, err = c.Exec(3, []core.Op{core.Read(0)})
	if err != nil || !res.Committed {
		t.Fatalf("remote read: %v %v", res, err)
	}
	if !bytes.Equal(res.Reads[0].Value, []byte("pr")) {
		t.Errorf("remote read = %q", res.Reads[0].Value)
	}
	report, err := c.Audit()
	if err != nil || !report.OK() {
		t.Errorf("audit: %v %v", report, err)
	}
}

func TestPartialReplicationFailureAndRecovery(t *testing.T) {
	c := partialCluster(t, 3, 6, 2)
	// Item 0 hosted by {0,1}; fail site 1, write item 0, verify the
	// fail-lock lands only on the hosting down site, then recover and
	// heal via a copier.
	failAndDetect(t, c, 1, 0)
	res, err := c.Exec(0, []core.Op{core.Write(0, []byte("v2"))})
	if err != nil || !res.Committed {
		t.Fatalf("write with host down: %v %v", res, err)
	}
	st, _ := c.Status(0, true)
	if st.FailLocks[0] != 1<<1 {
		t.Errorf("fail-locks for item 0 = %#x, want only site 1", st.FailLocks[0])
	}
	// The non-hosting up site 2 also tracks the lock (fully replicated
	// fail-locks via maintenance-only notices).
	st2, _ := c.Status(2, true)
	if st2.FailLocks[0] != 1<<1 {
		t.Errorf("non-host table for item 0 = %#x", st2.FailLocks[0])
	}
	if _, err := c.Recover(1); err != nil {
		t.Fatal(err)
	}
	res, err = c.Exec(1, []core.Op{core.Read(0)})
	if err != nil || !res.Committed {
		t.Fatalf("read on recovered host: %v %v", res, err)
	}
	if !bytes.Equal(res.Reads[0].Value, []byte("v2")) {
		t.Errorf("stale read after recovery: %q", res.Reads[0].Value)
	}
	if res.Copiers != 1 {
		t.Errorf("copiers = %d", res.Copiers)
	}
	report, err := c.Audit()
	if err != nil || !report.OK() {
		t.Errorf("audit: %v %v", report, err)
	}
}

func TestPartialReplicationWriteUnavailable(t *testing.T) {
	// Degree 1: item 0 lives only on site 0. With site 0 down, neither
	// reads nor writes of item 0 can proceed anywhere.
	c := partialCluster(t, 3, 3, 1)
	failAndDetect(t, c, 0, 1)
	res, err := c.Exec(1, []core.Op{core.Write(0, []byte("x"))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed {
		t.Fatal("wrote an item with zero available copies")
	}
	if res.AbortReason != txn.AbortWriteUnavailable {
		t.Errorf("abort reason = %q", res.AbortReason)
	}
	res, err = c.Exec(1, []core.Op{core.Read(0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed {
		t.Fatal("read an item with zero available copies")
	}
	if res.AbortReason != txn.AbortNoDonor {
		t.Errorf("read abort reason = %q", res.AbortReason)
	}
	// Items hosted on live sites still work: availability follows the
	// placement, not the whole system.
	res, err = c.Exec(1, []core.Op{core.Write(1, []byte("ok"))})
	if err != nil || !res.Committed {
		t.Fatalf("unrelated item blocked: %v %v", res, err)
	}
	// The audit tolerates the unavailable item without violations.
	report, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Error(report)
	}
	if report.UnavailableItems != 1 {
		t.Errorf("UnavailableItems = %d, want 1 (item 0)", report.UnavailableItems)
	}
}

func TestPartialReplicationRequiresCopyAwarePolicy(t *testing.T) {
	// ROWA has no notion of per-item copies — write-all over a partial
	// map would silently become write-all-hosts. Reject it.
	_, err := New(Config{
		Sites: 3, Items: 3, Policy: policy.ROWA{},
		Replicas: core.RoundRobinReplication(3, 3, 2),
	})
	if err == nil {
		t.Error("rowa with partial replication accepted")
	}
	// Quorum is copy-aware: quorums are sized per item from its hosting
	// degree, so a partial map is accepted.
	c, err := New(Config{
		Sites: 3, Items: 3, Policy: policy.Quorum{},
		Replicas: core.RoundRobinReplication(3, 3, 2),
	})
	if err != nil {
		t.Fatalf("quorum with partial replication rejected: %v", err)
	}
	c.Close()
}

func TestPartialQuorumReadsAndWrites(t *testing.T) {
	// Degree 2 of 4: a write needs both copies (majority of 2 is 2), a
	// read needs 1 (degree - write quorum + 1), and only hosting sites'
	// copies vote.
	c := newTestCluster(t, Config{
		Sites: 4, Items: 8, Policy: policy.Quorum{},
		Replicas: core.RoundRobinReplication(8, 4, 2),
	})
	// Item 0 hosted by {0,1}; write from a non-hosting coordinator.
	res, err := c.Exec(2, []core.Op{core.Write(0, []byte("q1"))})
	if err != nil || !res.Committed {
		t.Fatalf("write: %v %v", res, err)
	}
	// Read from every site: the quorum read must find the copy.
	for s := 0; s < 4; s++ {
		res, err := c.Exec(core.SiteID(s), []core.Op{core.Read(0)})
		if err != nil || !res.Committed {
			t.Fatalf("read via %d: %v %v", s, res, err)
		}
		if !bytes.Equal(res.Reads[0].Value, []byte("q1")) {
			t.Errorf("read via %d = %q", s, res.Reads[0].Value)
		}
	}
	// With one of item 0's two hosts down, the write quorum (2 of 2) is
	// unreachable even though 3 of 4 sites are up.
	failAndDetect(t, c, 0, 1)
	res, err = c.Exec(1, []core.Op{core.Write(0, []byte("q2"))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed {
		t.Error("write committed without a per-item majority of copies")
	}
	// Items fully hosted on live sites keep working.
	res, err = c.Exec(1, []core.Op{core.Write(2, []byte("ok"))})
	if err != nil || !res.Committed {
		t.Fatalf("unrelated item blocked: %v %v", res, err)
	}
	// The quorum audit needs every site up (a down site hides copies).
	if _, err := c.Recover(0); err != nil {
		t.Fatal(err)
	}
	report, err := c.AuditQuorum()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Error(report)
	}
}

func TestTwoStepThresholdBoundary(t *testing.T) {
	// Threshold 0.5 over 10 items: with 6 items fail-locked (60%) the
	// recovering site stays in step one (demand-driven); once a write
	// refreshes one copy (50%), step two fires and batch-clears the rest.
	c := newTestCluster(t, Config{Sites: 2, Items: 10, BatchCopierThreshold: 0.5})
	failAndDetect(t, c, 0, 1)
	for i := 0; i < 6; i++ {
		if res, _ := c.Exec(1, []core.Op{core.Write(core.ItemID(i), val(i))}); !res.Committed {
			t.Fatal("setup write failed")
		}
	}
	if _, err := c.Recover(0); err != nil {
		t.Fatal(err)
	}
	// Above threshold: no batch refresh yet.
	time.Sleep(100 * time.Millisecond)
	n, _ := c.FailLockCount(0, 0)
	if n != 6 {
		t.Fatalf("batch fired above threshold: %d locks left", n)
	}
	if got := c.Registry(0).Counter("copiers.batch"); got != 0 {
		t.Fatalf("batch copiers ran above threshold: %d", got)
	}
	// One write drops the fraction to the threshold: batch mode engages.
	if res, _ := c.Exec(1, []core.Op{core.Write(0, val(100))}); !res.Committed {
		t.Fatal("trigger write failed")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		// Locks drain first and the counter lands just after; wait for
		// both to avoid racing the tail of the batch pass.
		n, _ := c.FailLockCount(0, 0)
		if n == 0 && c.Registry(0).Counter("copiers.batch") > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch refresh incomplete: %d locks left, %d batch copiers",
				n, c.Registry(0).Counter("copiers.batch"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	report, _ := c.Audit()
	if !report.OK() {
		t.Error(report)
	}
}

func TestSequentialFailuresOfDifferentSites(t *testing.T) {
	// Fail-locks from two different down periods coexist: site 1 and
	// then site 2 miss different writes; both recover and heal.
	c := newTestCluster(t, Config{Sites: 3, Items: 12})
	failAndDetect(t, c, 1, 0)
	for i := 0; i < 4; i++ {
		if res, _ := c.Exec(0, []core.Op{core.Write(core.ItemID(i), val(i))}); !res.Committed {
			t.Fatal("write failed")
		}
	}
	if _, err := c.Recover(1); err != nil {
		t.Fatal(err)
	}
	failAndDetect(t, c, 2, 0)
	for i := 4; i < 8; i++ {
		if res, _ := c.Exec(0, []core.Op{core.Write(core.ItemID(i), val(i))}); !res.Committed {
			t.Fatal("write failed")
		}
	}
	// Site 1 still has its own stale items; site 2 has different ones.
	st, _ := c.Status(0, true)
	n1, n2 := 0, 0
	for _, bits := range st.FailLocks {
		if bits&(1<<1) != 0 {
			n1++
		}
		if bits&(1<<2) != 0 {
			n2++
		}
	}
	if n1 == 0 || n2 == 0 {
		t.Fatalf("expected coexisting fail-locks: site1=%d site2=%d", n1, n2)
	}
	if _, err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	// Reads via each recovered site heal everything.
	for i := 0; i < 12; i++ {
		for _, coord := range []core.SiteID{1, 2} {
			if res, _ := c.Exec(coord, []core.Op{core.Read(core.ItemID(i))}); !res.Committed {
				t.Fatalf("heal read %d via %d failed", i, coord)
			}
		}
	}
	report, _ := c.Audit()
	if !report.OK() || report.StaleCopies != 0 {
		t.Errorf("audit: %v", report)
	}
}

func TestRereadAfterCopierIsLocal(t *testing.T) {
	// Once a copier refreshed an item, subsequent reads at the recovered
	// site are served locally (no further copiers).
	c := newTestCluster(t, Config{Sites: 2, Items: 5})
	failAndDetect(t, c, 0, 1)
	if res, _ := c.Exec(1, []core.Op{core.Write(2, []byte("f"))}); !res.Committed {
		t.Fatal("write failed")
	}
	if _, err := c.Recover(0); err != nil {
		t.Fatal(err)
	}
	res, _ := c.Exec(0, []core.Op{core.Read(2)})
	if res.Copiers != 1 {
		t.Fatalf("first read copiers = %d", res.Copiers)
	}
	res, _ = c.Exec(0, []core.Op{core.Read(2)})
	if res.Copiers != 0 {
		t.Errorf("second read ran %d copiers", res.Copiers)
	}
	st, _ := c.Status(0, false)
	if st.Stats.CopiersRequested != 1 {
		t.Errorf("CopiersRequested = %d", st.Stats.CopiersRequested)
	}
}

func TestPartialReplicationDonorFailsDuringRemoteRead(t *testing.T) {
	// Item 0's only copy is on site 0. Site 0 dies silently; site 1 has
	// not detected it yet, so its remote read targets site 0, times out,
	// aborts, and announces the failure (type 2).
	c := partialCluster(t, 3, 3, 1)
	if err := c.Fail(0); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec(1, []core.Op{core.Read(0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed {
		t.Fatal("remote read from a dead donor committed")
	}
	if res.AbortReason != txn.AbortDonorDown {
		t.Errorf("abort reason = %q", res.AbortReason)
	}
	// The timeout doubled as failure detection.
	st, _ := c.Status(1, false)
	if st.Vector[0].Status != core.StatusDown {
		t.Error("donor failure not announced")
	}
	// The next attempt aborts fast with no donor at all.
	res, _ = c.Exec(1, []core.Op{core.Read(0)})
	if res.Committed || res.AbortReason != txn.AbortNoDonor {
		t.Errorf("second read: %+v", res)
	}
}

func TestAuditReportString(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 2, Items: 4})
	report, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "audit OK") {
		t.Errorf("report = %q", report.String())
	}
	report.Violations = append(report.Violations, "synthetic")
	if !strings.Contains(report.String(), "FAILED") {
		t.Errorf("failed report = %q", report.String())
	}
}

func TestParticipantLostBetweenPhases(t *testing.T) {
	// The Appendix A.1 window: a participant acks phase one and dies
	// before phase two. The transaction still commits on the surviving
	// sites; the coordinator runs type 2 and conservatively fail-locks
	// the written items for the lost site everywhere, so recovery knows
	// those copies are suspect.
	c := newTestCluster(t, Config{Sites: 3, Items: 5})
	// Victim 2 may send one more message to the coordinator (the
	// prepare-ack) and receive one more (the prepare); then it is dark.
	c.SetLinkDropAfter(2, 0, 1)
	c.SetLinkDropAfter(0, 2, 1)

	res, err := c.Exec(0, []core.Op{core.Write(3, []byte("v2"))})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("phase-2 loss aborted the txn: %s (Appendix A commits)", res.AbortReason)
	}
	// Type-2 ran; the written item is fail-locked for site 2 at both
	// survivors.
	st0, _ := c.Status(0, true)
	if st0.Vector[2].Status != core.StatusDown {
		t.Error("lost participant not marked down")
	}
	for _, observer := range []core.SiteID{0, 1} {
		st, _ := c.Status(observer, true)
		if st.FailLocks[3]&(1<<2) == 0 {
			t.Errorf("observer %d: item 3 not fail-locked for the lost site", observer)
		}
	}
	// Complete the simulated death, heal the links, recover: the repair
	// machinery refreshes the copy via the normal copier path.
	if err := c.Fail(2); err != nil {
		t.Fatal(err)
	}
	c.SetLinkDropAfter(2, 0, -1)
	c.SetLinkDropAfter(0, 2, -1)
	if _, err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	res, err = c.Exec(2, []core.Op{core.Read(3)})
	if err != nil || !res.Committed {
		t.Fatalf("read after repair: %v %v", res, err)
	}
	if !bytes.Equal(res.Reads[0].Value, []byte("v2")) {
		t.Errorf("repaired read = %q", res.Reads[0].Value)
	}
	report, err := c.Audit()
	if err != nil || !report.OK() {
		t.Errorf("audit: %v %v", report, err)
	}
}
